// Package repro holds the top-level benchmark harness: one benchmark per
// table and figure of the paper's evaluation, plus ablations for the
// design choices DESIGN.md calls out. Regenerate everything with
//
//	go test -bench=. -benchmem
//
// The Table benchmarks print the reproduced table once and report the
// suite averages as benchmark metrics (pct_hidden_int, pct_hidden_fp,
// inst_ratio_int, inst_ratio_fp).
package repro

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"eel/internal/bench"
	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/pipe"
	"eel/internal/qpt"
	"eel/internal/sadl"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// benchInsts sizes each benchmark run; the experiments are ratio-based, so
// modest runs suffice.
const benchInsts = 200_000

var printOnce sync.Map

func runTable(b *testing.B, name string, cfg bench.TableConfig) {
	b.Helper()
	cfg.DynamicInsts = benchInsts
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = bench.RunTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(name, true); !done {
		fmt.Fprintf(os.Stderr, "\n%s: %s\n", name, tab.String())
	}
	ii, _, ih, _ := tab.Averages(false)
	fi, _, fh, _ := tab.Averages(true)
	b.ReportMetric(ih, "pct_hidden_int")
	b.ReportMetric(fh, "pct_hidden_fp")
	b.ReportMetric(ii, "inst_ratio_int")
	b.ReportMetric(fi, "inst_ratio_fp")
}

// BenchmarkTable1 reproduces Table 1: slow profiling on the UltraSPARC.
func BenchmarkTable1(b *testing.B) {
	runTable(b, "Table 1", bench.TableConfig{Machine: spawn.UltraSPARC})
}

// BenchmarkTable2 reproduces Table 2: slow profiling on the UltraSPARC
// with the original instructions first rescheduled by EEL.
func BenchmarkTable2(b *testing.B) {
	runTable(b, "Table 2", bench.TableConfig{
		Machine:            spawn.UltraSPARC,
		RescheduleBaseline: true,
	})
}

// BenchmarkTable3 reproduces Table 3: slow profiling on the SuperSPARC.
func BenchmarkTable3(b *testing.B) {
	runTable(b, "Table 3", bench.TableConfig{Machine: spawn.SuperSPARC})
}

// BenchmarkAblationAliasing measures the paper's memory-aliasing rule: how
// much hiding is lost when instrumentation memory references conservatively
// conflict with the original code's.
func BenchmarkAblationAliasing(b *testing.B) {
	runTable(b, "Ablation: conservative aliasing", bench.TableConfig{
		Machine:    spawn.UltraSPARC,
		Sched:      core.Options{ConservativeMem: true},
		Benchmarks: []string{"130.li", "132.ijpeg", "101.tomcatv", "104.hydro2d"},
	})
}

// BenchmarkAblationPriority flips the scheduler's priority function
// (chain length before stalls).
func BenchmarkAblationPriority(b *testing.B) {
	runTable(b, "Ablation: chain-first priority", bench.TableConfig{
		Machine:    spawn.UltraSPARC,
		Sched:      core.Options{ChainFirst: true},
		Benchmarks: []string{"130.li", "132.ijpeg", "101.tomcatv", "104.hydro2d"},
	})
}

// BenchmarkAblationPlacement disables QPT2's placement optimization,
// instrumenting every basic block.
func BenchmarkAblationPlacement(b *testing.B) {
	runTable(b, "Ablation: no placement optimization", bench.TableConfig{
		Machine:             spawn.UltraSPARC,
		DisablePlacementOpt: true,
		Benchmarks:          []string{"130.li", "132.ijpeg", "101.tomcatv", "104.hydro2d"},
	})
}

// BenchmarkICacheExpansion reproduces the §4.1 discussion (Lebeck & Wood):
// growing the text by a factor E grows instruction-cache misses
// super-linearly. It measures a large-text benchmark instrumented with and
// without instrumentation and reports the miss-rate growth.
func BenchmarkICacheExpansion(b *testing.B) {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	wb, _ := workload.ByName("126.gcc", machine)
	var before, after float64
	for i := 0; i < b.N; i++ {
		x, err := workload.Generate(wb, workload.Config{Machine: machine, DynamicInsts: benchInsts})
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.DefaultTiming(machine)
		_, t0, _, err := sim.RunMeasured(x, model, cfg, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		inst, err := instrumentScheduled(x, model)
		if err != nil {
			b.Fatal(err)
		}
		_, t1, _, err := sim.RunMeasured(inst, model, cfg, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		before = t0.ICache().MissRate()
		after = t1.ICache().MissRate()
		b.ReportMetric(float64(len(inst.Text))/float64(len(x.Text)), "text_expansion")
	}
	b.ReportMetric(before*100, "missrate_before_pct")
	b.ReportMetric(after*100, "missrate_after_pct")
}

// BenchmarkSpawnAnalyze times the Spawn analysis of a full machine
// description (Figure 1's description -> tables translation).
func BenchmarkSpawnAnalyze(b *testing.B) {
	src, err := os.ReadFile("internal/spawn/descriptions/ultrasparc.sadl")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spawn.Analyze(spawn.UltraSPARC, string(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSADLParse times parsing alone.
func BenchmarkSADLParse(b *testing.B) {
	src, err := os.ReadFile("internal/spawn/descriptions/ultrasparc.sadl")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sadl.Parse(string(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineStalls times the Appendix A computation on a realistic
// instruction mix.
func BenchmarkPipelineStalls(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	st := pipe.NewState(model)
	seq := []sparc.Inst{
		sparc.NewSethi(sparc.G1, 0x10000),
		sparc.NewLoad(sparc.OpLd, sparc.G2, sparc.G1, 0x40),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G2, 1),
		sparc.NewStore(sparc.OpSt, sparc.G2, sparc.G1, 0x40),
		sparc.NewALU(sparc.OpFmuld, sparc.FReg(0), sparc.FReg(2), sparc.FReg(4)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		for _, inst := range seq {
			if _, _, err := st.Issue(inst); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkScheduleBlock times the two-pass list scheduler on an
// instrumented 16-instruction block.
func BenchmarkScheduleBlock(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	s := core.New(model, core.Options{})
	block, err := sparc.Assemble(`
	ldd [%o0 + 0], %f0
	ldd [%o0 + 8], %f2
	fmuld %f0, %f4, %f6
	faddd %f6, %f2, %f8
	fmuld %f8, %f0, %f10
	faddd %f10, %f2, %f12
	std %f12, [%o1 + 0]
	add %o0, 16, %o0
	add %o1, 16, %o1
	subcc %l0, 1, %l0
	bne loop
	nop
loop:
`)
	if err != nil {
		b.Fatal(err)
	}
	counter := []sparc.Inst{
		sparc.NewSethi(sparc.G6, 0x100000),
		sparc.NewLoad(sparc.OpLd, sparc.G7, sparc.G6, 0x40),
		sparc.NewALUImm(sparc.OpAdd, sparc.G7, sparc.G7, 1),
		sparc.NewStore(sparc.OpSt, sparc.G7, sparc.G6, 0x40),
	}
	for i := range counter {
		counter[i].Instrumented = true
	}
	full := append(counter, block...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ScheduleBlock(full); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterp measures functional simulation speed (instructions/sec).
func BenchmarkInterp(b *testing.B) {
	x := loopExe(b)
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		in, err := sim.NewInterp(x)
		if err != nil {
			b.Fatal(err)
		}
		res, err := in.Run(1<<30, nil)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkTimedSim measures simulation speed with the hardware timing
// model attached.
func BenchmarkTimedSim(b *testing.B) {
	x := loopExe(b)
	model := spawn.MustLoad(spawn.UltraSPARC)
	cfg := sim.DefaultTiming(spawn.UltraSPARC)
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		_, tm, res, err := sim.RunMeasured(x, model, cfg, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		_ = tm
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func loopExe(b *testing.B) *exe.Exe {
	b.Helper()
	insts, err := sparc.Assemble(`
	set 200000, %g2
	mov 0, %g1
loop:
	add %g1, 1, %g1
	ld [%o0], %g3
	xor %g3, %g1, %g4
	st %g4, [%o1]
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`)
	if err != nil {
		b.Fatal(err)
	}
	x := exe.New()
	for _, inst := range insts {
		x.Text = append(x.Text, sparc.MustEncode(inst))
	}
	x.Data = make([]byte, 64)
	// Point %o0/%o1 defaults (zero registers) at... the program uses %o0
	// and %o1 as zero: loads from address 0 are legal in the sparse
	// memory model.
	return x
}

func instrumentScheduled(x *exe.Exe, model *spawn.Model) (*exe.Exe, error) {
	return instrumentWith(x, model, true)
}

func instrumentWith(x *exe.Exe, model *spawn.Model, schedule bool) (*exe.Exe, error) {
	ed, err := eel.Open(x)
	if err != nil {
		return nil, err
	}
	opts := eel.Options{}
	if schedule {
		opts.Machine = model
		opts.Schedule = true
	}
	return ed.Edit(&qpt.SlowProfiler{}, opts)
}

// BenchmarkRunTable measures end-to-end table regeneration (Table 1 shape,
// small runs) at two harness widths. tableworkers=1 isolates the simulator
// fast path and per-worker state pooling; tableworkers=4 adds the row-level
// fan-out (it only separates from =1 on multi-core hardware — the output is
// byte-identical either way). On a single-core runner the extra workers
// only add scheduling contention — the committed `current` series shows
// tableworkers=4 at 263 ms against 220 ms for =1 — so oversubscribed
// widths are skipped rather than recorded as a phantom regression.
func BenchmarkRunTable(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("tableworkers=%d", w), func(b *testing.B) {
			if w > runtime.GOMAXPROCS(0) {
				b.Skipf("tableworkers=%d oversubscribes GOMAXPROCS=%d: contention, not parallelism", w, runtime.GOMAXPROCS(0))
			}
			cfg := bench.TableConfig{
				Machine:      spawn.UltraSPARC,
				DynamicInsts: 20_000,
				TableWorkers: w,
			}
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunTable(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulate measures one measured simulation pass — the harness's
// innermost loop — on a generated 132.ijpeg at 200k dynamic instructions.
func BenchmarkSimulate(b *testing.B) {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	wb, ok := workload.ByName("132.ijpeg", machine)
	if !ok {
		b.Fatal("unknown benchmark")
	}
	x, err := workload.Generate(wb, workload.Config{Machine: machine, DynamicInsts: benchInsts})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultTiming(machine)
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		_, _, res, err := sim.RunMeasured(x, model, cfg, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
