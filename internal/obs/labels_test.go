package obs

import (
	"strings"
	"testing"
)

func TestLabeledName(t *testing.T) {
	got := LabeledName("eeld.requests_total", "code", "429")
	if got != `eeld.requests_total{code="429"}` {
		t.Fatalf("LabeledName = %q", got)
	}
	if got := LabeledName("x", "k", `a"b\c`); got != `x{k="a\"b\\c"}` {
		t.Fatalf("escaping: %q", got)
	}
	if got := LabeledName("x"); got != "x" {
		t.Fatalf("no pairs: %q", got)
	}
	fam, labels := SplitLabels(`eeld.requests_total{code="429"}`)
	if fam != "eeld.requests_total" || labels != `{code="429"}` {
		t.Fatalf("SplitLabels = %q, %q", fam, labels)
	}
}

// TestPrometheusLabeledFamilies: one # TYPE line per family, every
// labeled series under it, and unlabeled metrics untouched.
func TestPrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName("eeld.requests_total", "code", "200")).Add(7)
	r.Counter(LabeledName("eeld.requests_total", "code", "429")).Add(2)
	r.Counter("eeld.batches_total").Add(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE eeld_requests_total counter\n",
		"eeld_requests_total{code=\"200\"} 7\n",
		"eeld_requests_total{code=\"429\"} 2\n",
		"eeld_batches_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE eeld_requests_total counter"); n != 1 {
		t.Fatalf("family TYPE line emitted %d times:\n%s", n, out)
	}
}
