package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Export is the JSON shape of a registry snapshot — the document
// cmd/tables -metrics and cmd/eelprof -metrics write, validated in CI
// against schemas/metrics.schema.json by cmd/metricscheck.
type Export struct {
	Manifest   map[string]string          `json:"manifest"`
	Counters   map[string]int64           `json:"counters"`
	Gauges     map[string]int64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramExport `json:"histograms,omitempty"`
	Spans      []SpanRecord               `json:"spans,omitempty"`
	Extras     map[string]json.RawMessage `json:"extras,omitempty"`
}

// HistogramExport is one histogram's JSON shape.
type HistogramExport struct {
	Bounds []int64 `json:"bounds"` // bucket upper bounds; counts has one extra overflow bucket
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Max    int64   `json:"max"`
}

// Snapshot assembles the full export document.
func (r *Registry) Snapshot() *Export {
	e := &Export{
		Manifest: map[string]string{},
		Counters: map[string]int64{},
	}
	if r == nil {
		return e
	}
	e.Manifest = r.Manifest()
	e.Counters = r.Counters()
	if g := r.Gauges(); len(g) > 0 {
		e.Gauges = g
	}
	r.mu.Lock()
	if len(r.hists) > 0 {
		e.Histograms = make(map[string]HistogramExport, len(r.hists))
		for name, h := range r.hists {
			bounds, counts := h.Snapshot()
			e.Histograms[name] = HistogramExport{
				Bounds: bounds,
				Counts: counts,
				Count:  h.Count(),
				Sum:    h.Sum(),
				Max:    h.max.Load(),
			}
		}
	}
	extras := make(map[string]any, len(r.extras))
	for k, v := range r.extras {
		extras[k] = v
	}
	r.mu.Unlock()
	e.Spans = r.Spans()
	if len(extras) > 0 {
		e.Extras = make(map[string]json.RawMessage, len(extras))
		for k, v := range extras {
			raw, err := json.Marshal(v)
			if err != nil {
				raw, _ = json.Marshal(fmt.Sprintf("unmarshalable: %v", err))
			}
			e.Extras[k] = raw
		}
	}
	return e
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Dotted instrument names become underscore-separated metric
// names; the manifest is exported as an info-style gauge with one label
// per entry. Spans and extras have no Prometheus shape and are skipped.
func (r *Registry) WritePrometheus(w io.Writer) error {
	e := r.Snapshot()
	var b strings.Builder
	if len(e.Manifest) > 0 {
		b.WriteString("# TYPE eel_run_info gauge\n")
		b.WriteString("eel_run_info{")
		for i, k := range sortedKeys(e.Manifest) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", promName(k), e.Manifest[k])
		}
		b.WriteString("} 1\n")
	}
	writeFamilies(&b, "counter", e.Counters)
	writeFamilies(&b, "gauge", e.Gauges)
	for _, name := range sortedKeys(e.Histograms) {
		h := e.Histograms[name]
		n := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", n, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFile writes the snapshot to path, picking the format from the
// extension: Prometheus text for .prom, indented JSON otherwise. This is
// what the CLIs' -metrics flags call.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = r.WritePrometheus(f)
	} else {
		err = r.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFamilies renders counters or gauges grouped by metric family, so
// labeled instruments (see LabeledName) share one # TYPE line: the
// family is the name up to the label block, and every series of a
// family is emitted under it in sorted order.
func writeFamilies(b *strings.Builder, typ string, series map[string]int64) {
	byFamily := make(map[string][]string)
	for name := range series {
		fam, _ := SplitLabels(name)
		byFamily[promName(fam)] = append(byFamily[promName(fam)], name)
	}
	for _, fam := range sortedKeys(byFamily) {
		fmt.Fprintf(b, "# TYPE %s %s\n", fam, typ)
		names := byFamily[fam]
		sort.Strings(names)
		for _, name := range names {
			_, labels := SplitLabels(name)
			fmt.Fprintf(b, "%s%s %d\n", fam, labels, series[name])
		}
	}
}

// LabeledName builds an instrument name carrying a Prometheus-style
// label block: LabeledName("eeld.requests_total", "code", "429") is
// `eeld.requests_total{code="429"}`. The JSON exporter keeps the name
// verbatim; the Prometheus exporter splits it back into one series per
// label set under a single family. Pairs are key, value, key, value...;
// label values are quote- and backslash-escaped.
func LabeledName(base string, pairs ...string) string {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(pairs[i]))
		b.WriteString("=\"")
		v := strings.ReplaceAll(pairs[i+1], `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabels splits an instrument name into its family and its label
// block ("" when unlabeled, `{k="v"}` verbatim otherwise).
func SplitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// promName rewrites a dotted instrument name into a Prometheus metric
// name: dots and dashes become underscores, anything else non-alphanumeric
// is dropped.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		case c == '.' || c == '-' || c == '/':
			b.WriteByte('_')
		}
	}
	return b.String()
}
