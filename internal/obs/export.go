package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Export is the JSON shape of a registry snapshot — the document
// cmd/tables -metrics and cmd/eelprof -metrics write, validated in CI
// against schemas/metrics.schema.json by cmd/metricscheck.
type Export struct {
	Manifest   map[string]string          `json:"manifest"`
	Counters   map[string]int64           `json:"counters"`
	Gauges     map[string]int64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramExport `json:"histograms,omitempty"`
	Spans      []SpanRecord               `json:"spans,omitempty"`
	Extras     map[string]json.RawMessage `json:"extras,omitempty"`
}

// HistogramExport is one histogram's JSON shape. P50/P90/P99 are
// estimated by linear interpolation within buckets (see Quantile);
// Exemplars maps a bucket's upper bound (decimal, "+Inf" for overflow)
// to the worst traced observation that landed there.
type HistogramExport struct {
	Bounds    []int64                   `json:"bounds"` // bucket upper bounds; counts has one extra overflow bucket
	Counts    []int64                   `json:"counts"`
	Count     int64                     `json:"count"`
	Sum       int64                     `json:"sum"`
	Max       int64                     `json:"max"`
	P50       float64                   `json:"p50"`
	P90       float64                   `json:"p90"`
	P99       float64                   `json:"p99"`
	Exemplars map[string]ExemplarExport `json:"exemplars,omitempty"`
}

// ExemplarExport is one bucket's worst traced observation.
type ExemplarExport struct {
	TraceID string `json:"trace_id"`
	Value   int64  `json:"value"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket holding the q*Count-th observation.
// The first bucket interpolates up from zero; the overflow bucket
// interpolates toward the observed maximum. With no observations it
// returns 0.
func (h HistogramExport) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Counts) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	cum, lo := 0.0, 0.0
	for i, b := range h.Bounds {
		c := float64(h.Counts[i])
		if c > 0 && cum+c >= rank {
			return lo + (float64(b)-lo)*(rank-cum)/c
		}
		cum += c
		lo = float64(b)
	}
	c := float64(h.Counts[len(h.Counts)-1])
	if c <= 0 {
		return lo
	}
	hi := float64(h.Max)
	if hi < lo {
		hi = lo
	}
	f := (rank - cum) / c
	if f > 1 {
		f = 1
	}
	return lo + (hi-lo)*f
}

// Snapshot assembles the full export document.
func (r *Registry) Snapshot() *Export {
	e := &Export{
		Manifest: map[string]string{},
		Counters: map[string]int64{},
	}
	if r == nil {
		return e
	}
	e.Manifest = r.Manifest()
	e.Counters = r.Counters()
	if g := r.Gauges(); len(g) > 0 {
		e.Gauges = g
	}
	r.mu.Lock()
	if len(r.hists) > 0 {
		e.Histograms = make(map[string]HistogramExport, len(r.hists))
		for name, h := range r.hists {
			bounds, counts := h.Snapshot()
			he := HistogramExport{
				Bounds: bounds,
				Counts: counts,
				Count:  h.Count(),
				Sum:    h.Sum(),
				Max:    h.max.Load(),
			}
			he.P50 = he.Quantile(0.50)
			he.P90 = he.Quantile(0.90)
			he.P99 = he.Quantile(0.99)
			for i := range h.exemplars {
				ex := h.exemplars[i].Load()
				if ex == nil {
					continue
				}
				if he.Exemplars == nil {
					he.Exemplars = make(map[string]ExemplarExport)
				}
				le := "+Inf"
				if i < len(bounds) {
					le = strconv.FormatInt(bounds[i], 10)
				}
				he.Exemplars[le] = ExemplarExport{TraceID: ex.id, Value: ex.val}
			}
			e.Histograms[name] = he
		}
	}
	extras := make(map[string]any, len(r.extras))
	for k, v := range r.extras {
		extras[k] = v
	}
	r.mu.Unlock()
	e.Spans = r.Spans()
	if len(extras) > 0 {
		e.Extras = make(map[string]json.RawMessage, len(extras))
		for k, v := range extras {
			raw, err := json.Marshal(v)
			if err != nil {
				raw, _ = json.Marshal(fmt.Sprintf("unmarshalable: %v", err))
			}
			e.Extras[k] = raw
		}
	}
	return e
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Dotted instrument names become underscore-separated metric
// names; the manifest is exported as an info-style gauge with one label
// per entry. Spans and extras have no Prometheus shape and are skipped.
func (r *Registry) WritePrometheus(w io.Writer) error {
	e := r.Snapshot()
	var b strings.Builder
	if len(e.Manifest) > 0 {
		b.WriteString("# TYPE eel_run_info gauge\n")
		b.WriteString("eel_run_info{")
		for i, k := range sortedKeys(e.Manifest) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", promName(k), e.Manifest[k])
		}
		b.WriteString("} 1\n")
	}
	writeFamilies(&b, "counter", e.Counters)
	writeFamilies(&b, "gauge", e.Gauges)
	writeHistograms(&b, e.Histograms)
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistograms renders histograms grouped by family, merging the
// bucket's le label into any label block the instrument already carries
// (so eeld.request_micros{route="/v1/schedule"} becomes
// eeld_request_micros_bucket{route="/v1/schedule",le="..."}). Bucket
// lines carry OpenMetrics-style exemplars linking to trace IDs, and
// each family is followed by _p50/_p90/_p99 gauge families with the
// interpolated quantile estimates.
func writeHistograms(b *strings.Builder, hists map[string]HistogramExport) {
	byFamily := make(map[string][]string)
	for name := range hists {
		fam, _ := SplitLabels(name)
		byFamily[promName(fam)] = append(byFamily[promName(fam)], name)
	}
	for _, fam := range sortedKeys(byFamily) {
		names := byFamily[fam]
		sort.Strings(names)
		fmt.Fprintf(b, "# TYPE %s histogram\n", fam)
		for _, name := range names {
			h := hists[name]
			_, labels := SplitLabels(name)
			withLe := func(le string) string {
				if labels == "" {
					return `{le="` + le + `"}`
				}
				return labels[:len(labels)-1] + `,le="` + le + `"}`
			}
			writeBucket := func(le string, cum int64) {
				fmt.Fprintf(b, "%s_bucket%s %d", fam, withLe(le), cum)
				if ex, ok := h.Exemplars[le]; ok {
					fmt.Fprintf(b, " # {trace_id=\"%s\"} %d", escapeLabelValue(ex.TraceID), ex.Value)
				}
				b.WriteByte('\n')
			}
			cum := int64(0)
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				writeBucket(strconv.FormatInt(bound, 10), cum)
			}
			writeBucket("+Inf", h.Count)
			fmt.Fprintf(b, "%s_sum%s %d\n%s_count%s %d\n", fam, labels, h.Sum, fam, labels, h.Count)
		}
		for _, q := range []struct {
			suffix string
			v      func(HistogramExport) float64
		}{
			{"_p50", func(h HistogramExport) float64 { return h.P50 }},
			{"_p90", func(h HistogramExport) float64 { return h.P90 }},
			{"_p99", func(h HistogramExport) float64 { return h.P99 }},
		} {
			fmt.Fprintf(b, "# TYPE %s%s gauge\n", fam, q.suffix)
			for _, name := range names {
				_, labels := SplitLabels(name)
				fmt.Fprintf(b, "%s%s%s %g\n", fam, q.suffix, labels, q.v(hists[name]))
			}
		}
	}
}

// WriteFile writes the snapshot to path, picking the format from the
// extension: Prometheus text for .prom, indented JSON otherwise. This is
// what the CLIs' -metrics flags call.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = r.WritePrometheus(f)
	} else {
		err = r.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFamilies renders counters or gauges grouped by metric family, so
// labeled instruments (see LabeledName) share one # TYPE line: the
// family is the name up to the label block, and every series of a
// family is emitted under it in sorted order.
func writeFamilies(b *strings.Builder, typ string, series map[string]int64) {
	byFamily := make(map[string][]string)
	for name := range series {
		fam, _ := SplitLabels(name)
		byFamily[promName(fam)] = append(byFamily[promName(fam)], name)
	}
	for _, fam := range sortedKeys(byFamily) {
		fmt.Fprintf(b, "# TYPE %s %s\n", fam, typ)
		names := byFamily[fam]
		sort.Strings(names)
		for _, name := range names {
			_, labels := SplitLabels(name)
			fmt.Fprintf(b, "%s%s %d\n", fam, labels, series[name])
		}
	}
}

// LabeledName builds an instrument name carrying a Prometheus-style
// label block: LabeledName("eeld.requests_total", "code", "429") is
// `eeld.requests_total{code="429"}`. The JSON exporter keeps the name
// verbatim; the Prometheus exporter splits it back into one series per
// label set under a single family. Pairs are key, value, key, value...;
// label values are escaped per the Prometheus text format (backslash,
// quote, newline), so values containing `=`, `,` or quotes round-trip
// through ParseLabeledName.
func LabeledName(base string, pairs ...string) string {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(pairs[i]))
		b.WriteString("=\"")
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and line feed.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// SplitLabels splits an instrument name into its family and its label
// block ("" when unlabeled, `{k="v"}` verbatim otherwise).
func SplitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// ParseLabeledName is the inverse of LabeledName: it splits an
// instrument name into its family and its label pairs (key, value, key,
// value...) with escaping undone. Malformed label blocks return an
// error so callers don't silently mis-split values containing `=`, `,`
// or quotes.
func ParseLabeledName(name string) (family string, pairs []string, err error) {
	family, labels := SplitLabels(name)
	if labels == "" {
		return family, nil, nil
	}
	if len(labels) < 2 || labels[0] != '{' || labels[len(labels)-1] != '}' {
		return "", nil, fmt.Errorf("obs: malformed label block %q", labels)
	}
	s := labels[1 : len(labels)-1]
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return "", nil, fmt.Errorf("obs: malformed label pair in %q", labels)
		}
		key := s[:eq]
		rest := s[eq+2:] // inside the opening quote
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return "", nil, fmt.Errorf("obs: unterminated label value in %q", labels)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", nil, fmt.Errorf("obs: dangling escape in %q", labels)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, fmt.Errorf("obs: bad escape \\%c in %q", rest[i+1], labels)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		pairs = append(pairs, key, val.String())
		s = rest[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return "", nil, fmt.Errorf("obs: expected ',' between labels in %q", labels)
			}
			s = s[1:]
		}
	}
	return family, pairs, nil
}

// promName rewrites a dotted instrument name into a Prometheus metric
// name: dots and dashes become underscores, anything else non-alphanumeric
// is dropped.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		case c == '.' || c == '-' || c == '/':
			b.WriteByte('_')
		}
	}
	return b.String()
}
