package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("request")
	if tr.ID() == "" || len(tr.ID()) != 16 {
		t.Fatalf("trace ID = %q", tr.ID())
	}
	tr.Route, tr.Tenant, tr.Code = "/v1/schedule", "acme", 200
	tr.BytesIn, tr.BytesOut = 100, 200

	admit := tr.StartSpan("admit.wait")
	time.Sleep(time.Millisecond)
	admit.End()
	q := tr.StartSpan("batch.queue")
	q.Note("batch", "deadbeef")
	child := tr.StartChild("sched.depgraph", q.Idx())
	time.Sleep(time.Millisecond)
	child.End()
	q.End()
	tr.Annotate("requests", "1")
	tr.Finish()

	e := tr.Export()
	if e.TraceID != tr.ID() || e.Kind != "request" || e.Route != "/v1/schedule" ||
		e.Tenant != "acme" || e.Code != 200 || e.BytesIn != 100 || e.BytesOut != 200 {
		t.Fatalf("export metadata: %+v", e)
	}
	if len(e.Spans) != 3 || e.Dropped != 0 {
		t.Fatalf("spans = %d, dropped = %d", len(e.Spans), e.Dropped)
	}
	if e.Spans[0].Name != "admit.wait" || e.Spans[0].Parent != -1 {
		t.Fatalf("span 0: %+v", e.Spans[0])
	}
	if e.Spans[2].Name != "sched.depgraph" || e.Spans[2].Parent != 1 {
		t.Fatalf("child parenting: %+v", e.Spans[2])
	}
	if got := e.Spans[1].Notes; len(got) != 1 || got[0] != "batch=deadbeef" {
		t.Fatalf("notes: %v", got)
	}
	if len(e.Annots) != 1 || e.Annots[0] != "requests=1" {
		t.Fatalf("annotations: %v", e.Annots)
	}
	if e.WallNs <= 0 || e.Spans[0].DurNs <= 0 {
		t.Fatalf("durations not recorded: wall=%d span=%d", e.WallNs, e.Spans[0].DurNs)
	}
	// Top-level sum excludes the nested child.
	if sum := e.TopSpanNs(); sum != e.Spans[0].DurNs+e.Spans[1].DurNs {
		t.Fatalf("TopSpanNs = %d", sum)
	}
	// Finish is first-call-wins.
	w := e.WallNs
	time.Sleep(time.Millisecond)
	tr.Finish()
	if tr.WallNs() != w {
		t.Fatalf("second Finish re-stamped wall: %d != %d", tr.WallNs(), w)
	}
}

// TestTraceNilSafe: the disabled state is a nil *Trace and every method
// must be a no-op, mirroring the registry's disabled-is-nil contract.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.SinceStart() != 0 || tr.WallNs() != 0 {
		t.Fatal("nil trace leaked values")
	}
	sp := tr.StartSpan("x")
	sp.Note("k", "v")
	sp.End()
	if sp.Idx() != -1 {
		t.Fatal("nil span has an index")
	}
	tr.AddSpan("y", -1, 0, 1)
	tr.Annotate("k", "v")
	tr.Finish()
	if tr.Export() != nil {
		t.Fatal("nil trace exported")
	}
	var e *TraceExport
	if e.TopSpanNs() != 0 {
		t.Fatal("nil export summed")
	}
}

// TestTraceOverflowCounted: appends past MaxTraceSpans are dropped but
// counted, and handles to dropped spans are inert.
func TestTraceOverflowCounted(t *testing.T) {
	tr := NewTrace("request")
	for i := 0; i < MaxTraceSpans+5; i++ {
		sp := tr.StartSpan(fmt.Sprintf("s%d", i))
		sp.Note("i", "x") // must not panic on dropped handles
		sp.End()
	}
	tr.Finish()
	e := tr.Export()
	if len(e.Spans) != MaxTraceSpans || e.Dropped != 5 {
		t.Fatalf("spans=%d dropped=%d", len(e.Spans), e.Dropped)
	}
}

// TestTraceConcurrentAppend: span reservation is lock-free; concurrent
// appenders (run under -race in CI) must each get a private slot.
func TestTraceConcurrentAppend(t *testing.T) {
	tr := NewTrace("batch")
	var wg sync.WaitGroup
	const per = 4
	workers := MaxTraceSpans / per
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartSpan(fmt.Sprintf("w%d.%d", w, i))
				sp.Note("w", fmt.Sprint(w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr.Finish()
	e := tr.Export()
	if len(e.Spans) != workers*per || e.Dropped != 0 {
		t.Fatalf("spans=%d dropped=%d", len(e.Spans), e.Dropped)
	}
	seen := map[string]bool{}
	for _, sp := range e.Spans {
		if sp.Name == "" || seen[sp.Name] {
			t.Fatalf("corrupt or duplicate span %q", sp.Name)
		}
		seen[sp.Name] = true
	}
}

func TestTraceContext(t *testing.T) {
	if tr, p := TraceParentFrom(context.Background()); tr != nil || p != -1 {
		t.Fatal("empty context carried a trace")
	}
	if TraceFrom(nil) != nil {
		t.Fatal("nil context carried a trace")
	}
	tr := NewTrace("request")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("trace did not round-trip")
	}
	sp := tr.StartSpan("eel.schedule")
	ctx = WithTraceParent(ctx, tr, sp.Idx())
	got, parent := TraceParentFrom(ctx)
	if got != tr || parent != sp.Idx() {
		t.Fatalf("parent = %d, want %d", parent, sp.Idx())
	}
	// Attaching a nil trace leaves the context unchanged.
	if ctx2 := WithTrace(context.Background(), nil); TraceFrom(ctx2) != nil {
		t.Fatal("nil trace attached")
	}
}

// TestTraceExportMatchesCommittedSchema validates a live TraceExport
// line against schemas/trace.schema.json, so the exporter and the
// schema CI validates /debug/flight with cannot drift apart.
func TestTraceExportMatchesCommittedSchema(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "schemas", "trace.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSchema(raw)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace("request")
	tr.Route, tr.Tenant, tr.Code, tr.Anomaly = "/v1/schedule", "acme", 200, "slow"
	tr.BytesIn, tr.BytesOut = 10, 20
	sp := tr.StartSpan("batch.queue")
	sp.Note("batch", "deadbeef")
	tr.StartChild("sched.ready", sp.Idx()).End()
	sp.End()
	tr.Annotate("k", "v")
	tr.Finish()
	var sb strings.Builder
	j := NewJSONL(&sb)
	if err := j.Write(tr.Export()); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if errs := s.Validate([]byte(line)); len(errs) > 0 {
			t.Fatalf("trace line violates committed schema: %v\n%s", errs, line)
		}
	}
	// And the round-trip decodes back.
	var e TraceExport
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID != tr.ID() || len(e.Spans) != 2 {
		t.Fatalf("round-trip: %+v", e)
	}
}
