package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsFullyDisabled drives every registry and instrument
// method through a nil receiver — the disabled state the scheduler's hot
// path relies on being free and panic-proof.
func TestNilRegistryIsFullyDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatalf("nil registry handed out a non-nil counter")
	}
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatalf("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(9)
	if g != nil || g.Value() != 0 {
		t.Fatalf("nil gauge misbehaves")
	}
	h := r.Histogram("x", ExpBuckets(1, 4))
	h.Observe(3)
	if h != nil || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram misbehaves")
	}
	if b, cnt := h.Snapshot(); b != nil || cnt != nil {
		t.Fatalf("nil histogram snapshot non-empty")
	}
	sp := r.StartSpan("phase")
	sp.End()
	if sp != nil || r.Spans() != nil {
		t.Fatalf("nil span misbehaves")
	}
	r.SetManifest("k", "v")
	r.PutExtra("k", 1)
	if r.Manifest() != nil || r.Counters() != nil || r.Gauges() != nil {
		t.Fatalf("nil registry snapshots non-nil")
	}
	e := r.Snapshot()
	if e == nil || len(e.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", e)
	}
	var j *JSONL
	if err := j.Write(1); err != nil {
		t.Fatalf("nil JSONL write: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("nil JSONL close: %v", err)
	}
}

func TestCounterGaugeRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sched.blocks")
	b := r.Counter("sched.blocks")
	if a != b {
		t.Fatalf("same name registered twice")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counters()["sched.blocks"]; got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("pool.size")
	g.Set(4)
	g.Set(8)
	if got := r.Gauges()["pool.size"]; got != 8 {
		t.Fatalf("gauge = %d, want last value 8", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stalls", []int64{1, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if want := []int64{1, 2, 4}; !int64sEqual(bounds, want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	// 0,1 -> le=1; 2 -> le=2; 3,4 -> le=4; 5,100 -> overflow.
	if want := []int64{2, 1, 2, 2}; !int64sEqual(counts, want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	if h.Count() != 7 || h.Sum() != 115 {
		t.Fatalf("count=%d sum=%d, want 7/115", h.Count(), h.Sum())
	}
	if r.Snapshot().Histograms["stalls"].Max != 100 {
		t.Fatalf("max = %d, want 100", r.Snapshot().Histograms["stalls"].Max)
	}
	// Re-registration with different bounds keeps the original instrument.
	if h2 := r.Histogram("stalls", []int64{9}); h2 != h {
		t.Fatalf("re-registration replaced the histogram")
	}
}

func TestExpBuckets(t *testing.T) {
	if got, want := ExpBuckets(4, 3), []int64{4, 8, 16}; !int64sEqual(got, want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
}

func TestSpansNestAndRecord(t *testing.T) {
	r := NewRegistry()
	outer := r.StartSpan("outer")
	inner := r.StartSpan("inner")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: inner first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Depth <= spans[1].Depth {
		t.Fatalf("inner depth %d not below outer depth %d", spans[0].Depth, spans[1].Depth)
	}
	if spans[0].WallNs <= 0 {
		t.Fatalf("inner wall time %d, want > 0", spans[0].WallNs)
	}
	if spans[1].WallNs < spans[0].WallNs {
		t.Fatalf("outer wall %d shorter than inner %d", spans[1].WallNs, spans[0].WallNs)
	}
}

// TestConcurrentInstruments hammers one counter and one histogram from
// several goroutines; run under -race this is the registry's thread-
// safety test, and the totals check that no update was lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			h := r.Histogram("lat", ExpBuckets(1, 8))
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 7))
				r.Gauge("last").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counters()["hits"]; got != workers*per {
		t.Fatalf("lost counter updates: %d, want %d", got, workers*per)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*per {
		t.Fatalf("lost observations: %d, want %d", got, workers*per)
	}
}

func TestJSONExportShape(t *testing.T) {
	r := NewRegistry()
	r.SetManifest("go", "go-test")
	r.SetManifest("platform", "test/arch")
	r.Counter("sched.blocks").Add(5)
	r.Gauge("cache.len").Set(2)
	r.Histogram("row_millis", []int64{10, 20}).Observe(15)
	r.StartSpan("phase").End()
	r.PutExtra("slowest_rows", []map[string]any{{"name": "130.li", "millis": 1.5}})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var e Export
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if e.Manifest["go"] != "go-test" || e.Counters["sched.blocks"] != 5 ||
		e.Gauges["cache.len"] != 2 {
		t.Fatalf("export lost data: %+v", e)
	}
	h, ok := e.Histograms["row_millis"]
	if !ok || h.Count != 1 || h.Sum != 15 || h.Max != 15 || len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("histogram export wrong: %+v", h)
	}
	if len(e.Spans) != 1 || e.Spans[0].Name != "phase" {
		t.Fatalf("spans export wrong: %+v", e.Spans)
	}
	if _, ok := e.Extras["slowest_rows"]; !ok {
		t.Fatalf("extras export lost slowest_rows")
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.SetManifest("machine", "ultrasparc")
	r.Counter("sched.stall_cycles.raw").Add(3)
	r.Gauge("sched.cache.len").Set(7)
	h := r.Histogram("bench.row-millis", []int64{1, 2})
	h.Observe(1)
	h.Observe(2)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"eel_run_info{machine=\"ultrasparc\"} 1",
		"# TYPE sched_stall_cycles_raw counter",
		"sched_stall_cycles_raw 3",
		"sched_cache_len 7",
		"bench_row_millis_bucket{le=\"1\"} 1",
		"bench_row_millis_bucket{le=\"2\"} 2",
		"bench_row_millis_bucket{le=\"+Inf\"} 3",
		"bench_row_millis_sum 12",
		"bench_row_millis_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sched.stall_cycles.raw": "sched_stall_cycles_raw",
		"bench.row-millis":       "bench_row_millis",
		"130.li":                 "_130_li",
		"a/b c!":                 "a_bc",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	type rec struct {
		N int    `json:"n"`
		S string `json:"s"`
	}
	if err := j.Write(rec{1, "<a>"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Write(rec{2, "b"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var r rec
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil || r.N != 1 || r.S != "<a>" {
		t.Fatalf("line 1 round trip: %+v %v", r, err)
	}
}

func TestStampRunManifest(t *testing.T) {
	r := NewRegistry()
	r.StampRunManifest()
	m := r.Manifest()
	if m["go"] == "" || m["platform"] == "" {
		t.Fatalf("manifest missing environment facts: %v", m)
	}
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
