//go:build !linux && !darwin

package obs

// processCPUNs is unavailable on this platform; spans report zero CPU
// time and keep their wall-clock measurements.
func processCPUNs() int64 { return 0 }
