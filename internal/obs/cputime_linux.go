//go:build linux || darwin

package obs

import "syscall"

// processCPUNs returns the process's cumulative CPU time (user + system)
// in nanoseconds. Span CPU attribution is process-wide: with concurrent
// phases a span sees CPU burnt by its neighbours too, which is exactly
// the "how parallel was this stretch" signal the exporter's wall-vs-CPU
// column reads off.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
