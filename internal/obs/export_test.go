package obs

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantiles checks the interpolated estimates against
// distributions whose true quantiles are known.
func TestHistogramQuantiles(t *testing.T) {
	approx := func(t *testing.T, name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Fatalf("%s = %g, want %g ± %g", name, got, want, tol)
		}
	}

	// Uniform 1..30 observed once each over bounds 10/20/30: the true
	// p50 is 15, p90 is 27; interpolation is exact for uniform data.
	h := HistogramExport{Bounds: []int64{10, 20, 30}, Counts: []int64{10, 10, 10, 0}, Count: 30, Sum: 465, Max: 30}
	approx(t, "uniform p50", h.Quantile(0.50), 15, 1e-9)
	approx(t, "uniform p90", h.Quantile(0.90), 27, 1e-9)
	approx(t, "uniform p99", h.Quantile(0.99), 29.7, 1e-9)

	// All mass in one bucket: estimates stay inside that bucket.
	h = HistogramExport{Bounds: []int64{10, 20, 30}, Counts: []int64{0, 100, 0, 0}, Count: 100, Sum: 1500, Max: 20}
	p50 := h.Quantile(0.50)
	if p50 <= 10 || p50 > 20 {
		t.Fatalf("single-bucket p50 = %g, want in (10, 20]", p50)
	}
	approx(t, "single-bucket p50", p50, 15, 1e-9)

	// Overflow bucket interpolates toward the observed max, never past it.
	h = HistogramExport{Bounds: []int64{10}, Counts: []int64{0, 10}, Count: 10, Sum: 5000, Max: 900}
	p99 := h.Quantile(0.99)
	if p99 <= 10 || p99 > 900 {
		t.Fatalf("overflow p99 = %g, want in (10, 900]", p99)
	}
	approx(t, "overflow p50", h.Quantile(0.50), 10+(900-10)*0.5, 1e-9)

	// Empty histogram.
	h = HistogramExport{Bounds: []int64{10}, Counts: []int64{0, 0}}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty p50 = %g", h.Quantile(0.5))
	}
}

// TestSnapshotQuantilesAndPrometheusLines: the registry snapshot fills
// p50/p90/p99 and the Prometheus writer emits them as gauge families.
func TestSnapshotQuantilesAndPrometheusLines(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("eeld.request_micros", []int64{10, 20, 30})
	for v := int64(1); v <= 30; v++ {
		h.Observe(v)
	}
	e := r.Snapshot()
	he := e.Histograms["eeld.request_micros"]
	if he.P50 != 15 || he.P90 != 27 {
		t.Fatalf("snapshot quantiles: p50=%g p90=%g", he.P50, he.P90)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE eeld_request_micros histogram\n",
		"# TYPE eeld_request_micros_p50 gauge\neeld_request_micros_p50 15\n",
		"# TYPE eeld_request_micros_p90 gauge\neeld_request_micros_p90 27\n",
		"# TYPE eeld_request_micros_p99 gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus export missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusLabeledHistograms: a labeled histogram must keep its
// label block, with le merged in — not have the labels mangled into the
// metric name.
func TestPrometheusLabeledHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram(LabeledName("eeld.request_micros", "route", "/v1/schedule"), []int64{10, 20}).Observe(15)
	r.Histogram(LabeledName("eeld.request_micros", "route", "/v1/edit"), []int64{10, 20}).Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`eeld_request_micros_bucket{route="/v1/schedule",le="10"} 0` + "\n",
		`eeld_request_micros_bucket{route="/v1/schedule",le="20"} 1` + "\n",
		`eeld_request_micros_bucket{route="/v1/schedule",le="+Inf"} 1` + "\n",
		`eeld_request_micros_sum{route="/v1/schedule"} 15` + "\n",
		`eeld_request_micros_count{route="/v1/edit"} 1` + "\n",
		`eeld_request_micros_p50{route="/v1/edit"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled histogram export missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE eeld_request_micros histogram"); n != 1 {
		t.Fatalf("family TYPE line emitted %d times:\n%s", n, out)
	}
	if strings.Contains(out, "eeld_request_microsroute") {
		t.Fatalf("labels mangled into metric name:\n%s", out)
	}
}

// TestHistogramExemplars: ObserveTraced keeps the worst observation per
// bucket, exports it in JSON, and renders an OpenMetrics-style exemplar
// on the bucket line.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("eeld.request_micros", []int64{10, 100})
	h.ObserveTraced(4, "aaaa")
	h.ObserveTraced(9, "bbbb") // same bucket, worse: replaces aaaa
	h.ObserveTraced(7, "cccc") // same bucket, better: kept out
	h.ObserveTraced(50, "dddd")
	h.ObserveTraced(500, "eeee") // overflow bucket
	h.Observe(800)               // untraced: never an exemplar

	e := r.Snapshot()
	ex := e.Histograms["eeld.request_micros"].Exemplars
	if len(ex) != 3 {
		t.Fatalf("exemplars = %v", ex)
	}
	if ex["10"].TraceID != "bbbb" || ex["10"].Value != 9 {
		t.Fatalf("bucket 10 exemplar = %+v", ex["10"])
	}
	if ex["100"].TraceID != "dddd" || ex["+Inf"].TraceID != "eeee" {
		t.Fatalf("exemplars = %v", ex)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `eeld_request_micros_bucket{le="10"} 3 # {trace_id="bbbb"} 9`+"\n") {
		t.Fatalf("bucket exemplar missing:\n%s", out)
	}
	if !strings.Contains(out, `eeld_request_micros_bucket{le="+Inf"} 6 # {trace_id="eeee"} 500`+"\n") {
		t.Fatalf("overflow exemplar missing:\n%s", out)
	}
}

// TestLabelEscapingRoundTrip: values containing `=`, `,`, quotes,
// backslashes and newlines must round-trip through LabeledName →
// ParseLabeledName unchanged, per the Prometheus text format.
func TestLabelEscapingRoundTrip(t *testing.T) {
	cases := []struct {
		base  string
		pairs []string
	}{
		{"eeld.requests_total", []string{"code", "429"}},
		{"x", []string{"k", `a"b\c`}},
		{"x", []string{"k", "a=b"}},
		{"x", []string{"k", "a,b=c"}},
		{"x", []string{"k", "line1\nline2"}},
		{"x", []string{"k", `q="v",r="w"`}},
		{"x", []string{"a", "1", "b", `x\n,="`}},
		{"eeld.request_micros", []string{"route", "/v1/schedule"}},
	}
	for _, tc := range cases {
		name := LabeledName(tc.base, tc.pairs...)
		fam, pairs, err := ParseLabeledName(name)
		if err != nil {
			t.Fatalf("ParseLabeledName(%q): %v", name, err)
		}
		if fam != tc.base {
			t.Fatalf("family = %q, want %q", fam, tc.base)
		}
		if len(pairs) != len(tc.pairs) {
			t.Fatalf("pairs = %q, want %q", pairs, tc.pairs)
		}
		for i := range pairs {
			if pairs[i] != tc.pairs[i] {
				t.Fatalf("pair %d = %q, want %q (name %q)", i, pairs[i], tc.pairs[i], name)
			}
		}
	}
	if got := LabeledName("x", "k", "line1\nline2"); got != `x{k="line1\nline2"}` {
		t.Fatalf("newline escaping: %q", got)
	}
	for _, bad := range []string{`x{k}`, `x{k="v}`, `x{k="v"extra"}`, `x{k="v\q"}`, `x{`} {
		if _, _, err := ParseLabeledName(bad); err == nil {
			t.Fatalf("ParseLabeledName(%q) accepted malformed input", bad)
		}
	}
	if fam, pairs, err := ParseLabeledName("plain.name"); err != nil || fam != "plain.name" || pairs != nil {
		t.Fatalf("unlabeled parse: %q %v %v", fam, pairs, err)
	}
}
