package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// JSONL is a goroutine-safe JSON-lines sink: each Write appends one
// JSON-encoded value and a newline. The scheduler's decision tracer
// writes one line per scheduled block; concurrent workers interleave
// whole lines, never partial ones.
type JSONL struct {
	mu  sync.Mutex
	buf *bufio.Writer
	c   io.Closer
}

// NewJSONL wraps an open writer. If w is also an io.Closer, Close closes
// it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{buf: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// CreateJSONL creates (truncating) a JSONL file at path.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONL(f), nil
}

// Write appends v as one JSON line. Nil receivers are no-ops, matching
// the registry's disabled-is-nil convention.
func (j *JSONL) Write(v any) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	enc := json.NewEncoder(j.buf)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// Close flushes buffered lines and closes the underlying file, if any.
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.buf.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
