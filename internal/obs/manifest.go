package obs

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// StampRunManifest fills the registry's manifest with the environment
// facts every exported run should carry: Go version, platform, and the
// git revision when one is discoverable. Callers layer run-specific
// entries (model, engine, oracle, workers) on top with SetManifest.
func (r *Registry) StampRunManifest() {
	if r == nil {
		return
	}
	r.SetManifest("go", runtime.Version())
	r.SetManifest("platform", runtime.GOOS+"/"+runtime.GOARCH)
	if rev := GitRev(); rev != "" {
		r.SetManifest("git_rev", rev)
	}
}

// GitRev returns the current git revision: GITHUB_SHA when CI provides
// it, otherwise `git rev-parse HEAD`, otherwise "". Never errors — a
// manifest without a revision is still a manifest.
func GitRev() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
