package obs

import (
	"sync/atomic"
	"time"
)

// SpanRecord is one completed phase span: a named stretch of work with
// wall-clock and process-CPU time. Depth records lexical nesting (a span
// started while its parent was open), so exporters can render a phase
// tree without the registry tracking goroutine identity.
type SpanRecord struct {
	Name    string `json:"name"`
	Depth   int    `json:"depth"`
	StartNs int64  `json:"start_ns"` // offset from the registry's first span
	WallNs  int64  `json:"wall_ns"`
	CPUNs   int64  `json:"cpu_ns"` // process CPU time consumed during the span
}

// Span is an open phase span; End completes it. A nil *Span (from a nil
// registry) is a no-op.
type Span struct {
	r     *Registry
	name  string
	depth int
	start time.Time
	cpu   int64
}

// openSpans counts spans started and not yet ended, for nesting depth.
// Concurrent spans share the counter, so depth is approximate under
// parallel phases — good enough for the tree rendering it feeds.
var openSpans atomic.Int64

// StartSpan opens a phase span. Spans nest: a span started while another
// is open records a larger depth. On a nil registry the returned span is
// nil and End is free.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		r:     r,
		name:  name,
		depth: int(openSpans.Add(1)) - 1,
		start: time.Now(),
		cpu:   processCPUNs(),
	}
}

// End completes the span, recording wall and CPU time.
func (s *Span) End() {
	if s == nil {
		return
	}
	openSpans.Add(-1)
	wall := time.Since(s.start)
	cpu := processCPUNs() - s.cpu
	r := s.r
	r.mu.Lock()
	if r.spanEpoch.IsZero() {
		r.spanEpoch = s.start
	}
	r.spans = append(r.spans, SpanRecord{
		Name:    s.name,
		Depth:   s.depth,
		StartNs: s.start.Sub(r.spanEpoch).Nanoseconds(),
		WallNs:  wall.Nanoseconds(),
		CPUNs:   cpu,
	})
	r.mu.Unlock()
}

// Spans returns the completed span records in completion order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}
