package obs

import (
	"io"
	"sort"
	"sync"
)

// Flight is the daemon's flight recorder: a fixed-size ring of the last
// N completed traces plus a separate, larger ring of anomalous ones
// (errors, quota rejections, over-threshold latency), so a burst of
// healthy traffic cannot evict the one trace that explains an incident.
// A nil *Flight is the disabled state; Record on nil is a no-op.
type Flight struct {
	mu       sync.Mutex
	recent   []*TraceExport // ring, cap = N
	rNext    int
	anom     []*TraceExport // ring, cap = 4N
	aNext    int
	recorded int64
	anomRec  int64
}

// NewFlight returns a recorder retaining the last n completed traces
// and up to 4n anomalous ones. n <= 0 returns nil (disabled).
func NewFlight(n int) *Flight {
	if n <= 0 {
		return nil
	}
	return &Flight{
		recent: make([]*TraceExport, 0, n),
		anom:   make([]*TraceExport, 0, 4*n),
	}
}

// Record stores one finished trace. Anomalous traces (Anomaly != "") go
// to the anomaly ring only; everything else rotates through the recent
// ring.
func (f *Flight) Record(e *TraceExport) {
	if f == nil || e == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recorded++
	if e.Anomaly != "" {
		f.anomRec++
		if len(f.anom) < cap(f.anom) {
			f.anom = append(f.anom, e)
		} else {
			f.anom[f.aNext] = e
			f.aNext = (f.aNext + 1) % cap(f.anom)
		}
		return
	}
	if len(f.recent) < cap(f.recent) {
		f.recent = append(f.recent, e)
	} else {
		f.recent[f.rNext] = e
		f.rNext = (f.rNext + 1) % cap(f.recent)
	}
}

// Stats returns how many traces were recorded in total and how many of
// those were anomalous (both monotonic, unaffected by ring eviction).
func (f *Flight) Stats() (recorded, anomalous int64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recorded, f.anomRec
}

// Snapshot returns the retained traces, both rings merged, ordered by
// trace start time.
func (f *Flight) Snapshot() []*TraceExport {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]*TraceExport, 0, len(f.recent)+len(f.anom))
	out = append(out, f.recent...)
	out = append(out, f.anom...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNs < out[j].StartUnixNs })
	return out
}

// WriteJSONL dumps the retained traces as JSON lines — the body of the
// daemon's GET /debug/flight and the shape schemas/trace.schema.json
// validates per line.
func (f *Flight) WriteJSONL(w io.Writer) error {
	j := NewJSONL(w)
	for _, e := range f.Snapshot() {
		if err := j.Write(e); err != nil {
			return err
		}
	}
	return j.Close()
}
