package obs

import (
	"encoding/json"
	"fmt"
)

// This file is a deliberately small JSON-Schema interpreter — just the
// subset schemas/metrics.schema.json uses — so the CI metrics-smoke job
// can validate exported metrics documents without pulling a third-party
// schema library into a repo that builds from the standard library
// alone. Supported keywords: type (single or list), properties,
// required, additionalProperties (boolean or schema),
// patternProperties-free, items, minItems.

// Schema is one parsed schema node.
type Schema struct {
	Type        any                `json:"type"` // string or []string
	Properties  map[string]*Schema `json:"properties"`
	Required    []string           `json:"required"`
	AddlProps   json.RawMessage    `json:"additionalProperties"`
	Items       *Schema            `json:"items"`
	MinItems    *int               `json:"minItems"`
	Description string             `json:"description"`
}

// ParseSchema decodes a schema document.
func ParseSchema(data []byte) (*Schema, error) {
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: bad schema: %w", err)
	}
	return &s, nil
}

// Validate checks a JSON document against the schema and returns every
// violation found (nil means valid).
func (s *Schema) Validate(doc []byte) []error {
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		return []error{fmt.Errorf("obs: document is not JSON: %w", err)}
	}
	var errs []error
	s.validate("$", v, &errs)
	return errs
}

func (s *Schema) validate(path string, v any, errs *[]error) {
	if s == nil {
		return
	}
	if !s.typeOK(v) {
		*errs = append(*errs, fmt.Errorf("%s: got %s, want type %v", path, typeName(v), s.Type))
		return
	}
	switch val := v.(type) {
	case map[string]any:
		for _, req := range s.Required {
			if _, ok := val[req]; !ok {
				*errs = append(*errs, fmt.Errorf("%s: missing required property %q", path, req))
			}
		}
		addl := s.addlSchema()
		for key, child := range val {
			sub, ok := s.Properties[key]
			switch {
			case ok:
				sub.validate(path+"."+key, child, errs)
			case s.addlForbidden():
				*errs = append(*errs, fmt.Errorf("%s: unexpected property %q", path, key))
			case addl != nil:
				addl.validate(path+"."+key, child, errs)
			}
		}
	case []any:
		if s.MinItems != nil && len(val) < *s.MinItems {
			*errs = append(*errs, fmt.Errorf("%s: %d items, want at least %d", path, len(val), *s.MinItems))
		}
		if s.Items != nil {
			for i, child := range val {
				s.Items.validate(fmt.Sprintf("%s[%d]", path, i), child, errs)
			}
		}
	}
}

// addlForbidden reports whether additionalProperties is the literal
// false.
func (s *Schema) addlForbidden() bool {
	return string(s.AddlProps) == "false"
}

// addlSchema returns the additionalProperties schema when one is given
// (rather than a boolean or nothing).
func (s *Schema) addlSchema() *Schema {
	if len(s.AddlProps) == 0 || s.AddlProps[0] != '{' {
		return nil
	}
	var sub Schema
	if err := json.Unmarshal(s.AddlProps, &sub); err != nil {
		return nil
	}
	return &sub
}

func (s *Schema) typeOK(v any) bool {
	switch t := s.Type.(type) {
	case nil:
		return true
	case string:
		return typeMatches(t, v)
	case []any:
		for _, one := range t {
			if name, ok := one.(string); ok && typeMatches(name, v) {
				return true
			}
		}
		return false
	}
	return true
}

func typeMatches(name string, v any) bool {
	switch name {
	case "object":
		_, ok := v.(map[string]any)
		return ok
	case "array":
		_, ok := v.([]any)
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "number":
		_, ok := v.(float64)
		return ok
	case "integer":
		f, ok := v.(float64)
		return ok && f == float64(int64(f))
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "null":
		return v == nil
	}
	return false
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case nil:
		return "null"
	}
	return "unknown"
}
