package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// MaxTraceSpans bounds the spans one Trace can hold. Appends past the
// cap are counted (TraceExport.Dropped) rather than grown, so traced
// requests never allocate per span and the flight recorder's memory is
// bounded by construction.
const MaxTraceSpans = 64

// TraceSpan is one named interval inside a Trace. Start is an offset
// from the trace's own start so exported traces are self-contained;
// Parent is the index of the enclosing span, -1 for a top-level span.
// Top-level spans of a request trace are the latency decomposition: the
// daemon's tests and CI assert they sum to the trace's wall time.
type TraceSpan struct {
	Name    string   `json:"name"`
	Parent  int32    `json:"parent"`
	StartNs int64    `json:"start_ns"`
	DurNs   int64    `json:"dur_ns"`
	Notes   []string `json:"notes,omitempty"` // "key=value" annotations
}

// Trace is one request's (or one batch's) span tree. It follows the
// registry's disabled-is-nil convention: every method on a nil *Trace is
// an inlineable no-op, so instrumented code pays one pointer test when
// tracing is off. Span appends are lock-free — a slot index is reserved
// with one atomic add and the slot is written by its owner only — so
// concurrent handler goroutines and scheduler workers can annotate the
// same trace. The exported metadata fields (Route, Code, ...) are owned
// by the single goroutine that created the trace and must be set before
// Finish.
type Trace struct {
	id    string
	kind  string
	start time.Time

	n     atomic.Int32
	spans []TraceSpan // len MaxTraceSpans, slot i valid iff i < n

	mu     sync.Mutex
	annots []string // "key=value", cold path

	wallNs atomic.Int64 // set once by Finish

	// Request metadata, set by the owning goroutine before Finish.
	Route    string
	Tenant   string
	Anomaly  string // "", "error", "quota", "slow"
	Code     int
	BytesIn  int64
	BytesOut int64
}

// NewTrace starts a trace of the given kind ("request", "batch") with a
// fresh random ID and the clock running.
func NewTrace(kind string) *Trace {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the monotonic clock; uniqueness only matters for
		// joining log lines, not for correctness.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return &Trace{
		id:    hex.EncodeToString(b[:]),
		kind:  kind,
		start: time.Now(),
		spans: make([]TraceSpan, MaxTraceSpans),
	}
}

// ID returns the trace's hex ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SinceStart returns nanoseconds elapsed since the trace started.
func (t *Trace) SinceStart() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// reserve claims the next span slot, returning -1 when the trace is
// full (the overflow is still counted so exports report drops).
func (t *Trace) reserve() int32 {
	i := t.n.Add(1) - 1
	if int(i) >= len(t.spans) {
		return -1
	}
	return i
}

// SpanRef is a handle to an open span. A nil or dropped handle is a
// no-op, so callers never check for overflow.
type SpanRef struct {
	t     *Trace
	idx   int32
	start time.Time
}

// StartSpan opens a top-level span. See StartChild.
func (t *Trace) StartSpan(name string) *SpanRef { return t.StartChild(name, -1) }

// StartChild opens a span under the given parent index (-1 = top
// level). Returns nil on a nil trace and a dropped handle when the
// trace's span table is full.
func (t *Trace) StartChild(name string, parent int32) *SpanRef {
	if t == nil {
		return nil
	}
	i := t.reserve()
	if i < 0 {
		return &SpanRef{t: t, idx: -1}
	}
	now := time.Now()
	t.spans[i] = TraceSpan{Name: name, Parent: parent, StartNs: now.Sub(t.start).Nanoseconds()}
	return &SpanRef{t: t, idx: i, start: now}
}

// Idx returns the span's slot index, -1 when nil or dropped. Use it as
// the parent for child spans.
func (s *SpanRef) Idx() int32 {
	if s == nil {
		return -1
	}
	return s.idx
}

// Note attaches a key=value annotation to the span.
func (s *SpanRef) Note(key, value string) {
	if s == nil || s.idx < 0 {
		return
	}
	sp := &s.t.spans[s.idx]
	sp.Notes = append(sp.Notes, key+"="+value)
}

// End closes the span, recording its duration. Idempotent in the sense
// that a second End overwrites the duration with the longer interval.
func (s *SpanRef) End() {
	if s == nil || s.idx < 0 {
		return
	}
	s.t.spans[s.idx].DurNs = time.Since(s.start).Nanoseconds()
}

// AddSpan records a fully-formed span — used by code that measured an
// interval itself (e.g. the scheduler's per-phase aggregates merged
// across workers). startNs is an offset from the trace start. Returns
// the span's index, -1 on nil or overflow.
func (t *Trace) AddSpan(name string, parent int32, startNs, durNs int64, notes ...string) int32 {
	if t == nil {
		return -1
	}
	i := t.reserve()
	if i < 0 {
		return -1
	}
	var ns []string
	if len(notes) > 0 {
		ns = append(ns, notes...)
	}
	t.spans[i] = TraceSpan{Name: name, Parent: parent, StartNs: startNs, DurNs: durNs, Notes: ns}
	return i
}

// Annotate attaches a trace-level key=value annotation.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.annots = append(t.annots, key+"="+value)
	t.mu.Unlock()
}

// Finish stops the clock. The first call wins; later calls keep the
// original wall time so a drained request's trace is not re-stamped.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.wallNs.CompareAndSwap(0, time.Since(t.start).Nanoseconds())
}

// WallNs returns the finished wall time (elapsed time if not finished).
func (t *Trace) WallNs() int64 {
	if t == nil {
		return 0
	}
	if w := t.wallNs.Load(); w != 0 {
		return w
	}
	return t.SinceStart()
}

// TraceExport is a finished trace's JSON shape — one line of the flight
// recorder dump and of the access log, validated in CI against
// schemas/trace.schema.json.
type TraceExport struct {
	TraceID     string      `json:"trace_id"`
	Kind        string      `json:"kind"`
	Route       string      `json:"route,omitempty"`
	Tenant      string      `json:"tenant,omitempty"`
	Code        int         `json:"code,omitempty"`
	StartUnixNs int64       `json:"start_unix_ns"`
	WallNs      int64       `json:"wall_ns"`
	BytesIn     int64       `json:"bytes_in,omitempty"`
	BytesOut    int64       `json:"bytes_out,omitempty"`
	Anomaly     string      `json:"anomaly,omitempty"`
	Dropped     int         `json:"dropped_spans,omitempty"`
	Annots      []string    `json:"annotations,omitempty"`
	Spans       []TraceSpan `json:"spans"`
}

// Export snapshots the trace. Call after Finish and after all span
// owners are done (the daemon guarantees this by exporting only once
// the handler has returned and the batch loop has responded).
func (t *Trace) Export() *TraceExport {
	if t == nil {
		return nil
	}
	n := int(t.n.Load())
	dropped := 0
	if n > len(t.spans) {
		dropped = n - len(t.spans)
		n = len(t.spans)
	}
	spans := make([]TraceSpan, n)
	for i := 0; i < n; i++ {
		sp := t.spans[i]
		if len(sp.Notes) > 0 {
			sp.Notes = append([]string(nil), sp.Notes...)
		}
		spans[i] = sp
	}
	t.mu.Lock()
	annots := append([]string(nil), t.annots...)
	t.mu.Unlock()
	return &TraceExport{
		TraceID:     t.id,
		Kind:        t.kind,
		Route:       t.Route,
		Tenant:      t.Tenant,
		Code:        t.Code,
		StartUnixNs: t.start.UnixNano(),
		WallNs:      t.WallNs(),
		BytesIn:     t.BytesIn,
		BytesOut:    t.BytesOut,
		Anomaly:     t.Anomaly,
		Dropped:     dropped,
		Annots:      annots,
		Spans:       spans,
	}
}

// TopSpanNs sums the durations of top-level (Parent == -1) spans: the
// latency attribution the 5%-of-wall acceptance check is made against.
func (e *TraceExport) TopSpanNs() int64 {
	if e == nil {
		return 0
	}
	var sum int64
	for i := range e.Spans {
		if e.Spans[i].Parent == -1 {
			sum += e.Spans[i].DurNs
		}
	}
	return sum
}

// traceKey carries a (*Trace, parent span index) pair in a Context.
type traceKey struct{}

type traceCtx struct {
	t      *Trace
	parent int32
}

// WithTrace attaches t to ctx with spans parenting at top level.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return WithTraceParent(ctx, t, -1)
}

// WithTraceParent attaches t to ctx; spans recorded downstream parent
// at the given span index.
func WithTraceParent(ctx context.Context, t *Trace, parent int32) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, traceCtx{t: t, parent: parent})
}

// TraceFrom returns the trace carried by ctx, nil if none.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := TraceParentFrom(ctx)
	return t
}

// TraceParentFrom returns ctx's trace and the span index downstream
// spans should parent under ((nil, -1) if none).
func TraceParentFrom(ctx context.Context) (*Trace, int32) {
	if ctx == nil {
		return nil, -1
	}
	if tc, ok := ctx.Value(traceKey{}).(traceCtx); ok {
		return tc.t, tc.parent
	}
	return nil, -1
}
