package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func flightTrace(i int, anomaly string) *TraceExport {
	return &TraceExport{
		TraceID:     fmt.Sprintf("t%04d", i),
		Kind:        "request",
		StartUnixNs: int64(i),
		WallNs:      1000,
		Anomaly:     anomaly,
		Spans:       []TraceSpan{{Name: "admit.wait", Parent: -1, DurNs: 1000}},
	}
}

// TestFlightRingEviction: the recent ring keeps exactly the last N
// healthy traces in start order.
func TestFlightRingEviction(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(flightTrace(i, ""))
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want 4", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("t%04d", 6+i); e.TraceID != want {
			t.Fatalf("slot %d = %s, want %s", i, e.TraceID, want)
		}
	}
	if rec, anom := f.Stats(); rec != 10 || anom != 0 {
		t.Fatalf("stats = %d, %d", rec, anom)
	}
}

// TestFlightAnomalyRetention: a flood of healthy traffic must not evict
// anomalous traces — they live in their own, larger ring.
func TestFlightAnomalyRetention(t *testing.T) {
	f := NewFlight(2)
	f.Record(flightTrace(0, "error"))
	f.Record(flightTrace(1, "quota"))
	f.Record(flightTrace(2, "slow"))
	for i := 10; i < 300; i++ {
		f.Record(flightTrace(i, ""))
	}
	var anomalies []string
	for _, e := range f.Snapshot() {
		if e.Anomaly != "" {
			anomalies = append(anomalies, e.Anomaly)
		}
	}
	if len(anomalies) != 3 {
		t.Fatalf("anomalies retained = %v, want 3", anomalies)
	}
	if rec, anom := f.Stats(); rec != 293 || anom != 3 {
		t.Fatalf("stats = %d, %d", rec, anom)
	}
	// The anomaly ring itself still rotates once full (cap 4N = 8).
	for i := 0; i < 20; i++ {
		f.Record(flightTrace(1000+i, "error"))
	}
	count := 0
	for _, e := range f.Snapshot() {
		if e.Anomaly != "" {
			count++
		}
	}
	if count != 8 {
		t.Fatalf("anomaly ring holds %d, want cap 8", count)
	}
}

func TestFlightDisabledAndNil(t *testing.T) {
	if NewFlight(0) != nil {
		t.Fatal("NewFlight(0) should disable")
	}
	var f *Flight
	f.Record(flightTrace(0, ""))
	if f.Snapshot() != nil {
		t.Fatal("nil flight snapshot")
	}
	if rec, anom := f.Stats(); rec != 0 || anom != 0 {
		t.Fatal("nil flight stats")
	}
	var sb strings.Builder
	if err := f.WriteJSONL(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil flight dump: %v %q", err, sb.String())
	}
}

// TestFlightWriteJSONL: every dump line is complete JSON decoding back
// to a TraceExport, ordered by start time.
func TestFlightWriteJSONL(t *testing.T) {
	f := NewFlight(8)
	f.Record(flightTrace(3, ""))
	f.Record(flightTrace(1, "error"))
	f.Record(flightTrace(2, ""))
	var sb strings.Builder
	if err := f.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("dump does not end in newline")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want 3", len(lines))
	}
	var prev int64 = -1
	for _, line := range lines {
		var e TraceExport
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if e.StartUnixNs < prev {
			t.Fatalf("dump out of order: %d after %d", e.StartUnixNs, prev)
		}
		prev = e.StartUnixNs
	}
}
