// Package obs is the repo's telemetry core: a zero-dependency registry
// of atomic counters, gauges, fixed-bucket histograms and nestable phase
// spans, with JSON and Prometheus-text exporters. It exists so the
// scheduler, the stall oracles, the simulator and the evaluation harness
// can explain where cycles go — per-hazard stall attribution, per-phase
// wall/CPU time, cache and worker-pool behaviour — without ever touching
// the hot path when telemetry is off.
//
// The overhead model (DESIGN.md §10):
//
//   - Disabled means nil. A nil *Registry hands out nil instrument
//     handles, and every method on a nil handle is an inlineable
//     early-return: the instrumented code carries one pointer test and
//     nothing else. The committed overhead-guard benchmark holds this
//     under 3% on BenchmarkScheduleBlocks with zero added allocations.
//   - Enabled means atomics. Counter/Gauge/Histogram updates are single
//     atomic adds on pre-resolved handles; the registry's maps are only
//     touched at registration time, never per event.
//
// Instruments are identified by dotted lowercase names
// ("sched.stall_cycles.raw"); the Prometheus exporter rewrites the dots
// to underscores.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds one run's instruments. The zero value is not usable;
// call NewRegistry. A nil *Registry is the disabled state: every method
// is a no-op and every handle it returns is nil (itself a no-op).
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	spans     []SpanRecord
	spanEpoch time.Time
	manifest  map[string]string
	extras    map[string]any
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		manifest: make(map[string]string),
		extras:   make(map[string]any),
	}
}

// Counter is a monotonically increasing atomic counter. A nil *Counter
// is a no-op; hot paths hold the handle and pay one nil test per event.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, registering it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge is an atomically set last-value instrument (occupancy, lengths,
// snapshot statistics). A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram is a fixed-bucket atomic histogram: Observe(v) increments
// the first bucket whose upper bound is >= v, or the overflow bucket.
// Bounds are set at registration and never change, so observations are
// a binary search plus one atomic add. A nil *Histogram is a no-op.
type Histogram struct {
	bounds    []int64 // ascending upper bounds; len(counts) = len(bounds)+1
	counts    []atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
	max       atomic.Int64
	exemplars []atomic.Pointer[exemplar] // worst observation per bucket
}

// exemplar remembers the worst observation that landed in a bucket and
// the trace that caused it, linking /metrics into the flight recorder.
type exemplar struct {
	val int64
	id  string
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveTraced records one value and, when traceID is non-empty, keeps
// it as the bucket's exemplar if it is the worst value seen there.
func (h *Histogram) ObserveTraced(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	for {
		cur := h.exemplars[i].Load()
		if cur != nil && cur.val >= v {
			return
		}
		if h.exemplars[i].CompareAndSwap(cur, &exemplar{val: v, id: traceID}) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot returns the bucket upper bounds and per-bucket counts (the
// final count is the overflow bucket, bound +inf).
func (h *Histogram) Snapshot() (bounds []int64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]int64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Histogram returns the named histogram, registering it with the given
// ascending upper bounds on first use. Later callers get the existing
// instrument regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds:    append([]int64(nil), bounds...),
			counts:    make([]atomic.Int64, len(bounds)+1),
			exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// HistShard is a single-goroutine accumulation buffer for a Histogram:
// Observe updates plain local counters, Flush merges them into the
// shared instrument with one atomic add per touched bucket. Workers
// observing per-item values at line rate shard locally and flush at
// batch end; totals are identical to observing the shared instrument
// directly, they just become visible at the flush.
type HistShard struct {
	h      *Histogram
	counts []int64
	count  int64
	sum    int64
	max    int64
	live   bool // max is meaningful only after an observation
}

// NewShard returns an accumulation buffer for h (nil on a nil histogram).
func (h *Histogram) NewShard() *HistShard {
	if h == nil {
		return nil
	}
	return &HistShard{h: h, counts: make([]int64, len(h.counts))}
}

// Observe records one value locally. A nil *HistShard is a no-op.
func (s *HistShard) Observe(v int64) {
	if s == nil {
		return
	}
	i := sort.Search(len(s.h.bounds), func(i int) bool { return s.h.bounds[i] >= v })
	s.counts[i]++
	s.count++
	s.sum += v
	if !s.live || v > s.max {
		s.max, s.live = v, true
	}
}

// Flush merges the shard into its histogram and clears it for reuse.
func (s *HistShard) Flush() {
	if s == nil || s.count == 0 {
		return
	}
	h := s.h
	for i, c := range s.counts {
		if c != 0 {
			h.counts[i].Add(c)
			s.counts[i] = 0
		}
	}
	h.count.Add(s.count)
	h.sum.Add(s.sum)
	for {
		m := h.max.Load()
		if s.max <= m || h.max.CompareAndSwap(m, s.max) {
			break
		}
	}
	s.count, s.sum, s.max, s.live = 0, 0, 0, false
}

// ExpBuckets returns n upper bounds starting at start and doubling, a
// convenient default for cycle and latency histograms.
func ExpBuckets(start int64, n int) []int64 {
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// SetManifest records one run-manifest entry (model, engine, git rev,
// ...). Manifest entries are exported verbatim by both exporters.
func (r *Registry) SetManifest(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.manifest[key] = value
	r.mu.Unlock()
}

// Manifest returns a copy of the manifest block.
func (r *Registry) Manifest() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.manifest))
	for k, v := range r.manifest {
		out[k] = v
	}
	return out
}

// PutExtra attaches an arbitrary JSON-marshalable value to the registry
// under key (e.g. bench's slowest_rows top-5 list). Extras appear in the
// JSON export only; the Prometheus exporter skips them.
func (r *Registry) PutExtra(key string, v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.extras[key] = v
	r.mu.Unlock()
}

// Counters returns a sorted snapshot of every counter.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	return out
}

// Gauges returns a snapshot of every gauge.
func (r *Registry) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	return out
}

// sortedKeys returns m's keys in sorted order, for stable exports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
