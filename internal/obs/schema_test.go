package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSchema = `{
  "type": "object",
  "required": ["manifest", "counters"],
  "additionalProperties": false,
  "properties": {
    "manifest": {
      "type": "object",
      "required": ["go"],
      "additionalProperties": { "type": "string" }
    },
    "counters": {
      "type": "object",
      "additionalProperties": { "type": "integer" }
    },
    "spans": {
      "type": "array",
      "minItems": 1,
      "items": {
        "type": "object",
        "required": ["name"],
        "properties": { "name": { "type": "string" } }
      }
    }
  }
}`

func mustSchema(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := ParseSchema([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidDocument(t *testing.T) {
	s := mustSchema(t, testSchema)
	doc := `{"manifest":{"go":"go1.x","platform":"linux"},"counters":{"a":1},"spans":[{"name":"x"}]}`
	if errs := s.Validate([]byte(doc)); errs != nil {
		t.Fatalf("valid document rejected: %v", errs)
	}
}

func TestSchemaViolations(t *testing.T) {
	s := mustSchema(t, testSchema)
	cases := []struct {
		name, doc, want string
	}{
		{"not json", `{`, "not JSON"},
		{"wrong top type", `[]`, "want type object"},
		{"missing required", `{"counters":{}}`, `missing required property "manifest"`},
		{"unexpected property", `{"manifest":{"go":"x"},"counters":{},"zzz":1}`, `unexpected property "zzz"`},
		{"bad manifest value", `{"manifest":{"go":1},"counters":{}}`, "want type string"},
		{"non-integer counter", `{"manifest":{"go":"x"},"counters":{"a":1.5}}`, "want type integer"},
		{"too few items", `{"manifest":{"go":"x"},"counters":{},"spans":[]}`, "at least 1"},
		{"bad item", `{"manifest":{"go":"x"},"counters":{},"spans":[{"nope":1}]}`, `missing required property "name"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := s.Validate([]byte(c.doc))
			if len(errs) == 0 {
				t.Fatalf("accepted invalid document %s", c.doc)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v, want one containing %q", errs, c.want)
			}
		})
	}
}

// TestSchemaReportsEveryViolation checks that validation does not stop at
// the first problem — metricscheck prints them all.
func TestSchemaReportsEveryViolation(t *testing.T) {
	s := mustSchema(t, testSchema)
	doc := `{"manifest":{"go":1},"counters":{"a":"x"},"zzz":1}`
	errs := s.Validate([]byte(doc))
	if len(errs) < 3 {
		t.Fatalf("got %d violations, want at least 3: %v", len(errs), errs)
	}
}

// TestCommittedSchemaAcceptsLiveExport validates a real registry export
// against the schema CI uses, so the schema file and the exporter cannot
// drift apart silently.
func TestCommittedSchemaAcceptsLiveExport(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "schemas", "metrics.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSchema(raw)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	r.StampRunManifest()
	r.SetManifest("machine", "ultrasparc")
	r.Counter("sched.ultrasparc.stall_cycles.raw").Add(12)
	r.Gauge("sched.cache.len").Set(3)
	r.Histogram("sched.ultrasparc.block_stalls", ExpBuckets(1, 8)).Observe(4)
	r.StartSpan("bench.row.130.li").End()
	r.PutExtra("slowest_rows", []SlowRowStub{{Name: "130.li", Millis: 2.25}})

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if errs := s.Validate([]byte(sb.String())); errs != nil {
		t.Fatalf("live export violates committed schema: %v\n%s", errs, sb.String())
	}
}

// SlowRowStub mirrors bench.SlowRow without importing bench (which would
// cycle: bench imports obs).
type SlowRowStub struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}
