package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"eel/internal/obs"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// fetchFlight pulls GET /debug/flight and parses the JSONL dump.
func fetchFlight(t *testing.T, url string) []*obs.TraceExport {
	t.Helper()
	resp, err := http.Get(url + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("flight: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("flight content-type %q", ct)
	}
	var out []*obs.TraceExport
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var e obs.TraceExport
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("flight line %q: %v", sc.Text(), err)
		}
		out = append(out, &e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// spanSumSlackNs is the absolute slack the 5%-of-wall attribution check
// allows on top of the percentage, so microsecond-scale requests (where
// span bookkeeping itself is a visible fraction) don't flap.
const spanSumSlackNs = 200_000

// checkSpanSum asserts the trace's top-level spans sum to its wall time
// within tol (fraction) plus the absolute slack — ISSUE 10's acceptance
// bar, mirrored by cmd/metricscheck -trace-sums in CI.
func checkSpanSum(t *testing.T, e *obs.TraceExport, tol float64) {
	t.Helper()
	sum := e.TopSpanNs()
	diff := e.WallNs - sum
	if diff < 0 {
		diff = -diff
	}
	allow := int64(tol*float64(e.WallNs)) + spanSumSlackNs
	if diff > allow {
		t.Errorf("trace %s (%s): spans sum to %dns of %dns wall (diff %dns > allowed %dns)\nspans: %+v",
			e.TraceID, e.Route, sum, e.WallNs, diff, allow, e.Spans)
	}
}

func spanNames(e *obs.TraceExport) map[string]obs.TraceSpan {
	m := make(map[string]obs.TraceSpan, len(e.Spans))
	for _, sp := range e.Spans {
		m[sp.Name] = sp
	}
	return m
}

func noteValue(sp obs.TraceSpan, key string) string {
	for _, n := range sp.Notes {
		if strings.HasPrefix(n, key+"=") {
			return n[len(key)+1:]
		}
	}
	return ""
}

// TestRequestTraceAttribution drives both /v1 routes with tracing on and
// checks the tentpole invariants: every 200 request trace's top-level
// spans sum to its wall time within 5% (+ absolute slack), the span
// taxonomy is present per route, the batch trace links back to its
// member request, and the request's batch.queue span names the batch.
func TestRequestTraceAttribution(t *testing.T) {
	cfg := Config{
		Flight:      obs.NewFlight(64),
		BatchWindow: time.Millisecond,
	}
	_, ts := testServer(t, cfg)

	resp, body := postSchedule(t, ts, "trace-tenant", scheduleRequest{Blocks: blockWords(t, 31, 30)})
	if resp.StatusCode != 200 {
		t.Fatalf("schedule: %d %s", resp.StatusCode, body)
	}
	image := editImage(t)
	eresp, err := ts.Client().Post(ts.URL+"/v1/edit?op=reschedule&machine=ultrasparc",
		"application/octet-stream", bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	ebody := new(bytes.Buffer)
	ebody.ReadFrom(eresp.Body)
	eresp.Body.Close()
	if eresp.StatusCode != 200 {
		t.Fatalf("edit: %d %s", eresp.StatusCode, ebody)
	}

	traces := fetchFlight(t, ts.URL)
	byKindRoute := func(kind, route string) *obs.TraceExport {
		for _, e := range traces {
			if e.Kind == kind && e.Route == route {
				return e
			}
		}
		t.Fatalf("no %s/%s trace in flight dump (%d traces)", kind, route, len(traces))
		return nil
	}

	sched := byKindRoute("request", "/v1/schedule")
	checkSpanSum(t, sched, 0.05)
	if sched.Tenant != "trace-tenant" {
		t.Errorf("schedule trace tenant %q", sched.Tenant)
	}
	if sched.BytesIn == 0 || sched.BytesOut == 0 {
		t.Errorf("schedule trace bytes in/out = %d/%d, want both > 0", sched.BytesIn, sched.BytesOut)
	}
	sspans := spanNames(sched)
	for _, name := range []string{"admit.wait", "req.decode", "batch.queue", "respond.encode"} {
		if _, ok := sspans[name]; !ok {
			t.Fatalf("schedule trace missing span %s: %+v", name, sched.Spans)
		}
	}

	edit := byKindRoute("request", "/v1/edit")
	checkSpanSum(t, edit, 0.05)
	espans := spanNames(edit)
	for _, name := range []string{"admit.wait", "req.decode", "cache.lookup", "eel.edit", "respond.encode"} {
		if _, ok := espans[name]; !ok {
			t.Fatalf("edit trace missing span %s: %+v", name, edit.Spans)
		}
	}
	// Two cache.lookup spans can coexist in an edit trace: the editor
	// LRU's at top level and the core scheduler's aggregate nested under
	// eel.schedule; the editor one carries the editor= note.
	var editorNote string
	for _, sp := range edit.Spans {
		if sp.Name == "cache.lookup" && sp.Parent == -1 {
			editorNote = noteValue(sp, "editor")
		}
	}
	if editorNote != "miss" {
		t.Errorf("first edit cache.lookup editor note %q, want miss", editorNote)
	}
	// The edit's scheduling phases hang under eel.schedule, which hangs
	// under eel.edit — children, so exempt from the top-level sum.
	if _, ok := espans["eel.schedule"]; !ok {
		t.Fatalf("edit trace missing eel.schedule child: %+v", edit.Spans)
	}

	// Batch trace: linked both ways.
	batch := byKindRoute("batch", "")
	batchID := noteValue(sspans["batch.queue"], "batch")
	if batchID != batch.TraceID {
		t.Errorf("request's batch note %q != batch trace ID %q", batchID, batch.TraceID)
	}
	bspans := spanNames(batch)
	for _, name := range []string{"batch.gather", "batch.assemble", "batch.schedule", "member"} {
		if _, ok := bspans[name]; !ok {
			t.Fatalf("batch trace missing span %s: %+v", name, batch.Spans)
		}
	}
	var linked bool
	for _, sp := range batch.Spans {
		if sp.Name == "member" && noteValue(sp, "trace") == sched.TraceID {
			linked = true
			if got := noteValue(sp, "blocks"); got != "30" {
				t.Errorf("member span blocks note %q, want 30", got)
			}
		}
	}
	if !linked {
		t.Errorf("no member span links back to request %s: %+v", sched.TraceID, batch.Spans)
	}
	// Scheduling phase aggregates nest under batch.schedule.
	if sp, ok := bspans["sched.depgraph"]; !ok || batch.Spans[sp.Parent].Name != "batch.schedule" {
		t.Errorf("sched.depgraph missing or not under batch.schedule: %+v", batch.Spans)
	}

	// Every flight line validates against the committed trace schema.
	raw, err := os.ReadFile("../../schemas/trace.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := obs.ParseSchema(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range traces {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if errs := schema.Validate(line); len(errs) > 0 {
			t.Fatalf("trace %s fails schema: %v", e.TraceID, errs)
		}
	}
}

// editImage builds a small executable for /v1/edit tests.
func editImage(t *testing.T) []byte {
	t.Helper()
	b, ok := workload.ByName("130.li", spawn.UltraSPARC)
	if !ok {
		t.Fatal("130.li missing")
	}
	x, err := workload.Generate(b, workload.Config{
		Machine: spawn.UltraSPARC, DynamicInsts: 1 << 13, Seed: 5, SkipCalibration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return x.Marshal()
}

// TestFlightDisabled404: without -flight the endpoint 404s with the
// structured error envelope, and requests pay no tracing.
func TestFlightDisabled404(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("flight 404 body not an error envelope: %v", err)
	}
}

// TestAnomalyClassification: quota rejections and slow requests land in
// the flight recorder's anomaly ring with the right label.
func TestAnomalyClassification(t *testing.T) {
	flight := obs.NewFlight(4)
	_, ts := testServer(t, Config{
		Flight:         flight,
		SlowRequest:    50 * time.Millisecond,
		AllowTestDelay: true,
		BatchWindow:    time.Millisecond,
	})
	words := blockWords(t, 37, 2)

	// Slow: the test-delay hook holds the request past SlowRequest.
	body, _ := json.Marshal(scheduleRequest{Blocks: words})
	hr, _ := http.NewRequest("POST", ts.URL+"/v1/schedule?delay_ms=80", bytes.NewReader(body))
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Error: empty block list.
	r2, _ := postSchedule(t, ts, "", scheduleRequest{})
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request status %d", r2.StatusCode)
	}

	got := map[string]bool{}
	for _, e := range fetchFlight(t, ts.URL) {
		if e.Anomaly != "" {
			got[e.Anomaly] = true
		}
	}
	for _, want := range []string{"slow", "error"} {
		if !got[want] {
			t.Errorf("no %q anomaly retained; have %v", want, got)
		}
	}
}

// TestDrainUnderLoad is the satellite drain test: with requests in
// flight, StartDraining + server shutdown + Drain must leave a cleanly
// terminated access log (every line complete JSON, schema-valid) and
// the drained requests retained in the flight recorder.
func TestDrainUnderLoad(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "access.jsonl")
	access, err := obs.CreateJSONL(logPath)
	if err != nil {
		t.Fatal(err)
	}
	flight := obs.NewFlight(64)
	cfg := Config{
		Registry:       obs.NewRegistry(),
		Flight:         flight,
		AccessLog:      access,
		AllowTestDelay: true,
		BatchWindow:    time.Millisecond,
		MaxInflight:    8,
	}
	s := New(cfg)
	srv := &http.Server{Handler: s}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()

	words := blockWords(t, 41, 3)
	const inFlight = 4
	var wg sync.WaitGroup
	codes := make([]int, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(scheduleRequest{Blocks: words})
			resp, err := http.Post(fmt.Sprintf("%s/v1/schedule?delay_ms=300", url),
				"application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			codes[i] = resp.StatusCode
			resp.Body.Close()
		}(i)
	}
	// Let the requests get admitted, then drain mid-flight.
	deadline := time.Now().Add(2 * time.Second)
	for s.admission.Inflight() < inFlight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests in flight", s.admission.Inflight())
		}
		time.Sleep(time.Millisecond)
	}
	s.StartDraining()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// cmd/eeld closes the access log after Drain; mirror that here
	// (Close flushes and closes the underlying file).
	if err := access.Close(); err != nil {
		t.Fatal(err)
	}

	completed := 0
	for _, c := range codes {
		if c == 200 {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("no in-flight request completed through the drain")
	}

	// Access log: byte-clean JSONL, every line schema-valid.
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatalf("access log truncated: %d bytes, no trailing newline", len(raw))
	}
	schemaRaw, err := os.ReadFile("../../schemas/trace.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := obs.ParseSchema(schemaRaw)
	if err != nil {
		t.Fatal(err)
	}
	logged := 0
	for _, line := range bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n")) {
		var e obs.TraceExport
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		if errs := schema.Validate(line); len(errs) > 0 {
			t.Fatalf("access log line fails schema: %v", errs)
		}
		if e.Route == "/v1/schedule" {
			logged++
		}
	}
	if logged < completed {
		t.Fatalf("access log has %d schedule lines, want >= %d completed", logged, completed)
	}

	// Flight recorder retained the drained requests too.
	recorded, _ := flight.Stats()
	if recorded < int64(completed) {
		t.Fatalf("flight recorded %d traces, want >= %d", recorded, completed)
	}
}
