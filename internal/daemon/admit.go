package daemon

import (
	"fmt"
	"strings"
	"sync"
)

// admission implements the server's request admission policy: a fixed
// number of inflight slots, a bounded queue of requests waiting for a
// slot (overflow is rejected with 503, never buffered unboundedly), and
// an optional per-tenant cap on concurrently admitted requests (429).
type admission struct {
	sem         chan struct{} // inflight slots
	queueDepth  int
	tenantQuota int

	mu      sync.Mutex
	queued  int            // admitted, waiting for a slot
	tenants map[string]int // admitted (queued or inflight) per tenant
}

func newAdmission(inflight, queueDepth, tenantQuota int) *admission {
	return &admission{
		sem:         make(chan struct{}, inflight),
		queueDepth:  queueDepth,
		tenantQuota: tenantQuota,
		tenants:     make(map[string]int),
	}
}

// admit blocks until the request holds an inflight slot, or rejects it
// immediately. On success it returns the release func (call exactly
// once, when the request finishes) and code 0; on rejection release is
// nil and code/msg describe the failure.
func (a *admission) admit(tenant string, draining bool) (release func(), code int, msg string) {
	if draining {
		return nil, 503, "draining"
	}
	a.mu.Lock()
	if a.tenantQuota > 0 && a.tenants[tenant] >= a.tenantQuota {
		a.mu.Unlock()
		return nil, 429, fmt.Sprintf("tenant %q exceeds its quota of %d concurrent requests", tenant, a.tenantQuota)
	}
	if a.queued >= a.queueDepth {
		a.mu.Unlock()
		return nil, 503, "admission queue full"
	}
	a.queued++
	a.tenants[tenant]++
	a.mu.Unlock()

	a.sem <- struct{}{} // wait for an inflight slot

	a.mu.Lock()
	a.queued--
	a.mu.Unlock()
	return func() {
		<-a.sem
		a.mu.Lock()
		if a.tenants[tenant]--; a.tenants[tenant] == 0 {
			delete(a.tenants, tenant)
		}
		a.mu.Unlock()
	}, 0, ""
}

// Inflight reports how many requests currently hold a slot.
func (a *admission) Inflight() int { return len(a.sem) }

// Queued reports how many admitted requests are waiting for a slot.
func (a *admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// rejectSlug maps an admission failure message to the label value used
// in eeld.rejects_total{reason=...}.
func rejectSlug(msg string) string {
	switch {
	case msg == "draining":
		return "draining"
	case strings.Contains(msg, "quota"):
		return "tenant_quota"
	default:
		return "queue_full"
	}
}
