package daemon

import (
	"time"

	"eel/internal/core"
	"eel/internal/obs"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// The batcher coalesces blocks from concurrent /v1/schedule requests
// into single core.ScheduleBlocks calls: one batcher per machine model,
// flushing when the window elapses after the first arrival or when the
// batch reaches BatchMaxBlocks. Batching only changes wall clock, never
// bytes — blocks carry no cross-block scheduler state, so a block's
// schedule is identical whether it travels alone or in a thousand-block
// batch (the same property ScheduleBlocks itself relies on).

type batchKey struct {
	machine spawn.Machine
}

type batchReq struct {
	blocks [][]sparc.Inst
	resp   chan batchResp
}

type batchResp struct {
	blocks [][]sparc.Inst
	err    error
}

type batcher struct {
	sched     *core.Scheduler
	ch        chan batchReq
	stop      chan struct{}
	window    time.Duration
	maxBlocks int
	reg       *obs.Registry
}

// batcherFor returns (starting if needed) the batcher for a model.
func (s *Server) batcherFor(model *spawn.Model) *batcher {
	key := batchKey{machine: model.Machine}
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if b, ok := s.batchers[key]; ok {
		return b
	}
	b := &batcher{
		sched: core.New(model, core.Options{
			Workers: s.cfg.Workers,
			Cache:   s.cache,
			Obs:     s.reg,
		}),
		ch:        make(chan batchReq),
		stop:      make(chan struct{}),
		window:    s.cfg.BatchWindow,
		maxBlocks: s.cfg.BatchMaxBlocks,
		reg:       s.reg,
	}
	s.batchers[key] = b
	s.batchWG.Add(1)
	go func() {
		defer s.batchWG.Done()
		b.loop()
	}()
	return b
}

// scheduleBatched routes one request's blocks through the model's
// batcher and waits for its slice of the batch result.
func (s *Server) scheduleBatched(model *spawn.Model, blocks [][]sparc.Inst) ([][]sparc.Inst, error) {
	b := s.batcherFor(model)
	req := batchReq{blocks: blocks, resp: make(chan batchResp, 1)}
	b.ch <- req
	r := <-req.resp
	return r.blocks, r.err
}

// stopBatchers shuts the batch loops down. Callers must guarantee no
// request is in a batcher (Drain runs after http.Server.Shutdown, which
// waits out every in-flight handler).
func (s *Server) stopBatchers() {
	s.batchMu.Lock()
	for _, b := range s.batchers {
		close(b.stop)
	}
	s.batchMu.Unlock()
	s.batchWG.Wait()
	s.batchMu.Lock()
	for _, b := range s.batchers {
		b.sched.Close()
	}
	s.batchMu.Unlock()
}

func (b *batcher) loop() {
	for {
		var first batchReq
		select {
		case <-b.stop:
			return
		case first = <-b.ch:
		}
		reqs := []batchReq{first}
		n := len(first.blocks)
		timer := time.NewTimer(b.window)
	gather:
		for n < b.maxBlocks {
			select {
			case r := <-b.ch:
				reqs = append(reqs, r)
				n += len(r.blocks)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()

		flat := make([][]sparc.Inst, 0, n)
		for _, r := range reqs {
			flat = append(flat, r.blocks...)
		}
		out, err := b.sched.ScheduleBlocks(flat)
		if err != nil {
			for _, r := range reqs {
				r.resp <- batchResp{err: err}
			}
			continue
		}
		off := 0
		for _, r := range reqs {
			r.resp <- batchResp{blocks: out[off : off+len(r.blocks)]}
			off += len(r.blocks)
		}
		b.reg.Counter("eeld.batches_total").Inc()
		b.reg.Histogram("eeld.batch.requests", obs.ExpBuckets(1, 10)).Observe(int64(len(reqs)))
		b.reg.Histogram("eeld.batch.blocks", obs.ExpBuckets(1, 14)).Observe(int64(n))
	}
}
