package daemon

import (
	"context"
	"strconv"
	"time"

	"eel/internal/core"
	"eel/internal/obs"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// The batcher coalesces blocks from concurrent /v1/schedule requests
// into single core.ScheduleBlocks calls: one batcher per machine model,
// flushing when the window elapses after the first arrival or when the
// batch reaches BatchMaxBlocks. Batching only changes wall clock, never
// bytes — blocks carry no cross-block scheduler state, so a block's
// schedule is identical whether it travels alone or in a thousand-block
// batch (the same property ScheduleBlocks itself relies on).

type batchKey struct {
	machine spawn.Machine
}

type batchReq struct {
	blocks [][]sparc.Inst
	// traceID links the member span in the batch trace back to the
	// request trace ("" when the request is untraced).
	traceID string
	resp    chan batchResp
}

type batchResp struct {
	blocks [][]sparc.Inst
	// batchID is the batch trace's ID, noted on the request's
	// batch.queue span so a request trace can be joined to the shared
	// batch trace in the flight recorder ("" when tracing is off).
	batchID string
	err     error
}

type batcher struct {
	sched     *core.Scheduler
	ch        chan batchReq
	stop      chan struct{}
	window    time.Duration
	maxBlocks int
	reg       *obs.Registry
	// Batch traces: each flushed batch becomes one kind="batch" trace
	// in the flight recorder, with per-member spans linking back to the
	// member requests' traces. nil flight + traceOn=false = untraced.
	flight  *obs.Flight
	traceOn bool
}

// batcherFor returns (starting if needed) the batcher for a model.
func (s *Server) batcherFor(model *spawn.Model) *batcher {
	key := batchKey{machine: model.Machine}
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if b, ok := s.batchers[key]; ok {
		return b
	}
	b := &batcher{
		sched: core.New(model, core.Options{
			Workers: s.cfg.Workers,
			Cache:   s.cache,
			Obs:     s.reg,
		}),
		ch:        make(chan batchReq),
		stop:      make(chan struct{}),
		window:    s.cfg.BatchWindow,
		maxBlocks: s.cfg.BatchMaxBlocks,
		reg:       s.reg,
		flight:    s.flight,
		traceOn:   s.tracing(),
	}
	s.batchers[key] = b
	s.batchWG.Add(1)
	go func() {
		defer s.batchWG.Done()
		b.loop()
	}()
	return b
}

// scheduleBatched routes one request's blocks through the model's
// batcher and waits for its slice of the batch result. The returned
// batch ID identifies the shared batch trace the request rode in (""
// when tracing is off).
func (s *Server) scheduleBatched(ctx context.Context, model *spawn.Model, blocks [][]sparc.Inst) ([][]sparc.Inst, string, error) {
	b := s.batcherFor(model)
	req := batchReq{blocks: blocks, resp: make(chan batchResp, 1)}
	if tr := obs.TraceFrom(ctx); tr != nil {
		req.traceID = tr.ID()
	}
	b.ch <- req
	r := <-req.resp
	return r.blocks, r.batchID, r.err
}

// stopBatchers shuts the batch loops down. Callers must guarantee no
// request is in a batcher (Drain runs after http.Server.Shutdown, which
// waits out every in-flight handler).
func (s *Server) stopBatchers() {
	s.batchMu.Lock()
	for _, b := range s.batchers {
		close(b.stop)
	}
	s.batchMu.Unlock()
	s.batchWG.Wait()
	s.batchMu.Lock()
	for _, b := range s.batchers {
		b.sched.Close()
	}
	s.batchMu.Unlock()
}

func (b *batcher) loop() {
	for {
		var first batchReq
		select {
		case <-b.stop:
			return
		case first = <-b.ch:
		}
		// The batch trace starts at first arrival, so batch.gather
		// measures the window spent waiting for co-travellers and each
		// member span's start offset is its arrival time in the batch.
		var (
			bt       *obs.Trace
			arrivals []int64
		)
		if b.traceOn {
			bt = obs.NewTrace("batch")
			arrivals = append(arrivals, 0)
		}
		reqs := []batchReq{first}
		n := len(first.blocks)
		gspan := bt.StartSpan("batch.gather")
		timer := time.NewTimer(b.window)
	gather:
		for n < b.maxBlocks {
			select {
			case r := <-b.ch:
				reqs = append(reqs, r)
				n += len(r.blocks)
				if bt != nil {
					arrivals = append(arrivals, bt.SinceStart())
				}
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		gspan.End()

		aspan := bt.StartSpan("batch.assemble")
		flat := make([][]sparc.Inst, 0, n)
		for _, r := range reqs {
			flat = append(flat, r.blocks...)
		}
		aspan.End()
		sspan := bt.StartSpan("batch.schedule")
		ctx := context.Background()
		if bt != nil {
			ctx = obs.WithTraceParent(ctx, bt, sspan.Idx())
		}
		out, err := b.sched.ScheduleBlocksCtx(ctx, flat)
		sspan.End()

		var batchID string
		if bt != nil {
			batchID = bt.ID()
		}
		if err != nil {
			for _, r := range reqs {
				r.resp <- batchResp{batchID: batchID, err: err}
			}
			b.finishTrace(bt, reqs, arrivals, n, err)
			continue
		}
		off := 0
		for _, r := range reqs {
			r.resp <- batchResp{blocks: out[off : off+len(r.blocks)], batchID: batchID}
			off += len(r.blocks)
		}
		b.finishTrace(bt, reqs, arrivals, n, nil)
		b.reg.Counter("eeld.batches_total").Inc()
		b.reg.Histogram("eeld.batch.requests", obs.ExpBuckets(1, 10)).Observe(int64(len(reqs)))
		b.reg.Histogram("eeld.batch.blocks", obs.ExpBuckets(1, 14)).Observe(int64(n))
	}
}

// finishTrace closes the batch trace: one top-level "member" span per
// coalesced request, spanning its arrival offset to the batch's end and
// linking back to the member's request trace, then records the trace in
// the flight recorder.
func (b *batcher) finishTrace(bt *obs.Trace, reqs []batchReq, arrivals []int64, blocks int, err error) {
	if bt == nil {
		return
	}
	end := bt.SinceStart()
	for i, r := range reqs {
		notes := []string{"blocks=" + strconv.Itoa(len(r.blocks))}
		if r.traceID != "" {
			notes = append(notes, "trace="+r.traceID)
		}
		bt.AddSpan("member", -1, arrivals[i], end-arrivals[i], notes...)
	}
	bt.Annotate("requests", strconv.Itoa(len(reqs)))
	bt.Annotate("blocks", strconv.Itoa(blocks))
	if err != nil {
		bt.Anomaly = "error"
	}
	bt.Finish()
	b.flight.Record(bt.Export())
}
