// Package daemon implements scheduling-as-a-service: the HTTP server
// behind cmd/eeld. It front-ends the executable-editing library with the
// pieces a long-running multi-tenant service needs — request admission
// with a bounded queue, per-tenant concurrency quotas, cross-request
// batching into core.ScheduleBlocks, one shared sharded schedule cache
// (spilled to disk across restarts), per-executable Editor reuse, and
// /metrics + /healthz served off internal/obs.
//
// Request flow (DESIGN.md §11):
//
//	admit (queue bound, tenant quota)
//	  -> /v1/schedule: batcher (cross-request coalescing) -> shared Scheduler
//	  -> /v1/edit:     editor LRU (per-image analysis)    -> shared cache
//	  -> encode response, count eeld.requests_total{route,code}
//
// Every error path returns structured JSON ({"error": ...}) with the
// matching status code, and every response — success or failure — is
// counted by route and code, so the CI smoke job can assert on failure
// shapes from the /metrics export alone.
package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/obs"
	"eel/internal/qpt"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Config tunes the server. The zero value is usable: defaults below.
type Config struct {
	// CacheCapacity bounds the shared schedule cache (0 = core default).
	CacheCapacity int
	// MaxInflight is the number of requests processed concurrently;
	// admitted requests beyond it wait in the queue. Default 8.
	MaxInflight int
	// QueueDepth bounds how many admitted requests may wait for an
	// inflight slot before new ones are rejected with 503. Default 64.
	QueueDepth int
	// TenantQuota caps one tenant's concurrently admitted requests
	// (X-Eeld-Tenant header; "anon" when absent). 0 disables quotas.
	TenantQuota int
	// BatchWindow is how long the cross-request batcher waits for more
	// blocks after the first arrival before flushing. Default 2ms.
	BatchWindow time.Duration
	// BatchMaxBlocks flushes a batch early once it holds this many
	// blocks. Default 512.
	BatchMaxBlocks int
	// Workers is the scheduling worker-pool size per batch/edit
	// (core.Options.Workers; output is worker-count independent).
	Workers int
	// EditorCap bounds the per-executable Editor LRU. Default 32.
	EditorCap int
	// SpillPath, when set, is the schedule-cache spill file: loaded by
	// LoadSpill at boot, written by Drain.
	SpillPath string
	// SpillMaxBytes bounds the spill file size (0 = unbounded).
	SpillMaxBytes int
	// Fingerprint keys spill validity across builds (cmd/eeld passes
	// the git revision). See core.Cache.SaveSpill.
	Fingerprint string
	// Registry receives all daemon telemetry. Must be non-nil.
	Registry *obs.Registry
	// AllowTestDelay enables the delay_ms query parameter, which holds
	// an admitted request open — the CI drain test's hook. Never enable
	// in production.
	AllowTestDelay bool
	// Flight, when non-nil, turns on request tracing and retains
	// completed traces for GET /debug/flight (cmd/eeld -flight).
	Flight *obs.Flight
	// AccessLog, when non-nil, turns on request tracing and receives one
	// TraceExport JSON line per completed request (cmd/eeld -log).
	AccessLog *obs.JSONL
	// SlowRequest, when > 0, marks requests slower than it as anomalous
	// ("slow"), pinning them in the flight recorder's anomaly ring.
	SlowRequest time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMaxBlocks <= 0 {
		c.BatchMaxBlocks = 512
	}
	if c.EditorCap <= 0 {
		c.EditorCap = 32
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the scheduling service. Create with New, serve with any
// http.Server, stop with Drain.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *core.Cache
	mux   *http.ServeMux

	admission *admission

	// Request tracing (nil = disabled: the hot path pays one pointer
	// test in instrument and nothing else).
	flight *obs.Flight
	access *obs.JSONL
	slow   time.Duration

	modelMu sync.Mutex
	models  map[spawn.Machine]*spawn.Model

	editors *editorLRU

	batchMu  sync.Mutex
	batchers map[batchKey]*batcher
	batchWG  sync.WaitGroup
	draining bool
}

// New builds a Server and, when configured, restores the schedule cache
// from its spill file. A corrupt spill is logged into the registry
// (eeld.spill.corrupt) and ignored: the daemon starts cold.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Registry,
		cache:     core.NewCache(cfg.CacheCapacity),
		mux:       http.NewServeMux(),
		admission: newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.TenantQuota),
		models:    make(map[spawn.Machine]*spawn.Model),
		editors:   newEditorLRU(cfg.EditorCap),
		batchers:  make(map[batchKey]*batcher),
		flight:    cfg.Flight,
		access:    cfg.AccessLog,
		slow:      cfg.SlowRequest,
	}
	if cfg.SpillPath != "" {
		n, err := s.cache.LoadSpill(cfg.SpillPath, cfg.Fingerprint)
		if err != nil {
			s.reg.Counter("eeld.spill.corrupt").Inc()
		}
		s.reg.Gauge("eeld.spill.loaded_entries").Set(int64(n))
	}
	s.mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.Handle("POST /v1/schedule", s.instrument("/v1/schedule", s.handleSchedule))
	s.mux.Handle("POST /v1/edit", s.instrument("/v1/edit", s.handleEdit))
	s.mux.Handle("GET /debug/flight", s.instrument("/debug/flight", s.handleFlight))
	return s
}

// tracing reports whether request traces are being collected.
func (s *Server) tracing() bool { return s.flight != nil || s.access != nil }

// Cache exposes the shared schedule cache (stats reporting, tests).
func (s *Server) Cache() *core.Cache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter records the response code and byte count for the request
// counter and the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the per-route request counter and
// latency histogram, and — when tracing is on — the request trace's
// whole lifecycle: created here, carried in the request context, and
// after the handler returns finished, classified (error / quota / slow),
// recorded in the flight recorder, written to the access log, and linked
// into the latency histogram as the bucket's exemplar. Counting happens
// after the handler returns, so every exit path — including structured
// errors — lands in eeld.requests_total{route,code}.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		var tr *obs.Trace
		if s.tracing() {
			tr = obs.NewTrace("request")
			tr.Route = route
			tr.Tenant = tenantOf(r)
			if r.ContentLength > 0 {
				tr.BytesIn = r.ContentLength
			}
			r = r.WithContext(obs.WithTrace(r.Context(), tr))
		}
		h(sw, r)
		lat := time.Since(start)
		s.reg.Counter(obs.LabeledName("eeld.requests_total",
			"route", route, "code", strconv.Itoa(sw.code))).Inc()
		hist := s.reg.Histogram(obs.LabeledName("eeld.request_micros", "route", route),
			obs.ExpBuckets(50, 16))
		if tr == nil {
			hist.Observe(lat.Microseconds())
			return
		}
		tr.Code = sw.code
		tr.BytesOut = sw.bytes
		switch {
		case sw.code == http.StatusTooManyRequests:
			tr.Anomaly = "quota"
		case sw.code >= 400:
			tr.Anomaly = "error"
		case s.slow > 0 && lat > s.slow:
			tr.Anomaly = "slow"
		}
		tr.Finish()
		e := tr.Export()
		s.flight.Record(e)
		if err := s.access.Write(e); err != nil {
			s.reg.Counter("eeld.access_log.errors").Inc()
		}
		hist.ObserveTraced(lat.Microseconds(), tr.ID())
	})
}

// errorBody is the JSON shape of every failure response.
type errorBody struct {
	Error string `json:"error"`
}

// fail writes the structured JSON error envelope with the given status.
func fail(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// tenantOf resolves the request's tenant for quota accounting.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Eeld-Tenant"); t != "" {
		return t
	}
	return "anon"
}

// testDelay honors the CI drain hook: with AllowTestDelay, a request may
// carry delay_ms to stay in flight while the harness sends SIGTERM.
func (s *Server) testDelay(r *http.Request) {
	if !s.cfg.AllowTestDelay {
		return
	}
	if ms, err := strconv.Atoi(r.URL.Query().Get("delay_ms")); err == nil && ms > 0 {
		if ms > 10_000 {
			ms = 10_000
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
}

// model loads (once) the named machine model.
func (s *Server) model(name string) (*spawn.Model, error) {
	m := spawn.Machine(name)
	if name == "" {
		m = spawn.UltraSPARC
	}
	s.modelMu.Lock()
	defer s.modelMu.Unlock()
	if md, ok := s.models[m]; ok {
		return md, nil
	}
	md, err := spawn.Load(m)
	if err != nil {
		return nil, err
	}
	s.models[m] = md
	return md, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.batchMu.Lock()
	draining := s.draining
	s.batchMu.Unlock()
	if draining {
		fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.snapshotGauges()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			fail(w, http.StatusInternalServerError, "export: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		fail(w, http.StatusInternalServerError, "export: %v", err)
	}
}

// handleFlight dumps the flight recorder as JSONL (one TraceExport per
// line, schemas/trace.schema.json). 404 when tracing is disabled.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		fail(w, http.StatusNotFound, "flight recorder disabled (start eeld with -flight)")
		return
	}
	recorded, anomalous := s.flight.Stats()
	s.reg.Gauge("eeld.flight.recorded").Set(recorded)
	s.reg.Gauge("eeld.flight.anomalous").Set(anomalous)
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := s.flight.WriteJSONL(w); err != nil {
		s.reg.Counter("eeld.flight.dump_errors").Inc()
	}
}

// snapshotGauges refreshes point-in-time gauges right before an export.
func (s *Server) snapshotGauges() {
	hits, misses := s.cache.Stats()
	s.reg.Gauge("eeld.cache.hits").Set(int64(hits))
	s.reg.Gauge("eeld.cache.misses").Set(int64(misses))
	s.reg.Gauge("eeld.cache.len").Set(int64(s.cache.Len()))
	s.reg.Gauge("eeld.cache.capacity").Set(int64(s.cache.Capacity()))
	s.reg.Gauge("eeld.editors").Set(int64(s.editors.Len()))
	s.reg.Gauge("eeld.inflight").Set(int64(s.admission.Inflight()))
	s.reg.Gauge("eeld.queued").Set(int64(s.admission.Queued()))
	// The host's core count and resolved scheduling pool size, so load
	// generators (cmd/eelload) can stamp latency series with the
	// capacity they were measured against.
	s.reg.Gauge("eeld.host_cores").Set(int64(runtime.NumCPU()))
	s.reg.Gauge("eeld.pool_workers").Set(int64(s.poolWorkers()))
}

// poolWorkers resolves Config.Workers the way core.Options does.
func (s *Server) poolWorkers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	if s.cfg.Workers < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// scheduleRequest is the /v1/schedule JSON body: raw instruction words
// per block, scheduled independently (each block must be a full basic
// block: straight-line, or CTI in the penultimate slot).
type scheduleRequest struct {
	Machine string     `json:"machine,omitempty"`
	Blocks  [][]uint32 `json:"blocks"`
}

type scheduleResponse struct {
	Machine string     `json:"machine"`
	Blocks  [][]uint32 `json:"blocks"`
}

// maxScheduleBody bounds a /v1/schedule request body (16 MiB of JSON).
const maxScheduleBody = 16 << 20

// httpError carries a failure out of a decode helper along with the
// status it maps to, so handlers can fail from one place per span.
type httpError struct {
	code int
	msg  string
}

func httpErrorf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// decodeSchedule reads and validates a /v1/schedule body: the request
// trace's req.decode span covers exactly this work.
func (s *Server) decodeSchedule(r *http.Request) (*spawn.Model, [][]sparc.Inst, *httpError) {
	var req scheduleRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScheduleBody+1))
	if err != nil {
		return nil, nil, httpErrorf(http.StatusBadRequest, "reading body: %v", err)
	}
	if len(body) > maxScheduleBody {
		return nil, nil, httpErrorf(http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxScheduleBody)
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, httpErrorf(http.StatusBadRequest, "parsing request: %v", err)
	}
	if len(req.Blocks) == 0 {
		return nil, nil, httpErrorf(http.StatusBadRequest, "no blocks in request")
	}
	model, err := s.model(req.Machine)
	if err != nil {
		return nil, nil, httpErrorf(http.StatusBadRequest, "machine: %v", err)
	}
	blocks := make([][]sparc.Inst, len(req.Blocks))
	for i, words := range req.Blocks {
		block := make([]sparc.Inst, len(words))
		for j, word := range words {
			inst, err := sparc.Decode(word)
			if err != nil {
				return nil, nil, httpErrorf(http.StatusBadRequest, "block %d word %d: %v", i, j, err)
			}
			block[j] = inst
		}
		blocks[i] = block
	}
	return model, blocks, nil
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	asp := tr.StartSpan("admit.wait")
	release, code, msg := s.admission.admit(tenantOf(r), s.isDraining())
	asp.End()
	if code != 0 {
		s.countReject(msg)
		fail(w, code, "%s", msg)
		return
	}
	defer release()

	dsp := tr.StartSpan("req.decode")
	s.testDelay(r)
	model, blocks, herr := s.decodeSchedule(r)
	dsp.End()
	if herr != nil {
		fail(w, herr.code, "%s", herr.msg)
		return
	}

	qsp := tr.StartSpan("batch.queue")
	scheduled, batchID, err := s.scheduleBatched(r.Context(), model, blocks)
	if batchID != "" {
		qsp.Note("batch", batchID)
	}
	qsp.End()
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "scheduling: %v", err)
		return
	}

	esp := tr.StartSpan("respond.encode")
	defer esp.End()
	resp := scheduleResponse{Machine: string(model.Machine), Blocks: make([][]uint32, len(scheduled))}
	for i, block := range scheduled {
		words := make([]uint32, len(block))
		for j, inst := range block {
			word, err := sparc.Encode(inst)
			if err != nil {
				fail(w, http.StatusInternalServerError, "encoding block %d: %v", i, err)
				return
			}
			words[j] = word
		}
		resp.Blocks[i] = words
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

// maxEditBody bounds a /v1/edit request body (64 MiB image).
const maxEditBody = 64 << 20

// decodeEdit reads and validates a /v1/edit request: the request
// trace's req.decode span covers exactly this work.
func (s *Server) decodeEdit(r *http.Request) (op string, model *spawn.Model, body []byte, herr *httpError) {
	q := r.URL.Query()
	op = q.Get("op")
	switch op {
	case "", "reschedule", "instrument":
	default:
		return "", nil, nil, httpErrorf(http.StatusBadRequest, "unknown op %q (want reschedule or instrument)", op)
	}
	model, err := s.model(q.Get("machine"))
	if err != nil {
		return "", nil, nil, httpErrorf(http.StatusBadRequest, "machine: %v", err)
	}
	body, err = io.ReadAll(io.LimitReader(r.Body, maxEditBody+1))
	if err != nil {
		return "", nil, nil, httpErrorf(http.StatusBadRequest, "reading body: %v", err)
	}
	if len(body) > maxEditBody {
		return "", nil, nil, httpErrorf(http.StatusRequestEntityTooLarge, "image exceeds %d bytes", maxEditBody)
	}
	return op, model, body, nil
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	asp := tr.StartSpan("admit.wait")
	release, code, msg := s.admission.admit(tenantOf(r), s.isDraining())
	asp.End()
	if code != 0 {
		s.countReject(msg)
		fail(w, code, "%s", msg)
		return
	}
	defer release()

	dsp := tr.StartSpan("req.decode")
	s.testDelay(r)
	op, model, body, herr := s.decodeEdit(r)
	dsp.End()
	if herr != nil {
		fail(w, herr.code, "%s", herr.msg)
		return
	}

	csp := tr.StartSpan("cache.lookup")
	ed, hit, err := s.editors.open(body, s.cache)
	if err == nil {
		if hit {
			csp.Note("editor", "hit")
		} else {
			csp.Note("editor", "miss")
		}
	}
	csp.End()
	if err != nil {
		fail(w, http.StatusBadRequest, "opening executable: %v", err)
		return
	}

	opts := eel.Options{
		Machine:  model,
		Schedule: true,
		Sched: core.Options{
			Workers: s.cfg.Workers,
			Cache:   s.cache,
			Obs:     s.reg,
		},
	}
	var tool eel.Instrumenter
	if op == "instrument" || op == "" {
		tool = &qpt.SlowProfiler{}
	}
	esp := tr.StartSpan("eel.edit")
	out, err := ed.EditCtx(obs.WithTraceParent(r.Context(), tr, esp.Idx()), tool, opts)
	esp.End()
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "edit: %v", err)
		return
	}
	wsp := tr.StartSpan("respond.encode")
	defer wsp.End()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out.Marshal())
}

func (s *Server) isDraining() bool {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	return s.draining
}

// countReject attributes an admission rejection by reason.
func (s *Server) countReject(reason string) {
	s.reg.Counter(obs.LabeledName("eeld.rejects_total", "reason", rejectSlug(reason))).Inc()
}

// Drain moves the server into draining mode (healthz and new work return
// 503), waits for the caller to finish shutting down its http.Server,
// is expected to be called *after* http.Server.Shutdown returns (no
// requests in flight), stops the batchers, and writes the cache spill.
// It returns the number of spilled entries.
func (s *Server) Drain() (int, error) {
	s.stopBatchers()
	if s.cfg.SpillPath == "" {
		return 0, nil
	}
	n, err := s.cache.SaveSpill(s.cfg.SpillPath, s.cfg.Fingerprint, s.cfg.SpillMaxBytes)
	if err == nil {
		s.reg.Gauge("eeld.spill.saved_entries").Set(int64(n))
	}
	return n, err
}

// StartDraining flips the draining flag: health checks fail and new
// requests are rejected, while in-flight ones run to completion under
// http.Server.Shutdown. Call before Shutdown; call Drain after.
func (s *Server) StartDraining() {
	s.batchMu.Lock()
	s.draining = true
	s.batchMu.Unlock()
}
