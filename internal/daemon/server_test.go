package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/obs"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if _, err := s.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// blockWords builds deterministic schedulable request payloads.
func blockWords(t *testing.T, seed int64, nblocks int) [][]uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]uint32, nblocks)
	for i := range out {
		block := workload.RandomBlock(rng, 4+rng.Intn(12), false)
		words := make([]uint32, len(block))
		for j, inst := range block {
			w, err := sparc.Encode(inst)
			if err != nil {
				t.Fatal(err)
			}
			words[j] = w
		}
		out[i] = words
	}
	return out
}

// openLibraryEditor opens an image the way an in-process caller would,
// for byte-diffing daemon output against the library path.
func openLibraryEditor(image []byte) (*eel.Editor, error) {
	x, err := exe.Unmarshal(image)
	if err != nil {
		return nil, err
	}
	return eel.Open(x)
}

func postSchedule(t *testing.T, ts *httptest.Server, tenant string, req scheduleRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", ts.URL+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		hr.Header.Set("X-Eeld-Tenant", tenant)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestScheduleMatchesDirect: the service's batched path returns byte-for-
// byte what a direct core.Scheduler run produces for the same blocks.
func TestScheduleMatchesDirect(t *testing.T) {
	_, ts := testServer(t, Config{BatchWindow: time.Millisecond})
	words := blockWords(t, 11, 40)

	resp, body := postSchedule(t, ts, "", scheduleRequest{Machine: "ultrasparc", Blocks: words})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got scheduleResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.New(model, core.Options{})
	for i, blk := range words {
		insts := make([]sparc.Inst, len(blk))
		for j, w := range blk {
			insts[j], err = sparc.Decode(w)
			if err != nil {
				t.Fatal(err)
			}
		}
		want, err := sched.ScheduleBlock(insts)
		if err != nil {
			t.Fatal(err)
		}
		wantWords := make([]uint32, len(want))
		for j, inst := range want {
			wantWords[j], err = sparc.Encode(inst)
			if err != nil {
				t.Fatal(err)
			}
		}
		if fmt.Sprint(got.Blocks[i]) != fmt.Sprint(wantWords) {
			t.Fatalf("block %d: daemon schedule differs from direct scheduler", i)
		}
	}
}

// TestScheduleConcurrentBatching hammers the batcher from many tenants
// at once; every response must match the single-request answer, and the
// batcher should have coalesced at least one multi-request batch.
func TestScheduleConcurrentBatching(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := testServer(t, Config{Registry: reg, BatchWindow: 5 * time.Millisecond, MaxInflight: 16})
	words := blockWords(t, 13, 6)

	want, _ := func() (*scheduleResponse, error) {
		resp, body := postSchedule(t, ts, "", scheduleRequest{Blocks: words})
		if resp.StatusCode != 200 {
			t.Fatalf("seed request: %d %s", resp.StatusCode, body)
		}
		var r scheduleResponse
		return &r, json.Unmarshal(body, &r)
	}()

	const callers = 12
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, body := postSchedule(t, ts, fmt.Sprintf("tenant-%d", c), scheduleRequest{Blocks: words})
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("caller %d: %d %s", c, resp.StatusCode, body)
				return
			}
			var r scheduleResponse
			if err := json.Unmarshal(body, &r); err != nil {
				errs <- err
				return
			}
			if fmt.Sprint(r.Blocks) != fmt.Sprint(want.Blocks) {
				errs <- fmt.Errorf("caller %d: batched schedule differs", c)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if reg.Counter("eeld.batches_total").Value() == 0 {
		t.Fatal("no batches recorded")
	}
}

// TestEditMatchesLibrary: /v1/edit output must be byte-identical to the
// same edit done in-process — the invariant the CI smoke job checks
// against cmd/eelprof.
func TestEditMatchesLibrary(t *testing.T) {
	_, ts := testServer(t, Config{})
	b, ok := workload.ByName("130.li", spawn.UltraSPARC)
	if !ok {
		t.Fatal("130.li missing")
	}
	x, err := workload.Generate(b, workload.Config{
		Machine: spawn.UltraSPARC, DynamicInsts: 1 << 13, Seed: 5, SkipCalibration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	image := x.Marshal()

	post := func(query string) []byte {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/edit?"+query, "application/octet-stream", bytes.NewReader(image))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("edit %q: %d %s", query, resp.StatusCode, buf.Bytes())
		}
		return buf.Bytes()
	}

	// Reschedule twice: second run must hit the editor LRU and the warm
	// cache yet return identical bytes.
	got1 := post("op=reschedule&machine=ultrasparc")
	got2 := post("op=reschedule&machine=ultrasparc")
	if !bytes.Equal(got1, got2) {
		t.Fatal("repeat edit differs")
	}
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := openLibraryEditor(image)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ed.Reschedule(model, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, want.Marshal()) {
		t.Fatal("daemon reschedule differs from library reschedule")
	}
	// Instrumented op parses and differs from the pure reschedule.
	got3 := post("op=instrument&machine=ultrasparc")
	if _, err := exe.Unmarshal(got3); err != nil {
		t.Fatalf("instrumented output does not parse: %v", err)
	}
	if bytes.Equal(got1, got3) {
		t.Fatal("instrumented output unexpectedly equals reschedule output")
	}
}

// TestErrorShapes drives every structured-error path and checks status,
// JSON envelope, and the per-code request counters.
func TestErrorShapes(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := testServer(t, Config{Registry: reg})

	check := func(resp *http.Response, body []byte, wantCode int) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Fatalf("status %d, want %d (%s)", resp.StatusCode, wantCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("error content-type %q", ct)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("error body %q not a {\"error\": ...} envelope (%v)", body, err)
		}
	}

	// Bad JSON.
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	check(resp, buf.Bytes(), http.StatusBadRequest)

	// Empty block list.
	r2, b2 := postSchedule(t, ts, "", scheduleRequest{})
	check(r2, b2, http.StatusBadRequest)

	// Unknown machine.
	r3, b3 := postSchedule(t, ts, "", scheduleRequest{Machine: "pentium", Blocks: blockWords(t, 3, 1)})
	check(r3, b3, http.StatusBadRequest)

	// Undecodable word.
	r4, b4 := postSchedule(t, ts, "", scheduleRequest{Blocks: [][]uint32{{0xffffffff}}})
	check(r4, b4, http.StatusBadRequest)

	// Bad image for edit.
	r5, err := ts.Client().Post(ts.URL+"/v1/edit", "application/octet-stream", strings.NewReader("not an exe"))
	if err != nil {
		t.Fatal(err)
	}
	var b5 bytes.Buffer
	b5.ReadFrom(r5.Body)
	r5.Body.Close()
	check(r5, b5.Bytes(), http.StatusBadRequest)

	// Unknown op.
	r6, err := ts.Client().Post(ts.URL+"/v1/edit?op=delete", "application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	var b6 bytes.Buffer
	b6.ReadFrom(r6.Body)
	r6.Body.Close()
	check(r6, b6.Bytes(), http.StatusBadRequest)

	counters := reg.Counters()
	for _, want := range []string{
		obs.LabeledName("eeld.requests_total", "route", "/v1/schedule", "code", "400"),
		obs.LabeledName("eeld.requests_total", "route", "/v1/edit", "code", "400"),
	} {
		if counters[want] == 0 {
			t.Fatalf("counter %s not incremented; have %v", want, counters)
		}
	}
}

// TestTenantQuota: a tenant over its concurrency quota gets 429 while
// other tenants still get through.
func TestTenantQuota(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, Config{
		Registry: reg, TenantQuota: 1, MaxInflight: 4, AllowTestDelay: true,
	})
	words := blockWords(t, 17, 2)

	started := make(chan struct{})
	go func() {
		close(started)
		// Holds tenant "slow"'s one slot for a while.
		body, _ := json.Marshal(scheduleRequest{Blocks: words})
		hr, _ := http.NewRequest("POST", ts.URL+"/v1/schedule?delay_ms=400", bytes.NewReader(body))
		hr.Header.Set("X-Eeld-Tenant", "slow")
		resp, err := ts.Client().Do(hr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	deadline := time.Now().Add(2 * time.Second)
	for s.admission.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never became inflight")
		}
		time.Sleep(time.Millisecond)
	}

	r429, b429 := postSchedule(t, ts, "slow", scheduleRequest{Blocks: words})
	if r429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same-tenant status %d (%s), want 429", r429.StatusCode, b429)
	}
	var e errorBody
	if err := json.Unmarshal(b429, &e); err != nil || !strings.Contains(e.Error, "quota") {
		t.Fatalf("quota error body: %q", b429)
	}
	rOK, bOK := postSchedule(t, ts, "other", scheduleRequest{Blocks: words})
	if rOK.StatusCode != 200 {
		t.Fatalf("other-tenant status %d (%s), want 200", rOK.StatusCode, bOK)
	}
	if reg.Counters()[obs.LabeledName("eeld.rejects_total", "reason", "tenant_quota")] == 0 {
		t.Fatal("tenant_quota reject not counted")
	}
}

// TestQueueOverflow: with one inflight slot and a zero-depth queue, a
// second concurrent request is bounced with 503 queue-full.
func TestQueueOverflow(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, Config{
		Registry: reg, MaxInflight: 1, QueueDepth: 1, AllowTestDelay: true,
	})
	words := blockWords(t, 19, 1)

	// Fill the inflight slot and the single queue seat.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(scheduleRequest{Blocks: words})
			hr, _ := http.NewRequest("POST", ts.URL+"/v1/schedule?delay_ms=500", bytes.NewReader(body))
			resp, err := ts.Client().Do(hr)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.admission.Inflight() == 0 || s.admission.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never filled: inflight %d queued %d", s.admission.Inflight(), s.admission.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postSchedule(t, ts, "", scheduleRequest{Blocks: words})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d (%s), want 503", resp.StatusCode, body)
	}
	wg.Wait()
	if reg.Counters()[obs.LabeledName("eeld.rejects_total", "reason", "queue_full")] == 0 {
		t.Fatal("queue_full reject not counted")
	}
}

// TestMetricsAndHealth: /healthz flips to 503 when draining; /metrics
// serves both Prometheus text and the JSON export shape.
func TestMetricsAndHealth(t *testing.T) {
	s, ts := testServer(t, Config{})
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	resp, body := get("/healthz")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = get("/metrics")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "# TYPE eeld_requests_total counter") {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	resp, body = get("/metrics?format=json")
	var export struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(body, &export); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	if _, ok := export.Gauges["eeld.cache.len"]; !ok {
		t.Fatalf("metrics json missing cache gauges: %s", body)
	}

	s.StartDraining()
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d %s", resp.StatusCode, body)
	}
	r2, b2 := postSchedule(t, ts, "", scheduleRequest{Blocks: blockWords(t, 23, 1)})
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining schedule: %d %s", r2.StatusCode, b2)
	}
}

// TestSpillWarmRestart: schedule through one server, drain it (writing
// the spill), boot a second server on the same spill path, and confirm
// the same work is served warm — higher hit rate than the cold run and
// identical bytes.
func TestSpillWarmRestart(t *testing.T) {
	spill := filepath.Join(t.TempDir(), "eeld.spill")
	words := blockWords(t, 29, 50)

	cfg := Config{SpillPath: spill, Fingerprint: "test-rev", BatchWindow: time.Millisecond}
	cfg.Registry = obs.NewRegistry()
	s1 := New(cfg)
	ts1 := httptest.NewServer(s1)
	resp, coldBody := postSchedule(t, ts1, "", scheduleRequest{Blocks: words})
	if resp.StatusCode != 200 {
		t.Fatalf("cold run: %d %s", resp.StatusCode, coldBody)
	}
	coldHits, coldMisses := s1.Cache().Stats()
	ts1.Close()
	if n, err := s1.Drain(); err != nil || n == 0 {
		t.Fatalf("drain spilled %d entries, err %v", n, err)
	}

	cfg2 := cfg
	cfg2.Registry = obs.NewRegistry()
	s2 := New(cfg2)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp2, warmBody := postSchedule(t, ts2, "", scheduleRequest{Blocks: words})
	if resp2.StatusCode != 200 {
		t.Fatalf("warm run: %d %s", resp2.StatusCode, warmBody)
	}
	warmHits, warmMisses := s2.Cache().Stats()
	if warmMisses != 0 {
		t.Fatalf("warm run missed %d times; spill restore should cover the whole request", warmMisses)
	}
	if warmHits == 0 || float64(warmHits)/float64(warmHits+warmMisses) <= float64(coldHits)/float64(coldHits+coldMisses) {
		t.Fatalf("warm hit rate not above cold: warm %d/%d, cold %d/%d", warmHits, warmMisses, coldHits, coldMisses)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("warm response differs from cold response")
	}
	if _, err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
}
