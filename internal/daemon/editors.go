package daemon

import (
	"crypto/sha256"
	"sync"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
)

// editorLRU caches analyzed executables for /v1/edit: opening an image
// decodes its text and builds its CFG, which dominates small-edit
// latency, so repeat edits of the same image (the common service
// pattern: one tool iterating on one binary) skip straight to
// scheduling. Keyed by content digest — identical bytes, identical
// analysis. All cached Editors share the server's one schedule cache.
type editorLRU struct {
	mu    sync.Mutex
	cap   int
	m     map[[sha256.Size]byte]*eel.Editor
	order [][sha256.Size]byte // MRU first
}

func newEditorLRU(cap int) *editorLRU {
	return &editorLRU{cap: cap, m: make(map[[sha256.Size]byte]*eel.Editor)}
}

func (l *editorLRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// open returns the cached Editor for an image, analyzing it on miss;
// hit reports whether the cached analysis was reused (the request
// trace's cache.lookup span notes it). Analysis runs outside the lock,
// so concurrent first-opens of distinct images don't serialize; a
// doubled first-open of the same image costs one redundant analysis and
// keeps a single Editor.
func (l *editorLRU) open(body []byte, cache *core.Cache) (ed *eel.Editor, hit bool, err error) {
	key := sha256.Sum256(body)
	l.mu.Lock()
	if ed, ok := l.m[key]; ok {
		l.touch(key)
		l.mu.Unlock()
		return ed, true, nil
	}
	l.mu.Unlock()

	x, err := exe.Unmarshal(body)
	if err != nil {
		return nil, false, err
	}
	ed, err = eel.OpenShared(x, cache)
	if err != nil {
		return nil, false, err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if cached, ok := l.m[key]; ok { // lost the race; keep the first
		l.touch(key)
		return cached, true, nil
	}
	l.m[key] = ed
	l.order = append([][sha256.Size]byte{key}, l.order...)
	if len(l.order) > l.cap {
		last := l.order[len(l.order)-1]
		l.order = l.order[:len(l.order)-1]
		// Release the evicted editor's persistent scheduler goroutines
		// promptly instead of waiting for its finalizer. Any in-flight
		// Edit on it degrades to inline scheduling, not an error.
		l.m[last].Close()
		delete(l.m, last)
	}
	return ed, false, nil
}

// touch moves a key to the MRU position. Caller holds l.mu.
func (l *editorLRU) touch(key [sha256.Size]byte) {
	for i, k := range l.order {
		if k == key {
			copy(l.order[1:i+1], l.order[:i])
			l.order[0] = key
			return
		}
	}
}
