package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"eel/internal/sparc"
)

// This file is the schedule cache's on-disk spill: a size-bounded binary
// snapshot of (seed, input block, scheduled block) entries so a daemon
// restart starts warm instead of rescheduling every hot block from
// scratch (cmd/eeld writes one on graceful drain and loads it on boot).
//
// Safety model — a spill may cost warmth, never correctness:
//
//   - The file carries a caller-supplied fingerprint (cmd/eeld uses the
//     build's git revision). A mismatch means the scheduler, the SADL
//     tables or the instruction encoding may have changed, so the whole
//     file is ignored and the cache starts cold.
//   - The payload is covered by a trailing CRC-32. Truncation or bit rot
//     fails the checksum and the whole file is ignored (ErrSpillCorrupt):
//     no partially-restored state, never a wrong schedule.
//   - Entries store the cache *seed*, not the derived key; LoadSpill
//     recomputes the key from (seed, block) through the same hash the
//     live cache uses, and lookups still compare the full input block
//     before declaring a hit. A corrupt-but-checksummed entry therefore
//     degrades to an unreachable slot, not a wrong answer.

// spillMagic identifies the spill format ("EELS", version below).
var spillMagic = [4]byte{'E', 'E', 'L', 'S'}

// spillVersion is bumped whenever the entry encoding changes.
const spillVersion = 1

// ErrSpillCorrupt reports a spill file that failed structural or checksum
// validation. The cache is left exactly as it was (cold, for a fresh
// cache): callers log and continue.
var ErrSpillCorrupt = errors.New("core: spill file corrupt")

// instBytes is the fixed on-disk size of one serialized instruction.
const instBytes = 14

func putInst(b []byte, in sparc.Inst) {
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rs1)
	b[3] = byte(in.Rs2)
	b[4] = byte(in.Cond)
	var flags byte
	if in.UseImm {
		flags |= 1
	}
	if in.Annul {
		flags |= 2
	}
	if in.Instrumented {
		flags |= 4
	}
	b[5] = flags
	binary.BigEndian.PutUint32(b[6:], uint32(in.Imm))
	binary.BigEndian.PutUint32(b[10:], uint32(in.Disp))
}

func getInst(b []byte) sparc.Inst {
	return sparc.Inst{
		Op:           sparc.Op(b[0]),
		Rd:           sparc.Reg(b[1]),
		Rs1:          sparc.Reg(b[2]),
		Rs2:          sparc.Reg(b[3]),
		Cond:         sparc.Cond(b[4]),
		UseImm:       b[5]&1 != 0,
		Annul:        b[5]&2 != 0,
		Instrumented: b[5]&4 != 0,
		Imm:          int32(binary.BigEndian.Uint32(b[6:])),
		Disp:         int32(binary.BigEndian.Uint32(b[10:])),
	}
}

// spillEntry is one cache entry lifted out of its shard for writing.
type spillEntry struct {
	seed  uint64
	block []sparc.Inst
	out   []sparc.Inst
}

// size returns the entry's on-disk size in bytes.
func (e *spillEntry) size() int {
	return 8 + 4 + 4 + (len(e.block)+len(e.out))*instBytes
}

// snapshotMRU collects every entry in approximate global recency order:
// each shard is walked most-recent first, and the shards are interleaved
// round-robin so a byte budget keeps the hottest entries of *every*
// shard, not the full contents of the first few.
func (c *Cache) snapshotMRU() []spillEntry {
	perShard := make([][]spillEntry, len(c.shards))
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		list := make([]spillEntry, 0, len(sh.entries))
		for e := sh.head; e != nil; e = e.next {
			list = append(list, spillEntry{seed: e.seed, block: e.block, out: e.out})
		}
		sh.mu.Unlock()
		perShard[i] = list
		total += len(list)
	}
	out := make([]spillEntry, 0, total)
	for rank := 0; len(out) < total; rank++ {
		for _, list := range perShard {
			if rank < len(list) {
				out = append(out, list[rank])
			}
		}
	}
	return out
}

// SaveSpill writes the cache to path (atomically, via a temp file and
// rename) and returns how many entries were written. maxBytes bounds the
// file size; 0 means no bound. When the budget is smaller than the cache,
// the most recently used entries across all shards are kept.
func (c *Cache) SaveSpill(path, fingerprint string, maxBytes int) (int, error) {
	if len(fingerprint) > 0xffff {
		return 0, fmt.Errorf("core: spill fingerprint too long (%d bytes)", len(fingerprint))
	}
	var buf bytes.Buffer
	buf.Write(spillMagic[:])
	var w4 [4]byte
	binary.BigEndian.PutUint32(w4[:], spillVersion)
	buf.Write(w4[:])
	var w2 [2]byte
	binary.BigEndian.PutUint16(w2[:], uint16(len(fingerprint)))
	buf.Write(w2[:])
	buf.WriteString(fingerprint)

	written := 0
	scratch := make([]byte, 0, 1024)
	for _, e := range c.snapshotMRU() {
		need := e.size()
		// The trailing CRC must also fit inside the budget.
		if maxBytes > 0 && buf.Len()+need+4 > maxBytes {
			continue
		}
		scratch = scratch[:0]
		var w8 [8]byte
		binary.BigEndian.PutUint64(w8[:], e.seed)
		scratch = append(scratch, w8[:]...)
		binary.BigEndian.PutUint32(w4[:], uint32(len(e.block)))
		scratch = append(scratch, w4[:]...)
		binary.BigEndian.PutUint32(w4[:], uint32(len(e.out)))
		scratch = append(scratch, w4[:]...)
		for _, in := range e.block {
			var ib [instBytes]byte
			putInst(ib[:], in)
			scratch = append(scratch, ib[:]...)
		}
		for _, in := range e.out {
			var ib [instBytes]byte
			putInst(ib[:], in)
			scratch = append(scratch, ib[:]...)
		}
		buf.Write(scratch)
		written++
	}
	binary.BigEndian.PutUint32(w4[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(w4[:])

	tmp, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return written, nil
}

// LoadSpill restores entries from a spill file written by SaveSpill.
// Restores go through the normal insertion path, so capacity and LRU
// bounds hold and later lookups still verify the stored input block.
//
// A missing file or a fingerprint mismatch is a clean cold start:
// (0, nil). A structurally invalid or checksum-failing file returns
// ErrSpillCorrupt with nothing restored.
func (c *Cache) LoadSpill(path, fingerprint string) (int, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(raw) < 4+4+2+4 {
		return 0, fmt.Errorf("%w: %d-byte file", ErrSpillCorrupt, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrSpillCorrupt)
	}
	if !bytes.Equal(body[:4], spillMagic[:]) {
		return 0, fmt.Errorf("%w: bad magic", ErrSpillCorrupt)
	}
	if v := binary.BigEndian.Uint32(body[4:]); v != spillVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrSpillCorrupt, v)
	}
	flen := int(binary.BigEndian.Uint16(body[8:]))
	if 10+flen > len(body) {
		return 0, fmt.Errorf("%w: truncated fingerprint", ErrSpillCorrupt)
	}
	if string(body[10:10+flen]) != fingerprint {
		return 0, nil // different build: expected invalidation, start cold
	}

	// Parse every entry before touching the cache, so a malformed file
	// can never leave a partial restore behind.
	var entries []spillEntry
	p := body[10+flen:]
	for len(p) > 0 {
		if len(p) < 16 {
			return 0, fmt.Errorf("%w: truncated entry header", ErrSpillCorrupt)
		}
		seed := binary.BigEndian.Uint64(p)
		nb := int(binary.BigEndian.Uint32(p[8:]))
		no := int(binary.BigEndian.Uint32(p[12:]))
		p = p[16:]
		need := (nb + no) * instBytes
		if nb < 0 || no < 0 || need < 0 || need > len(p) {
			return 0, fmt.Errorf("%w: entry overruns file", ErrSpillCorrupt)
		}
		e := spillEntry{seed: seed,
			block: make([]sparc.Inst, nb),
			out:   make([]sparc.Inst, no)}
		for i := range e.block {
			e.block[i] = getInst(p[i*instBytes:])
		}
		p = p[nb*instBytes:]
		for i := range e.out {
			e.out[i] = getInst(p[i*instBytes:])
		}
		p = p[no*instBytes:]
		entries = append(entries, e)
	}
	// Entries were written hottest-first; insert in reverse so the
	// restored LRU order matches the saved one.
	for i := len(entries) - 1; i >= 0; i-- {
		e := &entries[i]
		c.put(e.seed, e.block, e.out)
	}
	return len(entries), nil
}
