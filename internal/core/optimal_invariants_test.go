// EngineOptimal ground-truth properties, checked over the full workload
// suite: the exact search never emits a schedule costing more than
// greedy, its output passes the dependence verifier, both stall oracles
// replay it identically, and at the default budget it proves nearly all
// small blocks optimal (the schedgap acceptance bar). External package
// because the workload generator transitively imports core.
package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eel/internal/core"
	"eel/internal/obs"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// TestOptimalNeverWorseSuite is the whole-suite invariant run: for every
// basic block of every benchmark on every shipped machine,
//
//   - cost(optimal) <= cost(greedy) <= cost(original) in modeled cycles;
//   - the optimal schedule preserves dependences;
//   - the optimal engine emits byte-identical schedules whether the
//     greedy pass ran over the fast or the reference stall oracle;
//   - blocks that changed are exactly the ones counted as improved;
//   - at the default budget, >= 90% of small (<= 12 instruction) blocks
//     carry an exhausted-search optimality certificate.
func TestOptimalNeverWorseSuite(t *testing.T) {
	for _, machine := range spawn.Machines() {
		machine := machine
		t.Run(string(machine), func(t *testing.T) {
			model := spawn.MustLoad(machine)
			greedy := core.New(model, core.Options{})
			opt := core.New(model, core.Options{Engine: core.EngineOptimal})
			optRef := core.New(model, core.Options{Engine: core.EngineOptimal, Oracle: core.OracleReference})
			nblocks, nimproved := 0, 0
			var saved int64
			for name, blocks := range suiteBlocks(t, machine) {
				for i, block := range blocks {
					label := fmt.Sprintf("%s block %d", name, i)
					gOut, err := greedy.ScheduleBlock(block)
					if err != nil {
						t.Fatalf("%s: greedy: %v", label, err)
					}
					oOut, err := opt.ScheduleBlock(block)
					if err != nil {
						t.Fatalf("%s: optimal: %v", label, err)
					}
					rOut, err := optRef.ScheduleBlock(block)
					if err != nil {
						t.Fatalf("%s: optimal/reference-oracle: %v", label, err)
					}
					if !instsEqual(oOut, rOut) {
						t.Fatalf("%s: optimal schedule depends on the oracle:\nfast:      %v\nreference: %v", label, oOut, rOut)
					}
					if err := opt.VerifyDependences(block, oOut); err != nil {
						t.Fatalf("%s: %v\norig: %v\nopt:  %v", label, err, block, oOut)
					}
					before, err := pipe.SequenceCycles(model, block)
					if err != nil {
						t.Fatalf("%s: cost of original: %v", label, err)
					}
					gCost, err := pipe.SequenceCycles(model, gOut)
					if err != nil {
						t.Fatalf("%s: cost of greedy: %v", label, err)
					}
					oCost, err := pipe.SequenceCycles(model, oOut)
					if err != nil {
						t.Fatalf("%s: cost of optimal: %v", label, err)
					}
					if oCost > gCost || gCost > before {
						t.Fatalf("%s: cost order violated: original %d, greedy %d, optimal %d\norig: %v\nopt:  %v",
							label, before, gCost, oCost, block, oOut)
					}
					if !instsEqual(oOut, gOut) {
						if oCost >= gCost {
							t.Fatalf("%s: optimal changed the schedule without improving it: greedy %d, optimal %d",
								label, gCost, oCost)
						}
						nimproved++
						saved += gCost - oCost
					}
					nblocks++
				}
			}
			st := opt.OptimalStats()
			if st.Blocks != int64(nblocks) {
				t.Fatalf("stats count %d blocks, scheduled %d", st.Blocks, nblocks)
			}
			if st.Improved != int64(nimproved) || st.CyclesSaved != saved {
				t.Fatalf("stats report %d improved / %d saved, observed %d / %d",
					st.Improved, st.CyclesSaved, nimproved, saved)
			}
			if st.Proven > st.Blocks || st.SmallProven > st.SmallBlocks {
				t.Fatalf("more proven than seen: %+v", st)
			}
			if st.SmallBlocks == 0 {
				t.Fatal("suite produced no small blocks")
			}
			if rate := float64(st.SmallProven) / float64(st.SmallBlocks); rate < 0.90 {
				t.Fatalf("only %.1f%% of small blocks proven optimal (%d/%d), want >= 90%%",
					100*rate, st.SmallProven, st.SmallBlocks)
			}
			t.Logf("%s: %d blocks, %d improved (%d cycles), %d/%d proven (%d/%d small), %d exhausted, %d nodes",
				machine, st.Blocks, st.Improved, st.CyclesSaved, st.Proven, st.Blocks,
				st.SmallProven, st.SmallBlocks, st.BudgetExhausted, st.Nodes)
		})
	}
}

// TestOptimalBlockShapes pins the degenerate-block policies: empty
// blocks bypass the engine, bodies of one instruction and annulled
// branches are trivially proven, a fully dependent chain admits exactly
// one order.
func TestOptimalBlockShapes(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)

	t.Run("empty", func(t *testing.T) {
		s := core.New(model, core.Options{Engine: core.EngineOptimal})
		out, err := s.ScheduleBlock(nil)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if len(out) != 0 {
			t.Fatalf("empty block scheduled to %v", out)
		}
		if st := s.OptimalStats(); st.Blocks != 0 {
			t.Fatalf("empty block reached the engine: %+v", st)
		}
	})

	t.Run("single CTI", func(t *testing.T) {
		s := core.New(model, core.Options{Engine: core.EngineOptimal})
		block := []sparc.Inst{sparc.NewBranch(sparc.CondNE, -1), sparc.NewNop()}
		out, err := s.ScheduleBlock(block)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if !instsEqual(out, block) {
			t.Fatalf("CTI-only block changed: %v -> %v", block, out)
		}
		st := s.OptimalStats()
		if st.Blocks != 1 || st.Proven != 1 || st.SmallProven != 1 {
			t.Fatalf("CTI-only block not trivially proven: %+v", st)
		}
	})

	t.Run("annulled branch", func(t *testing.T) {
		s := core.New(model, core.Options{Engine: core.EngineOptimal})
		br := sparc.NewBranch(sparc.CondNE, -4)
		br.Annul = true
		block := []sparc.Inst{
			sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0),
			sparc.NewSethi(sparc.G2, 7),
			br,
			sparc.NewALU(sparc.OpAdd, sparc.G3, sparc.G2, sparc.G2),
		}
		out, err := s.ScheduleBlock(block)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if !instsEqual(out, block) {
			t.Fatalf("annulled-branch block changed: %v -> %v", block, out)
		}
		st := s.OptimalStats()
		if st.Blocks != 1 || st.Proven != 1 {
			t.Fatalf("annulled-branch block not trivially proven: %+v", st)
		}
	})

	t.Run("all-dependent chain", func(t *testing.T) {
		s := core.New(model, core.Options{Engine: core.EngineOptimal})
		block := []sparc.Inst{
			sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0),
			sparc.NewALU(sparc.OpAdd, sparc.G2, sparc.G1, sparc.G1),
			sparc.NewALU(sparc.OpSub, sparc.G3, sparc.G2, sparc.G2),
			sparc.NewALU(sparc.OpXor, sparc.G4, sparc.G3, sparc.G3),
		}
		out, err := s.ScheduleBlock(block)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if !instsEqual(out, block) {
			t.Fatalf("chain admits one order but changed: %v -> %v", block, out)
		}
		st := s.OptimalStats()
		if st.Blocks != 1 || st.Proven != 1 || st.Improved != 0 {
			t.Fatalf("chain not proven without improvement: %+v", st)
		}
	})
}

// TestOptimalBudgetExhaustion is the satellite fallback test: blocks the
// search cannot afford keep their greedy schedule, and the exhaustion is
// visible both in the stats snapshot and the core.optimal_budget_exhausted
// metric — including when observability is disabled entirely.
func TestOptimalBudgetExhaustion(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	rng := rand.New(rand.NewSource(42))
	oversized := workload.RandomBlock(rng, core.DefaultOptimalMaxInsts+2, false)
	if len(oversized) < 20 {
		t.Fatalf("crafted block has %d instructions, want >= 20", len(oversized))
	}
	small := workload.RandomBlock(rand.New(rand.NewSource(43)), 10, false)

	greedy := core.New(model, core.Options{})
	greedyOversized, err := greedy.ScheduleBlock(oversized)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	greedySmall, err := greedy.ScheduleBlock(small)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}

	t.Run("oversized body skips the search", func(t *testing.T) {
		reg := obs.NewRegistry()
		s := core.New(model, core.Options{Engine: core.EngineOptimal, Obs: reg})
		out, err := s.ScheduleBlock(oversized)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if !instsEqual(out, greedyOversized) {
			t.Fatalf("oversized block did not fall back to greedy:\ngreedy:  %v\noptimal: %v", greedyOversized, out)
		}
		st := s.OptimalStats()
		if st.Blocks != 1 || st.BudgetExhausted != 1 || st.Oversized != 1 || st.Proven != 0 {
			t.Fatalf("oversized block miscounted: %+v", st)
		}
		counters := reg.Counters()
		if counters["core.optimal_budget_exhausted"] != 1 {
			t.Fatalf("core.optimal_budget_exhausted = %d, want 1", counters["core.optimal_budget_exhausted"])
		}
		if counters["core.optimal_oversized_total"] != 1 {
			t.Fatalf("core.optimal_oversized_total = %d, want 1", counters["core.optimal_oversized_total"])
		}
	})

	t.Run("negative budget disables the search", func(t *testing.T) {
		reg := obs.NewRegistry()
		s := core.New(model, core.Options{Engine: core.EngineOptimal, OptimalBudget: -1, Obs: reg})
		out, err := s.ScheduleBlock(small)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if !instsEqual(out, greedySmall) {
			t.Fatalf("disabled search did not fall back to greedy:\ngreedy:  %v\noptimal: %v", greedySmall, out)
		}
		st := s.OptimalStats()
		if st.BudgetExhausted != 1 || st.Oversized != 0 || st.Proven != 0 {
			t.Fatalf("disabled search miscounted: %+v", st)
		}
		if st.Nodes < 1 {
			t.Fatalf("disabled search should still count its first node: %+v", st)
		}
		if counters := reg.Counters(); counters["core.optimal_budget_exhausted"] != 1 {
			t.Fatalf("core.optimal_budget_exhausted = %d, want 1", counters["core.optimal_budget_exhausted"])
		}
	})

	t.Run("nil obs registry is safe", func(t *testing.T) {
		s := core.New(model, core.Options{Engine: core.EngineOptimal, OptimalBudget: -1})
		out, err := s.ScheduleBlock(small)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if !instsEqual(out, greedySmall) {
			t.Fatalf("nil-obs fallback diverged from greedy")
		}
		if st := s.OptimalStats(); st.BudgetExhausted != 1 {
			t.Fatalf("snapshot must count even without a registry: %+v", st)
		}
	})
}

// TestOptimalParallelBatch runs EngineOptimal through the worker pool:
// the batch output must be byte-identical to the sequential path (the
// search is per-block deterministic) and the shared stats aggregate must
// see every block exactly once.
func TestOptimalParallelBatch(t *testing.T) {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	var blocks [][]sparc.Inst
	for _, bs := range suiteBlocks(t, machine) {
		blocks = append(blocks, bs...)
	}
	seq := core.New(model, core.Options{Engine: core.EngineOptimal, Workers: -1})
	par := core.New(model, core.Options{Engine: core.EngineOptimal, Workers: 8})
	seqOut, err := seq.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	parOut, err := par.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i := range seqOut {
		if !instsEqual(seqOut[i], parOut[i]) {
			t.Fatalf("block %d: parallel schedule diverged:\nseq: %v\npar: %v", i, seqOut[i], parOut[i])
		}
	}
	ss, ps := seq.OptimalStats(), par.OptimalStats()
	if ps.Blocks != int64(len(blocks)) || ss.Blocks != ps.Blocks {
		t.Fatalf("stats disagree on block count: seq %d, par %d, want %d", ss.Blocks, ps.Blocks, len(blocks))
	}
	if ss.Proven != ps.Proven || ss.Improved != ps.Improved || ss.CyclesSaved != ps.CyclesSaved {
		t.Fatalf("stats diverge across worker counts:\nseq: %+v\npar: %+v", ss, ps)
	}
}

// TestOptimalCacheCertificates: proven results round-trip through the
// schedule cache (hits count as proven), unproven ones are withheld so
// the cache never launders a greedy fallback into a certified optimum.
func TestOptimalCacheCertificates(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	small := workload.RandomBlock(rand.New(rand.NewSource(44)), 8, false)
	oversized := workload.RandomBlock(rand.New(rand.NewSource(45)), core.DefaultOptimalMaxInsts+2, false)

	cache := core.NewCache(0)
	s := core.New(model, core.Options{Engine: core.EngineOptimal, Cache: cache})
	first, err := s.ScheduleBlock(small)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	second, err := s.ScheduleBlock(small)
	if err != nil {
		t.Fatalf("reschedule: %v", err)
	}
	if !instsEqual(first, second) {
		t.Fatalf("cache hit changed the schedule")
	}
	st := s.OptimalStats()
	if st.Blocks != 2 || st.Proven != 2 {
		t.Fatalf("cache hit not counted as proven: %+v", st)
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("expected 1 cache hit, got %d", hits)
	}

	if _, err := s.ScheduleBlock(oversized); err != nil {
		t.Fatalf("schedule oversized: %v", err)
	}
	if _, err := s.ScheduleBlock(oversized); err != nil {
		t.Fatalf("reschedule oversized: %v", err)
	}
	st = s.OptimalStats()
	if st.CacheBypasses != 2 {
		t.Fatalf("unproven results must bypass the cache twice, got %+v", st)
	}
}
