package core

import (
	"fmt"

	"eel/internal/obs"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// This file is the scheduler's side of the telemetry layer: when
// Options.Obs carries a registry, every scheduled block's stall cycles
// are classified by hazard (RAW, WAR, WAW, structural — per unit and
// per register class), and the original order is priced so the cycles
// scheduling hid are counted.
//
// On the fast engine the classification happens inline: the greedy pass
// issues exactly the sequence it emits, so attaching the attribution
// sink during scheduling (scheduleBlockRaw) captures the emitted
// order's stalls as a side effect, and the never-costs-more guard's
// cost replay of the original order doubles as the hidden-cycles
// measurement. Blocks the inline path cannot cover — cache hits,
// annulled branches, the reference engine, EngineOptimal, oracles
// without prepared placement — fall back to the original post-schedule
// replay, which remains counter-for-counter identical (the differential
// test in telemetry_test.go pins this). Either way the numbers never
// feed back into scheduling: enabling telemetry cannot change a
// schedule, which is why Obs is excluded from the cache key (and from
// the JSON encoding bench embeds in its tables).
//
// Workers accumulate into a private telShard — plain counters, no
// atomics — merged into the shared registry at batch end, so enabled
// telemetry adds no cross-core contention to the hot path.
//
// With Obs nil the scheduler carries a nil *telemetry and the per-block
// cost is a single pointer test; the committed overhead-guard benchmark
// in telemetry_test.go holds the disabled path under its budget.

// attrSink is the optional oracle interface for stall attribution,
// implemented by both pipe oracles.
type attrSink interface {
	SetAttribution(*pipe.StallAttr)
}

// telemetry holds the scheduler's pre-resolved instrument handles, so
// the per-block recording path is atomic adds with no map lookups.
type telemetry struct {
	reg *obs.Registry

	blocks     *obs.Counter // every block scheduled
	cached     *obs.Counter // blocks served from the schedule cache
	changed    *obs.Counter // blocks whose emitted order differs from the input
	hidden     *obs.Counter // cycles the emitted order models below the original
	stallTotal *obs.Counter // classified stall cycles in emitted schedules
	replayErrs *obs.Counter // telemetry replays the model could not price

	kind  [pipe.NumHazards]*obs.Counter
	unit  []*obs.Counter // structural stalls by blocking unit
	class [pipe.NumHazards][pipe.NumRegClasses]*obs.Counter

	blockStalls *obs.Histogram // classified stall cycles per block
	blockCycles *obs.Histogram // modeled cycles per emitted block
	blockSize   *obs.Histogram // instructions per block

	batches      *obs.Counter   // ScheduleBlocks calls
	batchWorkers *obs.Histogram // workers used per batch
	batchBlocks  *obs.Histogram // blocks per batch
}

// newTelemetry resolves every handle the scheduler records into. Metric
// names carry the machine model, so one registry can host several
// schedulers (bench's -summary runs three machines) without mixing
// counts; registration is idempotent, so schedulers sharing a model
// share instruments.
func newTelemetry(reg *obs.Registry, model *spawn.Model) *telemetry {
	if reg == nil {
		return nil
	}
	p := "sched." + string(model.Machine) + "."
	t := &telemetry{
		reg:        reg,
		blocks:     reg.Counter(p + "blocks_total"),
		cached:     reg.Counter(p + "blocks_cached"),
		changed:    reg.Counter(p + "blocks_changed"),
		hidden:     reg.Counter(p + "cycles_hidden_total"),
		stallTotal: reg.Counter(p + "stall_cycles_total"),
		replayErrs: reg.Counter(p + "telemetry_replay_errors"),

		blockStalls: reg.Histogram(p+"block_stall_cycles", obs.ExpBuckets(1, 12)),
		blockCycles: reg.Histogram(p+"block_cycles", obs.ExpBuckets(1, 14)),
		blockSize:   reg.Histogram(p+"block_insts", obs.ExpBuckets(1, 10)),

		batches:      reg.Counter("sched.pool.batches_total"),
		batchWorkers: reg.Histogram("sched.pool.batch_workers", obs.ExpBuckets(1, 8)),
		batchBlocks:  reg.Histogram("sched.pool.batch_blocks", obs.ExpBuckets(1, 16)),
	}
	for k := pipe.HazardKind(0); k < pipe.NumHazards; k++ {
		t.kind[k] = reg.Counter(p + "stall_cycles." + k.String())
		if k == pipe.HazardStructural {
			continue
		}
		for c := pipe.RegClass(0); c < pipe.NumRegClasses; c++ {
			t.class[k][c] = reg.Counter(fmt.Sprintf("%sstall_cycles.%s.class.%s", p, k, c))
		}
	}
	t.unit = make([]*obs.Counter, len(model.Units))
	for u := range model.Units {
		t.unit[u] = reg.Counter(p + "stall_cycles.structural.unit." + model.Units[u].Name)
	}
	return t
}

// telShard is one worker's private telemetry accumulator: the same
// shape as telemetry, with plain int64s and local histogram buffers in
// place of shared atomic instruments. A worker allocates its shard
// lazily on the first observed block, keeps it across batches (shards
// travel with the worker through the scheduler's pool), and flushes it
// into the registry at batch end.
type telShard struct {
	blocks, cached, changed  int64
	hidden, stallTotal       int64
	replayErrs               int64
	kind                     [pipe.NumHazards]int64
	unit                     []int64
	class                    [pipe.NumHazards][pipe.NumRegClasses]int64
	blockStalls, blockCycles *obs.HistShard
	blockSize                *obs.HistShard
}

// newShard returns a shard sized for t's instruments.
func (t *telemetry) newShard() *telShard {
	return &telShard{
		unit:        make([]int64, len(t.unit)),
		blockStalls: t.blockStalls.NewShard(),
		blockCycles: t.blockCycles.NewShard(),
		blockSize:   t.blockSize.NewShard(),
	}
}

// flush merges w's shard into the shared instruments and clears it.
// Nil-safe on both scheduler telemetry and shard, so every exit path
// can call it unconditionally.
func (t *telemetry) flush(w *worker) {
	if t == nil || w.shard == nil {
		return
	}
	sh := w.shard
	t.blocks.Add(sh.blocks)
	t.cached.Add(sh.cached)
	t.changed.Add(sh.changed)
	t.hidden.Add(sh.hidden)
	t.stallTotal.Add(sh.stallTotal)
	t.replayErrs.Add(sh.replayErrs)
	for k := range sh.kind {
		t.kind[k].Add(sh.kind[k])
	}
	for u := range sh.unit {
		t.unit[u].Add(sh.unit[u])
	}
	for k := range sh.class {
		for c := range sh.class[k] {
			t.class[k][c].Add(sh.class[k][c])
		}
	}
	sh.blockStalls.Flush()
	sh.blockCycles.Flush()
	sh.blockSize.Flush()
	unit := sh.unit
	clear(unit)
	*sh = telShard{unit: unit,
		blockStalls: sh.blockStalls, blockCycles: sh.blockCycles, blockSize: sh.blockSize}
}

// recordCache snapshots the schedule cache into gauges. Called once per
// batch, not per block: cache stats are cumulative anyway.
func (t *telemetry) recordCache(c *Cache) {
	if t == nil || c == nil {
		return
	}
	hits, misses := c.Stats()
	t.reg.Gauge("sched.cache.hits").Set(int64(hits))
	t.reg.Gauge("sched.cache.misses").Set(int64(misses))
	t.reg.Gauge("sched.cache.len").Set(int64(c.Len()))
	t.reg.Gauge("sched.cache.capacity").Set(int64(c.Capacity()))
	t.reg.Gauge("sched.cache.shards").Set(int64(c.Shards()))
}

// recordBatch notes one ScheduleBlocks fan-out and its pool occupancy.
func (t *telemetry) recordBatch(workers, blocks int) {
	if t == nil {
		return
	}
	t.batches.Inc()
	t.batchWorkers.Observe(int64(workers))
	t.batchBlocks.Observe(int64(blocks))
}

// telemetryBlock observes one scheduled block into the worker's shard.
// When the scheduling pass captured attribution inline
// (scheduleBlockRaw sets w.telInline), the emitted order's hazard
// classification and cost are already in hand; otherwise the block is
// replayed here with the attribution sink attached — cache hits always
// take the replay path, so attribution totals describe the blocks
// scheduled, not the cache's hit pattern, and are deterministic for a
// given input regardless of worker count or cache state.
func (s *Scheduler) telemetryBlock(w *worker, block, out []sparc.Inst, fromCache bool) {
	sh := w.shard
	if sh == nil {
		sh = s.tel.newShard()
		w.shard = sh
	}
	sh.blocks++
	sh.blockSize.Observe(int64(len(block)))
	if fromCache {
		sh.cached++
	}
	unchanged := blocksEqual(out, block)
	if !unchanged {
		sh.changed++
	}

	var a *pipe.StallAttr
	var after int64
	switch {
	case w.telInline && w.telUseBefore:
		// The guard rejected the greedy schedule: the emitted order is
		// the original, whose attribution and cost the guard's replay
		// recorded.
		a, after = &w.attrBefore, w.telBefore
	case w.telInline:
		a, after = &w.attr, w.telAfter
	default:
		sink, _ := w.p.(attrSink)
		if sink != nil {
			w.attr.Reset()
			sink.SetAttribution(&w.attr)
		}
		var err error
		after, err = s.sequenceCost(w.p, out)
		if sink != nil {
			sink.SetAttribution(nil)
		}
		if err != nil {
			// Some blocks price only in their emitted shape (an unchanged
			// CTI the model has no timing group for, say). Telemetry never
			// fails the schedule; it counts what it could not see.
			sh.replayErrs++
			return
		}
		if sink != nil {
			a = &w.attr
		}
	}
	sh.blockCycles.Observe(after)
	if a != nil {
		sh.stallTotal += int64(a.Total)
		sh.blockStalls.Observe(int64(a.Total))
		for k := range a.Kind {
			sh.kind[k] += int64(a.Kind[k])
		}
		for u := 0; u < len(a.Unit) && u < len(sh.unit); u++ {
			sh.unit[u] += int64(a.Unit[u])
		}
		for k := range a.Class {
			for c := range a.Class[k] {
				sh.class[k][c] += int64(a.Class[k][c])
			}
		}
	}
	if unchanged || w.telUseBefore {
		// telUseBefore: emitted == original, nothing was hidden.
		return
	}
	var before int64
	if w.telInline {
		// The guard priced the original order on its way to accepting
		// the changed schedule.
		before = w.telBefore
	} else {
		var err error
		before, err = s.sequenceCost(w.p, block)
		if err != nil {
			sh.replayErrs++
			return
		}
	}
	if d := before - after; d > 0 {
		// The never-costs-more guard makes this non-negative whenever
		// both orders price; clamp anyway so a custom oracle's quirk
		// can never walk the counter backwards.
		sh.hidden += d
	}
}
