package core

import (
	"fmt"

	"eel/internal/obs"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// This file is the scheduler's side of the telemetry layer: when
// Options.Obs carries a registry, every scheduled block is replayed once
// through its worker's oracle with a pipe.StallAttr attached, so the
// emitted schedule's stall cycles are classified by hazard (RAW, WAR,
// WAW, structural — per unit and per register class), and replayed once
// in original order to price the stalls scheduling hid. The replays run
// after the scheduling decision is final and never feed back into it:
// enabling telemetry cannot change a schedule, which is why Obs is
// excluded from the cache key (and from the JSON encoding bench embeds
// in its tables).
//
// With Obs nil the scheduler carries a nil *telemetry and the per-block
// cost is a single pointer test; the committed overhead-guard benchmark
// in telemetry_test.go holds the disabled path under its budget.

// attrSink is the optional oracle interface for stall attribution,
// implemented by both pipe oracles.
type attrSink interface {
	SetAttribution(*pipe.StallAttr)
}

// telemetry holds the scheduler's pre-resolved instrument handles, so
// the per-block recording path is atomic adds with no map lookups.
type telemetry struct {
	reg *obs.Registry

	blocks     *obs.Counter // every block scheduled
	cached     *obs.Counter // blocks served from the schedule cache
	changed    *obs.Counter // blocks whose emitted order differs from the input
	hidden     *obs.Counter // cycles the emitted order models below the original
	stallTotal *obs.Counter // classified stall cycles in emitted schedules
	replayErrs *obs.Counter // telemetry replays the model could not price

	kind  [pipe.NumHazards]*obs.Counter
	unit  []*obs.Counter // structural stalls by blocking unit
	class [pipe.NumHazards][pipe.NumRegClasses]*obs.Counter

	blockStalls *obs.Histogram // classified stall cycles per block
	blockCycles *obs.Histogram // modeled cycles per emitted block
	blockSize   *obs.Histogram // instructions per block

	batches      *obs.Counter   // ScheduleBlocks calls
	batchWorkers *obs.Histogram // workers used per batch
	batchBlocks  *obs.Histogram // blocks per batch
}

// newTelemetry resolves every handle the scheduler records into. Metric
// names carry the machine model, so one registry can host several
// schedulers (bench's -summary runs three machines) without mixing
// counts; registration is idempotent, so schedulers sharing a model
// share instruments.
func newTelemetry(reg *obs.Registry, model *spawn.Model) *telemetry {
	if reg == nil {
		return nil
	}
	p := "sched." + string(model.Machine) + "."
	t := &telemetry{
		reg:        reg,
		blocks:     reg.Counter(p + "blocks_total"),
		cached:     reg.Counter(p + "blocks_cached"),
		changed:    reg.Counter(p + "blocks_changed"),
		hidden:     reg.Counter(p + "cycles_hidden_total"),
		stallTotal: reg.Counter(p + "stall_cycles_total"),
		replayErrs: reg.Counter(p + "telemetry_replay_errors"),

		blockStalls: reg.Histogram(p+"block_stall_cycles", obs.ExpBuckets(1, 12)),
		blockCycles: reg.Histogram(p+"block_cycles", obs.ExpBuckets(1, 14)),
		blockSize:   reg.Histogram(p+"block_insts", obs.ExpBuckets(1, 10)),

		batches:      reg.Counter("sched.pool.batches_total"),
		batchWorkers: reg.Histogram("sched.pool.batch_workers", obs.ExpBuckets(1, 8)),
		batchBlocks:  reg.Histogram("sched.pool.batch_blocks", obs.ExpBuckets(1, 16)),
	}
	for k := pipe.HazardKind(0); k < pipe.NumHazards; k++ {
		t.kind[k] = reg.Counter(p + "stall_cycles." + k.String())
		if k == pipe.HazardStructural {
			continue
		}
		for c := pipe.RegClass(0); c < pipe.NumRegClasses; c++ {
			t.class[k][c] = reg.Counter(fmt.Sprintf("%sstall_cycles.%s.class.%s", p, k, c))
		}
	}
	t.unit = make([]*obs.Counter, len(model.Units))
	for u := range model.Units {
		t.unit[u] = reg.Counter(p + "stall_cycles.structural.unit." + model.Units[u].Name)
	}
	return t
}

// recordCache snapshots the schedule cache into gauges. Called once per
// batch, not per block: cache stats are cumulative anyway.
func (t *telemetry) recordCache(c *Cache) {
	if t == nil || c == nil {
		return
	}
	hits, misses := c.Stats()
	t.reg.Gauge("sched.cache.hits").Set(int64(hits))
	t.reg.Gauge("sched.cache.misses").Set(int64(misses))
	t.reg.Gauge("sched.cache.len").Set(int64(c.Len()))
	t.reg.Gauge("sched.cache.capacity").Set(int64(c.Capacity()))
	t.reg.Gauge("sched.cache.shards").Set(int64(c.Shards()))
}

// recordBatch notes one ScheduleBlocks fan-out and its pool occupancy.
func (t *telemetry) recordBatch(workers, blocks int) {
	if t == nil {
		return
	}
	t.batches.Inc()
	t.batchWorkers.Observe(int64(workers))
	t.batchBlocks.Observe(int64(blocks))
}

// telemetryBlock observes one scheduled block: it replays the emitted
// order with the worker's attribution sink attached (classifying every
// stall cycle the schedule still carries), replays the original order
// without it, and records the difference as cycles hidden. Cache hits
// are replayed too — attribution totals describe the blocks scheduled,
// not the cache's hit pattern, so they are deterministic for a given
// input regardless of worker count or cache state.
func (s *Scheduler) telemetryBlock(w *worker, block, out []sparc.Inst, fromCache bool) {
	t := s.tel
	t.blocks.Inc()
	t.blockSize.Observe(int64(len(block)))
	if fromCache {
		t.cached.Inc()
	}
	unchanged := blocksEqual(out, block)
	if !unchanged {
		t.changed.Inc()
	}

	sink, _ := w.p.(attrSink)
	if sink != nil {
		w.attr.Reset()
		sink.SetAttribution(&w.attr)
	}
	after, err := s.sequenceCost(w.p, out)
	if sink != nil {
		sink.SetAttribution(nil)
	}
	if err != nil {
		// Some blocks price only in their emitted shape (an unchanged
		// CTI the model has no timing group for, say). Telemetry never
		// fails the schedule; it counts what it could not see.
		t.replayErrs.Inc()
		return
	}
	t.blockCycles.Observe(after)
	if sink != nil {
		a := &w.attr
		t.stallTotal.Add(int64(a.Total))
		t.blockStalls.Observe(int64(a.Total))
		for k := range a.Kind {
			t.kind[k].Add(int64(a.Kind[k]))
		}
		for u := 0; u < len(a.Unit) && u < len(t.unit); u++ {
			t.unit[u].Add(int64(a.Unit[u]))
		}
		for k := range a.Class {
			for c := range a.Class[k] {
				t.class[k][c].Add(int64(a.Class[k][c]))
			}
		}
	}
	if unchanged {
		return
	}
	before, err := s.sequenceCost(w.p, block)
	if err != nil {
		t.replayErrs.Inc()
		return
	}
	if d := before - after; d > 0 {
		// The never-costs-more guard makes this non-negative whenever
		// both orders price; clamp anyway so a custom oracle's quirk
		// can never walk the counter backwards.
		t.hidden.Add(d)
	}
}
