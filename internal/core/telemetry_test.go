package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"eel/internal/obs"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// memTraceSink collects traces in memory for inspection.
type memTraceSink struct {
	mu     sync.Mutex
	traces []*BlockTrace
}

func (m *memTraceSink) TraceBlock(t *BlockTrace) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traces = append(m.traces, t)
	return nil
}

func (m *memTraceSink) byBlock() map[int]*BlockTrace {
	out := make(map[int]*BlockTrace, len(m.traces))
	for _, t := range m.traces {
		out[t.Block] = t
	}
	return out
}

// engineOracleCombos is the four-way matrix the acceptance criteria
// quantify over.
func engineOracleCombos() []Options {
	return []Options{
		{Engine: EngineFast, Oracle: OracleFast},
		{Engine: EngineFast, Oracle: OracleReference},
		{Engine: EngineReference, Oracle: OracleFast},
		{Engine: EngineReference, Oracle: OracleReference},
	}
}

// TestTelemetryAttributionAcrossEnginesAndOracles schedules the same
// workload under every engine × oracle combination, each into a fresh
// registry, and requires every exported counter — per-hazard stall
// attribution included — to be identical across all four. This is the
// acceptance criterion "attribution byte-identical across oracles and
// engines" at the scheduler level; the oracle level is covered in
// internal/pipe.
func TestTelemetryAttributionAcrossEnginesAndOracles(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(21)), 150)
	var base map[string]int64
	var baseName string
	for _, opts := range engineOracleCombos() {
		name := fmt.Sprintf("engine=%s/oracle=%s", opts.Engine, opts.Oracle)
		reg := obs.NewRegistry()
		opts.Workers = 1
		opts.Obs = reg
		s := New(model, opts)
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := reg.Counters()
		if base == nil {
			base, baseName = got, name
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("telemetry counters diverge between %s and %s:\n%v\nvs\n%v",
				baseName, name, base, got)
		}
	}
	if base["sched.ultrasparc.stall_cycles_total"] == 0 {
		t.Fatalf("workload produced no classified stall cycles — the equivalence test is vacuous: %v", base)
	}
	if base["sched.ultrasparc.telemetry_replay_errors"] != 0 {
		t.Fatalf("replay errors on a plain workload: %v", base)
	}
}

// TestTelemetryCountsConsistent checks the sink's internal arithmetic:
// the total equals the per-kind sums, data kinds break down into
// register classes, and structural stalls break down into units.
func TestTelemetryCountsConsistent(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(22)), 200)
	reg := obs.NewRegistry()
	s := New(model, Options{Workers: 1, Obs: reg})
	if _, err := s.ScheduleBlocks(blocks); err != nil {
		t.Fatal(err)
	}
	c := reg.Counters()
	p := "sched.ultrasparc."
	if got := c[p+"blocks_total"]; got != int64(len(blocks)) {
		t.Fatalf("blocks_total = %d, want %d", got, len(blocks))
	}
	kinds := []string{"raw", "war", "waw", "structural"}
	var kindSum int64
	for _, k := range kinds {
		kindSum += c[p+"stall_cycles."+k]
	}
	if total := c[p+"stall_cycles_total"]; total != kindSum || total == 0 {
		t.Fatalf("stall_cycles_total = %d, per-kind sum = %d", total, kindSum)
	}
	for _, k := range []string{"raw", "war", "waw"} {
		var classSum int64
		for _, cl := range []string{"int", "float", "cc", "y"} {
			classSum += c[p+"stall_cycles."+k+".class."+cl]
		}
		if classSum != c[p+"stall_cycles."+k] {
			t.Errorf("%s: class sum %d != kind count %d", k, classSum, c[p+"stall_cycles."+k])
		}
	}
	var unitSum int64
	for name, v := range c {
		if strings.HasPrefix(name, p+"stall_cycles.structural.unit.") {
			unitSum += v
		}
	}
	if unitSum != c[p+"stall_cycles.structural"] {
		t.Errorf("unit sum %d != structural count %d", unitSum, c[p+"stall_cycles.structural"])
	}
	if c["sched.pool.batches_total"] != 1 {
		t.Errorf("batches_total = %d, want 1", c["sched.pool.batches_total"])
	}
}

// TestTelemetryDeterministicAcrossWorkersAndCache requires attribution
// to describe the scheduled blocks, not the execution strategy: worker
// count must not change a single counter, and a cache-served pass must
// contribute exactly the same attribution as the pass that populated it
// (cache hits are replayed, not skipped).
func TestTelemetryDeterministicAcrossWorkersAndCache(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(23)), 120)

	attribution := func(workers int, cache *Cache, passes int) map[string]int64 {
		reg := obs.NewRegistry()
		s := New(model, Options{Workers: workers, Cache: cache, Obs: reg})
		for i := 0; i < passes; i++ {
			if _, err := s.ScheduleBlocks(blocks); err != nil {
				t.Fatal(err)
			}
		}
		out := make(map[string]int64)
		for name, v := range reg.Counters() {
			if strings.Contains(name, "stall_cycles") || strings.Contains(name, "cycles_hidden") {
				out[name] = v
			}
		}
		return out
	}

	w1 := attribution(1, nil, 1)
	w4 := attribution(4, nil, 1)
	if !reflect.DeepEqual(w1, w4) {
		t.Errorf("attribution depends on worker count:\n%v\nvs\n%v", w1, w4)
	}

	cache := NewCache(4096)
	twoPass := attribution(1, cache, 2)
	if hits, _ := cache.Stats(); hits == 0 {
		t.Fatalf("second pass took no cache hits — the replay-on-hit path was not exercised")
	}
	for name, v := range w1 {
		if twoPass[name] != 2*v {
			t.Errorf("%s: two passes recorded %d, want exactly double the single pass (%d)",
				name, twoPass[name], 2*v)
		}
	}
}

// TestTelemetryDisabledIsNil pins the disabled representation: no
// registry, no telemetry state, and scheduling output identical to an
// instrumented run.
func TestTelemetryDisabledIsNil(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(24)), 60)
	plain := New(model, Options{Workers: 1})
	if plain.tel != nil {
		t.Fatalf("scheduler without a registry built telemetry state")
	}
	want, err := plain.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := &memTraceSink{}
	instrumented := New(model, Options{Workers: 1, Obs: reg, Trace: sink})
	got, err := instrumented.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("telemetry changed a schedule")
	}
	if len(sink.traces) != len(blocks) {
		t.Fatalf("got %d traces for %d blocks", len(sink.traces), len(blocks))
	}
}

// TestTraceEnginesAgreeDecisionForDecision runs both engines over the
// same workload with tracing on and compares every decision: ready set,
// chosen index, stall count, issue cycle. Reasons are engine-specific
// labels and deliberately not compared. This is the in-process version
// of `schedtrace -diff`.
func TestTraceEnginesAgreeDecisionForDecision(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(25)), 80)
	run := func(engine Engine) *memTraceSink {
		sink := &memTraceSink{}
		s := New(model, Options{Workers: 1, Engine: engine, Trace: sink})
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			t.Fatal(err)
		}
		return sink
	}
	fast := run(EngineFast).byBlock()
	ref := run(EngineReference).byBlock()
	if len(fast) != len(blocks) || len(ref) != len(blocks) {
		t.Fatalf("trace counts: fast %d, reference %d, want %d", len(fast), len(ref), len(blocks))
	}
	for idx := range blocks {
		f, r := fast[idx], ref[idx]
		if f == nil || r == nil {
			t.Fatalf("block %d missing from a trace", idx)
		}
		if f.Engine != "fast" || r.Engine != "reference" {
			t.Fatalf("engine labels: %q, %q", f.Engine, r.Engine)
		}
		if len(f.Steps) != len(r.Steps) {
			t.Fatalf("block %d: step counts %d vs %d", idx, len(f.Steps), len(r.Steps))
		}
		for i := range f.Steps {
			a, b := f.Steps[i], r.Steps[i]
			if !reflect.DeepEqual(a.Ready, b.Ready) || a.Chosen != b.Chosen ||
				a.Stalls != b.Stalls || a.Issue != b.Issue {
				t.Fatalf("block %d step %d: decisions diverge:\nfast: %+v\nref:  %+v", idx, i, a, b)
			}
		}
		if !reflect.DeepEqual(f.Output, r.Output) {
			t.Fatalf("block %d: traced outputs diverge", idx)
		}
	}
}

// TestTraceBypassesCache requires a warm cache not to swallow traces: a
// trace of a cached block must still carry its decisions, and tracing
// must not populate the cache with anything it did not verify.
func TestTraceBypassesCache(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(26)), 40)
	cache := NewCache(4096)
	warm := New(model, Options{Workers: 1, Cache: cache})
	if _, err := warm.ScheduleBlocks(blocks); err != nil {
		t.Fatal(err)
	}
	hits0, _ := cache.Stats()

	sink := &memTraceSink{}
	traced := New(model, Options{Workers: 1, Cache: cache, Trace: sink})
	out, err := traced.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := cache.Stats()
	if hits1 != hits0 {
		t.Fatalf("tracing took %d cache hits — cached blocks have no decisions to record", hits1-hits0)
	}
	if len(sink.traces) != len(blocks) {
		t.Fatalf("got %d traces, want %d", len(sink.traces), len(blocks))
	}
	for _, tr := range sink.traces {
		if len(tr.Input) > 1 && len(tr.Steps) == 0 {
			t.Fatalf("block %d traced with no steps", tr.Block)
		}
		if !reflect.DeepEqual(tr.Output, out[tr.Block]) {
			t.Fatalf("block %d: trace output differs from returned schedule", tr.Block)
		}
	}
}

// TestTraceJSONRoundTrip pins the property schedtrace -replay depends
// on: a BlockTrace survives JSON encoding losslessly, and its recorded
// input reschedules to its recorded output.
func TestTraceJSONRoundTrip(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(27)), 10)
	sink := &memTraceSink{}
	s := New(model, Options{Workers: 1, Trace: sink})
	if _, err := s.ScheduleBlocks(blocks); err != nil {
		t.Fatal(err)
	}
	replayer := New(model, Options{})
	for _, tr := range sink.traces {
		data, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		var back BlockTrace
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.Input, back.Input) || !reflect.DeepEqual(tr.Output, back.Output) ||
			!reflect.DeepEqual(tr.Steps, back.Steps) {
			t.Fatalf("block %d: trace does not round-trip through JSON", tr.Block)
		}
		out, err := replayer.ScheduleBlock(back.Input)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, back.Output) {
			t.Fatalf("block %d: replayed schedule diverges from the recorded output", tr.Block)
		}
	}
}

// TestTelemetryDisabledOverheadGuard is the committed overhead guard for
// the disabled path (ISSUE 5 acceptance). The only in-process baseline
// available is the instrumented run itself, so the guard is phrased as:
// scheduling with telemetry disabled must not be slower than scheduling
// with it enabled (which does two extra oracle replays per block), within
// a 3% noise allowance, min-of-K with retries. The allocation half of the
// guard — the sharper regression tripwire — is
// TestScheduleBlockDisabledAllocations below and the zero-alloc probe
// assertions in internal/pipe.
func TestTelemetryDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(28)), 400)
	disabled := New(model, Options{Workers: 1})
	enabled := New(model, Options{Workers: 1, Obs: obs.NewRegistry()})
	run := func(s *Scheduler) {
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			t.Fatal(err)
		}
	}
	run(disabled) // warm pools
	run(enabled)
	minOf := func(s *Scheduler, k int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < k; i++ {
			start := time.Now()
			run(s)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	const limit = 1.03
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		d := minOf(disabled, 4)
		e := minOf(enabled, 4)
		ratio = float64(d) / float64(e)
		if ratio < limit {
			return
		}
	}
	t.Fatalf("disabled-telemetry scheduling is %.1f%% slower than enabled — the nil path is doing work",
		(ratio-1)*100)
}

// TestTelemetryEnabledOverheadGuard is the committed acceptance bound
// for the inline-capture path: scheduling with telemetry enabled may
// cost at most 10% over disabled on the line-rate configuration. Before
// per-worker aggregation the enabled path replayed every block through
// the oracle twice (~1.5×); inline capture attributes during the passes
// the scheduler already runs, so the remaining overhead is counter
// accumulation and the per-batch shard flush. Same best-of-k shape as
// the disabled guard to keep shared-runner noise from flaking it.
func TestTelemetryEnabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(28)), 400)
	disabled := New(model, Options{Workers: 1})
	enabled := New(model, Options{Workers: 1, Obs: obs.NewRegistry()})
	run := func(s *Scheduler) {
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			t.Fatal(err)
		}
	}
	run(disabled) // warm pools
	run(enabled)
	minOf := func(s *Scheduler, k int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < k; i++ {
			start := time.Now()
			run(s)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	const limit = 1.10
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		d := minOf(disabled, 4)
		e := minOf(enabled, 4)
		ratio = float64(e) / float64(d)
		if ratio < limit {
			return
		}
	}
	t.Fatalf("enabled-telemetry scheduling is %.1f%% slower than disabled, want < 10%%",
		(ratio-1)*100)
}

// TestScheduleBlockDisabledAllocations caps the per-block allocations of
// the disabled-telemetry path on the production configuration (fast
// engine, fast oracle — the reference implementations allocate by
// design). The output slice and its backing array are inherent; the cap
// leaves a little slack for the runtime, but a telemetry leak into the
// disabled path (a StallAttr, a trace step, a registry lookup) blows
// straight through it. The oracle probe paths themselves are held to
// exactly zero allocations, for both oracles, in internal/pipe.
func TestScheduleBlockDisabledAllocations(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	block := randomBlocks(rand.New(rand.NewSource(29)), 1)[0]
	s := New(model, Options{Engine: EngineFast, Oracle: OracleFast})
	for i := 0; i < 3; i++ { // settle lazily grown scratch
		if _, err := s.ScheduleBlock(block); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.ScheduleBlock(block); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("%.1f allocs per disabled-telemetry block, want <= 4", allocs)
	}
}

// BenchmarkScheduleBlocksTelemetry records the telemetry layer's cost in
// the perf trajectory: the disabled series must track the plain
// BenchmarkScheduleBlocks numbers, the enabled series prices the two
// replay passes.
func BenchmarkScheduleBlocksTelemetry(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(1)), 2000)
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			opts := Options{Workers: 1}
			if mode == "enabled" {
				opts.Obs = obs.NewRegistry()
			}
			s := New(model, opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.ScheduleBlocks(blocks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTelemetryInlineCaptureMatchesReplay is the differential test for
// the per-worker inline capture path: the telForceReplay hook pins the
// old post-schedule replay attribution, and every exported counter and
// histogram must match it count for count, across the engine × oracle
// matrix and across worker counts. Inline capture only engages on the
// fast-engine/fast-oracle line-rate configuration — every other combo
// replays on both sides — so the matrix proves both that the capture is
// exact where it runs and that the fallback detection is airtight where
// it doesn't.
func TestTelemetryInlineCaptureMatchesReplay(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(23)), 200)
	for _, opts := range engineOracleCombos() {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("engine=%s/oracle=%s/workers=%d", opts.Engine, opts.Oracle, workers)
			run := func(forceReplay bool) *obs.Export {
				reg := obs.NewRegistry()
				o := opts
				o.Workers = workers
				o.Obs = reg
				// Half the blocks cached, to cover the hit path's
				// attribution under both modes.
				o.Cache = NewCache(1024)
				s := New(model, o)
				defer s.Close()
				s.telForceReplay = forceReplay
				if _, err := s.ScheduleBlocks(blocks[:len(blocks)/2]); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if _, err := s.ScheduleBlocks(blocks); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return reg.Snapshot()
			}
			inline, replay := run(false), run(true)
			if !reflect.DeepEqual(inline.Counters, replay.Counters) {
				t.Errorf("%s: inline capture counters diverge from replay:\n%v\nvs\n%v",
					name, inline.Counters, replay.Counters)
			}
			if !reflect.DeepEqual(inline.Histograms, replay.Histograms) {
				t.Errorf("%s: inline capture histograms diverge from replay:\n%v\nvs\n%v",
					name, inline.Histograms, replay.Histograms)
			}
			if inline.Counters["sched.ultrasparc.stall_cycles_total"] == 0 {
				t.Fatalf("%s: no classified stall cycles — differential test is vacuous", name)
			}
		}
	}
}

// TestTelemetryNeverChangesSchedules asserts the observability layer is
// strictly read-only at the scheduler level: the emitted blocks are
// byte-identical with telemetry off, with inline capture, and with the
// forced replay path. (The end-to-end variant — whole tables with
// -metrics on — runs in the metrics-smoke CI job.)
func TestTelemetryNeverChangesSchedules(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(24)), 150)
	run := func(obsOn, forceReplay bool) [][]sparc.Inst {
		opts := Options{Workers: 1}
		if obsOn {
			opts.Obs = obs.NewRegistry()
		}
		s := New(model, opts)
		s.telForceReplay = forceReplay
		out, err := s.ScheduleBlocks(blocks)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := run(false, false)
	for _, mode := range []struct {
		name        string
		forceReplay bool
	}{{"inline", false}, {"replay", true}} {
		got := run(true, mode.forceReplay)
		for i := range plain {
			if !blocksEqual(plain[i], got[i]) {
				t.Fatalf("telemetry (%s) changed block %d", mode.name, i)
			}
		}
	}
}
