package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// TestSpillRoundTrip schedules a batch, spills the cache, restores it
// into a fresh cache (a restart), and checks that (a) every block is a
// warm hit and (b) the schedules served from the restored cache are
// byte-identical to the originals.
func TestSpillRoundTrip(t *testing.T) {
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	blocks := randomBlocks(rand.New(rand.NewSource(41)), 60)

	cold := NewCache(0)
	s := New(model, Options{Cache: cold, Workers: -1})
	want, err := s.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sched.spill")
	saved, err := cold.SaveSpill(path, "test-rev", 0)
	if err != nil {
		t.Fatal(err)
	}
	if saved != cold.Len() || saved == 0 {
		t.Fatalf("saved %d entries, cache holds %d", saved, cold.Len())
	}

	warm := NewCache(0)
	loaded, err := warm.LoadSpill(path, "test-rev")
	if err != nil {
		t.Fatal(err)
	}
	if loaded != saved {
		t.Fatalf("loaded %d entries, saved %d", loaded, saved)
	}
	s2 := New(model, Options{Cache: warm, Workers: -1})
	got, err := s2.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("schedules from restored cache differ from the originals")
	}
	hits, _ := warm.Stats()
	if int(hits) != len(blocks) {
		t.Fatalf("restored cache served %d hits for %d blocks", hits, len(blocks))
	}
}

// TestSpillSurvivesLRUOrder checks the restored cache behaves like the
// saved one under eviction pressure: the recency order round-trips.
func TestSpillPreservesDistinctSeeds(t *testing.T) {
	c := NewCache(32)
	blocks := randomBlocks(rand.New(rand.NewSource(7)), 6)
	for i, b := range blocks {
		c.put(uint64(1+i%2), b, b) // two distinct seeds
	}
	path := filepath.Join(t.TempDir(), "s.spill")
	if _, err := c.SaveSpill(path, "fp", 0); err != nil {
		t.Fatal(err)
	}
	r := NewCache(32)
	if _, err := r.LoadSpill(path, "fp"); err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if _, ok := r.get(uint64(1+i%2), b); !ok {
			t.Fatalf("block %d lost its seed across the spill", i)
		}
		if _, ok := r.get(99, b); ok {
			t.Fatalf("block %d visible under a foreign seed", i)
		}
	}
}

// TestSpillCorruptionIsColdStart truncates and bit-flips a valid spill
// at every interesting offset: each load must fail with ErrSpillCorrupt
// and restore nothing — a corrupt spill costs warmth, never correctness.
func TestSpillCorruptionIsColdStart(t *testing.T) {
	c := NewCache(0)
	for i, b := range randomBlocks(rand.New(rand.NewSource(3)), 20) {
		c.put(uint64(i+1), b, b)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "good.spill")
	if _, err := c.SaveSpill(path, "fp", 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutated []byte) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewCache(0)
		n, err := fresh.LoadSpill(p, "fp")
		if !errors.Is(err, ErrSpillCorrupt) {
			t.Fatalf("%s: err = %v, want ErrSpillCorrupt", name, err)
		}
		if n != 0 || fresh.Len() != 0 {
			t.Fatalf("%s: restored %d entries (len %d) from a corrupt file", name, n, fresh.Len())
		}
	}

	for _, cut := range []int{1, 4, 9, len(raw) / 2, len(raw) - 1} {
		check("trunc.spill", raw[:cut])
	}
	for _, off := range []int{0, 5, 11, len(raw) / 3, len(raw) - 2} {
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 0x40
		check("flip.spill", flipped)
	}
}

// TestSpillFingerprintMismatchIsSilentCold: a different build fingerprint
// is ordinary invalidation — no error, nothing restored.
func TestSpillFingerprintMismatchIsSilentCold(t *testing.T) {
	c := NewCache(0)
	b := randomBlocks(rand.New(rand.NewSource(5)), 1)[0]
	c.put(1, b, b)
	path := filepath.Join(t.TempDir(), "s.spill")
	if _, err := c.SaveSpill(path, "rev-a", 0); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(0)
	n, err := fresh.LoadSpill(path, "rev-b")
	if err != nil || n != 0 || fresh.Len() != 0 {
		t.Fatalf("mismatched fingerprint: n=%d len=%d err=%v, want clean cold start", n, fresh.Len(), err)
	}
}

// TestSpillMissingFileIsCold: first boot has no spill; that is not an
// error.
func TestSpillMissingFileIsCold(t *testing.T) {
	c := NewCache(0)
	n, err := c.LoadSpill(filepath.Join(t.TempDir(), "nope.spill"), "fp")
	if n != 0 || err != nil {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
}

// TestSpillSizeBound holds the file under maxBytes by dropping the
// coldest entries: with uniform entry sizes, exactly the first k entries
// of the recency-interleaved snapshot order survive.
func TestSpillSizeBound(t *testing.T) {
	c := NewCache(0)
	const nblocks, ninsts = 40, 6
	blocks := make([][]sparc.Inst, nblocks)
	for i := range blocks {
		b := make([]sparc.Inst, ninsts)
		for j := range b {
			b[j] = sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, int32(i*ninsts+j))
		}
		blocks[i] = b
		c.put(1, b, b)
	}
	// Touch a few blocks so recency order differs from insertion order.
	for _, b := range blocks[35:] {
		c.get(1, b)
	}
	order := c.snapshotMRU()

	// Header is 12 bytes ("fp" fingerprint), each entry 16+2*6*14 = 184,
	// trailing CRC 4: bound 1900 fits exactly 10 entries.
	path := filepath.Join(t.TempDir(), "s.spill")
	const bound = 1900
	saved, err := c.SaveSpill(path, "fp", bound)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 10 {
		t.Fatalf("saved %d entries, want 10 under a %d-byte bound", saved, bound)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() > bound {
		t.Fatalf("spill file is %d bytes, bound %d (err %v)", fi.Size(), bound, err)
	}
	r := NewCache(0)
	if n, err := r.LoadSpill(path, "fp"); err != nil || n != saved {
		t.Fatalf("restored %d entries (err %v), want %d", n, err, saved)
	}
	for i, e := range order {
		_, ok := r.get(1, e.block)
		if want := i < saved; ok != want {
			t.Fatalf("entry %d of recency order: hit=%v, want %v", i, ok, want)
		}
	}
}
