// Differential fuzz: the fast scheduling engine (arena dependence-graph
// build + lazy-probe priority queue) against the reference engine (the
// original pairwise builder and full ready-list rescan). The two must
// produce byte-identical schedules — including tie-breaks — and agree on
// errors, for every option combination that changes the dependence graph
// or the priority function. This is the property the fast engine's
// correctness argument (see readyq.go) is cashed against.
package core_test

import (
	"math/rand"
	"testing"

	"eel/internal/core"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func FuzzScheduleEngines(f *testing.F) {
	f.Add(int64(1), 8, false, false, false, 0, false)
	f.Add(int64(2), 24, true, true, false, 1, true)
	f.Add(int64(3), 40, false, false, true, 2, true)
	f.Add(int64(4), 1, false, true, true, 0, false)
	f.Add(int64(5), 64, true, false, false, 2, false)
	machines := spawn.Machines()
	models := make([]*spawn.Model, len(machines))
	for i, m := range machines {
		models[i] = spawn.MustLoad(m)
	}
	f.Fuzz(func(t *testing.T, seed int64, n int, fp, conservative, chainFirst bool, machineIdx int, cti bool) {
		if n < 0 || n > 96 {
			return
		}
		model := models[((machineIdx%len(models))+len(models))%len(models)]
		rng := rand.New(rand.NewSource(seed))
		block := workload.RandomBlock(rng, n, fp)
		// Instrumentation marks drive the memory-disambiguation domains
		// (and, with ConservativeMem, the cross-domain edges).
		for i := range block {
			if rng.Intn(4) == 0 {
				block[i].Instrumented = true
			}
		}
		if cti {
			block = append(block,
				sparc.NewBranch(sparc.CondNE, -int32(len(block))-1),
				sparc.NewNop())
		}
		opts := core.Options{ConservativeMem: conservative, ChainFirst: chainFirst}
		refOpts := opts
		refOpts.Engine = core.EngineReference
		fastOut, fastErr := core.New(model, opts).ScheduleBlock(block)
		refOut, refErr := core.New(model, refOpts).ScheduleBlock(block)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("error divergence on %v:\nfast:      %v\nreference: %v", block, fastErr, refErr)
		}
		if fastErr != nil {
			return
		}
		if !instsEqual(fastOut, refOut) {
			t.Fatalf("schedule divergence on %v:\nfast:      %v\nreference: %v", block, fastOut, refOut)
		}
	})
}
