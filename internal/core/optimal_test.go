// White-box tests for the exact scheduler's bound helpers and counters.
// The search itself is exercised end-to-end (and differentially against
// the greedy engine) in optimal_invariants_test.go and
// optimal_fuzz_test.go; this file pins down the pieces whose soundness
// the pruning argument rests on.
package core

import (
	"strings"
	"testing"

	"eel/internal/obs"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func TestParseEngineOptimal(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Engine
	}{
		{"", EngineFast},
		{"fast", EngineFast},
		{"reference", EngineReference},
		{"optimal", EngineOptimal},
	} {
		got, err := ParseEngine(c.in)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseEngine(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if EngineOptimal.String() != "optimal" {
		t.Fatalf("EngineOptimal.String() = %q", EngineOptimal.String())
	}
	// Unknown values must error and name every valid engine, so the CLI
	// message tells the user what would have worked.
	_, err := ParseEngine("bogus")
	if err == nil {
		t.Fatal("ParseEngine(bogus): no error")
	}
	for _, want := range []string{"bogus", "fast", "reference", "optimal"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseEngine(bogus) error %q does not mention %q", err, want)
		}
	}
}

func TestOptimalOptionResolution(t *testing.T) {
	if got := (Options{}).optimalBudget(); got != DefaultOptimalBudget {
		t.Errorf("zero budget resolves to %d, want %d", got, DefaultOptimalBudget)
	}
	if got := (Options{OptimalBudget: 7}).optimalBudget(); got != 7 {
		t.Errorf("explicit budget resolves to %d, want 7", got)
	}
	if got := (Options{OptimalBudget: -1}).optimalBudget(); got != -1 {
		t.Errorf("negative budget resolves to %d, want -1 (disabled)", got)
	}
	if got := (Options{}).optimalMaxInsts(); got != DefaultOptimalMaxInsts {
		t.Errorf("zero maxinsts resolves to %d, want %d", got, DefaultOptimalMaxInsts)
	}
	if got := (Options{OptimalMaxInsts: 4}).optimalMaxInsts(); got != 4 {
		t.Errorf("explicit maxinsts resolves to %d, want 4", got)
	}
}

// TestCriticalPathsOut drives the backward critical-path pass over
// hand-built successor-major graphs, covering the degenerate shapes the
// satellite checklist calls out: empty blocks, single nodes, fully
// dependent chains, and a reconverging diamond.
func TestCriticalPathsOut(t *testing.T) {
	cases := []struct {
		name      string
		succStart []int32 // len n+1
		succTo    []int32
		succLat   []int32
		cycles    []int64
		want      []int64
	}{
		{
			name:      "empty",
			succStart: []int32{0},
			want:      []int64{},
		},
		{
			name:      "single",
			succStart: []int32{0, 0},
			cycles:    []int64{3},
			want:      []int64{3},
		},
		{
			// 0 -2-> 1 -4-> 2, terminal occupancy 5.
			name:      "all-dependent chain",
			succStart: []int32{0, 1, 2, 2},
			succTo:    []int32{1, 2},
			succLat:   []int32{2, 4},
			cycles:    []int64{1, 1, 5},
			want:      []int64{11, 9, 5},
		},
		{
			// 0 -> {1 (lat 1), 2 (lat 3)} -> 3; the lat-3 arm dominates.
			name:      "diamond",
			succStart: []int32{0, 2, 3, 4, 4},
			succTo:    []int32{1, 2, 3, 3},
			succLat:   []int32{1, 3, 1, 1},
			cycles:    []int64{1, 1, 1, 1},
			want:      []int64{5, 2, 2, 1},
		},
		{
			// A zero-latency successor must not shadow the node's own
			// occupancy.
			name:      "occupancy dominates",
			succStart: []int32{0, 1, 1},
			succTo:    []int32{1},
			succLat:   []int32{0},
			cycles:    []int64{4, 1},
			want:      []int64{4, 1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := len(c.cycles)
			got := make([]int64, n)
			criticalPathsOut(n, c.succStart, c.succTo, c.succLat, c.cycles, got)
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("cpOut = %v, want %v", got, c.want)
				}
			}
		})
	}
}

func TestResourceFloor(t *testing.T) {
	cases := []struct {
		name   string
		clock  int64
		demand []int64
		counts []int32
		span   []int64
		minCyc int64
		want   int64
	}{
		{
			name:   "no demand",
			demand: []int64{0, 0},
			counts: []int32{1, 1},
			span:   []int64{0, 0},
			minCyc: 1,
			want:   0,
		},
		{
			// 6 held slots through a 2-wide unit with span 1: last issue at
			// ceil(6/2)-1 = cycle 2, plus one occupancy cycle.
			name:   "single unit",
			demand: []int64{6},
			counts: []int32{2},
			span:   []int64{1},
			minCyc: 1,
			want:   3,
		},
		{
			name:   "clock offsets the floor",
			clock:  10,
			demand: []int64{6},
			counts: []int32{2},
			span:   []int64{1},
			minCyc: 1,
			want:   13,
		},
		{
			// A span wider than the remaining demand can push the bound
			// below zero; the floor must clamp, not go negative.
			name:   "wide span clamps",
			demand: []int64{2},
			counts: []int32{1},
			span:   []int64{10},
			minCyc: 1,
			want:   0,
		},
		{
			name:   "max across units",
			demand: []int64{6, 8},
			counts: []int32{2, 2},
			span:   []int64{1, 1},
			minCyc: 2,
			want:   5,
		},
		{
			name:   "zero-demand unit skipped",
			clock:  1,
			demand: []int64{0, 5},
			counts: []int32{1, 1},
			span:   []int64{1, 1},
			minCyc: 1,
			want:   6,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := resourceFloor(c.clock, c.demand, c.counts, c.span, c.minCyc)
			if got != c.want {
				t.Fatalf("resourceFloor = %d, want %d", got, c.want)
			}
		})
	}
}

// TestOracleEdgeLatSound is the admissibility check the critical-path
// bound depends on: for every ordered pair of probe instructions on
// every shipped machine, issuing i and then j back-to-back from a clean
// pipeline must leave at least oracleEdgeLat cycles between the issues.
// If this ever fails, the bound is inadmissible and "proven optimal"
// stops meaning anything.
func TestOracleEdgeLatSound(t *testing.T) {
	probes := []sparc.Inst{
		sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0),
		sparc.NewLoad(sparc.OpLdd, sparc.G2, sparc.O0, 8),
		sparc.NewALU(sparc.OpAdd, sparc.G3, sparc.G1, sparc.G2),
		sparc.NewALU(sparc.OpUmul, sparc.G4, sparc.G3, sparc.G1),
		sparc.NewALU(sparc.OpSdiv, sparc.G1, sparc.G4, sparc.G2),
		sparc.NewALUImm(sparc.OpSll, sparc.G2, sparc.G1, 3),
		sparc.NewStore(sparc.OpSt, sparc.G3, sparc.O1, 0),
		sparc.NewSethi(sparc.G4, 1024),
		sparc.NewNop(),
	}
	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		fs := pipe.NewFastState(model)
		prep := make([]pipe.Prepared, len(probes))
		for i, in := range probes {
			p, err := fs.Prepare(in)
			if err != nil {
				t.Fatalf("%s: prepare %v: %v", machine, in, err)
			}
			prep[i] = p
		}
		for i := range probes {
			for j := range probes {
				lat := oracleEdgeLat(&prep[i], &prep[j])
				if lat < 0 {
					t.Fatalf("%s: oracleEdgeLat(%v, %v) = %d, negative", machine, probes[i], probes[j], lat)
				}
				fs.Reset()
				_, ti, err := fs.IssuePrepared(&prep[i], probes[i])
				if err != nil {
					t.Fatalf("%s: issue %v: %v", machine, probes[i], err)
				}
				_, tj, err := fs.IssuePrepared(&prep[j], probes[j])
				if err != nil {
					t.Fatalf("%s: issue %v after %v: %v", machine, probes[j], probes[i], err)
				}
				if tj-ti < int64(lat) {
					t.Fatalf("%s: bound inadmissible: %v -> %v issued %d apart, oracleEdgeLat says >= %d",
						machine, probes[i], probes[j], tj-ti, lat)
				}
			}
		}
	}
}

// TestOptAggNilSafe pins the disabled-is-nil convention: every optAgg
// method must be a no-op on a nil receiver (greedy engines), and a nil
// obs registry must disable the mirrored counters without disabling the
// snapshot.
func TestOptAggNilSafe(t *testing.T) {
	var a *optAgg
	a.sawBlock(5)
	a.provenBlock(5)
	a.hitProven(5)
	a.exhaustedBlock(true)
	a.improvedBlock(3)
	a.cacheBypassed()
	a.searchedNodes(7)
	a.searchError()

	b := newOptAgg(nil)
	b.sawBlock(5)           // small
	b.sawBlock(20)          // large
	b.provenBlock(5)        // small
	b.hitProven(13)         // large: Blocks+Proven, not Small*
	b.exhaustedBlock(true)  // + Oversized
	b.exhaustedBlock(false) // budget only
	b.improvedBlock(3)
	b.cacheBypassed()
	b.searchedNodes(7)
	b.searchError()
	want := OptimalStats{
		Blocks: 3, Proven: 2, SmallBlocks: 1, SmallProven: 1,
		BudgetExhausted: 2, Oversized: 1,
		Improved: 1, CyclesSaved: 3,
		CacheBypasses: 1, Nodes: 7, SearchErrors: 1,
	}
	b.mu.Lock()
	got := b.st
	b.mu.Unlock()
	if got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

// TestOptAggObsMirror asserts the snapshot and the obs counters move in
// lockstep, under the exact metric names the tooling scrapes.
func TestOptAggObsMirror(t *testing.T) {
	reg := obs.NewRegistry()
	a := newOptAgg(reg)
	a.sawBlock(4)
	a.provenBlock(4)
	a.exhaustedBlock(false)
	a.improvedBlock(2)
	a.cacheBypassed()
	a.searchedNodes(11)
	a.searchError()
	want := map[string]int64{
		"core.optimal_blocks_total":        1,
		"core.optimal_proven_total":        1,
		"core.optimal_small_blocks_total":  1,
		"core.optimal_small_proven_total":  1,
		"core.optimal_budget_exhausted":    1,
		"core.optimal_oversized_total":     0,
		"core.optimal_improved_total":      1,
		"core.optimal_cycles_saved_total":  2,
		"core.optimal_cache_bypass_total":  1,
		"core.optimal_nodes_total":         11,
		"core.optimal_search_errors_total": 1,
	}
	got := reg.Counters()
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

// TestOptimalStatsGreedyEngine: a greedy scheduler has no aggregate and
// must report all-zero stats rather than panic.
func TestOptimalStatsGreedyEngine(t *testing.T) {
	s := New(spawn.MustLoad(spawn.UltraSPARC), Options{})
	if st := s.OptimalStats(); st != (OptimalStats{}) {
		t.Fatalf("greedy scheduler reports optimal stats: %+v", st)
	}
}
