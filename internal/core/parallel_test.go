package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// randomBlocks builds a mixed workload: straight-line blocks, blocks
// ending in a CTI + delay slot, instrumented memory traffic.
func randomBlocks(r *rand.Rand, nblocks int) [][]sparc.Inst {
	regs := []sparc.Reg{sparc.G1, sparc.G2, sparc.G3, sparc.G4, sparc.O0, sparc.O1, sparc.L0, sparc.L1}
	blocks := make([][]sparc.Inst, nblocks)
	for bi := range blocks {
		n := 2 + r.Intn(12)
		block := make([]sparc.Inst, 0, n+2)
		for i := 0; i < n; i++ {
			switch r.Intn(6) {
			case 0:
				block = append(block, sparc.NewLoad(sparc.OpLd, regs[r.Intn(4)], regs[4+r.Intn(4)], int32(4*r.Intn(32))))
			case 1:
				block = append(block, sparc.NewStore(sparc.OpSt, regs[r.Intn(4)], regs[4+r.Intn(4)], int32(4*r.Intn(32))))
			case 2:
				block = append(block, sparc.NewSethi(regs[r.Intn(len(regs))], int32(r.Intn(1<<20))))
			case 3:
				ld := sparc.NewLoad(sparc.OpLd, regs[r.Intn(4)], regs[4+r.Intn(4)], int32(4*r.Intn(32)))
				ld.Instrumented = true
				block = append(block, ld)
			default:
				block = append(block, sparc.NewALU(sparc.OpAdd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))]))
			}
		}
		if r.Intn(2) == 0 {
			block = append(block,
				sparc.NewALUImm(sparc.OpSubcc, sparc.G0, sparc.G1, int32(r.Intn(16))),
				sparc.NewBranch(sparc.CondNE, -int32(len(block))-1),
				sparc.NewNop())
		}
		blocks[bi] = block
	}
	return blocks
}

// encodeBlocks flattens a schedule to its byte-exact instruction words.
func encodeBlocks(t *testing.T, blocks [][]sparc.Inst) []uint32 {
	t.Helper()
	var words []uint32
	for _, b := range blocks {
		for _, inst := range b {
			words = append(words, sparc.MustEncode(inst))
		}
	}
	return words
}

var allMachines = []spawn.Machine{spawn.SuperSPARC, spawn.UltraSPARC, spawn.HyperSPARC}

// TestScheduleBlocksDeterministic is the determinism gate: the parallel
// schedule must be byte-identical to the sequential one on every machine
// description and for every worker count, including Workers: 1.
func TestScheduleBlocksDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	blocks := randomBlocks(r, 200)
	for _, machine := range allMachines {
		model := spawn.MustLoad(machine)

		// Reference: one block at a time through the sequential API.
		ref := New(model, Options{})
		want := make([][]sparc.Inst, len(blocks))
		for i, b := range blocks {
			out, err := ref.ScheduleBlock(b)
			if err != nil {
				t.Fatalf("%s: block %d: %v", machine, i, err)
			}
			want[i] = out
		}
		wantWords := encodeBlocks(t, want)

		for _, workers := range []int{1, 2, 4, 8, 0} {
			s := New(model, Options{Workers: workers})
			got, err := s.ScheduleBlocks(blocks)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", machine, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: parallel schedule differs from sequential", machine, workers)
			}
			if !reflect.DeepEqual(encodeBlocks(t, got), wantWords) {
				t.Fatalf("%s workers=%d: encoded bytes differ", machine, workers)
			}
		}
	}
}

func TestScheduleBlocksSequentialFallback(t *testing.T) {
	// NewWith holds one unreplicable oracle: ScheduleBlocks must still
	// work (sequentially) and agree with the default path.
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(7)), 40)
	s := NewWith(pipe.NewState(model), model, Options{Workers: 8})
	got, err := s.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(model, Options{Workers: 1}).ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("NewWith fallback schedule differs from default scheduler")
	}
}

func TestScheduleBlocksFactoryOracle(t *testing.T) {
	// NewWithFactory with the standard oracle must match New exactly.
	model := spawn.MustLoad(spawn.HyperSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(9)), 60)
	s := NewWithFactory(func() Pipeline { return pipe.NewState(model) }, model, Options{Workers: 4})
	got, err := s.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(model, Options{Workers: 1}).ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("factory-oracle schedule differs from default scheduler")
	}
}

func TestScheduleBlocksReportsLowestErrorIndex(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(3)), 24)
	// A CTI with no delay slot is a structural error the scheduler rejects.
	bad := []sparc.Inst{
		sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1),
		sparc.NewBranch(sparc.CondNE, -1),
	}
	blocks[5] = bad
	blocks[17] = bad
	// The lowest-indexed failing block must win under every pool shape —
	// sequential, odd sizes that leave stragglers, GOMAXPROCS — and under
	// both engines, so the error a user sees never depends on timing.
	var want string
	for _, engine := range []Engine{EngineFast, EngineReference} {
		for _, workers := range []int{1, 2, 3, 4, 8, 0} {
			s := New(model, Options{Workers: workers, Engine: engine})
			_, err := s.ScheduleBlocks(blocks)
			if err == nil {
				t.Fatalf("engine=%s workers=%d: bad block not rejected", engine, workers)
			}
			if !strings.Contains(err.Error(), "block 5") {
				t.Fatalf("engine=%s workers=%d: error does not name the lowest failing block: %v", engine, workers, err)
			}
			if want == "" {
				want = err.Error()
			} else if err.Error() != want {
				t.Fatalf("engine=%s workers=%d: error differs across configurations:\n%q\nvs\n%q", engine, workers, err, want)
			}
		}
	}
}

func TestScheduleBlocksNoReorder(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(5)), 10)
	s := New(model, Options{NoReorder: true, Workers: 8})
	got, err := s.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, blocks) {
		t.Fatal("NoReorder changed a block")
	}
}

func TestCacheHitsAndDeterminism(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(21)), 80)
	cache := NewCache(0)

	uncached, err := New(model, Options{}).ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s := New(model, Options{Cache: cache})
	first, err := s.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses == 0 {
		t.Fatalf("cold cache stats: hits=%d misses=%d", hits, misses)
	}
	second, err := s.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ = cache.Stats()
	if hits == 0 {
		t.Fatal("warm pass recorded no cache hits")
	}
	if !reflect.DeepEqual(first, uncached) || !reflect.DeepEqual(second, uncached) {
		t.Fatal("cached schedule differs from uncached schedule")
	}
	if cache.Len() == 0 {
		t.Fatal("cache is empty after scheduling")
	}
}

func TestCacheKeysSeparateOptionsAndMachines(t *testing.T) {
	// A shared cache must never serve a schedule computed under different
	// options or a different machine. The ConservativeMem ablation yields
	// a different schedule for this block, which would surface as
	// corruption if keys collided.
	cache := NewCache(0)
	origStore := sparc.NewStore(sparc.OpSt, sparc.G1, sparc.O0, 0)
	slow := sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O2, 0)
	instLd := sparc.NewLoad(sparc.OpLd, sparc.G3, sparc.G4, 0)
	instLd.Instrumented = true
	block := []sparc.Inst{slow, origStore, instLd}

	model := spawn.MustLoad(spawn.UltraSPARC)
	relaxed := New(model, Options{Cache: cache})
	conservative := New(model, Options{ConservativeMem: true, Cache: cache})

	wantRelaxed, err := New(model, Options{}).ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	wantConservative, err := New(model, Options{ConservativeMem: true}).ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(wantRelaxed, wantConservative) {
		t.Fatal("test block does not distinguish the option")
	}
	for i := 0; i < 2; i++ { // second round hits the cache
		got, err := relaxed.ScheduleBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantRelaxed) {
			t.Fatalf("round %d: relaxed schedule wrong: %v", i, got)
		}
		got, err = conservative.ScheduleBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantConservative) {
			t.Fatalf("round %d: conservative schedule served a cross-option entry: %v", i, got)
		}
	}

	// Different machine, same block: must compute its own entry, not
	// reuse UltraSPARC's.
	ss := spawn.MustLoad(spawn.SuperSPARC)
	want, err := New(ss, Options{}).ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(ss, Options{Cache: cache}).ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cross-machine cache contamination")
	}
}

func TestCacheEvictionBounded(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	cache := NewCache(16)
	s := New(model, Options{Cache: cache})
	blocks := randomBlocks(rand.New(rand.NewSource(31)), 200)
	if _, err := s.ScheduleBlocks(blocks); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n > 16 {
		t.Fatalf("cache grew past its capacity: %d entries", n)
	}
}

// TestScheduleBlocksConcurrentCallers exercises one scheduler from many
// goroutines at once (the race job runs this under -race).
func TestScheduleBlocksConcurrentCallers(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(77)), 64)
	s := New(model, Options{Workers: 4, Cache: NewCache(0)})
	want, err := New(model, Options{Workers: 1}).ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func() {
			got, err := s.ScheduleBlocks(blocks)
			if err == nil && !reflect.DeepEqual(got, want) {
				err = fmt.Errorf("concurrent ScheduleBlocks diverged")
			}
			errs <- err
		}()
	}
	for c := 0; c < callers; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
