package core

import (
	"errors"
	"fmt"
	"sort"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// This file is the modulo scheduler behind software pipelining (DESIGN.md
// §14): given a single-block counted loop and its trip count, it searches
// for a steady-state kernel of II cycles that overlaps consecutive
// iterations, and emits the kernel plus the prologue and epilogue that
// fill and drain the pipeline. The scheduler reuses the block scheduler's
// machinery — BlockSoA register masks and hazard flags for dependence
// discovery, the compiled tables' held-unit footprints for the modulo
// reservation table, and oracleEdgeLat for provable issue-distance
// bounds — so the kernel search prices instructions exactly the way the
// block scheduler and the simulator do.
//
// Legality needs no register renaming. The simulator executes
// instructions functionally in order (latencies shape Timing cycles, not
// values), so a rewrite is semantics-preserving iff every dependent pair
// of dynamic instances executes in its original order. The modulo
// constraint t_j - t_i >= lat - II*d for every dependence edge i -> j at
// iteration distance d (lat >= 1 when d >= 1), together with emitting
// each tick's instances sorted by (phase, body index), guarantees exactly
// that — see the legality argument on emit.

// ErrNotPipelined reports that a loop was examined and declined: the
// shape is not a pipelinable counted loop, no feasible II was found, or
// the result would not overlap iterations at all. Callers treat it as
// "keep the original loop", not as failure.
var ErrNotPipelined = errors.New("core: loop not pipelined")

func notPipelined(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrNotPipelined)...)
}

// SWPOptions tunes the kernel search.
type SWPOptions struct {
	// MaxII caps the initiation-interval search (0 = MII+8). The search
	// gives up past the cap: a kernel that long hides no latency the
	// plain block schedule would not.
	MaxII int
	// MaxBody caps the loop body size in instructions (0 = 64).
	MaxBody int
}

// PipelinedLoop is one software-pipelined loop, ready to splice: the
// prologue fills the pipeline (stages of the first SC-1 iterations), the
// kernel runs trip-SC+1 times under the original counter exit, and the
// epilogue drains the remaining stages. The kernel ends with the
// original back-edge CTI (displacement retargeted to the kernel start,
// so it is layout-invariant) and a delay slot.
type PipelinedLoop struct {
	Prologue []sparc.Inst
	Kernel   []sparc.Inst
	Epilogue []sparc.Inst

	II     int // achieved initiation interval, cycles
	MII    int // max(ResMII, RecMII) lower bound
	ResMII int // resource floor from compiled unit capacities
	RecMII int // recurrence floor from dependence cycles
	Stages int // SC: kernel overlaps this many iterations
	Trip   int // constant trip count the rewrite assumes

	// KernelTicks is how many times the kernel executes: Trip-Stages+1.
	KernelTicks int
}

// swpEdge is one dependence edge i -> j at iteration distance dist:
// instance (j, n+dist) must issue at least lat cycles after (i, n).
type swpEdge struct {
	from, to  int32
	lat, dist int32
}

// PipelineLoop modulo-schedules one single-block counted loop. block is
// the full block — body, back-edge CTI, delay slot — and trip its
// constant iteration count (the caller proves it from the preheader; see
// eel's candidate analysis). The shape requirements, each of which
// otherwise breaks the steady-state construction:
//
//   - the CTI is a non-annulled conditional bne whose displacement
//     targets the block start (an annulled delay slot executes
//     conditionally, pinning it to the branch; other conditions are not
//     the counted-loop idiom);
//   - exactly one body instruction writes the condition codes: a
//     "subcc r, imm, r" with imm >= 1 — the loop counter. Stage-0
//     placement of this instruction makes the unmodified branch exit
//     the kernel after exactly trip-SC+1 ticks, with the counter and
//     ICC holding their original exit values;
//   - no other body instruction writes r or the condition codes
//     (a second writer would desynchronize the exit test);
//   - trip >= SC, so the prologue's unconditional stage copies never
//     overrun the trip count.
//
// The first return is nil with an ErrNotPipelined-wrapped error when the
// loop is declined; any other error is an internal failure.
func (s *Scheduler) PipelineLoop(block []sparc.Inst, trip int, opts SWPOptions) (*PipelinedLoop, error) {
	n := len(block)
	if n < 2 || !block[n-2].IsCTI() {
		return nil, notPipelined("no terminal CTI")
	}
	cti, delay := block[n-2], block[n-1]
	if cti.Op != sparc.OpBicc || cti.Cond != sparc.CondNE {
		return nil, notPipelined("back edge %v is not bne", cti.Mnemonic())
	}
	if cti.Annul {
		return nil, notPipelined("annulled back edge pins its delay slot")
	}
	if int(cti.Disp) != -(n - 2) {
		return nil, notPipelined("back edge does not target the block start")
	}
	if trip < 1 {
		return nil, notPipelined("unknown or zero trip count")
	}

	// Execution-order body: the delay-slot instruction runs last in the
	// iteration (normalizeBlock's convention).
	body := append([]sparc.Inst(nil), block[:n-2]...)
	if !delay.IsNop() {
		body = append(body, delay)
	}
	nb := len(body)
	if nb == 0 {
		return nil, notPipelined("empty body")
	}
	maxBody := opts.MaxBody
	if maxBody <= 0 {
		maxBody = 64
	}
	if nb > maxBody {
		return nil, notPipelined("body of %d exceeds %d instructions", nb, maxBody)
	}

	var soa BlockSoA
	if err := soa.Build(s.model, body, false); err != nil {
		return nil, err
	}
	ctrl := -1
	var ccMask regMask
	ccMask.set(sparc.ICC)
	for i := range body {
		if soa.Flags[i]&FlagTrap != 0 {
			return nil, notPipelined("trap in body")
		}
		if body[i].IsCTI() {
			return nil, notPipelined("CTI in body")
		}
		if !soa.defMask[i].intersects(ccMask) {
			continue
		}
		if ctrl >= 0 {
			return nil, notPipelined("more than one condition-code writer")
		}
		ctrl = i
	}
	if ctrl < 0 {
		return nil, notPipelined("no condition-code writer feeds the branch")
	}
	c := body[ctrl]
	if c.Op != sparc.OpSubcc || !c.UseImm || c.Imm < 1 || c.Rd != c.Rs1 || c.Rd == sparc.G0 {
		return nil, notPipelined("condition-code writer %v is not the counter idiom", c)
	}
	var counterMask regMask
	counterMask.set(c.Rd)
	for i := range body {
		if i != ctrl && soa.defMask[i].intersects(counterMask) {
			return nil, notPipelined("counter %v has a second writer", c.Rd)
		}
	}

	// Prepared placement inputs for oracleEdgeLat's provable bounds.
	fs := pipe.NewFastState(s.model)
	prep := make([]pipe.Prepared, nb)
	for i, inst := range body {
		p, err := fs.Prepare(inst)
		if err != nil {
			return nil, err
		}
		prep[i] = p
	}

	edges := buildSWPEdges(&soa, prep, s.opts.ConservativeMem)

	// ResMII: every iteration issues each instruction once, so each
	// unit's per-iteration demand divided by its copy count floors II.
	tab := s.model.Compiled()
	nu := len(tab.UnitCounts)
	demand := make([]int64, nu)
	for i := range body {
		for _, e := range tab.Groups[soa.Groups[i].ID].NZ {
			demand[e.Unit] += int64(e.Num)
		}
	}
	resMII := 1
	for u, d := range demand {
		if need := int((d + int64(tab.UnitCounts[u]) - 1) / int64(tab.UnitCounts[u])); need > resMII {
			resMII = need
		}
	}

	// RecMII: the smallest II whose II-discounted dependence graph has
	// no positive-weight cycle (weights lat - II*dist). Cycle weights
	// strictly decrease in II (every cycle crosses an iteration), so
	// feasibility is monotone and binary search applies. A sound upper
	// bound: at II = 1 + sum of all edge latencies, any simple cycle's
	// weight is at most that sum minus II < 0.
	var latSum int64
	for _, e := range edges {
		latSum += int64(e.lat)
	}
	recMII := sort.Search(int(latSum)+1, func(ii int) bool {
		return recFeasible(nb, edges, ii+1)
	}) + 1
	mii := resMII
	if recMII > mii {
		mii = recMII
	}
	maxII := opts.MaxII
	if maxII <= 0 {
		maxII = mii + 8
	}

	for ii := mii; ii <= maxII; ii++ {
		times, ok := modSchedule(nb, edges, &soa, tab, ii, ctrl)
		if !ok {
			continue
		}
		pl, err := emit(body, times, ii, trip, cti)
		if err != nil {
			return nil, err
		}
		pl.ResMII, pl.RecMII, pl.MII = resMII, recMII, mii
		return pl, nil
	}
	return nil, notPipelined("no feasible kernel at II <= %d", maxII)
}

// buildSWPEdges discovers the loop's dependences: program-order edges
// within one iteration (dist 0, i < j) and conservative all-pairs edges
// at iteration distance 1 (any i, j — including i == j — whose register
// masks or memory classes collide; registers are not renamed, so every
// reuse is a real constraint). Distances >= 2 need no edges: a dist-1
// edge bounds the stage skew by one, which already orders instances two
// or more iterations apart.
//
// Edge latency is the oracle's provable issue-distance bound for the
// pair (oracleEdgeLat), clamped to >= 1 for loop-carried edges — the
// strict inequality that keeps cross-iteration instances ordered.
func buildSWPEdges(soa *BlockSoA, prep []pipe.Prepared, conservativeMem bool) []swpEdge {
	nb := len(soa.Insts)
	dep := func(i, j int) bool {
		return soa.defMask[i].intersects(soa.useMask[j]) ||
			soa.useMask[i].intersects(soa.defMask[j]) ||
			soa.defMask[i].intersects(soa.defMask[j]) ||
			memConflictFlags(soa.Flags[i], soa.Flags[j], conservativeMem)
	}
	var edges []swpEdge
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if !dep(i, j) {
				continue
			}
			lat := oracleEdgeLat(&prep[i], &prep[j])
			if i < j {
				edges = append(edges, swpEdge{from: int32(i), to: int32(j), lat: lat, dist: 0})
			}
			carried := lat
			if carried < 1 {
				carried = 1
			}
			edges = append(edges, swpEdge{from: int32(i), to: int32(j), lat: carried, dist: 1})
		}
	}
	return edges
}

// recFeasible reports that the dependence graph has no positive-weight
// cycle under weights lat - II*dist (Bellman-Ford over longest paths:
// any relaxation still possible after nb passes closes a positive
// cycle).
func recFeasible(nb int, edges []swpEdge, ii int) bool {
	dist := make([]int64, nb)
	for pass := 0; pass <= nb; pass++ {
		changed := false
		for _, e := range edges {
			w := int64(e.lat) - int64(ii)*int64(e.dist)
			if d := dist[e.from] + w; d > dist[e.to] {
				dist[e.to] = d
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// modSchedule is iterative modulo scheduling (Rau) at a fixed II: place
// instructions highest-height first into the modulo reservation table,
// forcing placement (and evicting the conflicting or violated
// instructions) when no slot in the II-wide window fits. The loop
// counter is pinned to stage 0 — times[ctrl] < II — because the exit
// branch reads its condition codes in every kernel tick; an eviction or
// window miss on the counter fails the II instead.
func modSchedule(nb int, edges []swpEdge, soa *BlockSoA, tab *spawn.CompiledTables, ii, ctrl int) ([]int, bool) {
	// Height priority: longest II-discounted path out of each node.
	// Feasible IIs have no positive cycles, so relaxation converges.
	height := make([]int64, nb)
	for pass := 0; pass < nb+1; pass++ {
		changed := false
		for _, e := range edges {
			w := int64(e.lat) - int64(ii)*int64(e.dist)
			if h := height[e.to] + w; h > height[e.from] {
				height[e.from] = h
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	mrt := newMRT(ii, tab)
	times := make([]int, nb)
	prev := make([]int, nb)
	placed := make([]bool, nb)
	for i := range times {
		times[i] = -1
		prev[i] = -1
	}

	pick := func() int {
		best := -1
		for i := 0; i < nb; i++ {
			if placed[i] {
				continue
			}
			if i == ctrl {
				return i
			}
			if best < 0 || height[i] > height[best] {
				best = i
			}
		}
		return best
	}

	budget := 16*nb + 64
	for left := nb; left > 0; {
		if budget--; budget < 0 {
			return nil, false
		}
		i := pick()
		est := 0
		for _, e := range edges {
			if int(e.to) != i || !placed[e.from] {
				continue
			}
			if t := times[e.from] + int(e.lat) - ii*int(e.dist); t > est {
				est = t
			}
		}
		lo, hi := est, est+ii-1
		if i == ctrl {
			if est >= ii {
				return nil, false
			}
			hi = ii - 1
		}
		t := -1
		for c := lo; c <= hi; c++ {
			if mrt.fits(soa.Groups[i].ID, c) {
				t = c
				break
			}
		}
		forced := t < 0
		if forced {
			t = est
			if p := prev[i] + 1; p > t {
				t = p
			}
			if i == ctrl && t >= ii {
				return nil, false
			}
		}

		// Evict whoever the forced placement tramples: resource
		// over-subscribers sharing a reservation row, and placed
		// neighbors whose dependence constraint the new time violates.
		if forced {
			for j := 0; j < nb; j++ {
				if !placed[j] || j == i {
					continue
				}
				if mrt.overlaps(soa.Groups[i].ID, t, soa.Groups[j].ID, times[j]) {
					if j == ctrl {
						return nil, false
					}
					mrt.remove(soa.Groups[j].ID, times[j])
					placed[j] = false
					left++
				}
			}
		}
		for _, e := range edges {
			var j, tj, ti int
			switch {
			case int(e.from) == i && placed[int(e.to)] && int(e.to) != i:
				j = int(e.to)
				ti, tj = t, times[j]
				if tj-ti >= int(e.lat)-ii*int(e.dist) {
					continue
				}
			case int(e.to) == i && placed[int(e.from)] && int(e.from) != i:
				j = int(e.from)
				ti, tj = times[j], t
				if tj-ti >= int(e.lat)-ii*int(e.dist) {
					continue
				}
			default:
				continue
			}
			if j == ctrl {
				return nil, false
			}
			mrt.remove(soa.Groups[j].ID, times[j])
			placed[j] = false
			left++
		}

		mrt.add(soa.Groups[i].ID, t)
		times[i] = t
		prev[i] = t
		placed[i] = true
		left--
	}

	// Belt and braces: every edge constraint must hold before emission.
	for _, e := range edges {
		if times[e.to]-times[e.from] < int(e.lat)-ii*int(e.dist) {
			return nil, false
		}
	}
	return times, true
}

// mrt is the modulo reservation table: per (cycle mod II, unit) usage
// against the machine's unit capacities, using each timing group's full
// held-unit footprint (the same NZ entries the exact search's resource
// floor counts).
type mrt struct {
	ii     int
	nu     int
	use    []int32
	counts []int32
	tab    *spawn.CompiledTables
}

func newMRT(ii int, tab *spawn.CompiledTables) *mrt {
	nu := len(tab.UnitCounts)
	return &mrt{ii: ii, nu: nu, use: make([]int32, ii*nu), counts: tab.UnitCounts, tab: tab}
}

func (m *mrt) rowUnit(t int, cyc int, unit int) int {
	r := (t + cyc) % m.ii
	return r*m.nu + unit
}

func (m *mrt) fits(group int, t int) bool {
	for _, e := range m.tab.Groups[group].NZ {
		if m.use[m.rowUnit(t, e.Cycle, e.Unit)]+int32(e.Num) > m.counts[e.Unit] {
			return false
		}
	}
	return true
}

func (m *mrt) add(group int, t int) {
	for _, e := range m.tab.Groups[group].NZ {
		m.use[m.rowUnit(t, e.Cycle, e.Unit)] += int32(e.Num)
	}
}

func (m *mrt) remove(group int, t int) {
	for _, e := range m.tab.Groups[group].NZ {
		m.use[m.rowUnit(t, e.Cycle, e.Unit)] -= int32(e.Num)
	}
}

// overlaps reports whether groups gi at time ti and gj at time tj share
// a reservation row+unit where the row is over capacity after gi's
// addition — the eviction test for forced placement.
func (m *mrt) overlaps(gi, ti, gj, tj int) bool {
	for _, ei := range m.tab.Groups[gi].NZ {
		ri := (ti + ei.Cycle) % m.ii
		for _, ej := range m.tab.Groups[gj].NZ {
			if ei.Unit != ej.Unit {
				continue
			}
			if (tj+ej.Cycle)%m.ii != ri {
				continue
			}
			if m.use[ri*m.nu+ei.Unit]+int32(ei.Num) > m.counts[ei.Unit] {
				return true
			}
		}
	}
	return false
}

// emit lowers a modulo schedule into prologue, kernel and epilogue.
//
// Write the flat time of instruction i as t_i = s_i*II + phi_i (stage
// s_i, phase phi_i), SC = max stage + 1. Global tick of instance
// (i, iteration n) is n + s_i: prologue ticks 0..SC-2 run instances with
// s_i <= p at iteration p - s_i; kernel tick k (1-based, K = trip-SC+1
// of them) runs every instruction at iteration k-1 + (SC-1) - s_i;
// epilogue tick q in 0..SC-2 runs instances with s_i >= q+1 at iteration
// trip-s_i+q. Each tick is emitted sorted by (phi, body index), which
// preserves every dependence: an edge i -> j at distance d relates
// instances on ticks delta = d + s_j - s_i apart; the schedule
// constraint t_j - t_i >= lat - II*d forces either delta > 0 (a later
// tick), or delta == 0 with phi_j > phi_i (later in the tick), or — only
// possible for dist-0, latency-0 edges — the same phase with i before j
// in body order, which the index tiebreak keeps. Instances of one
// instruction more than one iteration apart stay ordered because every
// loop-carried edge bounds stage skew to <= 1.
//
// The kernel's branch goes after all its tick's instances; the phase-
// last instance may legally fill the delay slot (it still executes last
// in the tick), otherwise a nop does.
func emit(body []sparc.Inst, times []int, ii, trip int, cti sparc.Inst) (*PipelinedLoop, error) {
	nb := len(body)
	sc := 0
	for _, t := range times {
		if s := t / ii; s >= sc {
			sc = s + 1
		}
	}
	if sc < 2 {
		return nil, notPipelined("schedule overlaps no iterations (SC=1)")
	}
	if trip < sc {
		return nil, notPipelined("trip %d shorter than %d stages", trip, sc)
	}

	order := make([]int, nb)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := times[order[a]]%ii, times[order[b]]%ii
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	stage := func(i int) int { return times[i] / ii }

	pl := &PipelinedLoop{II: ii, Stages: sc, Trip: trip, KernelTicks: trip - sc + 1}
	for p := 0; p < sc-1; p++ {
		for _, i := range order {
			if stage(i) <= p {
				pl.Prologue = append(pl.Prologue, body[i])
			}
		}
	}
	kernel := make([]sparc.Inst, 0, nb+2)
	for _, i := range order {
		kernel = append(kernel, body[i])
	}
	last := kernel[len(kernel)-1]
	if len(kernel) >= 2 && delaySlotLegal(cti, last) {
		kernel = kernel[:len(kernel)-1]
		kernel = append(kernel, cti, last)
	} else {
		kernel = append(kernel, cti, sparc.NewNop())
	}
	// Retarget the back edge at the kernel head. The displacement is
	// intra-kernel, so it survives any later layout shift untouched.
	kernel[len(kernel)-2].Disp = int32(-(len(kernel) - 2))
	pl.Kernel = kernel
	for q := 0; q < sc-1; q++ {
		for _, i := range order {
			if stage(i) >= q+1 {
				pl.Epilogue = append(pl.Epilogue, body[i])
			}
		}
	}
	return pl, nil
}
