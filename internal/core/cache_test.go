package core

import (
	"math/rand"
	"testing"

	"eel/internal/sparc"
)

// TestCacheShardCapacitySplit pins the sharding arithmetic: shard count
// is a power of two, every shard holds at least one entry, and the
// per-shard capacities sum exactly to the requested capacity — which is
// what makes Len <= Capacity a hard bound rather than an amortized one.
func TestCacheShardCapacitySplit(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 5, 15, 16, 17, 100, 8192} {
		c := NewCache(capacity)
		if c.Capacity() != capacity {
			t.Fatalf("NewCache(%d).Capacity() = %d", capacity, c.Capacity())
		}
		n := c.Shards()
		if n < 1 || n&(n-1) != 0 {
			t.Fatalf("NewCache(%d): %d shards, want a power of two", capacity, n)
		}
		sum := 0
		for i, sh := range c.ShardStats() {
			if sh.Cap < 1 {
				t.Fatalf("NewCache(%d): shard %d has capacity %d", capacity, i, sh.Cap)
			}
			sum += sh.Cap
		}
		if sum != capacity {
			t.Fatalf("NewCache(%d): shard capacities sum to %d", capacity, sum)
		}
	}
	if c := NewCache(0); c.Capacity() != DefaultCacheCapacity {
		t.Fatalf("NewCache(0).Capacity() = %d, want %d", c.Capacity(), DefaultCacheCapacity)
	}
}

// TestCacheLRUWithinShard drives one shard past its capacity and checks
// that eviction follows recency: a recently touched entry survives, the
// least recently used one goes.
func TestCacheLRUWithinShard(t *testing.T) {
	const seed = 12345
	c := NewCache(64) // 16 shards x 4 entries
	perShard := c.ShardStats()[0].Cap
	if perShard < 2 {
		t.Fatalf("test needs multi-entry shards, got %d", perShard)
	}

	// Collect perShard+1 distinct blocks hashing into the same shard.
	rng := rand.New(rand.NewSource(9))
	want := -1
	var blocks [][]sparc.Inst
	for len(blocks) <= perShard {
		b := randomBlocks(rng, 1)[0]
		k := blockHash(seed, b)
		idx := int((k ^ k>>32) & c.mask)
		if want == -1 {
			want = idx
		}
		if idx != want {
			continue
		}
		if _, ok := c.get(seed, b); ok {
			continue // duplicate block value
		}
		blocks = append(blocks, b)
	}

	// Fill the shard, then refresh blocks[0] so blocks[1] becomes LRU.
	for _, b := range blocks[:perShard] {
		c.put(seed, b, b)
	}
	if _, ok := c.get(seed, blocks[0]); !ok {
		t.Fatal("freshly inserted block missing")
	}
	c.put(seed, blocks[perShard], blocks[perShard])

	if _, ok := c.get(seed, blocks[1]); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	for _, i := range []int{0, 2, perShard} {
		if i >= len(blocks) {
			continue
		}
		if _, ok := c.get(seed, blocks[i]); !ok {
			t.Fatalf("recently used block %d was evicted", i)
		}
	}
	if sh := c.ShardStats()[want]; sh.Len > sh.Cap {
		t.Fatalf("shard %d overfull: %d/%d", want, sh.Len, sh.Cap)
	}
}

// TestCacheSeedsIsolate puts the same block under two seeds and makes
// sure each lookup only sees its own entry (machine/options isolation at
// the hash level; the end-to-end version is
// TestCacheKeysSeparateOptionsAndMachines).
func TestCacheSeedsIsolate(t *testing.T) {
	c := NewCache(8)
	b := randomBlocks(rand.New(rand.NewSource(3)), 1)[0]
	c.put(1, b, b[:1])
	if _, ok := c.get(2, b); ok {
		t.Fatal("seed 2 read seed 1's entry")
	}
	out, ok := c.get(1, b)
	if !ok || len(out) != 1 {
		t.Fatalf("seed 1 lookup failed: ok=%v out=%v", ok, out)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}
