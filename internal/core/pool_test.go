package core

import (
	"sync"
	"testing"
	"time"
)

// TestExecPoolDispatchAndRefusal pins the pool contract the parallel
// batch path relies on: capacity is a hard bound (a saturated pool
// refuses instead of queueing, so the caller schedules inline), drained
// workers are reused rather than respawned, and a closed pool refuses
// everything while Close stays idempotent.
func TestExecPoolDispatchAndRefusal(t *testing.T) {
	p := newExecPool(2)
	block := make(chan struct{})
	var occupied sync.WaitGroup
	for i := 0; i < 2; i++ {
		occupied.Add(1)
		if !p.dispatch(func() { occupied.Done(); <-block }) {
			t.Fatalf("dispatch %d refused with capacity free", i)
		}
	}
	occupied.Wait()

	if p.dispatch(func() {}) {
		t.Fatal("saturated pool accepted a task instead of refusing")
	}

	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		idle := p.inflight == 0
		p.mu.Unlock()
		if idle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never drained")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	if !p.dispatch(func() { close(done) }) {
		t.Fatal("drained pool refused a task")
	}
	<-done
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if started > 2 {
		t.Fatalf("pool started %d goroutines for capacity 2 — workers are not persistent", started)
	}

	p.Close()
	if p.dispatch(func() {}) {
		t.Fatal("closed pool accepted a task")
	}
	p.Close() // must be idempotent
}

// TestExecPoolCloseConcurrentWithDispatch races Close against a stream
// of dispatches: no send may land on a closed channel (the race
// detector and the panic handler both watch), and every accepted task
// must still run.
func TestExecPoolCloseConcurrentWithDispatch(t *testing.T) {
	for round := 0; round < 50; round++ {
		p := newExecPool(2)
		var accepted, ran sync.WaitGroup
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					accepted.Add(1)
					ran.Add(1)
					if !p.dispatch(func() { ran.Done() }) {
						ran.Done()
					}
					accepted.Done()
				}
			}()
		}
		p.Close()
		wg.Wait()
		accepted.Wait()
		ran.Wait()
	}
}
