package core

import (
	"fmt"

	"eel/internal/sparc"
)

// This file is pass 2 of EngineFast: list scheduling with an indexed
// priority queue over per-node earliest-issue-cycle bounds, instead of
// the reference loop's full ready-list Stalls rescan at every step.
//
// Why the result is still byte-identical to the reference rescan: both
// stall oracles are monotone — Issue only adds unit usage, raises
// register read/write horizons, and advances the clock — so the absolute
// cycle at which a ready instruction could issue never decreases as
// other instructions are committed. A Stalls probe taken at any earlier
// point in the block is therefore a permanent lower bound on the node's
// current earliest issue cycle. The queue keeps nodes ordered by that
// bound (ties broken by the reference priority: longest dependence
// chain, then original index); when the minimum-bound node's probe is
// stale — taken before the most recent Issue — it is re-probed and
// sifted down (bounds only grow). Once the root's probe is fresh, its
// bound is its true earliest issue cycle, which is ≤ every other node's
// bound ≤ that node's true cycle — so the root is exactly the node the
// reference scan would select, including tie-breaks, because stalls at a
// common clock order the same way as absolute cycles. Only nodes that
// surface at the root between two issues are probed: O(E + n log n)
// probes and heap work instead of the rescan's O(n²) probes.
//
// The bounds come exclusively from oracle probes (a node enters the
// queue with the clock at entry, the weakest sound bound). Propagating
// DAG edge latencies would be cheaper still, but the builder's pair
// latencies are not provably conservative against the oracle's placement
// rules for every description, and a too-high bound silently changes
// schedules. Probe caching alone already removes the quadratic term.

// runFastList schedules sc's dependence graph against oracle p. The
// scratch must have been filled by buildDepGraph. It also returns the
// modeled cycle count of the emitted sequence — the same value
// sequenceCost would measure, folded out of the issue cycles the loop
// produces anyway — so the never-costs-more guard can skip one replay.
// When pp is non-nil, probes and issues go through the pre-resolved
// placement inputs in sc.Prep.
func (s *Scheduler) runFastList(sc *scratch, p Pipeline, pp preparedPipeline) ([]sparc.Inst, int64, error) {
	n := len(sc.Insts)
	p.Reset()
	chainFirst := s.opts.ChainFirst

	var clock int64 // the oracle's clock: 0 after Reset, then each issue cycle
	version := int32(0)
	for i := 0; i < n; i++ {
		sc.probed[i] = -1
		if sc.npred[i] == 0 {
			sc.cachedT[i] = clock
			sc.heapPush(int32(i), chainFirst)
		}
	}

	var endCost int64
	out := sc.arena.take(n)
	for len(sc.heap) > 0 {
		top := sc.heap[0]
		// With a single candidate the selection is forced, so no probe is
		// needed even if its bound is stale (Issue fails exactly when the
		// probe would have).
		if len(sc.heap) > 1 && sc.probed[top] != version {
			// Stale bound: re-probe at the current clock. The new bound
			// can only be larger, so a sift-down restores heap order.
			var st int
			var err error
			if pp != nil {
				st, err = pp.StallsPrepared(&sc.Prep[top], sc.Insts[top])
			} else {
				st, err = p.Stalls(sc.Insts[top])
			}
			if err != nil {
				return nil, -1, err
			}
			sc.probed[top] = version
			if t := clock + int64(st); t != sc.cachedT[top] {
				sc.cachedT[top] = t
				sc.siftDown(0, chainFirst)
			}
			continue
		}
		// Fresh root: provably the reference scan's pick.
		var issue int64
		var err error
		if pp != nil {
			_, issue, err = pp.IssuePrepared(&sc.Prep[top], sc.Insts[top])
		} else {
			_, issue, err = p.Issue(sc.Insts[top])
		}
		if err != nil {
			return nil, -1, err
		}
		if sc.traceOn {
			sc.fastTraceStep(s, top, int(issue-clock), issue)
		}
		clock = issue
		version++ // all outstanding probes are now lower bounds only
		if e := issue + int64(sc.Groups[top].Cycles); e > endCost {
			endCost = e
		}
		out = append(out, sc.Insts[top])
		sc.perm = append(sc.perm, top)
		sc.heapPop(chainFirst)
		for e := sc.succStart[top]; e < sc.succStart[top+1]; e++ {
			v := sc.succ[e]
			sc.npred[v]--
			if sc.npred[v] == 0 {
				sc.cachedT[v] = clock
				sc.probed[v] = -1
				sc.heapPush(v, chainFirst)
			}
		}
	}
	if len(out) != n {
		return nil, -1, fmt.Errorf("core: scheduler dropped instructions (%d of %d)", len(out), n)
	}
	return out, endCost, nil
}

// qLess orders queue entries by (earliest-issue bound asc, chain desc,
// original index asc) — the reference better() with stalls replaced by
// the absolute-cycle bound, which orders identically at a common clock.
// ChainFirst flips the first two keys, mirroring the ablation.
func (sc *scratch) qLess(a, b int32, chainFirst bool) bool {
	if chainFirst {
		if sc.chain[a] != sc.chain[b] {
			return sc.chain[a] > sc.chain[b]
		}
		if sc.cachedT[a] != sc.cachedT[b] {
			return sc.cachedT[a] < sc.cachedT[b]
		}
		return a < b
	}
	if sc.cachedT[a] != sc.cachedT[b] {
		return sc.cachedT[a] < sc.cachedT[b]
	}
	if sc.chain[a] != sc.chain[b] {
		return sc.chain[a] > sc.chain[b]
	}
	return a < b
}

func (sc *scratch) heapPush(v int32, chainFirst bool) {
	sc.heap = append(sc.heap, v)
	i := len(sc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sc.qLess(sc.heap[i], sc.heap[parent], chainFirst) {
			break
		}
		sc.heap[i], sc.heap[parent] = sc.heap[parent], sc.heap[i]
		i = parent
	}
}

func (sc *scratch) heapPop(chainFirst bool) {
	last := len(sc.heap) - 1
	sc.heap[0] = sc.heap[last]
	sc.heap = sc.heap[:last]
	if last > 0 {
		sc.siftDown(0, chainFirst)
	}
}

func (sc *scratch) siftDown(i int, chainFirst bool) {
	n := len(sc.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && sc.qLess(sc.heap[l], sc.heap[least], chainFirst) {
			least = l
		}
		if r := 2*i + 2; r < n && sc.qLess(sc.heap[r], sc.heap[least], chainFirst) {
			least = r
		}
		if least == i {
			return
		}
		sc.heap[i], sc.heap[least] = sc.heap[least], sc.heap[i]
		i = least
	}
}
