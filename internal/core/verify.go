package core

import (
	"fmt"

	"eel/internal/sparc"
)

// VerifyDependences checks that sched is a legal reordering of orig under
// the scheduler's dependence rules (the same register, memory and trap
// rules buildDAG encodes, with this scheduler's aliasing options). It is
// the invariant layer behind the property tests: any schedule the paper's
// algorithm may emit must
//
//   - preserve the multiset of non-nop instructions (nops may be added or
//     dropped only by delay-slot refilling, so the length can change by at
//     most one),
//   - keep the block's CTI, if any, in the second-to-last slot, and
//   - issue every dependent pair in its original order.
//
// Blocks are compared in execution order: a block ending in a CTI plus
// delay slot is normalized so the delay-slot instruction (which executes
// last) follows the body, mirroring how the scheduler treats it.
func (s *Scheduler) VerifyDependences(orig, sched []sparc.Inst) error {
	origBody, origCTI, err := normalizeBlock(orig)
	if err != nil {
		return fmt.Errorf("core: verify: original block: %w", err)
	}
	schedBody, schedCTI, err := normalizeBlock(sched)
	if err != nil {
		return fmt.Errorf("core: verify: scheduled block: %w", err)
	}
	if (origCTI == nil) != (schedCTI == nil) {
		return fmt.Errorf("core: verify: CTI presence changed")
	}
	if origCTI != nil && *origCTI != *schedCTI {
		return fmt.Errorf("core: verify: CTI changed: %v -> %v", *origCTI, *schedCTI)
	}
	if d := len(orig) - len(sched); d > 1 || d < -1 {
		return fmt.Errorf("core: verify: length changed by %d (%d -> %d)", -d, len(orig), len(sched))
	}

	// Map each non-nop original instruction to its position in the
	// schedule. Identical duplicates are interchangeable, so the k-th
	// occurrence maps to the k-th occurrence.
	pos := make(map[sparc.Inst][]int)
	for i, inst := range schedBody {
		if inst.IsNop() {
			continue
		}
		pos[inst] = append(pos[inst], i)
	}
	mapped := make([]int, 0, len(origBody))
	kept := make([]sparc.Inst, 0, len(origBody))
	for _, inst := range origBody {
		if inst.IsNop() {
			continue
		}
		ps := pos[inst]
		if len(ps) == 0 {
			return fmt.Errorf("core: verify: instruction lost: %v", inst)
		}
		mapped = append(mapped, ps[0])
		pos[inst] = ps[1:]
		kept = append(kept, inst)
	}
	for inst, ps := range pos {
		if len(ps) > 0 {
			return fmt.Errorf("core: verify: instruction appeared: %v", inst)
		}
	}

	// Every dependent pair must keep its original order.
	var usesI, defsI, usesJ, defsJ []sparc.Reg
	for i := 0; i < len(kept); i++ {
		usesI = kept[i].Uses(usesI[:0])
		defsI = kept[i].Defs(defsI[:0])
		for j := i + 1; j < len(kept); j++ {
			usesJ = kept[j].Uses(usesJ[:0])
			defsJ = kept[j].Defs(defsJ[:0])
			dep := false
			switch {
			case kept[i].Op == sparc.OpTicc || kept[j].Op == sparc.OpTicc:
				dep = true
			case s.memConflict(kept[i], kept[j]):
				dep = true
			default:
				_, raw := intersects(defsI, usesJ)
				_, war := intersects(usesI, defsJ)
				_, waw := intersects(defsI, defsJ)
				dep = raw || war || waw
			}
			if dep && mapped[i] > mapped[j] {
				return fmt.Errorf("core: verify: dependence inverted: %v (orig %d, sched %d) vs %v (orig %d, sched %d)",
					kept[i], i, mapped[i], kept[j], j, mapped[j])
			}
		}
	}
	return nil
}

// normalizeBlock splits a block into execution-order straight-line code
// and its CTI: [body..., cti, delay] becomes body+[delay] (the delay slot
// executes after the CTI issues, i.e. last). Nop delay slots are dropped.
func normalizeBlock(block []sparc.Inst) ([]sparc.Inst, *sparc.Inst, error) {
	n := len(block)
	if n >= 2 && block[n-2].IsCTI() {
		cti := block[n-2]
		body := append([]sparc.Inst(nil), block[:n-2]...)
		if !block[n-1].IsNop() {
			body = append(body, block[n-1])
		}
		return body, &cti, nil
	}
	for i, inst := range block {
		if inst.IsCTI() {
			return nil, nil, fmt.Errorf("CTI at %d is not in terminal position", i)
		}
	}
	return block, nil, nil
}
