package core

import (
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// This file is the structure-of-arrays block representation shared by
// the scheduler's hot path and the simulator. A BlockSoA holds one flat
// array per per-instruction fact — timing group (latency class),
// hazard-rule flags, register masks, pre-resolved placement inputs
// (pipe.Prepared) — built once per block and then indexed by every
// consumer: the dependence-graph builder (depgraph.go), the ready
// queue's prepared probes (readyq.go), the never-costs-more guard's
// cost replays (sched.go), the exact search (optimal.go), and the
// simulator's per-static-index memo (internal/sim.Timing), which sizes
// only the arrays it needs via ResizePrep. Arrays are grown in place
// and recycled across blocks, so a warmed worker builds a block's SoA
// with zero allocations.

// InstFlags caches the per-instruction predicates the dependence rules
// and the simulator's grouping rules test.
type InstFlags uint8

const (
	FlagLoad InstFlags = 1 << iota
	FlagStore
	FlagInstrumented
	FlagTrap
)

// InstFlagsOf computes an instruction's predicate flags.
func InstFlagsOf(inst sparc.Inst) InstFlags {
	var f InstFlags
	if inst.Op.IsLoad() {
		f |= FlagLoad
	}
	if inst.Op.IsStore() {
		f |= FlagStore
	}
	if inst.Instrumented {
		f |= FlagInstrumented
	}
	if inst.Op == sparc.OpTicc {
		f |= FlagTrap
	}
	return f
}

// BlockSoA is the flat per-instruction view of a block. Insts, Groups
// and Flags always cover the block after Build; Prep is managed by the
// owner (the scheduler fills it before Build when the oracle supports
// preparing, the simulator fills it lazily per static index) and may be
// empty, longer than Insts (CTI pricing slots), or sized independently
// of the other arrays (ResizePrep).
type BlockSoA struct {
	Insts  []sparc.Inst
	Groups []*spawn.Group // timing group = latency class, per instruction
	Flags  []InstFlags
	Prep   []pipe.Prepared

	// Dense register bitsets per instruction, derived with the reference
	// %g0 exclusion. Core-internal: the dependence rules are the only
	// consumer.
	useMask []regMask
	defMask []regMask

	regBuf []sparc.Reg // reusable Uses/Defs spill buffer
}

// grow sizes the eager arrays for n instructions, reusing capacity.
func (b *BlockSoA) grow(n int) {
	if cap(b.Groups) < n {
		b.Groups = make([]*spawn.Group, n)
		b.Flags = make([]InstFlags, n)
		b.useMask = make([]regMask, n)
		b.defMask = make([]regMask, n)
	}
	b.Groups = b.Groups[:n]
	b.Flags = b.Flags[:n]
	b.useMask = b.useMask[:n]
	b.defMask = b.defMask[:n]
}

// Build fills the per-instruction arrays for insts in one pass. With
// usePrep the timing groups come from the already-filled Prep slots
// (the caller's prepare pass resolved them once); otherwise each is
// looked up in the model, failing on the same first bad instruction the
// reference builder would report.
func (b *BlockSoA) Build(model *spawn.Model, insts []sparc.Inst, usePrep bool) error {
	b.Insts = insts
	b.grow(len(insts))
	for i, inst := range insts {
		if usePrep {
			b.Groups[i] = b.Prep[i].Group()
		} else {
			g, err := model.GroupOf(inst)
			if err != nil {
				return err
			}
			b.Groups[i] = g
		}
		var um, dm regMask
		b.regBuf = inst.Uses(b.regBuf[:0])
		for _, r := range b.regBuf {
			um.set(r)
		}
		b.regBuf = inst.Defs(b.regBuf[:0])
		for _, r := range b.regBuf {
			dm.set(r)
		}
		b.useMask[i] = um
		b.defMask[i] = dm
		b.Flags[i] = InstFlagsOf(inst)
	}
	return nil
}

// ResizePrep sizes Prep and Flags for a lazy per-index builder (the
// simulator memoizes one Prepared per static text index and resolves it
// on first execution), reusing capacity and clearing prior contents. A
// cleared Prep slot reports a nil Group, which lazy builders use as the
// not-yet-resolved marker.
func (b *BlockSoA) ResizePrep(n int) {
	if cap(b.Prep) >= n {
		b.Prep = b.Prep[:n]
		clear(b.Prep)
	} else {
		b.Prep = make([]pipe.Prepared, n)
	}
	if cap(b.Flags) >= n {
		b.Flags = b.Flags[:n]
		clear(b.Flags)
	} else {
		b.Flags = make([]InstFlags, n)
	}
}

// arenaChunk is the instruction arena's allocation granularity.
const arenaChunk = 8192

// instArena hands out instruction slices from append-only chunks, so
// the scheduler's per-block output slices cost one bump allocation per
// ~8k instructions instead of one make per block. Chunks are never
// reused — take only ever advances — so returned slices stay valid for
// the life of their referents and an exhausted chunk is dropped for the
// garbage collector once its slices die.
type instArena struct {
	buf []sparc.Inst
}

// take reserves room for n instructions and returns it as an empty
// slice with capacity n, ready for the append idiom. Appending beyond n
// falls back to a normal reallocation, leaving the arena intact.
func (a *instArena) take(n int) []sparc.Inst {
	if cap(a.buf)-len(a.buf) < n {
		c := arenaChunk
		if n > c {
			c = n
		}
		a.buf = make([]sparc.Inst, 0, c)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	return a.buf[off : off : off+n]
}
