package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"eel/internal/obs"
	"eel/internal/spawn"
)

// TestScheduleBlocksCtxSpans: a traced batch must leave per-phase child
// spans under the context's parent span and must not change the
// schedule, for both the sequential and the parallel path.
func TestScheduleBlocksCtxSpans(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(11)), 60)
	for _, workers := range []int{1, 4} {
		s := New(model, Options{Workers: workers})
		want, err := s.ScheduleBlocks(blocks)
		if err != nil {
			t.Fatal(err)
		}

		tr := obs.NewTrace("request")
		parent := tr.StartSpan("batch.schedule")
		ctx := obs.WithTraceParent(context.Background(), tr, parent.Idx())
		got, err := s.ScheduleBlocksCtx(ctx, blocks)
		if err != nil {
			t.Fatal(err)
		}
		parent.End()
		tr.Finish()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: traced schedule differs from untraced", workers)
		}
		e := tr.Export()
		byName := map[string]obs.TraceSpan{}
		for _, sp := range e.Spans {
			byName[sp.Name] = sp
		}
		for _, name := range []string{"sched.depgraph", "sched.ready"} {
			sp, ok := byName[name]
			if !ok {
				t.Fatalf("workers=%d: span %s missing (have %v)", workers, name, e.Spans)
			}
			if sp.Parent != parent.Idx() {
				t.Fatalf("workers=%d: span %s parent = %d, want %d", workers, name, sp.Parent, parent.Idx())
			}
			if sp.DurNs <= 0 {
				t.Fatalf("workers=%d: span %s has no duration", workers, name)
			}
		}
		// randomBlocks emits CTI-terminated blocks too, so the CTI phase
		// must have been attributed.
		if _, ok := byName["sched.cti"]; !ok {
			t.Fatalf("workers=%d: sched.cti span missing", workers)
		}
	}
}

// TestScheduleBlocksCtxCacheSpan: cache lookups are attributed with a
// hit ratio note, and a second (all-hit) pass reports full hits.
func TestScheduleBlocksCtxCacheSpan(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(12)), 20)
	s := New(model, Options{Workers: 1, Cache: NewCache(64)})
	run := func() obs.TraceSpan {
		tr := obs.NewTrace("request")
		if _, err := s.ScheduleBlocksCtx(obs.WithTrace(context.Background(), tr), blocks); err != nil {
			t.Fatal(err)
		}
		tr.Finish()
		for _, sp := range tr.Export().Spans {
			if sp.Name == "cache.lookup" {
				return sp
			}
		}
		t.Fatal("cache.lookup span missing")
		return obs.TraceSpan{}
	}
	cold := run()
	warm := run()
	find := func(sp obs.TraceSpan, key string) string {
		for _, n := range sp.Notes {
			if len(n) > len(key) && n[:len(key)+1] == key+"=" {
				return n[len(key)+1:]
			}
		}
		t.Fatalf("span %v missing note %s", sp, key)
		return ""
	}
	if got := find(cold, "hits"); got != "0/20" {
		t.Fatalf("cold hits note = %s, want 0/20", got)
	}
	if got := find(warm, "hits"); got != "20/20" {
		t.Fatalf("warm hits note = %s, want 20/20", got)
	}
}

// TestDecisionTraceCarriesTraceID: with both a decision-trace sink and a
// request trace attached, every BlockTrace is stamped with the request
// trace's ID — the join key cmd/schedtrace -traceid filters on — and
// untraced batches leave it empty.
func TestDecisionTraceCarriesTraceID(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(13)), 10)
	sink := &memTraceSink{}
	s := New(model, Options{Workers: 2, Trace: sink})
	tr := obs.NewTrace("batch")
	if _, err := s.ScheduleBlocksCtx(obs.WithTrace(context.Background(), tr), blocks); err != nil {
		t.Fatal(err)
	}
	if len(sink.traces) != len(blocks) {
		t.Fatalf("traced %d blocks, want %d", len(sink.traces), len(blocks))
	}
	for _, bt := range sink.traces {
		if bt.TraceID != tr.ID() {
			t.Fatalf("block %d trace ID = %q, want %q", bt.Block, bt.TraceID, tr.ID())
		}
	}
	sink.traces = nil
	if _, err := s.ScheduleBlocks(blocks); err != nil {
		t.Fatal(err)
	}
	for _, bt := range sink.traces {
		if bt.TraceID != "" {
			t.Fatalf("untraced block %d carries trace ID %q", bt.Block, bt.TraceID)
		}
	}
}

// TestTraceDisabledOverheadGuard is the committed overhead guard for the
// tracing-disabled path (ISSUE 10 acceptance), same methodology as the
// telemetry guards: scheduling without a trace in the context must not
// be slower than scheduling with one (which stamps phase timers around
// every block), within a 3% noise allowance, min-of-K with retries.
func TestTraceDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(28)), 400)
	s := New(model, Options{Workers: 1})
	runOff := func() {
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			t.Fatal(err)
		}
	}
	runOn := func() {
		tr := obs.NewTrace("request")
		if _, err := s.ScheduleBlocksCtx(obs.WithTrace(context.Background(), tr), blocks); err != nil {
			t.Fatal(err)
		}
		tr.Finish()
	}
	runOff() // warm pools
	runOn()
	minOf := func(run func(), k int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < k; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	const limit = 1.03
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		off := minOf(runOff, 4)
		on := minOf(runOn, 4)
		ratio = float64(off) / float64(on)
		if ratio < limit {
			return
		}
	}
	t.Fatalf("untraced scheduling is %.1f%% slower than traced — the nil path is doing work",
		(ratio-1)*100)
}

// TestTraceEnabledOverheadGuard bounds the traced path: carrying a
// request trace may cost at most 10% over untraced scheduling (ISSUE 10
// acceptance: tracing adds <10% latency). The traced path adds four
// monotonic-clock reads per block plus one span merge per batch.
func TestTraceEnabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(28)), 400)
	s := New(model, Options{Workers: 1})
	runOff := func() {
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			t.Fatal(err)
		}
	}
	runOn := func() {
		tr := obs.NewTrace("request")
		if _, err := s.ScheduleBlocksCtx(obs.WithTrace(context.Background(), tr), blocks); err != nil {
			t.Fatal(err)
		}
		tr.Finish()
	}
	runOff() // warm pools
	runOn()
	minOf := func(run func(), k int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < k; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	const limit = 1.10
	var ratio float64
	for attempt := 0; attempt < 5; attempt++ {
		off := minOf(runOff, 4)
		on := minOf(runOn, 4)
		ratio = float64(on) / float64(off)
		if ratio < limit {
			return
		}
	}
	t.Fatalf("traced scheduling is %.1f%% slower than untraced, want < 10%%",
		(ratio-1)*100)
}
