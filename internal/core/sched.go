// Package core implements the paper's primary contribution: EEL's local
// (basic-block) instruction scheduler, which hides instrumentation code in
// unused superscalar issue slots (paper §4).
//
// The scheduler is the paper's "common two pass list scheduling algorithm":
//
//   - Pass 1 walks the block backwards, computing the length in cycles of
//     the dependence chain from every instruction to the end of the block,
//     considering only the stalls required between data-dependent
//     instructions.
//   - Pass 2 walks forward with list scheduling. Among the instructions
//     whose predecessors are all scheduled, it picks the one requiring the
//     fewest stalls before it can start execution (as computed by the
//     pipeline_stalls model in package pipe); ties break first toward the
//     instruction farthest from the end of the block, then toward the one
//     listed earlier in the original code (which was presumably scheduled
//     by the compiler).
//
// Memory disambiguation follows the paper exactly: original loads and
// stores conservatively conflict with each other; instrumentation loads
// and stores conflict with each other; but instrumentation memory accesses
// do not conflict with original ones ("instrumentation loads and stores
// ... access the same address, which differs from the address accessed by
// original instructions"). Options.ConservativeMem disables the exemption
// for instrumentation whose references are more constrained.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Oracle selects the stall-oracle implementation backing New.
type Oracle int

const (
	// OracleFast is the compiled table-driven pipe.FastState: flat
	// precomputed per-group tables probed against a fixed-size ring
	// buffer, no per-probe allocation. The default.
	OracleFast Oracle = iota
	// OracleReference is the map-based pipe.State — the ground truth the
	// fast oracle is differentially tested against. Schedules are
	// identical; only the wall clock differs.
	OracleReference
)

// String names the oracle as the CLIs' -oracle flag spells it.
func (o Oracle) String() string {
	if o == OracleReference {
		return "reference"
	}
	return "fast"
}

// ParseOracle converts a -oracle flag value.
func ParseOracle(s string) (Oracle, error) {
	switch s {
	case "fast", "":
		return OracleFast, nil
	case "reference":
		return OracleReference, nil
	}
	return 0, fmt.Errorf("core: unknown oracle %q (want fast or reference)", s)
}

// Options tune the scheduler. The zero value is the paper's configuration.
type Options struct {
	// ConservativeMem makes instrumentation memory references conflict
	// with original ones (the paper's "options to limit the movement of
	// instrumentation code").
	ConservativeMem bool
	// ChainFirst flips the priority function to prefer the longest
	// dependence chain over the fewest stalls (ablation).
	ChainFirst bool
	// NoReorder disables scheduling entirely; blocks pass through
	// unchanged (the unscheduled instrumentation baseline).
	NoReorder bool
	// Oracle selects the stall oracle New builds (fast compiled tables by
	// default; the reference interpreter for A/B checks). Both produce
	// byte-identical schedules — the equivalence is fuzzed in
	// internal/pipe and enforced in CI.
	Oracle Oracle
	// Workers bounds the worker pool used by ScheduleBlocks. 0 means
	// runtime.GOMAXPROCS(0); negative forces the sequential path. The
	// output is byte-identical regardless of the worker count: blocks
	// carry no cross-block pipeline state (every block starts from a
	// Reset oracle), so scheduling is embarrassingly parallel.
	Workers int
	// Cache, when non-nil, memoizes per-block scheduling results keyed
	// by (machine model, options, instruction-sequence hash) so repeated
	// editing of hot blocks skips rescheduling. Only schedulers built
	// with New consult it: a custom stall oracle (NewWith,
	// NewWithFactory) is not part of the key, so its results must not be
	// shared through a cache.
	Cache *Cache
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if o.Workers < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// Pipeline is the stall oracle driving list scheduling. pipe.State — the
// paper's SADL-derived pipeline_stalls — is the standard implementation;
// sim.HWPipeline models the real machine's grouping rules and lets the
// workload generator schedule code the way the vendors' compilers did.
type Pipeline interface {
	Reset()
	Stalls(inst sparc.Inst) (int, error)
	Issue(inst sparc.Inst) (stalls int, issueCycle int64, err error)
}

// Scheduler schedules basic blocks for one machine model.
//
// ScheduleBlock drives a single pipeline state and is not safe for
// concurrent use; ScheduleBlocks fans blocks out over a worker pool in
// which every worker draws a private stall oracle from a sync.Pool, and
// is safe to call from multiple goroutines when the scheduler was built
// with New or NewWithFactory.
type Scheduler struct {
	model   *spawn.Model
	state   Pipeline        // sequential-path oracle
	factory func() Pipeline // nil: oracle cannot be replicated for workers
	pool    sync.Pool       // of Pipeline, fed by factory
	opts    Options
	cacheID uint64 // cache key seed; 0 when results are uncacheable
}

// New returns a scheduler driven by the machine's SADL pipeline model —
// the paper's configuration. Options.Oracle picks the implementation:
// the compiled table-driven pipe.FastState by default, or the reference
// pipe.State interpreter.
func New(model *spawn.Model, opts Options) *Scheduler {
	factory := func() Pipeline { return pipe.NewFastState(model) }
	if opts.Oracle == OracleReference {
		factory = func() Pipeline { return pipe.NewState(model) }
	}
	s := &Scheduler{model: model, state: factory(), factory: factory, opts: opts}
	s.pool.New = func() any { return factory() }
	// Only the default oracle is cacheable: the model name plus the
	// options that change schedules fully determine the output.
	s.cacheID = cacheSeed(model, opts)
	return s
}

// NewWith returns a scheduler driven by a custom stall oracle (e.g. a
// hardware model with grouping rules the SADL description omits). The
// oracle cannot be replicated, so ScheduleBlocks degrades to the
// sequential path; use NewWithFactory to keep the parallel path.
func NewWith(p Pipeline, model *spawn.Model, opts Options) *Scheduler {
	return &Scheduler{model: model, state: p, opts: opts}
}

// NewWithFactory returns a scheduler whose stall oracles come from
// factory, one per worker goroutine, so ScheduleBlocks can run blocks
// concurrently against custom pipelines (e.g. sim.HWPipeline).
func NewWithFactory(factory func() Pipeline, model *spawn.Model, opts Options) *Scheduler {
	s := &Scheduler{model: model, state: factory(), factory: factory, opts: opts}
	s.pool.New = func() any { return factory() }
	return s
}

// Model returns the scheduler's machine model.
func (s *Scheduler) Model() *spawn.Model { return s.model }

// node is one instruction in the block's dependence DAG.
type node struct {
	inst  sparc.Inst
	index int // original position, the final tiebreak
	succs []edge
	npred int
	chain int // pass-1 dependence-chain length to block end, in cycles
}

type edge struct {
	to  *node
	lat int // minimum stall-free issue distance
}

// ScheduleBlock reorders one basic block. The slice must be a full block:
// if it ends with a control-transfer instruction and its delay slot, the
// scheduler keeps the CTI in place, schedules the body (the old delay-slot
// instruction joins the body), and refills the delay slot with the last
// scheduled instruction when that preserves semantics, or a nop otherwise.
//
// Blocks ending in an annulled branch are returned unchanged (their delay
// slot executes conditionally, pinning it). If the greedy schedule would
// model more cycles than the original order, the original is returned
// instead (see guardedSchedule), so scheduling never costs cycles.
func (s *Scheduler) ScheduleBlock(block []sparc.Inst) ([]sparc.Inst, error) {
	return s.scheduleBlockOn(s.state, block)
}

// scheduleBlockOn is ScheduleBlock against an explicit stall oracle, so
// worker goroutines can schedule with private pipeline states.
func (s *Scheduler) scheduleBlockOn(p Pipeline, block []sparc.Inst) ([]sparc.Inst, error) {
	if s.opts.NoReorder || len(block) == 0 {
		return block, nil
	}
	if c := s.opts.Cache; c != nil && s.cacheID != 0 {
		if out, ok := c.get(s.cacheID, block); ok {
			return out, nil
		}
		out, err := s.guardedSchedule(p, block)
		if err != nil {
			return nil, err
		}
		c.put(s.cacheID, block, out)
		return out, nil
	}
	return s.guardedSchedule(p, block)
}

// scheduleBlockRaw is one unguarded scheduling pass over a block.
func (s *Scheduler) scheduleBlockRaw(p Pipeline, block []sparc.Inst) ([]sparc.Inst, error) {
	body := block
	var cti sparc.Inst
	hasCTI := false
	if n := len(block); n >= 2 && block[n-2].IsCTI() {
		if block[n-2].Annul {
			return block, nil
		}
		hasCTI = true
		cti = block[n-2]
		body = make([]sparc.Inst, 0, n-1)
		body = append(body, block[:n-2]...)
		if !block[n-1].IsNop() {
			body = append(body, block[n-1])
		}
	} else if n >= 1 && block[n-1].IsCTI() {
		return nil, fmt.Errorf("core: block ends with a CTI but no delay slot")
	}

	scheduled, err := s.scheduleStraightLine(p, body)
	if err != nil {
		return nil, err
	}
	if !hasCTI {
		return scheduled, nil
	}

	out := make([]sparc.Inst, 0, len(scheduled)+2)
	// Fill the delay slot with the last scheduled instruction when legal.
	if k := len(scheduled); k > 0 && delaySlotLegal(cti, scheduled[k-1]) {
		out = append(out, scheduled[:k-1]...)
		out = append(out, cti, scheduled[k-1])
		return out, nil
	}
	out = append(out, scheduled...)
	out = append(out, cti, sparc.NewNop())
	return out, nil
}

// guardedSchedule runs scheduleBlockRaw and keeps the result only if it
// does not model more cycles than the original order. Greedy list
// scheduling is not optimal: a locally stall-free pick can occupy a unit
// a later instruction needs and lengthen the block. The paper's scheduler
// exists to hide instrumentation overhead, so a schedule that models
// worse than leaving the block alone is never worth emitting.
func (s *Scheduler) guardedSchedule(p Pipeline, block []sparc.Inst) ([]sparc.Inst, error) {
	out, err := s.scheduleBlockRaw(p, block)
	if err != nil {
		return nil, err
	}
	before, err := s.sequenceCost(p, block)
	if err != nil {
		return nil, err
	}
	after, err := s.sequenceCost(p, out)
	if err != nil {
		return nil, err
	}
	if after > before {
		return block, nil
	}
	return out, nil
}

// sequenceCost is pipe.SequenceCycles against this scheduler's oracle:
// the issue cycle of the sequence's last-finishing instruction plus its
// remaining pipeline occupancy, from an empty pipeline.
func (s *Scheduler) sequenceCost(p Pipeline, insts []sparc.Inst) (int64, error) {
	p.Reset()
	var end int64
	for _, inst := range insts {
		g, err := s.model.GroupOf(inst)
		if err != nil {
			return 0, err
		}
		_, issue, err := p.Issue(inst)
		if err != nil {
			return 0, err
		}
		if e := issue + int64(g.Cycles); e > end {
			end = e
		}
	}
	return end, nil
}

// delaySlotLegal reports whether cand may move from just before the CTI
// into its delay slot. The CTI evaluates its operands before the delay
// instruction executes, so cand must not define anything the CTI uses; it
// must not touch the CTI's definitions (e.g. %o7 of a call); and it must
// not itself transfer control.
func delaySlotLegal(cti, cand sparc.Inst) bool {
	if cand.IsCTI() || cand.Op == sparc.OpTicc {
		return false
	}
	ctiUses := cti.Uses(nil)
	ctiDefs := cti.Defs(nil)
	for _, d := range cand.Defs(nil) {
		for _, u := range ctiUses {
			if d == u {
				return false
			}
		}
		for _, cd := range ctiDefs {
			if d == cd {
				return false
			}
		}
	}
	for _, u := range cand.Uses(nil) {
		for _, cd := range ctiDefs {
			if u == cd {
				return false
			}
		}
	}
	return true
}

// scheduleStraightLine runs the two-pass list scheduler over straight-line
// code against the stall oracle p.
func (s *Scheduler) scheduleStraightLine(p Pipeline, body []sparc.Inst) ([]sparc.Inst, error) {
	if len(body) <= 1 {
		return body, nil
	}
	nodes, err := s.buildDAG(body)
	if err != nil {
		return nil, err
	}

	// Pass 1: backward dependence-chain lengths.
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		n.chain = 1
		for _, e := range n.succs {
			if c := e.lat + e.to.chain; c > n.chain {
				n.chain = c
			}
		}
	}

	// Pass 2: forward list scheduling.
	p.Reset()
	ready := make([]*node, 0, len(nodes))
	for _, n := range nodes {
		if n.npred == 0 {
			ready = append(ready, n)
		}
	}
	out := make([]sparc.Inst, 0, len(body))
	for len(ready) > 0 {
		bestIdx := -1
		bestStalls := 0
		var best *node
		for i, n := range ready {
			st, err := p.Stalls(n.inst)
			if err != nil {
				return nil, err
			}
			if best == nil || s.better(st, n, bestStalls, best) {
				best, bestIdx, bestStalls = n, i, st
			}
		}
		if _, _, err := p.Issue(best.inst); err != nil {
			return nil, err
		}
		out = append(out, best.inst)
		ready[bestIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		for _, e := range best.succs {
			e.to.npred--
			if e.to.npred == 0 {
				ready = append(ready, e.to)
			}
		}
	}
	if len(out) != len(body) {
		return nil, fmt.Errorf("core: scheduler dropped instructions (%d of %d)", len(out), len(body))
	}
	return out, nil
}

// better reports whether candidate (stalls st, node n) beats the current
// best. Default priority: fewest stalls, then longest chain to block end,
// then original order.
func (s *Scheduler) better(st int, n *node, bestSt int, best *node) bool {
	if s.opts.ChainFirst {
		if n.chain != best.chain {
			return n.chain > best.chain
		}
		if st != bestSt {
			return st < bestSt
		}
		return n.index < best.index
	}
	if st != bestSt {
		return st < bestSt
	}
	if n.chain != best.chain {
		return n.chain > best.chain
	}
	return n.index < best.index
}

// buildDAG constructs the dependence DAG with the paper's memory rules.
func (s *Scheduler) buildDAG(body []sparc.Inst) ([]*node, error) {
	nodes := make([]*node, len(body))
	for i, inst := range body {
		nodes[i] = &node{inst: inst, index: i}
	}
	var usesI, defsI, usesJ, defsJ []sparc.Reg
	for i := 0; i < len(body); i++ {
		gi, err := s.model.GroupOf(body[i])
		if err != nil {
			return nil, err
		}
		usesI = body[i].Uses(usesI[:0])
		defsI = body[i].Defs(defsI[:0])
		for j := i + 1; j < len(body); j++ {
			usesJ = body[j].Uses(usesJ[:0])
			defsJ = body[j].Defs(defsJ[:0])

			lat := 0
			dep := false
			// RAW: i defines a register j uses.
			if r, ok := intersects(defsI, usesJ); ok {
				dep = true
				if l := s.rawLatency(gi, body[i], body[j], r); l > lat {
					lat = l
				}
			}
			// WAR and WAW: ordering edges with unit latency.
			if _, ok := intersects(usesI, defsJ); ok {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			if _, ok := intersects(defsI, defsJ); ok {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			// Memory ordering.
			if s.memConflict(body[i], body[j]) {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			// Traps are scheduling barriers: nothing moves across them.
			if body[i].Op == sparc.OpTicc || body[j].Op == sparc.OpTicc {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			if dep {
				nodes[i].succs = append(nodes[i].succs, edge{to: nodes[j], lat: lat})
				nodes[j].npred++
			}
		}
	}
	return nodes, nil
}

// rawLatency returns the minimum stall-free issue distance between a
// producer and a consumer of register r: the producer's availability cycle
// for r minus the consumer's read cycle for r.
func (s *Scheduler) rawLatency(gi *spawn.Group, prod, cons sparc.Inst, r sparc.Reg) int {
	avail := writeAvail(gi, prod, r)
	read := 1
	if gj, err := s.model.GroupOf(cons); err == nil {
		read = readCycle(gj, cons, r)
	}
	if l := avail - read; l > 0 {
		return l
	}
	return 0
}

func writeAvail(g *spawn.Group, inst sparc.Inst, r sparc.Reg) int {
	def := g.Cycles
	for _, w := range g.Writes {
		if fieldNames(w, inst, r) {
			return w.Cycle
		}
	}
	return def
}

func readCycle(g *spawn.Group, inst sparc.Inst, r sparc.Reg) int {
	for _, rd := range g.Reads {
		if fieldNames(rd, inst, r) {
			return rd.Cycle
		}
	}
	if len(g.Reads) > 0 {
		min := g.Reads[0].Cycle
		for _, rd := range g.Reads {
			if rd.Cycle < min {
				min = rd.Cycle
			}
		}
		return min
	}
	return 1
}

// fieldNames mirrors pipe's field resolution for latency queries.
func fieldNames(a spawn.FieldAccess, inst sparc.Inst, r sparc.Reg) bool {
	switch a.File {
	case "R":
		if !r.IsInt() {
			return false
		}
	case "F":
		if !r.IsFloat() {
			return false
		}
	case "CC":
		if a.Index == 0 {
			return r == sparc.ICC
		}
		return r == sparc.FCC
	case "Y":
		return r == sparc.YReg
	default:
		return false
	}
	switch a.Field {
	case "rs1":
		return r == inst.Rs1 || r == inst.Rs1+1
	case "rs2":
		return r == inst.Rs2 || r == inst.Rs2+1
	case "rd":
		return r == inst.Rd || r == inst.Rd+1
	case "":
		if a.File == "R" {
			return r == sparc.Reg(a.Index)
		}
		if a.File == "F" {
			return r == sparc.FReg(a.Index)
		}
	}
	return false
}

// memConflict applies the paper's aliasing rules to a pair of
// instructions in original order (i before j).
func (s *Scheduler) memConflict(i, j sparc.Inst) bool {
	iMem := i.Op.IsLoad() || i.Op.IsStore()
	jMem := j.Op.IsLoad() || j.Op.IsStore()
	if !iMem || !jMem {
		return false
	}
	if i.Op.IsLoad() && j.Op.IsLoad() {
		return false // loads never conflict
	}
	if !s.opts.ConservativeMem && i.Instrumented != j.Instrumented {
		// Instrumentation memory is disjoint from program memory.
		return false
	}
	return true
}

// intersects returns a register present in both sets (%g0 excluded).
func intersects(a, b []sparc.Reg) (sparc.Reg, bool) {
	for _, x := range a {
		if x == sparc.G0 {
			continue
		}
		for _, y := range b {
			if x == y {
				return x, true
			}
		}
	}
	return 0, false
}
