// Package core implements the paper's primary contribution: EEL's local
// (basic-block) instruction scheduler, which hides instrumentation code in
// unused superscalar issue slots (paper §4).
//
// The scheduler is the paper's "common two pass list scheduling algorithm":
//
//   - Pass 1 walks the block backwards, computing the length in cycles of
//     the dependence chain from every instruction to the end of the block,
//     considering only the stalls required between data-dependent
//     instructions.
//   - Pass 2 walks forward with list scheduling. Among the instructions
//     whose predecessors are all scheduled, it picks the one requiring the
//     fewest stalls before it can start execution (as computed by the
//     pipeline_stalls model in package pipe); ties break first toward the
//     instruction farthest from the end of the block, then toward the one
//     listed earlier in the original code (which was presumably scheduled
//     by the compiler).
//
// Memory disambiguation follows the paper exactly: original loads and
// stores conservatively conflict with each other; instrumentation loads
// and stores conflict with each other; but instrumentation memory accesses
// do not conflict with original ones ("instrumentation loads and stores
// ... access the same address, which differs from the address accessed by
// original instructions"). Options.ConservativeMem disables the exemption
// for instrumentation whose references are more constrained.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"eel/internal/obs"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Oracle selects the stall-oracle implementation backing New.
type Oracle int

const (
	// OracleFast is the compiled table-driven pipe.FastState: flat
	// precomputed per-group tables probed against a fixed-size ring
	// buffer, no per-probe allocation. The default.
	OracleFast Oracle = iota
	// OracleReference is the map-based pipe.State — the ground truth the
	// fast oracle is differentially tested against. Schedules are
	// identical; only the wall clock differs.
	OracleReference
)

// String names the oracle as the CLIs' -oracle flag spells it.
func (o Oracle) String() string {
	if o == OracleReference {
		return "reference"
	}
	return "fast"
}

// ParseOracle converts a -oracle flag value.
func ParseOracle(s string) (Oracle, error) {
	switch s {
	case "fast", "":
		return OracleFast, nil
	case "reference":
		return OracleReference, nil
	}
	return 0, fmt.Errorf("core: unknown oracle %q (want fast or reference)", s)
}

// Engine selects the list-scheduling implementation, orthogonally to the
// stall oracle: Oracle picks what answers a probe, Engine picks how many
// probes the scheduler makes.
type Engine int

const (
	// EngineFast is the arena-based scheduler: dependence graph built
	// through per-register writer/reader tables into flat per-worker
	// scratch arenas (depgraph.go), pass 2 driven by an indexed priority
	// queue over monotone earliest-issue bounds (readyq.go). The default.
	EngineFast Engine = iota
	// EngineReference is the original pairwise O(n²) builder and
	// full-rescan ready loop — the ground truth EngineFast is
	// differentially tested against, block for block.
	EngineReference
	// EngineOptimal runs the fast greedy pass and then a branch-and-bound
	// exact search (optimal.go) that either proves the greedy schedule
	// optimal or replaces it with a provably cheaper one. Search effort is
	// bounded by Options.OptimalBudget/OptimalMaxInsts; blocks exceeding
	// the budget keep the greedy result. A ground-truth mode for
	// measuring the optimality gap, not a production default.
	EngineOptimal
)

// String names the engine as the CLIs' -engine flag spells it.
func (e Engine) String() string {
	switch e {
	case EngineReference:
		return "reference"
	case EngineOptimal:
		return "optimal"
	}
	return "fast"
}

// ParseEngine converts an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "fast", "":
		return EngineFast, nil
	case "reference":
		return EngineReference, nil
	case "optimal":
		return EngineOptimal, nil
	}
	return 0, fmt.Errorf("core: unknown engine %q (want fast, reference or optimal)", s)
}

// Options tune the scheduler. The zero value is the paper's configuration.
type Options struct {
	// ConservativeMem makes instrumentation memory references conflict
	// with original ones (the paper's "options to limit the movement of
	// instrumentation code").
	ConservativeMem bool
	// ChainFirst flips the priority function to prefer the longest
	// dependence chain over the fewest stalls (ablation).
	ChainFirst bool
	// NoReorder disables scheduling entirely; blocks pass through
	// unchanged (the unscheduled instrumentation baseline).
	NoReorder bool
	// Oracle selects the stall oracle New builds (fast compiled tables by
	// default; the reference interpreter for A/B checks). Both produce
	// byte-identical schedules — the equivalence is fuzzed in
	// internal/pipe and enforced in CI.
	Oracle Oracle
	// Engine selects the scheduling implementation (the fast arena-based
	// path by default; the original pairwise builder and rescan loop for
	// A/B checks). Fast and reference produce byte-identical schedules;
	// EngineOptimal additionally runs a branch-and-bound exact search
	// after the greedy pass and may emit a provably cheaper order. The
	// fast engine's soundness rests on oracle monotonicity, so schedulers
	// driven by custom oracles (NewWith, NewWithFactory) always run the
	// reference engine regardless of this option.
	Engine Engine
	// OptimalBudget bounds the exact search (EngineOptimal) in
	// branch-and-bound nodes — speculative issues — per block. 0 selects
	// DefaultOptimalBudget. A block whose search exhausts the budget
	// keeps the greedy schedule and counts as budget-exhausted (the
	// core.optimal_budget_exhausted metric). The budget is in nodes, not
	// wall time, so runs are deterministic and CI goldens stay stable.
	OptimalBudget int
	// OptimalMaxInsts caps the body size EngineOptimal will search at
	// all; larger blocks fall back to greedy immediately (counted as both
	// oversized and budget-exhausted). 0 selects DefaultOptimalMaxInsts.
	OptimalMaxInsts int
	// Workers bounds the worker pool used by ScheduleBlocks. 0 means
	// runtime.GOMAXPROCS(0); negative forces the sequential path. The
	// output is byte-identical regardless of the worker count: blocks
	// carry no cross-block pipeline state (every block starts from a
	// Reset oracle), so scheduling is embarrassingly parallel.
	Workers int
	// Cache, when non-nil, memoizes per-block scheduling results keyed
	// by (machine model, options, instruction-sequence hash) so repeated
	// editing of hot blocks skips rescheduling. Only schedulers built
	// with New consult it: a custom stall oracle (NewWith,
	// NewWithFactory) is not part of the key, so its results must not be
	// shared through a cache.
	Cache *Cache
	// Obs, when non-nil, receives scheduler telemetry: per-hazard stall
	// attribution of every emitted schedule, cycles-hidden deltas, block
	// histograms, cache and worker-pool statistics (telemetry.go).
	// Telemetry never changes schedules, so it is excluded from the
	// cache key — and from JSON, which bench embeds in table files that
	// must stay byte-identical across instrumented and plain runs.
	Obs *obs.Registry `json:"-"`
	// Trace, when non-nil, receives one BlockTrace per scheduled block
	// (trace.go): every ready set, pick, tie-break and issue cycle, for
	// cmd/schedtrace replay and golden-diffing. Tracing bypasses the
	// schedule cache and is for debugging, not production runs.
	Trace TraceSink `json:"-"`
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if o.Workers < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// Pipeline is the stall oracle driving list scheduling. pipe.State — the
// paper's SADL-derived pipeline_stalls — is the standard implementation;
// sim.HWPipeline models the real machine's grouping rules and lets the
// workload generator schedule code the way the vendors' compilers did.
type Pipeline interface {
	Reset()
	Stalls(inst sparc.Inst) (int, error)
	Issue(inst sparc.Inst) (stalls int, issueCycle int64, err error)
}

// Scheduler schedules basic blocks for one machine model.
//
// ScheduleBlock drives a single pipeline state and is not safe for
// concurrent use; ScheduleBlocks fans blocks out over a worker pool in
// which every worker draws a private stall oracle from a sync.Pool, and
// is safe to call from multiple goroutines when the scheduler was built
// with New or NewWithFactory.
type Scheduler struct {
	model   *spawn.Model
	seq     *worker         // sequential-path oracle + scratch
	factory func() Pipeline // nil: oracle cannot be replicated for workers
	pool    sync.Pool       // of *worker, fed by factory
	opts    Options
	cacheID uint64     // cache key seed; 0 when results are uncacheable
	fastOK  bool       // oracle known monotone, EngineFast allowed
	tel     *telemetry // nil unless Options.Obs carries a registry
	opt     *optAgg    // nil unless Engine == EngineOptimal (optimal.go)
	// telForceReplay disables inline attribution capture so telemetry
	// falls back to the post-schedule replay on every block. A test
	// hook: the differential attribution test runs both modes and
	// asserts counter-for-counter equality.
	telForceReplay bool
	// exec is the persistent goroutine pool ScheduleBlocks dispatches
	// batch helpers to (pool.go); nil on sequential-only schedulers.
	exec *execPool
}

// telCapture reports whether this scheduler classifies stalls inline
// during scheduling instead of replaying emitted blocks afterwards.
// Inline capture needs the fast engine's invariant that the greedy
// pass's issue sequence equals the emitted order (so the attribution
// accumulated while scheduling describes the output); the reference
// engine probes in a different order and EngineOptimal may emit a
// sequence the greedy pass never issued, so both fall back to replay.
func (s *Scheduler) telCapture() bool {
	return s.tel != nil && !s.telForceReplay && s.fastOK &&
		s.opts.Engine != EngineReference && s.opt == nil
}

// worker bundles one goroutine's private scheduling state: a stall
// oracle plus the fast engine's scratch arenas. Workers travel through
// the scheduler's pool so the arenas are recycled across batches.
type worker struct {
	p  Pipeline
	sc scratch
	// attr is the worker's private stall-attribution scratch for the
	// emitted order, attached to p during inline capture or telemetry
	// replays; attrBefore holds the original order's attribution from
	// the guard's cost replay (telemetry.go).
	attr       pipe.StallAttr
	attrBefore pipe.StallAttr
	// Inline-capture state, valid for the last scheduled block:
	// telInline marks attr/telAfter as describing the emitted order;
	// telUseBefore marks that the guard rejected the greedy schedule,
	// so the emitted order is the original and attrBefore/telBefore
	// describe it; telBefore < 0 means the original order was never
	// priced (unchanged block).
	telInline    bool
	telUseBefore bool
	telAfter     int64
	telBefore    int64
	// shard accumulates this worker's telemetry locally; it is merged
	// into the shared registry at batch end (telemetry.go).
	shard *telShard
	// keptOriginal marks (for tracing) that the never-costs-more guard
	// rejected the last block's greedy schedule.
	keptOriginal bool
	// opt is the worker's exact-search state, allocated lazily on the
	// first block an EngineOptimal scheduler searches (optimal.go).
	opt *optSearch
	// optUnproven marks the last block's search as inconclusive (budget
	// exhausted or oversized); such results stay out of the schedule
	// cache so every cached optimal-engine entry is a certified optimum.
	optUnproven bool
	// tt accumulates per-phase wall time for the current batch when it
	// carries a request trace (ScheduleBlocksCtx); nil otherwise, so the
	// untraced hot path pays one pointer test per phase (tracephase.go).
	tt *phaseTimes
	// traceID is the daemon trace that carried the current batch,
	// stamped into decision traces (BlockTrace.TraceID); "" untraced.
	traceID string
}

// New returns a scheduler driven by the machine's SADL pipeline model —
// the paper's configuration. Options.Oracle picks the implementation:
// the compiled table-driven pipe.FastState by default, or the reference
// pipe.State interpreter.
func New(model *spawn.Model, opts Options) *Scheduler {
	factory := func() Pipeline { return pipe.NewFastState(model) }
	if opts.Oracle == OracleReference {
		factory = func() Pipeline { return pipe.NewState(model) }
	}
	s := &Scheduler{model: model, seq: &worker{p: factory()}, factory: factory, opts: opts}
	s.pool.New = func() any { return &worker{p: factory()} }
	// Both pipe oracles are monotone (Issue only adds unit usage, raises
	// register horizons and advances the clock), which is what the fast
	// engine's cached-probe lower bounds rely on.
	s.fastOK = true
	// Only the default oracle is cacheable: the model name plus the
	// options that change schedules fully determine the output.
	s.cacheID = cacheSeed(model, opts)
	s.tel = newTelemetry(opts.Obs, model)
	if opts.Engine == EngineOptimal {
		s.opt = newOptAgg(opts.Obs)
	}
	s.initExec()
	return s
}

// initExec creates the persistent helper-goroutine pool when the
// configuration can use one (a replicable oracle and more than one
// worker). The pool outlives individual ScheduleBlocks calls — that is
// its point: a daemon serving many small Edit requests through one
// scheduler pays goroutine spin-up once, not per request. A finalizer
// backstops Close for schedulers that are simply dropped: the pool's
// goroutines park on a channel the Scheduler does not reference, so an
// unreachable Scheduler still finalizes, and Close unparks them.
func (s *Scheduler) initExec() {
	if n := s.opts.workers() - 1; n > 0 && s.factory != nil {
		s.exec = newExecPool(n)
		runtime.SetFinalizer(s, func(s2 *Scheduler) { s2.exec.Close() })
	}
}

// Close releases the scheduler's persistent helper goroutines. Optional
// (a finalizer reclaims them when the Scheduler is garbage collected)
// and idempotent; safe concurrently with ScheduleBlocks, whose batches
// degrade to fewer workers rather than fail.
func (s *Scheduler) Close() {
	if s.exec != nil {
		s.exec.Close()
	}
}

// NewWith returns a scheduler driven by a custom stall oracle (e.g. a
// hardware model with grouping rules the SADL description omits). The
// oracle cannot be replicated, so ScheduleBlocks degrades to the
// sequential path; use NewWithFactory to keep the parallel path. Custom
// oracles are not known to be monotone, so these schedulers run the
// reference engine.
func NewWith(p Pipeline, model *spawn.Model, opts Options) *Scheduler {
	return &Scheduler{model: model, seq: &worker{p: p}, opts: opts,
		tel: newTelemetry(opts.Obs, model)}
}

// NewWithFactory returns a scheduler whose stall oracles come from
// factory, one per worker goroutine, so ScheduleBlocks can run blocks
// concurrently against custom pipelines (e.g. sim.HWPipeline). Like
// NewWith, it runs the reference engine.
func NewWithFactory(factory func() Pipeline, model *spawn.Model, opts Options) *Scheduler {
	s := &Scheduler{model: model, seq: &worker{p: factory()}, factory: factory, opts: opts}
	s.pool.New = func() any { return &worker{p: factory()} }
	s.tel = newTelemetry(opts.Obs, model)
	s.initExec()
	return s
}

// Model returns the scheduler's machine model.
func (s *Scheduler) Model() *spawn.Model { return s.model }

// node is one instruction in the block's dependence DAG.
type node struct {
	inst  sparc.Inst
	index int // original position, the final tiebreak
	succs []edge
	npred int
	chain int // pass-1 dependence-chain length to block end, in cycles
}

type edge struct {
	to  *node
	lat int // minimum stall-free issue distance
}

// ScheduleBlock reorders one basic block. The slice must be a full block:
// if it ends with a control-transfer instruction and its delay slot, the
// scheduler keeps the CTI in place, schedules the body (the old delay-slot
// instruction joins the body), and refills the delay slot with the last
// scheduled instruction when that preserves semantics, or a nop otherwise.
//
// Blocks ending in an annulled branch are returned unchanged (their delay
// slot executes conditionally, pinning it). If the greedy schedule would
// model more cycles than the original order, the original is returned
// instead (see guardedSchedule), so scheduling never costs cycles.
func (s *Scheduler) ScheduleBlock(block []sparc.Inst) ([]sparc.Inst, error) {
	out, err := s.scheduleBlockOn(s.seq, -1, block)
	// Single-block callers expect counters visible on return; batches
	// flush once per worker instead (parallel.go).
	s.tel.flush(s.seq)
	return out, err
}

// scheduleBlockOn is ScheduleBlock against an explicit worker, so
// goroutines can schedule with private pipeline states and arenas. idx
// is the block's batch position, stamped into traces (-1 when the
// caller has no batch).
func (s *Scheduler) scheduleBlockOn(w *worker, idx int, block []sparc.Inst) ([]sparc.Inst, error) {
	if s.opts.NoReorder || len(block) == 0 {
		return block, nil
	}
	tracing := s.opts.Trace != nil
	w.sc.traceOn = tracing
	if tracing {
		w.sc.steps = w.sc.steps[:0]
		w.keptOriginal = false
	}
	// Cleared per block: telemetryBlock replays any block these don't
	// cover (cache hits, reference engine, unprepared oracles, ...).
	w.telInline = false
	w.telUseBefore = false
	if c := s.opts.Cache; c != nil && s.cacheID != 0 && !tracing {
		var lookupT0 time.Time
		if w.tt != nil {
			lookupT0 = time.Now()
		}
		out, ok := c.getInto(s.cacheID, block, &w.sc.arena)
		if w.tt != nil {
			w.tt.cacheNs += time.Since(lookupT0).Nanoseconds()
			w.tt.lookups++
			if ok {
				w.tt.hits++
			}
		}
		if ok {
			// Unproven optimal-engine results never enter the cache, so a
			// hit is a certified optimum and counts as proven.
			s.opt.hitProven(len(block))
			if s.tel != nil {
				s.telemetryBlock(w, block, out, true)
			}
			return out, nil
		}
		out, err := s.guardedSchedule(w, block)
		if err != nil {
			return nil, err
		}
		if s.opt != nil && w.optUnproven {
			// A budget-exhausted search is just the greedy fallback with no
			// certificate; caching it would let a later run mistake it for
			// a proven optimum. Skip the put and count the bypass.
			s.opt.cacheBypassed()
		} else {
			c.put(s.cacheID, block, out)
		}
		if s.tel != nil {
			s.telemetryBlock(w, block, out, false)
		}
		return out, nil
	}
	out, err := s.guardedSchedule(w, block)
	if err != nil {
		return nil, err
	}
	if s.tel != nil {
		s.telemetryBlock(w, block, out, false)
	}
	if tracing {
		s.emitTrace(w, idx, block, out)
	}
	return out, nil
}

// scheduleBlockRaw is one unguarded scheduling pass over a block. The
// returned cost is the modeled cycle count of the output sequence when
// the pass computed it as a side effect (non-CTI blocks on the fast
// engine, whose issue order is the output order), or -1 when the caller
// must measure it.
func (s *Scheduler) scheduleBlockRaw(w *worker, block []sparc.Inst) ([]sparc.Inst, int64, error) {
	sc := &w.sc
	body := block
	var cti sparc.Inst
	hasCTI := false
	if n := len(block); n >= 2 && block[n-2].IsCTI() {
		if block[n-2].Annul {
			return block, -1, nil
		}
		hasCTI = true
		cti = block[n-2]
		body = append(sc.bodyBuf[:0], block[:n-2]...)
		if !block[n-1].IsNop() {
			body = append(body, block[n-1])
		}
		sc.bodyBuf = body
	} else if n >= 1 && block[n-1].IsCTI() {
		return nil, -1, fmt.Errorf("core: block ends with a CTI but no delay slot")
	}
	if hasCTI && w.tt != nil {
		// The CTI phase is everything this pass does beyond straight-line
		// scheduling: delay-slot refill, CTI re-pricing, beforeIdx bookkeeping.
		// scheduleStraightLine subtracts its own share below, so measure the
		// whole pass and deduct the phases it attributes itself.
		ctiT0 := time.Now()
		dep0, rdy0 := w.tt.depgraphNs, w.tt.readyNs
		defer func() {
			w.tt.ctiNs += time.Since(ctiT0).Nanoseconds() - (w.tt.depgraphNs - dep0) - (w.tt.readyNs - rdy0)
		}()
	}

	// Inline telemetry capture (telemetry.go): with a monotone oracle the
	// greedy pass issues exactly the sequence it emits, so attaching the
	// attribution sink during scheduling classifies the emitted order's
	// stalls without the post-schedule replay.
	var csink attrSink
	if s.telCapture() {
		csink, _ = w.p.(attrSink)
	}
	if csink != nil && !hasCTI {
		w.attr.Reset()
		csink.SetAttribution(&w.attr)
	}
	scheduled, cost, err := s.scheduleStraightLine(w, body)
	if csink != nil && !hasCTI {
		csink.SetAttribution(nil)
	}
	if err != nil {
		return nil, -1, err
	}
	prepared := cost >= 0 && sc.prepOK // this block ran the fast prepared path
	if !hasCTI {
		if prepared {
			// The original order is the body itself: an identity mapping
			// lets the guard replay it through the prepared inputs.
			sc.beforeIdx = sc.beforeIdx[:0]
			for i := range block {
				sc.beforeIdx = append(sc.beforeIdx, int32(i))
			}
		}
		if csink != nil && cost >= 0 {
			// The issue loop ran start to finish: w.attr holds the emitted
			// order's attribution and cost is its modeled cycle count.
			w.telInline = true
			w.telAfter = cost
		}
		return scheduled, cost, nil
	}

	// Reinserting the CTI changes the issue sequence, so the straight-line
	// cost no longer describes the output.
	out := sc.arena.take(len(scheduled) + 2)
	refilled := false
	// Fill the delay slot with the last scheduled instruction when legal.
	if k := len(scheduled); k > 0 && sc.delaySlotLegal(cti, scheduled[k-1]) {
		out = append(out, scheduled[:k-1]...)
		out = append(out, cti, scheduled[k-1])
		refilled = true
	} else {
		out = append(out, scheduled...)
		out = append(out, cti, sparc.NewNop())
	}
	unchanged := blocksEqual(out, block)
	if !prepared || (unchanged && csink == nil) {
		// Unchanged blocks skip both cost replays in guardedSchedule, so
		// pricing here would be wasted (and could reject a block whose CTI
		// the model cannot place, which an unchanged schedule never needs).
		// Under inline capture an unchanged block is still priced — that
		// is the replay telemetry would have performed anyway — but a
		// pricing failure falls back to the replay path instead of
		// failing the block.
		return out, -1, nil
	}

	// Prepare the two instructions outside the body — the CTI and a nop —
	// then replay the output through the prepared inputs to price it, and
	// record the mapping that prices the original order the same way.
	pp := w.p.(preparedPipeline)
	nb := int32(len(scheduled))
	ctiSlot, nopSlot := nb, nb+1
	sc.Prep = sc.Prep[:nb]
	for _, extra := range [...]sparc.Inst{cti, sparc.NewNop()} {
		p, err := pp.Prepare(extra)
		if err != nil {
			if unchanged {
				return out, -1, nil
			}
			return nil, -1, err
		}
		sc.Prep = append(sc.Prep, p)
	}
	sc.costIdx = sc.costIdx[:0]
	if refilled {
		sc.costIdx = append(sc.costIdx, sc.perm[:nb-1]...)
		sc.costIdx = append(sc.costIdx, ctiSlot, sc.perm[nb-1])
	} else {
		sc.costIdx = append(sc.costIdx, sc.perm...)
		sc.costIdx = append(sc.costIdx, ctiSlot, nopSlot)
	}
	if csink != nil {
		w.attr.Reset()
		csink.SetAttribution(&w.attr)
	}
	after, err := s.sequenceCostIdx(w, out, sc.costIdx)
	if csink != nil {
		csink.SetAttribution(nil)
	}
	if err != nil {
		if unchanged {
			return out, -1, nil
		}
		return nil, -1, err
	}
	if csink != nil {
		w.telInline = true
		w.telAfter = after
	}
	if unchanged {
		// Priced for telemetry only; the guard needs no beforeIdx since
		// it keeps unchanged blocks without replaying the original.
		return out, after, nil
	}
	// Original order: the leading instructions map to themselves, then the
	// CTI, then the delay instruction (the last body slot, or — when the
	// original delay slot held a nop that stayed out of the body — a slot
	// prepared from that exact instruction: IsNop also covers sethi-to-%g0
	// forms, which need not time like the canonical nop).
	sc.beforeIdx = sc.beforeIdx[:0]
	for i := 0; i < len(block)-2; i++ {
		sc.beforeIdx = append(sc.beforeIdx, int32(i))
	}
	sc.beforeIdx = append(sc.beforeIdx, ctiSlot)
	if dly := block[len(block)-1]; !dly.IsNop() {
		sc.beforeIdx = append(sc.beforeIdx, nb-1)
	} else if dly == sparc.NewNop() {
		sc.beforeIdx = append(sc.beforeIdx, nopSlot)
	} else {
		p, err := pp.Prepare(dly)
		if err != nil {
			return nil, -1, err
		}
		sc.Prep = append(sc.Prep, p)
		sc.beforeIdx = append(sc.beforeIdx, nopSlot+1)
	}
	return out, after, nil
}

// guardedSchedule runs scheduleBlockRaw and keeps the result only if it
// does not model more cycles than the original order. Greedy list
// scheduling is not optimal: a locally stall-free pick can occupy a unit
// a later instruction needs and lengthen the block. The paper's scheduler
// exists to hide instrumentation overhead, so a schedule that models
// worse than leaving the block alone is never worth emitting.
func (s *Scheduler) guardedSchedule(w *worker, block []sparc.Inst) ([]sparc.Inst, error) {
	out, after, err := s.scheduleBlockRaw(w, block)
	if err != nil {
		return nil, err
	}
	if s.opt != nil {
		// EngineOptimal: try to beat the greedy schedule with the exact
		// search. A strictly better order invalidates the greedy pass's
		// prepared pricing, so its cost is re-measured below (after = -1).
		if best, changed := s.optimalImprove(w, block, out); changed {
			out, after = best, -1
		}
	}
	// An unchanged sequence models exactly the original's cycles, so the
	// guard trivially keeps it — no cost passes needed. (Compiler-ordered
	// code frequently reschedules to itself: original index is the final
	// tie-break.)
	if blocksEqual(out, block) {
		w.telBefore = -1 // original never priced separately
		return out, nil
	}
	// Under inline capture the guard's replay of the original order
	// doubles as telemetry: if the guard rejects the greedy schedule,
	// the emitted block IS the original, and attrBefore/telBefore
	// describe it (telemetry.go).
	var bsink attrSink
	if w.telInline {
		bsink, _ = w.p.(attrSink)
		if bsink != nil {
			w.attrBefore.Reset()
			bsink.SetAttribution(&w.attrBefore)
		}
	}
	var before int64
	if after >= 0 && w.sc.prepOK {
		// A known after-cost means the fast engine priced the output
		// through prepared inputs and recorded beforeIdx, the mapping
		// from each original-order position to its prepared slot.
		before, err = s.sequenceCostIdx(w, block, w.sc.beforeIdx)
	} else {
		before, err = s.sequenceCost(w.p, block)
	}
	if bsink != nil {
		bsink.SetAttribution(nil)
	}
	if err != nil {
		return nil, err
	}
	w.telBefore = before
	if after < 0 {
		after, err = s.sequenceCost(w.p, out)
		if err != nil {
			return nil, err
		}
	}
	if after > before {
		if w.sc.traceOn {
			w.keptOriginal = true
		}
		if bsink != nil {
			w.telUseBefore = true
		}
		return block, nil
	}
	return out, nil
}

// sequenceCostIdx is sequenceCost through the worker's prepared placement
// inputs: idx[i] names the scratch prep slot holding insts[i]'s resolved
// group and register accesses.
func (s *Scheduler) sequenceCostIdx(w *worker, insts []sparc.Inst, idx []int32) (int64, error) {
	pp := w.p.(preparedPipeline)
	sc := &w.sc
	w.p.Reset()
	var end int64
	for i, inst := range insts {
		p := &sc.Prep[idx[i]]
		_, issue, err := pp.IssuePrepared(p, inst)
		if err != nil {
			return 0, err
		}
		if e := issue + int64(p.Group().Cycles); e > end {
			end = e
		}
	}
	return end, nil
}

// sequenceCost is pipe.SequenceCycles against this scheduler's oracle:
// the issue cycle of the sequence's last-finishing instruction plus its
// remaining pipeline occupancy, from an empty pipeline.
func (s *Scheduler) sequenceCost(p Pipeline, insts []sparc.Inst) (int64, error) {
	p.Reset()
	var end int64
	for _, inst := range insts {
		g, err := s.model.GroupOf(inst)
		if err != nil {
			return 0, err
		}
		_, issue, err := p.Issue(inst)
		if err != nil {
			return 0, err
		}
		if e := issue + int64(g.Cycles); e > end {
			end = e
		}
	}
	return end, nil
}

// delaySlotLegal reports whether cand may move from just before the CTI
// into its delay slot. The CTI evaluates its operands before the delay
// instruction executes, so cand must not define anything the CTI uses; it
// must not touch the CTI's definitions (e.g. %o7 of a call); and it must
// not itself transfer control.
func delaySlotLegal(cti, cand sparc.Inst) bool {
	if cand.IsCTI() || cand.Op == sparc.OpTicc {
		return false
	}
	ctiUses := cti.Uses(nil)
	ctiDefs := cti.Defs(nil)
	for _, d := range cand.Defs(nil) {
		for _, u := range ctiUses {
			if d == u {
				return false
			}
		}
		for _, cd := range ctiDefs {
			if d == cd {
				return false
			}
		}
	}
	for _, u := range cand.Uses(nil) {
		for _, cd := range ctiDefs {
			if u == cd {
				return false
			}
		}
	}
	return true
}

// delaySlotLegal is the free function's logic against the scratch's
// reusable register buffers, so the per-CTI-block legality check costs
// no allocations. Semantics are identical — in particular %g0 is NOT
// excluded here, matching the reference loops exactly.
func (sc *scratch) delaySlotLegal(cti, cand sparc.Inst) bool {
	if cand.IsCTI() || cand.Op == sparc.OpTicc {
		return false
	}
	sc.ctiUses = cti.Uses(sc.ctiUses[:0])
	sc.ctiDefs = cti.Defs(sc.ctiDefs[:0])
	sc.candRegs = cand.Defs(sc.candRegs[:0])
	for _, d := range sc.candRegs {
		for _, u := range sc.ctiUses {
			if d == u {
				return false
			}
		}
		for _, cd := range sc.ctiDefs {
			if d == cd {
				return false
			}
		}
	}
	sc.candRegs = cand.Uses(sc.candRegs[:0])
	for _, u := range sc.candRegs {
		for _, cd := range sc.ctiDefs {
			if u == cd {
				return false
			}
		}
	}
	return true
}

// scheduleStraightLine runs the two-pass list scheduler over straight-line
// code on worker w, dispatching to the selected engine. The fast engine
// is only eligible on schedulers built with New (known-monotone oracles).
func (s *Scheduler) scheduleStraightLine(w *worker, body []sparc.Inst) ([]sparc.Inst, int64, error) {
	if len(body) <= 1 {
		return body, -1, nil
	}
	if s.fastOK && s.opts.Engine != EngineReference {
		// EngineOptimal also takes this path: the greedy fast pass both
		// seeds the exact search's incumbent and fills the scratch arenas
		// (dependence graph, prepared probes) the search reuses.
		sc := &w.sc
		var phaseT0 time.Time
		if w.tt != nil {
			phaseT0 = time.Now()
		}
		pp, usePrep := w.p.(preparedPipeline)
		if usePrep {
			// Resolve every instruction's placement inputs once; the
			// graph build, the scheduling loop and the guard's cost
			// replay each need them, several times over. Preparing scans
			// instructions in order, so a model-lookup failure surfaces
			// on the same first bad instruction the reference build
			// would report.
			// Reserve three slots past the body: CTI pricing appends the
			// CTI, a nop, and possibly a non-canonical delay-slot nop
			// (scheduleBlockRaw) without reallocating.
			if cap(sc.Prep) < len(body)+3 {
				sc.Prep = make([]pipe.Prepared, len(body)+3)
			}
			sc.Prep = sc.Prep[:len(body)]
			for i, inst := range body {
				p, err := pp.Prepare(inst)
				if err != nil {
					return nil, -1, err
				}
				sc.Prep[i] = p
			}
		}
		if err := s.buildDepGraph(sc, body, usePrep); err != nil {
			return nil, -1, err
		}
		sc.prepOK = usePrep
		if w.tt != nil {
			now := time.Now()
			w.tt.depgraphNs += now.Sub(phaseT0).Nanoseconds()
			out, cost, err := s.runFastList(sc, w.p, pp)
			w.tt.readyNs += time.Since(now).Nanoseconds()
			return out, cost, err
		}
		return s.runFastList(sc, w.p, pp)
	}
	out, err := s.referenceStraightLine(w, body)
	return out, -1, err
}

// preparedPipeline is the optional oracle interface for pre-resolved
// placement (implemented by pipe.FastState): resolve an instruction's
// register accesses and compiled group once, probe many times.
type preparedPipeline interface {
	Prepare(inst sparc.Inst) (pipe.Prepared, error)
	StallsPrepared(p *pipe.Prepared, inst sparc.Inst) (int, error)
	IssuePrepared(p *pipe.Prepared, inst sparc.Inst) (int, int64, error)
}

// referenceStraightLine is the original two-pass implementation: pairwise
// DAG build, then a full ready-list Stalls rescan per issue step. It is
// the ground truth the fast engine is differentially tested against.
func (s *Scheduler) referenceStraightLine(w *worker, body []sparc.Inst) ([]sparc.Inst, error) {
	p := w.p
	var phaseT0 time.Time
	if w.tt != nil {
		phaseT0 = time.Now()
	}
	nodes, err := s.buildDAG(body)
	if err != nil {
		return nil, err
	}

	// Pass 1: backward dependence-chain lengths.
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		n.chain = 1
		for _, e := range n.succs {
			if c := e.lat + e.to.chain; c > n.chain {
				n.chain = c
			}
		}
	}
	if w.tt != nil {
		now := time.Now()
		w.tt.depgraphNs += now.Sub(phaseT0).Nanoseconds()
		phaseT0 = now
		defer func() { w.tt.readyNs += time.Since(phaseT0).Nanoseconds() }()
	}

	// Pass 2: forward list scheduling.
	p.Reset()
	ready := make([]*node, 0, len(nodes))
	for _, n := range nodes {
		if n.npred == 0 {
			ready = append(ready, n)
		}
	}
	out := make([]sparc.Inst, 0, len(body))
	var sts []int // per-ready stall probes, kept only while tracing
	for len(ready) > 0 {
		bestIdx := -1
		bestStalls := 0
		var best *node
		if w.sc.traceOn {
			sts = append(sts[:0], make([]int, len(ready))...)
		}
		for i, n := range ready {
			st, err := p.Stalls(n.inst)
			if err != nil {
				return nil, err
			}
			if sts != nil {
				sts[i] = st
			}
			if best == nil || s.better(st, n, bestStalls, best) {
				best, bestIdx, bestStalls = n, i, st
			}
		}
		_, issue, err := p.Issue(best.inst)
		if err != nil {
			return nil, err
		}
		if w.sc.traceOn {
			s.refTraceStep(w, ready, sts, bestIdx, bestStalls, issue)
		}
		out = append(out, best.inst)
		ready[bestIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		for _, e := range best.succs {
			e.to.npred--
			if e.to.npred == 0 {
				ready = append(ready, e.to)
			}
		}
	}
	if len(out) != len(body) {
		return nil, fmt.Errorf("core: scheduler dropped instructions (%d of %d)", len(out), len(body))
	}
	return out, nil
}

// better reports whether candidate (stalls st, node n) beats the current
// best. Default priority: fewest stalls, then longest chain to block end,
// then original order.
func (s *Scheduler) better(st int, n *node, bestSt int, best *node) bool {
	if s.opts.ChainFirst {
		if n.chain != best.chain {
			return n.chain > best.chain
		}
		if st != bestSt {
			return st < bestSt
		}
		return n.index < best.index
	}
	if st != bestSt {
		return st < bestSt
	}
	if n.chain != best.chain {
		return n.chain > best.chain
	}
	return n.index < best.index
}

// buildDAG constructs the dependence DAG with the paper's memory rules.
func (s *Scheduler) buildDAG(body []sparc.Inst) ([]*node, error) {
	nodes := make([]*node, len(body))
	for i, inst := range body {
		nodes[i] = &node{inst: inst, index: i}
	}
	var usesI, defsI, usesJ, defsJ []sparc.Reg
	for i := 0; i < len(body); i++ {
		gi, err := s.model.GroupOf(body[i])
		if err != nil {
			return nil, err
		}
		usesI = body[i].Uses(usesI[:0])
		defsI = body[i].Defs(defsI[:0])
		for j := i + 1; j < len(body); j++ {
			usesJ = body[j].Uses(usesJ[:0])
			defsJ = body[j].Defs(defsJ[:0])

			lat := 0
			dep := false
			// RAW: i defines a register j uses.
			if r, ok := intersects(defsI, usesJ); ok {
				dep = true
				if l := s.rawLatency(gi, body[i], body[j], r); l > lat {
					lat = l
				}
			}
			// WAR and WAW: ordering edges with unit latency.
			if _, ok := intersects(usesI, defsJ); ok {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			if _, ok := intersects(defsI, defsJ); ok {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			// Memory ordering.
			if s.memConflict(body[i], body[j]) {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			// Traps are scheduling barriers: nothing moves across them.
			if body[i].Op == sparc.OpTicc || body[j].Op == sparc.OpTicc {
				dep = true
				if lat < 1 {
					lat = 1
				}
			}
			if dep {
				nodes[i].succs = append(nodes[i].succs, edge{to: nodes[j], lat: lat})
				nodes[j].npred++
			}
		}
	}
	return nodes, nil
}

// rawLatency returns the minimum stall-free issue distance between a
// producer and a consumer of register r: the producer's availability cycle
// for r minus the consumer's read cycle for r.
func (s *Scheduler) rawLatency(gi *spawn.Group, prod, cons sparc.Inst, r sparc.Reg) int {
	avail := writeAvail(gi, prod, r)
	read := 1
	if gj, err := s.model.GroupOf(cons); err == nil {
		read = readCycle(gj, cons, r)
	}
	if l := avail - read; l > 0 {
		return l
	}
	return 0
}

func writeAvail(g *spawn.Group, inst sparc.Inst, r sparc.Reg) int {
	def := g.Cycles
	for _, w := range g.Writes {
		if fieldNames(w, inst, r) {
			return w.Cycle
		}
	}
	return def
}

func readCycle(g *spawn.Group, inst sparc.Inst, r sparc.Reg) int {
	for _, rd := range g.Reads {
		if fieldNames(rd, inst, r) {
			return rd.Cycle
		}
	}
	if len(g.Reads) > 0 {
		min := g.Reads[0].Cycle
		for _, rd := range g.Reads {
			if rd.Cycle < min {
				min = rd.Cycle
			}
		}
		return min
	}
	return 1
}

// fieldNames mirrors pipe's field resolution for latency queries.
func fieldNames(a spawn.FieldAccess, inst sparc.Inst, r sparc.Reg) bool {
	switch a.File {
	case "R":
		if !r.IsInt() {
			return false
		}
	case "F":
		if !r.IsFloat() {
			return false
		}
	case "CC":
		if a.Index == 0 {
			return r == sparc.ICC
		}
		return r == sparc.FCC
	case "Y":
		return r == sparc.YReg
	default:
		return false
	}
	switch a.Field {
	case "rs1":
		return r == inst.Rs1 || r == inst.Rs1+1
	case "rs2":
		return r == inst.Rs2 || r == inst.Rs2+1
	case "rd":
		return r == inst.Rd || r == inst.Rd+1
	case "":
		if a.File == "R" {
			return r == sparc.Reg(a.Index)
		}
		if a.File == "F" {
			return r == sparc.FReg(a.Index)
		}
	}
	return false
}

// memConflict applies the paper's aliasing rules to a pair of
// instructions in original order (i before j).
func (s *Scheduler) memConflict(i, j sparc.Inst) bool {
	iMem := i.Op.IsLoad() || i.Op.IsStore()
	jMem := j.Op.IsLoad() || j.Op.IsStore()
	if !iMem || !jMem {
		return false
	}
	if i.Op.IsLoad() && j.Op.IsLoad() {
		return false // loads never conflict
	}
	if !s.opts.ConservativeMem && i.Instrumented != j.Instrumented {
		// Instrumentation memory is disjoint from program memory.
		return false
	}
	return true
}

// intersects returns a register present in both sets (%g0 excluded).
func intersects(a, b []sparc.Reg) (sparc.Reg, bool) {
	for _, x := range a {
		if x == sparc.G0 {
			continue
		}
		for _, y := range b {
			if x == y {
				return x, true
			}
		}
	}
	return 0, false
}
