package core

import (
	"errors"
	"testing"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// swpLoop assembles a counted loop block: body, subcc counter, bne to
// the block start, nop delay slot.
func swpLoop(t *testing.T, body string) []sparc.Inst {
	t.Helper()
	insts, err := sparc.Assemble("loop:\n" + body + `
	subcc %l7, 1, %l7
	bne loop
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

// unrollOriginal is trip copies of the block's execution-order body,
// nops dropped.
func unrollOriginal(block []sparc.Inst, trip int) []sparc.Inst {
	n := len(block)
	body := append([]sparc.Inst(nil), block[:n-2]...)
	if !block[n-1].IsNop() {
		body = append(body, block[n-1])
	}
	var out []sparc.Inst
	for k := 0; k < trip; k++ {
		for _, inst := range body {
			if !inst.IsNop() {
				out = append(out, inst)
			}
		}
	}
	return out
}

// unrollPipelined flattens prologue + KernelTicks kernel bodies +
// epilogue into execution order, nops dropped. The kernel's delay-slot
// instruction executes last in its tick.
func unrollPipelined(pl *PipelinedLoop) []sparc.Inst {
	var out []sparc.Inst
	push := func(insts ...sparc.Inst) {
		for _, inst := range insts {
			if !inst.IsNop() && !inst.IsCTI() {
				out = append(out, inst)
			}
		}
	}
	push(pl.Prologue...)
	nk := len(pl.Kernel)
	for k := 0; k < pl.KernelTicks; k++ {
		push(pl.Kernel[:nk-2]...)
		push(pl.Kernel[nk-1])
	}
	push(pl.Epilogue...)
	return out
}

func pipelineOn(t *testing.T, machine spawn.Machine, block []sparc.Inst, trip int) (*PipelinedLoop, *Scheduler, error) {
	t.Helper()
	s := New(spawn.MustLoad(machine), Options{})
	pl, err := s.PipelineLoop(block, trip, SWPOptions{})
	return pl, s, err
}

func TestPipelineLoopSimple(t *testing.T) {
	block := swpLoop(t, `
	ldd [%g1], %f0
	fmuld %f0, %f2, %f4
	ldd [%g1+8], %f8
	fmuld %f8, %f10, %f12
	faddd %f4, %f12, %f16
	faddd %f16, %f18, %f20
`)
	pl, s, err := pipelineOn(t, spawn.UltraSPARC, block, 16)
	if err != nil {
		t.Fatalf("PipelineLoop: %v", err)
	}
	if pl.Stages < 2 {
		t.Fatalf("Stages = %d, want >= 2", pl.Stages)
	}
	if pl.II < pl.MII || pl.MII < pl.ResMII || pl.MII < pl.RecMII {
		t.Errorf("II=%d MII=%d ResMII=%d RecMII=%d inconsistent", pl.II, pl.MII, pl.ResMII, pl.RecMII)
	}
	if pl.KernelTicks != pl.Trip-pl.Stages+1 {
		t.Errorf("KernelTicks = %d, want %d", pl.KernelTicks, pl.Trip-pl.Stages+1)
	}
	// The kernel carries every body instruction once, plus CTI and delay.
	nb := len(block) - 2 // body incl. subcc; delay slot is a nop
	kb := len(pl.Kernel) - 2
	if !pl.Kernel[len(pl.Kernel)-1].IsNop() {
		kb++
	}
	if kb != nb {
		t.Errorf("kernel body = %d instructions, want %d", kb, nb)
	}
	// Kernel back edge targets the kernel start.
	cti := pl.Kernel[len(pl.Kernel)-2]
	if cti.Op != sparc.OpBicc || cti.Cond != sparc.CondNE || int(cti.Disp) != -(len(pl.Kernel)-2) {
		t.Errorf("kernel back edge wrong: %v disp=%d len=%d", cti, cti.Disp, len(pl.Kernel))
	}
	if len(pl.Prologue) == 0 {
		t.Error("empty prologue for a multi-stage schedule")
	}
	// The steady-state unroll is a dependence-preserving permutation of
	// the original unroll.
	if err := s.VerifyDependences(unrollOriginal(block, pl.Trip), unrollPipelined(pl)); err != nil {
		t.Errorf("unrolled steady state violates dependences: %v", err)
	}
	// The counter appears exactly trip times across the whole rewrite,
	// so the exit test fires with the original final counter value.
	subccs := 0
	for _, seq := range [][]sparc.Inst{pl.Prologue, pl.Epilogue} {
		for _, inst := range seq {
			if inst.Op == sparc.OpSubcc {
				subccs++
			}
		}
	}
	for _, inst := range pl.Kernel {
		if inst.Op == sparc.OpSubcc {
			subccs += pl.KernelTicks
		}
	}
	if subccs != pl.Trip {
		t.Errorf("counter decrements %d times, want %d", subccs, pl.Trip)
	}
}

func TestPipelineLoopAggregateSizes(t *testing.T) {
	block := swpLoop(t, `
	ldd [%g1], %f0
	fmuld %f0, %f2, %f4
	ldd [%g1+8], %f8
	fmuld %f8, %f10, %f12
	faddd %f4, %f12, %f16
	faddd %f16, %f18, %f20
`)
	pl, _, err := pipelineOn(t, spawn.UltraSPARC, block, 12)
	if err != nil {
		t.Fatalf("PipelineLoop: %v", err)
	}
	// Prologue + epilogue together hold SC-1 full iterations: every
	// instruction i contributes (SC-1-s_i) prologue copies and s_i
	// epilogue copies.
	nb := len(block) - 2
	if got, want := len(pl.Prologue)+len(pl.Epilogue), (pl.Stages-1)*nb; got != want {
		t.Errorf("prologue+epilogue = %d, want %d", got, want)
	}
	// Total dynamic instances = trip iterations of the body.
	kb := len(pl.Kernel) - 2
	if !pl.Kernel[len(pl.Kernel)-1].IsNop() {
		kb++
	}
	total := len(pl.Prologue) + kb*pl.KernelTicks + len(pl.Epilogue)
	if want := nb * pl.Trip; total != want {
		t.Errorf("dynamic instances = %d, want %d", total, want)
	}
}

func TestPipelineLoopRejections(t *testing.T) {
	mustReject := func(name string, block []sparc.Inst, trip int) {
		t.Helper()
		_, _, err := pipelineOn(t, spawn.UltraSPARC, block, trip)
		if err == nil {
			t.Errorf("%s: accepted, want rejection", name)
		} else if !errors.Is(err, ErrNotPipelined) {
			t.Errorf("%s: error %v is not ErrNotPipelined", name, err)
		}
	}

	ok := swpLoop(t, "\tldd [%g1], %f0\n\tfmuld %f0, %f2, %f4\n")

	// Annulled back edge.
	ann := append([]sparc.Inst(nil), ok...)
	ann[len(ann)-2].Annul = true
	mustReject("annulled", ann, 10)

	// Unconditional back edge.
	ba := append([]sparc.Inst(nil), ok...)
	ba[len(ba)-2].Cond = sparc.CondA
	mustReject("unconditional", ba, 10)

	// Wrong branch target (not the block start).
	off := append([]sparc.Inst(nil), ok...)
	off[len(off)-2].Disp--
	mustReject("off-target", off, 10)

	// Second condition-code writer.
	two, err := sparc.Assemble(`
loop:
	cmp %g3, 4
	ldd [%g1], %f0
	subcc %l7, 1, %l7
	bne loop
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	mustReject("two cc writers", two, 10)

	// Counter written twice.
	twice, err := sparc.Assemble(`
loop:
	add %l7, 1, %l7
	subcc %l7, 1, %l7
	bne loop
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	mustReject("counter rewritten", twice, 10)

	// Zero or unknown trip count.
	mustReject("zero trip", ok, 0)

	// Trip shorter than the stage count (prologue would overrun).
	mustReject("short trip", ok, 1)

	// No CTI at all.
	straight, err := sparc.Assemble("\tadd %g1, 1, %g1\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	mustReject("no CTI", straight, 10)
}

// The loop counter must sit in stage 0 on every machine so the branch
// exit count is exact; verify across all three models via the emitted
// sections (a stage-0 instruction has no epilogue copies).
func TestPipelineLoopCounterStageZero(t *testing.T) {
	for _, machine := range []spawn.Machine{spawn.HyperSPARC, spawn.SuperSPARC, spawn.UltraSPARC} {
		block := swpLoop(t, `
	ldd [%g1], %f0
	fmuld %f0, %f2, %f4
	ldd [%g1+8], %f8
	fmuld %f8, %f10, %f12
	faddd %f4, %f12, %f16
	faddd %f16, %f18, %f20
`)
		pl, s, err := pipelineOn(t, machine, block, 20)
		if errors.Is(err, ErrNotPipelined) {
			continue // machine may not profit; fine
		}
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		for _, inst := range pl.Epilogue {
			if inst.Op == sparc.OpSubcc {
				t.Errorf("%s: counter in epilogue — not stage 0", machine)
			}
		}
		if err := s.VerifyDependences(unrollOriginal(block, pl.Trip), unrollPipelined(pl)); err != nil {
			t.Errorf("%s: %v", machine, err)
		}
	}
}

// A loop that is already throughput-bound (independent loads saturating
// the load unit, nothing to overlap) is declined rather than rewritten
// into a same-speed kernel with prologue/epilogue bloat.
func TestPipelineLoopDeclinesThroughputBound(t *testing.T) {
	block := swpLoop(t, `
	ldd [%g1], %f0
	ldd [%g1+8], %f2
	ldd [%g1+16], %f4
	ldd [%g1+24], %f6
`)
	_, _, err := pipelineOn(t, spawn.UltraSPARC, block, 16)
	if !errors.Is(err, ErrNotPipelined) {
		t.Fatalf("throughput-bound loop: err = %v, want ErrNotPipelined", err)
	}
}
