package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"eel/internal/obs"
	"eel/internal/sparc"
)

// ScheduleBlocks schedules a batch of basic blocks and returns them in
// the same order. The paper's scheduler keeps no state across block
// boundaries (the oracle is Reset per block), so blocks are independent
// and the batch fans out over Options.Workers goroutines, each drawing a
// private stall oracle from the scheduler's pool. The output is
// byte-identical to scheduling the blocks one by one with ScheduleBlock,
// for any worker count.
//
// Schedulers built with NewWith hold a single, unreplicable oracle and
// fall back to the sequential path. On error, the failure from the
// lowest-indexed failing block is reported.
func (s *Scheduler) ScheduleBlocks(blocks [][]sparc.Inst) ([][]sparc.Inst, error) {
	return s.scheduleBlocksTraced(nil, -1, blocks)
}

// ScheduleBlocksCtx is ScheduleBlocks with an optional request trace
// carried in ctx (obs.WithTrace / obs.WithTraceParent): the batch's
// per-phase time — dependence-graph build, ready-list issue, CTI
// handling, cache lookups — is accumulated per worker and recorded as
// child spans under the context's parent span, and decision traces
// (Options.Trace) are stamped with the trace's ID. With no trace in ctx
// it is exactly ScheduleBlocks.
func (s *Scheduler) ScheduleBlocksCtx(ctx context.Context, blocks [][]sparc.Inst) ([][]sparc.Inst, error) {
	tr, parent := obs.TraceParentFrom(ctx)
	return s.scheduleBlocksTraced(tr, parent, blocks)
}

func (s *Scheduler) scheduleBlocksTraced(tr *obs.Trace, parent int32, blocks [][]sparc.Inst) ([][]sparc.Inst, error) {
	if s.opts.NoReorder {
		return blocks, nil
	}
	out := make([][]sparc.Inst, len(blocks))
	workers := s.opts.workers()
	if workers > len(blocks) {
		workers = len(blocks)
	}
	var (
		agg     *phaseTimes
		startNs int64
	)
	if tr != nil {
		agg = &phaseTimes{}
		startNs = tr.SinceStart()
	}
	if s.factory == nil || workers <= 1 {
		s.tel.recordBatch(1, len(blocks))
		defer s.tel.recordCache(s.opts.Cache)
		w := s.seq
		if s.factory != nil {
			// Draw private state from the pool so concurrent callers of a
			// shared scheduler never contend on s.seq even when each call
			// runs sequentially.
			w = s.pool.Get().(*worker)
			defer s.pool.Put(w)
		}
		if agg != nil {
			w.tt, w.traceID = agg, tr.ID()
			defer func() {
				w.tt, w.traceID = nil, ""
				emitPhaseSpans(tr, parent, startNs, agg, 1)
			}()
		}
		defer s.tel.flush(w)
		for i, b := range blocks {
			sb, err := s.scheduleBlockOn(w, i, b)
			if err != nil {
				return nil, fmt.Errorf("core: block %d: %w", i, err)
			}
			out[i] = sb
		}
		return out, nil
	}
	s.tel.recordBatch(workers, len(blocks))
	defer s.tel.recordCache(s.opts.Cache)

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = len(blocks)
	)
	runWorker := func() {
		w := s.pool.Get().(*worker)
		defer s.pool.Put(w)
		if agg != nil {
			w.tt, w.traceID = &phaseTimes{}, tr.ID()
			defer func() {
				mu.Lock()
				agg.merge(w.tt)
				mu.Unlock()
				w.tt, w.traceID = nil, ""
			}()
		}
		defer s.tel.flush(w)
		for {
			i := int(next.Add(1)) - 1
			if i >= len(blocks) {
				return
			}
			sb, err := s.scheduleBlockOn(w, i, blocks[i])
			if err != nil {
				// Keep draining so the reported error is the
				// deterministic lowest-indexed failure.
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
				continue
			}
			out[i] = sb
		}
	}
	// Dispatch workers-1 helpers to the persistent pool (pool.go); the
	// calling goroutine is the last worker. Since workers claim block
	// indices from the shared counter, any subset drains the whole
	// batch — so a refused dispatch (pool closed, or saturated by
	// concurrent batches) just means fewer helpers, never lost blocks.
	for h := 0; h < workers-1; h++ {
		wg.Add(1)
		ok := s.exec != nil && s.exec.dispatch(func() {
			defer wg.Done()
			runWorker()
		})
		if !ok {
			wg.Done()
			break
		}
	}
	runWorker()
	wg.Wait()
	if agg != nil {
		emitPhaseSpans(tr, parent, startNs, agg, workers)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("core: block %d: %w", firstIdx, firstErr)
	}
	return out, nil
}
