package core

import (
	"math/bits"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// This file is the fast dependence-graph builder behind EngineFast. It
// produces exactly the dependence pairs and pair latencies of the
// reference pairwise builder (buildDAG) — the same RAW first-intersect
// rule, the same WAR/WAW/memory/trap unit latencies — but discovers the
// pairs through per-register last-writer/last-reader index tables plus
// memory-domain and trap-barrier lists instead of intersecting every
// (i, j) pair, and stores nodes and edges in flat scratch arenas that a
// worker recycles across blocks. Per block it allocates nothing once the
// arenas have grown to the block size.
//
// Equivalence to buildDAG is load-bearing (chain lengths are a
// scheduling priority), so the builder re-derives each discovered pair's
// dependence kinds and latency from per-instruction register bitmasks
// with the reference rules, rather than trusting the table that surfaced
// the pair. The tables only bound WHICH pairs can depend; the masks
// decide HOW, byte-for-byte like the reference.

// regMask is a dense bitset over sparc.Reg (NumRegs = 67: bits 0..63 in
// lo, 64..66 in hi). %g0 is never set — the reference intersects()
// skips it — so mask intersections need no post-filtering.
type regMask struct {
	lo, hi uint64
}

func (m *regMask) set(r sparc.Reg) {
	if r == sparc.G0 {
		return
	}
	if r < 64 {
		m.lo |= 1 << r
	} else {
		m.hi |= 1 << (r - 64)
	}
}

// intersect reports whether the masks share a register.
func (m regMask) intersects(o regMask) bool {
	return m.lo&o.lo|m.hi&o.hi != 0
}

// first returns the lowest-numbered shared register. Instruction def
// lists are emitted in ascending register order (rd, rd+1, then the
// ICC/FCC/Y pseudo-registers), so the lowest shared bit is exactly the
// register the reference intersects() returns for (defs, uses) pairs.
func (m regMask) first(o regMask) sparc.Reg {
	if lo := m.lo & o.lo; lo != 0 {
		return sparc.Reg(bits.TrailingZeros64(lo))
	}
	return sparc.Reg(64 + bits.TrailingZeros64(m.hi&o.hi))
}

// scratch holds one worker's reusable scheduling state: the dependence
// graph arenas, the per-register discovery tables and the ready queue.
// A scratch is owned by a single goroutine (it travels with the worker's
// pipeline state through the scheduler's pool) and is reset per block.
type scratch struct {
	// BlockSoA holds the flat per-instruction arrays (instructions,
	// timing groups, hazard flags, register masks, prepared placement
	// inputs) every pass indexes; see soa.go.
	BlockSoA

	// arena backs the emitted schedule slices (and cache-hit copies), so
	// steady-state scheduling allocates one chunk per ~8k instructions
	// instead of one slice per block.
	arena instArena
	// bodyBuf is the reusable CTI body staging buffer: the block minus
	// its CTI and (canonical-nop) delay slot.
	bodyBuf []sparc.Inst
	// Reusable register sets for the delay-slot legality check.
	ctiUses, ctiDefs, candRegs []sparc.Reg

	// Per-node arrays, length n.
	stamp   []int32 // last j that examined this node as a candidate, +1
	npred   []int32
	chain   []int32
	cachedT []int64 // lower bound on the node's absolute issue cycle
	probed  []int32 // ready-queue version cachedT was probed at, -1 if never

	// Flat edge arenas. Predecessor edges of node j occupy
	// predTo/predLat[predStart[j]:predStart[j+1]] (built in j order);
	// successor lists occupy succ[succStart[i]:succStart[i+1]].
	predStart []int32
	predTo    []int32
	predLat   []int32
	succStart []int32
	succ      []int32
	cursor    []int32

	// Discovery tables: every prior writer/reader per register, every
	// prior memory op per aliasing domain, every prior trap.
	writers [sparc.NumRegs][]int32
	readers [sparc.NumRegs][]int32
	touched []sparc.Reg // registers with non-empty tables, for O(touched) reset
	loads   [2][]int32  // by Instrumented flag
	stores  [2][]int32
	traps   []int32

	heap []int32

	// prepOK marks the SoA's Prep slots valid for the current body, when
	// the oracle supports preparing (pipe.FastState); CTI blocks append
	// up to three extra slots (the CTI, a nop, an odd delay-slot form)
	// for cost replays.
	prepOK bool

	// Decision-trace collection (trace.go): traceOn is set per block by
	// scheduleBlockOn; both engines append their steps here.
	traceOn bool
	steps   []TraceStep
	// perm records the emitted schedule as body indices (out[k] =
	// body[perm[k]]); beforeIdx/costIdx map replay sequences onto prep
	// slots for the never-costs-more guard.
	perm      []int32
	beforeIdx []int32
	costIdx   []int32
}

// reset prepares the arenas for a block of n instructions, reusing all
// prior capacity. The SoA arrays are filled separately by Build.
func (sc *scratch) reset(body []sparc.Inst) {
	n := len(body)
	if cap(sc.stamp) < n {
		sc.stamp = make([]int32, n)
		sc.npred = make([]int32, n)
		sc.chain = make([]int32, n)
		sc.cachedT = make([]int64, n)
		sc.probed = make([]int32, n)
		sc.predStart = make([]int32, n+1)
		sc.succStart = make([]int32, n+1)
		sc.cursor = make([]int32, n+1)
	}
	sc.stamp = sc.stamp[:n]
	sc.npred = sc.npred[:n]
	sc.chain = sc.chain[:n]
	sc.cachedT = sc.cachedT[:n]
	sc.probed = sc.probed[:n]
	sc.predStart = sc.predStart[:n+1]
	sc.succStart = sc.succStart[:n+1]
	sc.cursor = sc.cursor[:n+1]
	clear(sc.stamp)
	sc.predTo = sc.predTo[:0]
	sc.predLat = sc.predLat[:0]
	sc.succ = sc.succ[:0]
	for _, r := range sc.touched {
		sc.writers[r] = sc.writers[r][:0]
		sc.readers[r] = sc.readers[r][:0]
	}
	sc.touched = sc.touched[:0]
	sc.prepOK = false
	sc.perm = sc.perm[:0]
	sc.loads[0] = sc.loads[0][:0]
	sc.loads[1] = sc.loads[1][:0]
	sc.stores[0] = sc.stores[0][:0]
	sc.stores[1] = sc.stores[1][:0]
	sc.traps = sc.traps[:0]
	sc.heap = sc.heap[:0]
}

// touch registers r in the reset list the first time either table is
// appended to.
func (sc *scratch) touch(r sparc.Reg) {
	if len(sc.writers[r]) == 0 && len(sc.readers[r]) == 0 {
		sc.touched = append(sc.touched, r)
	}
}

// buildDepGraph fills sc with the dependence DAG of body, equal edge for
// edge (as an (i, j, lat) multiset) to the reference buildDAG, and
// computes pass 1's dependence-chain lengths. With usePrep the timing
// groups come from the caller's prepare pass (sc.Prep) instead of fresh
// model lookups.
func (s *Scheduler) buildDepGraph(sc *scratch, body []sparc.Inst, usePrep bool) error {
	sc.reset(body)
	n := len(body)
	if err := sc.Build(s.model, body, usePrep); err != nil {
		return err
	}

	conservative := s.opts.ConservativeMem
	for j := 0; j < n; j++ {
		sc.predStart[j] = int32(len(sc.predTo))
		j32 := int32(j)
		um, dm := sc.useMask[j], sc.defMask[j]
		fj := sc.Flags[j]

		// RAW candidates: prior writers of every register j uses. The bit
		// loops are unrolled over the mask halves to keep the hot path
		// free of closure calls.
		for b := um.lo; b != 0; b &= b - 1 {
			for _, i := range sc.writers[bits.TrailingZeros64(b)] {
				sc.addPred(s, i, j32)
			}
		}
		for b := um.hi; b != 0; b &= b - 1 {
			for _, i := range sc.writers[64+bits.TrailingZeros64(b)] {
				sc.addPred(s, i, j32)
			}
		}
		// WAW and WAR candidates: prior writers and readers of every
		// register j defines.
		for b := dm.lo; b != 0; b &= b - 1 {
			r := bits.TrailingZeros64(b)
			for _, i := range sc.writers[r] {
				sc.addPred(s, i, j32)
			}
			for _, i := range sc.readers[r] {
				sc.addPred(s, i, j32)
			}
		}
		for b := dm.hi; b != 0; b &= b - 1 {
			r := 64 + bits.TrailingZeros64(b)
			for _, i := range sc.writers[r] {
				sc.addPred(s, i, j32)
			}
			for _, i := range sc.readers[r] {
				sc.addPred(s, i, j32)
			}
		}
		// Memory candidates, per the paper's aliasing domains.
		if fj&(FlagLoad|FlagStore) != 0 {
			dom := 0
			if fj&FlagInstrumented != 0 {
				dom = 1
			}
			if fj&FlagStore != 0 {
				// A store conflicts with prior loads and stores.
				for _, i := range sc.loads[dom] {
					sc.addPred(s, i, j32)
				}
				for _, i := range sc.stores[dom] {
					sc.addPred(s, i, j32)
				}
				if conservative {
					for _, i := range sc.loads[1-dom] {
						sc.addPred(s, i, j32)
					}
					for _, i := range sc.stores[1-dom] {
						sc.addPred(s, i, j32)
					}
				}
			} else {
				// A load conflicts with prior stores only.
				for _, i := range sc.stores[dom] {
					sc.addPred(s, i, j32)
				}
				if conservative {
					for _, i := range sc.stores[1-dom] {
						sc.addPred(s, i, j32)
					}
				}
			}
		}
		// Trap barriers: a trap depends on everything before it, and
		// everything after a trap depends on it.
		if fj&FlagTrap != 0 {
			for i := int32(0); i < j32; i++ {
				sc.addPred(s, i, j32)
			}
		} else {
			for _, i := range sc.traps {
				sc.addPred(s, i, j32)
			}
		}

		// Register j in the discovery tables for later instructions.
		for b := um.lo; b != 0; b &= b - 1 {
			r := sparc.Reg(bits.TrailingZeros64(b))
			sc.touch(r)
			sc.readers[r] = append(sc.readers[r], j32)
		}
		for b := um.hi; b != 0; b &= b - 1 {
			r := sparc.Reg(64 + bits.TrailingZeros64(b))
			sc.touch(r)
			sc.readers[r] = append(sc.readers[r], j32)
		}
		for b := dm.lo; b != 0; b &= b - 1 {
			r := sparc.Reg(bits.TrailingZeros64(b))
			sc.touch(r)
			sc.writers[r] = append(sc.writers[r], j32)
		}
		for b := dm.hi; b != 0; b &= b - 1 {
			r := sparc.Reg(64 + bits.TrailingZeros64(b))
			sc.touch(r)
			sc.writers[r] = append(sc.writers[r], j32)
		}
		if fj&FlagLoad != 0 {
			dom := 0
			if fj&FlagInstrumented != 0 {
				dom = 1
			}
			sc.loads[dom] = append(sc.loads[dom], j32)
		}
		if fj&FlagStore != 0 {
			dom := 0
			if fj&FlagInstrumented != 0 {
				dom = 1
			}
			sc.stores[dom] = append(sc.stores[dom], j32)
		}
		if fj&FlagTrap != 0 {
			sc.traps = append(sc.traps, j32)
		}
	}
	sc.predStart[n] = int32(len(sc.predTo))

	// npred and pass 1: backward dependence-chain lengths. Processing j
	// descending, chain[j] is final before its predecessor relaxations
	// run (all successors of j have higher indices).
	for i := range sc.chain {
		sc.chain[i] = 1
		sc.npred[i] = sc.predStart[i+1] - sc.predStart[i]
	}
	for j := n - 1; j >= 0; j-- {
		cj := sc.chain[j]
		for e := sc.predStart[j]; e < sc.predStart[j+1]; e++ {
			i := sc.predTo[e]
			if c := sc.predLat[e] + cj; c > sc.chain[i] {
				sc.chain[i] = c
			}
		}
	}

	// Successor adjacency (issue-time npred updates) by counting sort
	// over the predecessor edges.
	clear(sc.succStart)
	for _, i := range sc.predTo {
		sc.succStart[i+1]++
	}
	for i := 0; i < n; i++ {
		sc.succStart[i+1] += sc.succStart[i]
	}
	copy(sc.cursor, sc.succStart)
	if cap(sc.succ) < len(sc.predTo) {
		sc.succ = make([]int32, len(sc.predTo))
	}
	sc.succ = sc.succ[:len(sc.predTo)]
	for j := 0; j < n; j++ {
		for e := sc.predStart[j]; e < sc.predStart[j+1]; e++ {
			i := sc.predTo[e]
			sc.succ[sc.cursor[i]] = int32(j)
			sc.cursor[i]++
		}
	}
	return nil
}

// addPred records the dependence edge (i -> j), once per pair, with the
// reference builder's exact latency rules. Candidates may be offered
// multiple times (a pair can surface through several tables); the stamp
// dedups them, and the masks re-derive every dependence kind so the
// combined latency matches buildDAG's pairwise computation.
func (sc *scratch) addPred(s *Scheduler, i, j int32) {
	if sc.stamp[i] == j+1 {
		return
	}
	sc.stamp[i] = j + 1

	lat := int32(0)
	dep := false
	// RAW: i defines a register j uses; latency from the first (lowest)
	// shared register, like the reference intersects().
	if sc.defMask[i].intersects(sc.useMask[j]) {
		dep = true
		r := sc.defMask[i].first(sc.useMask[j])
		if l := int32(rawLatencyOf(sc.Groups[i], sc.Insts[i], sc.Groups[j], sc.Insts[j], r)); l > lat {
			lat = l
		}
	}
	// WAR and WAW: ordering edges with unit latency.
	if sc.useMask[i].intersects(sc.defMask[j]) || sc.defMask[i].intersects(sc.defMask[j]) {
		dep = true
		if lat < 1 {
			lat = 1
		}
	}
	// Memory ordering.
	if memConflictFlags(sc.Flags[i], sc.Flags[j], s.opts.ConservativeMem) {
		dep = true
		if lat < 1 {
			lat = 1
		}
	}
	// Traps are scheduling barriers.
	if (sc.Flags[i]|sc.Flags[j])&FlagTrap != 0 {
		dep = true
		if lat < 1 {
			lat = 1
		}
	}
	if !dep {
		return
	}
	sc.predTo = append(sc.predTo, i)
	sc.predLat = append(sc.predLat, lat)
}

// memConflictFlags is memConflict over the cached per-node flags.
func memConflictFlags(fi, fj InstFlags, conservative bool) bool {
	if fi&(FlagLoad|FlagStore) == 0 || fj&(FlagLoad|FlagStore) == 0 {
		return false
	}
	if fi&FlagLoad != 0 && fj&FlagLoad != 0 {
		return false // loads never conflict
	}
	if !conservative && (fi^fj)&FlagInstrumented != 0 {
		return false // instrumentation memory is disjoint from program memory
	}
	return true
}

// rawLatencyOf is rawLatency with the consumer's timing group hoisted by
// the caller (the fast builder resolves every group once per block).
func rawLatencyOf(gi *spawn.Group, prod sparc.Inst, gj *spawn.Group, cons sparc.Inst, r sparc.Reg) int {
	avail := writeAvail(gi, prod, r)
	read := readCycle(gj, cons, r)
	if l := avail - read; l > 0 {
		return l
	}
	return 0
}
