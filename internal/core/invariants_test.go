// Scheduler invariant property tests. This lives in an external test
// package because the workload generator transitively imports core.
package core_test

import (
	"fmt"
	"testing"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// suiteBlocks generates every benchmark in a machine's suite (small,
// uncalibrated runs) and returns each program's basic blocks, labelled.
func suiteBlocks(t *testing.T, machine spawn.Machine) map[string][][]sparc.Inst {
	t.Helper()
	out := make(map[string][][]sparc.Inst)
	for _, b := range workload.Suite(machine) {
		x, err := workload.Generate(b, workload.Config{
			Machine:         machine,
			DynamicInsts:    20_000,
			SkipCalibration: true,
		})
		if err != nil {
			t.Fatalf("%s/%s: generate: %v", machine, b.Name, err)
		}
		ed, err := eel.Open(x)
		if err != nil {
			t.Fatalf("%s/%s: open: %v", machine, b.Name, err)
		}
		blocks := make([][]sparc.Inst, len(ed.Graph().Blocks))
		for i, blk := range ed.Graph().Blocks {
			blocks[i] = append([]sparc.Inst(nil), blk.Insts...)
		}
		out[b.Name] = blocks
	}
	return out
}

// TestScheduleInvariants schedules every basic block of every workload
// benchmark on every shipped machine and asserts, per block:
//
//   - permutation: the schedule keeps the non-nop instruction multiset and
//     changes the length by at most one (delay-slot refilling);
//   - dependences: RAW/WAR/WAW, memory-conflict and trap-barrier order is
//     preserved (Scheduler.VerifyDependences);
//   - cost: the scheduled block never costs more modeled cycles than the
//     original;
//   - oracle equivalence: the fast and reference oracles produce
//     byte-identical schedules;
//   - engine equivalence: the fast arena/priority-queue engine matches
//     the reference pairwise-builder/rescan engine, under both oracles.
func TestScheduleInvariants(t *testing.T) {
	for _, machine := range spawn.Machines() {
		machine := machine
		t.Run(string(machine), func(t *testing.T) {
			model := spawn.MustLoad(machine)
			fast := core.New(model, core.Options{})
			variants := []struct {
				name string
				s    *core.Scheduler
			}{
				{"engine=reference/oracle=fast", core.New(model, core.Options{Engine: core.EngineReference})},
				{"engine=fast/oracle=reference", core.New(model, core.Options{Oracle: core.OracleReference})},
				{"engine=reference/oracle=reference", core.New(model, core.Options{Engine: core.EngineReference, Oracle: core.OracleReference})},
			}
			nblocks := 0
			for name, blocks := range suiteBlocks(t, machine) {
				for i, block := range blocks {
					label := fmt.Sprintf("%s block %d", name, i)
					sched, err := fast.ScheduleBlock(block)
					if err != nil {
						t.Fatalf("%s: schedule: %v", label, err)
					}
					for _, v := range variants {
						vsched, err := v.s.ScheduleBlock(block)
						if err != nil {
							t.Fatalf("%s: %s schedule: %v", label, v.name, err)
						}
						if !instsEqual(sched, vsched) {
							t.Fatalf("%s: %s schedule differs from default:\ndefault: %v\nvariant: %v", label, v.name, sched, vsched)
						}
					}
					if err := fast.VerifyDependences(block, sched); err != nil {
						t.Fatalf("%s: %v\norig:  %v\nsched: %v", label, err, block, sched)
					}
					before, err := pipe.SequenceCycles(model, block)
					if err != nil {
						t.Fatalf("%s: cost of original: %v", label, err)
					}
					after, err := pipe.SequenceCycles(model, sched)
					if err != nil {
						t.Fatalf("%s: cost of schedule: %v", label, err)
					}
					if after > before {
						t.Fatalf("%s: schedule costs more: %d -> %d cycles\norig:  %v\nsched: %v",
							label, before, after, block, sched)
					}
					nblocks++
				}
			}
			if nblocks == 0 {
				t.Fatal("no blocks scheduled")
			}
			t.Logf("%s: verified %d blocks", machine, nblocks)
		})
	}
}

// TestVerifyDependencesRejects makes sure the verifier actually rejects
// broken schedules — an invariant checker that passes everything would
// make TestScheduleInvariants vacuous.
func TestVerifyDependencesRejects(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	s := core.New(model, core.Options{})
	ld := sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0)
	use := sparc.NewALU(sparc.OpAdd, sparc.G2, sparc.G1, sparc.G1)
	st := sparc.NewStore(sparc.OpSt, sparc.G3, sparc.O1, 0)
	other := sparc.NewSethi(sparc.G4, 100)

	cases := []struct {
		name        string
		orig, sched []sparc.Inst
	}{
		{"raw inverted", []sparc.Inst{ld, use, other}, []sparc.Inst{use, ld, other}},
		{"lost instruction", []sparc.Inst{ld, use, other}, []sparc.Inst{ld, use}},
		{"invented instruction", []sparc.Inst{ld, use}, []sparc.Inst{ld, use, st}},
		{"store reordered past load", []sparc.Inst{ld, st, other}, []sparc.Inst{st, ld, other}},
	}
	for _, c := range cases {
		if err := s.VerifyDependences(c.orig, c.sched); err == nil {
			t.Errorf("%s: verifier accepted a broken schedule", c.name)
		}
	}
	// And a legal reorder must pass: other is independent of the chain.
	if err := s.VerifyDependences([]sparc.Inst{ld, use, other}, []sparc.Inst{ld, other, use}); err != nil {
		t.Errorf("legal reorder rejected: %v", err)
	}
}

func instsEqual(a, b []sparc.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
