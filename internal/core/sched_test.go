package core

import (
	"math/rand"
	"reflect"
	"testing"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func ultraSched(opts Options) *Scheduler {
	return New(spawn.MustLoad(spawn.UltraSPARC), opts)
}

func mustSchedule(t *testing.T, s *Scheduler, block []sparc.Inst) []sparc.Inst {
	t.Helper()
	out, err := s.ScheduleBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// blockCycles measures a block on the scheduler's own machine model.
func blockCycles(t *testing.T, m *spawn.Model, insts []sparc.Inst) int64 {
	t.Helper()
	n, err := pipe.SequenceCycles(m, insts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// sameMultiset checks the schedule is a permutation (ignoring inserted
// nops in delay slots).
func sameMultiset(a, b []sparc.Inst) bool {
	count := map[sparc.Inst]int{}
	for _, x := range a {
		count[x]++
	}
	for _, x := range b {
		count[x]--
	}
	for _, n := range count {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestScheduleHidesIndependentWork(t *testing.T) {
	// A dependent chain interleaved with independent instrumentation: the
	// scheduler should cover the load-use stall with independent work.
	s := ultraSched(Options{})
	block := []sparc.Inst{
		sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G1, 1), // stalls 2 after ld
		sparc.NewStore(sparc.OpSt, sparc.G2, sparc.O0, 0),
		sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G4, 1), // independent
		sparc.NewALUImm(sparc.OpAdd, sparc.G5, sparc.G6, 1), // independent
	}
	out := mustSchedule(t, s, block)
	if !sameMultiset(block, out) {
		t.Fatalf("schedule is not a permutation: %v", out)
	}
	before := blockCycles(t, s.Model(), block)
	after := blockCycles(t, s.Model(), out)
	if after > before {
		t.Errorf("schedule got worse: %d -> %d cycles", before, after)
	}
	if after == before {
		t.Logf("no improvement (%d cycles); schedule: %v", after, out)
	}
}

func TestScheduleRespectsRAW(t *testing.T) {
	s := ultraSched(Options{})
	block := []sparc.Inst{
		sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G1, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G4, sparc.G3, 1),
	}
	out := mustSchedule(t, s, block)
	if !reflect.DeepEqual(out, block) {
		t.Errorf("pure chain reordered: %v", out)
	}
}

func TestScheduleRespectsMemoryOrder(t *testing.T) {
	s := ultraSched(Options{})
	// Original store then original load: must not swap.
	block := []sparc.Inst{
		sparc.NewStore(sparc.OpSt, sparc.G1, sparc.O0, 0),
		sparc.NewLoad(sparc.OpLd, sparc.G2, sparc.O1, 4),
	}
	out := mustSchedule(t, s, block)
	if out[0].Op != sparc.OpSt {
		t.Errorf("original store/load reordered: %v", out)
	}
}

func TestInstrumentationMemoryMoves(t *testing.T) {
	// An instrumentation load may move above an original store (the
	// paper's aliasing exemption), but not when ConservativeMem is set.
	origStore := sparc.NewStore(sparc.OpSt, sparc.G1, sparc.O0, 0)
	// The original store's value depends on a slow chain.
	slow := sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O2, 0)
	instLd := sparc.NewLoad(sparc.OpLd, sparc.G3, sparc.G4, 0)
	instLd.Instrumented = true
	block := []sparc.Inst{slow, origStore, instLd}

	out := mustSchedule(t, ultraSched(Options{}), block)
	posStore, posInst := -1, -1
	for i, inst := range out {
		if inst == origStore {
			posStore = i
		}
		if inst == instLd {
			posInst = i
		}
	}
	if posInst > posStore {
		t.Errorf("instrumentation load did not move above the original store: %v", out)
	}

	out = mustSchedule(t, ultraSched(Options{ConservativeMem: true}), block)
	for i, inst := range out {
		if inst == origStore {
			posStore = i
		}
		if inst == instLd {
			posInst = i
		}
	}
	if posInst < posStore {
		t.Errorf("conservative mode let instrumentation pass a store: %v", out)
	}
}

func TestInstrumentationStoresKeepMutualOrder(t *testing.T) {
	s := ultraSched(Options{})
	st1 := sparc.NewStore(sparc.OpSt, sparc.G1, sparc.G5, 0)
	st1.Instrumented = true
	st2 := sparc.NewStore(sparc.OpSt, sparc.G2, sparc.G6, 0)
	st2.Instrumented = true
	out := mustSchedule(t, s, []sparc.Inst{st1, st2})
	if out[0] != st1 || out[1] != st2 {
		t.Errorf("instrumentation stores reordered: %v", out)
	}
}

func TestCTIStaysTerminal(t *testing.T) {
	s := ultraSched(Options{})
	block := []sparc.Inst{
		sparc.NewALUImm(sparc.OpSubcc, sparc.G0, sparc.G1, 10),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G3, 1),
		sparc.NewBranch(sparc.CondNE, -4),
		sparc.NewNop(),
	}
	out := mustSchedule(t, s, block)
	// The delay-slot nop may be dropped when a useful instruction fills
	// the slot, shrinking the block by one.
	n := len(out)
	if n != 3 && n != 4 {
		t.Fatalf("unexpected block size %d: %v", n, out)
	}
	if out[n-2].Op != sparc.OpBicc {
		t.Errorf("CTI not in terminal position: %v", out)
	}
	// The independent add should fill the delay slot (it does not touch
	// the branch's condition codes).
	if out[n-1].IsNop() {
		t.Errorf("delay slot not filled: %v", out)
	}
	if out[n-1].Op == sparc.OpSubcc {
		t.Errorf("cc-setting instruction moved into delay slot of a conditional branch: %v", out)
	}
}

func TestDelaySlotNotFilledWithCCProducer(t *testing.T) {
	s := ultraSched(Options{})
	// Only instruction is the cc producer: it must not move after the
	// branch that reads the ccs.
	block := []sparc.Inst{
		sparc.NewALUImm(sparc.OpSubcc, sparc.G0, sparc.G1, 10),
		sparc.NewBranch(sparc.CondNE, -2),
		sparc.NewNop(),
	}
	out := mustSchedule(t, s, block)
	if out[0].Op != sparc.OpSubcc || out[1].Op != sparc.OpBicc || !out[2].IsNop() {
		t.Errorf("cc producer misplaced: %v", out)
	}
}

func TestCallDelaySlotProtectsO7(t *testing.T) {
	s := ultraSched(Options{})
	// An instruction writing %o7 may not fill a call's delay slot.
	block := []sparc.Inst{
		sparc.NewALUImm(sparc.OpAdd, sparc.O7, sparc.G1, 1),
		sparc.NewCall(100),
		sparc.NewNop(),
	}
	out := mustSchedule(t, s, block)
	if !out[len(out)-1].IsNop() {
		t.Errorf("o7 writer moved into call delay slot: %v", out)
	}
}

func TestAnnulledBranchUntouched(t *testing.T) {
	s := ultraSched(Options{})
	block := []sparc.Inst{
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G3, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G4, sparc.G5, 1),
		{Op: sparc.OpBicc, Cond: sparc.CondNE, Annul: true, Disp: -4},
		sparc.NewALUImm(sparc.OpAdd, sparc.G6, sparc.G7, 1), // conditional slot
	}
	out := mustSchedule(t, s, block)
	if !reflect.DeepEqual(out, block) {
		t.Errorf("annulled-branch block was modified: %v", out)
	}
}

func TestNoReorderOption(t *testing.T) {
	s := ultraSched(Options{NoReorder: true})
	block := []sparc.Inst{
		sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G1, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G4, 1),
	}
	out := mustSchedule(t, s, block)
	if !reflect.DeepEqual(out, block) {
		t.Errorf("NoReorder changed the block: %v", out)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s := ultraSched(Options{})
	if out := mustSchedule(t, s, nil); len(out) != 0 {
		t.Error("empty block grew")
	}
	one := []sparc.Inst{sparc.NewNop()}
	if out := mustSchedule(t, s, one); !reflect.DeepEqual(out, one) {
		t.Error("single-instruction block changed")
	}
}

func TestSchedulePermutationProperty(t *testing.T) {
	// Random blocks: the output is always a permutation of the input
	// (modulo delay-slot nops), never slower on the scheduler's model,
	// and deterministic.
	model := spawn.MustLoad(spawn.SuperSPARC)
	s := New(model, Options{})
	r := rand.New(rand.NewSource(11))
	regs := []sparc.Reg{sparc.G1, sparc.G2, sparc.G3, sparc.G4, sparc.O0, sparc.O1, sparc.L0, sparc.L1}
	var totalBefore, totalAfter int64
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(10)
		block := make([]sparc.Inst, 0, n)
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				block = append(block, sparc.NewLoad(sparc.OpLd, regs[r.Intn(4)], regs[4+r.Intn(4)], int32(4*r.Intn(32))))
			case 1:
				block = append(block, sparc.NewStore(sparc.OpSt, regs[r.Intn(4)], regs[4+r.Intn(4)], int32(4*r.Intn(32))))
			case 2:
				block = append(block, sparc.NewSethi(regs[r.Intn(len(regs))], int32(r.Intn(1<<20))))
			default:
				block = append(block, sparc.NewALU(sparc.OpAdd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))]))
			}
		}
		out, err := s.ScheduleBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(block, out) {
			t.Fatalf("trial %d: not a permutation:\n in: %v\nout: %v", trial, block, out)
		}
		before := blockCycles(t, model, block)
		after := blockCycles(t, model, out)
		// Greedy list scheduling is not optimal and may occasionally lose
		// a cycle or two on a single block (the paper's de-scheduling
		// effect); it must win in aggregate, checked below.
		if after > before+2 {
			t.Fatalf("trial %d: schedule much slower on own model: %d -> %d\n in: %v\nout: %v",
				trial, before, after, block, out)
		}
		totalBefore += before
		totalAfter += after
		again, err := s.ScheduleBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, again) {
			t.Fatalf("trial %d: non-deterministic schedule", trial)
		}
	}
	if totalAfter > totalBefore {
		t.Errorf("scheduling lost cycles in aggregate: %d -> %d", totalBefore, totalAfter)
	}
}

func TestScheduleRespectsRAWOrderProperty(t *testing.T) {
	// For random blocks, every (producer, consumer) register pair of the
	// original order is preserved in the schedule.
	model := spawn.MustLoad(spawn.UltraSPARC)
	s := New(model, Options{})
	r := rand.New(rand.NewSource(13))
	regs := []sparc.Reg{sparc.G1, sparc.G2, sparc.G3}
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(6)
		block := make([]sparc.Inst, n)
		for i := range block {
			block[i] = sparc.NewALU(sparc.OpAdd,
				regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))])
		}
		out, err := s.ScheduleBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkDataOrder(block, out); err != nil {
			t.Fatalf("trial %d: %v\n in: %v\nout: %v", trial, err, block, out)
		}
	}
}

// checkDataOrder verifies def-use, use-def and def-def orderings survive.
func checkDataOrder(in, out []sparc.Inst) error {
	pos := make(map[int]int) // index in `in` -> index in `out`
	used := make([]bool, len(out))
	for i, inst := range in {
		for j, o := range out {
			if !used[j] && o == inst {
				pos[i] = j
				used[j] = true
				break
			}
		}
	}
	for i := 0; i < len(in); i++ {
		for j := i + 1; j < len(in); j++ {
			if _, ok := intersects(in[i].Defs(nil), in[j].Uses(nil)); ok {
				if pos[i] > pos[j] {
					return errOrder(i, j, "RAW")
				}
			}
			if _, ok := intersects(in[i].Uses(nil), in[j].Defs(nil)); ok {
				if pos[i] > pos[j] {
					return errOrder(i, j, "WAR")
				}
			}
			if _, ok := intersects(in[i].Defs(nil), in[j].Defs(nil)); ok {
				if pos[i] > pos[j] {
					return errOrder(i, j, "WAW")
				}
			}
		}
	}
	return nil
}

type orderErr struct {
	i, j int
	kind string
}

func errOrder(i, j int, kind string) error { return orderErr{i, j, kind} }
func (e orderErr) Error() string {
	return e.kind + " order violated between original instructions"
}

func TestChainFirstAblationDiffers(t *testing.T) {
	// Construct a block where stalls-first and chain-first disagree on
	// the first pick; both must still be valid permutations.
	block := []sparc.Inst{
		sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G1, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G2, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G4, sparc.G3, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G5, sparc.G6, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G7, sparc.O1, 1),
	}
	a := mustSchedule(t, ultraSched(Options{}), block)
	b := mustSchedule(t, ultraSched(Options{ChainFirst: true}), block)
	if !sameMultiset(block, a) || !sameMultiset(block, b) {
		t.Fatal("ablation schedules are not permutations")
	}
}
