package core

import (
	"testing"

	"eel/internal/sparc"
)

// TestDelaySlotLegal pins the delay-slot predicate case by case. The
// scheduler only consults it for the instruction directly preceding the
// CTI, so each row is a (CTI, candidate) pair. Annulled branches never
// reach the predicate — scheduleBlockRaw returns those blocks unchanged
// — so the Annul row documents that the predicate itself ignores the
// bit rather than that annulled slots get filled.
func TestDelaySlotLegal(t *testing.T) {
	var (
		bne     = sparc.NewBranch(sparc.CondNE, 12)
		ba      = sparc.NewBranch(sparc.CondA, 12)
		fbne    = sparc.NewFBranch(sparc.CondNE, 12)
		call    = sparc.NewCall(100)
		retl    = sparc.NewJmpl(sparc.G0, sparc.O7, 8)
		jmplG6  = sparc.NewJmpl(sparc.G5, sparc.G6, 0)
		add     = sparc.NewALU(sparc.OpAdd, sparc.G3, sparc.G1, sparc.G2)
		subcc   = sparc.NewALUImm(sparc.OpSubcc, sparc.G0, sparc.G1, 1)
		fcmp    = sparc.Inst{Op: sparc.OpFcmps, Rs1: sparc.F0, Rs2: sparc.F0 + 2}
		ld      = sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0)
		st      = sparc.NewStore(sparc.OpSt, sparc.G1, sparc.O0, 0)
		useO7   = sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.O7, 4)
		defO7   = sparc.NewALU(sparc.OpAdd, sparc.O7, sparc.G1, sparc.G2)
		defG6   = sparc.NewALUImm(sparc.OpAdd, sparc.G6, sparc.G1, 0)
		useG5   = sparc.NewALUImm(sparc.OpAdd, sparc.G7, sparc.G5, 0)
		trap    = sparc.NewTrap(1)
		annulNE = func() sparc.Inst { b := bne; b.Annul = true; return b }()
	)
	cases := []struct {
		name      string
		cti, cand sparc.Inst
		want      bool
	}{
		// Independent work slides into the slot.
		{"branch + independent alu", bne, add, true},
		{"branch + load", bne, ld, true},
		{"branch + store", bne, st, true},

		// The CTI reads its operands before the slot executes, so the
		// candidate must not define them.
		{"cond branch + icc producer", bne, subcc, false},
		{"always branch ignores icc", ba, subcc, true},
		{"fp branch + fcc producer", fbne, fcmp, false},
		{"fp branch + icc producer", fbne, subcc, true},
		{"indirect jump + target-register producer", jmplG6, defG6, false},

		// Nor may it touch what the CTI defines (%o7 of call, rd of jmpl).
		{"call + o7 reader", call, useO7, false},
		{"call + o7 writer", call, defO7, false},
		{"call + independent alu", call, add, true},
		{"retl + independent alu", retl, add, true},
		{"retl + o7 writer", retl, defO7, false},
		{"jmpl + rd reader", jmplG6, useG5, false},

		// Control transfers never nest into a delay slot.
		{"branch + branch", bne, ba, false},
		{"branch + call", bne, call, false},
		{"branch + jmpl", bne, retl, false},
		{"branch + trap", bne, trap, false},

		// The predicate is annul-blind; the pin happens upstream.
		{"annulled branch + independent alu", annulNE, add, true},
	}
	for _, c := range cases {
		if got := delaySlotLegal(c.cti, c.cand); got != c.want {
			t.Errorf("%s: delaySlotLegal(%v, %v) = %v, want %v", c.name, c.cti, c.cand, got, c.want)
		}
	}
}
