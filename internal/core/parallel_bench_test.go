package core

import (
	"fmt"
	"math/rand"
	"testing"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// BenchmarkScheduleBlocks compares the sequential path with the worker
// pool on a multi-block workload. On a multi-core machine the parallel
// variants show near-linear speedup (blocks are independent); on a
// single-core runner they match the sequential path to within pool
// overhead. The CI benchmark-smoke job records both.
func BenchmarkScheduleBlocks(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(1)), 2000)
	for _, oracle := range []Oracle{OracleFast, OracleReference} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("oracle=%s/workers=%d", oracle, workers), func(b *testing.B) {
				s := New(model, Options{Workers: workers, Oracle: oracle})
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.ScheduleBlocks(blocks); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScheduleBlocksScaling is the multicore scaling rig: the fast
// engine and fast oracle only (the line-rate configuration), swept
// across worker counts on one shared workload, with output verified
// byte-identical to the single-worker run every iteration batch. CI
// records it as the `sched-scaling` series in BENCH_sched.json; the
// recorded manifest's gomaxprocs/numcpu stamps say how many cores the
// sweep actually had, so cross-runner comparisons of the series are
// flagged instead of gated.
func BenchmarkScheduleBlocksScaling(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(1)), 2000)
	ref, err := New(model, Options{Workers: 1}).ScheduleBlocks(blocks)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := New(model, Options{Workers: workers})
			defer s.Close()
			b.ReportAllocs()
			var out [][]sparc.Inst
			for i := 0; i < b.N; i++ {
				if out, err = s.ScheduleBlocks(blocks); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for i := range out {
				if !blocksEqual(out[i], ref[i]) {
					b.Fatalf("workers=%d block %d differs from single-worker schedule", workers, i)
				}
			}
		})
	}
}

// BenchmarkScheduleBlocksReferenceEngine pins the original pairwise
// builder and full-rescan ready loop, the baseline the fast engine's
// speedup in BENCH_sched.json is measured against. Kept as a separate
// benchmark so the BenchmarkScheduleBlocks series stays comparable
// across the perf trajectory.
func BenchmarkScheduleBlocksReferenceEngine(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(1)), 2000)
	s := New(model, Options{Workers: 1, Engine: EngineReference})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleBlocksCached measures the hot-block cache: the same
// executable edited repeatedly reschedules nothing.
func BenchmarkScheduleBlocksCached(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(1)), 2000)
	s := New(model, Options{Workers: 1, Cache: NewCache(8192)})
	if _, err := s.ScheduleBlocks(blocks); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ScheduleBlocks(blocks); err != nil {
			b.Fatal(err)
		}
	}
}
