package core

import (
	"sync"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Cache memoizes per-block scheduling results across Edit passes. The
// key is (machine model, scheduler options, instruction-sequence hash);
// a stored copy of the input sequence is compared on lookup, so a hash
// collision degrades to a miss instead of a wrong schedule. One Cache
// may be shared by schedulers for different machines and options — the
// seed keeps their entries apart — and by concurrent ScheduleBlocks
// workers: the key space is split over power-of-two shards, each with
// its own lock, LRU list and hit/miss counters, so parallel workers
// stop serializing on a single cache mutex.
type Cache struct {
	shards []cacheShard
	mask   uint64
	cap    int
}

// cacheShard is one lock's worth of the cache: a map for lookup and an
// intrusive doubly-linked list for LRU order (head = most recent).
// Capacities are fixed per shard so the global entry count can never
// exceed the cache capacity.
type cacheShard struct {
	mu           sync.Mutex
	cap          int
	entries      map[uint64]*cacheEntry
	head, tail   *cacheEntry
	hits, misses uint64
	_            [24]byte // soften false sharing between neighboring shards
}

type cacheEntry struct {
	key        uint64
	seed       uint64       // key prefix (model + options); kept for the spill
	block      []sparc.Inst // private copy of the input, for collision checks
	out        []sparc.Inst // private copy of the schedule
	prev, next *cacheEntry
}

// DefaultCacheCapacity bounds a NewCache(0) cache. Hot executables
// repeat far fewer distinct blocks than this.
const DefaultCacheCapacity = 4096

// defaultCacheShards is sized for the scheduler's worker pool; it drops
// until every shard holds at least one entry on tiny caches.
const defaultCacheShards = 16

// NewCache returns a scheduling-result cache holding at most capacity
// blocks (0 selects DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	nshards := defaultCacheShards
	for nshards > 1 && nshards > capacity {
		nshards >>= 1
	}
	c := &Cache{
		shards: make([]cacheShard, nshards),
		mask:   uint64(nshards - 1),
		cap:    capacity,
	}
	for i := range c.shards {
		per := capacity / nshards
		if i < capacity%nshards {
			per++
		}
		c.shards[i].cap = per
		c.shards[i].entries = make(map[uint64]*cacheEntry)
	}
	return c
}

// shardOf maps a block key to its shard. Keys are FNV-1a hashes, so the
// folded low bits are already well distributed.
func (c *Cache) shardOf(k uint64) *cacheShard {
	return &c.shards[(k^k>>32)&c.mask]
}

// Capacity returns the maximum number of blocks the cache can hold.
func (c *Cache) Capacity() int { return c.cap }

// Shards returns the number of independently locked shards.
func (c *Cache) Shards() int { return len(c.shards) }

// Stats returns the number of lookups served from the cache and the
// number that missed, summed over all shards.
func (c *Cache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// ShardStats describes one shard's occupancy and traffic, for cache
// effectiveness reporting (cmd/eelprof).
type ShardStats struct {
	Len, Cap     int
	Hits, Misses uint64
}

// ShardStats returns per-shard occupancy and hit/miss counts.
func (c *Cache) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out[i] = ShardStats{Len: len(sh.entries), Cap: sh.cap, Hits: sh.hits, Misses: sh.misses}
		sh.mu.Unlock()
	}
	return out
}

func (c *Cache) get(seed uint64, block []sparc.Inst) ([]sparc.Inst, bool) {
	return c.getInto(seed, block, nil)
}

// getInto is get with the copy carved from the caller's arena (nil falls
// back to a private allocation), so a warmed worker's cache hits cost no
// allocations.
func (c *Cache) getInto(seed uint64, block []sparc.Inst, arena *instArena) ([]sparc.Inst, bool) {
	k := blockHash(seed, block)
	sh := c.shardOf(k)
	sh.mu.Lock()
	e, ok := sh.entries[k]
	if !ok || !blocksEqual(e.block, block) {
		sh.misses++
		sh.mu.Unlock()
		return nil, false
	}
	sh.hits++
	sh.moveToFront(e)
	// Entries are immutable once stored; hand the caller its own copy so
	// later in-place edits cannot corrupt the cache.
	var out []sparc.Inst
	if arena != nil {
		out = append(arena.take(len(e.out)), e.out...)
	} else {
		out = append([]sparc.Inst(nil), e.out...)
	}
	sh.mu.Unlock()
	return out, true
}

func (c *Cache) put(seed uint64, block, out []sparc.Inst) {
	k := blockHash(seed, block)
	blockCopy := append([]sparc.Inst(nil), block...)
	outCopy := append([]sparc.Inst(nil), out...)
	sh := c.shardOf(k)
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		// Same key, possibly a colliding block: last write wins, like the
		// unsharded map it replaces. Output never depends on cache content.
		e.seed, e.block, e.out = seed, blockCopy, outCopy
		sh.moveToFront(e)
		sh.mu.Unlock()
		return
	}
	if len(sh.entries) >= sh.cap {
		sh.evictOldest()
	}
	e := &cacheEntry{key: k, seed: seed, block: blockCopy, out: outCopy}
	sh.entries[k] = e
	sh.pushFront(e)
	sh.mu.Unlock()
}

// pushFront links e as the most recently used entry. Callers hold mu.
func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// moveToFront marks e as the most recently used entry. Callers hold mu.
func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	// Unlink (e is not the head, so e.prev != nil).
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev = nil
	e.next = sh.head
	sh.head.prev = e
	sh.head = e
}

// evictOldest removes the least recently used entry. Callers hold mu and
// guarantee the shard is non-empty.
func (sh *cacheShard) evictOldest() {
	victim := sh.tail
	delete(sh.entries, victim.key)
	sh.tail = victim.prev
	if sh.tail != nil {
		sh.tail.next = nil
	} else {
		sh.head = nil
	}
	victim.prev, victim.next = nil, nil
}

func blocksEqual(a, b []sparc.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// cacheSeed folds the machine name and the options that change schedules
// into a key prefix. The result is never 0 (0 marks an uncacheable
// scheduler).
func cacheSeed(model *spawn.Model, opts Options) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(model.Machine); i++ {
		h ^= uint64(model.Machine[i])
		h *= fnvPrime
	}
	var bits uint64 = 1
	if opts.ConservativeMem {
		bits |= 2
	}
	if opts.ChainFirst {
		bits |= 4
	}
	// The two oracles produce identical schedules, but keeping their cache
	// entries apart means a fast-oracle regression can never leak results
	// into a reference-oracle pass (or vice versa). Likewise for the
	// scheduling engines — and EngineOptimal can genuinely emit different
	// (better) schedules, so mixing its entries with greedy ones would be
	// wrong, not just risky.
	if opts.Oracle == OracleReference {
		bits |= 8
	}
	if opts.Engine == EngineReference {
		bits |= 16
	}
	if opts.Engine == EngineOptimal {
		bits |= 32
	}
	h ^= bits
	h *= fnvPrime
	if opts.Engine == EngineOptimal {
		// Search-effort knobs decide which blocks get certified optimal
		// schedules, so they are part of the key: a warm cache can never
		// change what a given configuration emits.
		h ^= uint64(uint32(opts.optimalBudget()))
		h *= fnvPrime
		h ^= uint64(uint32(opts.optimalMaxInsts()))
		h *= fnvPrime
	}
	if h == 0 {
		h = 1
	}
	return h
}

// blockHash is FNV-1a over every field of every instruction.
func blockHash(seed uint64, block []sparc.Inst) uint64 {
	h := seed
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime
	}
	for _, in := range block {
		mix(uint64(in.Op))
		mix(uint64(in.Rd) | uint64(in.Rs1)<<8 | uint64(in.Rs2)<<16 | uint64(in.Cond)<<24)
		mix(uint64(uint32(in.Imm)))
		mix(uint64(uint32(in.Disp)))
		var flags uint64
		if in.UseImm {
			flags |= 1
		}
		if in.Annul {
			flags |= 2
		}
		if in.Instrumented {
			flags |= 4
		}
		mix(flags)
	}
	mix(uint64(len(block)))
	return h
}
