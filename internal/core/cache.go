package core

import (
	"sync"
	"sync/atomic"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Cache memoizes per-block scheduling results across Edit passes. The
// key is (machine model, scheduler options, instruction-sequence hash);
// a stored copy of the input sequence is compared on lookup, so a hash
// collision degrades to a miss instead of a wrong schedule. One Cache
// may be shared by schedulers for different machines and options — the
// seed keeps their entries apart — and by concurrent ScheduleBlocks
// workers.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]cacheEntry

	hits, misses atomic.Uint64
}

type cacheEntry struct {
	block []sparc.Inst // private copy of the input, for collision checks
	out   []sparc.Inst // private copy of the schedule
}

// DefaultCacheCapacity bounds a NewCache(0) cache. Hot executables
// repeat far fewer distinct blocks than this.
const DefaultCacheCapacity = 4096

// NewCache returns a scheduling-result cache holding at most capacity
// blocks (0 selects DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{cap: capacity, entries: make(map[uint64]cacheEntry)}
}

// Stats returns the number of lookups served from the cache and the
// number that missed.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) get(seed uint64, block []sparc.Inst) ([]sparc.Inst, bool) {
	k := blockHash(seed, block)
	c.mu.Lock()
	e, ok := c.entries[k]
	c.mu.Unlock()
	if !ok || !blocksEqual(e.block, block) {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	// Entries are immutable once stored; hand the caller its own copy so
	// later in-place edits cannot corrupt the cache.
	return append([]sparc.Inst(nil), e.out...), true
}

func (c *Cache) put(seed uint64, block, out []sparc.Inst) {
	e := cacheEntry{
		block: append([]sparc.Inst(nil), block...),
		out:   append([]sparc.Inst(nil), out...),
	}
	k := blockHash(seed, block)
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		// Evict an arbitrary entry; output never depends on cache content.
		for victim := range c.entries {
			delete(c.entries, victim)
			break
		}
	}
	c.entries[k] = e
	c.mu.Unlock()
}

func blocksEqual(a, b []sparc.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// cacheSeed folds the machine name and the options that change schedules
// into a key prefix. The result is never 0 (0 marks an uncacheable
// scheduler).
func cacheSeed(model *spawn.Model, opts Options) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(model.Machine); i++ {
		h ^= uint64(model.Machine[i])
		h *= fnvPrime
	}
	var bits uint64 = 1
	if opts.ConservativeMem {
		bits |= 2
	}
	if opts.ChainFirst {
		bits |= 4
	}
	// The two oracles produce identical schedules, but keeping their cache
	// entries apart means a fast-oracle regression can never leak results
	// into a reference-oracle pass (or vice versa).
	if opts.Oracle == OracleReference {
		bits |= 8
	}
	h ^= bits
	h *= fnvPrime
	if h == 0 {
		h = 1
	}
	return h
}

// blockHash is FNV-1a over every field of every instruction.
func blockHash(seed uint64, block []sparc.Inst) uint64 {
	h := seed
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime
	}
	for _, in := range block {
		mix(uint64(in.Op))
		mix(uint64(in.Rd) | uint64(in.Rs1)<<8 | uint64(in.Rs2)<<16 | uint64(in.Cond)<<24)
		mix(uint64(uint32(in.Imm)))
		mix(uint64(uint32(in.Disp)))
		var flags uint64
		if in.UseImm {
			flags |= 1
		}
		if in.Annul {
			flags |= 2
		}
		if in.Instrumented {
			flags |= 4
		}
		mix(flags)
	}
	mix(uint64(len(block)))
	return h
}
