package core

import (
	"math/rand"
	"testing"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// TestBlockSoABuildZeroAllocSteadyState extends the zero-alloc
// commitment to the SoA build path itself: once a BlockSoA's arrays
// have grown to a block's size, rebuilding it — same block or smaller —
// must not allocate at all. This is the property that lets a warmed
// worker run block after block with a flat heap profile.
func TestBlockSoABuildZeroAllocSteadyState(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	blocks := randomBlocks(rand.New(rand.NewSource(31)), 16)
	var soa BlockSoA
	for _, b := range blocks { // grow to the workload's high-water mark
		if err := soa.Build(model, b, false); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if err := soa.Build(model, blocks[i%len(blocks)], false); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("warmed BlockSoA.Build allocates %.1f times per block, want 0", allocs)
	}
}

// TestBlockSoAResizePrepClears pins the lazy-builder contract the
// simulator memo relies on: after ResizePrep every slot must report a
// nil Group (the not-yet-resolved marker) and cleared flags, even when
// the arrays are being reused from a previous, larger program.
func TestBlockSoAResizePrepClears(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	block := randomBlocks(rand.New(rand.NewSource(32)), 1)[0]
	st := pipe.NewFastState(model)
	var soa BlockSoA
	soa.ResizePrep(len(block))
	for i, inst := range block { // resolve every slot
		p, err := st.Prepare(inst)
		if err != nil {
			t.Fatal(err)
		}
		soa.Prep[i] = p
		soa.Flags[i] = InstFlagsOf(inst)
		if soa.Prep[i].Group() == nil {
			t.Fatalf("slot %d still unresolved after Prepare", i)
		}
	}
	soa.ResizePrep(len(block) - 1) // shrink within capacity: must clear
	for i := range soa.Prep {
		if soa.Prep[i].Group() != nil {
			t.Fatalf("slot %d survived ResizePrep with a resolved Group", i)
		}
		if soa.Flags[i] != 0 {
			t.Fatalf("slot %d survived ResizePrep with flags %b", i, soa.Flags[i])
		}
	}
}

// TestInstArenaTake checks the arena's aliasing and validity contract:
// takes never overlap, filled slices stay intact across chunk turnover,
// and appending past a take's capacity reallocates privately instead of
// clobbering the arena.
func TestInstArenaTake(t *testing.T) {
	var a instArena
	first := a.take(4)
	for i := 0; i < 4; i++ {
		first = append(first, sparc.Inst{Imm: int32(i)})
	}
	second := a.take(4)
	for i := 0; i < 4; i++ {
		second = append(second, sparc.Inst{Imm: int32(100 + i)})
	}
	// Overflowing the first take must not touch the second's storage.
	first = append(first, sparc.Inst{Imm: 999})
	for i := 0; i < 4; i++ {
		if first[i].Imm != int32(i) || second[i].Imm != int32(100+i) {
			t.Fatalf("takes alias: first=%v second=%v", first, second)
		}
	}
	// Survive a chunk turnover: earlier slices must stay valid.
	for i := 0; i < 8; i++ {
		a.take(arenaChunk / 2)
	}
	for i := 0; i < 4; i++ {
		if second[i].Imm != int32(100+i) {
			t.Fatalf("slice corrupted by chunk turnover at %d: %v", i, second[i].Imm)
		}
	}
	// An oversized take gets its own chunk and full capacity.
	big := a.take(arenaChunk * 2)
	if cap(big) < arenaChunk*2 || len(big) != 0 {
		t.Fatalf("oversized take: len=%d cap=%d", len(big), cap(big))
	}
}
