package core

import (
	"slices"

	"eel/internal/obs"
	"eel/internal/sparc"
)

// This file is the scheduler's decision tracer: with Options.Trace set,
// every block emits one BlockTrace recording the ready set, the chosen
// instruction, the tie-break that chose it, and the issue cycle at every
// list-scheduling step — enough for cmd/schedtrace to replay the block
// and golden-diff two engines (or two revisions) down to the first
// diverging decision. Input and Output carry the full decoded
// instructions, so a trace alone reproduces the schedule: sparc.Inst is
// plain data and round-trips through JSON.
//
// Tracing bypasses the schedule cache (a cache hit has no decisions to
// record) and is unashamedly allocation-heavy; it is a debugging mode,
// not a production path.

// TraceStep is one list-scheduling decision.
type TraceStep struct {
	// Ready holds the original-position indices of every instruction
	// whose predecessors were all scheduled, sorted ascending.
	Ready []int32 `json:"ready"`
	// Chosen is the original-position index the scheduler picked.
	Chosen int32 `json:"chosen"`
	// Inst is the chosen instruction's disassembly, for humans.
	Inst string `json:"inst"`
	// Stalls is the stall count the winning probe reported.
	Stalls int `json:"stalls"`
	// Issue is the absolute cycle the instruction issued at.
	Issue int64 `json:"issue"`
	// Reason names the tie-break that separated the winner from the
	// runner-up: "only", "stalls", "chain", "index" on the reference
	// engine; "only", "bound", "chain", "index" on the fast engine
	// (whose first key is the cached earliest-issue bound, not a stall
	// count — schedtrace -diff therefore compares decisions, not
	// reasons).
	Reason string `json:"reason"`
}

// BlockTrace is one block's full scheduling trace.
type BlockTrace struct {
	Block  int          `json:"block"` // batch index; -1 for single-block calls
	Model  string       `json:"model"`
	Engine string       `json:"engine"`
	Oracle string       `json:"oracle"`
	Input  []sparc.Inst `json:"input"`
	Output []sparc.Inst `json:"output"`
	Asm    []string     `json:"asm,omitempty"` // Output, disassembled
	// KeptOriginal marks blocks where the never-costs-more guard threw
	// the greedy schedule away; Steps still records how it was built.
	KeptOriginal bool        `json:"kept_original,omitempty"`
	Steps        []TraceStep `json:"steps"`
	// TraceID is the daemon request/batch trace that carried this block
	// (obs.Trace, via ScheduleBlocksCtx), joining per-block decision
	// traces to per-request latency traces; "" outside the daemon.
	TraceID string `json:"trace_id,omitempty"`
}

// TraceSink receives one BlockTrace per scheduled block. Sinks must be
// safe for concurrent use: ScheduleBlocks workers trace in parallel.
type TraceSink interface {
	TraceBlock(t *BlockTrace) error
}

// jsonlTraceSink writes each trace as one JSON line.
type jsonlTraceSink struct{ j *obs.JSONL }

func (s jsonlTraceSink) TraceBlock(t *BlockTrace) error { return s.j.Write(t) }

// NewJSONLTraceSink adapts a JSONL writer into a TraceSink.
func NewJSONLTraceSink(j *obs.JSONL) TraceSink { return jsonlTraceSink{j: j} }

// engineName is the effective engine label for traces: schedulers with
// custom oracles always run the reference engine (see Options.Engine).
func (s *Scheduler) engineName() string {
	if s.fastOK && s.opts.Engine != EngineReference {
		return s.opts.Engine.String()
	}
	return EngineReference.String()
}

// oracleName labels the oracle for traces: the configured one on
// schedulers built with New, "custom" for NewWith/NewWithFactory.
func (s *Scheduler) oracleName() string {
	if s.fastOK {
		return s.opts.Oracle.String()
	}
	return "custom"
}

// emitTrace assembles and writes the worker's collected steps. A sink
// write failure cannot un-schedule the block, so it is recorded in
// telemetry when available and otherwise dropped.
func (s *Scheduler) emitTrace(w *worker, idx int, block, out []sparc.Inst) {
	bt := &BlockTrace{
		Block:        idx,
		Model:        string(s.model.Machine),
		Engine:       s.engineName(),
		Oracle:       s.oracleName(),
		Input:        append([]sparc.Inst(nil), block...),
		Output:       append([]sparc.Inst(nil), out...),
		KeptOriginal: w.keptOriginal,
		Steps:        append([]TraceStep(nil), w.sc.steps...),
		TraceID:      w.traceID,
	}
	bt.Asm = make([]string, len(out))
	for i, in := range out {
		bt.Asm[i] = in.String()
	}
	if err := s.opts.Trace.TraceBlock(bt); err != nil && s.tel != nil {
		s.tel.replayErrs.Inc()
	}
}

// tieReason names the priority key that separated the reference
// engine's winner from its runner-up, in better()'s key order.
func (s *Scheduler) tieReason(bestSt int, best *node, runSt int, run *node) string {
	if run == nil {
		return "only"
	}
	if s.opts.ChainFirst {
		if run.chain != best.chain {
			return "chain"
		}
		if runSt != bestSt {
			return "stalls"
		}
		return "index"
	}
	if runSt != bestSt {
		return "stalls"
	}
	if run.chain != best.chain {
		return "chain"
	}
	return "index"
}

// refTraceStep records one reference-engine decision: ready is the live
// ready list, sts the stall probe per entry, best its winning index.
func (s *Scheduler) refTraceStep(w *worker, ready []*node, sts []int, bestIdx, bestStalls int, issue int64) {
	best := ready[bestIdx]
	rd := make([]int32, len(ready))
	for i, n := range ready {
		rd[i] = int32(n.index)
	}
	slices.Sort(rd)
	var run *node
	runSt := 0
	for i, n := range ready {
		if i == bestIdx {
			continue
		}
		if run == nil || s.better(sts[i], n, runSt, run) {
			run, runSt = n, sts[i]
		}
	}
	w.sc.steps = append(w.sc.steps, TraceStep{
		Ready:  rd,
		Chosen: int32(best.index),
		Inst:   best.inst.String(),
		Stalls: bestStalls,
		Issue:  issue,
		Reason: s.tieReason(bestStalls, best, runSt, run),
	})
}

// fastTraceStep records one fast-engine decision at the moment the root
// issued: the heap holds exactly the ready set, and the runner-up is
// the better of the root's two children under the queue order. Children
// bounds may be stale lower bounds — the reason label is diagnostic,
// the decision fields are exact.
func (sc *scratch) fastTraceStep(s *Scheduler, top int32, stalls int, issue int64) {
	rd := make([]int32, len(sc.heap))
	copy(rd, sc.heap)
	slices.Sort(rd)
	reason := "only"
	if len(sc.heap) > 1 {
		chainFirst := s.opts.ChainFirst
		run := sc.heap[1]
		if len(sc.heap) > 2 && sc.qLess(sc.heap[2], run, chainFirst) {
			run = sc.heap[2]
		}
		boundDiff := sc.cachedT[top] != sc.cachedT[run]
		chainDiff := sc.chain[top] != sc.chain[run]
		switch {
		case chainFirst && chainDiff:
			reason = "chain"
		case chainFirst:
			if boundDiff {
				reason = "bound"
			} else {
				reason = "index"
			}
		case boundDiff:
			reason = "bound"
		case chainDiff:
			reason = "chain"
		default:
			reason = "index"
		}
	}
	sc.steps = append(sc.steps, TraceStep{
		Ready:  rd,
		Chosen: top,
		Inst:   sc.Insts[top].String(),
		Stalls: stalls,
		Issue:  issue,
		Reason: reason,
	})
}
