package core

import (
	"testing"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// TestFPBranchBlock: a block ending in fcmpd + fbl keeps the compare
// before the branch and never moves the fcc producer into the delay slot.
func TestFPBranchBlock(t *testing.T) {
	s := ultraSched(Options{})
	block := []sparc.Inst{
		sparc.NewALU(sparc.OpFaddd, sparc.FReg(0), sparc.FReg(2), sparc.FReg(4)),
		{Op: sparc.OpFcmpd, Rs1: sparc.FReg(0), Rs2: sparc.FReg(6)},
		sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1),
		sparc.NewFBranch(4, -8), // fbl
		sparc.NewNop(),
	}
	out := mustSchedule(t, s, block)
	posCmp, posBr := -1, -1
	for i, inst := range out {
		if inst.Op == sparc.OpFcmpd {
			posCmp = i
		}
		if inst.Op == sparc.OpFBfcc {
			posBr = i
		}
	}
	if posCmp > posBr {
		t.Fatalf("fcmp after its branch: %v", out)
	}
	if out[len(out)-1].Op == sparc.OpFcmpd {
		t.Fatalf("fcc producer in the delay slot: %v", out)
	}
	// The independent add may legally fill the slot.
	if n := len(out); out[n-2].Op != sparc.OpFBfcc {
		t.Fatalf("branch not terminal: %v", out)
	}
}

// TestInstrumentationIntoFPStalls: the QPT counter sequence scheduled into
// an FP block must issue during the FP chain's stall cycles on the
// scheduler's model (the paper's headline mechanism).
func TestInstrumentationIntoFPStalls(t *testing.T) {
	model := spawn.MustLoad(spawn.HyperSPARC)
	s := New(model, Options{})
	counter := []sparc.Inst{
		sparc.NewSethi(sparc.G6, 0x100),
		sparc.NewLoad(sparc.OpLd, sparc.G7, sparc.G6, 0),
		sparc.NewALUImm(sparc.OpAdd, sparc.G7, sparc.G7, 1),
		sparc.NewStore(sparc.OpSt, sparc.G7, sparc.G6, 0),
	}
	for i := range counter {
		counter[i].Instrumented = true
	}
	fpChain := []sparc.Inst{
		sparc.NewLoad(sparc.OpLddf, sparc.FReg(0), sparc.O0, 0),
		sparc.NewALU(sparc.OpFmuld, sparc.FReg(2), sparc.FReg(0), sparc.FReg(4)),
		sparc.NewALU(sparc.OpFaddd, sparc.FReg(6), sparc.FReg(2), sparc.FReg(8)),
		sparc.NewStore(sparc.OpStdf, sparc.FReg(6), sparc.O1, 0),
	}
	orig := blockCycles(t, model, fpChain)
	sched := mustSchedule(t, s, append(append([]sparc.Inst(nil), counter...), fpChain...))
	both := blockCycles(t, model, sched)
	// The FP chain alone bounds the block; the counter must hide almost
	// entirely (allow one cycle of slop).
	if both > orig+1 {
		t.Errorf("counter not hidden in FP stalls: %d -> %d cycles", orig, both)
	}
}

// TestSchedulerSkipsUnknownOpsGracefully: an invalid instruction in a
// block is an error, not a panic.
func TestSchedulerSkipsUnknownOpsGracefully(t *testing.T) {
	s := ultraSched(Options{})
	if _, err := s.ScheduleBlock([]sparc.Inst{{}, sparc.NewNop()}); err == nil {
		t.Error("invalid instruction accepted")
	}
}

// TestYRegisterSerializes: umul (writes %y) followed by rd %y keeps order.
func TestYRegisterSerializes(t *testing.T) {
	s := ultraSched(Options{})
	block := []sparc.Inst{
		sparc.NewALU(sparc.OpUmul, sparc.G1, sparc.G2, sparc.G3),
		{Op: sparc.OpRdy, Rd: sparc.G4},
		sparc.NewALUImm(sparc.OpAdd, sparc.G5, sparc.O0, 1),
	}
	out := mustSchedule(t, s, block)
	posMul, posRd := -1, -1
	for i, inst := range out {
		if inst.Op == sparc.OpUmul {
			posMul = i
		}
		if inst.Op == sparc.OpRdy {
			posRd = i
		}
	}
	if posMul > posRd {
		t.Errorf("rd %%y moved above umul: %v", out)
	}
}

// TestDoubleRegisterPairOrdering: an fmuld writing %f0/%f1 blocks a later
// reader of %f1 (the odd half).
func TestDoubleRegisterPairOrdering(t *testing.T) {
	s := ultraSched(Options{})
	block := []sparc.Inst{
		sparc.NewALU(sparc.OpFmuld, sparc.FReg(0), sparc.FReg(2), sparc.FReg(4)),
		{Op: sparc.OpFmovs, Rs2: sparc.FReg(1), Rd: sparc.FReg(10)},
	}
	out := mustSchedule(t, s, block)
	if out[0].Op != sparc.OpFmuld {
		t.Errorf("pair consumer hoisted above producer: %v", out)
	}
}
