package core

import "sync"

// execPool is the scheduler's persistent goroutine pool. ScheduleBlocks
// used to spawn fresh goroutines per batch; a daemon serving many small
// Edit requests paid that spin-up (stack allocation, scheduling churn)
// on every call. The pool keeps up to capn goroutines alive across
// batches: dispatch hands a task to an idle one, spawning lazily up to
// the cap, and refuses — rather than queues — when every goroutine is
// busy, because the caller can always run its share of the batch inline
// (ScheduleBlocks workers claim blocks from a shared counter, so any
// subset of the requested workers drains the whole batch).
type execPool struct {
	mu       sync.Mutex
	tasks    chan func() // unbuffered: a send means a goroutine took it
	started  int         // goroutines ever spawned
	inflight int         // tasks dispatched and not yet finished
	capn     int
	closed   bool
	// sends tracks dispatches between their admission (under mu) and the
	// completion of their channel send, so Close never closes the task
	// channel under an in-flight send.
	sends sync.WaitGroup
}

func newExecPool(capn int) *execPool {
	return &execPool{tasks: make(chan func()), capn: capn}
}

// dispatch hands task to a pool goroutine and reports whether it did.
// It refuses when the pool is closed or saturated; the caller runs the
// work itself instead.
func (p *execPool) dispatch(task func()) bool {
	p.mu.Lock()
	if p.closed || (p.inflight >= p.started && p.started >= p.capn) {
		p.mu.Unlock()
		return false
	}
	if p.inflight >= p.started {
		p.started++
		go p.run()
	}
	p.inflight++
	p.sends.Add(1)
	p.mu.Unlock()
	// inflight < started held under the lock: at least one goroutine is
	// idle (in or headed to its channel receive), so this send cannot
	// block indefinitely. Close waits on sends before closing the
	// channel, so the receiver is still looping.
	p.tasks <- task
	p.sends.Done()
	return true
}

func (p *execPool) run() {
	for task := range p.tasks {
		task()
		p.mu.Lock()
		p.inflight--
		p.mu.Unlock()
	}
}

// Close stops the pool's goroutines once in-flight tasks finish.
// Idempotent; concurrent dispatches are refused and degrade to inline
// execution, so closing a scheduler mid-batch is safe.
func (p *execPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.sends.Wait()
	close(p.tasks)
}
