// Differential fuzz: the exact engine against the greedy engine. On
// random dependence-rich blocks, EngineOptimal must never emit a
// schedule that models more cycles than EngineFast, must preserve
// dependences, and must emit byte-identical schedules whichever stall
// oracle drove it. Seeded from testdata/fuzz/FuzzOptimalNeverWorse and
// run for 20s in the CI fuzz-smoke job.
package core_test

import (
	"math/rand"
	"testing"

	"eel/internal/core"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func FuzzOptimalNeverWorse(f *testing.F) {
	f.Add(int64(1), 6, false, false, 0, false)
	f.Add(int64(2), 10, true, true, 1, true)
	f.Add(int64(3), 16, false, false, 2, true)
	f.Add(int64(4), 1, false, true, 0, false)
	f.Add(int64(5), 24, true, false, 2, true) // oversized: exercises the greedy fallback
	machines := spawn.Machines()
	models := make([]*spawn.Model, len(machines))
	for i, m := range machines {
		models[i] = spawn.MustLoad(m)
	}
	f.Fuzz(func(t *testing.T, seed int64, n int, fp, conservative bool, machineIdx int, cti bool) {
		// Cap the body below the greedy fuzzer's limit: the point here is
		// searched blocks, and anything past OptimalMaxInsts only re-tests
		// the oversized fallback.
		if n < 0 || n > 24 {
			return
		}
		model := models[((machineIdx%len(models))+len(models))%len(models)]
		rng := rand.New(rand.NewSource(seed))
		block := workload.RandomBlock(rng, n, fp)
		for i := range block {
			if rng.Intn(4) == 0 {
				block[i].Instrumented = true
			}
		}
		if cti {
			block = append(block,
				sparc.NewBranch(sparc.CondNE, -int32(len(block))-1),
				sparc.NewNop())
		}
		opts := core.Options{ConservativeMem: conservative}
		optOpts := opts
		optOpts.Engine = core.EngineOptimal
		refOpts := optOpts
		refOpts.Oracle = core.OracleReference
		greedy := core.New(model, opts)
		gOut, gErr := greedy.ScheduleBlock(block)
		oOut, oErr := core.New(model, optOpts).ScheduleBlock(block)
		rOut, rErr := core.New(model, refOpts).ScheduleBlock(block)
		if (gErr == nil) != (oErr == nil) || (oErr == nil) != (rErr == nil) {
			t.Fatalf("error divergence on %v:\ngreedy:           %v\noptimal:          %v\noptimal/reference: %v", block, gErr, oErr, rErr)
		}
		if gErr != nil {
			return
		}
		if !instsEqual(oOut, rOut) {
			t.Fatalf("optimal schedule depends on the oracle for %v:\nfast:      %v\nreference: %v", block, oOut, rOut)
		}
		if err := greedy.VerifyDependences(block, oOut); err != nil {
			t.Fatalf("optimal schedule breaks dependences: %v\norig: %v\nopt:  %v", err, block, oOut)
		}
		gCost, err := pipe.SequenceCycles(model, gOut)
		if err != nil {
			t.Fatalf("cost of greedy: %v", err)
		}
		oCost, err := pipe.SequenceCycles(model, oOut)
		if err != nil {
			t.Fatalf("cost of optimal: %v", err)
		}
		if oCost > gCost {
			t.Fatalf("optimal costs more than greedy on %v: %d > %d\ngreedy: %v\nopt:    %v",
				block, oCost, gCost, gOut, oOut)
		}
		if !instsEqual(oOut, gOut) && oCost >= gCost {
			t.Fatalf("optimal changed the schedule without improving it on %v: greedy %d, optimal %d",
				block, gCost, oCost)
		}
	})
}
