package core

import (
	"sync"

	"eel/internal/obs"
	"eel/internal/pipe"
	"eel/internal/sparc"
)

// This file is EngineOptimal: a branch-and-bound exact scheduler that
// turns the greedy list scheduler from a folk heuristic into a measured
// policy. After the greedy fast pass runs (seeding the incumbent and
// filling the worker's scratch arenas), optimalImprove searches the
// space of dependence-respecting body permutations depth-first over the
// same pipe.FastState oracle the greedy engine probes, rewinding
// speculative issues through pipe.Checkpoint instead of replaying
// prefixes. The search either proves the greedy schedule optimal, or
// returns a strictly cheaper order — which then still passes the
// ordinary never-costs-more guard and VerifyDependences like any other
// schedule.
//
// Cost model and emission policy are identical to the greedy engine's:
// the objective is the modeled cycle count of the full emitted sequence
// (sequenceCost semantics — max over instructions of absolute issue
// cycle plus remaining group occupancy), blocks ending in a CTI keep
// the CTI pinned second-to-last with the delay slot refilled by the
// last scheduled instruction when delaySlotLegal allows it (a nop
// otherwise), and annulled branches are never reordered. For CTI blocks
// the incrementally tracked body cost is a lower bound on the emitted
// cost — the oracle is monotone, so inserting the CTI can only push
// issues later — which keeps body-level pruning admissible; only leaves
// pay a full emission replay.
//
// Pruning, all of it sound:
//
//   - Critical path: cpOut[i] bounds the cycles from i's issue to the
//     block's end along dependence chains. Edge latencies come from the
//     oracle's own resolved register accesses (pipe.Prepared.Accesses),
//     not the dependence builder's pair latencies — readyq.go documents
//     that those are not provably conservative against the oracle's
//     placement rules, and an inadmissible bound here would silently
//     turn "proven optimal" into "probably optimal".
//   - Resource floor: remaining held-slot demand per unit must fit the
//     machine's per-cycle copy counts (resourceFloor), from the
//     compiled tables' sparse held-use lists.
//   - Dominance: among simultaneously ready candidates, identical
//     instruction values with identical successor edges are
//     interchangeable; only the lowest-index one is expanded.
//
// A node budget (Options.OptimalBudget) bounds each block's search;
// exhaustion keeps the greedy incumbent (or the best improvement found
// so far) and marks the block unproven, which also keeps it out of the
// schedule cache (scheduleBlockOn) — every cached optimal-engine entry
// is a certified optimum. The budget counts speculative issues, not
// wall time, so results and CI goldens are deterministic.

const (
	// DefaultOptimalBudget is the per-block node budget: high enough that
	// blocks at or below optimalSmallBlock instructions essentially
	// always finish (the schedgap acceptance bar is ≥90% proven), low
	// enough that a pathological mid-size block costs milliseconds, not
	// minutes.
	DefaultOptimalBudget = 200_000
	// DefaultOptimalMaxInsts caps the searched body size. The paper's
	// benchmarks average 2.9–49.0 instructions per dynamic block; above
	// ~18 the permutation space is hopeless under any honest budget, so
	// larger bodies skip the search instead of burning the full budget to
	// learn nothing.
	DefaultOptimalMaxInsts = 18
	// optimalSmallBlock is the full block length (CTI and delay slot
	// included) below which the proven-rate acceptance criterion applies:
	// ≤12-instruction blocks, which the paper says is most of them.
	optimalSmallBlock = 12
)

// optimalBudget resolves Options.OptimalBudget: 0 selects the default,
// negative disables the search (every eligible block keeps greedy and
// counts as budget-exhausted).
func (o Options) optimalBudget() int {
	if o.OptimalBudget != 0 {
		return o.OptimalBudget
	}
	return DefaultOptimalBudget
}

// optimalMaxInsts resolves Options.OptimalMaxInsts (0 selects the
// default).
func (o Options) optimalMaxInsts() int {
	if o.OptimalMaxInsts != 0 {
		return o.OptimalMaxInsts
	}
	return DefaultOptimalMaxInsts
}

// OptimalStats is a snapshot of an EngineOptimal scheduler's search
// outcomes, for gap reporting (cmd/schedgap) and tests.
type OptimalStats struct {
	// Blocks counts every block the engine saw; Proven counts those whose
	// emitted schedule carries an exhausted-search certificate. Trivial
	// blocks — bodies of at most one instruction, annulled branches —
	// count as proven: the policy pins them, so no alternative exists.
	Blocks, Proven int64
	// SmallBlocks and SmallProven restrict the same counts to blocks of
	// at most optimalSmallBlock instructions.
	SmallBlocks, SmallProven int64
	// BudgetExhausted counts searches stopped by the node budget;
	// Oversized is the subset skipped outright because the body exceeded
	// OptimalMaxInsts.
	BudgetExhausted, Oversized int64
	// Improved counts blocks where the search beat greedy; CyclesSaved is
	// the summed modeled-cycle improvement.
	Improved, CyclesSaved int64
	// CacheBypasses counts unproven results withheld from the schedule
	// cache; Nodes is the total speculative issues across all searches;
	// SearchErrors counts searches abandoned on an oracle error (the
	// block keeps its greedy schedule).
	CacheBypasses, Nodes, SearchErrors int64
}

// OptimalStats returns the exact-search counters. All zeros unless the
// scheduler was built with Engine == EngineOptimal.
func (s *Scheduler) OptimalStats() OptimalStats {
	a := s.opt
	if a == nil {
		return OptimalStats{}
	}
	a.mu.Lock()
	st := a.st
	a.mu.Unlock()
	return st
}

// optAgg aggregates search outcomes across workers and mirrors them
// into obs counters. A nil *optAgg (greedy engines) is a no-op on every
// method, matching the registry's disabled-is-nil convention.
type optAgg struct {
	mu sync.Mutex
	st OptimalStats

	blocks, proven, smallBlocks, smallProven *obs.Counter
	exhausted, oversized, improved, saved    *obs.Counter
	bypasses, nodes, errs                    *obs.Counter
}

// newOptAgg builds the aggregate; reg may be nil (the obs handles
// become no-ops, the snapshot still counts).
func newOptAgg(reg *obs.Registry) *optAgg {
	return &optAgg{
		blocks:      reg.Counter("core.optimal_blocks_total"),
		proven:      reg.Counter("core.optimal_proven_total"),
		smallBlocks: reg.Counter("core.optimal_small_blocks_total"),
		smallProven: reg.Counter("core.optimal_small_proven_total"),
		exhausted:   reg.Counter("core.optimal_budget_exhausted"),
		oversized:   reg.Counter("core.optimal_oversized_total"),
		improved:    reg.Counter("core.optimal_improved_total"),
		saved:       reg.Counter("core.optimal_cycles_saved_total"),
		bypasses:    reg.Counter("core.optimal_cache_bypass_total"),
		nodes:       reg.Counter("core.optimal_nodes_total"),
		errs:        reg.Counter("core.optimal_search_errors_total"),
	}
}

// sawBlock counts a block entering the engine.
func (a *optAgg) sawBlock(blockLen int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.st.Blocks++
	if blockLen <= optimalSmallBlock {
		a.st.SmallBlocks++
	}
	a.mu.Unlock()
	a.blocks.Inc()
	if blockLen <= optimalSmallBlock {
		a.smallBlocks.Inc()
	}
}

// provenBlock counts a block whose emitted schedule is certified
// optimal.
func (a *optAgg) provenBlock(blockLen int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.st.Proven++
	if blockLen <= optimalSmallBlock {
		a.st.SmallProven++
	}
	a.mu.Unlock()
	a.proven.Inc()
	if blockLen <= optimalSmallBlock {
		a.smallProven.Inc()
	}
}

// hitProven counts a schedule-cache hit. Hits are always certified:
// unproven results never enter the cache.
func (a *optAgg) hitProven(blockLen int) {
	if a == nil {
		return
	}
	a.sawBlock(blockLen)
	a.provenBlock(blockLen)
}

// exhaustedBlock counts a budget-exhausted search; oversized
// additionally marks bodies skipped for exceeding OptimalMaxInsts.
func (a *optAgg) exhaustedBlock(oversized bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.st.BudgetExhausted++
	if oversized {
		a.st.Oversized++
	}
	a.mu.Unlock()
	a.exhausted.Inc()
	if oversized {
		a.oversized.Inc()
	}
}

// improvedBlock counts a search that beat greedy by saved cycles.
func (a *optAgg) improvedBlock(saved int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.st.Improved++
	a.st.CyclesSaved += saved
	a.mu.Unlock()
	a.improved.Inc()
	a.saved.Add(saved)
}

// cacheBypassed counts an unproven result withheld from the cache.
func (a *optAgg) cacheBypassed() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.st.CacheBypasses++
	a.mu.Unlock()
	a.bypasses.Inc()
}

// searchedNodes adds a finished search's node count.
func (a *optAgg) searchedNodes(n int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.st.Nodes += n
	a.mu.Unlock()
	a.nodes.Add(n)
}

// searchError counts a search abandoned on an oracle error.
func (a *optAgg) searchError() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.st.SearchErrors++
	a.mu.Unlock()
	a.errs.Inc()
}

// optSearch is one worker's private branch-and-bound state. Everything
// is flat and recycled across blocks; after warm-up a search allocates
// only when it finds an improvement (the new output slice).
type optSearch struct {
	fs    *pipe.FastState // search oracle (the worker's, or ownFS)
	ownFS *pipe.FastState // lazily built when the worker's oracle is not a FastState

	n      int // body length
	body   []sparc.Inst
	hasCTI bool
	cti    sparc.Inst

	// Prepared placement inputs: body[i] in prep[i]; CTI blocks add the
	// CTI at slot n and a nop at slot n+1 for leaf emission replays.
	prep      []pipe.Prepared
	cycles    []int64 // per body inst: group occupancy after issue
	ctiCycles int64
	nopCycles int64
	ctiLegal  []bool // per body inst: may it fill the delay slot?

	// Dependence graph, successor-major, with oracle-derived latencies.
	succStart, succTo []int32
	succLat           []int32
	npred             []int32
	chain             []int32 // greedy pass-1 priority, for child ordering
	cpOut             []int64

	// Resource-floor tables: per-node per-unit held-slot totals and
	// exclusive last-use offsets (n×nu, row-major), plus the live
	// remaining demand per unit.
	nu       int
	counts   []int32
	unitTot  []int32
	unitLast []int32
	demand   []int64
	spanBuf  []int64

	// DFS state.
	earliest  []int64 // per node: oracle-sound lower bound on issue cycle
	scheduled []bool
	perm      []int32
	best      []int32
	snaps     []pipe.Checkpoint
	cand      []int32 // per-depth candidate lists, n×n flat
	stallBuf  []int64 // per-depth candidate sort keys, n×n flat
	undoNode  []int32 // earliest[] undo log
	undoVal   []int64

	nodes     int
	budget    int
	incumbent int64
	improved  bool
	exhausted bool
}

// optimalImprove runs the exact search against the greedy result of the
// block just scheduled (the worker's scratch still holds its dependence
// graph). It returns a strictly cheaper output and true, or greedyOut
// and false; search failures (budget, oracle errors) fall back to
// greedy and are counted, never surfaced — the greedy result is always
// safe to emit.
func (s *Scheduler) optimalImprove(w *worker, block, greedyOut []sparc.Inst) ([]sparc.Inst, bool) {
	w.optUnproven = false
	s.opt.sawBlock(len(block))

	n := len(block)
	hasCTI := false
	var cti sparc.Inst
	bn := n
	if n >= 2 && block[n-2].IsCTI() {
		if block[n-2].Annul {
			// An annulled delay slot executes conditionally; the policy
			// pins the whole block, so the unchanged schedule is optimal
			// by definition.
			s.opt.provenBlock(n)
			return greedyOut, false
		}
		hasCTI = true
		cti = block[n-2]
		bn = n - 2
		if !block[n-1].IsNop() {
			bn = n - 1 // the old delay-slot instruction joined the body
		}
	}
	if bn <= 1 {
		// Nothing to permute (and for these sizes the greedy pass never
		// built a dependence graph — the scratch must not be consulted).
		s.opt.provenBlock(n)
		return greedyOut, false
	}
	if bn > s.opts.optimalMaxInsts() {
		w.optUnproven = true
		s.opt.exhaustedBlock(true)
		return greedyOut, false
	}

	if w.opt == nil {
		w.opt = &optSearch{}
	}
	o := w.opt
	if err := o.init(s, w, hasCTI, cti); err != nil {
		w.optUnproven = true
		s.opt.searchError()
		return greedyOut, false
	}
	// Seed the incumbent with the guarded baseline: the cheaper of the
	// greedy schedule and the original order. The never-costs-more guard
	// would restore the original anyway when greedy regressed, so seeding
	// with the raw greedy cost would let the search "win" against a
	// schedule the engine was never going to emit — rewriting blocks
	// without improving them. The search only ever replaces the incumbent
	// with something strictly cheaper, so EngineOptimal can never emit
	// worse than EngineFast, and Improved/CyclesSaved measure real gains
	// over the greedy engine's output.
	inc, err := s.sequenceCost(o.fs, greedyOut)
	if err != nil {
		w.optUnproven = true
		s.opt.searchError()
		return greedyOut, false
	}
	if !blocksEqual(greedyOut, block) {
		bc, err := s.sequenceCost(o.fs, block)
		if err != nil {
			w.optUnproven = true
			s.opt.searchError()
			return greedyOut, false
		}
		if bc < inc {
			inc = bc
		}
	}
	o.incumbent = inc
	o.budget = s.opts.optimalBudget()

	o.fs.Reset()
	err = o.dfs(0, 0)
	s.opt.searchedNodes(int64(o.nodes))
	if err != nil {
		w.optUnproven = true
		s.opt.searchError()
		return greedyOut, false
	}
	if o.exhausted {
		w.optUnproven = true
		s.opt.exhaustedBlock(false)
	} else {
		s.opt.provenBlock(n)
	}
	if !o.improved {
		return greedyOut, false
	}

	// Rebuild the emitted sequence from the winning permutation, with
	// scheduleBlockRaw's exact CTI reinsertion policy.
	out := make([]sparc.Inst, 0, bn+2)
	if hasCTI {
		last := o.best[o.n-1]
		if o.ctiLegal[last] {
			for _, i := range o.best[:o.n-1] {
				out = append(out, o.body[i])
			}
			out = append(out, cti, o.body[last])
		} else {
			for _, i := range o.best {
				out = append(out, o.body[i])
			}
			out = append(out, cti, sparc.NewNop())
		}
	} else {
		for _, i := range o.best {
			out = append(out, o.body[i])
		}
	}
	if blocksEqual(out, greedyOut) {
		// Unreachable (a strict cost improvement cannot re-derive the
		// same sequence), but cheap insurance against ever looping the
		// guard.
		return greedyOut, false
	}
	s.opt.improvedBlock(inc - o.incumbent)
	return out, true
}

// init sizes the search state for the worker's current scratch graph
// and derives the bound tables. The scratch must hold the block's
// dependence graph — the greedy pass just built it; EngineOptimal
// always routes scheduleStraightLine through the fast path.
func (o *optSearch) init(s *Scheduler, w *worker, hasCTI bool, cti sparc.Inst) error {
	sc := &w.sc
	n := len(sc.Insts)
	o.n = n
	o.body = sc.Insts
	o.hasCTI = hasCTI
	o.cti = cti
	o.nodes = 0
	o.improved = false
	o.exhausted = false

	if fs, ok := w.p.(*pipe.FastState); ok {
		o.fs = fs
	} else {
		// Reference-oracle schedulers still search over a FastState: the
		// search needs prepared probes and checkpoints, and the two
		// oracles are differentially proven cycle-identical.
		if o.ownFS == nil {
			o.ownFS = pipe.NewFastState(s.model)
		}
		o.fs = o.ownFS
	}

	tab := s.model.Compiled()
	o.nu = len(tab.UnitCounts)
	o.counts = tab.UnitCounts
	o.grow(n)

	// Prepared inputs: the body, then CTI and nop slots for leaf
	// replays. sc.Prep is not reused even when valid — the guard's
	// beforeIdx may still reference its slots, and the reference-oracle
	// path never filled it.
	for i, inst := range o.body {
		p, err := o.fs.Prepare(inst)
		if err != nil {
			return err
		}
		o.prep[i] = p
		o.cycles[i] = int64(p.Group().Cycles)
	}
	if hasCTI {
		p, err := o.fs.Prepare(cti)
		if err != nil {
			return err
		}
		o.prep[n] = p
		o.ctiCycles = int64(p.Group().Cycles)
		p, err = o.fs.Prepare(sparc.NewNop())
		if err != nil {
			return err
		}
		o.prep[n+1] = p
		o.nopCycles = int64(p.Group().Cycles)
		for i, inst := range o.body {
			o.ctiLegal[i] = delaySlotLegal(cti, inst)
		}
	}

	// Successor adjacency with latencies, rebuilt from the scratch's
	// predecessor edges by counting sort. The builder's pair latencies
	// order the greedy ready queue but are not provably sound against
	// the oracle, so each edge's bound latency is re-derived from the
	// prepared register accesses (oracleEdgeLat); the builder's numbers
	// survive only in chain, the child-ordering priority. npred is
	// recomputed from predStart because the greedy pass consumed
	// sc.npred (runFastList decrements it to zero).
	clear(o.succStart)
	ne := len(sc.predTo)
	if cap(o.succTo) < ne {
		o.succTo = make([]int32, ne)
		o.succLat = make([]int32, ne)
	}
	o.succTo = o.succTo[:ne]
	o.succLat = o.succLat[:ne]
	for _, i := range sc.predTo {
		o.succStart[i+1]++
	}
	for i := 0; i < n; i++ {
		o.succStart[i+1] += o.succStart[i]
	}
	cursor := o.best[:n] // free as scratch until the first leaf improves
	copy(cursor, o.succStart[:n])
	for j := 0; j < n; j++ {
		o.npred[j] = sc.predStart[j+1] - sc.predStart[j]
		for e := sc.predStart[j]; e < sc.predStart[j+1]; e++ {
			i := sc.predTo[e]
			o.succTo[cursor[i]] = int32(j)
			o.succLat[cursor[i]] = oracleEdgeLat(&o.prep[i], &o.prep[j])
			cursor[i]++
		}
	}
	copy(o.chain, sc.chain)

	criticalPathsOut(n, o.succStart, o.succTo, o.succLat, o.cycles, o.cpOut)

	// Resource tables from the compiled groups' sparse held-use lists.
	clear(o.unitTot)
	clear(o.unitLast)
	clear(o.demand)
	for i := range o.body {
		cg := &tab.Groups[o.prep[i].Group().ID]
		row := i * o.nu
		for _, e := range cg.NZ {
			o.unitTot[row+e.Unit] += int32(e.Num)
			if last := int32(e.Cycle + 1); last > o.unitLast[row+e.Unit] {
				o.unitLast[row+e.Unit] = last
			}
		}
		for u := 0; u < o.nu; u++ {
			o.demand[u] += int64(o.unitTot[row+u])
		}
	}

	clear(o.earliest)
	for i := range o.scheduled {
		o.scheduled[i] = false
	}
	o.perm = o.perm[:0]
	o.undoNode = o.undoNode[:0]
	o.undoVal = o.undoVal[:0]
	return nil
}

// grow sizes the per-node arrays for a body of n instructions.
func (o *optSearch) grow(n int) {
	if cap(o.prep) < n+2 {
		o.prep = make([]pipe.Prepared, n+2)
		o.cycles = make([]int64, n)
		o.ctiLegal = make([]bool, n)
		o.succStart = make([]int32, n+1)
		o.npred = make([]int32, n)
		o.chain = make([]int32, n)
		o.cpOut = make([]int64, n)
		o.earliest = make([]int64, n)
		o.scheduled = make([]bool, n)
		o.perm = make([]int32, 0, n)
		o.best = make([]int32, n)
		o.snaps = make([]pipe.Checkpoint, n)
		o.cand = make([]int32, n*n)
		o.stallBuf = make([]int64, n*n)
	}
	o.prep = o.prep[:n+2]
	o.cycles = o.cycles[:n]
	o.ctiLegal = o.ctiLegal[:n]
	o.succStart = o.succStart[:n+1]
	o.npred = o.npred[:n]
	o.chain = o.chain[:n]
	o.cpOut = o.cpOut[:n]
	o.earliest = o.earliest[:n]
	o.scheduled = o.scheduled[:n]
	o.best = o.best[:n]
	o.snaps = o.snaps[:n]
	o.cand = o.cand[:n*n]
	o.stallBuf = o.stallBuf[:n*n]
	if cap(o.unitTot) < n*o.nu {
		o.unitTot = make([]int32, n*o.nu)
		o.unitLast = make([]int32, n*o.nu)
	}
	o.unitTot = o.unitTot[:n*o.nu]
	o.unitLast = o.unitLast[:n*o.nu]
	if cap(o.demand) < o.nu {
		o.demand = make([]int64, o.nu)
		o.spanBuf = make([]int64, o.nu)
	}
	o.demand = o.demand[:o.nu]
	o.spanBuf = o.spanBuf[:o.nu]
}

// oracleEdgeLat is a provable lower bound on the issue distance the
// oracle enforces between dependent instructions i → j, derived from
// the same resolved register accesses placeResolved checks: a read of r
// at t_j+rc may not precede i's write availability t_i+wc (RAW), and a
// write's availability must land strictly after the previous write's
// availability (WAW) and after its last read (WAR). Unknown accesses
// (spilled Prepared, big=true) contribute 0 — weaker, still sound.
func oracleEdgeLat(pi, pj *pipe.Prepared) int32 {
	ri, wi := pi.Accesses()
	rj, wj := pj.Accesses()
	var lat int32
	for _, w := range wi {
		for _, r := range rj {
			if w.Reg == r.Reg {
				if l := int32(w.Cycle - r.Cycle); l > lat {
					lat = l
				}
			}
		}
		for _, w2 := range wj {
			if w.Reg == w2.Reg {
				if l := int32(w.Cycle - w2.Cycle + 1); l > lat {
					lat = l
				}
			}
		}
	}
	for _, r := range ri {
		for _, w2 := range wj {
			if r.Reg == w2.Reg {
				if l := int32(r.Cycle - w2.Cycle + 1); l > lat {
					lat = l
				}
			}
		}
	}
	return lat
}

// criticalPathsOut fills cpOut[i] with a lower bound on the cycles from
// i's issue to the end of the block: its own occupancy, or any
// successor chain's latency-weighted length. Dependence edges always
// point forward (i < j), so a single descending pass suffices.
func criticalPathsOut(n int, succStart, succTo, succLat []int32, cycles, cpOut []int64) {
	for i := n - 1; i >= 0; i-- {
		cp := cycles[i]
		for e := succStart[i]; e < succStart[i+1]; e++ {
			if c := int64(succLat[e]) + cpOut[succTo[e]]; c > cp {
				cp = c
			}
		}
		cpOut[i] = cp
	}
}

// resourceFloor bounds the end cycle from unit capacity. All remaining
// usage of unit u lands in [clock, lastIssue+spanU[u]) and each cycle
// provides counts[u] copies, so lastIssue >= clock + ceil(demand/count)
// - span; the last issuer then still occupies the pipeline for at least
// minCyc cycles. Sound because it only ignores constraints (existing
// ring occupancy, register hazards, cross-unit coupling), never invents
// them.
func resourceFloor(clock int64, demand []int64, counts []int32, spanU []int64, minCyc int64) int64 {
	var floor int64
	for u := range demand {
		if demand[u] <= 0 {
			continue
		}
		need := (demand[u] + int64(counts[u]) - 1) / int64(counts[u])
		if v := clock + need - spanU[u] + minCyc; v > floor {
			floor = v
		}
	}
	return floor
}

// lowerBound is the admissible bound on the cheapest completion
// reachable from the current DFS state: the partial cost so far, every
// unscheduled instruction's earliest issue plus its critical path out,
// and the resource floor.
func (o *optSearch) lowerBound(end int64) int64 {
	clock := o.fs.Clock()
	lb := end
	minCyc := int64(1) << 62
	clear(o.spanBuf)
	anyLeft := false
	for i := 0; i < o.n; i++ {
		if o.scheduled[i] {
			continue
		}
		anyLeft = true
		est := o.earliest[i]
		if clock > est {
			est = clock
		}
		if v := est + o.cpOut[i]; v > lb {
			lb = v
		}
		if o.cycles[i] < minCyc {
			minCyc = o.cycles[i]
		}
		row := i * o.nu
		for u := 0; u < o.nu; u++ {
			if s := int64(o.unitLast[row+u]); s > o.spanBuf[u] {
				o.spanBuf[u] = s
			}
		}
	}
	if !anyLeft {
		return lb
	}
	if v := resourceFloor(clock, o.demand, o.counts, o.spanBuf, minCyc); v > lb {
		lb = v
	}
	return lb
}

// dfs explores every dependence-respecting completion of the current
// prefix whose bound beats the incumbent. end is the partial sequence
// cost so far. The oracle state on entry reflects the prefix; dfs
// leaves it in an arbitrary state (each level restores from its own
// checkpoint before trying the next sibling, and callers do the same).
func (o *optSearch) dfs(depth int, end int64) error {
	if depth == o.n {
		cost := end
		if o.hasCTI {
			c, err := o.ctiLeafCost()
			if err != nil {
				return err
			}
			cost = c
		}
		if cost < o.incumbent {
			o.incumbent = cost
			o.improved = true
			copy(o.best, o.perm)
		}
		return nil
	}

	// Collect ready candidates, pruning dominated duplicates: identical
	// instruction values with identical successor edges are
	// interchangeable (the oracle treats equal instructions equally, and
	// equal edges mean equal effects on the rest of the block), so only
	// the lowest-index one is expanded.
	cand := o.cand[depth*o.n : depth*o.n : (depth+1)*o.n]
	for i := int32(0); i < int32(o.n); i++ {
		if o.scheduled[i] || o.npred[i] != 0 {
			continue
		}
		dominated := false
		for _, d := range cand {
			if o.body[d] == o.body[i] && o.sameSuccs(d, i) {
				dominated = true
				break
			}
		}
		if !dominated {
			cand = append(cand, i)
		}
	}

	// Order children greedily (fewest stalls, longest chain, lowest
	// index) so the first descent retraces the greedy schedule and the
	// incumbent tightens as early as possible. Probes are ordering hints
	// only; correctness never depends on them.
	keys := o.stallBuf[depth*o.n : depth*o.n+len(cand)]
	for k, c := range cand {
		st, err := o.fs.StallsPrepared(&o.prep[c], o.body[c])
		if err != nil {
			return err
		}
		keys[k] = int64(st)
	}
	for a := 1; a < len(cand); a++ {
		c, kc := cand[a], keys[a]
		b := a - 1
		for b >= 0 && o.childLess(kc, c, keys[b], cand[b]) {
			cand[b+1], keys[b+1] = cand[b], keys[b]
			b--
		}
		cand[b+1], keys[b+1] = c, kc
	}

	snap := &o.snaps[depth]
	o.fs.Save(snap)
	undoMark := len(o.undoNode)
	for _, c := range cand {
		if o.exhausted {
			return nil
		}
		o.nodes++
		if o.nodes > o.budget {
			o.exhausted = true
			return nil
		}
		_, issue, err := o.fs.IssuePrepared(&o.prep[c], o.body[c])
		if err != nil {
			return err
		}
		newEnd := end
		if e := issue + o.cycles[c]; e > newEnd {
			newEnd = e
		}
		o.scheduled[c] = true
		o.perm = append(o.perm, c)
		row := int(c) * o.nu
		for u := 0; u < o.nu; u++ {
			o.demand[u] -= int64(o.unitTot[row+u])
		}
		for e := o.succStart[c]; e < o.succStart[c+1]; e++ {
			j := o.succTo[e]
			o.npred[j]--
			if t := issue + int64(o.succLat[e]); t > o.earliest[j] {
				o.undoNode = append(o.undoNode, j)
				o.undoVal = append(o.undoVal, o.earliest[j])
				o.earliest[j] = t
			}
		}

		// Strict-improvement pruning (lb >= incumbent cuts) keeps the
		// first-found optimum, so ties resolve toward the greedy order
		// and the emitted schedule is deterministic.
		if o.lowerBound(newEnd) < o.incumbent {
			if err := o.dfs(depth+1, newEnd); err != nil {
				return err
			}
		}

		// Backtrack.
		for len(o.undoNode) > undoMark {
			last := len(o.undoNode) - 1
			o.earliest[o.undoNode[last]] = o.undoVal[last]
			o.undoNode = o.undoNode[:last]
			o.undoVal = o.undoVal[:last]
		}
		for e := o.succStart[c]; e < o.succStart[c+1]; e++ {
			o.npred[o.succTo[e]]++
		}
		for u := 0; u < o.nu; u++ {
			o.demand[u] += int64(o.unitTot[row+u])
		}
		o.perm = o.perm[:depth]
		o.scheduled[c] = false
		o.fs.Restore(snap)
	}
	return nil
}

// childLess orders candidate a (key ka) before b by the greedy
// priority: fewest stalls, then longest chain, then lowest original
// index. ChainFirst is deliberately ignored — child order affects only
// how fast the incumbent tightens, never which schedule is optimal.
func (o *optSearch) childLess(ka int64, a int32, kb int64, b int32) bool {
	if ka != kb {
		return ka < kb
	}
	if o.chain[a] != o.chain[b] {
		return o.chain[a] > o.chain[b]
	}
	return a < b
}

// sameSuccs reports whether nodes a and b have identical successor edge
// lists (targets and latencies). Edges are emitted in ascending target
// order, so positional equality is set equality.
func (o *optSearch) sameSuccs(a, b int32) bool {
	la, ra := o.succStart[a], o.succStart[a+1]
	lb, rb := o.succStart[b], o.succStart[b+1]
	if ra-la != rb-lb {
		return false
	}
	for k := int32(0); k < ra-la; k++ {
		if o.succTo[la+k] != o.succTo[lb+k] || o.succLat[la+k] != o.succLat[lb+k] {
			return false
		}
	}
	return true
}

// ctiLeafCost prices a complete body permutation as the block will
// actually be emitted: CTI reinserted second-to-last, delay slot
// refilled with the last scheduled instruction when legal, a nop
// otherwise — exactly scheduleBlockRaw's policy. The oracle state is
// consumed (Reset, then a full replay); the caller restores from its
// checkpoint.
func (o *optSearch) ctiLeafCost() (int64, error) {
	o.fs.Reset()
	var end int64
	n := o.n
	last := o.perm[n-1]
	refill := o.ctiLegal[last]
	bodyEnd := n
	if refill {
		bodyEnd = n - 1
	}
	issueSlot := func(slot int32, inst sparc.Inst, cyc int64) error {
		_, issue, err := o.fs.IssuePrepared(&o.prep[slot], inst)
		if err != nil {
			return err
		}
		if e := issue + cyc; e > end {
			end = e
		}
		return nil
	}
	for _, i := range o.perm[:bodyEnd] {
		if err := issueSlot(i, o.body[i], o.cycles[i]); err != nil {
			return 0, err
		}
	}
	if err := issueSlot(int32(n), o.cti, o.ctiCycles); err != nil {
		return 0, err
	}
	if refill {
		if err := issueSlot(last, o.body[last], o.cycles[last]); err != nil {
			return 0, err
		}
	} else {
		if err := issueSlot(int32(n+1), sparc.NewNop(), o.nopCycles); err != nil {
			return 0, err
		}
	}
	return end, nil
}
