package core

import (
	"strconv"

	"eel/internal/obs"
)

// phaseTimes accumulates one worker's per-phase scheduling wall time for
// a batch that carries a request trace (ScheduleBlocksCtx). Workers
// accumulate plain int64s locally — the same shard-then-merge pattern as
// telShard — and the batch merges them into aggregate spans once the
// last worker is done. With no trace, worker.tt is nil and every timing
// site is a single pointer test.
type phaseTimes struct {
	depgraphNs int64 // dependence-graph build (prepare + buildDepGraph / buildDAG + pass 1)
	readyNs    int64 // ready-list issue loop (runFastList / reference pass 2)
	ctiNs      int64 // CTI extraction, delay-slot refill, re-pricing
	cacheNs    int64 // schedule-cache lookups
	lookups    int64
	hits       int64
}

func (t *phaseTimes) merge(o *phaseTimes) {
	t.depgraphNs += o.depgraphNs
	t.readyNs += o.readyNs
	t.ctiNs += o.ctiNs
	t.cacheNs += o.cacheNs
	t.lookups += o.lookups
	t.hits += o.hits
}

// emitPhaseSpans records the batch's per-phase aggregates as child spans
// of parent on tr. Durations are CPU time summed across workers (noted
// agg=cpu), so with several workers a span can exceed the batch's wall
// interval — they attribute work, not wall time, which is why they hang
// under a parent span rather than at top level.
func emitPhaseSpans(tr *obs.Trace, parent int32, startNs int64, agg *phaseTimes, workers int) {
	if tr == nil || agg == nil {
		return
	}
	notes := []string{"agg=cpu", "workers=" + strconv.Itoa(workers)}
	if agg.depgraphNs > 0 {
		tr.AddSpan("sched.depgraph", parent, startNs, agg.depgraphNs, notes...)
	}
	if agg.readyNs > 0 {
		tr.AddSpan("sched.ready", parent, startNs, agg.readyNs, notes...)
	}
	if agg.ctiNs > 0 {
		tr.AddSpan("sched.cti", parent, startNs, agg.ctiNs, notes...)
	}
	if agg.lookups > 0 {
		hn := append(append([]string(nil), notes...),
			"hits="+strconv.FormatInt(agg.hits, 10)+"/"+strconv.FormatInt(agg.lookups, 10))
		tr.AddSpan("cache.lookup", parent, startNs, agg.cacheNs, hn...)
	}
}
