// Package workload generates synthetic SPEC95-like benchmark executables.
//
// The paper evaluates on the SPEC95 binaries compiled by the Sun compilers;
// those binaries (and SPARC hardware to run them) are unavailable, so this
// package builds the closest synthetic equivalent: for each of the 18
// benchmarks, a SPARC V8 program calibrated to the benchmark's *dynamic
// average basic-block size* from the paper's tables and to its integer vs.
// floating-point character — the two properties the paper's analysis
// says drive the results ("the integer programs execute many small basic
// blocks ... so there is little opportunity to schedule added
// instrumentation"). Generated code is pre-scheduled against the hardware
// model (grouping rules included), standing in for the Sun compilers'
// "-fast -xO4" optimization, which is what makes EEL's simpler model
// de-schedule FP code in Table 1.
package workload

import "eel/internal/spawn"

// Benchmark describes one synthetic SPEC95 stand-in.
type Benchmark struct {
	Name string
	FP   bool
	// AvgBlockSize is the target dynamic average basic-block size in
	// instructions (the paper's "Avg. BB Size" column).
	AvgBlockSize float64
	// Kernels is the number of distinct leaf procedures, controlling the
	// static text size (and so instruction-cache pressure).
	Kernels int
	// Inner is the iteration count of each kernel's inner loop per call.
	Inner int
}

// ultraSizes and superSizes are the paper's per-benchmark dynamic block
// sizes (Tables 1/2 vs Table 3 — the two compilations differ slightly).
var ultraSizes = map[string]float64{
	"099.go": 2.9, "124.m88ksim": 2.2, "126.gcc": 2.2, "129.compress": 3.0,
	"130.li": 2.0, "132.ijpeg": 6.2, "134.perl": 2.4, "147.vortex": 2.1,
	"101.tomcatv": 13.8, "102.swim": 49.0, "103.su2cor": 10.2,
	"104.hydro2d": 4.7, "107.mgrid": 32.4, "110.applu": 12.5,
	"125.turb3d": 6.1, "141.apsi": 10.4, "145.fpppp": 33.9, "146.wave5": 10.9,
}

var superSizes = map[string]float64{
	"099.go": 2.8, "124.m88ksim": 2.3, "126.gcc": 2.2, "129.compress": 3.0,
	"130.li": 2.0, "132.ijpeg": 6.4, "134.perl": 2.3, "147.vortex": 2.1,
	"101.tomcatv": 11.4, "102.swim": 66.1, "103.su2cor": 10.1,
	"104.hydro2d": 4.4, "107.mgrid": 46.9, "110.applu": 9.3,
	"125.turb3d": 5.7, "141.apsi": 11.8, "145.fpppp": 28.2, "146.wave5": 13.3,
}

// kernel/static-size character per benchmark: large codes (gcc, go,
// vortex, perl) get many kernels so instrumentation-driven text growth
// produces instruction-cache pressure; small kernels (compress, the dense
// FP loops) stay cache-resident.
var shape = map[string]struct {
	kernels int
	inner   int
}{
	"099.go":       {28, 40},
	"124.m88ksim":  {14, 60},
	"126.gcc":      {40, 30},
	"129.compress": {6, 120},
	"130.li":       {12, 70},
	"132.ijpeg":    {8, 100},
	"134.perl":     {24, 40},
	"147.vortex":   {36, 30},
	"101.tomcatv":  {6, 80},
	"102.swim":     {4, 60},
	"103.su2cor":   {6, 80},
	"104.hydro2d":  {8, 90},
	"107.mgrid":    {4, 70},
	"110.applu":    {6, 80},
	"125.turb3d":   {8, 90},
	"141.apsi":     {8, 80},
	"145.fpppp":    {4, 60},
	"146.wave5":    {6, 80},
}

// intNames and fpNames list the suites in the paper's table order.
var intNames = []string{
	"099.go", "124.m88ksim", "126.gcc", "129.compress",
	"130.li", "132.ijpeg", "134.perl", "147.vortex",
}

var fpNames = []string{
	"101.tomcatv", "102.swim", "103.su2cor", "104.hydro2d", "107.mgrid",
	"110.applu", "125.turb3d", "141.apsi", "145.fpppp", "146.wave5",
}

// IntSuite returns the CINT95 stand-ins for a machine's compilation.
func IntSuite(machine spawn.Machine) []Benchmark {
	return suite(intNames, false, machine)
}

// FPSuite returns the CFP95 stand-ins.
func FPSuite(machine spawn.Machine) []Benchmark {
	return suite(fpNames, true, machine)
}

// Suite returns all 18 benchmarks in table order.
func Suite(machine spawn.Machine) []Benchmark {
	return append(IntSuite(machine), FPSuite(machine)...)
}

func suite(names []string, fp bool, machine spawn.Machine) []Benchmark {
	sizes := ultraSizes
	if machine == spawn.SuperSPARC {
		sizes = superSizes
	}
	out := make([]Benchmark, 0, len(names))
	for _, n := range names {
		sh := shape[n]
		out = append(out, Benchmark{
			Name:         n,
			FP:           fp,
			AvgBlockSize: sizes[n],
			Kernels:      sh.kernels,
			Inner:        sh.inner,
		})
	}
	return out
}

// ByName returns one benchmark's descriptor.
func ByName(name string, machine spawn.Machine) (Benchmark, bool) {
	for _, b := range Suite(machine) {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
