package workload

import (
	"bytes"
	"math"
	"testing"

	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func TestSuiteShape(t *testing.T) {
	s := Suite(spawn.UltraSPARC)
	if len(s) != 18 {
		t.Fatalf("suite has %d benchmarks, want 18", len(s))
	}
	if len(IntSuite(spawn.UltraSPARC)) != 8 || len(FPSuite(spawn.UltraSPARC)) != 10 {
		t.Error("suite split wrong")
	}
	for _, b := range s {
		if b.AvgBlockSize < 1.5 || b.Kernels <= 0 || b.Inner <= 0 {
			t.Errorf("%s: bad descriptor %+v", b.Name, b)
		}
	}
	// The compilations differ: swim's block size is larger on SuperSPARC.
	u, _ := ByName("102.swim", spawn.UltraSPARC)
	sp, _ := ByName("102.swim", spawn.SuperSPARC)
	if u.AvgBlockSize != 49.0 || sp.AvgBlockSize != 66.1 {
		t.Errorf("swim sizes: ultra %.1f super %.1f", u.AvgBlockSize, sp.AvgBlockSize)
	}
	if _, ok := ByName("nope", spawn.UltraSPARC); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestGenerateRunsAndHalts(t *testing.T) {
	for _, name := range []string{"130.li", "129.compress", "102.swim", "104.hydro2d"} {
		b, ok := ByName(name, spawn.UltraSPARC)
		if !ok {
			t.Fatal(name)
		}
		x, err := Generate(b, Config{DynamicInsts: 150_000, SkipCalibration: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in, err := sim.NewInterp(x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := in.Run(3_000_000, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Halted {
			t.Errorf("%s: did not halt", name)
		}
		if res.Steps < 50_000 {
			t.Errorf("%s: suspiciously short run: %d steps", name, res.Steps)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b, _ := ByName("130.li", spawn.UltraSPARC)
	cfg := Config{DynamicInsts: 100_000, Seed: 5, SkipCalibration: true}
	x1, err := Generate(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Generate(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x1.Marshal(), x2.Marshal()) {
		t.Error("generation is not deterministic")
	}
	x3, err := Generate(b, Config{DynamicInsts: 100_000, Seed: 6, SkipCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(x1.Marshal(), x3.Marshal()) {
		t.Error("different seeds produced identical programs")
	}
}

func TestCalibratedBlockSizes(t *testing.T) {
	// Calibration must land the measured dynamic block size near the
	// paper's column for a representative mix of benchmarks.
	for _, name := range []string{"130.li", "099.go", "132.ijpeg", "101.tomcatv", "102.swim"} {
		b, ok := ByName(name, spawn.UltraSPARC)
		if !ok {
			t.Fatal(name)
		}
		x, err := Generate(b, Config{DynamicInsts: 300_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := MeasureAvgBlockSize(x, 250_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tol := 0.15
		if rel := math.Abs(got-b.AvgBlockSize) / b.AvgBlockSize; rel > tol {
			t.Errorf("%s: measured block size %.2f, want %.1f (±%.0f%%)",
				name, got, b.AvgBlockSize, tol*100)
		}
	}
}

func TestFPContent(t *testing.T) {
	b, _ := ByName("102.swim", spawn.UltraSPARC)
	x, err := Generate(b, Config{DynamicInsts: 100_000, SkipCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	insts, err := sparc.DecodeAll(x.Text)
	if err != nil {
		t.Fatal(err)
	}
	fp, intish := 0, 0
	for _, inst := range insts {
		if inst.Op.IsFP() {
			fp++
		} else {
			intish++
		}
	}
	if fp == 0 || float64(fp)/float64(fp+intish) < 0.3 {
		t.Errorf("fp benchmark has %d fp of %d instructions", fp, fp+intish)
	}

	ib, _ := ByName("130.li", spawn.UltraSPARC)
	ix, err := Generate(ib, Config{DynamicInsts: 100_000, SkipCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	iinsts, err := sparc.DecodeAll(ix.Text)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range iinsts {
		if inst.Op.IsFP() {
			t.Fatalf("integer benchmark contains fp instruction %v", inst)
		}
	}
}

func TestReservedRegistersUntouched(t *testing.T) {
	// Generated code must never write %g6/%g7 (QPT's scratch registers)
	// or the base registers.
	b, _ := ByName("126.gcc", spawn.UltraSPARC)
	x, err := Generate(b, Config{DynamicInsts: 100_000, SkipCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	insts, err := sparc.DecodeAll(x.Text)
	if err != nil {
		t.Fatal(err)
	}
	reserved := map[sparc.Reg]bool{
		sparc.G6: true, sparc.G7: true, sparc.SP: true,
	}
	for i, inst := range insts {
		for _, d := range inst.Defs(nil) {
			if reserved[d] {
				t.Fatalf("instruction %d (%v) writes reserved register %s", i, inst, d)
			}
		}
	}
}

func TestPrescheduleAblation(t *testing.T) {
	b, _ := ByName("101.tomcatv", spawn.UltraSPARC)
	raw, err := Generate(b, Config{DynamicInsts: 100_000, SkipCalibration: true, SkipPreschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Generate(b, Config{DynamicInsts: 100_000, SkipCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	model := spawn.MustLoad(spawn.UltraSPARC)
	cfg := sim.DefaultTiming(spawn.UltraSPARC)
	_, rawT, _, err := sim.RunMeasured(raw, model, cfg, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	_, optT, _, err := sim.RunMeasured(opt, model, cfg, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// The compiled (pre-scheduled) version must not be slower per
	// instruction; it usually wins noticeably on FP code.
	rawCPI := float64(rawT.Cycles()) / float64(rawT.Instructions())
	optCPI := float64(optT.Cycles()) / float64(optT.Instructions())
	if optCPI > rawCPI*1.02 {
		t.Errorf("prescheduling hurt: CPI %.3f -> %.3f", rawCPI, optCPI)
	}
}

func TestMeasureAvgBlockSizeErrors(t *testing.T) {
	b, _ := ByName("130.li", spawn.UltraSPARC)
	x, err := Generate(b, Config{DynamicInsts: 50_000, SkipCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny cap still yields a measurement.
	if _, err := MeasureAvgBlockSize(x, 1_000); err != nil {
		t.Errorf("capped measurement failed: %v", err)
	}
}
