package workload

import (
	"eel/internal/core"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// compilerScheduler stands in for the Sun compilers' "-fast -xO4"
// instruction scheduler: where EEL runs one greedy list-scheduling pass
// against its SADL model, the compiler tries several schedules — both
// priority functions of the greedy scheduler plus the original order —
// evaluates each against the *hardware* model (grouping rules included),
// and keeps the fastest. EEL's later rescheduling pass, blind to the
// hardware rules and armed with a single heuristic, partially undoes this
// work: the paper's Table 1 de-scheduling effect.
type compilerScheduler struct {
	model      *spawn.Model
	rules      sim.Rules
	candidates []*core.Scheduler
}

func newCompilerScheduler(model *spawn.Model, rules sim.Rules) *compilerScheduler {
	mk := func(opts core.Options) *core.Scheduler {
		return core.NewWith(sim.NewHWPipeline(model, rules), model, opts)
	}
	return &compilerScheduler{
		model: model,
		rules: rules,
		candidates: []*core.Scheduler{
			mk(core.Options{}),
			mk(core.Options{ChainFirst: true}),
		},
	}
}

// ScheduleBlock returns the best candidate schedule by measured cycles on
// the hardware model; the original order competes too.
func (c *compilerScheduler) ScheduleBlock(block []sparc.Inst) ([]sparc.Inst, error) {
	best := block
	bestCost, err := c.cost(block)
	if err != nil {
		return nil, err
	}
	for _, sched := range c.candidates {
		cand, err := sched.ScheduleBlock(block)
		if err != nil {
			return nil, err
		}
		cost, err := c.cost(cand)
		if err != nil {
			return nil, err
		}
		// Prefer shorter blocks on ties (dropped delay-slot nops).
		if cost < bestCost || (cost == bestCost && len(cand) < len(best)) {
			best, bestCost = cand, cost
		}
	}
	return best, nil
}

// cost measures a block on a fresh hardware pipeline: the issue cycle of
// the last instruction.
func (c *compilerScheduler) cost(block []sparc.Inst) (int64, error) {
	p := sim.NewHWPipeline(c.model, c.rules)
	var last int64
	for _, inst := range block {
		_, t, err := p.Issue(inst)
		if err != nil {
			return 0, err
		}
		last = t
	}
	return last, nil
}
