package workload

import (
	"fmt"
	"math/rand"

	"eel/internal/sparc"
)

// RandomBlock returns n straight-line content instructions drawn from the
// same generator that fills the synthetic benchmarks (realistic dependence
// chains, loads/stores/ALU mix; fp selects the CFP95-style mix). It exists
// for the differential stall-oracle fuzzer and the scheduler invariant
// tests, which need a stream of random-but-legal basic blocks without
// building a whole executable.
func RandomBlock(rng *rand.Rand, n int, fp bool) []sparc.Inst {
	a := sparc.NewAssembler()
	g := &contentGen{fp: fp, rng: rng}
	g.emit(a, n)
	insts, err := a.Finish()
	if err != nil {
		// Straight-line content references no labels, so Finish cannot
		// fail; a failure here is a generator bug worth crashing on.
		panic(fmt.Sprintf("workload: RandomBlock: %v", err))
	}
	return insts
}
