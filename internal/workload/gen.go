package workload

import (
	"fmt"
	"math"
	"math/rand"

	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Config tunes generation.
type Config struct {
	Machine spawn.Machine
	// DynamicInsts is the approximate dynamic length of a full run.
	DynamicInsts uint64
	// Seed makes generation deterministic; the benchmark name is mixed in.
	Seed int64
	// SkipPreschedule emits the raw generated code without the
	// vendor-compiler-equivalent scheduling pass (ablation).
	SkipPreschedule bool
	// SkipCalibration disables the measure-and-adjust pass for the
	// dynamic block-size target (faster; used by small tests).
	SkipCalibration bool
}

func (c Config) withDefaults() Config {
	if c.Machine == "" {
		c.Machine = spawn.UltraSPARC
	}
	if c.DynamicInsts == 0 {
		c.DynamicInsts = 1 << 20
	}
	return c
}

// Data segment layout of generated programs.
const (
	fpArrayOff  = 0x0000 // 4 KiB of doubles
	intArrayOff = 0x1000 // 1 KiB of words
	storeOff    = 0x2000 // 4 KiB scratch for stores
	dataSize    = 0x3000
)

// Base registers established by the prologue and reserved thereafter.
const (
	fpBase    = sparc.O0
	intBase   = sparc.O1
	storeBase = sparc.O2
)

// innerCounter and its parity drive loop control and branch outcomes;
// they are reserved too, as are %g5/%g6/%g7 (claimed by the QPT profiling
// and tracing instrumentation).
const innerCounter = sparc.L7

// intPool is the register pool for generated integer content.
var intPool = []sparc.Reg{
	sparc.G1, sparc.G2, sparc.G3, sparc.G4,
	sparc.O3, sparc.O4, sparc.O5,
	sparc.L0, sparc.L1, sparc.L2, sparc.L3, sparc.L4, sparc.L5,
	sparc.I1, sparc.I2, sparc.I3, sparc.I4, sparc.I5,
}

// Generate builds the synthetic benchmark executable: generated kernels,
// then (unless disabled) a pre-scheduling pass against the machine's
// *hardware* model — the stand-in for the Sun compilers' optimizer. The
// result is calibrated so its measured dynamic average block size tracks
// Benchmark.AvgBlockSize.
func Generate(b Benchmark, cfg Config) (*exe.Exe, error) {
	cfg = cfg.withDefaults()
	target := b.AvgBlockSize
	aim := target
	var out *exe.Exe
	var err error
	rounds := 3
	if cfg.SkipCalibration {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		out, err = generateOnce(b, cfg, aim)
		if err != nil {
			return nil, err
		}
		if round == rounds-1 {
			break
		}
		measured, merr := MeasureAvgBlockSize(out, 200_000)
		if merr != nil {
			return nil, merr
		}
		if math.Abs(measured-target)/target < 0.03 {
			break
		}
		aim *= target / measured
		if aim < 2 {
			aim = 2
		}
	}
	return out, nil
}

// generateOnce emits one executable aiming at dynamic block size m.
func generateOnce(b Benchmark, cfg Config, m float64) (*exe.Exe, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(hashName(b.Name))))
	a := sparc.NewAssembler()

	// Estimate per-iteration cost to size the outer loop.
	instsPerIter, _ := planShape(m)
	perCall := float64(b.Inner)*instsPerIter + 6
	perOuter := float64(b.Kernels)*(perCall+2) + 4
	outer := int(float64(cfg.DynamicInsts)/perOuter) + 1

	// Prologue: establish base registers and the outer counter.
	emitSet(a, uint32(exe.DefaultDataBase+fpArrayOff), fpBase)
	emitSet(a, uint32(exe.DefaultDataBase+intArrayOff), intBase)
	emitSet(a, uint32(exe.DefaultDataBase+storeOff), storeBase)
	emitSet(a, uint32(outer), sparc.I0)

	a.Label("outer")
	for k := 0; k < b.Kernels; k++ {
		a.EmitCall(fmt.Sprintf("k%d", k))
		a.Emit(sparc.NewNop())
	}
	a.Emit(sparc.NewALUImm(sparc.OpSubcc, sparc.I0, sparc.I0, 1))
	a.EmitBranch(sparc.CondNE, "outer")
	a.Emit(sparc.NewNop())
	a.Emit(sparc.NewTrap(0))

	for k := 0; k < b.Kernels; k++ {
		genKernel(a, b, k, m, rng)
	}

	insts, err := a.Finish()
	if err != nil {
		return nil, err
	}

	x := exe.New()
	x.Text = make([]uint32, len(insts))
	for i, inst := range insts {
		w, err := sparc.Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("workload: %s instruction %d (%v): %w", b.Name, i, inst, err)
		}
		x.Text[i] = w
	}
	x.Data = initialData()
	x.AddSymbol("main", x.TextBase, true)

	if cfg.SkipPreschedule {
		return x, nil
	}
	// "Compile" the program: schedule every block against the hardware
	// model (grouping rules included), like the Sun optimizer did.
	model, err := spawn.Load(cfg.Machine)
	if err != nil {
		return nil, err
	}
	ed, err := eel.Open(x)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", b.Name, err)
	}
	return ed.Edit(nil, eel.Options{
		Machine:   model,
		Schedule:  true,
		Scheduler: newCompilerScheduler(model, sim.MachineRules(cfg.Machine)),
	})
}

// planShape returns the expected instructions per inner iteration and the
// echo-block count for the branchy plan (0 for the big-block plan).
func planShape(m float64) (instsPerIter float64, echoes int) {
	if m >= 4.5 {
		return m, 0
	}
	// Branchy plan: head(3+padA) + arm(avg 1.75+armPad) + 2*nE + tail(3+padD).
	bestN, bestErr := 0, math.Inf(1)
	for nE := 0; nE <= 10; nE++ {
		pad := m*float64(nE+3) - 7.75 - 2*float64(nE)
		if pad < 0 {
			pad = 0
		}
		mean := (7.75 + 2*float64(nE) + pad) / float64(nE+3)
		if e := math.Abs(mean - m); e < bestErr {
			bestErr, bestN = e, nE
		}
	}
	pad := m*float64(bestN+3) - 7.75 - 2*float64(bestN)
	if pad < 0 {
		pad = 0
	}
	return 7.75 + 2*float64(bestN) + pad, bestN
}

// genKernel emits one leaf procedure.
func genKernel(a *sparc.Assembler, b Benchmark, k int, m float64, rng *rand.Rand) {
	name := fmt.Sprintf("k%d", k)
	loop := name + "_loop"
	a.Label(name)
	emitSet(a, uint32(b.Inner), innerCounter)
	a.Label(loop)

	g := &contentGen{fp: b.FP, rng: rng}
	if m >= 4.5 {
		// One big block per iteration: content then loop control.
		n := int(m + 0.5)
		g.emit(a, n-3)
	} else {
		_, nE := planShape(m)
		padTotal := m*float64(nE+3) - 7.75 - 2*float64(nE)
		if padTotal < 0 {
			padTotal = 0
		}
		// Distribute padding across head, arms and tail.
		padA := int(padTotal/3 + 0.5)
		padArm := int(padTotal/3 + 0.5)
		padD := int(padTotal) - padA - padArm
		if padD < 0 {
			padD = 0
		}

		elseL := fmt.Sprintf("%s_else", name)
		joinL := fmt.Sprintf("%s_join", name)

		// Head block: content, phase test, branch. Comparing the loop
		// counter against the midpoint makes the outcome constant within
		// each half of the loop — predictable, like real branches.
		g.emit(a, padA)
		a.Emit(sparc.NewALUImm(sparc.OpSubcc, sparc.G0, innerCounter, int32(b.Inner/2)))
		a.EmitBranch(sparc.CondLEU, elseL)
		a.Emit(sparc.NewNop())
		// Then arm.
		g.emit(a, padArm)
		a.EmitBranch(sparc.CondA, joinL)
		a.Emit(sparc.NewNop())
		// Else arm (falls through to join).
		a.Label(elseL)
		g.emit(a, padArm+1)
		// Echo blocks: conditional branches whose target is also the
		// fallthrough — pure block boundaries, as in branchy integer code.
		a.Label(joinL)
		for e := 0; e < nE; e++ {
			el := fmt.Sprintf("%s_e%d", name, e)
			a.EmitBranch(sparc.CondNE, el)
			a.Emit(sparc.NewNop())
			a.Label(el)
		}
		// Tail content before loop control.
		g.emit(a, padD)
	}

	a.Emit(sparc.NewALUImm(sparc.OpSubcc, innerCounter, innerCounter, 1))
	a.EmitBranch(sparc.CondNE, loop)
	a.Emit(sparc.NewNop())
	a.Emit(sparc.NewJmpl(sparc.G0, sparc.O7, 8)) // retl
	a.Emit(sparc.NewNop())
}

// contentGen emits straight-line filler with realistic dependence chains.
type contentGen struct {
	fp  bool
	rng *rand.Rand
	// recent destination registers, for building chains.
	recentInt []sparc.Reg
	recentFP  []int // even double register numbers
}

func (g *contentGen) intReg() sparc.Reg {
	return intPool[g.rng.Intn(len(intPool))]
}

// srcInt picks a source: usually a recently-written register (a chain),
// sometimes a fresh one.
func (g *contentGen) srcInt() sparc.Reg {
	if len(g.recentInt) > 0 && g.rng.Float64() < 0.55 {
		return g.recentInt[g.rng.Intn(len(g.recentInt))]
	}
	return g.intReg()
}

func (g *contentGen) noteInt(r sparc.Reg) {
	g.recentInt = append(g.recentInt, r)
	if len(g.recentInt) > 4 {
		g.recentInt = g.recentInt[1:]
	}
}

func (g *contentGen) fpDst() int { return 2 * g.rng.Intn(16) }

func (g *contentGen) srcFP() int {
	if len(g.recentFP) > 0 && g.rng.Float64() < 0.4 {
		return g.recentFP[g.rng.Intn(len(g.recentFP))]
	}
	return g.fpDst()
}

func (g *contentGen) noteFP(n int) {
	g.recentFP = append(g.recentFP, n)
	if len(g.recentFP) > 6 {
		g.recentFP = g.recentFP[1:]
	}
}

var intOps = []sparc.Op{
	sparc.OpAdd, sparc.OpSub, sparc.OpAnd, sparc.OpOr, sparc.OpXor,
}

// emit appends n content instructions.
func (g *contentGen) emit(a *sparc.Assembler, n int) {
	for i := 0; i < n; i++ {
		if g.fp {
			g.emitFP(a)
		} else {
			g.emitInt(a)
		}
	}
}

func (g *contentGen) emitInt(a *sparc.Assembler) {
	switch r := g.rng.Float64(); {
	case r < 0.25: // load
		rd := g.intReg()
		a.Emit(sparc.NewLoad(sparc.OpLd, rd, intBase, int32(4*g.rng.Intn(256))))
		g.noteInt(rd)
	case r < 0.37: // store
		a.Emit(sparc.NewStore(sparc.OpSt, g.srcInt(), storeBase, int32(4*g.rng.Intn(256))))
	case r < 0.45: // address/constant formation
		rd := g.intReg()
		a.Emit(sparc.NewSethi(rd, int32(g.rng.Intn(1<<22))))
		g.noteInt(rd)
	case r < 0.55: // shift
		rd := g.intReg()
		op := sparc.OpSll
		if g.rng.Intn(2) == 0 {
			op = sparc.OpSra
		}
		a.Emit(sparc.NewALUImm(op, rd, g.srcInt(), int32(1+g.rng.Intn(7))))
		g.noteInt(rd)
	default: // ALU
		rd := g.intReg()
		op := intOps[g.rng.Intn(len(intOps))]
		if g.rng.Intn(2) == 0 {
			a.Emit(sparc.NewALUImm(op, rd, g.srcInt(), int32(g.rng.Intn(1024))))
		} else {
			a.Emit(sparc.NewALU(op, rd, g.srcInt(), g.srcInt()))
		}
		g.noteInt(rd)
	}
}

func (g *contentGen) emitFP(a *sparc.Assembler) {
	switch r := g.rng.Float64(); {
	case r < 0.40: // array load — SPEC FP loops are memory bound
		rd := g.fpDst()
		a.Emit(sparc.NewLoad(sparc.OpLddf, sparc.FReg(rd), fpBase, int32(8*g.rng.Intn(128))))
		g.noteFP(rd)
	case r < 0.56: // array store
		a.Emit(sparc.NewStore(sparc.OpStdf, sparc.FReg(g.srcFP()), storeBase, int32(8*g.rng.Intn(128))))
	case r < 0.60: // index arithmetic on the integer side
		rd := g.intReg()
		a.Emit(sparc.NewALUImm(sparc.OpAdd, rd, g.srcInt(), int32(g.rng.Intn(64))))
		g.noteInt(rd)
	case r < 0.72: // multiply
		rd := g.fpDst()
		a.Emit(sparc.NewALU(sparc.OpFmuld, sparc.FReg(rd), sparc.FReg(g.srcFP()), sparc.FReg(g.srcFP())))
		g.noteFP(rd)
	default: // add/sub
		rd := g.fpDst()
		op := sparc.OpFaddd
		if g.rng.Intn(3) == 0 {
			op = sparc.OpFsubd
		}
		a.Emit(sparc.NewALU(op, sparc.FReg(rd), sparc.FReg(g.srcFP()), sparc.FReg(g.srcFP())))
		g.noteFP(rd)
	}
}

// emitSet materializes a 32-bit constant.
func emitSet(a *sparc.Assembler, v uint32, rd sparc.Reg) {
	if int32(v) >= -(1<<12) && int32(v) < 1<<12 {
		a.Emit(sparc.NewALUImm(sparc.OpOr, rd, sparc.G0, int32(v)))
		return
	}
	a.Emit(sparc.NewSethi(rd, int32(v>>10)))
	if low := v & 0x3ff; low != 0 {
		a.Emit(sparc.NewALUImm(sparc.OpOr, rd, rd, int32(low)))
	}
}

// initialData fills the data segment: doubles in [1,2) for the fp array,
// small words for the integer array.
func initialData() []byte {
	data := make([]byte, dataSize)
	for i := 0; i < 512; i++ {
		bits := math.Float64bits(1.0 + float64(i)/512.0)
		for b := 0; b < 8; b++ {
			data[fpArrayOff+8*i+b] = byte(bits >> (56 - 8*b))
		}
	}
	for i := 0; i < 256; i++ {
		v := uint32(i * 7)
		data[intArrayOff+4*i] = byte(v >> 24)
		data[intArrayOff+4*i+1] = byte(v >> 16)
		data[intArrayOff+4*i+2] = byte(v >> 8)
		data[intArrayOff+4*i+3] = byte(v)
	}
	return data
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// MeasureAvgBlockSize runs the program (capped at maxSteps) and returns
// dynamic instructions per basic-block entry — the paper's "Avg. BB Size".
func MeasureAvgBlockSize(x *exe.Exe, maxSteps uint64) (float64, error) {
	ed, err := eel.Open(x)
	if err != nil {
		return 0, err
	}
	starts := make(map[int]bool, len(ed.Graph().Blocks))
	for _, b := range ed.Graph().Blocks {
		starts[b.Start] = true
	}
	in, err := sim.NewInterp(x)
	if err != nil {
		return 0, err
	}
	var entries, steps uint64
	_, runErr := in.Run(maxSteps, func(idx int, inst *sparc.Inst) {
		steps++
		if starts[idx] {
			entries++
		}
	})
	// Hitting the step cap is fine for measurement purposes.
	if runErr != nil && in.Steps() < maxSteps {
		return 0, runErr
	}
	if entries == 0 {
		return 0, fmt.Errorf("workload: no block entries observed")
	}
	return float64(steps) / float64(entries), nil
}
