package pipe

import (
	"fmt"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// FastState is the compiled, table-driven pipeline_stalls oracle: the
// Go analogue of the specialized function Spawn emits (paper §3.2,
// Appendix A). It answers the same queries as State — which remains the
// reference oracle differential tests check it against — but probes the
// model's precomputed tables (spawn.CompiledTables) against a fixed-size
// ring buffer of per-cycle unit-usage rows instead of interpreting event
// lists through an absolute-cycle map, and performs no allocation per
// probe. Committed usage always lies in the window
// [clock, clock+MaxHorizon), so a ring of MaxHorizon rows suffices and
// cycles at or beyond the window are known-free.
//
// Like State, a FastState is not safe for concurrent use.
type FastState struct {
	model *spawn.Model
	tab   *spawn.CompiledTables
	// clock is the earliest absolute cycle at which the next instruction
	// may issue; the ring row of absolute cycle c (clock <= c <
	// clock+horizon) starts at (c%horizon)*nu.
	clock   int64
	horizon int64
	nu      int
	ring    []int32
	writeCy [sparc.NumRegs]int64
	readCy  [sparc.NumRegs]int64

	resolver Resolver
	// attr, when non-nil, receives per-cycle hazard classification of
	// every committed placement's stalls (see attr.go); probes never
	// attribute. Classification rides the probe loop's own failure
	// branches, so the disabled path costs one nil test per rejected
	// cycle and the zero-alloc probe guarantee is untouched.
	attr *StallAttr
	// rcache memoizes register-access resolution and the group lookup per
	// exact instruction (direct-mapped, overwrite on collision). A block's
	// instructions are each resolved several times — scheduling probes,
	// the issue, and the scheduler's cost replays — and resolution walks
	// string-keyed field accesses, so the memo removes most of the probe
	// setup cost. Keying on the full Inst value makes hits exact.
	rcache [resolveCacheSize]resolveEntry
}

const resolveCacheSize = 64 // power of two, covers typical block sizes

type resolveEntry struct {
	inst   sparc.Inst
	g      *spawn.Group
	ok     bool
	nr, nw int8
	reads  [6]RegAccess
	writes [6]RegAccess
}

// instKey folds an instruction into a cache index. Only mixing quality
// matters here; collisions just evict.
func instKey(in sparc.Inst) uint64 {
	k := uint64(in.Op)
	k = k<<8 ^ uint64(in.Rd)
	k = k<<8 ^ uint64(in.Rs1)
	k = k<<8 ^ uint64(in.Rs2)
	k = k<<8 ^ uint64(in.Cond)
	k ^= uint64(uint32(in.Imm)) << 7
	k ^= uint64(uint32(in.Disp)) << 13
	if in.UseImm {
		k ^= 1 << 62
	}
	if in.Annul {
		k ^= 1 << 61
	}
	if in.Instrumented {
		k ^= 1 << 60
	}
	k *= 0x9e3779b97f4a7c15
	return k >> 32
}

// resolve returns inst's timing group and resolved register accesses,
// through the memo. The returned slices are read-only and valid until
// the next resolve call that misses on the same cache slot.
func (s *FastState) resolve(inst sparc.Inst) (*spawn.Group, []RegAccess, []RegAccess, *spawn.CompiledGroup, error) {
	e := &s.rcache[instKey(inst)&(resolveCacheSize-1)]
	if e.ok && e.inst == inst {
		return e.g, e.reads[:e.nr], e.writes[:e.nw], &s.tab.Groups[e.g.ID], nil
	}
	g, err := s.model.GroupOf(inst)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cg := &s.tab.Groups[g.ID]
	reads, writes := s.resolver.resolveWith(g, inst, cg.DefaultRead, cg.DefaultWrite)
	if len(reads) <= len(e.reads) && len(writes) <= len(e.writes) {
		e.inst, e.g, e.ok = inst, g, true
		e.nr = int8(copy(e.reads[:], reads))
		e.nw = int8(copy(e.writes[:], writes))
		return g, e.reads[:e.nr], e.writes[:e.nw], cg, nil
	}
	e.ok = false
	return g, reads, writes, cg, nil
}

// Prepared carries one instruction's pre-resolved placement inputs:
// its compiled group and register accesses, copied into caller-owned
// storage. A scheduler probes and issues the same instruction several
// times per block; preparing once removes the resolution work from every
// subsequent probe. Prepared values are position-independent and stay
// valid for the lifetime of the FastState that produced them.
type Prepared struct {
	g      *spawn.Group
	cg     *spawn.CompiledGroup
	big    bool // accesses exceed the inline arrays; fall back to resolve
	nr, nw int8
	reads  [6]RegAccess
	writes [6]RegAccess
}

// Group returns the prepared instruction's timing group.
func (p *Prepared) Group() *spawn.Group { return p.g }

// Accesses returns the prepared instruction's resolved register reads
// and writes — the exact constraints placeResolved enforces, which is
// what makes latencies derived from them sound lower bounds on oracle
// behavior (the scheduler's exact search builds its critical-path bound
// from these). Both slices are nil when the accesses spilled the inline
// arrays (see big); callers must treat that as "unknown", never "none".
func (p *Prepared) Accesses() (reads, writes []RegAccess) {
	if p.big {
		return nil, nil
	}
	return p.reads[:p.nr], p.writes[:p.nw]
}

// Spilled reports whether the accesses exceeded the inline arrays, so
// probes against this Prepared fall back to full resolution.
func (p *Prepared) Spilled() bool { return p.big }

// Compiled returns the prepared instruction's compiled group.
func (p *Prepared) Compiled() *spawn.CompiledGroup { return p.cg }

// NewPrepared assembles a Prepared from already-resolved placement
// inputs, for callers that run their own resolution (the simulator
// keeps a per-static-instruction memo and shares this representation
// with the scheduler). Accesses beyond the inline capacity mark the
// value spilled, exactly as Prepare would.
func NewPrepared(g *spawn.Group, cg *spawn.CompiledGroup, reads, writes []RegAccess) Prepared {
	p := Prepared{g: g, cg: cg}
	if len(reads) > len(p.reads) || len(writes) > len(p.writes) {
		p.big = true
		return p
	}
	p.nr = int8(copy(p.reads[:], reads))
	p.nw = int8(copy(p.writes[:], writes))
	return p
}

// Prepare resolves inst once for repeated prepared probes.
func (s *FastState) Prepare(inst sparc.Inst) (Prepared, error) {
	var p Prepared
	g, reads, writes, cg, err := s.resolve(inst)
	if err != nil {
		return p, err
	}
	p.g, p.cg = g, cg
	if len(reads) > len(p.reads) || len(writes) > len(p.writes) {
		p.big = true
		return p, nil
	}
	p.nr = int8(copy(p.reads[:], reads))
	p.nw = int8(copy(p.writes[:], writes))
	return p, nil
}

// StallsPrepared is Stalls against pre-resolved placement inputs. The
// inst must be the one p was prepared from.
func (s *FastState) StallsPrepared(p *Prepared, inst sparc.Inst) (int, error) {
	if p.big {
		return s.Stalls(inst)
	}
	st, _, err := s.placeResolved(p.cg, inst, p.reads[:p.nr], p.writes[:p.nw], false)
	return st, err
}

// IssuePrepared is Issue against pre-resolved placement inputs.
func (s *FastState) IssuePrepared(p *Prepared, inst sparc.Inst) (int, int64, error) {
	if p.big {
		return s.Issue(inst)
	}
	return s.placeResolved(p.cg, inst, p.reads[:p.nr], p.writes[:p.nw], true)
}

// NewFastState returns an empty fast pipeline state for a machine model.
func NewFastState(m *spawn.Model) *FastState {
	t := m.Compiled()
	s := &FastState{model: m, tab: t, horizon: int64(t.MaxSpan), nu: len(m.Units)}
	if s.horizon < 1 {
		s.horizon = 1
	}
	s.ring = make([]int32, int(s.horizon)*s.nu)
	s.Reset()
	return s
}

// Model returns the machine model the state was built for.
func (s *FastState) Model() *spawn.Model { return s.model }

// SetAttribution attaches (or with nil detaches) a stall-attribution
// sink: every subsequent Issue classifies each stalled cycle by hazard
// kind into a, identically to the reference oracle's classification.
func (s *FastState) SetAttribution(a *StallAttr) {
	if a != nil {
		a.sizeUnits(s.nu)
	}
	s.attr = a
}

// Reset clears the state, e.g. at a basic-block boundary.
func (s *FastState) Reset() {
	s.clock = 0
	clear(s.ring)
	for i := range s.writeCy {
		// -1 sentinels: cycle 0 writes and reads must not self-conflict.
		s.writeCy[i] = -1
		s.readCy[i] = -1
	}
}

// Clock returns the earliest issue cycle for the next instruction.
func (s *FastState) Clock() int64 { return s.clock }

// Stalls computes how many cycles inst must wait before issuing, without
// modifying the state.
func (s *FastState) Stalls(inst sparc.Inst) (int, error) {
	st, _, err := s.place(inst, false)
	return st, err
}

// Issue places inst into the pipeline, committing its resource usage and
// register timing, and returns its stall count and absolute issue cycle.
func (s *FastState) Issue(inst sparc.Inst) (stalls int, issueCycle int64, err error) {
	return s.place(inst, true)
}

// MustIssue is Issue for instructions known to be schedulable; it panics
// on model lookup failure.
func (s *FastState) MustIssue(inst sparc.Inst) (stalls int, issueCycle int64) {
	st, issue, err := s.Issue(inst)
	if err != nil {
		panic(err)
	}
	return st, issue
}

// place mirrors (*State).place cycle for cycle: retry the issue one cycle
// later until every held-unit entry finds enough free copies and every
// register access satisfies the RAW, WAR and WAW rules.
func (s *FastState) place(inst sparc.Inst, commit bool) (stalls int, issueCycle int64, err error) {
	_, reads, writes, cg, err := s.resolve(inst)
	if err != nil {
		return 0, 0, err
	}
	return s.placeResolved(cg, inst, reads, writes, commit)
}

// placeResolved is place with the group and register accesses already
// resolved (by resolve or a Prepared).
func (s *FastState) placeResolved(cg *spawn.CompiledGroup, inst sparc.Inst, reads, writes []RegAccess, commit bool) (stalls int, issueCycle int64, err error) {
	const maxStall = 1 << 16 // mirrors State's bound
	if cg.Infeasible {
		// The reference oracle would probe maxStall cycles and then give
		// up; the demand can never fit, so fail the same way immediately.
		return 0, 0, fmt.Errorf("pipe: cannot place %v within %d cycles", inst, maxStall)
	}
	counts := s.tab.UnitCounts
	horizonEnd := s.clock + s.horizon
probe:
	for t := s.clock; ; t++ {
		if t-s.clock > maxStall {
			return 0, 0, fmt.Errorf("pipe: cannot place %v within %d cycles", inst, maxStall)
		}
		// Structural hazards, sparse: only nonzero held entries checked.
		for _, e := range cg.NZ {
			abs := t + int64(e.Cycle)
			if abs >= horizonEnd {
				// No committed usage exists at or beyond the window.
				continue
			}
			if counts[e.Unit]-s.ring[(abs%s.horizon)*int64(s.nu)+int64(e.Unit)] < int32(e.Num) {
				if commit && s.attr != nil {
					s.attr.structural(e.Unit)
				}
				continue probe
			}
		}
		// RAW: a read must not precede the value's availability.
		for _, r := range reads {
			if t+int64(r.Cycle) < s.writeCy[r.Reg] {
				if commit && s.attr != nil {
					s.attr.data(HazardRAW, r.Reg)
				}
				continue probe
			}
		}
		// WAW and WAR: the new value must become available strictly after
		// the previous value's availability and after its last read. The
		// availability rule is tested first, so an attributed cycle that
		// violates both counts as WAW — the same tie the reference
		// classifier breaks the same way.
		for _, w := range writes {
			avail := t + int64(w.Cycle)
			if avail <= s.writeCy[w.Reg] {
				if commit && s.attr != nil {
					s.attr.data(HazardWAW, w.Reg)
				}
				continue probe
			}
			if avail <= s.readCy[w.Reg] {
				if commit && s.attr != nil {
					s.attr.data(HazardWAR, w.Reg)
				}
				continue probe
			}
		}
		stalls = int(t - s.clock)
		if commit {
			s.commit(cg, t, reads, writes)
		}
		return stalls, t, nil
	}
}

// commit records the placed instruction's effects. Ring rows whose cycles
// fall behind the new clock are zeroed before the new usage lands, because
// they alias cycles inside the advanced window.
func (s *FastState) commit(cg *spawn.CompiledGroup, issue int64, reads, writes []RegAccess) {
	nu := int64(s.nu)
	if issue > s.clock {
		if issue-s.clock >= s.horizon {
			clear(s.ring)
		} else {
			for c := s.clock; c < issue; c++ {
				row := (c % s.horizon) * nu
				clear(s.ring[row : row+nu])
			}
		}
		s.clock = issue
	}
	for _, e := range cg.NZ {
		abs := issue + int64(e.Cycle)
		s.ring[(abs%s.horizon)*nu+int64(e.Unit)] += int32(e.Num)
	}
	for _, r := range reads {
		if abs := issue + int64(r.Cycle); abs > s.readCy[r.Reg] {
			s.readCy[r.Reg] = abs
		}
	}
	for _, w := range writes {
		if abs := issue + int64(w.Cycle); abs > s.writeCy[w.Reg] {
			s.writeCy[w.Reg] = abs
		}
	}
}

// String renders a compact description of the state for debugging.
func (s *FastState) String() string {
	return fmt.Sprintf("pipe.FastState{clock=%d, horizon=%d}", s.clock, s.horizon)
}
