// Differential fuzzing of the two stall oracles. This lives in an
// external test package because the block generator (internal/workload)
// transitively imports internal/pipe.
package pipe_test

import (
	"math/rand"
	"testing"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// FuzzStallOracle generates a random legal straight-line block from the
// workload content generator and replays it list-scheduler-style against
// both oracles on every shipped machine: before each issue, every
// remaining instruction is probed (Stalls), then the next one is issued —
// exactly the query mix core.Scheduler produces. Probe results, issue
// placements, errors and clocks must match instruction for instruction.
// Each block runs twice through the same pair of states with a Reset in
// between, so state reuse (the scheduler pools oracles) is covered too.
func FuzzStallOracle(f *testing.F) {
	f.Add(int64(1), 8, false)
	f.Add(int64(2), 24, false)
	f.Add(int64(3), 24, true)
	f.Add(int64(4), 47, true)
	f.Add(int64(-6148914691236517206), 33, true) // 0xaaaa... bit pattern
	f.Add(int64(7), 1, false)
	f.Fuzz(func(t *testing.T, seed int64, n int, fp bool) {
		size := ((n % 48) + 48) % 48
		size++
		for _, machine := range spawn.Machines() {
			model := spawn.MustLoad(machine)
			block := workload.RandomBlock(rand.New(rand.NewSource(seed)), size, fp)
			ref := pipe.NewState(model)
			fast := pipe.NewFastState(model)
			for round := 0; round < 2; round++ {
				ref.Reset()
				fast.Reset()
				replayBlock(t, machine, round, block, ref, fast)
			}
		}
	})
}

func replayBlock(t *testing.T, machine spawn.Machine, round int, block []sparc.Inst, ref *pipe.State, fast *pipe.FastState) {
	t.Helper()
	for i, inst := range block {
		// Probe every not-yet-issued instruction, as list scheduling does.
		for j := i; j < len(block); j++ {
			rs, rerr := ref.Stalls(block[j])
			fs, ferr := fast.Stalls(block[j])
			if rs != fs || (rerr == nil) != (ferr == nil) {
				t.Fatalf("%s round %d: probe %d after %d issues: (%d,%v) vs (%d,%v) for %v",
					machine, round, j, i, rs, rerr, fs, ferr, block[j])
			}
		}
		rs, ri, rerr := ref.Issue(inst)
		fs, fi, ferr := fast.Issue(inst)
		if rs != fs || ri != fi || (rerr == nil) != (ferr == nil) {
			t.Fatalf("%s round %d: issue %d: (%d,%d,%v) vs (%d,%d,%v) for %v",
				machine, round, i, rs, ri, rerr, fs, fi, ferr, inst)
		}
		if ref.Clock() != fast.Clock() {
			t.Fatalf("%s round %d: clocks diverge after %d issues: %d vs %d",
				machine, round, i+1, ref.Clock(), fast.Clock())
		}
	}
}
