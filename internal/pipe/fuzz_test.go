// Differential fuzzing of the two stall oracles. This lives in an
// external test package because the block generator (internal/workload)
// transitively imports internal/pipe.
package pipe_test

import (
	"math/rand"
	"testing"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// FuzzStallOracle generates a random legal straight-line block from the
// workload content generator and replays it list-scheduler-style against
// both oracles on every shipped machine: before each issue, every
// remaining instruction is probed (Stalls), then the next one is issued —
// exactly the query mix core.Scheduler produces. Probe results, issue
// placements, errors and clocks must match instruction for instruction,
// and with attribution sinks attached, the per-hazard stall
// classification must match count for count after every successful
// issue. Each block runs twice through the same pair of states with a
// Reset in between, so state reuse (the scheduler pools oracles) is
// covered too.
func FuzzStallOracle(f *testing.F) {
	f.Add(int64(1), 8, false)
	f.Add(int64(2), 24, false)
	f.Add(int64(3), 24, true)
	f.Add(int64(4), 47, true)
	f.Add(int64(-6148914691236517206), 33, true) // 0xaaaa... bit pattern
	f.Add(int64(7), 1, false)
	f.Fuzz(func(t *testing.T, seed int64, n int, fp bool) {
		size := ((n % 48) + 48) % 48
		size++
		for _, machine := range spawn.Machines() {
			model := spawn.MustLoad(machine)
			block := workload.RandomBlock(rand.New(rand.NewSource(seed)), size, fp)
			ref := pipe.NewState(model)
			fast := pipe.NewFastState(model)
			var refAttr, fastAttr pipe.StallAttr
			ref.SetAttribution(&refAttr)
			fast.SetAttribution(&fastAttr)
			for round := 0; round < 2; round++ {
				ref.Reset()
				fast.Reset()
				refAttr.Reset()
				fastAttr.Reset()
				replayBlock(t, machine, round, block, ref, fast, &refAttr, &fastAttr)
			}
		}
	})
}

func replayBlock(t *testing.T, machine spawn.Machine, round int, block []sparc.Inst, ref *pipe.State, fast *pipe.FastState, refAttr, fastAttr *pipe.StallAttr) {
	t.Helper()
	for i, inst := range block {
		// Probe every not-yet-issued instruction, as list scheduling does.
		for j := i; j < len(block); j++ {
			rs, rerr := ref.Stalls(block[j])
			fs, ferr := fast.Stalls(block[j])
			if rs != fs || (rerr == nil) != (ferr == nil) {
				t.Fatalf("%s round %d: probe %d after %d issues: (%d,%v) vs (%d,%v) for %v",
					machine, round, j, i, rs, rerr, fs, ferr, block[j])
			}
		}
		rs, ri, rerr := ref.Issue(inst)
		fs, fi, ferr := fast.Issue(inst)
		if rs != fs || ri != fi || (rerr == nil) != (ferr == nil) {
			t.Fatalf("%s round %d: issue %d: (%d,%d,%v) vs (%d,%d,%v) for %v",
				machine, round, i, rs, ri, rerr, fs, fi, ferr, inst)
		}
		// Attribution compares only after successful issues: on the
		// (unreachable with shipped descriptions) error paths the
		// reference oracle records the cycles it walked before giving
		// up while the fast oracle may short-circuit.
		if rerr == nil && !refAttr.Equal(fastAttr) {
			t.Fatalf("%s round %d: attribution diverges after issue %d (%v):\n  reference: %s\n  fast:      %s",
				machine, round, i, inst, refAttr.String(), fastAttr.String())
		}
		if ref.Clock() != fast.Clock() {
			t.Fatalf("%s round %d: clocks diverge after %d issues: %d vs %d",
				machine, round, i+1, ref.Clock(), fast.Clock())
		}
	}
}
