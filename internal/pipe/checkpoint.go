package pipe

import "eel/internal/sparc"

// Checkpoint is a saved copy of a FastState's placement state — clock,
// unit-usage ring and register horizons — so a search can issue
// speculatively and rewind. The exact optimal scheduler (core/optimal.go)
// keeps one Checkpoint per DFS depth and restores on backtrack, reusing
// the prepared probes it already resolved; that is what makes a
// branch-and-bound node one memcpy plus one placement instead of a
// replay of the whole prefix.
//
// A Checkpoint only captures placement state: the resolution memo and
// any attached attribution sink are left alone (probes never touch them,
// and a search never attributes). Restore must be given a state of the
// same model shape (same unit count and horizon) as the Save; in
// practice that means the same FastState the Checkpoint came from.
type Checkpoint struct {
	clock   int64
	ring    []int32
	writeCy [sparc.NumRegs]int64
	readCy  [sparc.NumRegs]int64
}

// Save copies s's placement state into c, reusing c's storage.
func (s *FastState) Save(c *Checkpoint) {
	c.clock = s.clock
	if cap(c.ring) < len(s.ring) {
		c.ring = make([]int32, len(s.ring))
	}
	c.ring = c.ring[:len(s.ring)]
	copy(c.ring, s.ring)
	c.writeCy = s.writeCy
	c.readCy = s.readCy
}

// Restore rewinds s to the state captured by a prior Save on the same
// FastState. It panics if the checkpoint's ring does not match s's
// (a checkpoint from a different model).
func (s *FastState) Restore(c *Checkpoint) {
	if len(c.ring) != len(s.ring) {
		panic("pipe: Restore with a checkpoint from a different model")
	}
	s.clock = c.clock
	copy(s.ring, c.ring)
	s.writeCy = c.writeCy
	s.readCy = c.readCy
}
