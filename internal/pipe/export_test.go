package pipe

import "eel/internal/sparc"

// Test-only exports: attr.go's recording methods are unexported because
// only the oracles call them, but the accumulator tests live in the
// external pipe_test package alongside the differential harness.

// RecordDataForTest records one data-hazard stall cycle.
func (a *StallAttr) RecordDataForTest(k HazardKind, r sparc.Reg) { a.data(k, r) }

// RecordStructuralForTest records one structural stall cycle.
func (a *StallAttr) RecordStructuralForTest(unit int) { a.structural(unit) }
