// Package pipe implements the paper's pipeline_stalls computation
// (Appendix A): given the pipeline state left by previously issued
// instructions, how many cycles must the next instruction wait before it
// can enter the execution pipeline?
//
// The state tracks, per the paper, "history information, such as the last
// cycle in which each register was read and written and which units are
// currently acquired by previous instructions". Hazards covered: RAW, WAR,
// WAW and structural (unit) conflicts. Like the paper's models, this layer
// knows nothing about caches, prefetching or write buffers — those belong
// to the measurement substrate (package sim), and the gap between the two
// is exactly the effect the paper's Tables 1 and 2 tease apart.
package pipe

import (
	"fmt"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// RegAccess is a resolved register access: a concrete register and a
// cycle relative to instruction issue (read cycle, or first-available
// cycle for writes).
type RegAccess struct {
	Reg   sparc.Reg
	Cycle int
}

// State is the execution-pipeline state threaded through a straight-line
// instruction sequence. The zero value is not usable; call NewState.
//
// A State is not safe for concurrent use: it holds per-sequence history
// and scratch buffers. Concurrent schedulers (core.ScheduleBlocks) give
// every worker goroutine its own State.
type State struct {
	model *spawn.Model
	// clock is the earliest absolute cycle at which the next instruction
	// may issue (in-order issue: never before its predecessor).
	clock int64
	// usage[c][u] is the number of copies of unit u committed by previous
	// instructions during absolute cycle c.
	usage map[int64][]int
	// writeCy[r] is the absolute cycle from which register r's latest
	// value is available; readCy[r] the last absolute cycle it is read.
	writeCy [sparc.NumRegs]int64
	readCy  [sparc.NumRegs]int64

	// scratch buffers reused across calls.
	resolver Resolver
	held     [][]int
	// attr, when non-nil, receives per-cycle hazard classification of
	// every committed placement's stalls (see attr.go). Probes never
	// attribute, so the scheduler's probe storm stays untouched.
	attr *StallAttr
}

// NewState returns an empty pipeline state for a machine model.
func NewState(m *spawn.Model) *State {
	s := &State{model: m}
	s.usage = make(map[int64][]int)
	s.Reset()
	return s
}

// Model returns the machine model the state was built for.
func (s *State) Model() *spawn.Model { return s.model }

// SetAttribution attaches (or with nil detaches) a stall-attribution
// sink: every subsequent Issue classifies each stalled cycle by hazard
// kind into a. The sink's Unit table is sized for the model.
func (s *State) SetAttribution(a *StallAttr) {
	if a != nil {
		a.sizeUnits(len(s.model.Units))
	}
	s.attr = a
}

// Reset clears the state, e.g. at a basic-block boundary.
func (s *State) Reset() {
	s.clock = 0
	clear(s.usage)
	for i := range s.writeCy {
		// -1 sentinels: cycle 0 writes and reads must not self-conflict.
		s.writeCy[i] = -1
		s.readCy[i] = -1
	}
}

// Clock returns the earliest issue cycle for the next instruction.
func (s *State) Clock() int64 { return s.clock }

// Stalls computes how many cycles inst must wait before issuing, without
// modifying the state. It is the paper's pipeline_stalls.
func (s *State) Stalls(inst sparc.Inst) (int, error) {
	st, _, _, err := s.place(inst, false)
	return st, err
}

// Issue places inst into the pipeline, committing its resource usage and
// register timing, and returns its stall count and absolute issue cycle.
func (s *State) Issue(inst sparc.Inst) (stalls int, issueCycle int64, err error) {
	st, issue, _, err := s.place(inst, true)
	return st, issue, err
}

// MustIssue is Issue for instructions known to be schedulable; it panics
// on model lookup failure.
func (s *State) MustIssue(inst sparc.Inst) (stalls int, issueCycle int64) {
	st, issue, err := s.Issue(inst)
	if err != nil {
		panic(err)
	}
	return st, issue
}

// SequenceCycles returns the number of cycles a straight-line sequence
// occupies on an empty pipeline: the issue cycle of the last instruction
// plus its remaining pipeline occupancy.
func SequenceCycles(m *spawn.Model, insts []sparc.Inst) (int64, error) {
	s := NewState(m)
	var end int64
	for _, inst := range insts {
		g, err := m.GroupOf(inst)
		if err != nil {
			return 0, err
		}
		_, issue, err := s.Issue(inst)
		if err != nil {
			return 0, err
		}
		if e := issue + int64(g.Cycles); e > end {
			end = e
		}
	}
	return end, nil
}

// place computes the earliest issue cycle for inst. The paper defines the
// scheduler's key metric as "the number of cycles that the next instruction
// must wait before entering the execution pipeline": placement retries one
// cycle later until, at some issue cycle t, every unit acquisition in every
// relative cycle finds enough free copies (structural hazards) and every
// register access satisfies the RAW, WAR and WAW rules. When commit is true
// the instruction's resource usage and register timing are recorded.
func (s *State) place(inst sparc.Inst, commit bool) (stalls int, issueCycle int64, group *spawn.Group, err error) {
	g, err := s.model.GroupOf(inst)
	if err != nil {
		return 0, 0, nil, err
	}
	reads, writes := s.resolver.Resolve(g, inst)
	held := s.heldProfile(g)

	const maxStall = 1 << 16 // descriptions are balanced, so usage drains
	for t := s.clock; ; t++ {
		if t-s.clock > maxStall {
			return 0, 0, nil, fmt.Errorf("pipe: cannot place %v within %d cycles", inst, maxStall)
		}
		if !s.fits(g, held, t, reads, writes) {
			if commit && s.attr != nil {
				s.classify(held, t, reads, writes)
			}
			continue
		}
		stalls = int(t - s.clock)
		if commit {
			s.commit(g, held, t, reads, writes)
		}
		return stalls, t, g, nil
	}
}

// heldProfile returns, per relative cycle, the unit copies the group holds
// during that cycle (releases in a cycle apply before acquisitions, per the
// paper's rule). Row storage is recycled across calls, so a steady-state
// probe allocates nothing.
func (s *State) heldProfile(g *spawn.Group) [][]int {
	nu := len(s.model.Units)
	span := len(g.Acquire)
	for len(s.held) < span {
		s.held = append(s.held, make([]int, nu))
	}
	held := s.held[:span]
	for k := 0; k < span; k++ {
		row := held[k]
		if k == 0 {
			clear(row)
		} else {
			copy(row, held[k-1])
		}
		for _, e := range g.Release[k] {
			row[e.Unit] -= e.Num
		}
		for _, e := range g.Acquire[k] {
			row[e.Unit] += e.Num
		}
	}
	return held
}

// fits reports whether the instruction can issue at absolute cycle t.
func (s *State) fits(g *spawn.Group, held [][]int, t int64, reads, writes []RegAccess) bool {
	// Structural hazards: every cycle's holdings must fit the free units.
	for k, row := range held {
		abs := t + int64(k)
		for u, n := range row {
			if n > 0 && s.unitsFree(abs, u) < n {
				return false
			}
		}
	}
	// RAW: a read must not precede the value's availability.
	for _, r := range reads {
		if t+int64(r.Cycle) < s.writeCy[r.Reg] {
			return false
		}
	}
	// WAW and WAR: the new value must become available strictly after the
	// previous value's availability and after the old value's last read.
	for _, w := range writes {
		avail := t + int64(w.Cycle)
		if avail <= s.writeCy[w.Reg] || avail <= s.readCy[w.Reg] {
			return false
		}
	}
	return true
}

// classify attributes one rejected candidate issue cycle t to the first
// failing constraint, in fits's exact check order, and records it in
// s.attr. It is only called for cycles fits rejected, so one check must
// fail.
func (s *State) classify(held [][]int, t int64, reads, writes []RegAccess) {
	for k, row := range held {
		abs := t + int64(k)
		for u, n := range row {
			if n > 0 && s.unitsFree(abs, u) < n {
				s.attr.structural(u)
				return
			}
		}
	}
	for _, r := range reads {
		if t+int64(r.Cycle) < s.writeCy[r.Reg] {
			s.attr.data(HazardRAW, r.Reg)
			return
		}
	}
	for _, w := range writes {
		avail := t + int64(w.Cycle)
		if avail <= s.writeCy[w.Reg] {
			s.attr.data(HazardWAW, w.Reg)
			return
		}
		if avail <= s.readCy[w.Reg] {
			s.attr.data(HazardWAR, w.Reg)
			return
		}
	}
	// Unreachable while classify mirrors fits; counting it keeps the
	// totals honest if the two ever drift.
	s.attr.Kind[HazardStructural]++
	s.attr.Total++
}

// commit records the placed instruction's effects on the state.
func (s *State) commit(g *spawn.Group, held [][]int, issue int64, reads, writes []RegAccess) {
	for k, row := range held {
		abs := issue + int64(k)
		u := s.usage[abs]
		if u == nil {
			u = make([]int, len(s.model.Units))
			s.usage[abs] = u
		}
		for ui, n := range row {
			u[ui] += n
		}
	}
	for _, r := range reads {
		if abs := issue + int64(r.Cycle); abs > s.readCy[r.Reg] {
			s.readCy[r.Reg] = abs
		}
	}
	for _, w := range writes {
		if abs := issue + int64(w.Cycle); abs > s.writeCy[w.Reg] {
			s.writeCy[w.Reg] = abs
		}
	}
	// In-order issue: the next instruction cannot issue earlier.
	if issue > s.clock {
		for c := range s.usage {
			if c < issue {
				delete(s.usage, c)
			}
		}
		s.clock = issue
	}
}

// unitsFree returns the free copies of a unit in an absolute cycle.
func (s *State) unitsFree(cycle int64, unit int) int {
	free := s.model.Units[unit].Count
	if u, ok := s.usage[cycle]; ok {
		free -= u[unit]
	}
	return free
}

// Resolver maps a timing group's field accesses onto an instruction's
// concrete registers, reusing buffers across calls. The group supplies the
// WHEN (cycles); the decoded instruction supplies the WHICH (registers,
// via Uses/Defs), making the resolution robust for register pairs,
// condition codes and the Y register. Reads/writes of %g0 carry no
// dependence and are dropped.
type Resolver struct {
	reads  []RegAccess
	writes []RegAccess
	regbuf []sparc.Reg
}

// Resolve returns the resolved reads and writes of inst under group g.
// The returned slices are valid until the next call.
func (s *Resolver) Resolve(g *spawn.Group, inst sparc.Inst) (reads, writes []RegAccess) {
	defaultRead := 1
	if len(g.Reads) > 0 {
		defaultRead = g.Reads[0].Cycle
		for _, r := range g.Reads {
			if r.Cycle < defaultRead {
				defaultRead = r.Cycle
			}
		}
	}
	defaultWrite := g.Cycles
	if len(g.Writes) > 0 {
		defaultWrite = 0
		for _, w := range g.Writes {
			if w.Cycle > defaultWrite {
				defaultWrite = w.Cycle
			}
		}
	}
	return s.resolveWith(g, inst, defaultRead, defaultWrite)
}

// resolveWith is Resolve with the fallback cycles supplied by the caller
// (FastState reads them from the compiled tables instead of rescanning the
// group's access lists on every probe).
func (s *Resolver) resolveWith(g *spawn.Group, inst sparc.Inst, defaultRead, defaultWrite int) (reads, writes []RegAccess) {
	s.reads = s.reads[:0]
	s.writes = s.writes[:0]

	s.regbuf = inst.Uses(s.regbuf[:0])
	for _, r := range s.regbuf {
		if r == sparc.G0 {
			continue
		}
		s.reads = append(s.reads, RegAccess{Reg: r, Cycle: accessCycle(g.Reads, inst, r, defaultRead)})
	}
	s.regbuf = inst.Defs(s.regbuf[:0])
	for _, w := range s.regbuf {
		if w == sparc.G0 {
			continue
		}
		s.writes = append(s.writes, RegAccess{Reg: w, Cycle: accessCycle(g.Writes, inst, w, defaultWrite)})
	}
	return s.reads, s.writes
}

// accessCycle finds the cycle recorded for the field that names register r
// in instruction inst, or def if the description did not mention it.
func accessCycle(accs []spawn.FieldAccess, inst sparc.Inst, r sparc.Reg, def int) int {
	for _, a := range accs {
		if fieldNamesReg(a, inst, r) {
			return a.Cycle
		}
	}
	return def
}

// fieldNamesReg reports whether field access a designates register r for
// instruction inst.
func fieldNamesReg(a spawn.FieldAccess, inst sparc.Inst, r sparc.Reg) bool {
	switch a.File {
	case "R":
		if !r.IsInt() {
			return false
		}
	case "F":
		if !r.IsFloat() {
			return false
		}
	case "CC":
		if a.Index == 0 {
			return r == sparc.ICC
		}
		return r == sparc.FCC
	case "Y":
		return r == sparc.YReg
	default:
		return false
	}
	switch a.Field {
	case "rs1":
		return r == inst.Rs1 || pairOf(inst, inst.Rs1, r)
	case "rs2":
		return r == inst.Rs2 || pairOf(inst, inst.Rs2, r)
	case "rd":
		return r == inst.Rd || pairOf(inst, inst.Rd, r)
	case "":
		if a.File == "R" {
			return r == sparc.Reg(a.Index)
		}
		if a.File == "F" {
			return r == sparc.FReg(a.Index)
		}
	}
	return false
}

// pairOf reports whether r is the odd half of a doubleword pair rooted at
// base for this instruction.
func pairOf(inst sparc.Inst, base, r sparc.Reg) bool {
	if !inst.Op.Doubleword() && !fpDoubleOp(inst.Op) {
		return false
	}
	return r == base+1
}

func fpDoubleOp(op sparc.Op) bool {
	switch op {
	case sparc.OpFaddd, sparc.OpFsubd, sparc.OpFmuld, sparc.OpFdivd,
		sparc.OpFsqrtd, sparc.OpFcmpd, sparc.OpFitod, sparc.OpFstod:
		return true
	}
	return false
}

// String renders a compact description of the state for debugging.
func (s *State) String() string {
	return fmt.Sprintf("pipe.State{clock=%d, pending=%d cycles}", s.clock, len(s.usage))
}
