// Differential and overhead tests for stall attribution. External test
// package for the same reason as fuzz_test.go: the block generator
// transitively imports internal/pipe.
package pipe_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// TestStallAttributionEquivalence replays random blocks through both
// oracles with attribution sinks attached, list-scheduler style (probe
// everything, then issue), and requires the classified counts to be
// identical count for count after every committed placement — the
// acceptance bar for the telemetry layer: stall attribution must not
// depend on which oracle produced it.
func TestStallAttributionEquivalence(t *testing.T) {
	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		ref := pipe.NewState(model)
		fast := pipe.NewFastState(model)
		var refAttr, fastAttr pipe.StallAttr
		ref.SetAttribution(&refAttr)
		fast.SetAttribution(&fastAttr)
		for seed := int64(0); seed < 20; seed++ {
			for _, fp := range []bool{false, true} {
				size := 8 + int(seed)*3%41
				block := workload.RandomBlock(rand.New(rand.NewSource(seed)), size, fp)
				ref.Reset()
				fast.Reset()
				refAttr.Reset()
				fastAttr.Reset()
				stallSum := uint64(0)
				for i, inst := range block {
					// Probe the tail first — probes must never attribute.
					for j := i; j < len(block); j++ {
						ref.Stalls(block[j])
						fast.Stalls(block[j])
					}
					rs, _, rerr := ref.Issue(inst)
					fs, _, ferr := fast.Issue(inst)
					if (rerr == nil) != (ferr == nil) || rs != fs {
						t.Fatalf("%s seed %d: oracle divergence predates attribution: (%d,%v) vs (%d,%v)",
							machine, seed, rs, rerr, fs, ferr)
					}
					if rerr != nil {
						continue
					}
					stallSum += uint64(rs)
					if !refAttr.Equal(&fastAttr) {
						t.Fatalf("%s seed %d inst %d (%v): attribution diverges:\n  reference: %s\n  fast:      %s",
							machine, seed, i, inst, refAttr.String(), fastAttr.String())
					}
				}
				if refAttr.Total != stallSum {
					t.Fatalf("%s seed %d: attributed %d stall cycles, issues reported %d — probes leaked into attribution or cycles were dropped",
						machine, seed, refAttr.Total, stallSum)
				}
			}
		}
	}
}

// TestProbesNeverAttribute holds an attribution sink while running a
// probe storm and requires it to stay empty: only committed placements
// describe the emitted schedule.
func TestProbesNeverAttribute(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	block := workload.RandomBlock(rand.New(rand.NewSource(5)), 32, true)
	ref := pipe.NewState(model)
	fast := pipe.NewFastState(model)
	var refAttr, fastAttr pipe.StallAttr
	ref.SetAttribution(&refAttr)
	fast.SetAttribution(&fastAttr)
	// Issue a prefix so later probes actually hit hazards.
	for _, inst := range block[:16] {
		ref.Issue(inst)
		fast.Issue(inst)
	}
	refAttr.Reset()
	fastAttr.Reset()
	for round := 0; round < 4; round++ {
		for _, inst := range block[16:] {
			ref.Stalls(inst)
			fast.Stalls(inst)
			if p, err := fast.Prepare(inst); err == nil {
				fast.StallsPrepared(&p, inst)
			}
		}
	}
	if refAttr.Total != 0 || fastAttr.Total != 0 {
		t.Fatalf("probes attributed stall cycles: reference %s, fast %s",
			refAttr.String(), fastAttr.String())
	}
}

// TestOracleProbePathZeroAlloc is half of the overhead guard (the timing
// half lives in internal/core): the probe path of both oracles must not
// allocate, with or without an attribution sink attached.
func TestOracleProbePathZeroAlloc(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	block := workload.RandomBlock(rand.New(rand.NewSource(11)), 32, true)

	ref := pipe.NewState(model)
	fast := pipe.NewFastState(model)
	prepared := make([]pipe.Prepared, len(block))
	for i, inst := range block {
		p, err := fast.Prepare(inst)
		if err != nil {
			t.Fatal(err)
		}
		prepared[i] = p
	}
	// Warm both states: issue half the block so probes contend with real
	// pipeline state, and let lazily grown scratch buffers settle.
	for _, inst := range block[:16] {
		ref.MustIssue(inst)
		fast.MustIssue(inst)
	}

	var attr pipe.StallAttr
	for _, tc := range []struct {
		name   string
		attach bool
	}{{"detached", false}, {"attached", true}} {
		if tc.attach {
			ref.SetAttribution(&attr)
			fast.SetAttribution(&attr)
		} else {
			ref.SetAttribution(nil)
			fast.SetAttribution(nil)
		}
		probes := map[string]func(){
			"reference": func() {
				for _, inst := range block[16:] {
					ref.Stalls(inst)
				}
			},
			"fast": func() {
				for _, inst := range block[16:] {
					fast.Stalls(inst)
				}
			},
			"fast-prepared": func() {
				for i := 16; i < len(block); i++ {
					fast.StallsPrepared(&prepared[i], block[i])
				}
			},
		}
		for name, probe := range probes {
			probe() // settle any remaining lazy growth
			if allocs := testing.AllocsPerRun(50, probe); allocs != 0 {
				t.Errorf("%s probe path (%s attribution): %.1f allocs/run, want 0", name, tc.name, allocs)
			}
		}
	}
}

// TestAttrAccumulators covers the plain-counter plumbing the scheduler
// aggregates through.
func TestAttrAccumulators(t *testing.T) {
	var a pipe.StallAttr
	a.RecordDataForTest(pipe.HazardRAW, sparc.G1)
	a.RecordDataForTest(pipe.HazardRAW, sparc.F0)
	a.RecordDataForTest(pipe.HazardWAW, sparc.ICC)
	a.RecordDataForTest(pipe.HazardWAR, sparc.YReg)
	a.RecordStructuralForTest(0)
	if a.Total != 5 || a.Kind[pipe.HazardRAW] != 2 || a.Kind[pipe.HazardStructural] != 1 {
		t.Fatalf("data counts wrong: %s", a.String())
	}
	if a.Class[pipe.HazardRAW][pipe.ClassInt] != 1 ||
		a.Class[pipe.HazardRAW][pipe.ClassFloat] != 1 ||
		a.Class[pipe.HazardWAW][pipe.ClassCC] != 1 ||
		a.Class[pipe.HazardWAR][pipe.ClassY] != 1 {
		t.Fatalf("class buckets wrong: %+v", a.Class)
	}

	var b pipe.StallAttr
	a.AddInto(&b)
	a.AddInto(&b)
	if b.Total != 10 || !a.Equal(&a) || a.Equal(&b) {
		t.Fatalf("AddInto/Equal wrong: b=%s", b.String())
	}
	b.Reset()
	if b.Total != 0 || b.Kind[pipe.HazardRAW] != 0 {
		t.Fatalf("Reset left counts: %s", b.String())
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		r    sparc.Reg
		want pipe.RegClass
	}{
		{sparc.G1, pipe.ClassInt},
		{sparc.SP, pipe.ClassInt},
		{sparc.F0, pipe.ClassFloat},
		{sparc.FReg(31), pipe.ClassFloat},
		{sparc.ICC, pipe.ClassCC},
		{sparc.FCC, pipe.ClassCC},
		{sparc.YReg, pipe.ClassY},
	}
	for _, c := range cases {
		if got := pipe.ClassOf(c.r); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestHazardNames(t *testing.T) {
	// Metric names are built from these strings; lock them down.
	wantK := map[pipe.HazardKind]string{
		pipe.HazardRAW: "raw", pipe.HazardWAR: "war",
		pipe.HazardWAW: "waw", pipe.HazardStructural: "structural",
	}
	for k, want := range wantK {
		if k.String() != want {
			t.Errorf("HazardKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	wantC := map[pipe.RegClass]string{
		pipe.ClassInt: "int", pipe.ClassFloat: "float",
		pipe.ClassCC: "cc", pipe.ClassY: "y",
	}
	for c, want := range wantC {
		if c.String() != want {
			t.Errorf("RegClass(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
	if fmt.Sprint(pipe.HazardKind(99)) != "hazard(99)" {
		t.Errorf("unknown hazard name: %v", pipe.HazardKind(99))
	}
}
