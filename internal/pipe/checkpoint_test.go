// Checkpoint save/restore tests. External package for the same reason as
// fuzz_test.go: the block generator transitively imports internal/pipe.
package pipe_test

import (
	"math/rand"
	"testing"

	"eel/internal/pipe"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// TestCheckpointRoundTrip drives a FastState to an arbitrary mid-block
// state, saves it, issues an arbitrary suffix, restores, and requires the
// state to behave exactly as a twin that replayed only the prefix: every
// probe and issue of a second suffix must match stall for stall, cycle
// for cycle. This is the contract the branch-and-bound scheduler's
// backtracking rests on.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		for seed := int64(1); seed <= 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			prefix := workload.RandomBlock(rng, 6, seed%2 == 0)
			detour := workload.RandomBlock(rng, 5, seed%2 == 1)
			suffix := workload.RandomBlock(rng, 6, false)

			s := pipe.NewFastState(model)
			twin := pipe.NewFastState(model)
			for _, inst := range prefix {
				s.MustIssue(inst)
				twin.MustIssue(inst)
			}
			var cp pipe.Checkpoint
			s.Save(&cp)
			for _, inst := range detour {
				s.MustIssue(inst)
			}
			s.Restore(&cp)
			if s.Clock() != twin.Clock() {
				t.Fatalf("%s seed %d: clock %d after restore, twin has %d",
					machine, seed, s.Clock(), twin.Clock())
			}
			for i, inst := range suffix {
				gotSt, gotErr := s.Stalls(inst)
				wantSt, wantErr := twin.Stalls(inst)
				if gotSt != wantSt || (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s seed %d: probe %d after restore: (%d,%v) vs twin (%d,%v)",
						machine, seed, i, gotSt, gotErr, wantSt, wantErr)
				}
				gs, gi, ge := s.Issue(inst)
				ws, wi, we := twin.Issue(inst)
				if gs != ws || gi != wi || (ge == nil) != (we == nil) {
					t.Fatalf("%s seed %d: issue %d after restore: (%d,%d,%v) vs twin (%d,%d,%v)",
						machine, seed, i, gs, gi, ge, ws, wi, we)
				}
			}
		}
	}
}

// TestCheckpointReuse reuses one Checkpoint across saves (storage must be
// recycled, not aliased) and checks restoring twice from the same save is
// idempotent.
func TestCheckpointReuse(t *testing.T) {
	model := spawn.MustLoad(spawn.Machines()[0])
	rng := rand.New(rand.NewSource(42))
	s := pipe.NewFastState(model)
	var cp pipe.Checkpoint
	for round := 0; round < 3; round++ {
		block := workload.RandomBlock(rng, 8, round == 1)
		s.Reset()
		s.MustIssue(block[0])
		s.Save(&cp)
		want := s.Clock()
		for _, inst := range block[1:] {
			s.MustIssue(inst)
		}
		s.Restore(&cp)
		s.Restore(&cp)
		if s.Clock() != want {
			t.Fatalf("round %d: clock %d after double restore, want %d", round, s.Clock(), want)
		}
		// The restored state must accept the rest of the block exactly as
		// the original pass did (same final clock).
		for _, inst := range block[1:] {
			s.MustIssue(inst)
		}
		end := s.Clock()
		s.Restore(&cp)
		for _, inst := range block[1:] {
			s.MustIssue(inst)
		}
		if s.Clock() != end {
			t.Fatalf("round %d: replay after restore diverged: %d vs %d", round, s.Clock(), end)
		}
	}
}
