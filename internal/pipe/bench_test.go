package pipe_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// oracle abstracts the two stall-oracle implementations for benchmarking.
type oracle interface {
	Reset()
	Stalls(inst sparc.Inst) (int, error)
	Issue(inst sparc.Inst) (stalls int, issueCycle int64, err error)
}

// BenchmarkStallOracle replays a list-scheduler-shaped query mix (probe
// every remaining instruction, issue one, repeat) over a pool of random
// workload blocks — the fast oracle's target workload. The fast/reference
// ratio here is the per-query speedup behind the ScheduleBlocks numbers
// in internal/core.
func BenchmarkStallOracle(b *testing.B) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	rng := rand.New(rand.NewSource(42))
	blocks := make([][]sparc.Inst, 64)
	for i := range blocks {
		blocks[i] = workload.RandomBlock(rng, 8+rng.Intn(24), i%2 == 0)
	}
	impls := []struct {
		name string
		mk   func() oracle
	}{
		{"fast", func() oracle { return pipe.NewFastState(model) }},
		{"reference", func() oracle { return pipe.NewState(model) }},
	}
	for _, impl := range impls {
		b.Run(fmt.Sprintf("oracle=%s", impl.name), func(b *testing.B) {
			s := impl.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				block := blocks[i%len(blocks)]
				s.Reset()
				for j := range block {
					for k := j; k < len(block); k++ {
						if _, err := s.Stalls(block[k]); err != nil {
							b.Fatal(err)
						}
					}
					if _, _, err := s.Issue(block[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
