package pipe

import (
	"math/rand"
	"os"
	"testing"

	"eel/internal/sparc"
	"eel/internal/spawn"
	ultra "eel/internal/spawn/gen/ultrasparc"
)

func hyperState() *State { return NewState(spawn.MustLoad(spawn.HyperSPARC)) }
func superState() *State { return NewState(spawn.MustLoad(spawn.SuperSPARC)) }
func ultraState() *State { return NewState(spawn.MustLoad(spawn.UltraSPARC)) }

func issue(t *testing.T, s *State, inst sparc.Inst) (int, int64) {
	t.Helper()
	stalls, cycle, err := s.Issue(inst)
	if err != nil {
		t.Fatalf("Issue(%v): %v", inst, err)
	}
	return stalls, cycle
}

func TestDualIssueIndependent(t *testing.T) {
	// An ALU op and a load are served by different units, so the
	// hyperSPARC dual-issues them.
	s := hyperState()
	_, c1 := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G1, 1))
	st2, c2 := issue(t, s, sparc.NewLoad(sparc.OpLd, sparc.G2, sparc.G3, 0))
	if c1 != 0 || c2 != 0 || st2 != 0 {
		t.Errorf("add+load should dual-issue: c1=%d c2=%d stalls2=%d", c1, c2, st2)
	}
	// A third instruction cannot join the 2-wide group.
	st3, c3 := issue(t, s, sparc.NewLoadIdx(sparc.OpLd, sparc.G4, sparc.G5, sparc.G6))
	if c3 == 0 {
		t.Errorf("third instruction issued in cycle 0 (stalls=%d)", st3)
	}
}

func TestHyperSPARCSingleALU(t *testing.T) {
	// Two independent adds contend for the hyperSPARC's single ALU in
	// cycle 1, so the second one issues a cycle later.
	s := hyperState()
	_, c1 := issue(t, s, sparc.NewALU(sparc.OpAdd, sparc.G1, sparc.G2, sparc.G3))
	st2, c2 := issue(t, s, sparc.NewALU(sparc.OpSub, sparc.G4, sparc.G5, sparc.G6))
	if c1 != 0 {
		t.Errorf("first add at cycle %d", c1)
	}
	if c2 != 1 || st2 == 0 {
		t.Errorf("second ALU op should wait for the single ALU: cycle=%d stalls=%d", c2, st2)
	}
}

func TestSuperSPARCDualALU(t *testing.T) {
	s := superState()
	_, c1 := issue(t, s, sparc.NewALU(sparc.OpAdd, sparc.G1, sparc.G2, sparc.G3))
	st2, c2 := issue(t, s, sparc.NewALU(sparc.OpSub, sparc.G4, sparc.G5, sparc.G6))
	if c1 != 0 || c2 != 0 || st2 != 0 {
		t.Errorf("SuperSPARC should dual-issue ALU ops: c1=%d c2=%d stalls=%d", c1, c2, st2)
	}
	st3, c3 := issue(t, s, sparc.NewALU(sparc.OpAnd, sparc.G7, sparc.O0, sparc.O1))
	if c3 != 1 || st3 != 1 {
		t.Errorf("third ALU op: cycle=%d stalls=%d, want 1,1", c3, st3)
	}
}

func TestRAWDependentAdds(t *testing.T) {
	s := ultraState()
	_, c1 := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1))
	st2, c2 := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G1, 1))
	if c1 != 0 || c2 != 1 || st2 != 1 {
		t.Errorf("dependent add: c1=%d c2=%d stalls=%d; want 0,1,1", c1, c2, st2)
	}
}

func TestLoadUseLatency(t *testing.T) {
	// UltraSPARC: 2-cycle load-use latency.
	s := ultraState()
	issue(t, s, sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.G2, 0))
	_, c2 := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G1, 1))
	if c2 != 2 {
		t.Errorf("UltraSPARC load-use: consumer at cycle %d, want 2", c2)
	}
	// hyperSPARC: 1-cycle load-use latency (paper §4.1).
	h := hyperState()
	issue(t, h, sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.G2, 0))
	_, hc2 := issue(t, h, sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G1, 1))
	if hc2 != 1 {
		t.Errorf("hyperSPARC load-use: consumer at cycle %d, want 1", hc2)
	}
}

func TestSethiSameCycleUse(t *testing.T) {
	// The paper: "the sethi instruction produces a value which is available
	// at the end of cycle 0, and can be used by another instruction issued
	// in the same cycle."
	s := ultraState()
	_, c1 := issue(t, s, sparc.NewSethi(sparc.G1, 0x1000))
	st2, c2 := issue(t, s, sparc.NewALUImm(sparc.OpOr, sparc.G1, sparc.G1, 0x2f0))
	if c1 != 0 || c2 != 0 || st2 != 0 {
		t.Errorf("sethi+or should co-issue: c1=%d c2=%d stalls=%d", c1, c2, st2)
	}
}

func TestCompareBranchPairing(t *testing.T) {
	s := superState()
	_, c1 := issue(t, s, sparc.NewALUImm(sparc.OpSubcc, sparc.G0, sparc.G1, 10))
	st2, c2 := issue(t, s, sparc.NewBranch(sparc.CondNE, -4))
	if c1 != 0 || c2 != 0 || st2 != 0 {
		t.Errorf("cmp+branch should pair: c1=%d c2=%d stalls=%d", c1, c2, st2)
	}
}

func TestQPTSequenceFourCycles(t *testing.T) {
	// The paper §4.2: the 4-instruction profiling sequence (set immediate,
	// load, add, store) "can execute in 4 cycles on both SuperSPARC and
	// UltraSPARC" — issue cycles 0,0,2,3.
	for _, machine := range []spawn.Machine{spawn.SuperSPARC, spawn.UltraSPARC} {
		s := NewState(spawn.MustLoad(machine))
		seq := []sparc.Inst{
			sparc.NewSethi(sparc.G1, 0x10000),
			sparc.NewLoad(sparc.OpLd, sparc.G2, sparc.G1, 0x40),
			sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G2, 1),
			sparc.NewStore(sparc.OpSt, sparc.G2, sparc.G1, 0x40),
		}
		want := []int64{0, 0, 2, 3}
		for i, inst := range seq {
			_, c := issue(t, s, inst)
			if c != want[i] {
				t.Errorf("%s: inst %d (%v) at cycle %d, want %d", machine, i, inst, c, want[i])
			}
		}
	}
}

func TestStoreLSUOccupancy(t *testing.T) {
	// Stores hold the LSU for 2 cycles: a store in cycle 0 blocks a load
	// from issuing its memory cycle until the LSU frees.
	s := hyperState()
	issue(t, s, sparc.NewStore(sparc.OpSt, sparc.G1, sparc.G2, 0))
	_, c2 := issue(t, s, sparc.NewLoad(sparc.OpLd, sparc.G3, sparc.G4, 0))
	if c2 < 2 {
		t.Errorf("load after store issued at cycle %d; LSU busy for 2 cycles", c2)
	}
}

func TestWAWOrdering(t *testing.T) {
	s := ultraState()
	issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1))
	st2, c2 := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G3, 1))
	if c2 == 0 {
		t.Errorf("WAW adds co-issued (stalls=%d)", st2)
	}
}

func TestWAROrdering(t *testing.T) {
	s := ultraState()
	// add reads g5 in cycle 1; a following write to g5 may not complete
	// at or before that read.
	issue(t, s, sparc.NewALU(sparc.OpAdd, sparc.G1, sparc.G5, sparc.G6))
	_, c2 := issue(t, s, sparc.NewSethi(sparc.G5, 42)) // sethi avail 1
	if c2 < 1 {
		t.Errorf("WAR: sethi overwrote g5 at cycle %d before it was read", c2)
	}
}

func TestStallsDoesNotMutate(t *testing.T) {
	s := ultraState()
	issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1))
	dep := sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G1, 1)
	st1, err := s.Stalls(dep)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Stalls(dep)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Errorf("Stalls mutated state: %d then %d", st1, st2)
	}
	stc, _ := issue(t, s, dep)
	if stc != st1 {
		t.Errorf("Issue stalls (%d) != Stalls (%d)", stc, st1)
	}
}

func TestReset(t *testing.T) {
	s := ultraState()
	issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1))
	s.Reset()
	if s.Clock() != 0 {
		t.Errorf("Clock after Reset = %d", s.Clock())
	}
	st, c := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G1, 1))
	if st != 0 || c != 0 {
		t.Errorf("dependence survived Reset: stalls=%d cycle=%d", st, c)
	}
}

func TestG0CarriesNoDependence(t *testing.T) {
	s := ultraState()
	issue(t, s, sparc.NewALUImm(sparc.OpSubcc, sparc.G0, sparc.G1, 0)) // writes g0+icc
	st, c := issue(t, s, sparc.NewALU(sparc.OpAdd, sparc.G2, sparc.G0, sparc.G0))
	if st != 0 || c != 0 {
		t.Errorf("g0 created a dependence: stalls=%d cycle=%d", st, c)
	}
}

func TestFPDivSerializes(t *testing.T) {
	s := ultraState()
	issue(t, s, sparc.NewALU(sparc.OpFdivd, sparc.FReg(0), sparc.FReg(2), sparc.FReg(4)))
	_, c2 := issue(t, s, sparc.NewALU(sparc.OpFdivd, sparc.FReg(6), sparc.FReg(8), sparc.FReg(10)))
	if c2 < 20 {
		t.Errorf("second fdivd at cycle %d; divider is unpipelined", c2)
	}
	// An independent integer add can slip in front.
	st3, c3 := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G1, sparc.G2, 1))
	_ = st3
	if c3 < c2 {
		t.Logf("in-order issue: add at %d after fdiv at %d", c3, c2)
	}
}

func TestDoublewordPairDependence(t *testing.T) {
	s := ultraState()
	issue(t, s, sparc.NewLoad(sparc.OpLdd, sparc.G2, sparc.G1, 0)) // writes g2,g3
	_, c2 := issue(t, s, sparc.NewALUImm(sparc.OpAdd, sparc.G4, sparc.G3, 1))
	if c2 < 2 {
		t.Errorf("odd pair register dependence missed: consumer at %d", c2)
	}
}

func TestSequenceCycles(t *testing.T) {
	m := spawn.MustLoad(spawn.UltraSPARC)
	seq := []sparc.Inst{
		sparc.NewSethi(sparc.G1, 0x10000),
		sparc.NewLoad(sparc.OpLd, sparc.G2, sparc.G1, 0x40),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G2, 1),
		sparc.NewStore(sparc.OpSt, sparc.G2, sparc.G1, 0x40),
	}
	n, err := SequenceCycles(m, seq)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 || n > 8 {
		t.Errorf("SequenceCycles = %d, want a small value >= 4", n)
	}
	if _, err := SequenceCycles(m, []sparc.Inst{{}}); err == nil {
		t.Error("SequenceCycles accepted an invalid instruction")
	}
}

// TestGeneratedEquivalence drives the interpreted pipeline (pipe.State)
// and the Spawn-generated UltraSPARC tables (gen/ultrasparc) with the same
// random instruction sequences and requires identical stall counts — the
// Appendix A generated-code check.
func TestGeneratedEquivalence(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	r := rand.New(rand.NewSource(42))
	regs := []sparc.Reg{sparc.G1, sparc.G2, sparc.G3, sparc.O0, sparc.O1, sparc.L0}

	randInst := func() sparc.Inst {
		switch r.Intn(6) {
		case 0:
			return sparc.NewALU(sparc.OpAdd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))])
		case 1:
			return sparc.NewALUImm(sparc.OpSub, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(r.Intn(100)))
		case 2:
			return sparc.NewLoad(sparc.OpLd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(r.Intn(64)*4))
		case 3:
			return sparc.NewStore(sparc.OpSt, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(r.Intn(64)*4))
		case 4:
			return sparc.NewSethi(regs[r.Intn(len(regs))], int32(r.Intn(1<<20)))
		default:
			return sparc.NewALU(sparc.OpFmuld, sparc.FReg(2*r.Intn(4)), sparc.FReg(8+2*r.Intn(4)), sparc.FReg(16+2*r.Intn(4)))
		}
	}

	for trial := 0; trial < 200; trial++ {
		interp := NewState(model)
		gen := ultra.NewState()
		for i := 0; i < 12; i++ {
			inst := randInst()
			g, err := model.GroupOf(inst)
			if err != nil {
				t.Fatal(err)
			}
			reads, writes := interp.resolver.Resolve(g, inst)
			genReads := make([]ultra.RegTime, len(reads))
			for j, ra := range reads {
				genReads[j] = ultra.RegTime{Reg: int(ra.Reg), Cycle: ra.Cycle}
			}
			genWrites := make([]ultra.RegTime, len(writes))
			for j, wa := range writes {
				genWrites[j] = ultra.RegTime{Reg: int(wa.Reg), Cycle: wa.Cycle}
			}
			variant := "r"
			if inst.UseImm {
				variant = "i"
			}
			gid := ultra.GroupFor(inst.Op.Name(), variant)
			if gid != g.ID {
				t.Fatalf("group id mismatch for %v: interp %d, generated %d", inst, g.ID, gid)
			}
			wantStalls, _, err := interp.Issue(inst)
			if err != nil {
				t.Fatal(err)
			}
			gotStalls := gen.Stalls(gid, genReads, genWrites, true)
			if gotStalls != wantStalls {
				t.Fatalf("trial %d inst %d (%v): interpreted %d stalls, generated %d",
					trial, i, inst, wantStalls, gotStalls)
			}
		}
		if interp.Clock() != gen.Clock() {
			t.Fatalf("trial %d: clocks diverge: %d vs %d", trial, interp.Clock(), gen.Clock())
		}
	}
}

// TestGeneratedFilesFresh regenerates the committed tables and requires
// byte equality, so the descriptions and gen/ packages cannot drift.
func TestGeneratedFilesFresh(t *testing.T) {
	for _, machine := range spawn.Machines() {
		m := spawn.MustLoad(machine)
		want, err := spawn.Generate(m, string(machine))
		if err != nil {
			t.Fatal(err)
		}
		path := "../spawn/gen/" + string(machine) + "/tables.go"
		got, err := readFileString(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with cmd/spawn)", machine, err)
		}
		if got != want {
			t.Errorf("%s: committed tables are stale; regenerate with cmd/spawn", machine)
		}
	}
}

func readFileString(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
