package pipe

import (
	"fmt"
	"strings"

	"eel/internal/sparc"
)

// This file is the stall-attribution sink both oracles feed: the hazard
// taxonomy of the paper's §3.2 pipeline_stalls (RAW, WAR, WAW and
// structural conflicts), counted per stall cycle. When an instruction
// issues S cycles late, each of the S deferred candidate cycles is
// classified by the FIRST constraint that rejected it, in the oracles'
// shared check order: structural hazards in (relative cycle, unit)
// order, then RAW reads in operand order, then writes — WAW before WAR
// (the value-availability rule is tested before the last-read rule).
// Both oracles walk the same checks in the same order, so their
// attributions are identical count for count; FuzzStallOracle and
// TestStallAttributionEquivalence enforce that.
//
// Attribution happens only on Issue, never on a Stalls probe: the list
// scheduler probes every ready instruction per step, but only the
// committed placement describes the emitted schedule. With no sink
// attached (the default) the classification code is never reached.

// HazardKind names why a candidate issue cycle was rejected.
type HazardKind uint8

const (
	HazardRAW HazardKind = iota
	HazardWAR
	HazardWAW
	HazardStructural
	NumHazards
)

// String names the hazard as exported metric names spell it.
func (k HazardKind) String() string {
	switch k {
	case HazardRAW:
		return "raw"
	case HazardWAR:
		return "war"
	case HazardWAW:
		return "waw"
	case HazardStructural:
		return "structural"
	}
	return fmt.Sprintf("hazard(%d)", int(k))
}

// RegClass buckets registers for data-hazard attribution.
type RegClass uint8

const (
	ClassInt RegClass = iota
	ClassFloat
	ClassCC
	ClassY
	NumRegClasses
)

// String names the class as exported metric names spell it.
func (c RegClass) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFloat:
		return "float"
	case ClassCC:
		return "cc"
	case ClassY:
		return "y"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassOf returns the attribution bucket of a register.
func ClassOf(r sparc.Reg) RegClass {
	switch {
	case r.IsFloat():
		return ClassFloat
	case r == sparc.ICC || r == sparc.FCC:
		return ClassCC
	case r == sparc.YReg:
		return ClassY
	}
	return ClassInt
}

// StallAttr accumulates classified stall cycles. It is owned by a single
// goroutine (each scheduling worker attaches its own to its private
// oracle) and carries plain counters; aggregation into shared telemetry
// is the scheduler's job. The zero value is ready to use after
// SetAttribution sizes Unit for the model.
type StallAttr struct {
	// Kind counts stall cycles by hazard kind.
	Kind [NumHazards]uint64
	// Unit counts structural stall cycles by the blocking unit
	// (len = number of model units; sized when attached).
	Unit []uint64
	// Class counts data-hazard stall cycles by kind × register class
	// (the HazardStructural row stays zero).
	Class [NumHazards][NumRegClasses]uint64
	// Total is the sum of all classified stall cycles.
	Total uint64
}

// structural records one stall cycle blocked by a unit conflict.
func (a *StallAttr) structural(unit int) {
	a.Kind[HazardStructural]++
	if unit < len(a.Unit) {
		a.Unit[unit]++
	}
	a.Total++
}

// data records one stall cycle blocked by a register hazard.
func (a *StallAttr) data(kind HazardKind, r sparc.Reg) {
	a.Kind[kind]++
	a.Class[kind][ClassOf(r)]++
	a.Total++
}

// Reset zeroes every counter, keeping the Unit storage.
func (a *StallAttr) Reset() {
	*a = StallAttr{Unit: a.Unit}
	clear(a.Unit)
}

// sizeUnits grows Unit to cover n model units.
func (a *StallAttr) sizeUnits(n int) {
	if len(a.Unit) < n {
		a.Unit = append(a.Unit, make([]uint64, n-len(a.Unit))...)
	}
}

// AddInto accumulates a's counts into b (b.Unit is grown as needed).
func (a *StallAttr) AddInto(b *StallAttr) {
	for k := range a.Kind {
		b.Kind[k] += a.Kind[k]
	}
	b.sizeUnits(len(a.Unit))
	for u := range a.Unit {
		b.Unit[u] += a.Unit[u]
	}
	for k := range a.Class {
		for c := range a.Class[k] {
			b.Class[k][c] += a.Class[k][c]
		}
	}
	b.Total += a.Total
}

// Equal reports whether two attributions carry identical counts
// (differential tests compare the oracles through this).
func (a *StallAttr) Equal(b *StallAttr) bool {
	if a.Kind != b.Kind || a.Class != b.Class || a.Total != b.Total {
		return false
	}
	n := len(a.Unit)
	if len(b.Unit) > n {
		n = len(b.Unit)
	}
	for u := 0; u < n; u++ {
		var av, bv uint64
		if u < len(a.Unit) {
			av = a.Unit[u]
		}
		if u < len(b.Unit) {
			bv = b.Unit[u]
		}
		if av != bv {
			return false
		}
	}
	return true
}

// String renders a compact one-line summary for test failures.
func (a *StallAttr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d", a.Total)
	for k := HazardKind(0); k < NumHazards; k++ {
		fmt.Fprintf(&b, " %s=%d", k, a.Kind[k])
	}
	return b.String()
}
