package pipe

import (
	"math/rand"
	"testing"

	"eel/internal/sparc"
	"eel/internal/spawn"
	hyper "eel/internal/spawn/gen/hypersparc"
	super "eel/internal/spawn/gen/supersparc"
)

// genState abstracts the three generated packages for equivalence tests.
type genState interface {
	Stalls(gid int, reads, writes []genRegTime, commit bool) int
	Clock() int64
	GroupFor(mnemonic, variant string) int
}

type genRegTime struct{ Reg, Cycle int }

type hyperAdapter struct{ s *hyper.State }

func (a hyperAdapter) Stalls(g int, r, w []genRegTime, c bool) int {
	return a.s.Stalls(g, conv[hyper.RegTime](r), conv[hyper.RegTime](w), c)
}
func (a hyperAdapter) Clock() int64             { return a.s.Clock() }
func (a hyperAdapter) GroupFor(m, v string) int { return hyper.GroupFor(m, v) }

type superAdapter struct{ s *super.State }

func (a superAdapter) Stalls(g int, r, w []genRegTime, c bool) int {
	return a.s.Stalls(g, conv[super.RegTime](r), conv[super.RegTime](w), c)
}
func (a superAdapter) Clock() int64             { return a.s.Clock() }
func (a superAdapter) GroupFor(m, v string) int { return super.GroupFor(m, v) }

func conv[T ~struct{ Reg, Cycle int }](in []genRegTime) []T {
	out := make([]T, len(in))
	for i, r := range in {
		out[i] = T{Reg: r.Reg, Cycle: r.Cycle}
	}
	return out
}

// TestGeneratedEquivalenceAllMachines extends the UltraSPARC equivalence
// check to the hyperSPARC and SuperSPARC generated tables.
func TestGeneratedEquivalenceAllMachines(t *testing.T) {
	cases := []struct {
		machine spawn.Machine
		mk      func() genState
	}{
		{spawn.HyperSPARC, func() genState { return hyperAdapter{hyper.NewState()} }},
		{spawn.SuperSPARC, func() genState { return superAdapter{super.NewState()} }},
	}
	regs := []sparc.Reg{sparc.G1, sparc.G2, sparc.G3, sparc.O0, sparc.O1, sparc.L0}
	for _, c := range cases {
		model := spawn.MustLoad(c.machine)
		r := rand.New(rand.NewSource(99))
		for trial := 0; trial < 100; trial++ {
			interp := NewState(model)
			gen := c.mk()
			for i := 0; i < 10; i++ {
				var inst sparc.Inst
				switch r.Intn(5) {
				case 0:
					inst = sparc.NewALU(sparc.OpAdd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))])
				case 1:
					inst = sparc.NewALUImm(sparc.OpSub, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(r.Intn(64)))
				case 2:
					inst = sparc.NewLoad(sparc.OpLd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(4*r.Intn(32)))
				case 3:
					inst = sparc.NewStore(sparc.OpSt, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(4*r.Intn(32)))
				default:
					inst = sparc.NewSethi(regs[r.Intn(len(regs))], int32(r.Intn(1<<20)))
				}
				g, err := model.GroupOf(inst)
				if err != nil {
					t.Fatal(err)
				}
				reads, writes := interp.resolver.Resolve(g, inst)
				gr := make([]genRegTime, len(reads))
				for j, ra := range reads {
					gr[j] = genRegTime{Reg: int(ra.Reg), Cycle: ra.Cycle}
				}
				gw := make([]genRegTime, len(writes))
				for j, wa := range writes {
					gw[j] = genRegTime{Reg: int(wa.Reg), Cycle: wa.Cycle}
				}
				variant := "r"
				if inst.UseImm {
					variant = "i"
				}
				gid := gen.GroupFor(inst.Op.Name(), variant)
				if gid != g.ID {
					t.Fatalf("%s: group mismatch for %v", c.machine, inst)
				}
				want, _, err := interp.Issue(inst)
				if err != nil {
					t.Fatal(err)
				}
				if got := gen.Stalls(gid, gr, gw, true); got != want {
					t.Fatalf("%s trial %d: stalls %d vs %d for %v", c.machine, trial, got, want, inst)
				}
			}
			if interp.Clock() != gen.Clock() {
				t.Fatalf("%s: clocks diverge", c.machine)
			}
		}
	}
}
