package pipe

import (
	"math/rand"
	"testing"

	"eel/internal/sparc"
	"eel/internal/spawn"
)

// TestFastStateMatchesReference drives the compiled FastState and the
// reference State through identical random instruction streams on every
// shipped machine and requires identical probe results, issue placements
// and clocks. The heavier block-shaped differential check lives in
// FuzzStallOracle; this one covers op kinds (divides, fp) the workload
// generator emits rarely or never.
func TestFastStateMatchesReference(t *testing.T) {
	regs := []sparc.Reg{sparc.G1, sparc.G2, sparc.G3, sparc.O0, sparc.O1, sparc.L0}
	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		r := rand.New(rand.NewSource(7))
		for trial := 0; trial < 300; trial++ {
			ref := NewState(model)
			fast := NewFastState(model)
			for i := 0; i < 30; i++ {
				var inst sparc.Inst
				switch r.Intn(8) {
				case 0:
					inst = sparc.NewALU(sparc.OpAdd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))])
				case 1:
					inst = sparc.NewALUImm(sparc.OpSub, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(r.Intn(64)))
				case 2:
					inst = sparc.NewLoad(sparc.OpLd, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(4*r.Intn(32)))
				case 3:
					inst = sparc.NewStore(sparc.OpSt, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], int32(4*r.Intn(32)))
				case 4:
					inst = sparc.NewALU(sparc.OpFmuld, sparc.FReg(4), sparc.F0, sparc.FReg(2))
				case 5:
					inst = sparc.NewALU(sparc.OpFdivd, sparc.FReg(6), sparc.F0, sparc.FReg(2))
				case 6:
					inst = sparc.NewALU(sparc.OpUdiv, regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))])
				default:
					inst = sparc.NewSethi(regs[r.Intn(len(regs))], int32(r.Intn(1<<20)))
				}
				ps, perr := ref.Stalls(inst)
				fs, ferr := fast.Stalls(inst)
				if ps != fs || (perr == nil) != (ferr == nil) {
					t.Fatalf("%s trial %d inst %d: probe (%d,%v) vs (%d,%v) for %v",
						machine, trial, i, ps, perr, fs, ferr, inst)
				}
				is, ii, ierr := ref.Issue(inst)
				js, ji, jerr := fast.Issue(inst)
				if is != js || ii != ji || (ierr == nil) != (jerr == nil) {
					t.Fatalf("%s trial %d inst %d: issue (%d,%d,%v) vs (%d,%d,%v) for %v",
						machine, trial, i, is, ii, ierr, js, ji, jerr, inst)
				}
			}
			if ref.Clock() != fast.Clock() {
				t.Fatalf("%s trial %d: clocks diverge: %d vs %d", machine, trial, ref.Clock(), fast.Clock())
			}
		}
	}
}

// TestFastStateReset checks that a Reset FastState behaves like a fresh
// one — the ring buffer and register history must fully clear.
func TestFastStateReset(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	used := NewFastState(model)
	// Dirty the state with a long-latency chain, then reset.
	used.MustIssue(sparc.NewALU(sparc.OpFdivd, sparc.FReg(4), sparc.F0, sparc.FReg(2)))
	used.MustIssue(sparc.NewALU(sparc.OpFmuld, sparc.FReg(6), sparc.FReg(4), sparc.FReg(4)))
	used.Reset()

	fresh := NewFastState(model)
	insts := []sparc.Inst{
		sparc.NewALU(sparc.OpFmuld, sparc.FReg(4), sparc.F0, sparc.FReg(2)),
		sparc.NewALU(sparc.OpFaddd, sparc.FReg(6), sparc.FReg(4), sparc.FReg(2)),
		sparc.NewLoad(sparc.OpLddf, sparc.F0, sparc.G1, 8),
	}
	for i, inst := range insts {
		us, ui := used.MustIssue(inst)
		fs, fi := fresh.MustIssue(inst)
		if us != fs || ui != fi {
			t.Fatalf("inst %d: reset state issued (%d,%d), fresh state (%d,%d)", i, us, ui, fs, fi)
		}
	}
}
