package qpt

import (
	"testing"

	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func buildExe(t *testing.T, src string) *exe.Exe {
	t.Helper()
	insts, err := sparc.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	x := exe.New()
	for _, inst := range insts {
		x.Text = append(x.Text, sparc.MustEncode(inst))
	}
	x.AddSymbol("main", x.TextBase, true)
	return x
}

const diamondLoop = `
	mov 0, %g1
	set 50, %g2
loop:
	and %g1, 1, %g3
	cmp %g3, 0
	be even
	nop
	add %g1, 1, %g1
	ba next
	nop
even:
	add %g1, 1, %g1
next:
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`

// trueCounts runs the ORIGINAL program with an observer that counts block
// entries, giving ground truth for the profile.
func trueCounts(t *testing.T, x *exe.Exe, ed *eel.Editor) map[int]uint64 {
	t.Helper()
	in, err := sim.NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	g := ed.Graph()
	startOf := make(map[int]int) // inst index -> block index
	for _, b := range g.Blocks {
		startOf[b.Start] = b.Index
	}
	counts := make(map[int]uint64)
	_, err = in.Run(1e7, func(idx int, inst *sparc.Inst) {
		if bi, ok := startOf[idx]; ok {
			counts[bi]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func profileAndCompare(t *testing.T, src string, schedule bool, disableOpt bool) {
	t.Helper()
	x := buildExe(t, src)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	want := trueCounts(t, x, ed)

	prof := &SlowProfiler{DisablePlacementOpt: disableOpt}
	opts := eel.Options{}
	if schedule {
		opts.Machine = spawn.MustLoad(spawn.UltraSPARC)
		opts.Schedule = true
	}
	out, err := ed.Edit(prof, opts)
	if err != nil {
		t.Fatal(err)
	}

	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("instrumented program did not halt")
	}

	got, err := prof.Counts(in.Mem().Read32)
	if err != nil {
		t.Fatal(err)
	}
	for bi, w := range want {
		if got[bi] != w {
			t.Errorf("block %d: profiled %d, true %d (schedule=%v opt=%v)",
				bi, got[bi], w, schedule, !disableOpt)
		}
	}
	// A block never entered must profile zero.
	for bi, g := range got {
		if want[bi] == 0 && g != 0 {
			t.Errorf("block %d: profiled %d but never executed", bi, g)
		}
	}
}

func TestProfileCountsMatchGroundTruth(t *testing.T) {
	profileAndCompare(t, diamondLoop, false, false)
}

func TestProfileCountsWithScheduling(t *testing.T) {
	profileAndCompare(t, diamondLoop, true, false)
}

func TestProfileCountsNoPlacementOpt(t *testing.T) {
	profileAndCompare(t, diamondLoop, false, true)
}

func TestPlacementOptimizationSkipsBlocks(t *testing.T) {
	// A call block falls through to its return point: the return-point
	// block has a single single-exit predecessor, so it needs no counter.
	src := `
	mov 1, %g1
	call f
	nop
	mov 2, %g2
	ta 0
f:
	retl
	nop
`
	x := buildExe(t, src)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	full := &SlowProfiler{DisablePlacementOpt: true}
	if err := full.Setup(ed); err != nil {
		t.Fatal(err)
	}
	opt := &SlowProfiler{}
	ed2, err := eel.Open(buildExe(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Setup(ed2); err != nil {
		t.Fatal(err)
	}
	if opt.NumCounters() >= full.NumCounters() {
		t.Errorf("placement optimization saved nothing: %d vs %d",
			opt.NumCounters(), full.NumCounters())
	}
}

func TestInstrumentSequenceShape(t *testing.T) {
	x := buildExe(t, diamondLoop)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	prof := &SlowProfiler{}
	if err := prof.Setup(ed); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, b := range ed.Graph().Blocks {
		seq := prof.Instrument(b)
		if seq == nil {
			continue
		}
		found = true
		if len(seq) != 4 {
			t.Fatalf("sequence has %d instructions, want 4", len(seq))
		}
		if seq[0].Op != sparc.OpSethi || seq[1].Op != sparc.OpLd ||
			seq[2].Op != sparc.OpAdd || seq[3].Op != sparc.OpSt {
			t.Errorf("sequence shape wrong: %v", seq)
		}
		for i, inst := range seq {
			if !inst.Instrumented {
				t.Errorf("instruction %d not marked Instrumented", i)
			}
		}
		// The load and store must address the same counter.
		if seq[1].Imm != seq[3].Imm || seq[1].Rs1 != seq[3].Rs1 {
			t.Error("load/store address mismatch")
		}
	}
	if !found {
		t.Fatal("no block instrumented")
	}
	if prof.CounterBase() < ed.Exe().DataBase {
		t.Error("counters below the data segment")
	}
}

func TestCountsBeforeSetupFails(t *testing.T) {
	p := &SlowProfiler{}
	if _, err := p.Counts(func(uint32) uint32 { return 0 }); err == nil {
		t.Error("Counts before Setup succeeded")
	}
}

func TestReadCounterData(t *testing.T) {
	data := []byte{0, 0, 0, 5, 0, 0, 0, 9}
	vals, err := ReadCounterData(data, 0x1000, 0x1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 5 || vals[1] != 9 {
		t.Errorf("vals = %v", vals)
	}
	if _, err := ReadCounterData(data, 0x1000, 0x1004, 2); err == nil {
		t.Error("out-of-range counters accepted")
	}
}

// TestSelfLoopGetsCounter: a block that is its own predecessor must keep
// its counter (the donor rules exclude self edges).
func TestSelfLoopGetsCounter(t *testing.T) {
	src := `
	mov 0, %g1
loop:
	add %g1, 1, %g1
	cmp %g1, 10
	bne loop
	nop
	ta 0
`
	x := buildExe(t, src)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	prof := &SlowProfiler{}
	if err := prof.Setup(ed); err != nil {
		t.Fatal(err)
	}
	var loopBlock int = -1
	for _, b := range ed.Graph().Blocks {
		for _, s := range b.Succs {
			if s == b {
				loopBlock = b.Index
			}
		}
	}
	if loopBlock < 0 {
		t.Fatal("no self-loop block found")
	}
	if !prof.Instrumented(loopBlock) {
		t.Error("self-loop block lost its counter")
	}
}
