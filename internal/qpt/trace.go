package qpt

import (
	"encoding/binary"
	"fmt"

	"eel/internal/cfg"
	"eel/internal/eel"
	"eel/internal/sparc"
)

// BlockTracer is the tracing counterpart of slow profiling: every
// instrumented block appends its block id to an in-memory trace buffer, in
// execution order — the program tracing qpt performed (Larus, IEEE
// Computer '93). The sequence is six instructions, so it stresses the
// scheduler harder than the counter sequence:
//
//	sethi %hi(cursorAddr), %g6
//	ld    [%g6 + %lo(cursorAddr)], %g7   ; current cursor
//	st    blockIDreg, [%g7]              ; append id (id materialized first)
//	add   %g7, 4, %g7
//	st    %g7, [%g6 + %lo(cursorAddr)]   ; bump cursor
//
// Block ids up to 4095 are materialized into %g5 with one or-immediate;
// larger ids need sethi+or. The trace buffer follows the cursor word in
// the data segment.
type BlockTracer struct {
	// Entries is the trace buffer capacity (number of 32-bit records).
	// Zero means 64k entries. The program traps (run error) if the buffer
	// overflows and Wrap is false.
	Entries int
	// Wrap makes the buffer circular by masking the cursor. Entries must
	// then be a power of two.
	Wrap bool

	cursorAddr uint32
	bufAddr    uint32
	graph      *cfg.Graph
}

var _ eel.Instrumenter = (*BlockTracer)(nil)

// Setup allocates the cursor word and trace buffer.
func (t *BlockTracer) Setup(ed *eel.Editor) error {
	if t.Entries == 0 {
		t.Entries = 1 << 16
	}
	if t.Wrap && t.Entries&(t.Entries-1) != 0 {
		return fmt.Errorf("qpt: wrap requires a power-of-two trace size, got %d", t.Entries)
	}
	if t.Wrap && 4*t.Entries-1 > 4095 {
		// The wrap mask must fit a simm13 and-immediate.
		return fmt.Errorf("qpt: wrap supports at most 1024 entries, got %d", t.Entries)
	}
	t.graph = ed.Graph()
	x := ed.Exe()
	base := x.DataEnd()
	if rem := base % 4; rem != 0 {
		x.Data = append(x.Data, make([]byte, 4-rem)...)
		base += 4 - rem
	}
	t.cursorAddr = base
	t.bufAddr = base + 4
	buf := make([]byte, 4+4*t.Entries)
	// The cursor starts at the buffer base.
	binary.BigEndian.PutUint32(buf, t.bufAddr)
	x.Data = append(x.Data, buf...)
	x.AddSymbol("__qpt_trace_cursor", t.cursorAddr, false)
	x.AddSymbol("__qpt_trace_buf", t.bufAddr, false)
	return nil
}

// Instrument emits the trace-append sequence for every block.
func (t *BlockTracer) Instrument(b *cfg.Block) []sparc.Inst {
	hi := int32(t.cursorAddr >> 10)
	lo := int32(t.cursorAddr & 0x3ff)
	var seq []sparc.Inst
	// Materialize the block id into %g5.
	id := int32(b.Index)
	if id < 1<<12 {
		seq = append(seq, sparc.NewALUImm(sparc.OpOr, sparc.G5, sparc.G0, id))
	} else {
		seq = append(seq,
			sparc.NewSethi(sparc.G5, id>>10),
			sparc.NewALUImm(sparc.OpOr, sparc.G5, sparc.G5, id&0x3ff))
	}
	seq = append(seq,
		sparc.NewSethi(AddrReg, hi),
		sparc.NewLoad(sparc.OpLd, ValReg, AddrReg, lo),
		sparc.NewStore(sparc.OpSt, sparc.G5, ValReg, 0),
		sparc.NewALUImm(sparc.OpAdd, ValReg, ValReg, 4),
	)
	if t.Wrap {
		// cursor = buf + ((cursor + 4 - buf) & mask) needs the buffer
		// base; keep it simple: mask the offset via and after subtract.
		// wrap: off = (cursor - buf) & (4*Entries - 1); cursor = buf + off
		// Requires the buffer base in a register; materialize into %g5
		// (the id is already stored).
		seq = append(seq,
			sparc.NewSethi(sparc.G5, int32(t.bufAddr>>10)),
			sparc.NewALUImm(sparc.OpOr, sparc.G5, sparc.G5, int32(t.bufAddr&0x3ff)),
			sparc.NewALU(sparc.OpSub, ValReg, ValReg, sparc.G5),
			sparc.NewALUImm(sparc.OpAnd, ValReg, ValReg, int32(4*t.Entries-1)),
			sparc.NewALU(sparc.OpAdd, ValReg, ValReg, sparc.G5),
		)
	}
	seq = append(seq, sparc.NewStore(sparc.OpSt, ValReg, AddrReg, lo))
	for i := range seq {
		seq[i].Instrumented = true
	}
	return seq
}

// Trace decodes the recorded block ids from a finished run's memory.
func (t *BlockTracer) Trace(read32 func(addr uint32) uint32) ([]int, error) {
	if t.graph == nil {
		return nil, fmt.Errorf("qpt: Trace before Setup")
	}
	cursor := read32(t.cursorAddr)
	if cursor < t.bufAddr || cursor > t.bufAddr+uint32(4*t.Entries) {
		return nil, fmt.Errorf("qpt: trace cursor %#x outside buffer", cursor)
	}
	n := int(cursor-t.bufAddr) / 4
	out := make([]int, n)
	for i := 0; i < n; i++ {
		id := read32(t.bufAddr + uint32(4*i))
		if int(id) >= len(t.graph.Blocks) {
			return nil, fmt.Errorf("qpt: trace entry %d has bad block id %d", i, id)
		}
		out[i] = int(id)
	}
	return out, nil
}

// WrapMask is exported for tests: the cursor wrap mask in bytes.
func (t *BlockTracer) WrapMask() int { return 4*t.Entries - 1 }
