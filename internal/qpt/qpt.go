// Package qpt implements QPT2's "slow" profiling instrumentation
// (Ball & Larus, TOPLAS '94; paper §4.2): a four-instruction sequence —
// set immediate, load, add, store — that increments a per-block execution
// counter, inserted into almost every basic block. Blocks with a single
// instrumented single-exit predecessor, or a single instrumented
// single-entry successor, are not instrumented; their counts are derived.
package qpt

import (
	"encoding/binary"
	"fmt"

	"eel/internal/cfg"
	"eel/internal/eel"
	"eel/internal/sparc"
)

// Scratch registers for the counter sequence. SPARC ABIs reserve %g6 and
// %g7 for the system; like QPT, the instrumentation claims them, and the
// workload generator leaves them untouched.
const (
	AddrReg = sparc.G6
	ValReg  = sparc.G7
)

// SlowProfiler inserts the 4-instruction counter sequence. The zero value
// is ready to use as an eel.Instrumenter.
type SlowProfiler struct {
	// DisablePlacementOpt instruments every block, ignoring the
	// skip-redundant-blocks optimization (ablation).
	DisablePlacementOpt bool

	counterBase uint32
	counterOf   map[int]int // block index -> counter slot
	derivedFrom map[int]int // skipped block -> donor block
	graph       *cfg.Graph
	numCounters int
}

var _ eel.Instrumenter = (*SlowProfiler)(nil)

// Setup chooses which blocks to instrument and allocates one zeroed
// 32-bit counter per instrumented block at the end of the data segment.
func (p *SlowProfiler) Setup(ed *eel.Editor) error {
	g := ed.Graph()
	p.graph = g
	p.counterOf = make(map[int]int)
	p.derivedFrom = make(map[int]int)

	instrumented := make([]bool, len(g.Blocks))
	for i := range instrumented {
		instrumented[i] = true
	}
	if !p.DisablePlacementOpt {
		for _, b := range g.Blocks {
			// Edges are deduplicated: a conditional branch whose target is
			// its own fallthrough contributes one logical edge.
			preds := uniqueBlocks(b.Preds)
			// Single instrumented single-exit predecessor: the
			// predecessor's counter counts this block too.
			if len(preds) == 1 {
				pred := preds[0]
				if pred != b && len(uniqueBlocks(pred.Succs)) == 1 && instrumented[pred.Index] {
					instrumented[b.Index] = false
					p.derivedFrom[b.Index] = pred.Index
					continue
				}
			}
			// Single instrumented single-entry successor.
			succs := uniqueBlocks(b.Succs)
			if len(succs) == 1 {
				succ := succs[0]
				if succ != b && len(uniqueBlocks(succ.Preds)) == 1 && instrumented[succ.Index] {
					instrumented[b.Index] = false
					p.derivedFrom[b.Index] = succ.Index
				}
			}
		}
	}

	// Break donor cycles (possible in unreachable block pairs): any block
	// whose donor chain never reaches an instrumented block is
	// re-instrumented.
	for _, b := range g.Blocks {
		idx := b.Index
		steps := 0
		for !instrumented[idx] {
			next, ok := p.derivedFrom[idx]
			if !ok || steps > len(g.Blocks) {
				instrumented[b.Index] = true
				delete(p.derivedFrom, b.Index)
				break
			}
			idx = next
			steps++
		}
	}

	x := ed.Exe()
	// Counters live past the initialized data, 4-byte aligned.
	base := x.DataEnd()
	if rem := base % 4; rem != 0 {
		pad := 4 - rem
		x.Data = append(x.Data, make([]byte, pad)...)
		base += pad
	}
	p.counterBase = base
	for _, b := range g.Blocks {
		if instrumented[b.Index] {
			p.counterOf[b.Index] = p.numCounters
			p.numCounters++
		}
	}
	x.Data = append(x.Data, make([]byte, 4*p.numCounters)...)
	x.AddSymbol("__qpt_counters", base, false)
	return nil
}

// CounterBase returns the address of the first counter.
func (p *SlowProfiler) CounterBase() uint32 { return p.counterBase }

// NumCounters returns the number of allocated counters.
func (p *SlowProfiler) NumCounters() int { return p.numCounters }

// Instrumented reports whether block b received a counter.
func (p *SlowProfiler) Instrumented(b int) bool {
	_, ok := p.counterOf[b]
	return ok
}

// Instrument returns the slow-profiling sequence for a block:
//
//	sethi %hi(counter), %g6
//	ld    [%g6 + %lo(counter)], %g7
//	add   %g7, 1, %g7
//	st    %g7, [%g6 + %lo(counter)]
//
// Every instruction is marked Instrumented so the scheduler applies the
// paper's relaxed memory-aliasing rule.
func (p *SlowProfiler) Instrument(b *cfg.Block) []sparc.Inst {
	slot, ok := p.counterOf[b.Index]
	if !ok {
		return nil
	}
	addr := p.counterBase + uint32(4*slot)
	hi := int32(addr >> 10)
	lo := int32(addr & 0x3ff)
	seq := []sparc.Inst{
		sparc.NewSethi(AddrReg, hi),
		sparc.NewLoad(sparc.OpLd, ValReg, AddrReg, lo),
		sparc.NewALUImm(sparc.OpAdd, ValReg, ValReg, 1),
		sparc.NewStore(sparc.OpSt, ValReg, AddrReg, lo),
	}
	for i := range seq {
		seq[i].Instrumented = true
	}
	return seq
}

// Counts reconstructs per-block execution counts from the counter memory
// of a finished run. mem must expose the edited executable's data segment
// (read32 returns the word at an absolute address). Skipped blocks resolve
// through their donor block, following chains.
func (p *SlowProfiler) Counts(read32 func(addr uint32) uint32) (map[int]uint64, error) {
	if p.graph == nil {
		return nil, fmt.Errorf("qpt: Counts before Setup")
	}
	out := make(map[int]uint64, len(p.graph.Blocks))
	for _, b := range p.graph.Blocks {
		idx := b.Index
		seen := 0
		for {
			if slot, ok := p.counterOf[idx]; ok {
				out[b.Index] = uint64(read32(p.counterBase + uint32(4*slot)))
				break
			}
			donor, ok := p.derivedFrom[idx]
			if !ok {
				return nil, fmt.Errorf("qpt: block %d has no counter and no donor", idx)
			}
			idx = donor
			if seen++; seen > len(p.graph.Blocks) {
				return nil, fmt.Errorf("qpt: donor cycle at block %d", b.Index)
			}
		}
	}
	return out, nil
}

// ReadCounterData decodes counter values straight from an executable's
// data segment image.
func ReadCounterData(data []byte, dataBase, counterBase uint32, n int) ([]uint32, error) {
	off := int(counterBase - dataBase)
	if off < 0 || off+4*n > len(data) {
		return nil, fmt.Errorf("qpt: counter area [%d,%d) outside data segment", off, off+4*n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(data[off+4*i:])
	}
	return out, nil
}

// uniqueBlocks deduplicates an edge list in place-order.
func uniqueBlocks(bs []*cfg.Block) []*cfg.Block {
	out := bs[:0:0]
	for _, b := range bs {
		dup := false
		for _, o := range out {
			if o == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	return out
}
