package qpt

import (
	"reflect"
	"testing"

	"eel/internal/eel"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// traceGroundTruth records the true block entry sequence.
func traceGroundTruth(t *testing.T, src string) ([]int, *eel.Editor) {
	t.Helper()
	x := buildExe(t, src)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	startOf := make(map[int]int)
	for _, b := range ed.Graph().Blocks {
		startOf[b.Start] = b.Index
	}
	in, err := sim.NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	var seq []int
	if _, err := in.Run(1e7, func(idx int, inst *sparc.Inst) {
		if bi, ok := startOf[idx]; ok {
			seq = append(seq, bi)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return seq, ed
}

func runTracer(t *testing.T, ed *eel.Editor, tracer *BlockTracer, schedule bool) []int {
	t.Helper()
	opts := eel.Options{}
	if schedule {
		opts.Machine = spawn.MustLoad(spawn.UltraSPARC)
		opts.Schedule = true
	}
	out, err := ed.Edit(tracer, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("traced program did not halt")
	}
	trace, err := tracer.Trace(in.Mem().Read32)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestTraceMatchesGroundTruth(t *testing.T) {
	want, ed := traceGroundTruth(t, diamondLoop)
	for _, schedule := range []bool{false, true} {
		got := runTracer(t, ed, &BlockTracer{Entries: 1 << 12}, schedule)
		if !reflect.DeepEqual(got, want) {
			n := len(got)
			if len(want) < n {
				n = len(want)
			}
			for i := 0; i < n; i++ {
				if got[i] != want[i] {
					t.Fatalf("schedule=%v: trace diverges at %d: got %d want %d",
						schedule, i, got[i], want[i])
				}
			}
			t.Fatalf("schedule=%v: trace length %d, want %d", schedule, len(got), len(want))
		}
	}
}

func TestTraceWrap(t *testing.T) {
	// A 16-entry circular buffer: the slots before the cursor hold the
	// most recent records, so Trace returns exactly the tail of the true
	// sequence.
	want, ed := traceGroundTruth(t, diamondLoop)
	tracer := &BlockTracer{Entries: 16, Wrap: true}
	got := runTracer(t, ed, tracer, false)
	if len(got) > 16 {
		t.Fatalf("wrapped trace has %d entries", len(got))
	}
	tail := want[len(want)-len(got):]
	if !reflect.DeepEqual(got, tail) {
		t.Errorf("wrapped trace:\n got %v\nwant %v", got, tail)
	}
}

func TestTraceWrapSizeLimit(t *testing.T) {
	x := buildExe(t, diamondLoop)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ed.Edit(&BlockTracer{Entries: 1 << 12, Wrap: true}, eel.Options{}); err == nil {
		t.Error("oversized wrap buffer accepted")
	}
}

func TestTraceWrapRequiresPowerOfTwo(t *testing.T) {
	x := buildExe(t, diamondLoop)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ed.Edit(&BlockTracer{Entries: 100, Wrap: true}, eel.Options{}); err == nil {
		t.Error("non-power-of-two wrap accepted")
	}
}

func TestTraceBeforeSetupFails(t *testing.T) {
	tr := &BlockTracer{}
	if _, err := tr.Trace(func(uint32) uint32 { return 0 }); err == nil {
		t.Error("Trace before Setup succeeded")
	}
}

func TestTraceOverflowDetected(t *testing.T) {
	_, ed := traceGroundTruth(t, diamondLoop)
	tracer := &BlockTracer{Entries: 8} // far too small, no wrap
	opts := eel.Options{}
	out, err := ed.Edit(tracer, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(1e7, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tracer.Trace(in.Mem().Read32); err == nil {
		t.Error("overflowed trace read back without error")
	}
}

func TestTraceOnWorkload(t *testing.T) {
	// Tracing a generated benchmark must preserve behavior and produce a
	// well-formed trace under scheduling.
	b, _ := workload.ByName("129.compress", spawn.UltraSPARC)
	x, err := workload.Generate(b, workload.Config{DynamicInsts: 60_000, SkipCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	tracer := &BlockTracer{Entries: 1 << 10, Wrap: true}
	out, err := ed.Edit(tracer, eel.Options{Machine: spawn.MustLoad(spawn.UltraSPARC), Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("traced workload did not halt")
	}
	trace, err := tracer.Trace(in.Mem().Read32)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Error("empty trace")
	}
}
