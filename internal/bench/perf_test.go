package bench

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: eel/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleBlocks/oracle=fast/workers=1         	      51	  23681594 ns/op	 3256653 B/op	   57158 allocs/op
BenchmarkScheduleBlocks/oracle=fast/workers=2-8       	      52	  23035667 ns/op	 3257617 B/op	   57170 allocs/op
BenchmarkScheduleBlocksCached                         	    1998	    611570 ns/op	  420448 B/op	    2001 allocs/op
PASS
ok  	eel/internal/core	11.188s
`

func TestParseGoBench(t *testing.T) {
	results, cpu, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if want := "Intel(R) Xeon(R) Processor @ 2.10GHz"; cpu != want {
		t.Errorf("cpu = %q, want %q", cpu, want)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkScheduleBlocks/oracle=fast/workers=1" ||
		r.Iters != 51 || r.NsPerOp != 23681594 || r.BytesPerOp != 3256653 || r.AllocsPerOp != 57158 {
		t.Errorf("first result mismatched: %+v", r)
	}
	// The -GOMAXPROCS suffix must be stripped; the workers=2 subtest name
	// itself must survive.
	if got, want := results[1].Name, "BenchmarkScheduleBlocks/oracle=fast/workers=2"; got != want {
		t.Errorf("normalized name = %q, want %q", got, want)
	}
}

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":             "BenchmarkFoo",
		"BenchmarkFoo":               "BenchmarkFoo",
		"BenchmarkFoo/workers=2-16":  "BenchmarkFoo/workers=2",
		"BenchmarkFoo/oracle=fast-x": "BenchmarkFoo/oracle=fast-x",
		"BenchmarkFoo-":              "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := normalizeBenchName(in); got != want {
			t.Errorf("normalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPerfFileRoundTrip(t *testing.T) {
	results, cpu, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	f := &PerfFile{Note: "test", CPU: cpu, Series: map[string][]PerfResult{"current": results}}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/perf.json"
	if err := os.WriteFile(dir, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadPerfFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g.Note != f.Note || g.CPU != f.CPU || len(g.Series["current"]) != len(results) {
		t.Fatalf("round trip mismatch: %+v", g)
	}
	for i, r := range g.Series["current"] {
		if r != results[i] {
			t.Errorf("result %d: %+v != %+v", i, r, results[i])
		}
	}
}

func TestMedianByName(t *testing.T) {
	rs := []PerfResult{
		{Name: "B", NsPerOp: 7},
		{Name: "A", NsPerOp: 30},
		{Name: "A", NsPerOp: 10},
		{Name: "A", NsPerOp: 20},
	}
	got := MedianByName(rs)
	if len(got) != 2 || got[0].Name != "A" || got[0].NsPerOp != 20 || got[1].Name != "B" || got[1].NsPerOp != 7 {
		t.Fatalf("MedianByName = %+v", got)
	}
	// Even group size keeps the lower middle: deterministic, slightly
	// optimistic, fine for an advisory trajectory.
	if got := MedianByName([]PerfResult{{Name: "C", NsPerOp: 1}, {Name: "C", NsPerOp: 2}}); got[0].NsPerOp != 1 {
		t.Fatalf("even-sized median = %+v", got)
	}
}

func TestCompare(t *testing.T) {
	baseline := []PerfResult{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 2000},
		{Name: "Gone", NsPerOp: 10},
	}
	current := []PerfResult{
		{Name: "B", NsPerOp: 1000},
		{Name: "A", NsPerOp: 1500},
		{Name: "New", NsPerOp: 5},
	}
	deltas := Compare(baseline, current)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	if deltas[0].Name != "A" || math.Abs(deltas[0].Pct-50) > 1e-9 {
		t.Errorf("delta A wrong: %+v", deltas[0])
	}
	if deltas[1].Name != "B" || math.Abs(deltas[1].Pct+50) > 1e-9 {
		t.Errorf("delta B wrong: %+v", deltas[1])
	}
	out := FormatDeltas(deltas)
	if !strings.Contains(out, "+50.0%") || !strings.Contains(out, "-50.0%") {
		t.Errorf("formatted table missing deltas:\n%s", out)
	}
}

func TestParseGoBenchManifest(t *testing.T) {
	in := `# manifest: eeld_numcpu=8
# manifest: eeld_workers = 4
# manifest: malformed-no-equals
cpu: Fake CPU
BenchmarkLoad 10 100 ns/op
`
	results, cpu, manifest, err := ParseGoBenchManifest(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Fake CPU" || len(results) != 1 {
		t.Fatalf("cpu=%q results=%+v", cpu, results)
	}
	want := map[string]string{"eeld_numcpu": "8", "eeld_workers": "4"}
	if len(manifest) != len(want) {
		t.Fatalf("manifest = %v, want %v", manifest, want)
	}
	for k, v := range want {
		if manifest[k] != v {
			t.Errorf("manifest[%q] = %q, want %q", k, manifest[k], v)
		}
	}
	// Plain bench output yields a nil manifest.
	_, _, manifest, err = ParseGoBenchManifest(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if manifest != nil {
		t.Errorf("manifest on plain input = %v, want nil", manifest)
	}
}

func TestCoreCountMismatch(t *testing.T) {
	base := map[string]string{"numcpu": "8", "go": "go1.22"}
	cur := map[string]string{"numcpu": "1", "go": "go1.23"}
	key, bv, cv, mismatch := CoreCountMismatch(base, cur)
	if !mismatch || key != "numcpu" || bv != "8" || cv != "1" {
		t.Errorf("got (%q,%q,%q,%v), want numcpu 8 vs 1", key, bv, cv, mismatch)
	}
	// Equal values, or a key missing from either side, is not a mismatch.
	for _, cur := range []map[string]string{
		{"numcpu": "8"},
		{"go": "go1.23"},
		nil,
	} {
		if _, _, _, m := CoreCountMismatch(base, cur); m {
			t.Errorf("CoreCountMismatch(%v, %v) = true, want false", base, cur)
		}
	}
	// Daemon-side core counts gate eeld-load series the same way.
	if _, _, _, m := CoreCountMismatch(
		map[string]string{"eeld_numcpu": "8"},
		map[string]string{"eeld_numcpu": "2"}); !m {
		t.Error("eeld_numcpu mismatch not detected")
	}
}
