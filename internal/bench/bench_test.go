package bench

import (
	"bytes"
	"strings"
	"testing"

	"eel/internal/spawn"
)

// small returns a fast configuration for tests.
func small(machine spawn.Machine) TableConfig {
	return TableConfig{
		Machine:        machine,
		DynamicInsts:   120_000,
		ValidateCounts: true,
	}
}

func TestRunBenchmarkInvariants(t *testing.T) {
	cfg := small(spawn.UltraSPARC)
	for _, name := range []string{"130.li", "101.tomcatv"} {
		cfg.Benchmarks = []string{name}
		tab, err := RunTable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 1 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		r := tab.Rows[0]
		if r.UninstCycles <= 0 || r.InstCycles <= 0 || r.SchedCycles <= 0 {
			t.Errorf("%s: non-positive cycles: %+v", name, r)
		}
		// Instrumentation always costs.
		if r.InstCycles <= r.BaseCycles {
			t.Errorf("%s: instrumented not slower than baseline", name)
		}
		// Scheduling must not make the instrumented binary slower by more
		// than noise.
		if float64(r.SchedCycles) > float64(r.InstCycles)*1.05 {
			t.Errorf("%s: scheduling hurt badly: %d -> %d", name, r.InstCycles, r.SchedCycles)
		}
		if r.InstRatio <= 1 {
			t.Errorf("%s: inst ratio %.2f <= 1", name, r.InstRatio)
		}
		if r.AvgBB <= 1 {
			t.Errorf("%s: avg block size %.2f", name, r.AvgBB)
		}
	}
}

func TestRescheduleBaselineMode(t *testing.T) {
	cfg := small(spawn.UltraSPARC)
	cfg.RescheduleBaseline = true
	cfg.Benchmarks = []string{"101.tomcatv"}
	tab, err := RunTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	if r.RescheduleRatio <= 0 {
		t.Errorf("reschedule ratio = %f", r.RescheduleRatio)
	}
	// The baseline must be the rescheduled binary, not the original.
	if r.BaseCycles == r.UninstCycles && r.RescheduleRatio == 1.0 {
		t.Log("rescheduling was a no-op on this input (acceptable but unusual)")
	}
}

func TestTableAveragesAndString(t *testing.T) {
	cfg := small(spawn.UltraSPARC)
	cfg.Benchmarks = []string{"130.li", "101.tomcatv"}
	tab, err := RunTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ii, is, _, n := tab.Averages(false)
	if n != 1 || ii <= 1 || is <= 1 {
		t.Errorf("integer averages: %f %f n=%d", ii, is, n)
	}
	_, _, _, fn := tab.Averages(true)
	if fn != 1 {
		t.Errorf("fp count = %d", fn)
	}
	s := tab.String()
	for _, want := range []string{"130.li", "101.tomcatv", "CINT95 Average", "CFP95 Average", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("table rendering lacks %q:\n%s", want, s)
		}
	}
}

func TestCFPHidesMoreThanCINT(t *testing.T) {
	// The paper's central comparison: scheduling hides more of the
	// overhead in floating-point programs (large blocks) than integer
	// programs (small blocks), and instrumentation slows integer programs
	// down much more.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := small(spawn.UltraSPARC)
	cfg.Benchmarks = []string{"130.li", "147.vortex", "102.swim", "107.mgrid"}
	tab, err := RunTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intInst, _, intHid, _ := tab.Averages(false)
	fpInst, _, fpHid, _ := tab.Averages(true)
	if intInst <= fpInst {
		t.Errorf("instrumentation should cost integer programs more: int %.2f vs fp %.2f",
			intInst, fpInst)
	}
	if fpHid <= intHid {
		t.Errorf("scheduling should hide more in fp programs: fp %.1f%% vs int %.1f%%",
			fpHid, intHid)
	}
}

func TestDisablePlacementOptCostsMore(t *testing.T) {
	cfg := small(spawn.UltraSPARC)
	cfg.Benchmarks = []string{"130.li"}
	opt, err := RunTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePlacementOpt = true
	noopt, err := RunTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if noopt.Rows[0].InstCycles <= opt.Rows[0].InstCycles {
		t.Errorf("disabling placement optimization should cost cycles: %d vs %d",
			noopt.Rows[0].InstCycles, opt.Rows[0].InstCycles)
	}
}

func TestUnknownBenchmarksAreAnError(t *testing.T) {
	cfg := small(spawn.UltraSPARC)
	cfg.Benchmarks = []string{"130.li", "999.nothere", "000.bogus"}
	_, err := RunTable(cfg)
	if err == nil {
		t.Fatal("unknown benchmark names were silently ignored")
	}
	for _, name := range []string{"999.nothere", "000.bogus"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list unknown benchmark %q", err, name)
		}
	}
	if strings.Contains(err.Error(), "130.li") {
		t.Errorf("error %q lists a known benchmark", err)
	}
}

func TestRunTableDeterministicAcrossWorkers(t *testing.T) {
	cfg := small(spawn.UltraSPARC)
	cfg.DynamicInsts = 60_000
	cfg.Benchmarks = []string{"130.li", "101.tomcatv", "147.vortex"}
	var out [2]bytes.Buffer
	for i, workers := range []int{1, 4} {
		cfg.TableWorkers = workers
		tab, err := RunTable(cfg)
		if err != nil {
			t.Fatalf("tableworkers=%d: %v", workers, err)
		}
		if err := tab.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("JSON output differs between tableworkers=1 and 4:\n%s\n---\n%s",
			out[0].String(), out[1].String())
	}
}
