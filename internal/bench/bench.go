// Package bench reproduces the paper's evaluation (§4.2): for each SPEC95
// stand-in it measures the uninstrumented, instrumented-unscheduled and
// instrumented-scheduled executables on the machine's hardware timing
// model, and renders Tables 1–3 (times, slowdown ratios, and the fraction
// of instrumentation overhead hidden by scheduling).
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/obs"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// TableConfig selects one experiment.
type TableConfig struct {
	Machine spawn.Machine
	// RescheduleBaseline reproduces Table 2: EEL reschedules the original
	// program first, and instrumentation is applied to that binary.
	RescheduleBaseline bool
	// DynamicInsts approximately sizes each benchmark's run.
	DynamicInsts uint64
	Seed         int64
	// Sched tunes the scheduler (ablations); zero value is the paper's.
	Sched core.Options
	// DisablePlacementOpt instruments every block (ablation).
	DisablePlacementOpt bool
	// ValidateCounts cross-checks profile counters between the scheduled
	// and unscheduled instrumented runs.
	ValidateCounts bool
	// Benchmarks restricts the run to the named subset (nil = all 18).
	Benchmarks []string
	// Workers bounds the scheduling worker pool (see core.Options.Workers;
	// 0 = GOMAXPROCS). Scheduling output is byte-identical for any value,
	// so tables never depend on it — only wall-clock time does.
	Workers int
	// Oracle selects the stall oracle (see core.Options.Oracle). Like
	// Workers it never changes a table, only editing wall-clock time: the
	// fast and reference oracles schedule identically.
	Oracle core.Oracle
	// Engine selects the scheduling engine (see core.Options.Engine).
	// Also wall-clock-only: both engines schedule identically.
	Engine core.Engine
	// TableWorkers bounds the benchmark-row worker pool in RunTable
	// (0 = GOMAXPROCS). Like Workers it never changes a table — rows are
	// independent experiments and land in suite order regardless — so it
	// is excluded from the archived JSON.
	TableWorkers int `json:"-"`
	// Obs, when non-nil, collects the run's telemetry: scheduler stall
	// attribution (propagated into Sched.Obs), simulator run totals,
	// per-row wall-time spans and the slowest_rows extra. Excluded from
	// JSON — telemetry never changes a table, and archived tables must
	// stay byte-identical with and without it.
	Obs *obs.Registry `json:"-"`
}

func (c TableConfig) withDefaults() TableConfig {
	if c.Machine == "" {
		c.Machine = spawn.UltraSPARC
	}
	if c.DynamicInsts == 0 {
		c.DynamicInsts = 600_000
	}
	if c.Workers != 0 && c.Sched.Workers == 0 {
		c.Sched.Workers = c.Workers
	}
	if c.Oracle != core.OracleFast && c.Sched.Oracle == core.OracleFast {
		c.Sched.Oracle = c.Oracle
	}
	if c.Engine != core.EngineFast && c.Sched.Engine == core.EngineFast {
		c.Sched.Engine = c.Engine
	}
	if c.Obs != nil && c.Sched.Obs == nil {
		c.Sched.Obs = c.Obs
	}
	return c
}

// stampManifest records the experiment's identity in the registry's
// run-manifest block, layered over the environment facts.
func (c TableConfig) stampManifest() {
	r := c.Obs
	if r == nil {
		return
	}
	r.StampRunManifest()
	r.SetManifest("machine", string(c.Machine))
	r.SetManifest("engine", c.Sched.Engine.String())
	r.SetManifest("oracle", c.Sched.Oracle.String())
	r.SetManifest("workers", strconv.Itoa(c.Sched.Workers))
	r.SetManifest("tableworkers", strconv.Itoa(c.TableWorkers))
	r.SetManifest("dynamic_insts", strconv.FormatUint(c.DynamicInsts, 10))
	r.SetManifest("reschedule_baseline", strconv.FormatBool(c.RescheduleBaseline))
}

// Row is one table line.
type Row struct {
	Name  string
	FP    bool
	AvgBB float64

	UninstCycles int64 // original binary (Tables 1/3) — always measured
	BaseCycles   int64 // baseline for the experiment (= Uninst, or rescheduled)
	InstCycles   int64
	SchedCycles  int64

	UninstSec, BaseSec, InstSec, SchedSec float64

	// RescheduleRatio = BaseCycles/UninstCycles (the paper's Table 2
	// Uninst column parenthetical).
	RescheduleRatio float64
	InstRatio       float64 // InstCycles / UninstCycles
	SchedRatio      float64 // SchedCycles / UninstCycles
	PctHidden       float64 // 100 * (Inst-Sched)/(Inst-Base)
}

// Table is a complete experiment result.
type Table struct {
	Config TableConfig
	Rows   []Row
}

// measure runs x under the measurer and returns (cycles, seconds) plus
// the finished interpreter, which the caller must pass back to
// meas.Release (the timing observer is recycled here).
func measure(meas *sim.Measurer, x *exe.Exe, maxSteps uint64) (int64, float64, *sim.Interp, error) {
	in, tm, res, err := meas.Run(x, maxSteps)
	if err != nil {
		return 0, 0, nil, err
	}
	if !res.Halted {
		meas.Release(in, tm)
		return 0, 0, nil, fmt.Errorf("bench: run did not halt")
	}
	cycles, sec := tm.Cycles(), tm.Seconds()
	meas.Release(nil, tm)
	return cycles, sec, in, nil
}

// RunBenchmark measures one benchmark under a configuration.
func RunBenchmark(b workload.Benchmark, cfg TableConfig) (Row, error) {
	cfg = cfg.withDefaults()
	model, err := spawn.Load(cfg.Machine)
	if err != nil {
		return Row{}, err
	}
	meas := sim.NewMeasurer(model, sim.DefaultTiming(cfg.Machine))
	meas.Obs = cfg.Obs
	return runBenchmark(b, cfg, model, meas)
}

// runBenchmark is RunBenchmark with the model and measurer supplied by the
// caller (RunTable's workers reuse both across rows). cfg must already
// have defaults applied.
//
// The measurement legs are independent experiments on immutable inputs —
// the generated original and the opened baseline editor — so they run
// concurrently: the editor never mutates its executable, edits go through
// the mutex-sharded scheduling cache, and each simulation owns its
// interpreter and timing state. Results are deterministic because each
// leg writes distinct fields and errors are checked in a fixed order
// after the join.
func runBenchmark(b workload.Benchmark, cfg TableConfig, model *spawn.Model, meas *sim.Measurer) (Row, error) {
	maxSteps := 40*cfg.DynamicInsts + 1_000_000

	orig, err := workload.Generate(b, workload.Config{
		Machine:      cfg.Machine,
		DynamicInsts: cfg.DynamicInsts,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s: %w", b.Name, err)
	}
	row := Row{Name: b.Name, FP: b.FP}

	// The baseline binary is the one input every instrumented leg shares,
	// so rescheduling (Table 2) stays on the serial spine.
	base := orig
	if cfg.RescheduleBaseline {
		ed, err := eel.Open(orig)
		if err != nil {
			return Row{}, err
		}
		base, err = ed.Reschedule(model, cfg.Sched)
		if err != nil {
			return Row{}, fmt.Errorf("bench: %s reschedule: %w", b.Name, err)
		}
	}
	ed, err := eel.Open(base)
	if err != nil {
		return Row{}, err
	}

	profInst := &qpt.SlowProfiler{DisablePlacementOpt: cfg.DisablePlacementOpt}
	profSched := &qpt.SlowProfiler{DisablePlacementOpt: cfg.DisablePlacementOpt}
	var instRun, schedRun *sim.Interp
	var errAvg, errUninst, errBase, errInst, errSched error

	var wg sync.WaitGroup
	leg := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	leg(func() {
		row.AvgBB, errAvg = workload.MeasureAvgBlockSize(orig, 300_000)
	})
	leg(func() {
		var in *sim.Interp
		var err error
		row.UninstCycles, row.UninstSec, in, err = measure(meas, orig, maxSteps)
		if err != nil {
			errUninst = fmt.Errorf("bench: %s uninstrumented: %w", b.Name, err)
			return
		}
		meas.Release(in, nil)
	})
	if cfg.RescheduleBaseline {
		leg(func() {
			var in *sim.Interp
			var err error
			row.BaseCycles, row.BaseSec, in, err = measure(meas, base, maxSteps)
			if err != nil {
				errBase = fmt.Errorf("bench: %s rescheduled: %w", b.Name, err)
				return
			}
			meas.Release(in, nil)
		})
	}
	leg(func() {
		// Instrumented, unscheduled.
		instExe, err := ed.Edit(profInst, eel.Options{})
		if err != nil {
			errInst = fmt.Errorf("bench: %s instrument: %w", b.Name, err)
			return
		}
		row.InstCycles, row.InstSec, instRun, err = measure(meas, instExe, maxSteps)
		if err != nil {
			errInst = fmt.Errorf("bench: %s instrumented: %w", b.Name, err)
		}
	})
	leg(func() {
		// Instrumented and scheduled together.
		schedExe, err := ed.Edit(profSched, eel.Options{
			Machine:  model,
			Schedule: true,
			Sched:    cfg.Sched,
		})
		if err != nil {
			errSched = fmt.Errorf("bench: %s schedule: %w", b.Name, err)
			return
		}
		row.SchedCycles, row.SchedSec, schedRun, err = measure(meas, schedExe, maxSteps)
		if err != nil {
			errSched = fmt.Errorf("bench: %s scheduled: %w", b.Name, err)
		}
	})
	wg.Wait()

	release := func() {
		meas.Release(instRun, nil)
		meas.Release(schedRun, nil)
	}
	for _, err := range []error{errAvg, errUninst, errBase, errInst, errSched} {
		if err != nil {
			release()
			return Row{}, err
		}
	}
	if !cfg.RescheduleBaseline {
		row.BaseCycles, row.BaseSec = row.UninstCycles, row.UninstSec
	}

	if cfg.ValidateCounts {
		a, err := profInst.Counts(instRun.Mem().Read32)
		if err != nil {
			release()
			return Row{}, err
		}
		bc, err := profSched.Counts(schedRun.Mem().Read32)
		if err != nil {
			release()
			return Row{}, err
		}
		for blk, av := range a {
			if bc[blk] != av {
				release()
				return Row{}, fmt.Errorf("bench: %s: block %d counts diverge: %d vs %d",
					b.Name, blk, av, bc[blk])
			}
		}
	}
	release()

	row.RescheduleRatio = ratio(row.BaseCycles, row.UninstCycles)
	row.InstRatio = ratio(row.InstCycles, row.UninstCycles)
	row.SchedRatio = ratio(row.SchedCycles, row.UninstCycles)
	overhead := row.InstCycles - row.BaseCycles
	if overhead != 0 {
		row.PctHidden = 100 * float64(row.InstCycles-row.SchedCycles) / float64(overhead)
	}
	return row, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RunTable runs a full experiment over the suite. Benchmark rows are
// fanned out over cfg.TableWorkers goroutines (0 = GOMAXPROCS); rows are
// independent experiments, so the table is byte-identical for any worker
// count. Unknown names in cfg.Benchmarks are an error.
func RunTable(cfg TableConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	suite := workload.Suite(cfg.Machine)
	list := suite
	if len(cfg.Benchmarks) > 0 {
		known := make(map[string]bool, len(suite))
		for _, b := range suite {
			known[b.Name] = true
		}
		var unknown []string
		for _, name := range cfg.Benchmarks {
			if !known[name] {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			return nil, fmt.Errorf("bench: unknown benchmarks: %s", strings.Join(unknown, ", "))
		}
		list = nil
		for _, b := range suite {
			if contains(cfg.Benchmarks, b.Name) {
				list = append(list, b)
			}
		}
	}
	t := &Table{Config: cfg}
	if len(list) == 0 {
		return t, nil
	}
	cfg.stampManifest()
	model, err := spawn.Load(cfg.Machine)
	if err != nil {
		return nil, err
	}
	tcfg := sim.DefaultTiming(cfg.Machine)

	workers := cfg.TableWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(list) {
		workers = len(list)
	}

	// Workers claim row indices from an atomic counter, so claims happen
	// in index order. The first error is deterministic: if row i is the
	// lowest-index failure, every lower row succeeds and no higher row can
	// set failed before i is claimed, so errs[i] is always populated and
	// the in-order scan below always returns it. failed only short-
	// circuits *new* claims after an error.
	rows := make([]Row, len(list))
	errs := make([]error, len(list))
	rowSecs := make([]float64, len(list)) // wall time per row, for slowest_rows
	rowHist := cfg.Obs.Histogram("bench.row_millis", obs.ExpBuckets(8, 16))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker measurer: loaded model shared, interpreter and
			// timing state pooled across this worker's rows.
			meas := sim.NewMeasurer(model, tcfg)
			meas.Obs = cfg.Obs
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(list) {
					return
				}
				span := cfg.Obs.StartSpan("bench.row." + list[i].Name)
				start := time.Now()
				row, err := runBenchmark(list[i], cfg, model, meas)
				rowSecs[i] = time.Since(start).Seconds()
				span.End()
				rowHist.Observe(int64(rowSecs[i] * 1000))
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				rows[i] = row
			}
		}()
	}
	wg.Wait()
	recordSlowestRows(cfg.Obs, list, rowSecs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t.Rows = rows
	return t, nil
}

// SlowRow is one entry of the slowest_rows extra: a benchmark row and
// the wall time RunTable spent on it (all measurement legs included).
type SlowRow struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}

// recordSlowestRows attaches the top-5 wall-time rows to the registry,
// so a -metrics export answers "what made this run slow" directly.
func recordSlowestRows(reg *obs.Registry, list []workload.Benchmark, rowSecs []float64) {
	if reg == nil {
		return
	}
	slow := make([]SlowRow, 0, len(list))
	for i := range list {
		if rowSecs[i] > 0 {
			slow = append(slow, SlowRow{Name: list[i].Name, Millis: rowSecs[i] * 1000})
		}
	}
	sort.Slice(slow, func(a, b int) bool {
		if slow[a].Millis != slow[b].Millis {
			return slow[a].Millis > slow[b].Millis
		}
		return slow[a].Name < slow[b].Name
	})
	if len(slow) > 5 {
		slow = slow[:5]
	}
	reg.PutExtra("slowest_rows", slow)
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Averages returns (mean inst ratio, mean sched ratio, mean % hidden) for
// a suite half (fp or integer), following the paper's arithmetic means.
func (t *Table) Averages(fp bool) (instRatio, schedRatio, pctHidden float64, n int) {
	for _, r := range t.Rows {
		if r.FP != fp {
			continue
		}
		instRatio += r.InstRatio
		schedRatio += r.SchedRatio
		pctHidden += r.PctHidden
		n++
	}
	if n > 0 {
		instRatio /= float64(n)
		schedRatio /= float64(n)
		pctHidden /= float64(n)
	}
	return instRatio, schedRatio, pctHidden, n
}

// WriteJSON renders the table as indented JSON — the machine-readable
// counterpart of String, for archiving experiment runs next to the
// BENCH_* perf trajectory.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// titleCase upper-cases the first letter of an ASCII word — the machine
// names are single lowercase words, so this matches what the deprecated
// strings.Title produced for them.
func titleCase(s string) string {
	if s == "" || !('a' <= s[0] && s[0] <= 'z') {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

// String renders the table in the paper's format.
func (t *Table) String() string {
	var b strings.Builder
	title := "Slow profiling instrumentation on the " + titleCase(string(t.Config.Machine))
	if t.Config.RescheduleBaseline {
		title += ", with original instructions first rescheduled by EEL"
	}
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %8s %10s %16s %16s %9s\n",
		"Benchmark", "Avg.BB", "Uninst.", "Inst.", "Sched.", "%Hidden")
	writeRows := func(fp bool, label string) {
		for _, r := range t.Rows {
			if r.FP != fp {
				continue
			}
			uninst := fmt.Sprintf("%.1f", r.UninstSec*1000)
			if t.Config.RescheduleBaseline {
				uninst = fmt.Sprintf("%.1f (%.2f)", r.BaseSec*1000, r.RescheduleRatio)
			}
			fmt.Fprintf(&b, "%-14s %8.1f %10s %9.1f (%.2f) %9.1f (%.2f) %8.1f%%\n",
				r.Name, r.AvgBB, uninst,
				r.InstSec*1000, r.InstRatio,
				r.SchedSec*1000, r.SchedRatio,
				r.PctHidden)
		}
		ir, sr, ph, n := t.Averages(fp)
		if n > 0 {
			fmt.Fprintf(&b, "%-14s %8s %10s %16.2f %16.2f %8.1f%%\n",
				label+" Average", "", "", ir, sr, ph)
		}
	}
	writeRows(false, "CINT95")
	writeRows(true, "CFP95")
	b.WriteString("(times in simulated milliseconds at the paper's clock rates)\n")
	return b.String()
}
