// Package bench reproduces the paper's evaluation (§4.2): for each SPEC95
// stand-in it measures the uninstrumented, instrumented-unscheduled and
// instrumented-scheduled executables on the machine's hardware timing
// model, and renders Tables 1–3 (times, slowdown ratios, and the fraction
// of instrumentation overhead hidden by scheduling).
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// TableConfig selects one experiment.
type TableConfig struct {
	Machine spawn.Machine
	// RescheduleBaseline reproduces Table 2: EEL reschedules the original
	// program first, and instrumentation is applied to that binary.
	RescheduleBaseline bool
	// DynamicInsts approximately sizes each benchmark's run.
	DynamicInsts uint64
	Seed         int64
	// Sched tunes the scheduler (ablations); zero value is the paper's.
	Sched core.Options
	// DisablePlacementOpt instruments every block (ablation).
	DisablePlacementOpt bool
	// ValidateCounts cross-checks profile counters between the scheduled
	// and unscheduled instrumented runs.
	ValidateCounts bool
	// Benchmarks restricts the run to the named subset (nil = all 18).
	Benchmarks []string
	// Workers bounds the scheduling worker pool (see core.Options.Workers;
	// 0 = GOMAXPROCS). Scheduling output is byte-identical for any value,
	// so tables never depend on it — only wall-clock time does.
	Workers int
	// Oracle selects the stall oracle (see core.Options.Oracle). Like
	// Workers it never changes a table, only editing wall-clock time: the
	// fast and reference oracles schedule identically.
	Oracle core.Oracle
	// Engine selects the scheduling engine (see core.Options.Engine).
	// Also wall-clock-only: both engines schedule identically.
	Engine core.Engine
}

func (c TableConfig) withDefaults() TableConfig {
	if c.Machine == "" {
		c.Machine = spawn.UltraSPARC
	}
	if c.DynamicInsts == 0 {
		c.DynamicInsts = 600_000
	}
	if c.Workers != 0 && c.Sched.Workers == 0 {
		c.Sched.Workers = c.Workers
	}
	if c.Oracle != core.OracleFast && c.Sched.Oracle == core.OracleFast {
		c.Sched.Oracle = c.Oracle
	}
	if c.Engine != core.EngineFast && c.Sched.Engine == core.EngineFast {
		c.Sched.Engine = c.Engine
	}
	return c
}

// Row is one table line.
type Row struct {
	Name  string
	FP    bool
	AvgBB float64

	UninstCycles int64 // original binary (Tables 1/3) — always measured
	BaseCycles   int64 // baseline for the experiment (= Uninst, or rescheduled)
	InstCycles   int64
	SchedCycles  int64

	UninstSec, BaseSec, InstSec, SchedSec float64

	// RescheduleRatio = BaseCycles/UninstCycles (the paper's Table 2
	// Uninst column parenthetical).
	RescheduleRatio float64
	InstRatio       float64 // InstCycles / UninstCycles
	SchedRatio      float64 // SchedCycles / UninstCycles
	PctHidden       float64 // 100 * (Inst-Sched)/(Inst-Base)
}

// Table is a complete experiment result.
type Table struct {
	Config TableConfig
	Rows   []Row
}

// measure runs x and returns (cycles, seconds).
func measure(x *exe.Exe, model *spawn.Model, cfg sim.TimingConfig, maxSteps uint64) (int64, float64, *sim.Interp, error) {
	in, tm, res, err := sim.RunMeasured(x, model, cfg, maxSteps)
	if err != nil {
		return 0, 0, nil, err
	}
	if !res.Halted {
		return 0, 0, nil, fmt.Errorf("bench: run did not halt")
	}
	return tm.Cycles(), tm.Seconds(), in, nil
}

// RunBenchmark measures one benchmark under a configuration.
func RunBenchmark(b workload.Benchmark, cfg TableConfig) (Row, error) {
	cfg = cfg.withDefaults()
	model, err := spawn.Load(cfg.Machine)
	if err != nil {
		return Row{}, err
	}
	tcfg := sim.DefaultTiming(cfg.Machine)
	maxSteps := 40*cfg.DynamicInsts + 1_000_000

	orig, err := workload.Generate(b, workload.Config{
		Machine:      cfg.Machine,
		DynamicInsts: cfg.DynamicInsts,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s: %w", b.Name, err)
	}
	row := Row{Name: b.Name, FP: b.FP}
	row.AvgBB, err = workload.MeasureAvgBlockSize(orig, 300_000)
	if err != nil {
		return Row{}, err
	}

	row.UninstCycles, row.UninstSec, _, err = measure(orig, model, tcfg, maxSteps)
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s uninstrumented: %w", b.Name, err)
	}

	base := orig
	if cfg.RescheduleBaseline {
		ed, err := eel.Open(orig)
		if err != nil {
			return Row{}, err
		}
		base, err = ed.Reschedule(model, cfg.Sched)
		if err != nil {
			return Row{}, fmt.Errorf("bench: %s reschedule: %w", b.Name, err)
		}
		row.BaseCycles, row.BaseSec, _, err = measure(base, model, tcfg, maxSteps)
		if err != nil {
			return Row{}, fmt.Errorf("bench: %s rescheduled: %w", b.Name, err)
		}
	} else {
		row.BaseCycles, row.BaseSec = row.UninstCycles, row.UninstSec
	}

	ed, err := eel.Open(base)
	if err != nil {
		return Row{}, err
	}

	// Instrumented, unscheduled.
	profInst := &qpt.SlowProfiler{DisablePlacementOpt: cfg.DisablePlacementOpt}
	instExe, err := ed.Edit(profInst, eel.Options{})
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s instrument: %w", b.Name, err)
	}
	var instRun *sim.Interp
	row.InstCycles, row.InstSec, instRun, err = measure(instExe, model, tcfg, maxSteps)
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s instrumented: %w", b.Name, err)
	}

	// Instrumented and scheduled together.
	profSched := &qpt.SlowProfiler{DisablePlacementOpt: cfg.DisablePlacementOpt}
	schedExe, err := ed.Edit(profSched, eel.Options{
		Machine:  model,
		Schedule: true,
		Sched:    cfg.Sched,
	})
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s schedule: %w", b.Name, err)
	}
	var schedRun *sim.Interp
	row.SchedCycles, row.SchedSec, schedRun, err = measure(schedExe, model, tcfg, maxSteps)
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s scheduled: %w", b.Name, err)
	}

	if cfg.ValidateCounts {
		a, err := profInst.Counts(instRun.Mem().Read32)
		if err != nil {
			return Row{}, err
		}
		bc, err := profSched.Counts(schedRun.Mem().Read32)
		if err != nil {
			return Row{}, err
		}
		for blk, av := range a {
			if bc[blk] != av {
				return Row{}, fmt.Errorf("bench: %s: block %d counts diverge: %d vs %d",
					b.Name, blk, av, bc[blk])
			}
		}
	}

	row.RescheduleRatio = ratio(row.BaseCycles, row.UninstCycles)
	row.InstRatio = ratio(row.InstCycles, row.UninstCycles)
	row.SchedRatio = ratio(row.SchedCycles, row.UninstCycles)
	overhead := row.InstCycles - row.BaseCycles
	if overhead != 0 {
		row.PctHidden = 100 * float64(row.InstCycles-row.SchedCycles) / float64(overhead)
	}
	return row, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RunTable runs a full experiment over the suite.
func RunTable(cfg TableConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{Config: cfg}
	for _, b := range workload.Suite(cfg.Machine) {
		if len(cfg.Benchmarks) > 0 && !contains(cfg.Benchmarks, b.Name) {
			continue
		}
		row, err := RunBenchmark(b, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Averages returns (mean inst ratio, mean sched ratio, mean % hidden) for
// a suite half (fp or integer), following the paper's arithmetic means.
func (t *Table) Averages(fp bool) (instRatio, schedRatio, pctHidden float64, n int) {
	for _, r := range t.Rows {
		if r.FP != fp {
			continue
		}
		instRatio += r.InstRatio
		schedRatio += r.SchedRatio
		pctHidden += r.PctHidden
		n++
	}
	if n > 0 {
		instRatio /= float64(n)
		schedRatio /= float64(n)
		pctHidden /= float64(n)
	}
	return instRatio, schedRatio, pctHidden, n
}

// WriteJSON renders the table as indented JSON — the machine-readable
// counterpart of String, for archiving experiment runs next to the
// BENCH_* perf trajectory.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// String renders the table in the paper's format.
func (t *Table) String() string {
	var b strings.Builder
	title := "Slow profiling instrumentation on the " + strings.Title(string(t.Config.Machine))
	if t.Config.RescheduleBaseline {
		title += ", with original instructions first rescheduled by EEL"
	}
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %8s %10s %16s %16s %9s\n",
		"Benchmark", "Avg.BB", "Uninst.", "Inst.", "Sched.", "%Hidden")
	writeRows := func(fp bool, label string) {
		for _, r := range t.Rows {
			if r.FP != fp {
				continue
			}
			uninst := fmt.Sprintf("%.1f", r.UninstSec*1000)
			if t.Config.RescheduleBaseline {
				uninst = fmt.Sprintf("%.1f (%.2f)", r.BaseSec*1000, r.RescheduleRatio)
			}
			fmt.Fprintf(&b, "%-14s %8.1f %10s %9.1f (%.2f) %9.1f (%.2f) %8.1f%%\n",
				r.Name, r.AvgBB, uninst,
				r.InstSec*1000, r.InstRatio,
				r.SchedSec*1000, r.SchedRatio,
				r.PctHidden)
		}
		ir, sr, ph, n := t.Averages(fp)
		if n > 0 {
			fmt.Fprintf(&b, "%-14s %8s %10s %16.2f %16.2f %8.1f%%\n",
				label+" Average", "", "", ir, sr, ph)
		}
	}
	writeRows(false, "CINT95")
	writeRows(true, "CFP95")
	b.WriteString("(times in simulated milliseconds at the paper's clock rates)\n")
	return b.String()
}
