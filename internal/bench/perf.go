package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file is the perf-trajectory plumbing: a parser for `go test
// -bench` text output, a JSON container for committed baselines
// (BENCH_sched.json at the repo root), and the comparison the CI
// bench-smoke job prints advisorily via cmd/benchdiff.

// PerfResult is one benchmark line.
type PerfResult struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// PerfFile is a committed benchmark baseline. Series keeps named runs
// side by side — e.g. a PR's predecessor numbers under one key and its
// own under another — so speedup claims in the docs stay auditable.
// Manifests carries a run-manifest block per series (go version,
// platform, git revision, operator-supplied facts), stamped by
// `benchdiff -update` and preserved verbatim for every other series, so
// a trajectory of recorded numbers keeps saying where each came from.
type PerfFile struct {
	Note      string                       `json:"note,omitempty"`
	CPU       string                       `json:"cpu,omitempty"`
	Series    map[string][]PerfResult      `json:"series"`
	Manifests map[string]map[string]string `json:"manifests,omitempty"`
}

// SetSeriesManifest records a series' manifest block, replacing any
// previous block for that series only.
func (f *PerfFile) SetSeriesManifest(series string, manifest map[string]string) {
	if len(manifest) == 0 {
		return
	}
	if f.Manifests == nil {
		f.Manifests = make(map[string]map[string]string)
	}
	f.Manifests[series] = manifest
}

// ParseGoBench parses `go test -bench` text output. The returned cpu is
// the runner's self-description (the "cpu:" header line), for flagging
// cross-machine comparisons. Names are normalized by stripping the
// -GOMAXPROCS suffix Go appends on multi-core runners.
func ParseGoBench(r io.Reader) (results []PerfResult, cpu string, err error) {
	results, cpu, _, err = ParseGoBenchManifest(r)
	return results, cpu, err
}

// ParseGoBenchManifest is ParseGoBench plus the run-manifest comment
// lines load generators emit alongside their bench lines:
//
//	# manifest: key=value
//
// Go's bench harness never prints such lines, so they pass through a
// pipeline untouched; tools that produce bench-format output (eelload)
// use them to record facts about the measured system — most importantly
// its core count, which gates whether a recorded series is comparable.
func ParseGoBenchManifest(r io.Reader) (results []PerfResult, cpu string, manifest map[string]string, err error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# manifest:"); ok {
			if k, v, ok := strings.Cut(strings.TrimSpace(rest), "="); ok && k != "" {
				if manifest == nil {
					manifest = make(map[string]string)
				}
				manifest[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		res := PerfResult{Name: normalizeBenchName(f[0])}
		res.Iters, err = strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, "", nil, fmt.Errorf("bench: bad iteration count in %q: %w", line, err)
		}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, "", nil, fmt.Errorf("bench: bad value in %q: %w", line, err)
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		results = append(results, res)
	}
	return results, cpu, manifest, sc.Err()
}

// coreCountKeys are the manifest keys that record how many cores the
// measured system had. Parallel benchmarks scale with them, so a hard
// regression gate across differing values compares machines, not code.
var coreCountKeys = []string{"numcpu", "gomaxprocs", "eeld_numcpu", "eeld_workers"}

// CoreCountMismatch reports the first core-count manifest key recorded
// on both sides with differing values. A key missing from either side
// is not a mismatch — old baselines without core-count stamps keep
// whatever gate the operator asked for.
func CoreCountMismatch(base, cur map[string]string) (key, baseVal, curVal string, mismatch bool) {
	for _, k := range coreCountKeys {
		bv, okb := base[k]
		cv, okc := cur[k]
		if okb && okc && bv != cv {
			return k, bv, cv, true
		}
	}
	return "", "", "", false
}

// normalizeBenchName strips the trailing -GOMAXPROCS that `go test`
// appends, so names compare across runners with different core counts.
func normalizeBenchName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// ReadPerfFile loads a committed baseline.
func ReadPerfFile(path string) (*PerfFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f PerfFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}

// Write renders the file as indented JSON with a trailing newline, the
// format BENCH_sched.json is committed in.
func (f *PerfFile) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Delta is one benchmark's old-versus-new comparison.
type Delta struct {
	Name     string
	Old, New float64 // ns/op
	// Pct is the signed change in ns/op: negative is faster.
	Pct float64
}

// Compare matches current results against a baseline series by name and
// returns the per-benchmark ns/op deltas, baseline order preserved.
// Results with no baseline counterpart are omitted — CI runners add and
// remove benchmarks routinely, and the comparison is advisory.
func Compare(baseline, current []PerfResult) []Delta {
	byName := make(map[string]PerfResult, len(current))
	for _, r := range current {
		byName[r.Name] = r
	}
	var out []Delta
	for _, b := range baseline {
		c, ok := byName[b.Name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		out = append(out, Delta{
			Name: b.Name,
			Old:  b.NsPerOp,
			New:  c.NsPerOp,
			Pct:  100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp,
		})
	}
	return out
}

// FormatDeltas renders a Compare result as an aligned advisory table.
func FormatDeltas(deltas []Delta) string {
	if len(deltas) == 0 {
		return "no overlapping benchmarks\n"
	}
	width := 0
	for _, d := range deltas {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s %14s %14s %8s\n", width, "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range deltas {
		fmt.Fprintf(&sb, "%-*s %14.0f %14.0f %+7.1f%%\n", width, d.Name, d.Old, d.New, d.Pct)
	}
	return sb.String()
}

// SortResults orders results by name for stable committed files.
func SortResults(rs []PerfResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}

// MedianByName collapses repeated benchmark lines (a -count N run) to
// one result per name, keeping the line with the median ns/op. Medians
// resist the one-off outliers shared CI runners produce. The result is
// name-sorted.
func MedianByName(rs []PerfResult) []PerfResult {
	groups := make(map[string][]PerfResult)
	for _, r := range rs {
		groups[r.Name] = append(groups[r.Name], r)
	}
	out := make([]PerfResult, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].NsPerOp < g[j].NsPerOp })
		out = append(out, g[(len(g)-1)/2])
	}
	SortResults(out)
	return out
}
