package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"eel/internal/obs"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// TestRunTableTelemetry runs a small table with a registry attached and
// checks that every telemetry stream the harness promises actually
// lands: per-row wall time (histogram, spans, slowest_rows extra), the
// run manifest, scheduler stall attribution, and simulator totals —
// without perturbing the emitted table.
func TestRunTableTelemetry(t *testing.T) {
	cfg := small(spawn.UltraSPARC)
	cfg.DynamicInsts = 60_000
	cfg.Benchmarks = []string{"130.li", "101.tomcatv"}

	var plain bytes.Buffer
	tab, err := RunTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg.Obs = reg
	tab, err = RunTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var instrumented bytes.Buffer
	if err := tab.WriteJSON(&instrumented); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), instrumented.Bytes()) {
		t.Errorf("telemetry changed the emitted table:\n%s\n---\n%s", plain.String(), instrumented.String())
	}

	m := reg.Manifest()
	for _, key := range []string{"go", "platform", "machine", "engine", "oracle", "dynamic_insts"} {
		if m[key] == "" {
			t.Errorf("manifest missing %q: %v", key, m)
		}
	}
	if m["machine"] != "ultrasparc" {
		t.Errorf("manifest machine = %q", m["machine"])
	}

	e := reg.Snapshot()
	h, ok := e.Histograms["bench.row_millis"]
	if !ok || h.Count != int64(len(cfg.Benchmarks)) {
		t.Errorf("bench.row_millis count = %+v, want %d observations", h, len(cfg.Benchmarks))
	}
	spanNames := map[string]bool{}
	for _, sp := range e.Spans {
		spanNames[sp.Name] = true
	}
	for _, name := range cfg.Benchmarks {
		if !spanNames["bench.row."+name] {
			t.Errorf("no span for row %q (spans: %v)", name, spanNames)
		}
	}
	if e.Counters["sched.ultrasparc.blocks_total"] == 0 {
		t.Errorf("no scheduler telemetry in the table run")
	}
	if e.Counters["sim.runs_total"] == 0 || e.Counters["sim.cycles_total"] == 0 {
		t.Errorf("no simulator telemetry in the table run: %v", e.Counters)
	}
	raw, ok := e.Extras["slowest_rows"]
	if !ok {
		t.Fatalf("no slowest_rows extra")
	}
	if s := string(raw); !strings.Contains(s, "130.li") && !strings.Contains(s, "101.tomcatv") {
		t.Errorf("slowest_rows names none of the rows: %s", s)
	}
}

// TestRecordSlowestRows pins the extra's shape: descending by wall time,
// name-tiebroken, zero-duration rows dropped, truncated to five.
func TestRecordSlowestRows(t *testing.T) {
	list := []workload.Benchmark{
		{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"},
		{Name: "e"}, {Name: "f"}, {Name: "zero"},
	}
	secs := []float64{0.004, 0.007, 0.001, 0.007, 0.002, 0.006, 0}
	reg := obs.NewRegistry()
	recordSlowestRows(reg, list, secs)
	raw, ok := reg.Snapshot().Extras["slowest_rows"]
	if !ok {
		t.Fatal("no slowest_rows extra recorded")
	}
	want := `[{"name":"b","millis":7},{"name":"d","millis":7},{"name":"f","millis":6},{"name":"a","millis":4},{"name":"e","millis":2}]`
	if string(raw) != want {
		t.Errorf("slowest_rows = %s\nwant          %s", raw, want)
	}

	// A nil registry must be a no-op, not a panic.
	recordSlowestRows(nil, list, secs)
}

// TestPerfFileManifests checks benchdiff's carry-forward contract: a
// series' manifest replaces only its own entry and survives a JSON
// round trip alongside the others.
func TestPerfFileManifests(t *testing.T) {
	f := &PerfFile{Series: map[string][]PerfResult{}}
	f.SetSeriesManifest("old", map[string]string{"git_rev": "aaa"})
	f.SetSeriesManifest("current", map[string]string{"git_rev": "bbb", "runner": "ci"})
	f.SetSeriesManifest("current", map[string]string{"git_rev": "ccc"})
	f.SetSeriesManifest("empty", nil) // no-op

	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/perf.json"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadPerfFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Manifests["old"]["git_rev"] != "aaa" {
		t.Errorf("other series' manifest not carried forward: %v", g.Manifests)
	}
	if g.Manifests["current"]["git_rev"] != "ccc" || g.Manifests["current"]["runner"] != "" {
		t.Errorf("re-stamp did not replace the series block: %v", g.Manifests["current"])
	}
	if _, ok := g.Manifests["empty"]; ok {
		t.Errorf("empty manifest was recorded")
	}
}
