package sim

import (
	"testing"

	"eel/internal/exe"
	"eel/internal/spawn"
)

// TestMemoryPageBoundary pins halfword and word behavior at the edges of
// the 4 KiB pages: SPARC alignment means an access never spans two pages,
// so the last halfword/word of one page and the first of the next must
// land in different pages without touching each other.
func TestMemoryPageBoundary(t *testing.T) {
	m := NewMemory()
	const edge = pageSize // first address of page 1

	m.Write16(edge-2, 0xBEEF) // last halfword of page 0
	m.Write16(edge, 0xCAFE)   // first halfword of page 1
	m.Write32(edge-4, 0x11223344)
	if got := m.Read16(edge - 2); got != 0x3344 {
		t.Errorf("halfword at page end = %#x, want 0x3344 (low half of the word write)", got)
	}
	if got := m.Read16(edge); got != 0xCAFE {
		t.Errorf("first halfword of next page = %#x, want 0xCAFE", got)
	}
	m.Write32(edge, 0x55667788)
	if got := m.Read32(edge - 4); got != 0x11223344 {
		t.Errorf("last word of page 0 = %#x, want 0x11223344", got)
	}
	if got := m.Read32(edge); got != 0x55667788 {
		t.Errorf("first word of page 1 = %#x, want 0x55667788", got)
	}
	// Bytes assemble big-endian across the boundary-adjacent words.
	if got := m.Read8(edge - 1); got != 0x44 {
		t.Errorf("last byte of page 0 = %#x, want 0x44", got)
	}
	if got := m.Read8(edge); got != 0x55 {
		t.Errorf("first byte of page 1 = %#x, want 0x55", got)
	}
}

// TestMemoryMRUInterleave cycles accesses over three pages — one more
// than the MRU cache holds — so every probe pattern (hit slot 0, hit
// slot 1 with promotion, miss to the map) is exercised, including
// far-apart pages that share nothing.
func TestMemoryMRUInterleave(t *testing.T) {
	m := NewMemory()
	addrs := []uint32{0x1000, 0x2000, 0x40000000, 0x7ffff000 - pageSize}
	for round := uint32(0); round < 3; round++ {
		for i, a := range addrs {
			m.Write32(a+4*round, round<<16|uint32(i))
		}
	}
	for round := uint32(0); round < 3; round++ {
		for i, a := range addrs {
			if got, want := m.Read32(a+4*round), round<<16|uint32(i); got != want {
				t.Errorf("page %#x round %d = %#x, want %#x", a, round, got, want)
			}
		}
	}
	// Unwritten addresses stay zero-filled even after heavy cache churn.
	if got := m.Read32(0x3000); got != 0 {
		t.Errorf("untouched page reads %#x, want 0", got)
	}
}

// TestMemoryPoolZeroFill checks the Measurer's page recycling invariant:
// a page released to the pool and handed to a fresh Memory reads as
// zeroes, exactly like a newly allocated one.
func TestMemoryPoolZeroFill(t *testing.T) {
	var pool pagePool
	m1 := newMemoryWith(&pool)
	for a := uint32(0); a < 4*pageSize; a += 8 {
		m1.Write32(a, 0xDEADBEEF)
	}
	m1.release()
	m2 := newMemoryWith(&pool)
	for a := uint32(0); a < 4*pageSize; a += 8 {
		if got := m2.Read32(a); got != 0 {
			t.Fatalf("recycled page leaks %#x at %#x", got, a)
		}
	}
}

// timingFor builds an UltraSPARC timing observer for x with the
// instruction cache disabled, so branch penalties are the only fetch
// effects.
func timingFor(t *testing.T, x *exe.Exe) *Timing {
	t.Helper()
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TimingConfig{Rules: MachineRules(spawn.UltraSPARC), ClockMHz: 167}
	return NewProgramTiming(model, cfg, x.TextBase, len(x.Text))
}

// TestTimingBackwardBranchCounters runs a counted loop: the backward
// conditional is taken N-1 times (predicted taken on the UltraSPARC, so
// no mispredicts, one redirect each) and falls through once (the lone
// mispredict).
func TestTimingBackwardBranchCounters(t *testing.T) {
	const n = 25
	x := buildExe(t, `
	mov 0, %g1
	set 25, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`)
	tm := timingFor(t, x)
	in, err := NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := in.Run(1e6, tm.Observe); err != nil || !res.Halted {
		t.Fatalf("run: %v halted=%v", err, res.Halted)
	}
	if got := tm.Redirects(); got != n-1 {
		t.Errorf("redirects = %d, want %d (one per taken backward branch)", got, n-1)
	}
	if got := tm.Mispredicts(); got != 1 {
		t.Errorf("mispredicts = %d, want 1 (the final fall-through)", got)
	}
	if tm.Cycles() <= 0 || tm.Instructions() == 0 {
		t.Errorf("cycles = %d, instructions = %d", tm.Cycles(), tm.Instructions())
	}
}

// TestTimingForwardBranchCounters takes a forward conditional, which the
// UltraSPARC predicts untaken: one redirect and one mispredict.
func TestTimingForwardBranchCounters(t *testing.T) {
	x := buildExe(t, `
	mov 0, %g1
	cmp %g1, 0
	be skip
	nop
	mov 99, %g3
skip:
	mov 7, %g4
	ta 0
`)
	tm := timingFor(t, x)
	in, err := NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := in.Run(1e6, tm.Observe); err != nil || !res.Halted {
		t.Fatalf("run: %v halted=%v", err, res.Halted)
	}
	if got := tm.Redirects(); got != 1 {
		t.Errorf("redirects = %d, want 1", got)
	}
	if got := tm.Mispredicts(); got != 1 {
		t.Errorf("mispredicts = %d, want 1 (forward taken against the static prediction)", got)
	}
}

// TestProgramTimingMatchesPlain runs the same program through the
// per-static-index memo path (NewProgramTiming), the per-instruction
// resolve-cache fallback (NewTiming), and a pooled re-run (ResetFor),
// and requires identical measurements from all three.
func TestProgramTimingMatchesPlain(t *testing.T) {
	x := buildExe(t, `
	mov 0, %g1
	set 200, %g2
loop:
	add %g1, 1, %g1
	ld [%sp], %g3
	st %g1, [%sp]
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`)
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTiming(spawn.UltraSPARC)

	runWith := func(tm *Timing) (int64, uint64, uint64) {
		t.Helper()
		in, err := NewInterp(x)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := in.Run(1e6, tm.Observe); err != nil || !res.Halted {
			t.Fatalf("run: %v halted=%v", err, res.Halted)
		}
		return tm.Cycles(), tm.Mispredicts(), tm.Redirects()
	}

	plainC, plainM, plainR := runWith(NewTiming(model, cfg, x.TextBase))
	prog := NewProgramTiming(model, cfg, x.TextBase, len(x.Text))
	progC, progM, progR := runWith(prog)
	if progC != plainC || progM != plainM || progR != plainR {
		t.Errorf("program timing (%d,%d,%d) != plain timing (%d,%d,%d)",
			progC, progM, progR, plainC, plainM, plainR)
	}
	prog.ResetFor(x.TextBase, len(x.Text))
	againC, againM, againR := runWith(prog)
	if againC != plainC || againM != plainM || againR != plainR {
		t.Errorf("ResetFor re-run (%d,%d,%d) != fresh timing (%d,%d,%d)",
			againC, againM, againR, plainC, plainM, plainR)
	}
}

// TestMeasurerMatchesRunMeasured checks that the pooled path returns the
// same measurement as the one-shot API, run after run.
func TestMeasurerMatchesRunMeasured(t *testing.T) {
	x := buildExe(t, `
	mov 0, %g1
	set 500, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`)
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTiming(spawn.UltraSPARC)
	_, tm0, res0, err := RunMeasured(x, model, cfg, 1e6)
	if err != nil || !res0.Halted {
		t.Fatalf("RunMeasured: %v halted=%v", err, res0.Halted)
	}
	meas := NewMeasurer(model, cfg)
	for i := 0; i < 3; i++ {
		in, tm, res, err := meas.Run(x, 1e6)
		if err != nil || !res.Halted {
			t.Fatalf("Measurer.Run %d: %v halted=%v", i, err, res.Halted)
		}
		if tm.Cycles() != tm0.Cycles() || tm.Instructions() != tm0.Instructions() {
			t.Errorf("run %d: pooled (%d cycles, %d insts) != one-shot (%d, %d)",
				i, tm.Cycles(), tm.Instructions(), tm0.Cycles(), tm0.Instructions())
		}
		meas.Release(in, tm)
	}
}
