package sim

import (
	"fmt"

	"eel/internal/core"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Rules capture grouping behaviors of the real machines that the SADL
// descriptions deliberately do not model (the paper's descriptions "only
// model the execution pipelines themselves"). They are part of the
// hardware substrate, so the scheduler cannot see them — one source of the
// paper's de-scheduling effect.
type Rules struct {
	// MemEndsGroup makes a load or store the last instruction of its
	// issue group: nothing issues with it in the same cycle after it.
	MemEndsGroup bool
	// CTIEndsGroup makes a control-transfer end its group after the delay
	// slot issues.
	CTIEndsGroup bool
	// RedirectPenalty is the fetch bubble (cycles) after any taken
	// control transfer.
	RedirectPenalty int64
	// MispredictPenalty is added when a conditional branch goes against
	// the static prediction.
	MispredictPenalty int64
	// PredictBackwardTaken enables static backward-taken/forward-untaken
	// prediction; without it every taken conditional pays the redirect
	// penalty and untaken ones are free.
	PredictBackwardTaken bool
	// StoreLoadGap forces a load to issue at least this many cycles after
	// the previous store (store-buffer drain). The SADL descriptions do
	// not model it — the compiler (which schedules against these Rules)
	// knows it, EEL's scheduler does not.
	StoreLoadGap int64
}

// MachineRules returns the hardware grouping rules for a machine.
func MachineRules(m spawn.Machine) Rules {
	switch m {
	case spawn.HyperSPARC:
		return Rules{RedirectPenalty: 1}
	case spawn.SuperSPARC:
		return Rules{MemEndsGroup: true, CTIEndsGroup: true, RedirectPenalty: 1}
	case spawn.UltraSPARC:
		return Rules{
			MemEndsGroup:         true,
			RedirectPenalty:      1,
			MispredictPenalty:    3,
			PredictBackwardTaken: true,
		}
	}
	return Rules{RedirectPenalty: 1}
}

// The simulator shares the scheduler's pre-resolved placement
// representation: pipe.Prepared carries an instruction's timing group,
// compiled group and register accesses, and core.InstFlags caches the
// memory/trap predicates the grouping rules test. Timing memoizes one
// of each per static text index (via core.BlockSoA) so a 600k-step run
// resolves each of its few thousand static instructions exactly once.

const hwResolveCacheSize = 64 // power of two

// instKey folds an instruction into a resolve-cache index. Only mixing
// quality matters; collisions just evict.
func instKey(in sparc.Inst) uint64 {
	k := uint64(in.Op)
	k = k<<8 ^ uint64(in.Rd)
	k = k<<8 ^ uint64(in.Rs1)
	k = k<<8 ^ uint64(in.Rs2)
	k = k<<8 ^ uint64(in.Cond)
	k ^= uint64(uint32(in.Imm)) << 7
	k ^= uint64(uint32(in.Disp)) << 13
	if in.UseImm {
		k ^= 1 << 62
	}
	if in.Annul {
		k ^= 1 << 61
	}
	if in.Instrumented {
		k ^= 1 << 60
	}
	k *= 0x9e3779b97f4a7c15
	return k >> 32
}

// HW is the hardware issue engine: the spawn model's units and latencies
// plus the Rules. It is used two ways: statically (via HWPipeline) as the
// "compiler's" scheduling model when the workload generator pre-schedules
// code, and dynamically (via Timing) to measure execution.
//
// Placement probes the model's compiled tables (spawn.CompiledTables)
// against a horizon-sized ring of flat per-cycle unit counters, mirroring
// pipe.FastState: committed usage always lies in [clock, clock+horizon),
// so cycles at or beyond the window are known-free and rows are recycled
// as the clock advances.
type HW struct {
	model *spawn.Model
	rules Rules
	tab   *spawn.CompiledTables

	resolver pipe.Resolver
	// rcache memoizes placement inputs per exact instruction for callers
	// without a per-static-index memo (HWPipeline scheduling probes);
	// direct-mapped, overwrite on collision.
	rcache [hwResolveCacheSize]struct {
		inst  sparc.Inst
		ok    bool
		flags core.InstFlags
		p     pipe.Prepared
	}

	horizon   int64 // ring rows; no group holds units this long
	nu        int   // units per row
	ring      []int32
	ready     [sparc.NumRegs]int64
	clock     int64
	fetchMin  int64 // earliest issue allowed by fetch (redirects, cache)
	lastStore int64 // issue cycle of the most recent store
}

// NewHW builds an issue engine for a model and rules.
func NewHW(model *spawn.Model, rules Rules) *HW {
	tab := model.Compiled()
	h := &HW{
		model:   model,
		rules:   rules,
		tab:     tab,
		horizon: int64(tab.MaxSpan),
		nu:      len(model.Units),
	}
	if h.horizon < 1 {
		h.horizon = 1
	}
	h.ring = make([]int32, int(h.horizon)*h.nu)
	h.Reset()
	return h
}

// Reset clears all issue state (the per-instruction resolve memo is pure
// model data and survives).
func (h *HW) Reset() {
	h.clock = 0
	h.fetchMin = 0
	h.lastStore = -1
	clear(h.ring)
	for i := range h.ready {
		h.ready[i] = -1
	}
}

// Clock returns the issue cycle of the most recent instruction.
func (h *HW) Clock() int64 { return h.clock }

// Delay constrains the next instruction's issue to at least cycle c
// (fetch redirects, cache misses).
func (h *HW) Delay(c int64) {
	if c > h.fetchMin {
		h.fetchMin = c
	}
}

// prepare resolves inst's timing group and register accesses into p
// (shared with the scheduler: see pipe.NewPrepared).
func (h *HW) prepare(p *pipe.Prepared, inst *sparc.Inst) error {
	g, err := h.model.GroupOf(*inst)
	if err != nil {
		return err
	}
	reads, writes := h.resolver.Resolve(g, *inst)
	*p = pipe.NewPrepared(g, &h.tab.Groups[g.ID], reads, writes)
	return nil
}

// place finds the earliest issue cycle for inst; commit records it.
func (h *HW) place(inst *sparc.Inst, commit bool) (int64, error) {
	e := &h.rcache[instKey(*inst)&(hwResolveCacheSize-1)]
	if !e.ok || e.inst != *inst {
		if err := h.prepare(&e.p, inst); err != nil {
			e.ok = false
			return 0, err
		}
		e.flags = core.InstFlagsOf(*inst)
		e.inst, e.ok = *inst, true
	}
	return h.placePrepared(&e.p, e.flags, inst, commit)
}

// placePrepared is place with the resolution work already done. inst must
// be the instruction p was prepared from.
func (h *HW) placePrepared(p *pipe.Prepared, flags core.InstFlags, inst *sparc.Inst, commit bool) (int64, error) {
	if p.Spilled() {
		// Accesses exceed the inline arrays; re-resolve into the shared
		// scratch buffers (rare: no shipped description produces >6).
		g, err := h.model.GroupOf(*inst)
		if err != nil {
			return 0, err
		}
		reads, writes := h.resolver.Resolve(g, *inst)
		return h.placeResolved(p.Compiled(), flags, reads, writes, inst, commit)
	}
	reads, writes := p.Accesses()
	return h.placeResolved(p.Compiled(), flags, reads, writes, inst, commit)
}

// placeResolved runs the placement search against the compiled tables.
func (h *HW) placeResolved(cg *spawn.CompiledGroup, flags core.InstFlags, reads, writes []pipe.RegAccess, inst *sparc.Inst, commit bool) (int64, error) {
	if cg.Infeasible {
		return 0, fmt.Errorf("sim: cannot place %v", inst)
	}
	counts := h.tab.UnitCounts
	horizonEnd := h.clock + h.horizon

	t := h.clock
	if h.fetchMin > t {
		t = h.fetchMin
	}
	if h.rules.StoreLoadGap > 0 && flags&core.FlagLoad != 0 && h.lastStore >= 0 {
		if min := h.lastStore + h.rules.StoreLoadGap; min > t {
			t = min
		}
	}
search:
	for ; ; t++ {
		if t-h.clock > 1<<16 {
			return 0, fmt.Errorf("sim: cannot place %v", inst)
		}
		// RAW: start from a lower bound rather than testing cycle by
		// cycle.
		for _, r := range reads {
			if need := h.ready[r.Reg] - int64(r.Cycle); need > t {
				t = need
			}
		}
		// WAW ordering.
		for _, w := range writes {
			if avail := t + int64(w.Cycle); avail <= h.ready[w.Reg] {
				continue search
			}
		}
		// Structural hazards, sparse: only nonzero held entries checked.
		for _, e := range cg.NZ {
			abs := t + int64(e.Cycle)
			if abs >= horizonEnd {
				// No committed usage exists at or beyond the window.
				continue
			}
			if counts[e.Unit]-h.ring[(abs%h.horizon)*int64(h.nu)+int64(e.Unit)] < int32(e.Num) {
				continue search
			}
		}
		break
	}

	if commit {
		h.commitAt(flags, cg, t, writes)
	}
	return t, nil
}

// commitAt records the placed instruction's effects. Ring rows whose
// cycles fall behind the new clock are zeroed before the new usage lands,
// because they alias cycles inside the advanced window.
func (h *HW) commitAt(flags core.InstFlags, cg *spawn.CompiledGroup, t int64, writes []pipe.RegAccess) {
	nu := int64(h.nu)
	if t > h.clock {
		if t-h.clock >= h.horizon {
			clear(h.ring)
		} else {
			for c := h.clock; c < t; c++ {
				row := (c % h.horizon) * nu
				clear(h.ring[row : row+nu])
			}
		}
	}
	for _, e := range cg.NZ {
		abs := t + int64(e.Cycle)
		h.ring[(abs%h.horizon)*nu+int64(e.Unit)] += int32(e.Num)
	}
	for _, w := range writes {
		if avail := t + int64(w.Cycle); avail > h.ready[w.Reg] {
			h.ready[w.Reg] = avail
		}
	}
	h.clock = t
	if h.fetchMin < t {
		h.fetchMin = t
	}
	if h.rules.MemEndsGroup && flags&(core.FlagLoad|core.FlagStore) != 0 {
		h.Delay(t + 1)
	}
	if flags&core.FlagStore != 0 {
		h.lastStore = t
	}
}

// HWPipeline adapts HW to the scheduler's Pipeline interface, so the
// workload generator can pre-schedule code the way the vendors' compilers
// did: against the real machine's grouping rules.
//
// An HWPipeline is not safe for concurrent use; Fork hands each worker
// goroutine of a parallel scheduler an independent copy.
type HWPipeline struct {
	hw *HW
}

// NewHWPipeline returns a schedulable view of the hardware model.
func NewHWPipeline(model *spawn.Model, rules Rules) *HWPipeline {
	return &HWPipeline{hw: NewHW(model, rules)}
}

// Fork returns a fresh, independent pipeline with the same model and
// rules. It lets eel and core replicate a hardware stall oracle per
// worker goroutine (core.NewWithFactory) instead of serializing on one.
func (p *HWPipeline) Fork() core.Pipeline {
	return NewHWPipeline(p.hw.model, p.hw.rules)
}

// Reset clears the pipeline state.
func (p *HWPipeline) Reset() { p.hw.Reset() }

// Stalls returns the issue delay inst would incur, without committing.
func (p *HWPipeline) Stalls(inst sparc.Inst) (int, error) {
	t, err := p.hw.place(&inst, false)
	if err != nil {
		return 0, err
	}
	return int(t - p.hw.clock), nil
}

// Issue commits inst and returns its stall count and issue cycle.
func (p *HWPipeline) Issue(inst sparc.Inst) (int, int64, error) {
	before := p.hw.clock
	t, err := p.hw.place(&inst, true)
	if err != nil {
		return 0, 0, err
	}
	if p.hw.rules.CTIEndsGroup && inst.IsCTI() {
		p.hw.Delay(t + 1)
	}
	return int(t - before), t, nil
}
