package sim

import (
	"fmt"

	"eel/internal/core"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Rules capture grouping behaviors of the real machines that the SADL
// descriptions deliberately do not model (the paper's descriptions "only
// model the execution pipelines themselves"). They are part of the
// hardware substrate, so the scheduler cannot see them — one source of the
// paper's de-scheduling effect.
type Rules struct {
	// MemEndsGroup makes a load or store the last instruction of its
	// issue group: nothing issues with it in the same cycle after it.
	MemEndsGroup bool
	// CTIEndsGroup makes a control-transfer end its group after the delay
	// slot issues.
	CTIEndsGroup bool
	// RedirectPenalty is the fetch bubble (cycles) after any taken
	// control transfer.
	RedirectPenalty int64
	// MispredictPenalty is added when a conditional branch goes against
	// the static prediction.
	MispredictPenalty int64
	// PredictBackwardTaken enables static backward-taken/forward-untaken
	// prediction; without it every taken conditional pays the redirect
	// penalty and untaken ones are free.
	PredictBackwardTaken bool
	// StoreLoadGap forces a load to issue at least this many cycles after
	// the previous store (store-buffer drain). The SADL descriptions do
	// not model it — the compiler (which schedules against these Rules)
	// knows it, EEL's scheduler does not.
	StoreLoadGap int64
}

// MachineRules returns the hardware grouping rules for a machine.
func MachineRules(m spawn.Machine) Rules {
	switch m {
	case spawn.HyperSPARC:
		return Rules{RedirectPenalty: 1}
	case spawn.SuperSPARC:
		return Rules{MemEndsGroup: true, CTIEndsGroup: true, RedirectPenalty: 1}
	case spawn.UltraSPARC:
		return Rules{
			MemEndsGroup:         true,
			RedirectPenalty:      1,
			MispredictPenalty:    3,
			PredictBackwardTaken: true,
		}
	}
	return Rules{RedirectPenalty: 1}
}

// ringSize bounds how far ahead of the clock an instruction can reserve
// units; it must exceed the longest group span plus slack.
const ringSize = 128

// HW is the hardware issue engine: the spawn model's units and latencies
// plus the Rules. It is used two ways: statically (via HWPipeline) as the
// "compiler's" scheduling model when the workload generator pre-schedules
// code, and dynamically (via Timing) to measure execution.
type HW struct {
	model *spawn.Model
	rules Rules

	heldOf   [][][]int // group id -> per-cycle unit holdings
	resolver pipe.Resolver

	ring      [ringSize][]int
	maxSeen   int64 // highest cycle with valid ring contents
	ready     [sparc.NumRegs]int64
	clock     int64
	fetchMin  int64 // earliest issue allowed by fetch (redirects, cache)
	lastStore int64 // issue cycle of the most recent store
}

// NewHW builds an issue engine for a model and rules.
func NewHW(model *spawn.Model, rules Rules) *HW {
	h := &HW{model: model, rules: rules}
	h.heldOf = make([][][]int, len(model.Groups))
	for gi, g := range model.Groups {
		span := len(g.Acquire)
		held := make([][]int, span)
		cur := make([]int, len(model.Units))
		for k := 0; k < span; k++ {
			for _, e := range g.Release[k] {
				cur[e.Unit] -= e.Num
			}
			for _, e := range g.Acquire[k] {
				cur[e.Unit] += e.Num
			}
			row := make([]int, len(cur))
			copy(row, cur)
			held[k] = row
		}
		h.heldOf[gi] = held
	}
	for i := range h.ring {
		h.ring[i] = make([]int, len(model.Units))
	}
	h.Reset()
	return h
}

// Reset clears all state.
func (h *HW) Reset() {
	h.clock = 0
	h.fetchMin = 0
	h.maxSeen = -1
	h.lastStore = -1
	for i := range h.ring {
		for u := range h.ring[i] {
			h.ring[i][u] = 0
		}
	}
	for i := range h.ready {
		h.ready[i] = -1
	}
}

// Clock returns the issue cycle of the most recent instruction.
func (h *HW) Clock() int64 { return h.clock }

// slot returns the ring row for an absolute cycle, zeroing rows the first
// time they come into view.
func (h *HW) slot(cycle int64) []int {
	for h.maxSeen < cycle {
		h.maxSeen++
		row := h.ring[h.maxSeen&(ringSize-1)]
		for u := range row {
			row[u] = 0
		}
	}
	return h.ring[cycle&(ringSize-1)]
}

// Delay constrains the next instruction's issue to at least cycle c
// (fetch redirects, cache misses).
func (h *HW) Delay(c int64) {
	if c > h.fetchMin {
		h.fetchMin = c
	}
}

// place finds the earliest issue cycle for inst; commit records it.
func (h *HW) place(inst *sparc.Inst, commit bool) (int64, error) {
	g, err := h.model.GroupOf(*inst)
	if err != nil {
		return 0, err
	}
	held := h.heldOf[g.ID]
	reads, writes := h.resolver.Resolve(g, *inst)

	t := h.clock
	if h.fetchMin > t {
		t = h.fetchMin
	}
	if h.rules.StoreLoadGap > 0 && inst.Op.IsLoad() && h.lastStore >= 0 {
		if min := h.lastStore + h.rules.StoreLoadGap; min > t {
			t = min
		}
	}
search:
	for ; ; t++ {
		if t-h.clock > 1<<16 {
			return 0, fmt.Errorf("sim: cannot place %v", inst)
		}
		// RAW: start from a lower bound rather than testing cycle by
		// cycle.
		for _, r := range reads {
			if need := h.ready[r.Reg] - int64(r.Cycle); need > t {
				t = need
			}
		}
		// WAW ordering.
		for _, w := range writes {
			if avail := t + int64(w.Cycle); avail <= h.ready[w.Reg] {
				continue search
			}
		}
		// Structural hazards.
		for k, row := range held {
			slot := h.slot(t + int64(k))
			for u, n := range row {
				if n > 0 && slot[u]+n > h.model.Units[u].Count {
					continue search
				}
			}
		}
		break
	}

	if commit {
		for k, row := range held {
			slot := h.slot(t + int64(k))
			for u, n := range row {
				slot[u] += n
			}
		}
		for _, w := range writes {
			if avail := t + int64(w.Cycle); avail > h.ready[w.Reg] {
				h.ready[w.Reg] = avail
			}
		}
		h.clock = t
		if h.fetchMin < t {
			h.fetchMin = t
		}
		if h.rules.MemEndsGroup && (inst.Op.IsLoad() || inst.Op.IsStore()) {
			h.Delay(t + 1)
		}
		if inst.Op.IsStore() {
			h.lastStore = t
		}
	}
	return t, nil
}

// HWPipeline adapts HW to the scheduler's Pipeline interface, so the
// workload generator can pre-schedule code the way the vendors' compilers
// did: against the real machine's grouping rules.
//
// An HWPipeline is not safe for concurrent use; Fork hands each worker
// goroutine of a parallel scheduler an independent copy.
type HWPipeline struct {
	hw *HW
}

// NewHWPipeline returns a schedulable view of the hardware model.
func NewHWPipeline(model *spawn.Model, rules Rules) *HWPipeline {
	return &HWPipeline{hw: NewHW(model, rules)}
}

// Fork returns a fresh, independent pipeline with the same model and
// rules. It lets eel and core replicate a hardware stall oracle per
// worker goroutine (core.NewWithFactory) instead of serializing on one.
func (p *HWPipeline) Fork() core.Pipeline {
	return NewHWPipeline(p.hw.model, p.hw.rules)
}

// Reset clears the pipeline state.
func (p *HWPipeline) Reset() { p.hw.Reset() }

// Stalls returns the issue delay inst would incur, without committing.
func (p *HWPipeline) Stalls(inst sparc.Inst) (int, error) {
	t, err := p.hw.place(&inst, false)
	if err != nil {
		return 0, err
	}
	return int(t - p.hw.clock), nil
}

// Issue commits inst and returns its stall count and issue cycle.
func (p *HWPipeline) Issue(inst sparc.Inst) (int, int64, error) {
	before := p.hw.clock
	t, err := p.hw.place(&inst, true)
	if err != nil {
		return 0, 0, err
	}
	if p.hw.rules.CTIEndsGroup && inst.IsCTI() {
		p.hw.Delay(t + 1)
	}
	return int(t - before), t, nil
}
