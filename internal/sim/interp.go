// Package sim is the measurement substrate standing in for the paper's
// real SuperSPARC and UltraSPARC machines: a functional SPARC V8
// interpreter (used to run edited executables and validate profiling
// counts) and a detailed hardware timing model (used to measure execution
// cycles). The timing model is deliberately richer than the scheduler's
// SADL-derived model — it adds instruction-cache behavior, fetch redirect
// and branch misprediction penalties, and grouping rules — preserving the
// paper's central asymmetry: EEL schedules against a simplified model of
// the machine that actually runs the code.
package sim

import (
	"fmt"

	"eel/internal/exe"
	"eel/internal/sparc"
)

// Halt trap numbers: "ta 0" ends the program.
const TrapExit = 0

// Memory is a sparse byte-addressed memory with 4 KiB pages. A two-entry
// most-recently-used cache sits in front of the page map: nearly every
// access in practice alternates between a data page and a stack page, so
// the map probe drops out of the interpreter's per-instruction path.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	pool  *pagePool // optional; recycled page storage (see Measurer)

	// MRU page cache. k0/p0 is the most recent; noPage marks an empty slot
	// (no valid address maps to it: page keys are at most 2^20).
	k0, k1 uint32
	p0, p1 *[pageSize]byte
}

const (
	pageSize = 4096
	noPage   = ^uint32(0)
)

// NewMemory returns an empty memory.
func NewMemory() *Memory { return newMemoryWith(nil) }

func newMemoryWith(pool *pagePool) *Memory {
	return &Memory{
		pages: make(map[uint32]*[pageSize]byte),
		pool:  pool,
		k0:    noPage, k1: noPage,
	}
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	key := addr / pageSize
	if key == m.k0 {
		return m.p0
	}
	if key == m.k1 {
		// Promote to MRU so an alternating pair of pages keeps hitting.
		m.k0, m.k1 = m.k1, m.k0
		m.p0, m.p1 = m.p1, m.p0
		return m.p0
	}
	p, ok := m.pages[key]
	if !ok {
		if m.pool != nil {
			p = m.pool.get()
		} else {
			p = new([pageSize]byte)
		}
		m.pages[key] = p
	}
	m.k1, m.p1 = m.k0, m.p0
	m.k0, m.p0 = key, p
	return p
}

// release returns every page to the pool (zeroed) and empties the memory.
func (m *Memory) release() {
	if m.pool != nil {
		for _, p := range m.pages {
			m.pool.put(p)
		}
	}
	clear(m.pages)
	m.k0, m.k1 = noPage, noPage
	m.p0, m.p1 = nil, nil
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) byte {
	return m.page(addr)[addr%pageSize]
}

// Write8 stores a byte at addr.
func (m *Memory) Write8(addr uint32, v byte) {
	m.page(addr)[addr%pageSize] = v
}

// Read32 returns the big-endian word at addr (which need not be aligned
// across a page: SPARC requires alignment, enforced by the interpreter).
func (m *Memory) Read32(addr uint32) uint32 {
	p := m.page(addr)
	o := addr % pageSize
	return uint32(p[o])<<24 | uint32(p[o+1])<<16 | uint32(p[o+2])<<8 | uint32(p[o+3])
}

// Write32 stores a big-endian word.
func (m *Memory) Write32(addr uint32, v uint32) {
	p := m.page(addr)
	o := addr % pageSize
	p[o] = byte(v >> 24)
	p[o+1] = byte(v >> 16)
	p[o+2] = byte(v >> 8)
	p[o+3] = byte(v)
}

// Read16/Write16 for halfword accesses.
func (m *Memory) Read16(addr uint32) uint16 {
	p := m.page(addr)
	o := addr % pageSize
	return uint16(p[o])<<8 | uint16(p[o+1])
}

func (m *Memory) Write16(addr uint32, v uint16) {
	p := m.page(addr)
	o := addr % pageSize
	p[o] = byte(v >> 8)
	p[o+1] = byte(v)
}

// Interp executes a SPARC V8 executable functionally.
type Interp struct {
	x     *exe.Exe
	insts []sparc.Inst
	mem   *Memory

	reg        [32]uint32
	freg       [32]uint32
	n, z, v, c bool  // integer condition codes
	fcc        uint8 // 0=E 1=L 2=G 3=U
	y          uint32

	steps uint64
}

// StackTop is the initial stack pointer.
const StackTop = 0x7ffff000

// NewInterp decodes the executable and prepares an initial machine state:
// data segment loaded, registers zeroed, %sp set to StackTop.
func NewInterp(x *exe.Exe) (*Interp, error) {
	return newInterp(x, NewMemory())
}

func newInterp(x *exe.Exe, mem *Memory) (*Interp, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	insts, err := sparc.DecodeAll(x.Text)
	if err != nil {
		return nil, err
	}
	in := &Interp{x: x, insts: insts, mem: mem}
	for i, b := range x.Data {
		in.mem.Write8(x.DataBase+uint32(i), b)
	}
	in.reg[sparc.SP] = StackTop
	return in, nil
}

// Mem exposes the interpreter's memory (e.g. to read profiling counters
// after a run).
func (in *Interp) Mem() *Memory { return in.mem }

// Reg returns the value of an integer register.
func (in *Interp) Reg(r sparc.Reg) uint32 { return in.reg[r] }

// FReg returns the raw 32-bit contents of floating-point register %f<n>.
func (in *Interp) FReg(n int) uint32 { return in.freg[n] }

// Steps returns the number of instructions executed so far.
func (in *Interp) Steps() uint64 { return in.steps }

// Result summarizes a run.
type Result struct {
	Steps  uint64
	Halted bool // true if the program executed "ta 0"
}

// Observer receives every executed instruction in dynamic order, with its
// text index. The timing models consume this stream.
type Observer func(idx int, inst *sparc.Inst)

// Run executes from the entry point until "ta 0", an error, or maxSteps
// instructions. A nil observer is allowed.
func (in *Interp) Run(maxSteps uint64, observe Observer) (Result, error) {
	entry, err := in.x.IndexOf(in.x.Entry)
	if err != nil {
		return Result{}, err
	}
	n := len(in.insts)
	pc, npc := entry, entry+1

	for in.steps < maxSteps {
		if pc < 0 || pc >= n {
			return Result{Steps: in.steps}, fmt.Errorf("sim: pc %d outside text after %d steps", pc, in.steps)
		}
		inst := &in.insts[pc]
		in.steps++
		if observe != nil {
			observe(pc, inst)
		}

		nextPC, nextNPC := npc, npc+1
		switch inst.Op {
		case sparc.OpBicc:
			taken := in.evalIcc(inst.Cond)
			if taken {
				nextNPC = pc + int(inst.Disp)
			}
			if inst.Annul && (!taken || inst.Cond == sparc.CondA) {
				// Annulled: skip the delay slot.
				nextPC = nextNPC
				nextNPC = nextPC + 1
				if taken {
					nextPC = pc + int(inst.Disp)
					nextNPC = nextPC + 1
				}
			}
		case sparc.OpFBfcc:
			taken := in.evalFcc(inst.Cond)
			if taken {
				nextNPC = pc + int(inst.Disp)
			}
			if inst.Annul && (!taken || inst.Cond == sparc.CondA) {
				nextPC = nextNPC
				nextNPC = nextPC + 1
				if taken {
					nextPC = pc + int(inst.Disp)
					nextNPC = nextPC + 1
				}
			}
		case sparc.OpCall:
			in.reg[sparc.O7] = in.x.AddrOf(pc)
			nextNPC = pc + int(inst.Disp)
		case sparc.OpJmpl:
			target := in.reg[inst.Rs1] + in.operand2(inst)
			idx, err := in.x.IndexOf(target)
			if err != nil {
				return Result{Steps: in.steps}, fmt.Errorf("sim: jmpl to bad address %#x at pc %d", target, pc)
			}
			if inst.Rd != sparc.G0 {
				in.reg[inst.Rd] = in.x.AddrOf(pc)
			}
			nextNPC = idx
		case sparc.OpTicc:
			if in.evalIcc(inst.Cond) {
				tn := in.reg[inst.Rs1] + in.operand2(inst)
				if int32(tn) == TrapExit || inst.Imm == TrapExit {
					return Result{Steps: in.steps, Halted: true}, nil
				}
				return Result{Steps: in.steps}, fmt.Errorf("sim: unhandled trap %d at pc %d", tn, pc)
			}
		default:
			if err := in.execute(inst); err != nil {
				return Result{Steps: in.steps}, fmt.Errorf("sim: at pc %d: %w", pc, err)
			}
		}
		pc, npc = nextPC, nextNPC
	}
	return Result{Steps: in.steps}, fmt.Errorf("sim: step limit %d exceeded", maxSteps)
}

// operand2 returns rs2 or the sign-extended immediate.
func (in *Interp) operand2(i *sparc.Inst) uint32 {
	if i.UseImm {
		return uint32(i.Imm)
	}
	return in.reg[i.Rs2]
}

// setReg writes an integer register; %g0 stays zero.
func (in *Interp) setReg(r sparc.Reg, v uint32) {
	if r != sparc.G0 {
		in.reg[r] = v
	}
}

// execute handles non-CTI instructions.
func (in *Interp) execute(i *sparc.Inst) error {
	switch i.Op {
	case sparc.OpNop:
		return nil
	case sparc.OpSethi:
		in.setReg(i.Rd, uint32(i.Imm)<<10)
		return nil

	case sparc.OpAdd, sparc.OpSave, sparc.OpRestore:
		// save/restore act as plain adds: the workload generator emits
		// leaf procedures only, so no register-window shifting is needed.
		in.setReg(i.Rd, in.reg[i.Rs1]+in.operand2(i))
		return nil
	case sparc.OpSub:
		in.setReg(i.Rd, in.reg[i.Rs1]-in.operand2(i))
		return nil
	case sparc.OpAddcc:
		a, b := in.reg[i.Rs1], in.operand2(i)
		r := a + b
		in.setIcc(r)
		in.c = r < a
		in.v = (^(a^b)&(a^r))>>31 != 0
		in.setReg(i.Rd, r)
		return nil
	case sparc.OpSubcc:
		a, b := in.reg[i.Rs1], in.operand2(i)
		r := a - b
		in.setIcc(r)
		in.c = b > a
		in.v = ((a^b)&(a^r))>>31 != 0
		in.setReg(i.Rd, r)
		return nil
	case sparc.OpAddx:
		carry := uint32(0)
		if in.c {
			carry = 1
		}
		in.setReg(i.Rd, in.reg[i.Rs1]+in.operand2(i)+carry)
		return nil
	case sparc.OpSubx:
		borrow := uint32(0)
		if in.c {
			borrow = 1
		}
		in.setReg(i.Rd, in.reg[i.Rs1]-in.operand2(i)-borrow)
		return nil
	case sparc.OpAnd:
		in.setReg(i.Rd, in.reg[i.Rs1]&in.operand2(i))
		return nil
	case sparc.OpAndn:
		in.setReg(i.Rd, in.reg[i.Rs1]&^in.operand2(i))
		return nil
	case sparc.OpOr:
		in.setReg(i.Rd, in.reg[i.Rs1]|in.operand2(i))
		return nil
	case sparc.OpOrn:
		in.setReg(i.Rd, in.reg[i.Rs1]|^in.operand2(i))
		return nil
	case sparc.OpXor:
		in.setReg(i.Rd, in.reg[i.Rs1]^in.operand2(i))
		return nil
	case sparc.OpXnor:
		in.setReg(i.Rd, ^(in.reg[i.Rs1] ^ in.operand2(i)))
		return nil
	case sparc.OpAndcc, sparc.OpOrcc, sparc.OpXorcc:
		a, b := in.reg[i.Rs1], in.operand2(i)
		var r uint32
		switch i.Op {
		case sparc.OpAndcc:
			r = a & b
		case sparc.OpOrcc:
			r = a | b
		default:
			r = a ^ b
		}
		in.setIcc(r)
		in.c, in.v = false, false
		in.setReg(i.Rd, r)
		return nil
	case sparc.OpSll:
		in.setReg(i.Rd, in.reg[i.Rs1]<<(in.operand2(i)&31))
		return nil
	case sparc.OpSrl:
		in.setReg(i.Rd, in.reg[i.Rs1]>>(in.operand2(i)&31))
		return nil
	case sparc.OpSra:
		in.setReg(i.Rd, uint32(int32(in.reg[i.Rs1])>>(in.operand2(i)&31)))
		return nil
	case sparc.OpUmul:
		p := uint64(in.reg[i.Rs1]) * uint64(in.operand2(i))
		in.y = uint32(p >> 32)
		in.setReg(i.Rd, uint32(p))
		return nil
	case sparc.OpSmul:
		p := int64(int32(in.reg[i.Rs1])) * int64(int32(in.operand2(i)))
		in.y = uint32(uint64(p) >> 32)
		in.setReg(i.Rd, uint32(p))
		return nil
	case sparc.OpUdiv:
		d := in.operand2(i)
		if d == 0 {
			return fmt.Errorf("division by zero")
		}
		dividend := uint64(in.y)<<32 | uint64(in.reg[i.Rs1])
		q := dividend / uint64(d)
		if q > 0xffffffff {
			q = 0xffffffff
		}
		in.setReg(i.Rd, uint32(q))
		return nil
	case sparc.OpSdiv:
		d := int64(int32(in.operand2(i)))
		if d == 0 {
			return fmt.Errorf("division by zero")
		}
		dividend := int64(uint64(in.y)<<32 | uint64(in.reg[i.Rs1]))
		q := dividend / d
		if q > 0x7fffffff {
			q = 0x7fffffff
		}
		if q < -0x80000000 {
			q = -0x80000000
		}
		in.setReg(i.Rd, uint32(int32(q)))
		return nil
	case sparc.OpRdy:
		in.setReg(i.Rd, in.y)
		return nil
	case sparc.OpWry:
		in.y = in.reg[i.Rs1] ^ in.operand2(i)
		return nil
	}

	if i.Op.IsLoad() || i.Op.IsStore() {
		return in.memOp(i)
	}
	if i.Op.IsFP() {
		return in.fpOp(i)
	}
	return fmt.Errorf("unimplemented opcode %s", i.Op.Name())
}

func (in *Interp) setIcc(r uint32) {
	in.n = int32(r) < 0
	in.z = r == 0
}

func (in *Interp) memOp(i *sparc.Inst) error {
	addr := in.reg[i.Rs1] + in.operand2(i)
	switch i.Op {
	case sparc.OpLd:
		if addr%4 != 0 {
			return fmt.Errorf("misaligned ld at %#x", addr)
		}
		in.setReg(i.Rd, in.mem.Read32(addr))
	case sparc.OpLdub:
		in.setReg(i.Rd, uint32(in.mem.Read8(addr)))
	case sparc.OpLdsb:
		in.setReg(i.Rd, uint32(int32(int8(in.mem.Read8(addr)))))
	case sparc.OpLduh:
		if addr%2 != 0 {
			return fmt.Errorf("misaligned lduh at %#x", addr)
		}
		in.setReg(i.Rd, uint32(in.mem.Read16(addr)))
	case sparc.OpLdsh:
		if addr%2 != 0 {
			return fmt.Errorf("misaligned ldsh at %#x", addr)
		}
		in.setReg(i.Rd, uint32(int32(int16(in.mem.Read16(addr)))))
	case sparc.OpLdd:
		if addr%8 != 0 {
			return fmt.Errorf("misaligned ldd at %#x", addr)
		}
		in.setReg(i.Rd, in.mem.Read32(addr))
		in.setReg(i.Rd+1, in.mem.Read32(addr+4))
	case sparc.OpSt:
		if addr%4 != 0 {
			return fmt.Errorf("misaligned st at %#x", addr)
		}
		in.mem.Write32(addr, in.reg[i.Rd])
	case sparc.OpStb:
		in.mem.Write8(addr, byte(in.reg[i.Rd]))
	case sparc.OpSth:
		if addr%2 != 0 {
			return fmt.Errorf("misaligned sth at %#x", addr)
		}
		in.mem.Write16(addr, uint16(in.reg[i.Rd]))
	case sparc.OpStd:
		if addr%8 != 0 {
			return fmt.Errorf("misaligned std at %#x", addr)
		}
		in.mem.Write32(addr, in.reg[i.Rd])
		in.mem.Write32(addr+4, in.reg[i.Rd+1])
	case sparc.OpLdf:
		if addr%4 != 0 {
			return fmt.Errorf("misaligned ldf at %#x", addr)
		}
		in.freg[i.Rd.FNum()] = in.mem.Read32(addr)
	case sparc.OpLddf:
		if addr%8 != 0 {
			return fmt.Errorf("misaligned lddf at %#x", addr)
		}
		in.freg[i.Rd.FNum()] = in.mem.Read32(addr)
		in.freg[i.Rd.FNum()+1] = in.mem.Read32(addr + 4)
	case sparc.OpStf:
		if addr%4 != 0 {
			return fmt.Errorf("misaligned stf at %#x", addr)
		}
		in.mem.Write32(addr, in.freg[i.Rd.FNum()])
	case sparc.OpStdf:
		if addr%8 != 0 {
			return fmt.Errorf("misaligned stdf at %#x", addr)
		}
		in.mem.Write32(addr, in.freg[i.Rd.FNum()])
		in.mem.Write32(addr+4, in.freg[i.Rd.FNum()+1])
	case sparc.OpSwap:
		if addr%4 != 0 {
			return fmt.Errorf("misaligned swap at %#x", addr)
		}
		old := in.mem.Read32(addr)
		in.mem.Write32(addr, in.reg[i.Rd])
		in.setReg(i.Rd, old)
	case sparc.OpLdstub:
		old := in.mem.Read8(addr)
		in.mem.Write8(addr, 0xff)
		in.setReg(i.Rd, uint32(old))
	default:
		return fmt.Errorf("unimplemented memory op %s", i.Op.Name())
	}
	return nil
}

// evalIcc evaluates a Bicc condition against the integer condition codes.
func (in *Interp) evalIcc(c sparc.Cond) bool {
	n, z, v, cf := in.n, in.z, in.v, in.c
	switch c {
	case sparc.CondN:
		return false
	case sparc.CondE:
		return z
	case sparc.CondLE:
		return z || (n != v)
	case sparc.CondL:
		return n != v
	case sparc.CondLEU:
		return cf || z
	case sparc.CondCS:
		return cf
	case sparc.CondNeg:
		return n
	case sparc.CondVS:
		return v
	case sparc.CondA:
		return true
	case sparc.CondNE:
		return !z
	case sparc.CondG:
		return !(z || (n != v))
	case sparc.CondGE:
		return n == v
	case sparc.CondGU:
		return !(cf || z)
	case sparc.CondCC:
		return !cf
	case sparc.CondPos:
		return !n
	case sparc.CondVC:
		return !v
	}
	return false
}

// evalFcc evaluates an FBfcc condition. fcc: 0=E 1=L 2=G 3=U.
func (in *Interp) evalFcc(c sparc.Cond) bool {
	e := in.fcc == 0
	l := in.fcc == 1
	g := in.fcc == 2
	u := in.fcc == 3
	switch c {
	case 0: // fbn
		return false
	case 1: // fbne
		return l || g || u
	case 2: // fblg
		return l || g
	case 3: // fbul
		return l || u
	case 4: // fbl
		return l
	case 5: // fbug
		return g || u
	case 6: // fbg
		return g
	case 7: // fbu
		return u
	case 8: // fba
		return true
	case 9: // fbe
		return e
	case 10: // fbue
		return e || u
	case 11: // fbge
		return e || g
	case 12: // fbuge
		return e || g || u
	case 13: // fble
		return e || l
	case 14: // fbule
		return e || l || u
	case 15: // fbo
		return e || l || g
	}
	return false
}
