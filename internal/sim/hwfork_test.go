package sim

import (
	"reflect"
	"testing"

	"eel/internal/core"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// TestHWPipelineForkIndependent: a forked pipeline starts empty and does
// not share state with its parent.
func TestHWPipelineForkIndependent(t *testing.T) {
	model := spawn.MustLoad(spawn.SuperSPARC)
	p := NewHWPipeline(model, MachineRules(spawn.SuperSPARC))
	ld := sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0)
	use := sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G1, 1)
	if _, _, err := p.Issue(ld); err != nil {
		t.Fatal(err)
	}
	parentStalls, err := p.Stalls(use)
	if err != nil {
		t.Fatal(err)
	}
	if parentStalls == 0 {
		t.Fatal("expected a load-use stall on the parent pipeline")
	}
	fork := p.Fork()
	forkStalls, err := fork.Stalls(use)
	if err != nil {
		t.Fatal(err)
	}
	if forkStalls != 0 {
		t.Fatalf("fork inherited parent state: %d stalls", forkStalls)
	}
}

// TestHWPipelineForkSchedulesInParallel: a scheduler built over forked
// hardware oracles matches the sequential hardware-oracle schedule.
func TestHWPipelineForkSchedulesInParallel(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	rules := MachineRules(spawn.UltraSPARC)
	block := []sparc.Inst{
		sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G1, 1),
		sparc.NewStore(sparc.OpSt, sparc.G2, sparc.O0, 0),
		sparc.NewALUImm(sparc.OpAdd, sparc.G3, sparc.G4, 1),
		sparc.NewALUImm(sparc.OpAdd, sparc.G5, sparc.G6, 1),
	}
	blocks := make([][]sparc.Inst, 32)
	for i := range blocks {
		blocks[i] = block
	}
	proto := NewHWPipeline(model, rules)
	seq := core.NewWith(NewHWPipeline(model, rules), model, core.Options{})
	want := make([][]sparc.Inst, len(blocks))
	for i, b := range blocks {
		out, err := seq.ScheduleBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	par := core.NewWithFactory(func() core.Pipeline { return proto.Fork() }, model, core.Options{Workers: 4})
	got, err := par.ScheduleBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("forked-oracle parallel schedule differs from sequential")
	}
}
