package sim

import (
	"testing"

	"eel/internal/exe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// meterExe assembles a program with a 10-iteration counted loop at text
// indices [2, 7) and a straight-line tail.
func meterExe(t *testing.T) *exe.Exe {
	t.Helper()
	insts, err := sparc.Assemble(`
	set 1024, %g1
	set 10, %l7
loop:
	ldd [%g1], %f0
	faddd %f0, %f2, %f4
	subcc %l7, 1, %l7
	bne loop
	nop
	add %g2, 1, %g2
	ta 0
`)
	if err != nil {
		t.Fatal(err)
	}
	x := exe.New()
	for _, inst := range insts {
		x.Text = append(x.Text, sparc.MustEncode(inst))
	}
	return x
}

func TestRangeMeterAttributesLoopCycles(t *testing.T) {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	x := meterExe(t)

	in, err := NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	tm := NewProgramTiming(model, DefaultTiming(machine), x.TextBase, len(x.Text))
	m := NewRangeMeter(tm, [][2]int{{2, 7}, {7, 8}})
	res, err := in.Run(1<<20, m.Observe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}

	// One entry into the loop, one into the tail; the back edge stays
	// inside the range so iterations do not count as visits.
	if m.Visits(0) != 1 || m.Visits(1) != 1 {
		t.Errorf("visits = %d/%d, want 1/1", m.Visits(0), m.Visits(1))
	}
	// The loop executes 5 instructions x 10 iterations; it must dominate
	// the program's cycles, and no range can exceed the total.
	total := m.Timing().Cycles()
	if m.Cycles(0) <= 0 || m.Cycles(0) >= total {
		t.Errorf("loop cycles = %d, total %d", m.Cycles(0), total)
	}
	if m.Cycles(0)+m.Cycles(1) > total {
		t.Errorf("attributed %d+%d > total %d", m.Cycles(0), m.Cycles(1), total)
	}
	if m.Cycles(0) < 10 {
		t.Errorf("loop cycles = %d, want >= 10 (one per iteration at least)", m.Cycles(0))
	}
	// Metering must not change the measurement itself.
	_, tm2, _, err := RunMeasured(meterExe(t), model, DefaultTiming(machine), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if tm2.Cycles() != total {
		t.Errorf("metered run measured %d cycles, plain run %d", total, tm2.Cycles())
	}
}
