package sim

import (
	"math"
	"testing"

	"eel/internal/exe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// buildExe assembles a program into an executable image.
func buildExe(t *testing.T, src string) *exe.Exe {
	t.Helper()
	insts, err := sparc.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	x := exe.New()
	for _, inst := range insts {
		x.Text = append(x.Text, sparc.MustEncode(inst))
	}
	x.AddSymbol("main", x.TextBase, true)
	return x
}

func run(t *testing.T, x *exe.Exe, max uint64) *Interp {
	t.Helper()
	in, err := NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(max, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("program did not halt")
	}
	return in
}

func TestInterpCountingLoop(t *testing.T) {
	x := buildExe(t, `
	mov 0, %g1
	set 1000, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`)
	in := run(t, x, 1e7)
	if got := in.Reg(sparc.G1); got != 1000 {
		t.Errorf("g1 = %d, want 1000", got)
	}
}

func TestInterpMemorySum(t *testing.T) {
	// Sum 10 words stored via the data segment.
	x := buildExe(t, `
	sethi %hi(0x40000000), %o0
	mov 0, %g1
	mov 0, %g2
loop:
	sll %g2, 2, %g3
	ld [%o0 + %g3], %g4
	add %g1, %g4, %g1
	add %g2, 1, %g2
	cmp %g2, 10
	bl loop
	nop
	sethi %hi(0x40000400), %o1
	st %g1, [%o1]
	ta 0
`)
	x.Data = make([]byte, 0x500)
	for i := 0; i < 10; i++ {
		v := uint32((i + 1) * 3)
		x.Data[4*i] = byte(v >> 24)
		x.Data[4*i+1] = byte(v >> 16)
		x.Data[4*i+2] = byte(v >> 8)
		x.Data[4*i+3] = byte(v)
	}
	in := run(t, x, 1e6)
	want := uint32(3 * 55)
	if got := in.Reg(sparc.G1); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if got := in.Mem().Read32(0x40000400); got != want {
		t.Errorf("stored sum = %d, want %d", got, want)
	}
}

func TestInterpCallReturn(t *testing.T) {
	x := buildExe(t, `
	mov 5, %o0
	call double
	nop
	mov %o0, %g1
	ta 0
double:
	retl
	add %o0, %o0, %o0
`)
	in := run(t, x, 1e6)
	if got := in.Reg(sparc.G1); got != 10 {
		t.Errorf("g1 = %d, want 10", got)
	}
}

func TestInterpFloatKernel(t *testing.T) {
	// out = 2.5 * 4.0 + 1.5 (double precision via data segment).
	x := buildExe(t, `
	sethi %hi(0x40000000), %o0
	ldd [%o0], %f0       ! 2.5
	ldd [%o0 + 8], %f2   ! 4.0
	ldd [%o0 + 16], %f4  ! 1.5
	fmuld %f0, %f2, %f6
	faddd %f6, %f4, %f8
	std %f8, [%o0 + 24]
	ta 0
`)
	x.Data = make([]byte, 32)
	put64 := func(off int, v float64) {
		bits := float64bits(v)
		for i := 0; i < 8; i++ {
			x.Data[off+i] = byte(bits >> (56 - 8*i))
		}
	}
	put64(0, 2.5)
	put64(8, 4.0)
	put64(16, 1.5)
	in := run(t, x, 1e6)
	hi := uint64(in.Mem().Read32(0x40000018))
	lo := uint64(in.Mem().Read32(0x4000001c))
	got := float64frombits(hi<<32 | lo)
	if got != 11.5 {
		t.Errorf("fp result = %v, want 11.5", got)
	}
}

func TestInterpConditionCodes(t *testing.T) {
	cases := []struct {
		src  string
		want uint32
	}{
		{"mov 5, %g2\ncmp %g2, 5\nbe yes\nnop\nmov 0, %g1\nba out\nnop\nyes: mov 1, %g1\nout: ta 0", 1},
		{"mov 5, %g2\ncmp %g2, 9\nbl yes\nnop\nmov 0, %g1\nba out\nnop\nyes: mov 1, %g1\nout: ta 0", 1},
		{"mov 9, %g2\ncmp %g2, 5\nbg yes\nnop\nmov 0, %g1\nba out\nnop\nyes: mov 1, %g1\nout: ta 0", 1},
		{"mov 0, %g2\nsub %g2, 1, %g2\ncmp %g2, 0\nbl yes\nnop\nmov 0, %g1\nba out\nnop\nyes: mov 1, %g1\nout: ta 0", 1},
		// Unsigned: 0xffffffff > 1 unsigned.
		{"mov 0, %g2\nsub %g2, 1, %g2\ncmp %g2, 1\nbgu yes\nnop\nmov 0, %g1\nba out\nnop\nyes: mov 1, %g1\nout: ta 0", 1},
	}
	for i, c := range cases {
		in := run(t, buildExe(t, c.src), 1e5)
		if got := in.Reg(sparc.G1); got != c.want {
			t.Errorf("case %d: g1 = %d, want %d", i, got, c.want)
		}
	}
}

func TestInterpAnnulledBranch(t *testing.T) {
	// ba,a skips its delay slot.
	x := buildExe(t, `
	mov 0, %g1
	ba,a out
	mov 99, %g1
out:
	ta 0
`)
	in := run(t, x, 1e5)
	if got := in.Reg(sparc.G1); got != 0 {
		t.Errorf("annulled delay slot executed: g1 = %d", got)
	}
	// Untaken annulled conditional also skips the slot.
	x = buildExe(t, `
	mov 0, %g1
	cmp %g1, 1
	be,a out
	mov 99, %g1
	mov 7, %g2
out:
	ta 0
`)
	in = run(t, x, 1e5)
	if got := in.Reg(sparc.G1); got != 0 {
		t.Errorf("untaken annulled slot executed: g1 = %d", got)
	}
	if got := in.Reg(sparc.G2); got != 7 {
		t.Errorf("fallthrough path skipped: g2 = %d", got)
	}
	// Taken annulled conditional executes the slot.
	x = buildExe(t, `
	mov 1, %g1
	cmp %g1, 1
	be,a out
	mov 99, %g1
out:
	ta 0
`)
	in = run(t, x, 1e5)
	if got := in.Reg(sparc.G1); got != 99 {
		t.Errorf("taken annulled slot skipped: g1 = %d", got)
	}
}

func TestInterpMulDiv(t *testing.T) {
	x := buildExe(t, `
	mov 1000, %g2
	mov 1000, %g3
	umul %g2, %g3, %g1   ! 1e6
	wr %g0, %g0, %y
	mov 7, %g4
	udiv %g1, %g4, %g5   ! 142857
	ta 0
`)
	in := run(t, x, 1e5)
	if got := in.Reg(sparc.G1); got != 1000000 {
		t.Errorf("umul = %d", got)
	}
	if got := in.Reg(sparc.G5); got != 142857 {
		t.Errorf("udiv = %d", got)
	}
}

func TestInterpErrors(t *testing.T) {
	// Step limit.
	x := buildExe(t, "loop: ba loop\nnop")
	in, err := NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(100, nil); err == nil {
		t.Error("infinite loop did not hit the step limit")
	}
	// Misaligned load.
	x = buildExe(t, "sethi %hi(0x40000000), %o0\nld [%o0 + 2], %g1\nta 0")
	in, _ = NewInterp(x)
	if _, err := in.Run(100, nil); err == nil {
		t.Error("misaligned load not rejected")
	}
	// Division by zero.
	x = buildExe(t, "wr %g0, %g0, %y\nudiv %g1, %g0, %g2\nta 0")
	in, _ = NewInterp(x)
	if _, err := in.Run(100, nil); err == nil {
		t.Error("division by zero not rejected")
	}
	// Jmpl to a bad address.
	x = buildExe(t, "jmpl %g1 + 2, %g0\nnop\nta 0")
	in, _ = NewInterp(x)
	if _, err := in.Run(100, nil); err == nil {
		t.Error("wild jmpl not rejected")
	}
}

func TestObserverSeesDynamicStream(t *testing.T) {
	x := buildExe(t, `
	mov 0, %g1
loop:
	add %g1, 1, %g1
	cmp %g1, 3
	bne loop
	nop
	ta 0
`)
	in, err := NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	res, err := in.Run(1e5, func(idx int, inst *sparc.Inst) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count != res.Steps {
		t.Errorf("observer saw %d, result says %d", count, res.Steps)
	}
	// 1 mov + 3 iterations * 4 + ta = 14.
	if count != 14 {
		t.Errorf("dynamic count = %d, want 14", count)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 32, 1) // 32 lines direct-mapped
	if c.Access(0) {
		t.Error("cold miss reported as hit")
	}
	if !c.Access(0) || !c.Access(4) || !c.Access(31) {
		t.Error("same-line access missed")
	}
	if c.Access(1024) {
		t.Error("conflicting line hit")
	}
	if c.Access(0) {
		t.Error("evicted line hit")
	}
	if c.MissRate() <= 0 || c.MissRate() >= 1 {
		t.Errorf("miss rate = %f", c.MissRate())
	}
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestCacheAssociativity(t *testing.T) {
	c := NewCache(1024, 32, 2) // 16 sets, 2-way
	c.Access(0)
	c.Access(512) // same set, second way
	if !c.Access(0) || !c.Access(512) {
		t.Error("2-way set should hold both lines")
	}
	c.Access(1024) // evicts LRU (0)
	if c.Access(0) {
		t.Error("LRU line not evicted")
	}
	// That refill evicted 512 (now LRU); 1024 must survive as MRU.
	if !c.Access(1024) {
		t.Error("MRU line evicted")
	}
}

func TestTimingMonotoneAndSensible(t *testing.T) {
	src := `
	mov 0, %g1
	set 10000, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`
	x := buildExe(t, src)
	model := spawn.MustLoad(spawn.UltraSPARC)
	_, tm, res, err := RunMeasured(x, model, DefaultTiming(spawn.UltraSPARC), 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	cycles := tm.Cycles()
	if cycles <= 0 {
		t.Fatal("no cycles measured")
	}
	ipc := float64(res.Steps) / float64(cycles)
	// A dependent loop with a taken branch per 4 instructions lands well
	// below the 4-wide peak but should exceed 0.3 IPC.
	if ipc < 0.3 || ipc > 4 {
		t.Errorf("IPC = %.2f, outside sane range", ipc)
	}
	if tm.Instructions() != res.Steps {
		t.Errorf("timing saw %d instructions, interp ran %d", tm.Instructions(), res.Steps)
	}
	if tm.Seconds() <= 0 {
		t.Error("Seconds() not positive")
	}
}

func TestTimingICacheEffect(t *testing.T) {
	// The same loop measured with and without the icache: the cache
	// version must not be faster, and a loop fitting in the cache should
	// have a near-zero miss rate.
	src := `
	mov 0, %g1
	set 50000, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`
	x := buildExe(t, src)
	model := spawn.MustLoad(spawn.UltraSPARC)
	cfg := DefaultTiming(spawn.UltraSPARC)
	_, with, _, err := RunMeasured(x, model, cfg, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.ICacheSize = 0
	_, without, _, err := RunMeasured(x, model, cfg2, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if with.Cycles() < without.Cycles() {
		t.Errorf("icache made execution faster: %d < %d", with.Cycles(), without.Cycles())
	}
	if mr := with.ICache().MissRate(); mr > 0.001 {
		t.Errorf("tiny loop miss rate = %f", mr)
	}
	if without.ICache() != nil {
		t.Error("disabled icache still present")
	}
}

func TestHWPipelineGroupingRules(t *testing.T) {
	model := spawn.MustLoad(spawn.SuperSPARC)
	// Without rules, a load can co-issue with a following add; with
	// MemEndsGroup the add lands in the next cycle.
	free := NewHWPipeline(model, Rules{})
	_, c1, err := free.Issue(sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := free.Issue(sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("free rules: add at %d, load at %d; should co-issue", c2, c1)
	}

	strict := NewHWPipeline(model, Rules{MemEndsGroup: true})
	_, c1, _ = strict.Issue(sparc.NewLoad(sparc.OpLd, sparc.G1, sparc.O0, 0))
	_, c2, _ = strict.Issue(sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G3, 1))
	if c2 != c1+1 {
		t.Errorf("MemEndsGroup: add at %d, load at %d; want next cycle", c2, c1)
	}
}

func TestHWPipelineMatchesPipeOnPlainCode(t *testing.T) {
	// With no extra rules the HW engine and the SADL pipeline agree on
	// issue cycles for a simple independent sequence.
	model := spawn.MustLoad(spawn.UltraSPARC)
	hw := NewHWPipeline(model, Rules{})
	seq := []sparc.Inst{
		sparc.NewSethi(sparc.G1, 0x10000),
		sparc.NewLoad(sparc.OpLd, sparc.G2, sparc.G1, 0x40),
		sparc.NewALUImm(sparc.OpAdd, sparc.G2, sparc.G2, 1),
		sparc.NewStore(sparc.OpSt, sparc.G2, sparc.G1, 0x40),
	}
	want := []int64{0, 0, 2, 3}
	for i, inst := range seq {
		_, c, err := hw.Issue(inst)
		if err != nil {
			t.Fatal(err)
		}
		if c != want[i] {
			t.Errorf("inst %d at cycle %d, want %d", i, c, want[i])
		}
	}
}

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }

func float32bits(v float32) uint32 { return math.Float32bits(v) }
