package sim

import (
	"eel/internal/core"
	"eel/internal/exe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// TimingConfig selects the hardware timing features of a machine.
type TimingConfig struct {
	Rules Rules
	// Instruction cache geometry; Size 0 disables the cache model.
	ICacheSize  int
	ICacheLine  int
	ICacheWays  int
	MissPenalty int64
	// ClockMHz converts cycles to seconds for reporting.
	ClockMHz float64
}

// DefaultTiming returns the per-machine hardware configuration used by the
// benchmark harness. Clock rates follow the paper's testbeds: a 50 MHz
// SuperSPARC SPARCstation 20 and a 167 MHz UltraSPARC Enterprise.
func DefaultTiming(m spawn.Machine) TimingConfig {
	switch m {
	case spawn.HyperSPARC:
		return TimingConfig{
			Rules:      MachineRules(m),
			ICacheSize: 8 << 10, ICacheLine: 32, ICacheWays: 1,
			MissPenalty: 8, ClockMHz: 66,
		}
	case spawn.SuperSPARC:
		return TimingConfig{
			Rules:      MachineRules(m),
			ICacheSize: 16 << 10, ICacheLine: 32, ICacheWays: 4,
			MissPenalty: 9, ClockMHz: 50,
		}
	default: // UltraSPARC
		return TimingConfig{
			Rules:      MachineRules(m),
			ICacheSize: 16 << 10, ICacheLine: 32, ICacheWays: 2,
			MissPenalty: 8, ClockMHz: 167,
		}
	}
}

// Timing measures the execution of a dynamic instruction stream on the
// hardware model: the spawn-model units and latencies, the machine Rules,
// the instruction cache, and branch redirect/misprediction penalties.
// Feed it to Interp.Run as the observer.
type Timing struct {
	hw     *HW
	cfg    TimingConfig
	icache *Cache
	base   uint32 // text base for fetch addresses

	// prog memoizes each static instruction's timing-group resolution and
	// held-unit placement inputs per text index, in the scheduler's
	// structure-of-arrays block representation (core.BlockSoA, sized via
	// ResizePrep: only the Prep and Flags arrays are used; a Prep slot
	// with a nil Group is not yet resolved). Empty when the text length
	// is unknown — plain NewTiming callers — in which case Observe falls
	// back to HW's per-instruction resolve cache. A 600k-step run
	// touches only a few thousand static instructions, so each is
	// resolved at most once.
	prog core.BlockSoA

	lastIdx int
	// Pending conditional branch, for misprediction accounting.
	pendIdx  int // index of the conditional CTI, -1 if none
	pendDisp int32
	sinceCTI int

	instructions uint64
	mispredicts  uint64
	redirects    uint64
}

// NewTiming builds a timing observer for an executable's text base.
func NewTiming(model *spawn.Model, cfg TimingConfig, textBase uint32) *Timing {
	t := &Timing{
		hw:      NewHW(model, cfg.Rules),
		cfg:     cfg,
		base:    textBase,
		lastIdx: -1,
		pendIdx: -1,
	}
	if cfg.ICacheSize > 0 {
		t.icache = NewCache(cfg.ICacheSize, cfg.ICacheLine, cfg.ICacheWays)
	}
	return t
}

// NewProgramTiming is NewTiming for a program of known text length: each
// static instruction's placement inputs are resolved once, on first
// execution, instead of on every dynamic instruction.
func NewProgramTiming(model *spawn.Model, cfg TimingConfig, textBase uint32, textLen int) *Timing {
	t := NewTiming(model, cfg, textBase)
	t.prog.ResizePrep(textLen)
	return t
}

// ResetFor prepares the observer for a fresh run of a (possibly different)
// executable, reusing the hardware engine, the instruction-cache arrays
// and the static-instruction memo storage. It leaves the observer exactly
// as NewProgramTiming would build it.
func (t *Timing) ResetFor(textBase uint32, textLen int) {
	t.hw.Reset()
	if t.icache != nil {
		t.icache.Reset()
	}
	t.base = textBase
	t.lastIdx, t.pendIdx = -1, -1
	t.pendDisp, t.sinceCTI = 0, 0
	t.instructions, t.mispredicts, t.redirects = 0, 0, 0
	t.prog.ResizePrep(textLen)
}

// Observe consumes one executed instruction. It matches sim.Observer.
func (t *Timing) Observe(idx int, inst *sparc.Inst) {
	t.instructions++

	// Fetch: cache lookup and redirect bubbles.
	if t.icache != nil {
		if !t.icache.Access(t.base + 4*uint32(idx)) {
			t.hw.Delay(t.hw.Clock() + t.cfg.MissPenalty)
		}
	}
	if t.lastIdx >= 0 && idx != t.lastIdx+1 {
		// Non-sequential fetch: a taken transfer redirected the stream.
		t.redirects++
		t.hw.Delay(t.hw.Clock() + t.cfg.Rules.RedirectPenalty)
	}

	// Misprediction accounting for the pending conditional branch: the
	// second instruction after it reveals the outcome.
	if t.pendIdx >= 0 {
		t.sinceCTI++
		if t.sinceCTI >= 2 || idx != t.lastIdx+1 {
			taken := idx != t.pendIdx+2
			predictTaken := t.cfg.Rules.PredictBackwardTaken && t.pendDisp < 0
			if t.cfg.Rules.MispredictPenalty > 0 && taken != predictTaken {
				t.mispredicts++
				t.hw.Delay(t.hw.Clock() + t.cfg.Rules.MispredictPenalty)
			}
			t.pendIdx = -1
		}
	}

	var issue int64
	var err error
	if idx < len(t.prog.Prep) {
		p := &t.prog.Prep[idx]
		if p.Group() == nil {
			err = t.hw.prepare(p, inst)
			if err == nil {
				t.prog.Flags[idx] = core.InstFlagsOf(*inst)
			}
		}
		if err == nil {
			issue, err = t.hw.placePrepared(p, t.prog.Flags[idx], inst, true)
		}
	} else {
		issue, err = t.hw.place(inst, true)
	}
	if err != nil {
		// The stream already executed functionally; a timing-model gap is
		// a bug, so make it loud.
		panic(err)
	}
	if t.cfg.Rules.CTIEndsGroup && inst.IsCTI() {
		t.hw.Delay(issue + 1)
	}

	if (inst.Op == sparc.OpBicc || inst.Op == sparc.OpFBfcc) && !inst.IsUncond() {
		t.pendIdx = idx
		t.pendDisp = inst.Disp
		t.sinceCTI = 0
	}
	t.lastIdx = idx
}

// Cycles returns the cycle count so far.
func (t *Timing) Cycles() int64 { return t.hw.Clock() }

// Seconds converts the cycle count at the configured clock rate.
func (t *Timing) Seconds() float64 {
	return float64(t.hw.Clock()) / (t.cfg.ClockMHz * 1e6)
}

// Instructions returns the number of observed instructions.
func (t *Timing) Instructions() uint64 { return t.instructions }

// ICache exposes the cache model (nil if disabled).
func (t *Timing) ICache() *Cache { return t.icache }

// Mispredicts and Redirects expose branch statistics.
func (t *Timing) Mispredicts() uint64 { return t.mispredicts }
func (t *Timing) Redirects() uint64   { return t.redirects }

// RunMeasured executes x functionally while measuring it on the machine's
// timing model, returning the finished interpreter (for reading counters),
// the timing observer and the run result.
func RunMeasured(x *exe.Exe, model *spawn.Model, cfg TimingConfig, maxSteps uint64) (*Interp, *Timing, Result, error) {
	in, err := NewInterp(x)
	if err != nil {
		return nil, nil, Result{}, err
	}
	t := NewProgramTiming(model, cfg, x.TextBase, len(x.Text))
	res, err := in.Run(maxSteps, t.Observe)
	if err != nil {
		return nil, nil, res, err
	}
	return in, t, res, nil
}
