package sim

import (
	"fmt"
	"math"

	"eel/internal/sparc"
)

// fget64 reads the double-precision register pair rooted at even register
// n (the even register holds the high word, per SPARC).
func (in *Interp) fget64(n int) float64 {
	bits := uint64(in.freg[n])<<32 | uint64(in.freg[n+1])
	return math.Float64frombits(bits)
}

func (in *Interp) fset64(n int, v float64) {
	bits := math.Float64bits(v)
	in.freg[n] = uint32(bits >> 32)
	in.freg[n+1] = uint32(bits)
}

func (in *Interp) fget32(n int) float32 {
	return math.Float32frombits(in.freg[n])
}

func (in *Interp) fset32(n int, v float32) {
	in.freg[n] = math.Float32bits(v)
}

// fpOp executes a floating-point operate instruction.
func (in *Interp) fpOp(i *sparc.Inst) error {
	rd := 0
	if i.Rd.IsFloat() {
		rd = i.Rd.FNum()
	}
	rs1 := 0
	if i.Rs1.IsFloat() {
		rs1 = i.Rs1.FNum()
	}
	rs2 := i.Rs2.FNum()

	switch i.Op {
	case sparc.OpFadds:
		in.fset32(rd, in.fget32(rs1)+in.fget32(rs2))
	case sparc.OpFsubs:
		in.fset32(rd, in.fget32(rs1)-in.fget32(rs2))
	case sparc.OpFmuls:
		in.fset32(rd, in.fget32(rs1)*in.fget32(rs2))
	case sparc.OpFdivs:
		in.fset32(rd, in.fget32(rs1)/in.fget32(rs2))
	case sparc.OpFaddd:
		in.fset64(rd, in.fget64(rs1)+in.fget64(rs2))
	case sparc.OpFsubd:
		in.fset64(rd, in.fget64(rs1)-in.fget64(rs2))
	case sparc.OpFmuld:
		in.fset64(rd, in.fget64(rs1)*in.fget64(rs2))
	case sparc.OpFdivd:
		in.fset64(rd, in.fget64(rs1)/in.fget64(rs2))
	case sparc.OpFsqrts:
		in.fset32(rd, float32(math.Sqrt(float64(in.fget32(rs2)))))
	case sparc.OpFsqrtd:
		in.fset64(rd, math.Sqrt(in.fget64(rs2)))
	case sparc.OpFmovs:
		in.freg[rd] = in.freg[rs2]
	case sparc.OpFnegs:
		in.freg[rd] = in.freg[rs2] ^ 0x80000000
	case sparc.OpFabss:
		in.freg[rd] = in.freg[rs2] &^ 0x80000000
	case sparc.OpFitos:
		in.fset32(rd, float32(int32(in.freg[rs2])))
	case sparc.OpFitod:
		in.fset64(rd, float64(int32(in.freg[rs2])))
	case sparc.OpFstoi:
		in.freg[rd] = uint32(int32(in.fget32(rs2)))
	case sparc.OpFdtoi:
		in.freg[rd] = uint32(int32(in.fget64(rs2)))
	case sparc.OpFstod:
		in.fset64(rd, float64(in.fget32(rs2)))
	case sparc.OpFdtos:
		in.fset32(rd, float32(in.fget64(rs2)))
	case sparc.OpFcmps:
		in.fcc = fcompare(float64(in.fget32(rs1)), float64(in.fget32(rs2)))
	case sparc.OpFcmpd:
		in.fcc = fcompare(in.fget64(rs1), in.fget64(rs2))
	default:
		return fmt.Errorf("unimplemented fp op %s", i.Op.Name())
	}
	return nil
}

// fcompare returns the SPARC fcc code: 0=equal 1=less 2=greater
// 3=unordered.
func fcompare(a, b float64) uint8 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return 3
	case a == b:
		return 0
	case a < b:
		return 1
	default:
		return 2
	}
}
