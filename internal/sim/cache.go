package sim

// Cache is a set-associative cache with LRU replacement, used to model
// instruction fetch. Program instrumentation grows the text segment and
// therefore the miss rate — the Lebeck & Wood effect the paper's §4.1
// notes scheduling cannot hide.
type Cache struct {
	lineShift uint32
	setMask   uint32
	ways      int
	// tags[set*ways+way]; lru[set*ways+way] holds a use stamp.
	tags  []uint32
	valid []bool
	lru   []uint64
	stamp uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache of size bytes with the given line size and
// associativity. Sizes must be powers of two.
func NewCache(size, lineSize, ways int) *Cache {
	sets := size / lineSize / ways
	c := &Cache{
		ways:  ways,
		tags:  make([]uint32, sets*ways),
		valid: make([]bool, sets*ways),
		lru:   make([]uint64, sets*ways),
	}
	for 1<<c.lineShift < lineSize {
		c.lineShift++
	}
	c.setMask = uint32(sets - 1)
	return c
}

// Access looks up addr, updates LRU state and fills on miss. It reports
// whether the access hit.
func (c *Cache) Access(addr uint32) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.ways
	c.stamp++
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.lru[base+w] = c.stamp
			c.Hits++
			return true
		}
	}
	c.Misses++
	victim := base
	for w := 1; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.stamp
	return false
}

// MissRate returns misses / accesses.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.stamp = 0
	c.Hits = 0
	c.Misses = 0
}
