package sim

import "eel/internal/sparc"

// RangeMeter attributes simulated cycles to half-open text-index ranges
// on top of a Timing observer: pass its Observe to Interp.Run instead of
// the Timing's. Each dynamic instruction's cycle delta — including every
// stall it absorbed — is charged to the range containing it, and a visit
// is counted each time control enters a range from outside. For a loop
// (the back edge stays inside the range) visits therefore count loop
// entries, not iterations: cycles per iteration is
// Cycles(r) / (Visits(r) * trip).
//
// Ranges must not overlap; instructions outside every range are
// unattributed. A RangeMeter is single-run state — build a fresh one per
// measured simulation.
type RangeMeter struct {
	tm         *Timing
	start, end []int32
	cycles     []int64
	visits     []int64
	last       int64
	cur        int // range of the previous instruction, -1 outside
}

// NewRangeMeter wraps a timing observer with cycle attribution over
// ranges, each a half-open [start, end) pair of text indices.
func NewRangeMeter(tm *Timing, ranges [][2]int) *RangeMeter {
	m := &RangeMeter{
		tm:     tm,
		start:  make([]int32, len(ranges)),
		end:    make([]int32, len(ranges)),
		cycles: make([]int64, len(ranges)),
		visits: make([]int64, len(ranges)),
		cur:    -1,
	}
	for i, r := range ranges {
		m.start[i], m.end[i] = int32(r[0]), int32(r[1])
	}
	return m
}

// Observe consumes one executed instruction. It matches sim.Observer.
func (m *RangeMeter) Observe(idx int, inst *sparc.Inst) {
	m.tm.Observe(idx, inst)
	now := m.tm.Cycles()
	d := now - m.last
	m.last = now

	r := -1
	for i := range m.start {
		if int32(idx) >= m.start[i] && int32(idx) < m.end[i] {
			r = i
			break
		}
	}
	if r >= 0 {
		m.cycles[r] += d
		if r != m.cur {
			m.visits[r]++
		}
	}
	m.cur = r
}

// Cycles returns the cycles attributed to range r.
func (m *RangeMeter) Cycles(r int) int64 { return m.cycles[r] }

// Visits returns how many times control entered range r from outside.
func (m *RangeMeter) Visits(r int) int64 { return m.visits[r] }

// Timing returns the wrapped observer (for whole-program totals).
func (m *RangeMeter) Timing() *Timing { return m.tm }
