package sim

import (
	"testing"

	"eel/internal/sparc"
)

// Additional interpreter coverage: sub-word memory, carry arithmetic,
// atomics, fp conversions and branch families.

func TestInterpByteHalfword(t *testing.T) {
	x := buildExe(t, `
	sethi %hi(0x40000000), %o0
	ldub [%o0 + 0], %g1   ! 0xfe -> 254
	ldsb [%o0 + 0], %g2   ! 0xfe -> -2
	lduh [%o0 + 2], %g3   ! 0x8004 -> 32772
	ldsh [%o0 + 2], %g4   ! 0x8004 -> -32764
	stb %g1, [%o0 + 8]
	sth %g3, [%o0 + 10]
	ta 0
`)
	x.Data = []byte{0xfe, 0x00, 0x80, 0x04, 0, 0, 0, 0, 0, 0, 0, 0}
	in := run(t, x, 1e5)
	if got := in.Reg(sparc.G1); got != 254 {
		t.Errorf("ldub = %d", got)
	}
	if got := int32(in.Reg(sparc.G2)); got != -2 {
		t.Errorf("ldsb = %d", got)
	}
	if got := in.Reg(sparc.G3); got != 0x8004 {
		t.Errorf("lduh = %#x", got)
	}
	if got := int32(in.Reg(sparc.G4)); got != -32764 {
		t.Errorf("ldsh = %d", got)
	}
	if got := in.Mem().Read8(0x40000008); got != 0xfe {
		t.Errorf("stb stored %#x", got)
	}
	if got := in.Mem().Read16(0x4000000a); got != 0x8004 {
		t.Errorf("sth stored %#x", got)
	}
}

func TestInterpCarryChain(t *testing.T) {
	// 64-bit add via addcc/addx: 0xffffffff + 1 = carry into high word.
	x := buildExe(t, `
	mov 0, %g1
	sub %g1, 1, %g1        ! g1 = 0xffffffff
	mov 0, %g2             ! high word
	addcc %g1, 1, %g3      ! low = 0, C=1
	addx %g2, 0, %g4       ! high = 1
	ta 0
`)
	in := run(t, x, 1e5)
	if got := in.Reg(sparc.G3); got != 0 {
		t.Errorf("low word = %d", got)
	}
	if got := in.Reg(sparc.G4); got != 1 {
		t.Errorf("high word = %d", got)
	}
	// subx borrows symmetrically: 0 - 1 at 64 bits.
	x = buildExe(t, `
	mov 0, %g1
	mov 0, %g2
	subcc %g1, 1, %g3      ! low = 0xffffffff, borrow
	subx %g2, 0, %g4       ! high = 0xffffffff
	ta 0
`)
	in = run(t, x, 1e5)
	if got := in.Reg(sparc.G3); got != 0xffffffff {
		t.Errorf("sub low = %#x", got)
	}
	if got := in.Reg(sparc.G4); got != 0xffffffff {
		t.Errorf("sub high = %#x", got)
	}
}

func TestInterpAtomics(t *testing.T) {
	x := buildExe(t, `
	sethi %hi(0x40000000), %o0
	mov 77, %g1
	swap [%o0], %g1        ! g1 <- old (5), mem <- 77
	ldstub [%o0 + 4], %g2  ! g2 <- 0xaa, mem byte <- 0xff
	ta 0
`)
	x.Data = []byte{0, 0, 0, 5, 0xaa, 0, 0, 0}
	in := run(t, x, 1e5)
	if got := in.Reg(sparc.G1); got != 5 {
		t.Errorf("swap returned %d", got)
	}
	if got := in.Mem().Read32(0x40000000); got != 77 {
		t.Errorf("swap stored %d", got)
	}
	if got := in.Reg(sparc.G2); got != 0xaa {
		t.Errorf("ldstub returned %#x", got)
	}
	if got := in.Mem().Read8(0x40000004); got != 0xff {
		t.Errorf("ldstub stored %#x", got)
	}
}

func TestInterpShifts(t *testing.T) {
	x := buildExe(t, `
	mov 1, %g1
	sll %g1, 31, %g2       ! 0x80000000
	srl %g2, 31, %g3       ! 1
	sra %g2, 31, %g4       ! 0xffffffff
	mov 0x70, %g5
	sll %g1, %g5, %o3      ! shift by reg, masked to 0x10 -> 0x10000
	ta 0
`)
	in := run(t, x, 1e5)
	if got := in.Reg(sparc.G2); got != 0x80000000 {
		t.Errorf("sll = %#x", got)
	}
	if got := in.Reg(sparc.G3); got != 1 {
		t.Errorf("srl = %d", got)
	}
	if got := in.Reg(sparc.G4); got != 0xffffffff {
		t.Errorf("sra = %#x", got)
	}
	if got := in.Reg(sparc.O3); got != 1<<16 {
		t.Errorf("sll by reg = %#x", got)
	}
}

func TestInterpLogicalCC(t *testing.T) {
	x := buildExe(t, `
	mov 0, %g1
	andcc %g1, %g1, %g0    ! Z=1
	be z1
	nop
	mov 0, %g2
	ba out
	nop
z1:	mov 1, %g2
out:	ta 0
`)
	in := run(t, x, 1e5)
	if got := in.Reg(sparc.G2); got != 1 {
		t.Errorf("andcc Z flag path: g2 = %d", got)
	}
}

func TestInterpFPConversions(t *testing.T) {
	x := buildExe(t, `
	sethi %hi(0x40000000), %o0
	ld [%o0], %f0          ! int 42 as raw bits
	fitod %f0, %f2         ! 42.0 (double)
	fdtoi %f2, %f4         ! back to 42
	st %f4, [%o0 + 8]
	fitos %f0, %f6         ! 42.0f
	fstoi %f6, %f8
	st %f8, [%o0 + 12]
	ta 0
`)
	x.Data = []byte{0, 0, 0, 42, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	in := run(t, x, 1e5)
	if got := in.Mem().Read32(0x40000008); got != 42 {
		t.Errorf("fitod/fdtoi round trip = %d", got)
	}
	if got := in.Mem().Read32(0x4000000c); got != 42 {
		t.Errorf("fitos/fstoi round trip = %d", got)
	}
}

func TestInterpFNegAbsSqrt(t *testing.T) {
	x := buildExe(t, `
	sethi %hi(0x40000000), %o0
	ldd [%o0], %f0        ! 9.0
	fsqrtd %f0, %f2       ! 3.0
	std %f2, [%o0 + 8]
	ld [%o0 + 16], %f4    ! 2.0f
	fnegs %f4, %f5
	fabss %f5, %f6
	st %f5, [%o0 + 20]
	st %f6, [%o0 + 24]
	ta 0
`)
	x.Data = make([]byte, 32)
	bits := float64bits(9.0)
	for i := 0; i < 8; i++ {
		x.Data[i] = byte(bits >> (56 - 8*i))
	}
	f32 := float32bits(2.0)
	for i := 0; i < 4; i++ {
		x.Data[16+i] = byte(f32 >> (24 - 8*i))
	}
	in := run(t, x, 1e5)
	hi := uint64(in.Mem().Read32(0x40000008))
	lo := uint64(in.Mem().Read32(0x4000000c))
	if got := float64frombits(hi<<32 | lo); got != 3.0 {
		t.Errorf("fsqrtd(9) = %v", got)
	}
	if got := in.Mem().Read32(0x40000014); got != float32bits(-2.0) {
		t.Errorf("fnegs = %#x", got)
	}
	if got := in.Mem().Read32(0x40000018); got != float32bits(2.0) {
		t.Errorf("fabss = %#x", got)
	}
}

func TestInterpFBranchFamily(t *testing.T) {
	// fcmpd sets fcc; each branch picks the right arm.
	cases := []struct {
		br   string
		a, b float64
		want uint32
	}{
		{"fbe", 1.5, 1.5, 1},
		{"fbne", 1.0, 2.0, 1},
		{"fbl", 1.0, 2.0, 1},
		{"fbg", 3.0, 2.0, 1},
		{"fble", 2.0, 2.0, 1},
		{"fbge", 2.0, 2.0, 1},
		{"fbl", 3.0, 2.0, 0},
		{"fbg", 1.0, 2.0, 0},
	}
	for _, c := range cases {
		x := buildExe(t, `
	sethi %hi(0x40000000), %o0
	ldd [%o0], %f0
	ldd [%o0 + 8], %f2
	fcmpd %f0, %f2
	nop
	`+c.br+` yes
	nop
	mov 0, %g1
	ba out
	nop
yes:	mov 1, %g1
out:	ta 0
`)
		x.Data = make([]byte, 16)
		putF64 := func(off int, v float64) {
			bits := float64bits(v)
			for i := 0; i < 8; i++ {
				x.Data[off+i] = byte(bits >> (56 - 8*i))
			}
		}
		putF64(0, c.a)
		putF64(8, c.b)
		in := run(t, x, 1e5)
		if got := in.Reg(sparc.G1); got != c.want {
			t.Errorf("%s with (%v,%v): g1 = %d, want %d", c.br, c.a, c.b, got, c.want)
		}
	}
}

func TestInterpSignedMulDiv(t *testing.T) {
	x := buildExe(t, `
	mov 0, %g1
	sub %g1, 7, %g1        ! -7
	mov 6, %g2
	smul %g1, %g2, %g3     ! -42
	wr %g0, %g0, %y
	mov 0, %g4
	sub %g4, 42, %g4       ! -42
	rd %y, %o4             ! y is 0 here
	sra %g4, 31, %g5       ! sign extension for dividend high
	wr %g5, %g0, %y
	mov 7, %o3
	sdiv %g4, %o3, %o5     ! -6
	ta 0
`)
	in := run(t, x, 1e5)
	if got := int32(in.Reg(sparc.G3)); got != -42 {
		t.Errorf("smul = %d", got)
	}
	if got := int32(in.Reg(sparc.O5)); got != -6 {
		t.Errorf("sdiv = %d", got)
	}
	if got := in.Reg(sparc.O4); got != 0 {
		t.Errorf("rd %%y = %d", got)
	}
}
