package sim

import (
	"sync"

	"eel/internal/exe"
	"eel/internal/obs"
	"eel/internal/spawn"
)

// pagePool recycles zeroed 4 KiB pages between Memory instances, so a
// harness running many measured simulations stops allocating (and
// garbage-collecting) its working set anew for every run. Pages are
// zeroed on put, preserving Memory's zero-fill semantics.
type pagePool struct {
	pool sync.Pool
}

func (pp *pagePool) get() *[pageSize]byte {
	if v := pp.pool.Get(); v != nil {
		return v.(*[pageSize]byte)
	}
	return new([pageSize]byte)
}

func (pp *pagePool) put(p *[pageSize]byte) {
	*p = [pageSize]byte{}
	pp.pool.Put(p)
}

// Measurer runs measured simulations for one (model, timing-config) pair
// while recycling the expensive state between runs: the hardware issue
// engine's ring and register tables, the instruction-cache arrays, the
// static-instruction memo storage and the interpreter's memory pages.
// The benchmark harness runs three to four measured passes per table row;
// without recycling each pass rebuilds all of that from scratch.
//
// A Measurer is safe for concurrent use: concurrent runs draw from
// sync.Pools and never share live state. Recycled state is reset exactly
// to its freshly-constructed form, so results are byte-identical to
// RunMeasured's.
type Measurer struct {
	model   *spawn.Model
	cfg     TimingConfig
	timings sync.Pool // *Timing
	pages   pagePool

	// Obs, when non-nil, receives per-run simulator telemetry: run,
	// instruction and cycle totals plus a phase span per measured run.
	// Set it before the first Run; recording is a handful of atomic
	// adds per simulation (runs are seconds of simulated work, so the
	// cost disappears), and a nil registry records nothing.
	Obs *obs.Registry
}

// NewMeasurer returns a Measurer for a machine model and timing config.
func NewMeasurer(model *spawn.Model, cfg TimingConfig) *Measurer {
	return &Measurer{model: model, cfg: cfg}
}

// Run is RunMeasured with recycled state. The returned interpreter and
// timing observer stay valid until passed to Release.
func (m *Measurer) Run(x *exe.Exe, maxSteps uint64) (*Interp, *Timing, Result, error) {
	in, err := newInterp(x, newMemoryWith(&m.pages))
	if err != nil {
		return nil, nil, Result{}, err
	}
	var tm *Timing
	if v := m.timings.Get(); v != nil {
		tm = v.(*Timing)
		tm.ResetFor(x.TextBase, len(x.Text))
	} else {
		tm = NewProgramTiming(m.model, m.cfg, x.TextBase, len(x.Text))
	}
	span := m.Obs.StartSpan("sim.run")
	res, err := in.Run(maxSteps, tm.Observe)
	span.End()
	if err != nil {
		m.Obs.Counter("sim.runs_failed").Inc()
		m.Release(in, tm)
		return nil, nil, res, err
	}
	if m.Obs != nil {
		m.Obs.Counter("sim.runs_total").Inc()
		m.Obs.Counter("sim.instructions_total").Add(int64(res.Steps))
		m.Obs.Counter("sim.cycles_total").Add(tm.Cycles())
		m.Obs.Histogram("sim.run_cycles", obs.ExpBuckets(1<<10, 24)).Observe(tm.Cycles())
	}
	return in, tm, res, nil
}

// Release returns a run's reusable state to the pools. Either argument
// may be nil (e.g. keep the interpreter to read profiling counters while
// recycling the timing state). Released values must not be used again.
func (m *Measurer) Release(in *Interp, tm *Timing) {
	if in != nil {
		in.mem.release()
	}
	if tm != nil {
		m.timings.Put(tm)
	}
}
