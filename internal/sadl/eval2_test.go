package sadl

import (
	"strings"
	"testing"
)

// Additional evaluator coverage: lambda semantics, command validation and
// vector machinery beyond the Figure 2 path.

func TestCurriedLambdaApplication(t *testing.T) {
	ev := mustEval(t, `
register untyped{32} R[32]
val mk is (\a.\b. add32 a b)
sem x is (D 1, s1:=R[rs1], s2:=R[rs2], R[rd]:=mk s1 s2, D 1)
`)
	rec, err := ev.Timing("x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Reads) != 2 || len(rec.Writes) != 1 {
		t.Errorf("reads/writes = %d/%d", len(rec.Reads), len(rec.Writes))
	}
	if rec.Writes[0].Avail != 2 {
		t.Errorf("avail = %d, want 2 (compute at cycle 1)", rec.Writes[0].Avail)
	}
}

func TestCallByNameSideEffectsAtUseSite(t *testing.T) {
	// A val passed through a lambda must fire its resource event at the
	// point of use inside the body, not at binding time.
	ev := mustEval(t, `
unit ALU 1
register untyped{32} R[32]
val grab is (AR ALU, R[rs1])
val use is (\v. D 2, x:=v, D 1)
sem late is (use grab)
`)
	rec, err := ev.Timing("late", nil)
	if err != nil {
		t.Fatal(err)
	}
	// grab is forced after D 2, so the acquisition lands in cycle 2.
	if !hasEvent(rec.Acquire[2], "ALU", 1) {
		t.Errorf("ALU acquired at %v, want cycle 2", rec.Acquire)
	}
	if rec.Reads[0].Cycle != 2 {
		t.Errorf("read at %d, want 2", rec.Reads[0].Cycle)
	}
}

func TestARDelayValidation(t *testing.T) {
	ev := mustEval(t, "unit A 1\nsem x is (AR A 1 0, D 1)")
	if _, err := ev.Timing("x", nil); err == nil {
		t.Error("AR with zero delay accepted")
	}
}

func TestReleaseMoreThanExists(t *testing.T) {
	ev := mustEval(t, "unit A 1\nsem x is (A A, D 1, R A 2)")
	if _, err := ev.Timing("x", nil); err == nil {
		t.Error("releasing more copies than exist accepted")
	}
}

func TestVectorValElementsIndependent(t *testing.T) {
	// Each name bound by a vector val gets its own applied expression.
	ev := mustEval(t, `
unit FAST 1, SLOW 1
val [ quick slow ] is (\u. D 1) @ [ 1 2 ]
register untyped{32} R[32]
sem a is (quick, D 1)
sem b is (slow, D 1)
`)
	ra, err := ev.Timing("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ev.Timing("b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles {
		t.Errorf("identical bodies should time identically: %d vs %d", ra.Cycles, rb.Cycles)
	}
}

func TestSemVectorDistinctLatencies(t *testing.T) {
	ev := mustEval(t, `
unit U 1
register untyped{32} F[32]
sem [ short long ] is (\lat. A U, D lat, x:=fadd F[rs1] F[rs2], D 1, R U, F[rd]:=x, D 1) @ [ 2 9 ]
`)
	s, err := ev.Timing("short", nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ev.Timing("long", nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Cycles-s.Cycles != 7 {
		t.Errorf("latency difference = %d, want 7", l.Cycles-s.Cycles)
	}
	if s.Key() == l.Key() {
		t.Error("distinct latencies share a timing key")
	}
}

func TestMarkersAccumulate(t *testing.T) {
	ev := mustEval(t, "sem x is (isLoad, isStore, D 1)")
	rec, err := ev.Timing("x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasMarker("isLoad") || !rec.HasMarker("isStore") {
		t.Errorf("markers = %v", rec.Markers)
	}
	if rec.HasMarker("isShift") {
		t.Error("phantom marker")
	}
}

func TestParseErrorsMentionLine(t *testing.T) {
	_, err := Parse("unit A 1\nunit B\n")
	if err == nil || !strings.Contains(err.Error(), "line ") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestConditionNestedInAlias(t *testing.T) {
	// Conditionals work inside alias bodies, selected per variant.
	ev := mustEval(t, `
unit P 2
register untyped{32} R[32]
alias signed{32} Rp[i] is (AR P, R[i])
val pick is iflag=1 ? #simm13 : Rp[rs2]
sem x is (D 1, v:=pick, R[rd]:=v, D 1)
`)
	reg, err := ev.Timing("x", map[string]int{"iflag": 0})
	if err != nil {
		t.Fatal(err)
	}
	if !hasEvent(reg.Acquire[1], "P", 1) {
		t.Errorf("port not acquired for register variant: %v", reg.Acquire)
	}
	imm, err := ev.Timing("x", map[string]int{"iflag": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(imm.Acquire[1]) != 0 {
		t.Errorf("immediate variant acquired ports: %v", imm.Acquire)
	}
}

func TestUnbalancedSequencesInBranches(t *testing.T) {
	// A conditional that acquires in one arm only is unbalanced for that
	// variant and must be caught.
	ev := mustEval(t, `
unit U 1
sem x is (iflag=1 ? (A U, D 1) : D 1, D 1)
`)
	if _, err := ev.Timing("x", map[string]int{"iflag": 1}); err == nil {
		t.Error("unbalanced arm accepted")
	}
	if _, err := ev.Timing("x", map[string]int{"iflag": 0}); err != nil {
		t.Errorf("balanced arm rejected: %v", err)
	}
}
