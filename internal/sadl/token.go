// Package sadl implements the Spawn Architecture Description Language from
// "Instruction Scheduling and Executable Editing" (Schnarr & Larus,
// MICRO-29 1996), section 3.
//
// A SADL description declares microarchitectural resources ("unit"),
// architectural register files ("register"), register-port aliases
// ("alias"), reusable semantic macros ("val"), and per-instruction semantic
// expressions ("sem"). Semantic expressions interleave dataflow (lambda
// application, assignment, conditional on encoding fields) with the four
// pipeline-timing commands:
//
//	A  <unit> [<num>]          acquire copies of a unit (stall if busy)
//	R  <unit> [<num>]          release copies of a unit
//	AR <unit> [<num> [<delay>]] acquire now, auto-release after delay cycles
//	D  [<delay>]               advance the pipeline
//
// Evaluating an instruction's expression yields a Record: the per-cycle
// acquire/release events, the cycle each register field is read, and the
// cycle each written value becomes available to later instructions — the
// exact information the paper's pipeline_stalls function consumes.
package sadl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF  tokKind = iota
	tokName         // identifiers and operator-symbol names (+, -, <<, ...)
	tokNumber
	tokField  // #name (instruction encoding field)
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokLBrace // {
	tokRBrace // }
	tokComma
	tokLambda // \
	tokDot    // .
	tokAssign // :=
	tokEq     // =
	tokQuest  // ?
	tokColon  // :
	tokAt     // @
	tokUnit   // () — the unit value
)

type token struct {
	kind tokKind
	text string
	num  int
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	case tokField:
		return "#" + t.text
	case tokUnit:
		return "()"
	}
	if t.text != "" {
		return t.text
	}
	return fmt.Sprintf("token(%d)", t.kind)
}

// operator-symbol characters that may form names.
const opChars = "+-&|^<>*/~%"

// lex tokenizes a SADL source string. // comments run to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	emit := func(k tokKind, text string, num int) {
		toks = append(toks, token{kind: k, text: text, num: num, line: line})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(':
			if i+1 < n && src[i+1] == ')' {
				emit(tokUnit, "()", 0)
				i += 2
			} else {
				emit(tokLParen, "(", 0)
				i++
			}
		case c == ')':
			emit(tokRParen, ")", 0)
			i++
		case c == '[':
			emit(tokLBrack, "[", 0)
			i++
		case c == ']':
			emit(tokRBrack, "]", 0)
			i++
		case c == '{':
			emit(tokLBrace, "{", 0)
			i++
		case c == '}':
			emit(tokRBrace, "}", 0)
			i++
		case c == ',':
			emit(tokComma, ",", 0)
			i++
		case c == '\\':
			emit(tokLambda, "\\", 0)
			i++
		case c == '.':
			emit(tokDot, ".", 0)
			i++
		case c == ':':
			if i+1 < n && src[i+1] == '=' {
				emit(tokAssign, ":=", 0)
				i += 2
			} else {
				emit(tokColon, ":", 0)
				i++
			}
		case c == '=':
			emit(tokEq, "=", 0)
			i++
		case c == '?':
			emit(tokQuest, "?", 0)
			i++
		case c == '@':
			emit(tokAt, "@", 0)
			i++
		case c == '#':
			j := i + 1
			for j < n && isIdentChar(rune(src[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sadl: line %d: '#' must be followed by a field name", line)
			}
			emit(tokField, src[i+1:j], 0)
			i = j
		case c >= '0' && c <= '9':
			j := i
			v := 0
			for j < n && src[j] >= '0' && src[j] <= '9' {
				v = v*10 + int(src[j]-'0')
				j++
			}
			emit(tokNumber, src[i:j], v)
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentChar(rune(src[j])) {
				j++
			}
			emit(tokName, src[i:j], 0)
			i = j
		case strings.IndexByte(opChars, c) >= 0:
			j := i
			for j < n && strings.IndexByte(opChars, src[j]) >= 0 {
				// Don't swallow a comment start.
				if src[j] == '/' && j+1 < n && src[j+1] == '/' {
					break
				}
				j++
			}
			// An operator name may end in letters to distinguish variants
			// (e.g. >>u for logical vs >>s for arithmetic shift).
			for j < n && (unicode.IsLetter(rune(src[j])) || src[j] == '_') {
				j++
			}
			emit(tokName, src[i:j], 0)
			i = j
		default:
			return nil, fmt.Errorf("sadl: line %d: unexpected character %q", line, c)
		}
	}
	emit(tokEOF, "", 0)
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
