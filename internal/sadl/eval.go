package sadl

import (
	"fmt"
	"sort"
	"strings"
)

// Record is the timing information Spawn extracts from one instruction
// variant's semantic expression: exactly the data the paper's
// pipeline_stalls function consumes (Appendix A).
//
// Cycle numbers are relative to the instruction's issue. A write's Avail
// cycle is the first cycle in which a subsequent instruction can read the
// value (the paper's convention: a value computed in cycle c becomes
// available in cycle c+1, modeling forwarding).
type Record struct {
	Cycles    int                 // total pipeline occupancy in cycles
	Acquire   map[int][]UnitEvent // unit acquisitions per cycle
	Release   map[int][]UnitEvent // unit releases per cycle
	Reads     []RegRead
	Writes    []RegWrite
	MemReads  []int // cycles of memory reads
	MemWrites []int // cycles of memory writes
	Markers   []string
}

// UnitEvent is an acquisition or release of Num copies of a unit.
type UnitEvent struct {
	Unit string
	Num  int
}

// RegRead records that the register named by an encoding field (or a fixed
// index when Field is empty) of file File is read in cycle Cycle.
type RegRead struct {
	File  string
	Field string
	Index int
	Cycle int
}

// RegWrite records that the register named by an encoding field (or fixed
// index) of file File receives a value that becomes available in cycle
// Avail.
type RegWrite struct {
	File  string
	Field string
	Index int
	Avail int
}

// Key returns a canonical string identifying the timing pattern; Spawn
// groups instructions with equal keys ("instructions with identical timing
// and resource allocation patterns are grouped together").
func (r *Record) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "c%d;", r.Cycles)
	cycles := make([]int, 0, len(r.Acquire)+len(r.Release))
	seen := map[int]bool{}
	for c := range r.Acquire {
		if !seen[c] {
			cycles = append(cycles, c)
			seen[c] = true
		}
	}
	for c := range r.Release {
		if !seen[c] {
			cycles = append(cycles, c)
			seen[c] = true
		}
	}
	sort.Ints(cycles)
	for _, c := range cycles {
		fmt.Fprintf(&b, "@%d", c)
		for _, e := range r.Acquire[c] {
			fmt.Fprintf(&b, "+%s*%d", e.Unit, e.Num)
		}
		for _, e := range r.Release[c] {
			fmt.Fprintf(&b, "-%s*%d", e.Unit, e.Num)
		}
	}
	b.WriteByte(';')
	for _, rd := range r.Reads {
		fmt.Fprintf(&b, "r%s.%s.%d@%d", rd.File, rd.Field, rd.Index, rd.Cycle)
	}
	for _, wr := range r.Writes {
		fmt.Fprintf(&b, "w%s.%s.%d@%d", wr.File, wr.Field, wr.Index, wr.Avail)
	}
	for _, c := range r.MemReads {
		fmt.Fprintf(&b, "mr@%d", c)
	}
	for _, c := range r.MemWrites {
		fmt.Fprintf(&b, "mw@%d", c)
	}
	b.WriteByte(';')
	for _, m := range r.Markers {
		b.WriteString(m)
		b.WriteByte(',')
	}
	return b.String()
}

// HasMarker reports whether the semantic expression evaluated the named
// marker (e.g. "isShift").
func (r *Record) HasMarker(name string) bool {
	for _, m := range r.Markers {
		if m == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Values

type value interface{}

type (
	vUnit struct{}
	vNum  int
	// vThunk is an unevaluated expression closed over an environment.
	// Lambda arguments and val macros are thunks (call-by-name), so
	// timing side effects fire at the use site, as the paper's macro
	// ("val declarations act like macros") semantics require.
	vThunk struct {
		expr Expr
		env  *env
	}
	vClosure struct {
		param string
		body  Expr
		env   *env
	}
	vVector []value
	// vOperand is a data value; definedAt is the cycle its computation
	// finishes (-1 for immediates, always available).
	vOperand struct{ definedAt int }
	// vRegFile references a declared register file.
	vRegFile struct{ decl RegisterDecl }
	// vAlias references a declared alias accessor.
	vAlias struct{ decl AliasDecl }
	// vFieldName is a register-designating encoding field (rs1, rs2, rd).
	vFieldName string
	// vMarker is a declared classification marker (isShift, ...).
	vMarker string
	// vBuiltin is a (possibly partially applied) semantic operator.
	vBuiltin struct {
		name  string
		arity int
		args  []value
	}
)

// builtinOps lists the semantic operators descriptions may use, with their
// arity. They model computation only; the result's definedAt is the cycle
// in which the fully applied operator is evaluated.
var builtinOps = map[string]int{
	"add32": 2, "sub32": 2, "and32": 2, "andn32": 2, "or32": 2, "orn32": 2,
	"xor32": 2, "xnor32": 2, "sll32": 2, "srl32": 2, "sra32": 2,
	"mul32": 2, "div32": 2, "addcc32": 2, "subcc32": 2,
	"hi22": 1, "neg32": 1, "not32": 1,
	"fadd": 2, "fsub": 2, "fmul": 2, "fdiv": 2, "fcmp": 2,
	"fsqrt": 1, "fmov": 1, "fneg": 1, "fabs": 1, "cvt": 1,
	"pcrel": 1, "ident": 1,
}

// markers that may be referenced without declaration; they classify
// instructions for schedulers with grouping rules.
var builtinMarkers = map[string]bool{
	"isShift": true, "isLoad": true, "isStore": true, "isBranch": true,
	"isCall": true, "isMulDiv": true, "isFPDiv": true, "isCTI": true,
}

// register-designating fields.
var regFields = map[string]bool{"rs1": true, "rs2": true, "rd": true}

// immediate fields usable as #field data references.
var immFields = map[string]bool{
	"simm13": true, "imm22": true, "disp22": true, "disp30": true,
	"sw_trap": true, "shcnt": true,
}

// ---------------------------------------------------------------------------
// Environment

type env struct {
	parent *env
	vars   map[string]value
}

func newEnv(parent *env) *env {
	return &env{parent: parent, vars: make(map[string]value)}
}

func (e *env) lookup(name string) (value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) define(name string, v value) { e.vars[name] = v }

// ---------------------------------------------------------------------------
// Evaluator

// Evaluator analyzes a parsed SADL file: it validates declarations, builds
// the global environment, and evaluates instruction semantics into timing
// Records.
type Evaluator struct {
	file    *File
	global  *env
	units   map[string]int // unit name -> copies
	sems    map[string]Expr
	semList []string
}

// NewEvaluator validates the file and prepares it for timing queries.
func NewEvaluator(f *File) (*Evaluator, error) {
	ev := &Evaluator{
		file:   f,
		global: newEnv(nil),
		units:  make(map[string]int),
		sems:   make(map[string]Expr),
	}
	for _, u := range f.Units {
		if _, dup := ev.units[u.Name]; dup {
			return nil, fmt.Errorf("sadl: line %d: unit %q redeclared", u.Line, u.Name)
		}
		if u.Count <= 0 {
			return nil, fmt.Errorf("sadl: line %d: unit %q needs a positive count", u.Line, u.Name)
		}
		ev.units[u.Name] = u.Count
	}
	for _, r := range f.Registers {
		if _, dup := ev.global.lookup(r.Name); dup {
			return nil, fmt.Errorf("sadl: line %d: %q redeclared", r.Line, r.Name)
		}
		ev.global.define(r.Name, vRegFile{decl: r})
	}
	for _, a := range f.Aliases {
		if _, dup := ev.global.lookup(a.Name); dup {
			return nil, fmt.Errorf("sadl: line %d: %q redeclared", a.Line, a.Name)
		}
		ev.global.define(a.Name, vAlias{decl: a})
	}
	for _, v := range f.Vals {
		if err := ev.defineNames(v.Names, v.Body, v.Line, ev.global); err != nil {
			return nil, err
		}
	}
	for _, s := range f.Sems {
		exprs, err := splitVector(s.Names, s.Body, s.Line)
		if err != nil {
			return nil, err
		}
		for i, name := range s.Names {
			if _, dup := ev.sems[name]; dup {
				return nil, fmt.Errorf("sadl: line %d: sem %q redeclared", s.Line, name)
			}
			ev.sems[name] = exprs[i]
			ev.semList = append(ev.semList, name)
		}
	}
	return ev, nil
}

// defineNames binds a val declaration's names. A vector declaration
// "val [a b] is f @ [x y]" binds a to (f x) and b to (f y), each as an
// unevaluated thunk so side effects fire at use sites.
func (ev *Evaluator) defineNames(names []string, body Expr, line int, scope *env) error {
	exprs, err := splitVector(names, body, line)
	if err != nil {
		return err
	}
	for i, name := range names {
		if _, dup := scope.lookup(name); dup {
			return fmt.Errorf("sadl: line %d: %q redeclared", line, name)
		}
		scope.define(name, vThunk{expr: exprs[i], env: scope})
	}
	return nil
}

// splitVector maps an n-name declaration onto n expressions. For a single
// name the body is used whole. For a vector of names the body must be a
// VectorApply with matching arity; element i becomes Apply(fn, args[i]).
func splitVector(names []string, body Expr, line int) ([]Expr, error) {
	if len(names) == 1 {
		return []Expr{body}, nil
	}
	va, ok := body.(VectorApply)
	if !ok {
		return nil, fmt.Errorf("sadl: line %d: vector declaration needs 'fn @ [args]' body", line)
	}
	if len(va.Args) != len(names) {
		return nil, fmt.Errorf("sadl: line %d: %d names but %d vector arguments",
			line, len(names), len(va.Args))
	}
	exprs := make([]Expr, len(names))
	for i := range names {
		exprs[i] = Apply{Fn: va.Fn, Arg: va.Args[i], Line: va.Line}
	}
	return exprs, nil
}

// SemNames returns the declared instruction mnemonics in declaration order.
func (ev *Evaluator) SemNames() []string { return append([]string(nil), ev.semList...) }

// Units returns the declared unit multiplicities.
func (ev *Evaluator) Units() map[string]int {
	out := make(map[string]int, len(ev.units))
	for k, v := range ev.units {
		out[k] = v
	}
	return out
}

// HasSem reports whether the description declares semantics for name.
func (ev *Evaluator) HasSem(name string) bool {
	_, ok := ev.sems[name]
	return ok
}

// Timing evaluates the semantics of instruction name under concrete
// encoding fields (typically {"iflag": 0 or 1}) and returns its timing
// record.
func (ev *Evaluator) Timing(name string, fields map[string]int) (*Record, error) {
	body, ok := ev.sems[name]
	if !ok {
		return nil, fmt.Errorf("sadl: no semantics for instruction %q", name)
	}
	a := &analysis{
		ev: ev,
		rec: &Record{
			Acquire: make(map[int][]UnitEvent),
			Release: make(map[int][]UnitEvent),
		},
		fields: fields,
	}
	scope := newEnv(ev.global)
	if _, err := a.eval(body, scope); err != nil {
		return nil, fmt.Errorf("sadl: instruction %q: %w", name, err)
	}
	a.rec.Cycles = a.clock
	if last := a.lastEventCycle(); last >= a.rec.Cycles {
		a.rec.Cycles = last + 1
	}
	if err := a.checkBalance(); err != nil {
		return nil, fmt.Errorf("sadl: instruction %q: %w", name, err)
	}
	return a.rec, nil
}

// ---------------------------------------------------------------------------
// Analysis: symbolic execution of one instruction variant.

type analysis struct {
	ev     *Evaluator
	clock  int
	rec    *Record
	fields map[string]int
}

// lastEventCycle returns the last cycle with an acquire event. Releases may
// trail the instruction's completion (a port released at the start of cycle
// k was busy only through k-1), so they do not extend the cycle count.
func (a *analysis) lastEventCycle() int {
	last := -1
	for c := range a.rec.Acquire {
		if c > last {
			last = c
		}
	}
	return last
}

// checkBalance verifies every acquired unit copy is released — the error
// detection the paper attributes to Spawn's description analysis.
func (a *analysis) checkBalance() error {
	net := map[string]int{}
	for _, evs := range a.rec.Acquire {
		for _, e := range evs {
			net[e.Unit] += e.Num
		}
	}
	for _, evs := range a.rec.Release {
		for _, e := range evs {
			net[e.Unit] -= e.Num
		}
	}
	for unit, n := range net {
		if n != 0 {
			return fmt.Errorf("unit %q acquire/release unbalanced by %d copies", unit, n)
		}
	}
	return nil
}

func (a *analysis) eval(e Expr, scope *env) (value, error) {
	switch n := e.(type) {
	case Num:
		return vNum(n.Value), nil
	case UnitVal:
		return vUnit{}, nil
	case FieldRef:
		if !immFields[n.Name] {
			return nil, fmt.Errorf("line %d: unknown immediate field #%s", n.Line, n.Name)
		}
		return vOperand{definedAt: -1}, nil
	case Ident:
		return a.evalIdent(n, scope)
	case Lambda:
		return vClosure{param: n.Param, body: n.Body, env: scope}, nil
	case Seq:
		var last value = vUnit{}
		inner := newEnv(scope)
		for _, el := range n.Elems {
			v, err := a.eval(el, inner)
			if err != nil {
				return nil, err
			}
			last = v
		}
		return last, nil
	case Apply:
		fn, err := a.eval(n.Fn, scope)
		if err != nil {
			return nil, err
		}
		return a.apply(fn, vThunk{expr: n.Arg, env: scope}, n.Line)
	case VectorApply:
		fn, err := a.eval(n.Fn, scope)
		if err != nil {
			return nil, err
		}
		out := make(vVector, len(n.Args))
		for i, arg := range n.Args {
			v, err := a.apply(fn, vThunk{expr: arg, env: scope}, n.Line)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case Cond:
		t, err := a.eval(n.Test, scope)
		if err != nil {
			return nil, err
		}
		tv, err := a.force(t, n.Line)
		if err != nil {
			return nil, err
		}
		num, ok := tv.(vNum)
		if !ok {
			return nil, fmt.Errorf("line %d: condition is not a number", n.Line)
		}
		if num != 0 {
			return a.eval(n.Then, scope)
		}
		return a.eval(n.Else, scope)
	case Eq:
		av, err := a.evalNum(n.A, scope, n.Line)
		if err != nil {
			return nil, err
		}
		bv, err := a.evalNum(n.B, scope, n.Line)
		if err != nil {
			return nil, err
		}
		if av == bv {
			return vNum(1), nil
		}
		return vNum(0), nil
	case Assign:
		return a.evalAssign(n, scope)
	case Index:
		return a.evalIndex(n, scope, false, vOperand{})
	case Acquire:
		num, err := a.optNum(n.Num, scope, 1, n.Line)
		if err != nil {
			return nil, err
		}
		if err := a.addEvent(a.rec.Acquire, n.Unit, num, a.clock, n.Line); err != nil {
			return nil, err
		}
		return vUnit{}, nil
	case Release:
		num, err := a.optNum(n.Num, scope, 1, n.Line)
		if err != nil {
			return nil, err
		}
		if err := a.addEvent(a.rec.Release, n.Unit, num, a.clock, n.Line); err != nil {
			return nil, err
		}
		return vUnit{}, nil
	case AcqRel:
		num, err := a.optNum(n.Num, scope, 1, n.Line)
		if err != nil {
			return nil, err
		}
		delay, err := a.optNum(n.Delay, scope, 1, n.Line)
		if err != nil {
			return nil, err
		}
		if delay < 1 {
			return nil, fmt.Errorf("line %d: AR delay must be at least 1", n.Line)
		}
		if err := a.addEvent(a.rec.Acquire, n.Unit, num, a.clock, n.Line); err != nil {
			return nil, err
		}
		if err := a.addEvent(a.rec.Release, n.Unit, num, a.clock+delay, n.Line); err != nil {
			return nil, err
		}
		return vUnit{}, nil
	case Advance:
		delay, err := a.optNum(n.Delay, scope, 1, n.Line)
		if err != nil {
			return nil, err
		}
		if delay < 0 {
			return nil, fmt.Errorf("line %d: D delay must be non-negative", n.Line)
		}
		a.clock += delay
		return vUnit{}, nil
	case Vector:
		out := make(vVector, len(n.Elems))
		for i, el := range n.Elems {
			v, err := a.eval(el, scope)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	return nil, fmt.Errorf("sadl: cannot evaluate %T", e)
}

func (a *analysis) evalIdent(n Ident, scope *env) (value, error) {
	if v, ok := scope.lookup(n.Name); ok {
		return a.force(v, n.Line)
	}
	if regFields[n.Name] {
		return vFieldName(n.Name), nil
	}
	if f, ok := a.fields[n.Name]; ok {
		return vNum(f), nil
	}
	if arity, ok := builtinOps[n.Name]; ok {
		return vBuiltin{name: n.Name, arity: arity}, nil
	}
	if builtinMarkers[n.Name] {
		a.rec.Markers = append(a.rec.Markers, n.Name)
		return vMarker(n.Name), nil
	}
	return nil, fmt.Errorf("line %d: undefined name %q", n.Line, n.Name)
}

// force evaluates thunks to weak-head values.
func (a *analysis) force(v value, line int) (value, error) {
	for {
		t, ok := v.(vThunk)
		if !ok {
			return v, nil
		}
		fv, err := a.eval(t.expr, t.env)
		if err != nil {
			return nil, err
		}
		v = fv
	}
}

func (a *analysis) apply(fn value, arg value, line int) (value, error) {
	fnv, err := a.force(fn, line)
	if err != nil {
		return nil, err
	}
	switch f := fnv.(type) {
	case vClosure:
		inner := newEnv(f.env)
		inner.define(f.param, arg)
		return a.eval(f.body, inner)
	case vBuiltin:
		forced, err := a.force(arg, line)
		if err != nil {
			return nil, err
		}
		args := append(append([]value(nil), f.args...), forced)
		if len(args) < f.arity {
			return vBuiltin{name: f.name, arity: f.arity, args: args}, nil
		}
		// Fully applied semantic operator: the computation finishes in
		// the current cycle.
		return vOperand{definedAt: a.clock}, nil
	case vAlias:
		// Alias applied like a function (rare; normally indexed).
		return nil, fmt.Errorf("line %d: alias %q must be indexed, not applied", line, f.decl.Name)
	}
	return nil, fmt.Errorf("line %d: value %T is not applicable", line, fnv)
}

func (a *analysis) evalAssign(n Assign, scope *env) (value, error) {
	switch target := n.Target.(type) {
	case Ident:
		v, err := a.eval(n.Value, scope)
		if err != nil {
			return nil, err
		}
		fv, err := a.force(v, n.Line)
		if err != nil {
			return nil, err
		}
		scope.define(target.Name, fv)
		return fv, nil
	case Index:
		// Register write: evaluate the value first (the computation),
		// then perform the access in write mode.
		v, err := a.eval(n.Value, scope)
		if err != nil {
			return nil, err
		}
		fv, err := a.force(v, n.Line)
		if err != nil {
			return nil, err
		}
		op, ok := fv.(vOperand)
		if !ok {
			op = vOperand{definedAt: a.clock}
		}
		return a.evalIndex(target, scope, true, op)
	}
	return nil, fmt.Errorf("line %d: bad assignment target %T", n.Line, n.Target)
}

// evalIndex performs a register or memory access: base[idx]. In write mode
// the written operand's definedAt determines the recorded availability.
func (a *analysis) evalIndex(n Index, scope *env, write bool, wv vOperand) (value, error) {
	base, err := a.eval(n.Base, scope)
	if err != nil {
		return nil, err
	}
	basev, err := a.force(base, n.Line)
	if err != nil {
		return nil, err
	}
	switch b := basev.(type) {
	case vRegFile:
		return a.regAccess(b.decl.Name, b.decl.Count, n, scope, write, wv)
	case vAlias:
		// Alias access: bind the alias parameter to the index expression
		// (unevaluated) and run the alias body. The body's final value is
		// the underlying register access, which inherits the access mode.
		inner := newEnv(a.ev.global)
		inner.define(b.decl.Param, vThunk{expr: n.Idx, env: scope})
		return a.aliasBody(b.decl.Body, inner, write, wv)
	}
	return nil, fmt.Errorf("line %d: %T cannot be indexed", n.Line, basev)
}

// aliasBody evaluates an alias body. Every expression except the final
// register access evaluates normally; the final Index (or a Seq ending in
// one) performs the access in the caller's mode.
func (a *analysis) aliasBody(body Expr, scope *env, write bool, wv vOperand) (value, error) {
	switch n := body.(type) {
	case Seq:
		inner := newEnv(scope)
		for i, el := range n.Elems {
			if i == len(n.Elems)-1 {
				return a.aliasBody(el, inner, write, wv)
			}
			if _, err := a.eval(el, inner); err != nil {
				return nil, err
			}
		}
		return vUnit{}, nil
	case Index:
		return a.evalIndex(n, scope, write, wv)
	default:
		return a.eval(body, scope)
	}
}

// regAccess records the read or write of a register-file element.
func (a *analysis) regAccess(file string, count int, n Index, scope *env, write bool, wv vOperand) (value, error) {
	idx, err := a.eval(n.Idx, scope)
	if err != nil {
		return nil, err
	}
	idxv, err := a.force(idx, n.Line)
	if err != nil {
		return nil, err
	}
	// Count == 0 declares a memory-like unbounded file.
	if count == 0 {
		if write {
			a.rec.MemWrites = append(a.rec.MemWrites, a.clock)
			return wv, nil
		}
		a.rec.MemReads = append(a.rec.MemReads, a.clock)
		return vOperand{definedAt: a.clock}, nil
	}
	var field string
	var index int
	switch iv := idxv.(type) {
	case vFieldName:
		field = string(iv)
	case vNum:
		index = int(iv)
		if index < 0 || index >= count {
			return nil, fmt.Errorf("line %d: index %d out of range for %s[%d]", n.Line, index, file, count)
		}
	case vOperand:
		return nil, fmt.Errorf("line %d: register file %s indexed by a runtime value; use a memory file (count 0)", n.Line, file)
	default:
		return nil, fmt.Errorf("line %d: bad register index %T", n.Line, idxv)
	}
	if write {
		a.rec.Writes = append(a.rec.Writes, RegWrite{
			File: file, Field: field, Index: index, Avail: wv.definedAt + 1,
		})
		return wv, nil
	}
	a.rec.Reads = append(a.rec.Reads, RegRead{
		File: file, Field: field, Index: index, Cycle: a.clock,
	})
	return vOperand{definedAt: a.clock}, nil
}

func (a *analysis) addEvent(m map[int][]UnitEvent, unit string, num, cycle, line int) error {
	if _, ok := a.ev.units[unit]; !ok {
		return fmt.Errorf("line %d: undeclared unit %q", line, unit)
	}
	if num <= 0 {
		return fmt.Errorf("line %d: unit count must be positive", line)
	}
	if num > a.ev.units[unit] {
		return fmt.Errorf("line %d: acquiring %d copies of %q but only %d exist",
			line, num, unit, a.ev.units[unit])
	}
	m[cycle] = append(m[cycle], UnitEvent{Unit: unit, Num: num})
	return nil
}

func (a *analysis) evalNum(e Expr, scope *env, line int) (int, error) {
	v, err := a.eval(e, scope)
	if err != nil {
		return 0, err
	}
	fv, err := a.force(v, line)
	if err != nil {
		return 0, err
	}
	n, ok := fv.(vNum)
	if !ok {
		return 0, fmt.Errorf("line %d: expected a number, found %T", line, fv)
	}
	return int(n), nil
}

func (a *analysis) optNum(e Expr, scope *env, def, line int) (int, error) {
	if e == nil {
		return def, nil
	}
	return a.evalNum(e, scope, line)
}
