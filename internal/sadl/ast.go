package sadl

// File is a parsed SADL description.
type File struct {
	Units     []UnitDecl
	Registers []RegisterDecl
	Aliases   []AliasDecl
	Vals      []ValDecl
	Sems      []SemDecl
}

// UnitDecl declares a microarchitecture resource and its multiplicity:
// "unit ALU 1, ALUr 2".
type UnitDecl struct {
	Name  string
	Count int
	Line  int
}

// RegisterDecl declares an architectural register file:
// "register untyped{32} R[32]". A Count of 0 declares an unbounded file
// (used to model memory).
type RegisterDecl struct {
	Type  TypeSpec
	Name  string
	Count int
	Line  int
}

// AliasDecl declares a typed accessor over a register file that can attach
// resource usage: "alias signed{32} R4r[i] is AR ALUr, R[i]".
type AliasDecl struct {
	Type  TypeSpec
	Name  string
	Param string
	Body  Expr
	Line  int
}

// ValDecl binds one name (Names of length 1) or a vector of names to an
// expression: "val multi is AR Group, ()" or
// "val [ + - ] is (\op....) @ [ add32 sub32 ]". Val bodies are macros:
// they are re-evaluated at each use site.
type ValDecl struct {
	Names []string
	Body  Expr
	Line  int
}

// SemDecl binds instruction mnemonics to semantic expressions.
type SemDecl struct {
	Names []string
	Body  Expr
	Line  int
}

// TypeSpec is a register/alias element type, e.g. signed{32}.
type TypeSpec struct {
	Kind  string // "untyped", "signed", "unsigned"
	Width int
}

// Expr is a SADL expression node.
type Expr interface{ exprNode() }

// Ident references a bound name (val, alias, register file, lambda
// parameter, local := binding, builtin op, or marker).
type Ident struct {
	Name string
	Line int
}

// Num is an integer literal.
type Num struct {
	Value int
	Line  int
}

// FieldRef is an instruction-encoding field immediate: #simm13, #imm22.
type FieldRef struct {
	Name string
	Line int
}

// UnitVal is the unit value ().
type UnitVal struct{ Line int }

// Lambda is \param. body.
type Lambda struct {
	Param string
	Body  Expr
	Line  int
}

// Apply is juxtaposition application: Fn Arg.
type Apply struct {
	Fn, Arg Expr
	Line    int
}

// VectorApply is f @ [ e1 e2 ... ]: element-wise application producing a
// vector value.
type VectorApply struct {
	Fn   Expr
	Args []Expr
	Line int
}

// Vector is a bracketed vector literal of expressions.
type Vector struct {
	Elems []Expr
	Line  int
}

// Seq is comma sequencing; the value is the last element's value.
type Seq struct {
	Elems []Expr
	Line  int
}

// Assign binds a local name ("x := e") or writes a register/alias
// element ("R4w[rd] := e").
type Assign struct {
	// Target is either Ident (local binding) or Index (register write).
	Target Expr
	Value  Expr
	Line   int
}

// Index is subscripting: base[index]. Base must name a register file or
// alias; a register file indexed by a field records a register access.
type Index struct {
	Base Expr
	Idx  Expr
	Line int
}

// Cond is "cond ? then : else".
type Cond struct {
	Test, Then, Else Expr
	Line             int
}

// Eq is the comparison "a = b" (used in field tests like iflag=1).
type Eq struct {
	A, B Expr
	Line int
}

// Acquire is the A command; Release the R command; AcqRel the AR command;
// Advance the D command.
type Acquire struct {
	Unit string
	Num  Expr // nil means 1
	Line int
}

type Release struct {
	Unit string
	Num  Expr // nil means 1
	Line int
}

type AcqRel struct {
	Unit  string
	Num   Expr // nil means 1
	Delay Expr // nil means 1
	Line  int
}

type Advance struct {
	Delay Expr // nil means 1
	Line  int
}

func (Ident) exprNode()       {}
func (Num) exprNode()         {}
func (FieldRef) exprNode()    {}
func (UnitVal) exprNode()     {}
func (Lambda) exprNode()      {}
func (Apply) exprNode()       {}
func (VectorApply) exprNode() {}
func (Vector) exprNode()      {}
func (Seq) exprNode()         {}
func (Assign) exprNode()      {}
func (Index) exprNode()       {}
func (Cond) exprNode()        {}
func (Eq) exprNode()          {}
func (Acquire) exprNode()     {}
func (Release) exprNode()     {}
func (AcqRel) exprNode()      {}
func (Advance) exprNode()     {}
