package sadl

import "fmt"

// Parse parses a SADL description.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.peek().kind != tokEOF {
		if err := p.decl(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

type parser struct {
	toks []token
	pos  int
}

// keywords are reserved: they terminate expressions and cannot be used as
// names inside semantic expressions.
var keywords = map[string]bool{
	"unit": true, "register": true, "alias": true, "val": true,
	"sem": true, "is": true,
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("sadl: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errf(t, "expected %s, found %q", what, t.String())
	}
	return t, nil
}

func (p *parser) expectName(want string) error {
	t := p.next()
	if t.kind != tokName || t.text != want {
		return p.errf(t, "expected %q, found %q", want, t.String())
	}
	return nil
}

func (p *parser) decl(f *File) error {
	t := p.peek()
	if t.kind != tokName {
		return p.errf(t, "expected declaration, found %q", t.String())
	}
	switch t.text {
	case "unit":
		return p.unitDecl(f)
	case "register":
		return p.registerDecl(f)
	case "alias":
		return p.aliasDecl(f)
	case "val":
		return p.valDecl(f)
	case "sem":
		return p.semDecl(f)
	}
	return p.errf(t, "unknown declaration %q", t.text)
}

// unit NAME NUM ("," NAME NUM)*
func (p *parser) unitDecl(f *File) error {
	p.next() // unit
	for {
		name, err := p.expect(tokName, "unit name")
		if err != nil {
			return err
		}
		num, err := p.expect(tokNumber, "unit count")
		if err != nil {
			return err
		}
		f.Units = append(f.Units, UnitDecl{Name: name.text, Count: num.num, Line: name.line})
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

// register TYPE NAME "[" NUM "]"
func (p *parser) registerDecl(f *File) error {
	p.next() // register
	ts, err := p.typeSpec()
	if err != nil {
		return err
	}
	name, err := p.expect(tokName, "register file name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrack, "'['"); err != nil {
		return err
	}
	num, err := p.expect(tokNumber, "register count")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRBrack, "']'"); err != nil {
		return err
	}
	f.Registers = append(f.Registers, RegisterDecl{
		Type: ts, Name: name.text, Count: num.num, Line: name.line,
	})
	return nil
}

// alias TYPE NAME "[" PARAM "]" is EXPR
func (p *parser) aliasDecl(f *File) error {
	p.next() // alias
	ts, err := p.typeSpec()
	if err != nil {
		return err
	}
	name, err := p.expect(tokName, "alias name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrack, "'['"); err != nil {
		return err
	}
	param, err := p.expect(tokName, "alias parameter")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRBrack, "']'"); err != nil {
		return err
	}
	if err := p.expectName("is"); err != nil {
		return err
	}
	body, err := p.expr()
	if err != nil {
		return err
	}
	f.Aliases = append(f.Aliases, AliasDecl{
		Type: ts, Name: name.text, Param: param.text, Body: body, Line: name.line,
	})
	return nil
}

func (p *parser) valDecl(f *File) error {
	p.next() // val
	names, line, err := p.nameList()
	if err != nil {
		return err
	}
	if err := p.expectName("is"); err != nil {
		return err
	}
	body, err := p.expr()
	if err != nil {
		return err
	}
	f.Vals = append(f.Vals, ValDecl{Names: names, Body: body, Line: line})
	return nil
}

func (p *parser) semDecl(f *File) error {
	p.next() // sem
	names, line, err := p.nameList()
	if err != nil {
		return err
	}
	if err := p.expectName("is"); err != nil {
		return err
	}
	body, err := p.expr()
	if err != nil {
		return err
	}
	f.Sems = append(f.Sems, SemDecl{Names: names, Body: body, Line: line})
	return nil
}

// nameList parses a single name or "[" name+ "]".
func (p *parser) nameList() ([]string, int, error) {
	t := p.peek()
	if t.kind == tokName {
		p.next()
		return []string{t.text}, t.line, nil
	}
	if t.kind != tokLBrack {
		return nil, 0, p.errf(t, "expected name or '[', found %q", t.String())
	}
	p.next()
	var names []string
	for p.peek().kind == tokName {
		names = append(names, p.next().text)
	}
	if _, err := p.expect(tokRBrack, "']'"); err != nil {
		return nil, 0, err
	}
	if len(names) == 0 {
		return nil, 0, p.errf(t, "empty name vector")
	}
	return names, t.line, nil
}

// typeSpec parses "untyped{32}" etc.
func (p *parser) typeSpec() (TypeSpec, error) {
	kind, err := p.expect(tokName, "type name")
	if err != nil {
		return TypeSpec{}, err
	}
	switch kind.text {
	case "untyped", "signed", "unsigned":
	default:
		return TypeSpec{}, p.errf(kind, "unknown type %q", kind.text)
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return TypeSpec{}, err
	}
	width, err := p.expect(tokNumber, "type width")
	if err != nil {
		return TypeSpec{}, err
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return TypeSpec{}, err
	}
	return TypeSpec{Kind: kind.text, Width: width.num}, nil
}

// expr := item ("," item)*
func (p *parser) expr() (Expr, error) {
	first, err := p.item()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokComma {
		return first, nil
	}
	seq := Seq{Elems: []Expr{first}, Line: p.peek().line}
	for p.peek().kind == tokComma {
		p.next()
		e, err := p.item()
		if err != nil {
			return nil, err
		}
		seq.Elems = append(seq.Elems, e)
	}
	return seq, nil
}

// item := cond (":=" item)?   — assignment is right-associative.
func (p *parser) item() (Expr, error) {
	lhs, err := p.cond()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokAssign {
		return lhs, nil
	}
	at := p.next()
	switch lhs.(type) {
	case Ident, Index:
	default:
		return nil, p.errf(at, "assignment target must be a name or register element")
	}
	rhs, err := p.item()
	if err != nil {
		return nil, err
	}
	return Assign{Target: lhs, Value: rhs, Line: at.line}, nil
}

// cond := eq ("?" cond ":" cond)?
func (p *parser) cond() (Expr, error) {
	test, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokQuest {
		return test, nil
	}
	q := p.next()
	then, err := p.cond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon, "':'"); err != nil {
		return nil, err
	}
	els, err := p.cond()
	if err != nil {
		return nil, err
	}
	return Cond{Test: test, Then: then, Else: els, Line: q.line}, nil
}

// eq := vecapp ("=" vecapp)?
func (p *parser) eqExpr() (Expr, error) {
	a, err := p.vecApp()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEq {
		return a, nil
	}
	e := p.next()
	b, err := p.vecApp()
	if err != nil {
		return nil, err
	}
	return Eq{A: a, B: b, Line: e.line}, nil
}

// vecapp := app ("@" vector)?
func (p *parser) vecApp() (Expr, error) {
	fn, err := p.app()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokAt {
		return fn, nil
	}
	at := p.next()
	vec, err := p.vector()
	if err != nil {
		return nil, err
	}
	return VectorApply{Fn: fn, Args: vec.Elems, Line: at.line}, nil
}

// app := command | postfix postfix*
func (p *parser) app() (Expr, error) {
	if t := p.peek(); t.kind == tokName {
		switch t.text {
		case "A", "R", "AR":
			// A/R/AR are commands only when followed by a unit name;
			// this lets a register file share the name R, as the paper's
			// Figure 2 does ("R ALU" is a release, "R[i]" an access).
			if nt := p.toks[p.pos+1]; nt.kind == tokName && !keywords[nt.text] {
				return p.command()
			}
		case "D":
			// D is always the pipeline-advance command.
			return p.command()
		}
	}
	fn, err := p.postfix()
	if err != nil {
		return nil, err
	}
	for p.atomStart() {
		arg, err := p.postfix()
		if err != nil {
			return nil, err
		}
		fn = Apply{Fn: fn, Arg: arg, Line: p.peek().line}
	}
	return fn, nil
}

// atomStart reports whether the next token can begin an application
// argument. '[' is excluded: following a complete term it would be an
// index, and index postfixes are consumed by postfix itself. Declaration
// keywords terminate expressions.
func (p *parser) atomStart() bool { return p.startsArg(p.peek()) }

func (p *parser) startsArg(t token) bool {
	switch t.kind {
	case tokName:
		return !keywords[t.text]
	case tokNumber, tokField, tokLParen, tokUnit, tokLambda:
		return true
	}
	return false
}

// command parses the pipeline-timing commands A, R, AR, D.
func (p *parser) command() (Expr, error) {
	cmd := p.next()
	if cmd.text == "D" {
		var delay Expr
		switch t := p.peek(); {
		case t.kind == tokNumber:
			p.next()
			delay = Num{Value: t.num, Line: t.line}
		case t.kind == tokName && !keywords[t.text]:
			// A delay bound by an enclosing lambda, e.g. "\lat. ... D lat".
			p.next()
			delay = Ident{Name: t.text, Line: t.line}
		}
		return Advance{Delay: delay, Line: cmd.line}, nil
	}
	unit, err := p.expect(tokName, "unit name")
	if err != nil {
		return nil, err
	}
	var num, delay Expr
	if p.peek().kind == tokNumber {
		n := p.next()
		num = Num{Value: n.num, Line: n.line}
		if cmd.text == "AR" && p.peek().kind == tokNumber {
			d := p.next()
			delay = Num{Value: d.num, Line: d.line}
		}
	}
	switch cmd.text {
	case "A":
		return Acquire{Unit: unit.text, Num: num, Line: cmd.line}, nil
	case "R":
		return Release{Unit: unit.text, Num: num, Line: cmd.line}, nil
	case "AR":
		return AcqRel{Unit: unit.text, Num: num, Delay: delay, Line: cmd.line}, nil
	}
	panic("unreachable")
}

// postfix := atom ("[" expr "]")*
func (p *parser) postfix() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokLBrack {
		lb := p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		e = Index{Base: e, Idx: idx, Line: lb.line}
	}
	return e, nil
}

func (p *parser) atom() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokName:
		if keywords[t.text] {
			return nil, p.errf(t, "keyword %q cannot appear in an expression", t.text)
		}
		return Ident{Name: t.text, Line: t.line}, nil
	case tokNumber:
		return Num{Value: t.num, Line: t.line}, nil
	case tokField:
		return FieldRef{Name: t.text, Line: t.line}, nil
	case tokUnit:
		return UnitVal{Line: t.line}, nil
	case tokLParen:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLambda:
		param, err := p.expect(tokName, "lambda parameter")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Lambda{Param: param.text, Body: body, Line: t.line}, nil
	}
	return nil, p.errf(t, "unexpected %q in expression", t.String())
}

// vector parses "[" postfix* "]".
func (p *parser) vector() (Vector, error) {
	lb, err := p.expect(tokLBrack, "'['")
	if err != nil {
		return Vector{}, err
	}
	v := Vector{Line: lb.line}
	for p.peek().kind != tokRBrack && p.peek().kind != tokEOF {
		e, err := p.postfix()
		if err != nil {
			return Vector{}, err
		}
		v.Elems = append(v.Elems, e)
	}
	if _, err := p.expect(tokRBrack, "']'"); err != nil {
		return Vector{}, err
	}
	return v, nil
}
