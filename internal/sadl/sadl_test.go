package sadl

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustEval(t *testing.T, src string) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`unit ALU 1 // comment
val [ + >>u ] is (\a. a), #simm13 x:=y iflag=1 ? 2 : 3 () f @ [ g ]`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.String())
	}
	want := []string{
		"unit", "ALU", "1",
		"val", "[", "+", ">>u", "]", "is", "(", "\\", "a", ".", "a", ")",
		",", "#simm13", "x", ":=", "y", "iflag", "=", "1", "?", "2", ":", "3",
		"()", "f", "@", "[", "g", "]", "end of file",
	}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("lex = %q\nwant  %q", texts, want)
	}
	_ = kinds
}

func TestLexOperatorNames(t *testing.T) {
	toks, err := lex(`+ - & | ^ << >> <<>>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"+", "-", "&", "|", "^", "<<", ">>", "<<>>"}
	for i, w := range want {
		if toks[i].kind != tokName || toks[i].text != w {
			t.Errorf("token %d = %q, want name %q", i, toks[i].String(), w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"\"string\"", "# 1", "$x"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexCommentBeforeOperator(t *testing.T) {
	toks, err := lex("+ // trailing\n-")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "+" || toks[1].text != "-" {
		t.Errorf("comment interfered with operators: %v %v", toks[0], toks[1])
	}
}

func TestParseDeclarations(t *testing.T) {
	f := mustParse(t, `
unit Group 2
unit ALU 1, ALUr 2
register untyped{32} R[32]
register untyped{32} M[0]
alias signed{32} R4r[i] is AR ALUr, R[i]
val multi is AR Group, ()
val [ + - ] is (\op.\a.\b. A ALU, x:=op a b, D 1, R ALU, x) @ [ add32 sub32 ]
sem add is (multi, D 1, s1:=R4r[rs1], R4r[rd], D 1)
`)
	if len(f.Units) != 3 || f.Units[0].Name != "Group" || f.Units[0].Count != 2 {
		t.Errorf("units = %+v", f.Units)
	}
	if len(f.Registers) != 2 || f.Registers[1].Count != 0 {
		t.Errorf("registers = %+v", f.Registers)
	}
	if len(f.Aliases) != 1 || f.Aliases[0].Param != "i" {
		t.Errorf("aliases = %+v", f.Aliases)
	}
	if len(f.Vals) != 2 || len(f.Vals[1].Names) != 2 {
		t.Errorf("vals = %+v", f.Vals)
	}
	if len(f.Sems) != 1 {
		t.Errorf("sems = %+v", f.Sems)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate x 1",
		"unit",
		"unit ALU",
		"register foo{32} R[32]",
		"register untyped{32} R",
		"alias signed{32} A[i] R[i]", // missing is
		"val x",
		"val [ ] is 1",
		"sem add is (x :=)",
		"sem add is (1 ? 2)", // missing colon
		"val x is (\\a b)",   // missing dot
		"sem add is ((1)",    // unbalanced
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvaluatorValidation(t *testing.T) {
	bad := map[string]string{
		"dup unit":     "unit A 1, A 2\nsem x is D 1",
		"zero unit":    "unit A 0\nsem x is D 1",
		"dup register": "register untyped{32} R[32]\nregister untyped{32} R[32]\nsem x is D 1",
		"dup val":      "val v is 1\nval v is 2\nsem x is D 1",
		"dup sem":      "sem x is D 1\nsem x is D 2",
		"vector arity": "val [ a b ] is (\\x. x) @ [ 1 ]\nsem x is D 1",
		"vector novec": "val [ a b ] is 1\nsem x is D 1",
	}
	for name, src := range bad {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse error: %v", name, err)
		}
		if _, err := NewEvaluator(f); err == nil {
			t.Errorf("%s: NewEvaluator succeeded, want error", name)
		}
	}
}

func TestTimingErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared unit": "sem x is (A ALU, D 1, R ALU)",
		"unbalanced":      "unit ALU 1\nsem x is (A ALU, D 1)",
		"too many copies": "unit ALU 1\nsem x is (A ALU 2, D 1, R ALU 2)",
		"undefined name":  "sem x is (bogus_zork)",
		"bad field":       "sem x is (#zork)",
		"index range":     "register untyped{32} R[2]\nsem x is (y:=R[5], D 1)",
		"runtime index":   "register untyped{32} R[2]\nsem x is (y:=R[#simm13], D 1)",
	}
	for name, src := range cases {
		ev, err := NewEvaluator(mustParse(t, src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := ev.Timing("x", nil); err == nil {
			t.Errorf("%s: Timing succeeded, want error", name)
		}
	}
}

// TestFigure2 checks the paper's worked example end to end: from the
// hyperSPARC description, Spawn must infer that add/sub/sra "can be dual
// issued, execute in 3 cycles, read their operands in cycle 1, produce a
// value at the end of cycle 1 that subsequent instructions can use, and
// update the register file in cycle 2".
func TestFigure2(t *testing.T) {
	src, err := os.ReadFile("testdata/hypersparc_fig2.sadl")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(mustParse(t, string(src)))
	if err != nil {
		t.Fatal(err)
	}
	names := ev.SemNames()
	if !reflect.DeepEqual(names, []string{"add", "sub", "sra"}) {
		t.Fatalf("SemNames = %v", names)
	}

	for _, name := range names {
		for _, iflag := range []int{0, 1} {
			rec, err := ev.Timing(name, map[string]int{"iflag": iflag})
			if err != nil {
				t.Fatalf("%s iflag=%d: %v", name, iflag, err)
			}
			// Executes in 3 cycles.
			if rec.Cycles != 3 {
				t.Errorf("%s iflag=%d: Cycles = %d, want 3", name, iflag, rec.Cycles)
			}
			// Dual-issuable: acquires 1 of the 2 Group slots in cycle 0.
			if !hasEvent(rec.Acquire[0], "Group", 1) {
				t.Errorf("%s: no Group acquisition in cycle 0: %+v", name, rec.Acquire[0])
			}
			if !hasEvent(rec.Release[1], "Group", 1) {
				t.Errorf("%s: Group not released in cycle 1: %+v", name, rec.Release[1])
			}
			// Reads operands in cycle 1.
			wantReads := 1
			if iflag == 0 {
				wantReads = 2
			}
			if len(rec.Reads) != wantReads {
				t.Errorf("%s iflag=%d: %d reads, want %d: %+v",
					name, iflag, len(rec.Reads), wantReads, rec.Reads)
			}
			for _, rd := range rec.Reads {
				if rd.Cycle != 1 {
					t.Errorf("%s: read of %s in cycle %d, want 1", name, rd.Field, rd.Cycle)
				}
			}
			// Produces the value at end of cycle 1 => available in cycle 2.
			if len(rec.Writes) != 1 || rec.Writes[0].Field != "rd" || rec.Writes[0].Avail != 2 {
				t.Errorf("%s: writes = %+v, want rd available in cycle 2", name, rec.Writes)
			}
			// Occupies the ALU in cycle 1 only.
			if !hasEvent(rec.Acquire[1], "ALU", 1) || !hasEvent(rec.Release[2], "ALU", 1) {
				t.Errorf("%s: ALU not held exactly in cycle 1 (acq %+v, rel %+v)",
					name, rec.Acquire[1], rec.Release[2])
			}
		}
	}

	// sra is a shift; add is not.
	sra, err := ev.Timing("sra", map[string]int{"iflag": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sra.HasMarker("isShift") {
		t.Error("sra should carry the isShift marker")
	}
	add, err := ev.Timing("add", map[string]int{"iflag": 1})
	if err != nil {
		t.Fatal(err)
	}
	if add.HasMarker("isShift") {
		t.Error("add should not carry the isShift marker")
	}

	// The immediate variant reads one fewer port but has the same shape
	// otherwise, so the two variants form different groups.
	add0, _ := ev.Timing("add", map[string]int{"iflag": 0})
	if add.Key() == add0.Key() {
		t.Error("imm and reg variants should have different timing keys")
	}
	// add and sub share a group.
	sub0, _ := ev.Timing("sub", map[string]int{"iflag": 0})
	if add0.Key() != sub0.Key() {
		t.Errorf("add and sub should share a timing group:\n%s\n%s", add0.Key(), sub0.Key())
	}
}

func hasEvent(evs []UnitEvent, unit string, num int) bool {
	for _, e := range evs {
		if e.Unit == unit && e.Num == num {
			return true
		}
	}
	return false
}

func TestSingleIssueVal(t *testing.T) {
	ev := mustEval(t, `
unit Group 2
val single is AR Group 2, ()
sem blk is (single, D 1)
`)
	rec, err := ev.Timing("blk", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasEvent(rec.Acquire[0], "Group", 2) {
		t.Errorf("single should acquire both Group slots: %+v", rec.Acquire[0])
	}
}

func TestMemoryFile(t *testing.T) {
	ev := mustEval(t, `
unit LSU 1
register untyped{32} R[32]
register untyped{32} M[0]
val addr is add32 R[rs1] #simm13
sem ld is (A LSU, a:=addr, D 1, x:=M[a], R LSU, R[rd]:=x, D 1)
sem st is (A LSU, a:=addr, D 1, M[a]:=R[rd], D 1, R LSU)
`)
	ld, err := ev.Timing("ld", map[string]int{"iflag": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ld.MemReads) != 1 || ld.MemReads[0] != 1 {
		t.Errorf("ld MemReads = %v, want [1]", ld.MemReads)
	}
	// Data read from memory in cycle 1 => available to consumers in cycle 2.
	if len(ld.Writes) != 1 || ld.Writes[0].Avail != 2 {
		t.Errorf("ld Writes = %+v, want rd available at 2", ld.Writes)
	}
	st, err := ev.Timing("st", map[string]int{"iflag": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.MemWrites) != 1 || st.MemWrites[0] != 1 {
		t.Errorf("st MemWrites = %v, want [1]", st.MemWrites)
	}
	if len(st.Writes) != 0 {
		t.Errorf("st should not write registers: %+v", st.Writes)
	}
	// st reads rd (the stored value) and rs1 (address).
	if len(st.Reads) != 2 {
		t.Errorf("st Reads = %+v", st.Reads)
	}
}

func TestSethiAvailability(t *testing.T) {
	// sethi computes in cycle 0; its value is available in cycle 1, so an
	// instruction issued in the same cycle (reading operands in its cycle
	// 1) does not stall — the paper's sethi note.
	ev := mustEval(t, `
unit Group 2
register untyped{32} R[32]
sem sethi is (AR Group, x:=hi22 #imm22, R[rd]:=x, D 1)
`)
	rec, err := ev.Timing("sethi", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Writes) != 1 || rec.Writes[0].Avail != 1 {
		t.Errorf("sethi writes = %+v, want avail 1", rec.Writes)
	}
	if rec.Cycles != 1 {
		t.Errorf("sethi cycles = %d, want 1", rec.Cycles)
	}
}

func TestFixedIndexRegisterAccess(t *testing.T) {
	// Condition-code files are accessed at fixed indices.
	ev := mustEval(t, `
register untyped{4} CC[2]
register untyped{32} R[32]
sem cmp is (D 1, s1:=R[rs1], x:=subcc32 s1 s1, CC[0]:=x, D 1)
sem br is (D 1, c:=CC[0], D 1)
`)
	cmp, err := ev.Timing("cmp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Writes) != 1 || cmp.Writes[0].File != "CC" || cmp.Writes[0].Index != 0 || cmp.Writes[0].Avail != 2 {
		t.Errorf("cmp writes = %+v", cmp.Writes)
	}
	br, err := ev.Timing("br", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Reads) != 1 || br.Reads[0].File != "CC" || br.Reads[0].Cycle != 1 {
		t.Errorf("br reads = %+v", br.Reads)
	}
}

func TestLongLatencyUnit(t *testing.T) {
	// An fdiv-style description: the divider is busy for 12 cycles and the
	// result computed in cycle 12 is available in cycle 13.
	ev := mustEval(t, `
unit FDIV 1
register untyped{32} F[32]
sem fdivd is (A FDIV, D 12, a:=F[rs1], x:=fdiv a a, R FDIV, F[rd]:=x, D 1)
`)
	rec, err := ev.Timing("fdivd", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 13 {
		t.Errorf("Cycles = %d, want 13", rec.Cycles)
	}
	if rec.Writes[0].Avail != 13 {
		t.Errorf("write avail = %d, want 13", rec.Writes[0].Avail)
	}
	if !hasEvent(rec.Acquire[0], "FDIV", 1) || !hasEvent(rec.Release[12], "FDIV", 1) {
		t.Error("FDIV occupancy wrong")
	}
}

func TestRecordKeyStability(t *testing.T) {
	ev := mustEval(t, `
unit ALU 1
register untyped{32} R[32]
sem a is (A ALU, D 1, x:=R[rs1], R ALU, R[rd]:=x, D 1)
sem b is (A ALU, D 1, x:=R[rs1], R ALU, R[rd]:=x, D 1)
sem c is (A ALU, D 2, x:=R[rs1], R ALU, R[rd]:=x, D 1)
`)
	ra, _ := ev.Timing("a", nil)
	rb, _ := ev.Timing("b", nil)
	rc, _ := ev.Timing("c", nil)
	if ra.Key() != rb.Key() {
		t.Error("identical semantics should share a key")
	}
	if ra.Key() == rc.Key() {
		t.Error("different timings should have different keys")
	}
}

func TestHasSemAndUnits(t *testing.T) {
	ev := mustEval(t, "unit A 3\nsem x is D 1")
	if !ev.HasSem("x") || ev.HasSem("y") {
		t.Error("HasSem wrong")
	}
	if u := ev.Units(); u["A"] != 3 {
		t.Errorf("Units = %v", u)
	}
}

func TestValMacroReevaluation(t *testing.T) {
	// A val used twice must contribute its events twice (macro semantics).
	ev := mustEval(t, `
unit ALU 2
val grab is AR ALU, ()
sem x is (grab, grab, D 1)
`)
	rec, err := ev.Timing("x", nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range rec.Acquire[0] {
		if e.Unit == "ALU" {
			n += e.Num
		}
	}
	if n != 2 {
		t.Errorf("val used twice acquired %d copies, want 2", n)
	}
}

func TestConditionalVariants(t *testing.T) {
	ev := mustEval(t, `
register untyped{32} R[32]
val src2 is iflag=1 ? #simm13 : R[rs2]
sem x is (D 1, s:=src2, R[rd]:=s, D 1)
`)
	imm, err := ev.Timing("x", map[string]int{"iflag": 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := ev.Timing("x", map[string]int{"iflag": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(imm.Reads) != 0 {
		t.Errorf("imm variant reads = %+v, want none", imm.Reads)
	}
	if len(reg.Reads) != 1 || reg.Reads[0].Field != "rs2" {
		t.Errorf("reg variant reads = %+v, want rs2", reg.Reads)
	}
	// Immediate value available at cycle 0 => write avail 0.
	if imm.Writes[0].Avail != 0 {
		t.Errorf("imm write avail = %d, want 0", imm.Writes[0].Avail)
	}
}

func TestTimingUnknownInstruction(t *testing.T) {
	ev := mustEval(t, "sem x is D 1")
	if _, err := ev.Timing("nope", nil); err == nil {
		t.Error("Timing(nope) succeeded")
	}
}

func TestParseFig2FileIsCleanGo(t *testing.T) {
	// Guard against regressions in the shipped figure: it must parse and
	// contain the three declared instructions.
	src, err := os.ReadFile("testdata/hypersparc_fig2.sadl")
	if err != nil {
		t.Fatal(err)
	}
	f := mustParse(t, string(src))
	if len(f.Sems) != 1 || strings.Join(f.Sems[0].Names, " ") != "add sub sra" {
		t.Errorf("figure 2 sems = %+v", f.Sems)
	}
}
