package eel_test

import (
	"reflect"
	"testing"

	"eel/internal/cfg"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

const loopProgram = `
	mov 0, %g1
	set 100, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	set 300, %g3
	ta 0
`

func buildExe(t *testing.T, src string) *exe.Exe {
	t.Helper()
	insts, err := sparc.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	x := exe.New()
	for _, inst := range insts {
		x.Text = append(x.Text, sparc.MustEncode(inst))
	}
	x.AddSymbol("main", x.TextBase, true)
	return x
}

// staticAdder inserts "add %g4, 1, %g4" at the top of every block.
type staticAdder struct{}

func (a *staticAdder) Setup(ed *eel.Editor) error { return nil }
func (a *staticAdder) Instrument(b *cfg.Block) []sparc.Inst {
	inc := sparc.NewALUImm(sparc.OpAdd, sparc.G4, sparc.G4, 1)
	inc.Instrumented = true
	return []sparc.Inst{inc}
}

// TestEditIdentity: an edit with no tool and no scheduling reproduces the
// text exactly (same words, same entry, same symbols).
func TestEditIdentity(t *testing.T) {
	x := buildExe(t, loopProgram)
	x.AddSymbol("loop", x.TextBase+8, true)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ed.Edit(nil, eel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Text, x.Text) {
		t.Error("identity edit changed the text")
	}
	if out.Entry != x.Entry {
		t.Error("identity edit moved the entry")
	}
	if !reflect.DeepEqual(out.Symbols, x.Symbols) {
		t.Error("identity edit changed symbols")
	}
}

// TestDoubleInstrumentation: instrumenting an already-instrumented binary
// works — EEL is closed under its own editing. Both profiles must be
// correct.
func TestDoubleInstrumentation(t *testing.T) {
	x := buildExe(t, loopProgram)
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	p1 := &qpt.SlowProfiler{}
	once, err := ed.Edit(p1, eel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ed2, err := eel.Open(once)
	if err != nil {
		t.Fatal(err)
	}
	p2 := &qpt.SlowProfiler{}
	twice, err := ed2.Edit(p2, eel.Options{
		Machine:  spawn.MustLoad(spawn.UltraSPARC),
		Schedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewInterp(twice)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("doubly instrumented program did not halt")
	}
	if got := in.Reg(sparc.G1); got != 100 {
		t.Errorf("g1 = %d, want 100", got)
	}
	// The second profiler's counts are authoritative for the second CFG;
	// its loop block must count 100.
	counts, err := p2.Counts(in.Mem().Read32)
	if err != nil {
		t.Fatal(err)
	}
	max := uint64(0)
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max != 100 {
		t.Errorf("hottest block counted %d, want 100", max)
	}
}

// TestEditPreservesDataAndBSS: editing must copy, not alias, the data
// segment, and preserve BSS.
func TestEditPreservesDataAndBSS(t *testing.T) {
	x := buildExe(t, loopProgram)
	x.Data = []byte{1, 2, 3, 4}
	x.BSSSize = 128
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ed.Edit(&staticAdder{}, eel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.BSSSize != 128 {
		t.Errorf("BSS = %d", out.BSSSize)
	}
	out.Data[0] = 99
	if x.Data[0] != 1 {
		t.Error("edit aliased the original data segment")
	}
}

// TestConservativeVsRelaxedSchedules: on a block mixing original memory
// traffic with instrumentation, the paper's aliasing rule must never
// produce a slower schedule than the conservative one (on the scheduler's
// own model).
func TestConservativeVsRelaxedSchedules(t *testing.T) {
	src := `
	sethi %hi(0x40000000), %o0
loop:
	ld [%o0 + 0], %g1
	add %g1, 1, %g1
	st %g1, [%o0 + 0]
	ld [%o0 + 4], %g2
	add %g2, %g1, %g2
	st %g2, [%o0 + 4]
	subcc %g2, 1000, %g0
	bl loop
	nop
	ta 0
`
	x := buildExe(t, src)
	model := spawn.MustLoad(spawn.UltraSPARC)
	cfgT := sim.DefaultTiming(spawn.UltraSPARC)
	cfgT.ICacheSize = 0 // isolate the pipeline effect

	run := func(conservative bool) int64 {
		ed, err := eel.Open(x)
		if err != nil {
			t.Fatal(err)
		}
		opts := eel.Options{Machine: model, Schedule: true}
		opts.Sched.ConservativeMem = conservative
		out, err := ed.Edit(&qpt.SlowProfiler{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		_, tm, res, err := sim.RunMeasured(out, model, cfgT, 1e8)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted {
			t.Fatal("did not halt")
		}
		return tm.Cycles()
	}
	relaxed := run(false)
	conservative := run(true)
	if relaxed > conservative {
		t.Errorf("paper aliasing rule slower than conservative: %d vs %d",
			relaxed, conservative)
	}
}
