package eel

import (
	"testing"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/exe"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func buildExe(t *testing.T, src string) *exe.Exe {
	t.Helper()
	insts, err := sparc.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	x := exe.New()
	for _, inst := range insts {
		x.Text = append(x.Text, sparc.MustEncode(inst))
	}
	x.AddSymbol("main", x.TextBase, true)
	return x
}

const loopProgram = `
	mov 0, %g1
	set 100, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	set 300, %g3
	ta 0
`

func runG1(t *testing.T, x *exe.Exe) (uint32, uint32, uint64) {
	t.Helper()
	in, err := sim.NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	return in.Reg(sparc.G1), in.Reg(sparc.G3), res.Steps
}

func TestOpenAndGraph(t *testing.T) {
	ed, err := Open(buildExe(t, loopProgram))
	if err != nil {
		t.Fatal(err)
	}
	if len(ed.Graph().Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(ed.Graph().Blocks))
	}
	if len(ed.Insts()) != 8 {
		t.Errorf("insts = %d, want 8", len(ed.Insts()))
	}
}

func TestOpenRejectsBadImages(t *testing.T) {
	x := exe.New()
	if _, err := Open(x); err == nil {
		t.Error("empty image accepted")
	}
	x = exe.New()
	x.Text = []uint32{0} // unimp word
	if _, err := Open(x); err == nil {
		t.Error("undecodable text accepted")
	}
}

// rescheduleAndRun verifies a pure rescheduling pass preserves behavior.
func TestReschedulePreservesBehavior(t *testing.T) {
	x := buildExe(t, loopProgram)
	g1, g3, steps := runG1(t, x)
	if g1 != 100 || g3 != 300 {
		t.Fatalf("baseline wrong: g1=%d g3=%d", g1, g3)
	}

	ed, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		out, err := ed.Reschedule(model, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		ng1, ng3, nsteps := runG1(t, out)
		if ng1 != g1 || ng3 != g3 {
			t.Errorf("%s: rescheduled result differs: g1=%d g3=%d", machine, ng1, ng3)
		}
		// Rescheduling may drop delay-slot nops, so the dynamic count can
		// shrink but never grow.
		if nsteps > steps {
			t.Errorf("%s: rescheduled run longer: %d > %d", machine, nsteps, steps)
		}
	}
}

// staticAdder inserts "add %g4, 1, %g4" at the top of every block.
type staticAdder struct{ blocks int }

func (a *staticAdder) Setup(ed *Editor) error { return nil }
func (a *staticAdder) Instrument(b *cfg.Block) []sparc.Inst {
	a.blocks++
	inc := sparc.NewALUImm(sparc.OpAdd, sparc.G4, sparc.G4, 1)
	inc.Instrumented = true
	return []sparc.Inst{inc}
}

func TestEditInsertsInstrumentation(t *testing.T) {
	x := buildExe(t, loopProgram)
	ed, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	tool := &staticAdder{}
	out, err := ed.Edit(tool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tool.blocks != 3 {
		t.Errorf("instrumented %d blocks, want 3", tool.blocks)
	}
	if len(out.Text) != len(x.Text)+3 {
		t.Errorf("text grew by %d, want 3", len(out.Text)-len(x.Text))
	}

	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("instrumented program did not halt")
	}
	if got := in.Reg(sparc.G1); got != 100 {
		t.Errorf("g1 = %d, want 100", got)
	}
	// g4 counts block executions: entry(1) + loop(100) + exit(1).
	if got := in.Reg(sparc.G4); got != 102 {
		t.Errorf("g4 = %d, want 102", got)
	}
}

func TestEditWithSchedulingPreservesBehavior(t *testing.T) {
	x := buildExe(t, loopProgram)
	ed, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ed.Edit(&staticAdder{}, Options{
		Machine:  spawn.MustLoad(spawn.UltraSPARC),
		Schedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(1e7, nil); err != nil {
		t.Fatal(err)
	}
	if got := in.Reg(sparc.G1); got != 100 {
		t.Errorf("g1 = %d, want 100", got)
	}
	if got := in.Reg(sparc.G4); got != 102 {
		t.Errorf("g4 = %d, want 102", got)
	}
}

func TestEditRequiresMachineForScheduling(t *testing.T) {
	ed, err := Open(buildExe(t, loopProgram))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ed.Edit(nil, Options{Schedule: true}); err == nil {
		t.Error("scheduling without a machine model accepted")
	}
}

func TestCallRetargeting(t *testing.T) {
	src := `
	mov 0, %g1
	mov 0, %g5
loop:
	call bump
	nop
	add %g5, 1, %g5
	cmp %g5, 10
	bne loop
	nop
	ta 0
bump:
	retl
	add %g1, 1, %g1
`
	x := buildExe(t, src)
	ed, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	// Instrumentation shifts every block; the call and branches must be
	// retargeted.
	out, err := ed.Edit(&staticAdder{}, Options{
		Machine:  spawn.MustLoad(spawn.SuperSPARC),
		Schedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if got := in.Reg(sparc.G1); got != 10 {
		t.Errorf("call count = %d, want 10", got)
	}
}

func TestEditRemapsSymbolsAndEntry(t *testing.T) {
	x := buildExe(t, loopProgram)
	x.AddSymbol("loop", x.TextBase+8, true)
	ed, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ed.Edit(&staticAdder{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Entry != out.TextBase {
		t.Errorf("entry = %#x, want text base", out.Entry)
	}
	s, ok := out.Lookup("loop")
	if !ok {
		t.Fatal("loop symbol lost")
	}
	// Block 0 gained one instruction, so loop moved from +8 to +12.
	if s.Addr != out.TextBase+12 {
		t.Errorf("loop symbol at %#x, want %#x", s.Addr, out.TextBase+12)
	}
}
