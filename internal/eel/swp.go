package eel

import (
	"errors"
	"fmt"
	"sort"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/exe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// This file is the executable-editing half of software pipelining
// (DESIGN.md §14): candidate discovery over the control-flow graph, the
// constant-trip-count proof the modulo scheduler's exit construction
// needs, and the greedy never-worse acceptance loop that splices
// prologue+kernel+epilogue rewrites into the text. The editor stays
// simulator-free: the whole-program cost of each candidate arrives
// through the Price callback, which production callers (cmd/schedloop)
// wire to the sim package's timing model.

// PipelineOptions configure a software-pipelining pass.
type PipelineOptions struct {
	// Machine selects the scheduling model. Required.
	Machine *spawn.Model
	// SWP passes through the modulo scheduler's search limits.
	SWP core.SWPOptions
	// Sched passes through scheduler options (aliasing rules) to the
	// underlying core scheduler.
	Sched core.Options
	// Price returns the whole-program cost of an executable — simulated
	// cycles on the target timing model, for production callers. A
	// candidate rewrite is accepted only when it strictly lowers the
	// incumbent's price, so the pass can never emit a costlier program
	// than its input. Required.
	Price func(*exe.Exe) (int64, error)
}

// LoopReport describes one natural loop the pipeliner considered, and
// what became of it.
type LoopReport struct {
	Header int `json:"header"` // old text index of the loop header
	Depth  int `json:"depth"`  // nesting depth (hotness rank)
	Blocks int `json:"blocks"` // blocks in the loop
	Body   int `json:"body"`   // schedulable body instructions
	Trip   int `json:"trip"`   // proven constant trip count (0 = unproven)

	// Modulo-scheduling results, present once the scheduler ran.
	II     int `json:"ii,omitempty"`
	MII    int `json:"mii,omitempty"`
	ResMII int `json:"res_mii,omitempty"`
	RecMII int `json:"rec_mii,omitempty"`
	Stages int `json:"stages,omitempty"`

	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"` // why not accepted

	// Text ranges for cycle attribution: the loop block in the input,
	// and the spliced replacement in the output (accepted loops only).
	OldStart int `json:"old_start"`
	OldLen   int `json:"old_len"`
	NewStart int `json:"new_start,omitempty"`
	NewLen   int `json:"new_len,omitempty"`
}

// PipelineResult is a software-pipelining pass's output: the rewritten
// executable (the unmodified input when nothing was accepted), its price
// against the input's, and the fate of every loop examined.
type PipelineResult struct {
	Exe      *exe.Exe     `json:"-"`
	BaseCost int64        `json:"base_cost"`
	Cost     int64        `json:"cost"`
	Loops    []LoopReport `json:"loops"`

	LoopsFound  int `json:"loops_found"`
	Irreducible int `json:"irreducible"`
	Candidates  int `json:"candidates"`
	Accepted    int `json:"accepted"`
}

// PipelineLoops software-pipelines the hot innermost loops of the opened
// executable. Candidates — innermost single-block natural loops whose
// back edge is a delay-slot CTI and whose trip count is a compile-time
// constant proven from the preheader — are tried hottest-first (deepest
// nesting first); each rewrite is priced whole-program by opts.Price and
// kept only when it strictly beats the best executable so far. The
// result is therefore never worse than the input, which is returned
// untouched when no loop wins.
//
// The pass is deterministic: candidate order, scheduling and splicing
// are all worker-count-independent, so the output bytes depend only on
// the input and options.
func (ed *Editor) PipelineLoops(opts PipelineOptions) (*PipelineResult, error) {
	if opts.Machine == nil {
		return nil, fmt.Errorf("eel: pipelining requested without a machine model")
	}
	if opts.Price == nil {
		return nil, fmt.Errorf("eel: pipelining requested without a cost model")
	}

	loops, irr := ed.graph.Loops()
	res := &PipelineResult{LoopsFound: len(loops), Irreducible: irr}

	// Examine every loop; candidates keep a nil Reason for now.
	type candidate struct {
		loop   *cfg.Loop
		trip   int
		report int // index into res.Loops
	}
	var cands []candidate
	for _, l := range loops {
		b := l.Header
		r := LoopReport{
			Header:   b.Start,
			Depth:    l.Depth,
			Blocks:   len(l.Blocks),
			Body:     len(b.Body()),
			OldStart: b.Start,
			OldLen:   b.End - b.Start,
		}
		trip, reason := ed.analyzeCandidate(l)
		r.Trip = trip
		r.Reason = reason
		res.Loops = append(res.Loops, r)
		if reason == "" {
			cands = append(cands, candidate{loop: l, trip: trip, report: len(res.Loops) - 1})
		}
	}
	res.Candidates = len(cands)

	// Hottest first: deepest nesting, then larger body, then text order —
	// a total order, so the greedy acceptance is deterministic.
	sort.SliceStable(cands, func(i, j int) bool {
		li, lj := cands[i].loop, cands[j].loop
		if li.Depth != lj.Depth {
			return li.Depth > lj.Depth
		}
		bi, bj := len(li.Header.Body()), len(lj.Header.Body())
		if bi != bj {
			return bi > bj
		}
		return li.Header.Start < lj.Header.Start
	})

	baseCost, err := opts.Price(ed.exe)
	if err != nil {
		return nil, fmt.Errorf("eel: pricing the input: %w", err)
	}
	res.BaseCost, res.Cost, res.Exe = baseCost, baseCost, ed.exe

	sched := ed.schedulerFor(opts.Machine, opts.Sched)
	accepted := make(map[int][]sparc.Inst)
	var starts map[int]int // layout of the incumbent splice
	for _, c := range cands {
		r := &res.Loops[c.report]
		b := c.loop.Header
		pl, err := sched.PipelineLoop(b.Insts, c.trip, opts.SWP)
		if err != nil {
			if errors.Is(err, core.ErrNotPipelined) {
				r.Reason = err.Error()
				continue
			}
			return nil, fmt.Errorf("eel: pipelining loop at %d: %w", b.Start, err)
		}
		r.II, r.MII, r.ResMII, r.RecMII, r.Stages = pl.II, pl.MII, pl.ResMII, pl.RecMII, pl.Stages

		repl := make([]sparc.Inst, 0, len(pl.Prologue)+len(pl.Kernel)+len(pl.Epilogue))
		repl = append(repl, pl.Prologue...)
		repl = append(repl, pl.Kernel...)
		repl = append(repl, pl.Epilogue...)

		try := make(map[int][]sparc.Inst, len(accepted)+1)
		for k, v := range accepted {
			try[k] = v
		}
		try[b.Index] = repl
		x, tryStarts, err := ed.splice(try)
		if err != nil {
			return nil, fmt.Errorf("eel: splicing loop at %d: %w", b.Start, err)
		}
		cost, err := opts.Price(x)
		if err != nil {
			return nil, fmt.Errorf("eel: pricing loop at %d: %w", b.Start, err)
		}
		if cost >= res.Cost {
			r.Reason = fmt.Sprintf("no whole-program win: %d >= %d", cost, res.Cost)
			continue
		}
		accepted = try
		starts = tryStarts
		res.Exe, res.Cost = x, cost
		r.Accepted = true
		res.Accepted++
	}

	// Locate every accepted replacement in the final layout for cycle
	// attribution (later candidates may have shifted earlier ones).
	if res.Accepted > 0 {
		for i := range res.Loops {
			r := &res.Loops[i]
			if !r.Accepted {
				continue
			}
			r.NewStart = starts[r.OldStart]
			for _, b := range ed.graph.Blocks {
				if b.Start == r.OldStart {
					r.NewLen = len(accepted[b.Index])
				}
			}
		}
	}
	return res, nil
}

// analyzeCandidate decides whether a natural loop is pipelinable at the
// editing level and proves its constant trip count. It returns a
// non-empty reason when the loop must be left alone. The rules, each
// load-bearing for the exit construction or for layout correctness:
//
//   - innermost single-block loops only: the modulo scheduler handles
//     one block, and an inner loop inside the body would be rescheduled
//     incorrectly;
//   - the back edge is the block's own delay-slot CTI (bne, not
//     annulled); deeper shape checks belong to core.PipelineLoop;
//   - the counter idiom "subcc r, step, r" names the trip register; the
//     loop's unique preheader must end the register's def chain with
//     "or %g0, init, r" (the assembler's `set` for immediates), giving
//     trip = init/step exactly;
//   - nothing else may enter the loop: a second outside predecessor,
//     a call targeting the header, a call returning into the header, or
//     the program entry point at the header would bypass the prologue
//     (and the counter init), so any of them disqualifies the loop.
//     Indirect jumps (jmpl) only realise call return points in this
//     ISA's usage — the same assumption Edit's retargeting already
//     makes — so the call scans cover them.
func (ed *Editor) analyzeCandidate(l *cfg.Loop) (trip int, reason string) {
	if !l.Inner {
		return 0, "not innermost"
	}
	if !l.SingleBlock() {
		return 0, "multi-block body"
	}
	b := l.Header
	cti, _, ok := b.CTI()
	if !ok {
		return 0, "no back-edge CTI"
	}
	if cti.Op != sparc.OpBicc || cti.Cond != sparc.CondNE || cti.Annul {
		return 0, fmt.Sprintf("back edge %v is not a plain bne", cti.Mnemonic())
	}
	if len(b.Body()) == 0 {
		return 0, "empty body"
	}

	// The counter: last subcc-to-self in the body (delay slot included —
	// it executes inside the iteration). core.PipelineLoop re-validates
	// it as the unique condition-code writer.
	counter := sparc.G0
	step := 0
	_, delay, _ := b.CTI()
	for _, inst := range append(append([]sparc.Inst(nil), b.Body()...), delay) {
		if inst.Op == sparc.OpSubcc && inst.UseImm && inst.Rd == inst.Rs1 && inst.Rd != sparc.G0 && inst.Imm >= 1 {
			counter, step = inst.Rd, int(inst.Imm)
		}
	}
	if counter == sparc.G0 {
		return 0, "no counted-loop counter idiom"
	}

	pre := l.Preheader()
	if pre == nil {
		return 0, "no unique preheader"
	}

	// Trip count: the preheader's last write to the counter must be the
	// immediate-set idiom.
	init, initIdx := -1, -1
	var regs [4]sparc.Reg
	for i, inst := range pre.Insts {
		for _, d := range inst.Defs(regs[:0]) {
			if d != counter {
				continue
			}
			initIdx = i
			if inst.Op == sparc.OpOr && inst.UseImm && inst.Rs1 == sparc.G0 && int(inst.Imm) >= 1 {
				init = int(inst.Imm)
			} else {
				init = -1
			}
		}
	}
	if initIdx < 0 || init < 0 {
		return 0, "trip count not provable from the preheader"
	}
	// An annulled preheader CTI executes its delay slot only when taken;
	// a counter init there is skipped on the fall-through entry.
	if preCTI, _, ok := pre.CTI(); ok && preCTI.Annul && initIdx == len(pre.Insts)-1 {
		return 0, "counter initialised in an annulled delay slot"
	}
	if init%step != 0 {
		return 0, fmt.Sprintf("init %d is not a multiple of step %d", init, step)
	}
	trip = init / step

	// Side-entry scans over the whole text.
	for idx, inst := range ed.insts {
		if inst.Op != sparc.OpCall {
			continue
		}
		if idx+int(inst.Disp) == b.Start {
			return 0, "a call targets the loop header"
		}
		if idx+2 == b.Start {
			return 0, "a call returns into the loop header"
		}
	}
	if idx, err := ed.exe.IndexOf(ed.exe.Entry); err == nil && idx == b.Start {
		return 0, "the program entry is the loop header"
	}
	return trip, ""
}

// splice rebuilds the executable with the given block replacements
// (block index -> instruction sequence) and every other block unchanged.
// It returns the new image and the layout map from old block start index
// to new text index.
func (ed *Editor) splice(repl map[int][]sparc.Inst) (*exe.Exe, map[int]int, error) {
	out := &exe.Exe{
		Entry:    ed.exe.Entry,
		TextBase: ed.exe.TextBase,
		DataBase: ed.exe.DataBase,
		Data:     append([]byte(nil), ed.exe.Data...),
		BSSSize:  ed.exe.BSSSize,
		Symbols:  append([]exe.Symbol(nil), ed.exe.Symbols...),
	}
	blocks := make([][]sparc.Inst, len(ed.graph.Blocks))
	replaced := make(map[int]bool, len(repl))
	for i, b := range ed.graph.Blocks {
		if r, ok := repl[i]; ok {
			blocks[i] = r
			replaced[i] = true
		} else {
			blocks[i] = b.Insts
		}
	}
	starts, err := ed.assemble(out, blocks, replaced)
	if err != nil {
		return nil, nil, err
	}
	return out, starts, nil
}
