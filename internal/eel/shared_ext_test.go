package eel_test

import (
	"fmt"
	"sync"
	"testing"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// buildWorkloadExe generates a deterministic synthetic benchmark small
// enough for a test but with enough blocks to exercise the scheduler.
func buildWorkloadExe(t *testing.T) *exe.Exe {
	t.Helper()
	b, ok := workload.ByName("130.li", spawn.UltraSPARC)
	if !ok {
		t.Fatal("130.li missing from the suite")
	}
	x, err := workload.Generate(b, workload.Config{
		Machine:         spawn.UltraSPARC,
		DynamicInsts:    1 << 14,
		Seed:            7,
		SkipCalibration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestConcurrentEditsOnSharedEditor hammers one Editor (and so one
// scheduler memo and one schedule cache) from many goroutines — the
// daemon's steady state — and checks every concurrent edit is
// byte-identical to a sequential reference pass. Run under -race in CI.
func TestConcurrentEditsOnSharedEditor(t *testing.T) {
	x := buildWorkloadExe(t)
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	shared := core.NewCache(0)
	ed, err := eel.OpenShared(x, shared)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ed.Reschedule(model, core.Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := ed.Reschedule(model, core.Options{Workers: 2})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, r, err)
					return
				}
				if len(got.Text) != len(want.Text) {
					errs <- fmt.Errorf("goroutine %d round %d: %d words, want %d", g, r, len(got.Text), len(want.Text))
					return
				}
				for i := range got.Text {
					if got.Text[i] != want.Text[i] {
						errs <- fmt.Errorf("goroutine %d round %d: word %d differs", g, r, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits, misses := shared.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("shared cache saw %d hits / %d misses; expected both (warm repeats, cold first pass)", hits, misses)
	}
}

// TestSharedCacheAcrossEditors opens two Editors over the same image
// against one shared cache: the second editor's pass must be served
// almost entirely from the first one's entries.
func TestSharedCacheAcrossEditors(t *testing.T) {
	x := buildWorkloadExe(t)
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	shared := core.NewCache(0)
	ed1, err := eel.OpenShared(x, shared)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := ed1.Reschedule(model, core.Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, coldMisses := shared.Stats()

	ed2, err := eel.OpenShared(x, shared)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := ed2.Reschedule(model, core.Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := shared.Stats()
	if misses != coldMisses {
		t.Fatalf("second editor missed %d times; the shared cache should have served it", misses-coldMisses)
	}
	if hits == 0 {
		t.Fatal("second editor recorded no cache hits")
	}
	for i := range out1.Text {
		if out1.Text[i] != out2.Text[i] {
			t.Fatalf("editors disagree at word %d", i)
		}
	}
}

// TestSchedulerMemoKeysIsolate makes sure memoized schedulers do not
// bleed configuration: conservative and relaxed passes through the same
// Editor still differ where they should, and repeating each is stable.
func TestSchedulerMemoKeysIsolate(t *testing.T) {
	x := buildWorkloadExe(t)
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := eel.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts core.Options) []uint32 {
		t.Helper()
		out, err := ed.Reschedule(model, opts)
		if err != nil {
			t.Fatal(err)
		}
		return out.Text
	}
	fast := run(core.Options{})
	ref := run(core.Options{Engine: core.EngineReference, Oracle: core.OracleReference})
	fast2 := run(core.Options{})
	if fmt.Sprint(fast) != fmt.Sprint(fast2) {
		t.Fatal("repeated identical pass changed output")
	}
	// Engines are differentially tested to agree; this asserts the memo
	// routed the reference run to a reference scheduler at all (same
	// output, distinct scheduler instances exercised without panic).
	if fmt.Sprint(fast) != fmt.Sprint(ref) {
		t.Fatal("reference and fast schedulers disagree on the same image")
	}
}

// TestConcurrentEditsSharePersistentPool is the daemon's steady state
// under the persistent worker pool: many goroutines drive instrumenting
// Edits through one shared Editor, whose scheduler memo hands them all
// the same Scheduler and therefore the same pool of resident worker
// goroutines. Midway through, the Editor is Closed — the daemon LRU's
// eviction path — which shuts the pool under the in-flight edits; those
// must degrade to caller-inline scheduling, not fail, and every output
// (before, during, after the Close) must stay byte-identical. Run under
// -race in CI.
func TestConcurrentEditsSharePersistentPool(t *testing.T) {
	x := buildWorkloadExe(t)
	model, err := spawn.Load(spawn.UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := eel.OpenShared(x, core.NewCache(0))
	if err != nil {
		t.Fatal(err)
	}
	opts := eel.Options{Machine: model, Schedule: true, Sched: core.Options{Workers: 4}}
	want, err := ed.Edit(&staticAdder{}, opts)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	var closeOnce sync.Once
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if g == 0 && r == rounds/2 {
					closeOnce.Do(ed.Close)
				}
				got, err := ed.Edit(&staticAdder{}, opts)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, r, err)
					return
				}
				for i := range got.Text {
					if got.Text[i] != want.Text[i] {
						errs <- fmt.Errorf("goroutine %d round %d: word %d differs", g, r, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
