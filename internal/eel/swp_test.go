package eel

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"eel/internal/core"
	"eel/internal/exe"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// fpLoopProgram is a pipelinable hot loop: two parallel load-multiply
// chains joined by adds, a counted exit, nothing else touching the
// condition codes.
const fpLoopProgram = `
	set 1024, %g1
	set 12, %l7
loop:
	ldd [%g1], %f0
	fmuld %f0, %f2, %f4
	ldd [%g1 + 8], %f8
	fmuld %f8, %f10, %f12
	faddd %f4, %f12, %f16
	faddd %f16, %f18, %f20
	subcc %l7, 1, %l7
	bne loop
	nop
	set 300, %g3
	ta 0
`

func simPrice(t *testing.T, model *spawn.Model, machine spawn.Machine) func(*exe.Exe) (int64, error) {
	t.Helper()
	return func(x *exe.Exe) (int64, error) {
		_, tm, res, err := sim.RunMeasured(x, model, sim.DefaultTiming(machine), 1<<24)
		if err != nil {
			return 0, err
		}
		if !res.Halted {
			return 0, fmt.Errorf("simulation did not halt")
		}
		return tm.Cycles(), nil
	}
}

// runRegs executes x to the halting trap and returns the full visible
// register state (integer and floating point, %g0 excluded).
func runRegs(t *testing.T, x *exe.Exe) [63]uint32 {
	t.Helper()
	in, err := sim.NewInterp(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1<<24, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	var regs [63]uint32
	for r := 1; r < 32; r++ {
		regs[r-1] = in.Reg(sparc.Reg(r))
	}
	for n := 0; n < 32; n++ {
		regs[31+n] = in.FReg(n)
	}
	return regs
}

func TestPipelineLoopsEndToEnd(t *testing.T) {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	x := buildExe(t, fpLoopProgram)
	ed, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ed.PipelineLoops(PipelineOptions{Machine: model, Price: simPrice(t, model, machine)})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopsFound != 1 || res.Candidates != 1 {
		t.Fatalf("loops=%d candidates=%d, want 1/1", res.LoopsFound, res.Candidates)
	}
	if res.Accepted != 1 {
		t.Fatalf("accepted=%d, want 1 (reports: %+v)", res.Accepted, res.Loops)
	}
	if res.Cost >= res.BaseCost {
		t.Fatalf("cost %d did not improve on base %d", res.Cost, res.BaseCost)
	}
	r := res.Loops[0]
	if !r.Accepted || r.Trip != 12 || r.II < 1 || r.II < r.MII || r.Stages < 2 {
		t.Errorf("report wrong: %+v", r)
	}
	// The replacement grew the text and sits where the loop block was.
	if len(res.Exe.Text) <= len(x.Text) {
		t.Errorf("text did not grow: %d <= %d", len(res.Exe.Text), len(x.Text))
	}
	if r.NewLen <= r.OldLen || r.NewStart != r.OldStart {
		t.Errorf("replacement range wrong: new [%d,+%d) old [%d,+%d)", r.NewStart, r.NewLen, r.OldStart, r.OldLen)
	}
	// Same final architectural state as the original program.
	if got, want := runRegs(t, res.Exe), runRegs(t, x); got != want {
		t.Error("pipelined program computes different register state")
	}
}

// When no rewrite wins, the pass hands back the input image untouched.
func TestPipelineLoopsDeclinesUnprofitable(t *testing.T) {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	// Throughput-bound body: independent loads saturate the load unit.
	x := buildExe(t, `
	set 1024, %g1
	set 8, %l7
loop:
	ldd [%g1], %f0
	ldd [%g1 + 8], %f2
	subcc %l7, 1, %l7
	bne loop
	nop
	ta 0
`)
	ed, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ed.PipelineLoops(PipelineOptions{Machine: model, Price: simPrice(t, model, machine)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 {
		t.Fatalf("accepted=%d, want 0: %+v", res.Accepted, res.Loops)
	}
	if res.Exe != x || res.Cost != res.BaseCost {
		t.Error("declined pass should return the input executable at base cost")
	}
	if res.Loops[0].Reason == "" {
		t.Error("declined loop carries no reason")
	}
}

// Candidate analysis must refuse loops whose trip count or entry
// discipline it cannot prove.
func TestPipelineLoopsCandidateAnalysis(t *testing.T) {
	cases := []struct {
		name, src, reason string
	}{
		{"register trip", `
	mov %o0, %l7
loop:
	ldd [%g1], %f0
	subcc %l7, 1, %l7
	bne loop
	nop
	ta 0
`, "trip count not provable from the preheader"},
		{"call returns into header", `
	set 8, %l7
	call helper
	nop
loop:
	ldd [%g1], %f0
	subcc %l7, 1, %l7
	bne loop
	nop
	ta 0
helper:
	retl
	nop
`, "a call returns into the loop header"},
		{"no counter", `
	set 8, %g2
loop:
	ldd [%g1], %f0
	cmp %g2, 0
	bne loop
	nop
	ta 0
`, "no counted-loop counter idiom"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ed, err := Open(buildExe(t, tc.src))
			if err != nil {
				t.Fatal(err)
			}
			loops, _ := ed.Graph().Loops()
			if len(loops) != 1 {
				t.Fatalf("loops = %d, want 1", len(loops))
			}
			if _, reason := ed.analyzeCandidate(loops[0]); reason != tc.reason {
				t.Errorf("reason = %q, want %q", reason, tc.reason)
			}
		})
	}
}

// The pass is deterministic: identical inputs produce identical bytes,
// regardless of the scheduler worker count.
func TestPipelineLoopsDeterministic(t *testing.T) {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	var images [3][]byte
	for i, workers := range []int{1, 2, 4} {
		x := buildExe(t, fpLoopProgram)
		ed, err := Open(x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ed.PipelineLoops(PipelineOptions{
			Machine: model,
			Sched:   core.Options{Workers: workers},
			Price:   simPrice(t, model, machine),
		})
		if err != nil {
			t.Fatal(err)
		}
		images[i] = res.Exe.Marshal()
	}
	if !bytes.Equal(images[0], images[1]) || !bytes.Equal(images[0], images[2]) {
		t.Error("pipelined output differs across worker counts")
	}
}

// fuzzLoopSrc builds a counted-loop program from fuzz bytes: the first
// byte picks the trip count, the rest select body instructions from a
// menu of loads, stores and FP arithmetic over disjoint scratch
// registers (never %l7, never the condition codes).
func fuzzLoopSrc(data []byte) (string, bool) {
	if len(data) < 2 || len(data) > 14 {
		return "", false
	}
	trip := 4 + int(data[0])%12
	var b bytes.Buffer
	fmt.Fprintf(&b, "\tset 1024, %%g1\n\tset %d, %%l7\nloop:\n", trip)
	for _, d := range data[1:] {
		off := 8 * (int(d>>4) % 8)
		fr := 2 * (int(d>>2) % 11) // %f0..%f20
		switch d % 5 {
		case 0:
			fmt.Fprintf(&b, "\tldd [%%g1 + %d], %%f%d\n", off, fr)
		case 1:
			fmt.Fprintf(&b, "\tfmuld %%f%d, %%f%d, %%f%d\n", fr, 2*(int(d>>5)%11), 2*(int(d)%11))
		case 2:
			fmt.Fprintf(&b, "\tfaddd %%f%d, %%f%d, %%f%d\n", fr, 2*(int(d>>5)%11), 2*(int(d)%11))
		case 3:
			fmt.Fprintf(&b, "\tstd %%f%d, [%%g1 + %d]\n", fr, off)
		case 4:
			fmt.Fprintf(&b, "\tadd %%g2, %d, %%g3\n", int(d)%32)
		}
	}
	b.WriteString("\tsubcc %l7, 1, %l7\n\tbne loop\n\tnop\n\tta 0\n")
	return b.String(), true
}

// FuzzLoopPipeline is the differential check for the whole pipelining
// stack: every generated counted loop must either be declined or be
// rewritten into a program that (a) respects all dependences in its
// unrolled steady state, (b) computes the same architectural state, and
// (c) never costs more simulated cycles than the input.
func FuzzLoopPipeline(f *testing.F) {
	// Parallel chains (pipelines), a serial chain through a store
	// (declines on recurrence), pure loads (declines on throughput).
	f.Add([]byte{7, 0x00, 0x11, 0x40, 0x51, 0x82, 0xc2})
	f.Add([]byte{3, 0x00, 0x11, 0x13})
	f.Add([]byte{9, 0x00, 0x40, 0x80, 0xc0})
	f.Add([]byte{5, 0x04, 0x29})

	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	sched := core.New(model, core.Options{})

	f.Fuzz(func(t *testing.T, data []byte) {
		src, ok := fuzzLoopSrc(data)
		if !ok {
			t.Skip()
		}
		insts, err := sparc.Assemble(src)
		if err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		x := exe.New()
		for _, inst := range insts {
			x.Text = append(x.Text, sparc.MustEncode(inst))
		}
		ed, err := Open(x)
		if err != nil {
			t.Fatal(err)
		}

		// Dependence preservation of the unrolled steady state, checked
		// directly on the modulo scheduler's output.
		loops, _ := ed.Graph().Loops()
		for _, l := range loops {
			trip, reason := ed.analyzeCandidate(l)
			if reason != "" {
				continue
			}
			pl, err := sched.PipelineLoop(l.Header.Insts, trip, core.SWPOptions{})
			if errors.Is(err, core.ErrNotPipelined) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			orig := unrollOriginal(l.Header.Insts, pl.Trip)
			if err := sched.VerifyDependences(orig, unrollPipelined(pl)); err != nil {
				t.Fatalf("steady state violates dependences: %v\n%s", err, src)
			}
		}

		// Whole-program: never worse, and functionally identical.
		res, err := ed.PipelineLoops(PipelineOptions{
			Machine: model,
			Price: func(y *exe.Exe) (int64, error) {
				_, tm, r, err := sim.RunMeasured(y, model, sim.DefaultTiming(machine), 1<<24)
				if err != nil {
					return 0, err
				}
				if !r.Halted {
					return 0, fmt.Errorf("no halt")
				}
				return tm.Cycles(), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > res.BaseCost {
			t.Fatalf("pipelining regressed: %d > %d cycles\n%s", res.Cost, res.BaseCost, src)
		}
		if got, want := runRegs(t, res.Exe), runRegs(t, x); got != want {
			t.Fatalf("pipelined program computes different state\n%s", src)
		}
	})
}

// unrollOriginal is trip copies of a loop block's execution-order body,
// nops dropped.
func unrollOriginal(block []sparc.Inst, trip int) []sparc.Inst {
	n := len(block)
	body := append([]sparc.Inst(nil), block[:n-2]...)
	if !block[n-1].IsNop() {
		body = append(body, block[n-1])
	}
	var out []sparc.Inst
	for k := 0; k < trip; k++ {
		for _, inst := range body {
			if !inst.IsNop() {
				out = append(out, inst)
			}
		}
	}
	return out
}

// unrollPipelined flattens prologue + kernel ticks + epilogue into
// execution order, nops and CTIs dropped.
func unrollPipelined(pl *core.PipelinedLoop) []sparc.Inst {
	var out []sparc.Inst
	push := func(insts ...sparc.Inst) {
		for _, inst := range insts {
			if !inst.IsNop() && !inst.IsCTI() {
				out = append(out, inst)
			}
		}
	}
	push(pl.Prologue...)
	nk := len(pl.Kernel)
	for k := 0; k < pl.KernelTicks; k++ {
		push(pl.Kernel[:nk-2]...)
		push(pl.Kernel[nk-1])
	}
	push(pl.Epilogue...)
	return out
}
