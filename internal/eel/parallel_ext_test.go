package eel_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// manyBlocksProgram synthesizes a program with nblocks small basic
// blocks chained by conditional branches, ending in a trap halt.
func manyBlocksProgram(nblocks int) string {
	var b strings.Builder
	b.WriteString("\tmov 0, %g1\n\tset 100, %g2\n")
	for i := 0; i < nblocks; i++ {
		fmt.Fprintf(&b, "L%d:\n", i)
		fmt.Fprintf(&b, "\tadd %%g1, 1, %%g1\n")
		fmt.Fprintf(&b, "\tld [%%o0], %%g4\n")
		fmt.Fprintf(&b, "\tadd %%g3, %d, %%g3\n", i%7+1)
		fmt.Fprintf(&b, "\tst %%g3, [%%o0]\n")
		fmt.Fprintf(&b, "\tcmp %%g1, %%g2\n")
		fmt.Fprintf(&b, "\tbne L%d\n\tnop\n", i+1)
	}
	fmt.Fprintf(&b, "L%d:\n\tta 0\n", nblocks)
	return b.String()
}

// TestEditParallelByteIdentical is the end-to-end determinism gate: the
// instrumented, scheduled executable is byte-identical for every worker
// count (including Workers: 1) on all three machine descriptions.
func TestEditParallelByteIdentical(t *testing.T) {
	src := manyBlocksProgram(60)
	for _, machine := range []spawn.Machine{spawn.SuperSPARC, spawn.UltraSPARC, spawn.HyperSPARC} {
		model := spawn.MustLoad(machine)
		edit := func(workers int) *exe.Exe {
			t.Helper()
			ed, err := eel.Open(buildExe(t, src))
			if err != nil {
				t.Fatal(err)
			}
			out, err := ed.Edit(&qpt.SlowProfiler{}, eel.Options{
				Machine:  model,
				Schedule: true,
				Sched:    core.Options{Workers: workers},
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", machine, workers, err)
			}
			return out
		}
		want := edit(1)
		for _, workers := range []int{2, 4, 8, 0} {
			got := edit(workers)
			if !reflect.DeepEqual(got.Text, want.Text) {
				t.Fatalf("%s: workers=%d text differs from sequential edit", machine, workers)
			}
			if got.Entry != want.Entry || !reflect.DeepEqual(got.Symbols, want.Symbols) {
				t.Fatalf("%s: workers=%d entry/symbols differ", machine, workers)
			}
		}
	}
}

// TestEditCachedRepeatIdentical: editing through the same Editor twice
// (the hot-block cache path) yields byte-identical output, and the
// program still behaves.
func TestEditCachedRepeatIdentical(t *testing.T) {
	model := spawn.MustLoad(spawn.UltraSPARC)
	ed, err := eel.Open(buildExe(t, manyBlocksProgram(40)))
	if err != nil {
		t.Fatal(err)
	}
	opts := eel.Options{Machine: model, Schedule: true}
	first, err := ed.Edit(&qpt.SlowProfiler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ed.Edit(&qpt.SlowProfiler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Text, second.Text) {
		t.Fatal("repeated edit through one editor changed the output")
	}
	in, err := sim.NewInterp(second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("cached-edit program did not halt")
	}
	// Every block increments %g1 once and the branches all fall through
	// to the next block.
	if got := in.Reg(sparc.G1); got != 40 {
		t.Errorf("g1 = %d, want 40", got)
	}
}

// TestRescheduleParallelPreservesBehavior: a parallel rescheduling pass
// still produces a program that runs to the same result.
func TestRescheduleParallelPreservesBehavior(t *testing.T) {
	model := spawn.MustLoad(spawn.SuperSPARC)
	ed, err := eel.Open(buildExe(t, manyBlocksProgram(30)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ed.Reschedule(model, core.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewInterp(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("rescheduled program did not halt")
	}
	if got := in.Reg(sparc.G1); got != 30 {
		t.Errorf("g1 = %d, want 30", got)
	}
}
