// Package eel is the executable editing library: the Go counterpart of
// EEL (Larus & Schnarr, PLDI '95) extended with the instruction scheduler
// of the MICRO-29 paper. Its pipeline is the paper's Figure 3:
//
//	Executable -> Analyse -> (tool selects and places instrumentation)
//	           -> Schedule -> new Executable
//
// Scheduling happens per basic block as the block is laid out in the new
// executable, so original and instrumentation instructions are scheduled
// together.
package eel

import (
	"context"
	"fmt"
	"sync"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/exe"
	"eel/internal/obs"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Editor holds an opened executable and its analysis.
//
// An Editor is safe for concurrent use: the executable, its decoded
// instructions and its control-flow graph are immutable after Open, the
// schedule cache is internally sharded and locked, and every Edit call
// builds its output into private state. Schedulers are memoized per
// editing configuration (schedulerFor), so concurrent Edit calls with
// the same options share one worker pool and one cache instead of paying
// pool spin-up per call — the shape a long-running service (cmd/eeld)
// needs.
type Editor struct {
	exe   *exe.Exe
	insts []sparc.Inst
	graph *cfg.Graph
	// cache memoizes per-block schedules across this editor's Edit
	// passes, so repeated editing of hot blocks skips rescheduling. It
	// may be shared with other Editors (OpenShared).
	cache *core.Cache

	// schedMu guards scheds, the per-configuration scheduler memo.
	// core.Scheduler is safe for concurrent ScheduleBlocks use, so one
	// instance serves every in-flight Edit with the same options.
	schedMu sync.Mutex
	scheds  map[schedKey]*core.Scheduler
}

// schedKey identifies a memoizable scheduling configuration: everything
// in core.Options that changes scheduler construction. Tracing
// schedulers are never memoized (the sink is per-run state).
type schedKey struct {
	machine         spawn.Machine
	conservativeMem bool
	chainFirst      bool
	noReorder       bool
	oracle          core.Oracle
	engine          core.Engine
	workers         int
	cache           *core.Cache
	obs             *obs.Registry
}

// Open decodes an executable's text segment and builds its control-flow
// graph. The editor gets a private schedule cache; services sharing one
// cache across many executables use OpenShared.
func Open(x *exe.Exe) (*Editor, error) {
	return OpenShared(x, core.NewCache(0))
}

// OpenShared is Open with a caller-supplied schedule cache, so many
// Editors (one per admitted executable, in cmd/eeld) share one sharded,
// spillable cache. cache must not be nil.
func OpenShared(x *exe.Exe, cache *core.Cache) (*Editor, error) {
	if cache == nil {
		return nil, fmt.Errorf("eel: OpenShared needs a cache")
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	insts, err := sparc.DecodeAll(x.Text)
	if err != nil {
		return nil, fmt.Errorf("eel: %w", err)
	}
	graph, err := cfg.Build(insts)
	if err != nil {
		return nil, fmt.Errorf("eel: %w", err)
	}
	return &Editor{exe: x, insts: insts, graph: graph, cache: cache}, nil
}

// Exe returns the opened executable.
func (ed *Editor) Exe() *exe.Exe { return ed.exe }

// Graph returns the executable's control-flow graph.
func (ed *Editor) Graph() *cfg.Graph { return ed.graph }

// Insts returns the decoded text segment.
func (ed *Editor) Insts() []sparc.Inst { return ed.insts }

// Cache returns the editor's schedule cache, shared by every Edit pass
// that does not override Options.Sched.Cache. Callers inspect it for
// effectiveness reporting (hit/miss counts, shard occupancy).
func (ed *Editor) Cache() *core.Cache { return ed.cache }

// Instrumenter is a tool that selects and places instrumentation (the
// "Profiling Tool" box in Figure 3). Setup runs once, after analysis, and
// may extend the executable's data segment (e.g. to allocate counters);
// Instrument returns the instructions to insert at the top of each block,
// marked Instrumented, or nil to leave the block alone.
type Instrumenter interface {
	Setup(ed *Editor) error
	Instrument(b *cfg.Block) []sparc.Inst
}

// BlockScheduler reorders one basic block; core.Scheduler implements it.
// The workload generator plugs in a stronger best-of-N scheduler here to
// play the role of the vendor compiler.
type BlockScheduler interface {
	ScheduleBlock(block []sparc.Inst) ([]sparc.Inst, error)
}

// BlocksScheduler is a BlockScheduler that can schedule a whole batch of
// blocks at once (possibly concurrently, as core.Scheduler does). Edit
// prefers this path: blocks carry no cross-block scheduler state, so
// batching changes nothing about the output bytes, only the wall clock.
type BlocksScheduler interface {
	BlockScheduler
	ScheduleBlocks(blocks [][]sparc.Inst) ([][]sparc.Inst, error)
}

// BlocksCtxScheduler is a BlocksScheduler that also accepts a context
// carrying a request trace (core.Scheduler implements it). EditCtx
// prefers this path so the scheduler's per-phase spans land under the
// edit's eel.schedule span.
type BlocksCtxScheduler interface {
	BlocksScheduler
	ScheduleBlocksCtx(ctx context.Context, blocks [][]sparc.Inst) ([][]sparc.Inst, error)
}

// Options configure an editing pass.
type Options struct {
	// Machine selects the scheduling model. Required when Schedule is set.
	Machine *spawn.Model
	// Schedule reorders each edited block (original and instrumentation
	// instructions together) with the paper's list scheduler.
	Schedule bool
	// Sched passes through scheduler options (aliasing rules, ablations).
	Sched core.Options
	// SchedPipeline overrides the stall oracle driving the scheduler
	// (default: the machine's SADL pipeline model). The workload
	// generator passes a hardware model here to emulate vendor-compiler
	// scheduling.
	SchedPipeline core.Pipeline
	// Scheduler overrides the scheduler entirely.
	Scheduler BlockScheduler
}

// Edit produces a new executable: instrumentation from tool (which may be
// nil for a pure rescheduling pass) is inserted block by block, blocks are
// optionally scheduled, the text is re-laid-out, and branch and call
// displacements are re-encoded. The input executable is not modified.
func (ed *Editor) Edit(tool Instrumenter, opts Options) (*exe.Exe, error) {
	return ed.EditCtx(context.Background(), tool, opts)
}

// EditCtx is Edit with an optional request trace carried in ctx
// (obs.WithTrace): the edit's phases are recorded as eel.instrument /
// eel.schedule / eel.layout child spans, with the scheduler's own phase
// spans nested under eel.schedule. The trace travels only through the
// context — never through Options — so scheduler memoization
// (schedulerFor) is unaffected by tracing.
func (ed *Editor) EditCtx(ctx context.Context, tool Instrumenter, opts Options) (*exe.Exe, error) {
	if opts.Schedule && opts.Machine == nil {
		return nil, fmt.Errorf("eel: scheduling requested without a machine model")
	}
	// Work on a copy so the tool's Setup (data allocation) cannot corrupt
	// the original image.
	out := &exe.Exe{
		Entry:    ed.exe.Entry,
		TextBase: ed.exe.TextBase,
		DataBase: ed.exe.DataBase,
		Data:     append([]byte(nil), ed.exe.Data...),
		BSSSize:  ed.exe.BSSSize,
		Symbols:  append([]exe.Symbol(nil), ed.exe.Symbols...),
	}
	edited := &Editor{exe: out, insts: ed.insts, graph: ed.graph}
	if tool != nil {
		if err := tool.Setup(edited); err != nil {
			return nil, fmt.Errorf("eel: instrumenter setup: %w", err)
		}
	}

	var sched BlockScheduler
	if opts.Schedule {
		switch {
		case opts.Scheduler != nil:
			sched = opts.Scheduler
		case opts.SchedPipeline != nil:
			if f := pipelineFactory(opts.SchedPipeline); f != nil {
				sched = core.NewWithFactory(f, opts.Machine, opts.Sched)
			} else {
				sched = core.NewWith(opts.SchedPipeline, opts.Machine, opts.Sched)
			}
		default:
			sc := opts.Sched
			if sc.Cache == nil {
				sc.Cache = ed.cache
			}
			sched = ed.schedulerFor(opts.Machine, sc)
		}
	}

	// Phase spans land in the scheduler's registry when one is attached,
	// so -metrics exports show where an edit's wall and CPU time went;
	// the same phases land on the request trace when ctx carries one.
	reg := opts.Sched.Obs
	tr, parent := obs.TraceParentFrom(ctx)

	// Pass 1a: rebuild each block's instruction sequence (instrumentation
	// prepended), then schedule the whole batch — concurrently when the
	// scheduler supports it.
	span := reg.StartSpan("eel.instrument")
	tspan := tr.StartChild("eel.instrument", parent)
	blocks := make([][]sparc.Inst, len(ed.graph.Blocks))
	for i, b := range ed.graph.Blocks {
		block := append([]sparc.Inst(nil), b.Insts...)
		if tool != nil {
			if added := tool.Instrument(b); len(added) > 0 {
				block = append(added, block...)
			}
		}
		blocks[i] = block
	}
	span.End()
	tspan.End()
	span = reg.StartSpan("eel.schedule")
	tspan = tr.StartChild("eel.schedule", parent)
	switch s := sched.(type) {
	case nil:
	case BlocksCtxScheduler:
		scheduled, err := s.ScheduleBlocksCtx(obs.WithTraceParent(ctx, tr, tspan.Idx()), blocks)
		if err != nil {
			return nil, fmt.Errorf("eel: scheduling: %w", err)
		}
		blocks = scheduled
	case BlocksScheduler:
		scheduled, err := s.ScheduleBlocks(blocks)
		if err != nil {
			return nil, fmt.Errorf("eel: scheduling: %w", err)
		}
		blocks = scheduled
	default:
		for i, block := range blocks {
			scheduled, err := s.ScheduleBlock(block)
			if err != nil {
				return nil, fmt.Errorf("eel: scheduling block %d: %w", ed.graph.Blocks[i].Index, err)
			}
			blocks[i] = scheduled
		}
	}
	span.End()
	tspan.End()
	span = reg.StartSpan("eel.layout")
	tspan = tr.StartChild("eel.layout", parent)
	defer span.End()
	defer tspan.End()

	if _, err := ed.assemble(out, blocks, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// assemble is the editing back half: lay the blocks out in original block
// order, retarget every CTI through the new block-leader positions,
// encode the text, and remap the entry point and text symbols. It returns
// the layout map from old block start index to new text index.
//
// Blocks whose index is set in replaced carry a self-contained rewrite —
// a software-pipelined loop, say — whose CTIs target within the
// replacement with displacements already final. Those blocks skip the
// terminal-CTI validation and the retarget pass; everything around them
// still shifts and retargets normally, which is how code growth works:
// the replacement occupies its block's layout slot, external CTIs into
// the block land on the replacement's first instruction, and the
// replacement's last instruction falls through to the block that always
// followed.
func (ed *Editor) assemble(out *exe.Exe, blocks [][]sparc.Inst, replaced map[int]bool) (map[int]int, error) {
	// Pass 1b: lay the blocks out, recording the new start index of every
	// old block leader.
	newStart := make(map[int]int, len(ed.graph.Blocks))
	var newInsts []sparc.Inst
	// ctiAt maps the position of each emitted CTI to its owning old block.
	type pendingCTI struct {
		newIndex int
		oldIndex int // old index of the CTI instruction
	}
	var pending []pendingCTI

	for i, b := range ed.graph.Blocks {
		newStart[b.Start] = len(newInsts)
		block := blocks[i]
		if b.HasCTI && !replaced[i] {
			// Locate the CTI in the (possibly reordered, possibly
			// shrunken) block: it is the unique CTI instruction.
			pos := -1
			for i, inst := range block {
				if inst.IsCTI() {
					if pos >= 0 {
						return nil, fmt.Errorf("eel: block %d has multiple CTIs after editing", b.Index)
					}
					pos = i
				}
			}
			if pos < 0 || pos != len(block)-2 {
				return nil, fmt.Errorf("eel: block %d CTI not in terminal position", b.Index)
			}
			pending = append(pending, pendingCTI{
				newIndex: len(newInsts) + pos,
				oldIndex: b.End - 2,
			})
		}
		newInsts = append(newInsts, block...)
	}

	// Pass 2: retarget branches and calls.
	for _, p := range pending {
		inst := &newInsts[p.newIndex]
		switch inst.Op {
		case sparc.OpBicc, sparc.OpFBfcc, sparc.OpCall:
			oldTarget := p.oldIndex + int(inst.Disp)
			nt, ok := newStart[oldTarget]
			if !ok {
				return nil, fmt.Errorf("eel: CTI target %d is not a block leader", oldTarget)
			}
			inst.Disp = int32(nt - p.newIndex)
		case sparc.OpJmpl:
			// Indirect: return addresses are produced at run time by the
			// edited call instructions, so nothing to do.
		}
	}

	// Pass 3: encode.
	words := make([]uint32, len(newInsts))
	for i, inst := range newInsts {
		w, err := sparc.Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("eel: encoding instruction %d (%v): %w", i, inst, err)
		}
		words[i] = w
	}
	out.Text = words

	// Remap entry and text symbols through block leaders.
	remap := func(addr uint32) (uint32, error) {
		idx, err := ed.exe.IndexOf(addr)
		if err != nil {
			return 0, err
		}
		ni, ok := newStart[idx]
		if !ok {
			return 0, fmt.Errorf("eel: address %#x is not a block leader", addr)
		}
		return out.TextBase + uint32(ni)*exe.WordSize, nil
	}
	entry, err := remap(ed.exe.Entry)
	if err != nil {
		return nil, err
	}
	out.Entry = entry
	for i, s := range out.Symbols {
		if !ed.exe.InText(s.Addr) {
			continue
		}
		na, err := remap(s.Addr)
		if err != nil {
			return nil, fmt.Errorf("eel: symbol %q: %w", s.Name, err)
		}
		out.Symbols[i].Addr = na
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("eel: edited executable invalid: %w", err)
	}
	return newStart, nil
}

// schedulerFor returns the memoized scheduler for a configuration,
// building it on first use. One core.Scheduler per configuration means
// concurrent Edit calls share its worker pool, scratch arenas and cache
// wiring instead of rebuilding them per request. Tracing runs get a
// fresh scheduler: the trace sink is per-run state, and traced blocks
// bypass the cache anyway.
func (ed *Editor) schedulerFor(model *spawn.Model, sc core.Options) *core.Scheduler {
	if sc.Trace != nil {
		return core.New(model, sc)
	}
	key := schedKey{
		machine:         model.Machine,
		conservativeMem: sc.ConservativeMem,
		chainFirst:      sc.ChainFirst,
		noReorder:       sc.NoReorder,
		oracle:          sc.Oracle,
		engine:          sc.Engine,
		workers:         sc.Workers,
		cache:           sc.Cache,
		obs:             sc.Obs,
	}
	ed.schedMu.Lock()
	defer ed.schedMu.Unlock()
	if s, ok := ed.scheds[key]; ok {
		return s
	}
	s := core.New(model, sc)
	if ed.scheds == nil {
		ed.scheds = make(map[schedKey]*core.Scheduler)
	}
	ed.scheds[key] = s
	return s
}

// Close releases the persistent worker goroutines of every scheduler
// this editor memoized. Optional (dropped schedulers are reclaimed by a
// finalizer) and idempotent; the editor stays usable — a later Edit
// builds fresh schedulers.
func (ed *Editor) Close() {
	ed.schedMu.Lock()
	scheds := ed.scheds
	ed.scheds = nil
	ed.schedMu.Unlock()
	for _, s := range scheds {
		s.Close()
	}
}

// Reschedule is a pure rescheduling pass: no instrumentation, every block
// reordered by the paper's scheduler (the Table 2 baseline).
func (ed *Editor) Reschedule(machine *spawn.Model, sched core.Options) (*exe.Exe, error) {
	return ed.Edit(nil, Options{Machine: machine, Schedule: true, Sched: sched})
}

// pipelineFactory derives a per-worker oracle factory from a caller-
// supplied stall oracle, so SchedPipeline users still get the parallel
// scheduling path. Oracles that can replicate themselves (sim.HWPipeline
// via Fork) and the standard pipe oracles (compiled FastState, reference
// State) are recognized; anything else returns nil and schedules
// sequentially on the single instance.
func pipelineFactory(p core.Pipeline) func() core.Pipeline {
	switch v := p.(type) {
	case interface{ Fork() core.Pipeline }:
		return func() core.Pipeline { return v.Fork() }
	case *pipe.FastState:
		return func() core.Pipeline { return pipe.NewFastState(v.Model()) }
	case *pipe.State:
		return func() core.Pipeline { return pipe.NewState(v.Model()) }
	}
	return nil
}
