package sparc

import "fmt"

// reverse lookup tables built from opTable.
var (
	aluByOp3 = func() map[uint32]Op {
		m := make(map[uint32]Op)
		for op := Op(1); op < NumOps; op++ {
			info := opTable[op]
			if info.mem || info.opf != 0 {
				continue
			}
			switch op {
			case OpSethi, OpBicc, OpFBfcc, OpCall, OpNop:
				continue
			}
			m[info.op3] = op
		}
		return m
	}()
	memByOp3 = func() map[uint32]Op {
		m := make(map[uint32]Op)
		for op := Op(1); op < NumOps; op++ {
			if opTable[op].mem {
				m[opTable[op].op3] = op
			}
		}
		return m
	}()
	fpByOpf = func() map[uint32]Op {
		m := make(map[uint32]Op)
		for op := Op(1); op < NumOps; op++ {
			info := opTable[op]
			if info.opf != 0 {
				m[info.opf] = op
			}
		}
		return m
	}()
)

// signExtend interprets the low n bits of w as a signed two's-complement
// value.
func signExtend(w uint32, n uint) int32 {
	shift := 32 - n
	return int32(w<<shift) >> shift
}

// Decode decodes a 32-bit SPARC V8 instruction word. It is the inverse of
// Encode over the supported subset: Decode(Encode(i)) == i for every valid
// Inst (with Instrumented cleared).
func Decode(w uint32) (Inst, error) {
	switch w >> 30 {
	case 0: // format 2
		op2 := (w >> 22) & 7
		switch op2 {
		case op2Sethi:
			rd := Reg((w >> 25) & 31)
			imm := int32(w & 0x3fffff)
			if rd == G0 && imm == 0 {
				return Inst{Op: OpNop, UseImm: true}, nil
			}
			return Inst{Op: OpSethi, Rd: rd, Imm: imm, UseImm: true}, nil
		case op2Bicc, op2FBfcc:
			op := OpBicc
			if op2 == op2FBfcc {
				op = OpFBfcc
			}
			return Inst{
				Op:    op,
				Cond:  Cond((w >> 25) & 15),
				Annul: w>>29&1 == 1,
				Disp:  signExtend(w, 22),
			}, nil
		}
		return Inst{}, fmt.Errorf("sparc: unsupported format-2 op2=%d in %#08x", op2, w)

	case 1: // call
		return Inst{Op: OpCall, Disp: signExtend(w, 30)}, nil

	case 2: // arithmetic / FPop / ticc
		op3 := (w >> 19) & 0x3f
		switch op3 {
		case op3FPop1, op3FPop2:
			opf := (w >> 5) & 0x1ff
			op, ok := fpByOpf[opf]
			if !ok {
				return Inst{}, fmt.Errorf("sparc: unsupported opf=%#x in %#08x", opf, w)
			}
			inst := Inst{Op: op, Rs2: FReg(int(w & 31))}
			if !opTable[op].fpop2 {
				inst.Rd = FReg(int((w >> 25) & 31))
			} else {
				inst.Rs1 = FReg(int((w >> 14) & 31))
			}
			if !inst.fpSingleSrc() && !opTable[op].fpop2 {
				inst.Rs1 = FReg(int((w >> 14) & 31))
			}
			return inst, nil
		case 0x3a: // Ticc
			inst := Inst{
				Op:   OpTicc,
				Cond: Cond((w >> 25) & 15),
				Rs1:  Reg((w >> 14) & 31),
			}
			if w>>13&1 == 1 {
				inst.UseImm = true
				inst.Imm = int32(w & 0x7f)
			} else {
				inst.Rs2 = Reg(w & 31)
			}
			return inst, nil
		}
		op, ok := aluByOp3[op3]
		if !ok {
			return Inst{}, fmt.Errorf("sparc: unsupported op3=%#x in %#08x", op3, w)
		}
		inst := Inst{
			Op:  op,
			Rd:  Reg((w >> 25) & 31),
			Rs1: Reg((w >> 14) & 31),
		}
		if w>>13&1 == 1 {
			inst.UseImm = true
			inst.Imm = signExtend(w, 13)
		} else {
			inst.Rs2 = Reg(w & 31)
		}
		return inst, nil

	case 3: // memory
		op3 := (w >> 19) & 0x3f
		op, ok := memByOp3[op3]
		if !ok {
			return Inst{}, fmt.Errorf("sparc: unsupported memory op3=%#x in %#08x", op3, w)
		}
		inst := Inst{
			Op:  op,
			Rs1: Reg((w >> 14) & 31),
		}
		rd := (w >> 25) & 31
		if op == OpLdf || op == OpLddf || op == OpStf || op == OpStdf {
			inst.Rd = FReg(int(rd))
		} else {
			inst.Rd = Reg(rd)
		}
		if w>>13&1 == 1 {
			inst.UseImm = true
			inst.Imm = signExtend(w, 13)
		} else {
			inst.Rs2 = Reg(w & 31)
		}
		return inst, nil
	}
	panic("unreachable")
}

// DecodeAll decodes a text segment (big-endian 32-bit words) into
// instructions. It is the disassembly entry point used by the editing
// library.
func DecodeAll(words []uint32) ([]Inst, error) {
	insts := make([]Inst, len(words))
	for i, w := range words {
		inst, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("at word %d: %w", i, err)
		}
		insts[i] = inst
	}
	return insts, nil
}
