// Package sparc implements a SPARC V8 instruction-set substrate: typed
// instruction values, bit-exact binary encoding and decoding, a text
// assembler, and a disassembler.
//
// EEL (Larus & Schnarr, PLDI '95) edits real SPARC binaries; this package
// plays the role of the hand-written instruction-manipulation layer that the
// paper's Spawn tool generates from a SADL description. It covers the SPARC
// V8 subset exercised by the paper's profiling experiments: integer ALU ops,
// shifts, sethi, loads/stores (integer and floating point), integer and
// floating-point branches with delay slots, call/jmpl, save/restore,
// floating-point arithmetic, and traps.
package sparc

import "fmt"

// Reg identifies an architectural register. Integer registers occupy
// 0..31 (%g0..%i7), floating-point registers 32..63 (%f0..%f31), and a few
// pseudo-registers follow for dependence analysis: the integer condition
// codes, the floating-point condition codes, and the Y register.
type Reg uint8

const (
	// Integer registers. %g0 is hardwired to zero.
	G0 Reg = iota
	G1
	G2
	G3
	G4
	G5
	G6
	G7
	O0
	O1
	O2
	O3
	O4
	O5
	SP // %o6, the stack pointer
	O7 // holds the return address after call
	L0
	L1
	L2
	L3
	L4
	L5
	L6
	L7
	I0
	I1
	I2
	I3
	I4
	I5
	FP // %i6, the frame pointer
	I7
)

// Floating-point register file base and pseudo-registers.
const (
	// FRegBase is the Reg value of %f0; %f<n> is FRegBase+n.
	FRegBase Reg = 32
	F0       Reg = FRegBase

	// ICC is the integer condition-code pseudo-register written by the
	// cc-setting ALU ops and read by Bicc branches.
	ICC Reg = 64
	// FCC is the floating-point condition-code pseudo-register written by
	// fcmp and read by FBfcc branches.
	FCC Reg = 65
	// YReg is the Y register used by multiply/divide.
	YReg Reg = 66

	// NumRegs is the size of a dense array indexed by Reg.
	NumRegs = 67
)

// FReg returns the Reg value for floating-point register %f<n>.
func FReg(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("sparc: bad fp register f%d", n))
	}
	return FRegBase + Reg(n)
}

// IsInt reports whether r is one of the 32 integer registers.
func (r Reg) IsInt() bool { return r < 32 }

// IsFloat reports whether r is one of the 32 floating-point registers.
func (r Reg) IsFloat() bool { return r >= FRegBase && r < FRegBase+32 }

// FNum returns the floating-point register number for a float register.
func (r Reg) FNum() int {
	if !r.IsFloat() {
		panic("sparc: FNum on non-float register")
	}
	return int(r - FRegBase)
}

var intRegNames = [32]string{
	"%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
	"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
}

// String returns the assembler name of the register (e.g. "%o3", "%f12").
func (r Reg) String() string {
	switch {
	case r < 32:
		return intRegNames[r]
	case r.IsFloat():
		return fmt.Sprintf("%%f%d", r.FNum())
	case r == ICC:
		return "%icc"
	case r == FCC:
		return "%fcc"
	case r == YReg:
		return "%y"
	}
	return fmt.Sprintf("%%r?%d", uint8(r))
}

// ParseReg parses an assembler register name. It accepts the canonical
// names produced by Reg.String plus the aliases %o6 and %i6.
func ParseReg(s string) (Reg, error) {
	if len(s) < 2 || s[0] != '%' {
		return 0, fmt.Errorf("sparc: bad register %q", s)
	}
	body := s[1:]
	switch body {
	case "sp", "o6":
		return SP, nil
	case "fp", "i6":
		return FP, nil
	case "icc":
		return ICC, nil
	case "fcc":
		return FCC, nil
	case "y":
		return YReg, nil
	}
	if len(body) < 2 {
		return 0, fmt.Errorf("sparc: bad register %q", s)
	}
	n := 0
	for _, c := range body[1:] {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		n = n*10 + int(c-'0')
	}
	switch body[0] {
	case 'g':
		if n > 7 {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		return G0 + Reg(n), nil
	case 'o':
		if n > 7 {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		return O0 + Reg(n), nil
	case 'l':
		if n > 7 {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		return L0 + Reg(n), nil
	case 'i':
		if n > 7 {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		return I0 + Reg(n), nil
	case 'f':
		if n > 31 {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		return FReg(n), nil
	}
	return 0, fmt.Errorf("sparc: bad register %q", s)
}
