package sparc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDisassembleAssembleRoundTrip: the disassembler's output is valid
// assembler input, and re-assembling reproduces the identical encoding —
// for every opcode in the canonical corpus and a large random sample.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	check := func(inst Inst) {
		t.Helper()
		text := inst.Mnemonic()
		// Inst.String already embeds the mnemonic for most forms; use it,
		// but branches print "b<cond> .+N" which the assembler accepts.
		line := inst.String()
		_ = text
		re, err := Assemble(line)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", line, err)
		}
		if len(re) != 1 {
			// set-style pseudo expansion cannot occur from disassembly,
			// except sethi which is 1:1.
			t.Fatalf("Assemble(%q) produced %d instructions", line, len(re))
		}
		w1, err := Encode(inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", inst, err)
		}
		w2, err := Encode(re[0])
		if err != nil {
			t.Fatalf("re-Encode of %q: %v", line, err)
		}
		if w1 != w2 {
			t.Fatalf("round trip %q: %#08x -> %#08x", line, w1, w2)
		}
	}

	skip := func(inst Inst) bool {
		switch inst.Op {
		case OpRdy, OpWry, OpJmpl:
			// rd/wr/jmpl print in forms with %y or addressing the
			// assembler parses specially; covered by dedicated tests.
			return true
		}
		// Annulled branch text "ba,a .+2" round trips; "bn" prints as
		// plain b-with-cond-n and is fine.
		return false
	}

	for _, inst := range canonicalInsts() {
		if skip(inst) {
			continue
		}
		check(inst)
	}

	r := rand.New(rand.NewSource(31))
	for i := 0; i < 1000; i++ {
		inst := randomInst(r)
		if skip(inst) {
			continue
		}
		check(inst)
	}
}

// TestJmplRdWrTextForms covers the special-syntax instructions explicitly.
func TestJmplRdWrTextForms(t *testing.T) {
	cases := []string{
		"jmpl %o7 + 8, %g0",
		"jmpl [%g1 + 4], %g2",
		"rd %y, %g3",
		"wr %g1, %g2, %y",
		"wr %g1, 5, %y",
	}
	for _, line := range cases {
		insts, err := Assemble(line)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", line, err)
		}
		if _, err := Encode(insts[0]); err != nil {
			t.Fatalf("Encode(%q): %v", line, err)
		}
	}
}

// TestNumericBranchTargets: the ".+N" form matches label-based assembly.
func TestNumericBranchTargets(t *testing.T) {
	a, err := Assemble("bne .+2\nnop\nta 0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assemble("bne out\nnop\nout: ta 0")
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("numeric and label branches differ: %v vs %v", a[0], b[0])
	}
	if _, err := Assemble("call .+4\nnop\nta 0"); err != nil {
		t.Errorf("numeric call rejected: %v", err)
	}
	if !strings.Contains(a[0].String(), ".+2") {
		t.Errorf("branch prints %q", a[0].String())
	}
}
