package sparc

// Op identifies a SPARC V8 instruction mnemonic. The set below is the
// subset EEL's profiling experiments exercise; it is closed under everything
// the workload generator, the QPT2 instrumenter, and the examples emit.
type Op uint8

const (
	OpInvalid Op = iota

	// Integer ALU (format 3, op=2).
	OpAdd
	OpAddcc
	OpAddx
	OpSub
	OpSubcc
	OpSubx
	OpAnd
	OpAndcc
	OpAndn
	OpOr
	OpOrcc
	OpOrn
	OpXor
	OpXorcc
	OpXnor
	OpSll
	OpSrl
	OpSra
	OpUmul
	OpSmul
	OpUdiv
	OpSdiv
	OpRdy
	OpWry
	OpSave
	OpRestore
	OpJmpl
	OpTicc // trap on integer condition codes (we use "ta" = trap always)

	// Format 2.
	OpSethi
	OpBicc  // integer conditional branch family; condition in Inst.Cond
	OpFBfcc // floating-point conditional branch family

	// Format 1.
	OpCall

	// Memory (format 3, op=3).
	OpLd   // ld   [addr], rd      (32-bit integer load)
	OpLdub // ldub
	OpLdsb // ldsb
	OpLduh // lduh
	OpLdsh // ldsh
	OpLdd  // ldd (even/odd integer pair)
	OpSt   // st
	OpStb  // stb
	OpSth  // sth
	OpStd  // std
	OpLdf  // ld [addr], %f
	OpLddf // ldd [addr], %f pair
	OpStf  // st %f, [addr]
	OpStdf // std %f pair, [addr]
	OpSwap // swap [addr], rd
	OpLdstub

	// Floating point (format 3, op=2, op3=FPop1/FPop2).
	OpFadds
	OpFaddd
	OpFsubs
	OpFsubd
	OpFmuls
	OpFmuld
	OpFdivs
	OpFdivd
	OpFsqrts
	OpFsqrtd
	OpFmovs
	OpFnegs
	OpFabss
	OpFitos
	OpFitod
	OpFstoi
	OpFdtoi
	OpFstod
	OpFdtos
	OpFcmps
	OpFcmpd

	// OpNop is sethi 0, %g0; kept distinct so schedules and listings read
	// naturally.
	OpNop

	NumOps = iota
)

// Cond enumerates Bicc condition codes (SPARC V8 table 5-5).
type Cond uint8

const (
	CondN   Cond = 0 // never
	CondE   Cond = 1 // equal
	CondLE  Cond = 2
	CondL   Cond = 3
	CondLEU Cond = 4
	CondCS  Cond = 5
	CondNeg Cond = 6
	CondVS  Cond = 7
	CondA   Cond = 8 // always
	CondNE  Cond = 9
	CondG   Cond = 10
	CondGE  Cond = 11
	CondGU  Cond = 12
	CondCC  Cond = 13
	CondPos Cond = 14
	CondVC  Cond = 15
)

var condNames = [16]string{
	"n", "e", "le", "l", "leu", "cs", "neg", "vs",
	"a", "ne", "g", "ge", "gu", "cc", "pos", "vc",
}

// FCond names for FBfcc use the same 4-bit space with different meanings;
// we support the subset the generator emits.
var fcondNames = [16]string{
	"n", "ne", "lg", "ul", "l", "ug", "g", "u",
	"a", "e", "ue", "ge", "uge", "le", "ule", "o",
}

// Class partitions opcodes by the functional unit family they occupy;
// the workload generator and the timing models use it.
type Class uint8

const (
	ClassALU Class = iota
	ClassShift
	ClassMulDiv
	ClassLoad
	ClassStore
	ClassBranch // Bicc, FBfcc
	ClassCall   // call, jmpl
	ClassSethi
	ClassFPAdd // fadd/fsub/fcmp/fmov/fneg/fabs/conversions
	ClassFPMul
	ClassFPDiv // fdiv, fsqrt
	ClassTrap
	ClassOther
)

type opInfo struct {
	name  string
	class Class
	// format 3 op3 value (for the encoder); meaning depends on group.
	op3 uint32
	// true when the op lives in the op=3 (memory) space.
	mem bool
	// opf value for FPop instructions.
	opf uint32
	// true for FPop2 (fcmp) rather than FPop1.
	fpop2 bool
}

var opTable = [NumOps]opInfo{
	OpAdd:     {name: "add", class: ClassALU, op3: 0x00},
	OpAddcc:   {name: "addcc", class: ClassALU, op3: 0x10},
	OpAddx:    {name: "addx", class: ClassALU, op3: 0x08},
	OpSub:     {name: "sub", class: ClassALU, op3: 0x04},
	OpSubcc:   {name: "subcc", class: ClassALU, op3: 0x14},
	OpSubx:    {name: "subx", class: ClassALU, op3: 0x0c},
	OpAnd:     {name: "and", class: ClassALU, op3: 0x01},
	OpAndcc:   {name: "andcc", class: ClassALU, op3: 0x11},
	OpAndn:    {name: "andn", class: ClassALU, op3: 0x05},
	OpOr:      {name: "or", class: ClassALU, op3: 0x02},
	OpOrcc:    {name: "orcc", class: ClassALU, op3: 0x12},
	OpOrn:     {name: "orn", class: ClassALU, op3: 0x06},
	OpXor:     {name: "xor", class: ClassALU, op3: 0x03},
	OpXorcc:   {name: "xorcc", class: ClassALU, op3: 0x13},
	OpXnor:    {name: "xnor", class: ClassALU, op3: 0x07},
	OpSll:     {name: "sll", class: ClassShift, op3: 0x25},
	OpSrl:     {name: "srl", class: ClassShift, op3: 0x26},
	OpSra:     {name: "sra", class: ClassShift, op3: 0x27},
	OpUmul:    {name: "umul", class: ClassMulDiv, op3: 0x0a},
	OpSmul:    {name: "smul", class: ClassMulDiv, op3: 0x0b},
	OpUdiv:    {name: "udiv", class: ClassMulDiv, op3: 0x0e},
	OpSdiv:    {name: "sdiv", class: ClassMulDiv, op3: 0x0f},
	OpRdy:     {name: "rd", class: ClassOther, op3: 0x28},
	OpWry:     {name: "wr", class: ClassOther, op3: 0x30},
	OpSave:    {name: "save", class: ClassALU, op3: 0x3c},
	OpRestore: {name: "restore", class: ClassALU, op3: 0x3d},
	OpJmpl:    {name: "jmpl", class: ClassCall, op3: 0x38},
	OpTicc:    {name: "ta", class: ClassTrap, op3: 0x3a},

	OpSethi: {name: "sethi", class: ClassSethi},
	OpBicc:  {name: "b", class: ClassBranch},
	OpFBfcc: {name: "fb", class: ClassBranch},
	OpCall:  {name: "call", class: ClassCall},

	OpLd:     {name: "ld", class: ClassLoad, op3: 0x00, mem: true},
	OpLdub:   {name: "ldub", class: ClassLoad, op3: 0x01, mem: true},
	OpLdsb:   {name: "ldsb", class: ClassLoad, op3: 0x09, mem: true},
	OpLduh:   {name: "lduh", class: ClassLoad, op3: 0x02, mem: true},
	OpLdsh:   {name: "ldsh", class: ClassLoad, op3: 0x0a, mem: true},
	OpLdd:    {name: "ldd", class: ClassLoad, op3: 0x03, mem: true},
	OpSt:     {name: "st", class: ClassStore, op3: 0x04, mem: true},
	OpStb:    {name: "stb", class: ClassStore, op3: 0x05, mem: true},
	OpSth:    {name: "sth", class: ClassStore, op3: 0x06, mem: true},
	OpStd:    {name: "std", class: ClassStore, op3: 0x07, mem: true},
	OpLdf:    {name: "ldf", class: ClassLoad, op3: 0x20, mem: true},
	OpLddf:   {name: "lddf", class: ClassLoad, op3: 0x23, mem: true},
	OpStf:    {name: "stf", class: ClassStore, op3: 0x24, mem: true},
	OpStdf:   {name: "stdf", class: ClassStore, op3: 0x27, mem: true},
	OpSwap:   {name: "swap", class: ClassLoad, op3: 0x0f, mem: true},
	OpLdstub: {name: "ldstub", class: ClassLoad, op3: 0x0d, mem: true},

	OpFadds:  {name: "fadds", class: ClassFPAdd, opf: 0x41},
	OpFaddd:  {name: "faddd", class: ClassFPAdd, opf: 0x42},
	OpFsubs:  {name: "fsubs", class: ClassFPAdd, opf: 0x45},
	OpFsubd:  {name: "fsubd", class: ClassFPAdd, opf: 0x46},
	OpFmuls:  {name: "fmuls", class: ClassFPMul, opf: 0x49},
	OpFmuld:  {name: "fmuld", class: ClassFPMul, opf: 0x4a},
	OpFdivs:  {name: "fdivs", class: ClassFPDiv, opf: 0x4d},
	OpFdivd:  {name: "fdivd", class: ClassFPDiv, opf: 0x4e},
	OpFsqrts: {name: "fsqrts", class: ClassFPDiv, opf: 0x29},
	OpFsqrtd: {name: "fsqrtd", class: ClassFPDiv, opf: 0x2a},
	OpFmovs:  {name: "fmovs", class: ClassFPAdd, opf: 0x01},
	OpFnegs:  {name: "fnegs", class: ClassFPAdd, opf: 0x05},
	OpFabss:  {name: "fabss", class: ClassFPAdd, opf: 0x09},
	OpFitos:  {name: "fitos", class: ClassFPAdd, opf: 0xc4},
	OpFitod:  {name: "fitod", class: ClassFPAdd, opf: 0xc8},
	OpFstoi:  {name: "fstoi", class: ClassFPAdd, opf: 0xd1},
	OpFdtoi:  {name: "fdtoi", class: ClassFPAdd, opf: 0xd2},
	OpFstod:  {name: "fstod", class: ClassFPAdd, opf: 0xc9},
	OpFdtos:  {name: "fdtos", class: ClassFPAdd, opf: 0xc6},
	OpFcmps:  {name: "fcmps", class: ClassFPAdd, opf: 0x51, fpop2: true},
	OpFcmpd:  {name: "fcmpd", class: ClassFPAdd, opf: 0x52, fpop2: true},

	OpNop: {name: "nop", class: ClassALU},
}

// Name returns the base mnemonic ("add", "b", "ld", ...).
func (o Op) Name() string {
	if o < NumOps {
		return opTable[o].name
	}
	return "???"
}

// Class returns the functional-unit class of the opcode.
func (o Op) Class() Class {
	if o < NumOps {
		return opTable[o].class
	}
	return ClassOther
}

// IsLoad reports whether the opcode reads memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsFP reports whether the opcode executes in the floating-point pipeline.
func (o Op) IsFP() bool {
	switch o.Class() {
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		return true
	}
	return o == OpLdf || o == OpLddf || o == OpStf || o == OpStdf
}

// IsCTI reports whether the opcode is a control-transfer instruction
// (which on SPARC has an architectural delay slot).
func (o Op) IsCTI() bool {
	switch o {
	case OpBicc, OpFBfcc, OpCall, OpJmpl:
		return true
	}
	return false
}

// SetsICC reports whether the opcode writes the integer condition codes.
func (o Op) SetsICC() bool {
	switch o {
	case OpAddcc, OpSubcc, OpAndcc, OpOrcc, OpXorcc:
		return true
	}
	return false
}

// Doubleword reports whether a memory opcode moves a register pair.
func (o Op) Doubleword() bool {
	switch o {
	case OpLdd, OpStd, OpLddf, OpStdf:
		return true
	}
	return false
}

// opByName maps mnemonics (including condition-suffixed branch forms) to
// opcodes; built lazily by the assembler.
var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps*2)
	for op := Op(1); op < NumOps; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	// Aliases used in listings.
	m["mov"] = OpOr // mov reg/imm, rd == or %g0, src, rd
	m["cmp"] = OpSubcc
	m["ret"] = OpJmpl
	return m
}()
