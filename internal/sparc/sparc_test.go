package sparc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{G0, "%g0"}, {G7, "%g7"}, {O0, "%o0"}, {SP, "%sp"}, {O7, "%o7"},
		{L3, "%l3"}, {I0, "%i0"}, {FP, "%fp"}, {I7, "%i7"},
		{FReg(0), "%f0"}, {FReg(31), "%f31"},
		{ICC, "%icc"}, {FCC, "%fcc"}, {YReg, "%y"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestParseRegRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if r >= 32 && !r.IsFloat() && r != ICC && r != FCC && r != YReg {
			continue
		}
		got, err := ParseReg(r.String())
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("ParseReg(%q) = %d, want %d", r.String(), got, r)
		}
	}
}

func TestParseRegAliases(t *testing.T) {
	if r, err := ParseReg("%o6"); err != nil || r != SP {
		t.Errorf("ParseReg(%%o6) = %v, %v; want %%sp", r, err)
	}
	if r, err := ParseReg("%i6"); err != nil || r != FP {
		t.Errorf("ParseReg(%%i6) = %v, %v; want %%fp", r, err)
	}
	for _, bad := range []string{"", "%", "%x3", "%g9", "%f32", "g1", "%o", "%l99"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) succeeded, want error", bad)
		}
	}
}

// canonicalInsts is a corpus covering every opcode in a valid canonical form.
func canonicalInsts() []Inst {
	var out []Inst
	out = append(out,
		NewALU(OpAdd, G1, G2, G3),
		NewALUImm(OpAdd, G1, G2, -4096),
		NewALUImm(OpAdd, G1, G2, 4095),
		NewALU(OpAddcc, O0, O1, O2),
		NewALU(OpAddx, O0, O1, O2),
		NewALU(OpSub, L0, L1, L2),
		NewALUImm(OpSubcc, G0, G1, 17),
		NewALU(OpSubx, I0, I1, I2),
		NewALU(OpAnd, G1, G2, G3),
		NewALU(OpAndcc, G1, G2, G3),
		NewALU(OpAndn, G1, G2, G3),
		NewALU(OpOr, G1, G2, G3),
		NewALU(OpOrcc, G1, G2, G3),
		NewALU(OpOrn, G1, G2, G3),
		NewALU(OpXor, G1, G2, G3),
		NewALU(OpXorcc, G1, G2, G3),
		NewALU(OpXnor, G1, G2, G3),
		NewALUImm(OpSll, G1, G2, 3),
		NewALUImm(OpSrl, G1, G2, 31),
		NewALUImm(OpSra, G1, G2, 1),
		NewALU(OpUmul, G1, G2, G3),
		NewALU(OpSmul, G1, G2, G3),
		NewALU(OpUdiv, G1, G2, G3),
		NewALU(OpSdiv, G1, G2, G3),
		Inst{Op: OpRdy, Rd: G1},
		Inst{Op: OpWry, Rs1: G1, Rs2: G0},
		NewALUImm(OpSave, SP, SP, -96),
		NewALUImm(OpRestore, G0, G0, 0),
		NewJmpl(G0, O7, 8),
		NewTrap(0),
		NewSethi(G1, 0x12345),
		NewBranch(CondNE, -12),
		NewBranch(CondA, 100),
		Inst{Op: OpBicc, Cond: CondLE, Annul: true, Disp: 4},
		NewFBranch(CondE, 8),
		NewCall(1024),
		NewCall(-1024),
		NewLoad(OpLd, G1, G2, 8),
		NewLoadIdx(OpLd, G1, G2, G3),
		NewLoad(OpLdub, G1, G2, 0),
		NewLoad(OpLdsb, G1, G2, 1),
		NewLoad(OpLduh, G1, G2, 2),
		NewLoad(OpLdsh, G1, G2, -2),
		NewLoad(OpLdd, G2, G4, 16),
		NewStore(OpSt, G1, G2, 4),
		NewStore(OpStb, G1, G2, 0),
		NewStore(OpSth, G1, G2, 2),
		NewStore(OpStd, G2, G4, 8),
		NewLoad(OpLdf, FReg(1), G2, 4),
		NewLoad(OpLddf, FReg(2), G2, 8),
		NewStore(OpStf, FReg(1), G2, 4),
		NewStore(OpStdf, FReg(2), G2, 8),
		NewLoadIdx(OpSwap, G1, G2, G3),
		NewLoadIdx(OpLdstub, G1, G2, G3),
		NewALU(OpFadds, FReg(0), FReg(1), FReg(2)),
		NewALU(OpFaddd, FReg(0), FReg(2), FReg(4)),
		NewALU(OpFsubs, FReg(0), FReg(1), FReg(2)),
		NewALU(OpFsubd, FReg(0), FReg(2), FReg(4)),
		NewALU(OpFmuls, FReg(0), FReg(1), FReg(2)),
		NewALU(OpFmuld, FReg(0), FReg(2), FReg(4)),
		NewALU(OpFdivs, FReg(0), FReg(1), FReg(2)),
		NewALU(OpFdivd, FReg(0), FReg(2), FReg(4)),
		Inst{Op: OpFsqrts, Rs2: FReg(3), Rd: FReg(5)},
		Inst{Op: OpFsqrtd, Rs2: FReg(4), Rd: FReg(6)},
		Inst{Op: OpFmovs, Rs2: FReg(3), Rd: FReg(5)},
		Inst{Op: OpFnegs, Rs2: FReg(3), Rd: FReg(5)},
		Inst{Op: OpFabss, Rs2: FReg(3), Rd: FReg(5)},
		Inst{Op: OpFitos, Rs2: FReg(3), Rd: FReg(5)},
		Inst{Op: OpFitod, Rs2: FReg(3), Rd: FReg(6)},
		Inst{Op: OpFstoi, Rs2: FReg(3), Rd: FReg(5)},
		Inst{Op: OpFdtoi, Rs2: FReg(4), Rd: FReg(5)},
		Inst{Op: OpFstod, Rs2: FReg(3), Rd: FReg(6)},
		Inst{Op: OpFdtos, Rs2: FReg(4), Rd: FReg(5)},
		Inst{Op: OpFcmps, Rs1: FReg(1), Rs2: FReg(2), Rd: FRegBase},
		Inst{Op: OpFcmpd, Rs1: FReg(2), Rs2: FReg(4), Rd: FRegBase},
		NewNop(),
	)
	return out
}

func TestEncodeDecodeRoundTripCorpus(t *testing.T) {
	for _, inst := range canonicalInsts() {
		w, err := Encode(inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", inst, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) [%v]: %v", w, inst, err)
		}
		want := canonicalize(inst)
		if got != want {
			t.Errorf("round trip %v: got %v (word %#08x)", want, got, w)
		}
	}
}

// canonicalize clears the fields the encoding does not carry.
func canonicalize(i Inst) Inst {
	i.Instrumented = false
	switch i.Op {
	case OpFcmps, OpFcmpd:
		i.Rd = FRegBase // fcmp has no destination; decode leaves f0-relative zero
		i.Rd = 0
	}
	if i.Op == OpTicc {
		i.Rd = 0
	}
	return i
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []uint32{
		0x00000000,                  // unimp
		2<<30 | 0x3f<<19,            // undefined op3
		3<<30 | 0x3f<<19,            // undefined memory op3
		2<<30 | 0x34<<19 | 0x1ff<<5, // undefined opf
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded, want error", w)
		}
	}
}

func TestEncodeRangeChecks(t *testing.T) {
	if _, err := Encode(NewALUImm(OpAdd, G1, G2, 4096)); err == nil {
		t.Error("simm13 overflow not rejected")
	}
	if _, err := Encode(NewALUImm(OpAdd, G1, G2, -4097)); err == nil {
		t.Error("simm13 underflow not rejected")
	}
	if _, err := Encode(NewSethi(G1, 1<<22)); err == nil {
		t.Error("imm22 overflow not rejected")
	}
	if _, err := Encode(NewBranch(CondE, 1<<21)); err == nil {
		t.Error("disp22 overflow not rejected")
	}
	if _, err := Encode(NewALU(OpFadds, G1, FReg(0), FReg(1))); err == nil {
		t.Error("integer destination on fp op not rejected")
	}
	if _, err := Encode(NewALU(OpAdd, G1, FReg(0), G2)); err == nil {
		t.Error("fp rs1 on integer op not rejected")
	}
}

// randomInst builds a random valid instruction from the generator's shape.
func randomInst(r *rand.Rand) Inst {
	corpus := canonicalInsts()
	inst := corpus[r.Intn(len(corpus))]
	// Perturb register fields within their class.
	perturb := func(reg Reg) Reg {
		if reg.IsFloat() {
			return FReg(r.Intn(32))
		}
		return Reg(r.Intn(32))
	}
	switch inst.Op {
	case OpSethi:
		inst.Imm = int32(r.Uint32() & 0x3fffff)
		inst.Rd = Reg(r.Intn(32))
		if inst.Rd == G0 && inst.Imm == 0 {
			inst.Imm = 1
		}
	case OpBicc, OpFBfcc:
		inst.Disp = int32(r.Intn(1<<22)) - 1<<21
		inst.Annul = r.Intn(2) == 0
	case OpCall:
		inst.Disp = int32(r.Intn(1<<30)) - 1<<29
	case OpNop, OpTicc, OpRdy, OpWry:
		// leave as-is
	default:
		if inst.Op.Class() == ClassFPAdd || inst.Op.Class() == ClassFPMul || inst.Op.Class() == ClassFPDiv {
			if inst.Op == OpFcmps || inst.Op == OpFcmpd {
				inst.Rs1, inst.Rs2 = FReg(r.Intn(32)), FReg(r.Intn(32))
			} else if inst.fpSingleSrc() {
				inst.Rs2, inst.Rd = FReg(r.Intn(32)), FReg(r.Intn(32))
			} else {
				inst.Rs1, inst.Rs2, inst.Rd = FReg(r.Intn(32)), FReg(r.Intn(32)), FReg(r.Intn(32))
			}
		} else {
			if inst.Op == OpLdf || inst.Op == OpLddf || inst.Op == OpStf || inst.Op == OpStdf {
				inst.Rd = FReg(r.Intn(32))
			} else {
				inst.Rd = perturb(inst.Rd)
			}
			inst.Rs1 = Reg(r.Intn(32))
			if inst.UseImm {
				inst.Imm = int32(r.Intn(1<<13)) - 1<<12
			} else {
				inst.Rs2 = Reg(r.Intn(32))
			}
		}
	}
	return inst
}

// TestEncodeDecodeRoundTripProperty: Decode(Encode(i)) == i for random
// valid instructions.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		inst := randomInst(r)
		w, err := Encode(inst)
		if err != nil {
			t.Logf("Encode(%v): %v", inst, err)
			return false
		}
		got, err := Decode(w)
		if err != nil {
			t.Logf("Decode(%#08x): %v", w, err)
			return false
		}
		if got != canonicalize(inst) {
			t.Logf("round trip: want %v got %v", canonicalize(inst), got)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDecodeEncodeRoundTripProperty: for random words that decode
// successfully, Encode(Decode(w)) reproduces the word except for don't-care
// bits (asi field, unused rd on fcmp/ticc).
func TestDecodeEncodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	decoded, reencoded := 0, 0
	for n := 0; n < 20000; n++ {
		w := r.Uint32()
		inst, err := Decode(w)
		if err != nil {
			continue
		}
		decoded++
		w2, err := Encode(inst)
		if err != nil {
			// Words with don't-care bits set (e.g. asi != 0) may not
			// re-encode identically; they must still re-decode equal.
			continue
		}
		reencoded++
		inst2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-decode of %#08x (from %#08x): %v", w2, w, err)
		}
		if inst2 != inst {
			t.Fatalf("decode/encode/decode unstable: %#08x -> %v -> %#08x -> %v",
				w, inst, w2, inst2)
		}
	}
	if decoded == 0 || reencoded == 0 {
		t.Fatalf("property test exercised nothing (decoded=%d reencoded=%d)", decoded, reencoded)
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		inst Inst
		uses []Reg
		defs []Reg
	}{
		{NewALU(OpAdd, G1, G2, G3), []Reg{G2, G3}, []Reg{G1}},
		{NewALUImm(OpAdd, G1, G2, 4), []Reg{G2}, []Reg{G1}},
		{NewALUImm(OpAdd, G0, G2, 4), []Reg{G2}, nil},
		{NewALU(OpSubcc, G0, G1, G2), []Reg{G1, G2}, []Reg{ICC}},
		{NewALU(OpAddcc, G3, G1, G2), []Reg{G1, G2}, []Reg{G3, ICC}},
		{NewSethi(G1, 10), nil, []Reg{G1}},
		{NewNop(), nil, nil},
		{NewBranch(CondNE, 4), []Reg{ICC}, nil},
		{NewBranch(CondA, 4), nil, nil},
		{NewFBranch(CondE, 4), []Reg{FCC}, nil},
		{NewCall(8), nil, []Reg{O7}},
		{NewJmpl(G0, O7, 8), []Reg{O7}, nil},
		{NewLoad(OpLd, G1, G2, 0), []Reg{G2}, []Reg{G1}},
		{NewLoadIdx(OpLd, G1, G2, G3), []Reg{G2, G3}, []Reg{G1}},
		{NewLoad(OpLdd, G2, G4, 0), []Reg{G4}, []Reg{G2, G3}},
		{NewStore(OpSt, G1, G2, 0), []Reg{G2, G1}, nil},
		{NewStore(OpStd, G2, G4, 0), []Reg{G4, G2, G3}, nil},
		{NewALU(OpFadds, FReg(0), FReg(1), FReg(2)), []Reg{FReg(1), FReg(2)}, []Reg{FReg(0)}},
		{NewALU(OpFaddd, FReg(0), FReg(2), FReg(4)),
			[]Reg{FReg(2), FReg(3), FReg(4), FReg(5)}, []Reg{FReg(0), FReg(1)}},
		{Inst{Op: OpFcmps, Rs1: FReg(1), Rs2: FReg(2)}, []Reg{FReg(1), FReg(2)}, []Reg{FCC}},
		{Inst{Op: OpFmovs, Rs2: FReg(3), Rd: FReg(5)}, []Reg{FReg(3)}, []Reg{FReg(5)}},
		{NewALU(OpUmul, G1, G2, G3), []Reg{G2, G3}, []Reg{G1, YReg}},
		{NewALU(OpSdiv, G1, G2, G3), []Reg{G2, G3, YReg}, []Reg{G1}},
		{Inst{Op: OpRdy, Rd: G1}, []Reg{YReg}, []Reg{G1}},
		{Inst{Op: OpWry, Rs1: G1}, []Reg{G1, G0}, []Reg{YReg}},
		{NewTrap(0), nil, nil},
	}
	for _, c := range cases {
		uses := c.inst.Uses(nil)
		defs := c.inst.Defs(nil)
		if !regSetEq(uses, c.uses) {
			t.Errorf("%v Uses = %v, want %v", c.inst, uses, c.uses)
		}
		if !regSetEq(defs, c.defs) {
			t.Errorf("%v Defs = %v, want %v", c.inst, defs, c.defs)
		}
	}
}

func regSetEq(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAssemblerBasics(t *testing.T) {
	src := `
	! a tiny counting loop
	mov 0, %g1
	set 10, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`
	insts, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"or %g0, 0, %g1",
		"or %g0, 10, %g2",
		"add %g1, 1, %g1",
		"subcc %g1, %g2, %g0",
		"bne .-2",
		"nop",
		"ta 0",
	}
	if len(insts) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(insts), len(want))
	}
	for i, w := range want {
		if insts[i].String() != w {
			t.Errorf("inst %d = %q, want %q", i, insts[i].String(), w)
		}
	}
}

func TestAssemblerMemoryAndFP(t *testing.T) {
	src := `
	sethi %hi(0x40000000), %o0
	ld [%o0 + 4], %g1
	ld [%o0 + %g1], %g2
	st %g2, [%o0 - 8]
	ld [%o0], %f0
	ldd [%o0 + 8], %f2
	faddd %f2, %f4, %f6
	fmuls %f0, %f1, %f2
	fcmpd %f2, %f4
	fble out
	std %f6, [%o0 + 16]
out:
	retl
	nop
`
	insts, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if insts[4].Op != OpLdf {
		t.Errorf("fp load not rewritten: %v", insts[4])
	}
	if insts[5].Op != OpLddf {
		t.Errorf("fp ldd not rewritten: %v", insts[5])
	}
	if insts[10].Op != OpStdf {
		t.Errorf("fp std not rewritten: %v", insts[10])
	}
	if insts[9].Op != OpFBfcc || insts[9].Disp != 2 {
		t.Errorf("fble mis-assembled: %v", insts[9])
	}
	// Everything must encode.
	for i, inst := range insts {
		if _, err := Encode(inst); err != nil {
			t.Errorf("inst %d (%v) does not encode: %v", i, inst, err)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate %g1, %g2, %g3",
		"add %g1, %g2",
		"bne nowhere\nnop",
		"ld %g1, %g2",
		"mov %q1, %g2",
		"set zzz, %g1",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssemblerSetPseudo(t *testing.T) {
	insts, err := Assemble("set 0x12345678, %g1")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 || insts[0].Op != OpSethi || insts[1].Op != OpOr {
		t.Fatalf("set expanded to %v", insts)
	}
	// sethi imm22 is value>>10; or supplies low 10 bits.
	if got := uint32(insts[0].Imm)<<10 | uint32(insts[1].Imm); got != 0x12345678 {
		t.Errorf("set reconstructs %#x, want 0x12345678", got)
	}
	small, err := Assemble("set 100, %g1")
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 1 || small[0].Op != OpOr {
		t.Fatalf("small set expanded to %v", small)
	}
}

func TestDisassemblyGolden(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{NewALU(OpAdd, G1, G2, G3), "add %g2, %g3, %g1"},
		{NewALUImm(OpSub, O0, O1, -12), "sub %o1, -12, %o0"},
		{NewLoad(OpLd, G1, SP, 64), "ld [%sp + 64], %g1"},
		{NewStore(OpSt, G1, SP, -4), "st %g1, [%sp - 4]"},
		{NewLoadIdx(OpLd, G1, G2, G3), "ld [%g2 + %g3], %g1"},
		{NewSethi(G1, 0x48d15), "sethi %hi(0x12345400), %g1"},
		{NewBranch(CondNE, -3), "bne .-3"},
		{Inst{Op: OpBicc, Cond: CondA, Annul: true, Disp: 2}, "ba,a .+2"},
		{NewCall(100), "call .+100"},
		{NewJmpl(G0, O7, 8), "jmpl %o7 + 8, %g0"},
		{NewTrap(0), "ta 0"},
		{NewNop(), "nop"},
		{NewALU(OpFmuld, FReg(0), FReg(2), FReg(4)), "fmuld %f2, %f4, %f0"},
		{Inst{Op: OpFmovs, Rs2: FReg(1), Rd: FReg(3)}, "fmovs %f1, %f3"},
		{Inst{Op: OpFcmps, Rs1: FReg(1), Rs2: FReg(2)}, "fcmps %f1, %f2"},
	}
	for _, c := range cases {
		if got := c.inst.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDecodeAll(t *testing.T) {
	insts := []Inst{NewALU(OpAdd, G1, G2, G3), NewNop(), NewTrap(0)}
	words := make([]uint32, len(insts))
	for i, inst := range insts {
		words[i] = MustEncode(inst)
	}
	got, err := DecodeAll(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if got[i] != canonicalize(insts[i]) {
			t.Errorf("inst %d: got %v want %v", i, got[i], insts[i])
		}
	}
	if _, err := DecodeAll([]uint32{0}); err == nil {
		t.Error("DecodeAll accepted unimp word")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLd.IsLoad() || OpLd.IsStore() {
		t.Error("OpLd predicates wrong")
	}
	if !OpSt.IsStore() || OpSt.IsLoad() {
		t.Error("OpSt predicates wrong")
	}
	for _, op := range []Op{OpBicc, OpFBfcc, OpCall, OpJmpl} {
		if !op.IsCTI() {
			t.Errorf("%v should be CTI", op.Name())
		}
	}
	if OpAdd.IsCTI() {
		t.Error("add is not a CTI")
	}
	if !OpFaddd.IsFP() || !OpLdf.IsFP() || OpLd.IsFP() {
		t.Error("IsFP predicates wrong")
	}
	for _, op := range []Op{OpAddcc, OpSubcc, OpAndcc, OpOrcc, OpXorcc} {
		if !op.SetsICC() {
			t.Errorf("%v should set icc", op.Name())
		}
	}
	if OpAdd.SetsICC() {
		t.Error("add does not set icc")
	}
	if !OpLdd.Doubleword() || OpLd.Doubleword() {
		t.Error("Doubleword predicates wrong")
	}
}

func TestIsUncondAndNop(t *testing.T) {
	if !NewBranch(CondA, 1).IsUncond() {
		t.Error("ba should be unconditional")
	}
	if NewBranch(CondNE, 1).IsUncond() {
		t.Error("bne is conditional")
	}
	if !NewCall(1).IsUncond() || !NewJmpl(G0, O7, 8).IsUncond() {
		t.Error("call/jmpl are unconditional")
	}
	if !NewNop().IsNop() {
		t.Error("nop is a nop")
	}
	if !(Inst{Op: OpSethi, Rd: G0, Imm: 5, UseImm: true}).IsNop() {
		t.Error("sethi to g0 is a nop")
	}
	if (Inst{Op: OpSethi, Rd: G1, Imm: 5, UseImm: true}).IsNop() {
		t.Error("sethi to g1 is not a nop")
	}
}
