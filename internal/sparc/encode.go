package sparc

import "fmt"

// SPARC V8 instruction word layout (The SPARC Architecture Manual, V8):
//
//	Format 1 (op=1): call        op[31:30] disp30[29:0]
//	Format 2 (op=0): sethi/Bicc  op rd[29:25] op2[24:22] imm22[21:0]
//	                 branches    op a[29] cond[28:25] op2 disp22[21:0]
//	Format 3 (op=2,3):           op rd[29:25] op3[24:19] rs1[18:14]
//	                             i[13] (i=1: simm13[12:0]; i=0: asi[12:5] rs2[4:0])
//	                 FPop:       i=0 space holds opf[13:5] rs2[4:0]
const (
	op2UNIMP = 0
	op2Bicc  = 2
	op2Sethi = 4
	op2FBfcc = 6

	op3FPop1 = 0x34
	op3FPop2 = 0x35
)

// Encode produces the 32-bit binary encoding of the instruction.
func Encode(i Inst) (uint32, error) {
	switch i.Op {
	case OpInvalid:
		return 0, fmt.Errorf("sparc: encode invalid instruction")
	case OpNop:
		// nop == sethi 0, %g0
		return op2Sethi << 22, nil
	case OpSethi:
		if uint32(i.Imm)>>22 != 0 {
			return 0, fmt.Errorf("sparc: sethi immediate %#x exceeds 22 bits", i.Imm)
		}
		return uint32(i.Rd)<<25 | op2Sethi<<22 | uint32(i.Imm)&0x3fffff, nil
	case OpBicc, OpFBfcc:
		if i.Disp < -(1<<21) || i.Disp >= 1<<21 {
			return 0, fmt.Errorf("sparc: branch displacement %d exceeds 22 bits", i.Disp)
		}
		op2 := uint32(op2Bicc)
		if i.Op == OpFBfcc {
			op2 = op2FBfcc
		}
		w := uint32(i.Cond)<<25 | op2<<22 | uint32(i.Disp)&0x3fffff
		if i.Annul {
			w |= 1 << 29
		}
		return w, nil
	case OpCall:
		return 1<<30 | uint32(i.Disp)&0x3fffffff, nil
	case OpTicc:
		// ta: op=2, op3=0x3a, cond in the rd field's low bits (cond[28:25]).
		w := uint32(2)<<30 | uint32(i.Cond)<<25 | uint32(0x3a)<<19 | uint32(i.Rs1)<<14
		if i.UseImm {
			return w | 1<<13 | uint32(i.Imm)&0x7f, nil
		}
		return w | uint32(i.Rs2)&31, nil
	}

	info := opTable[i.Op]
	if info.class == ClassFPAdd || info.class == ClassFPMul || info.class == ClassFPDiv {
		op3 := uint32(op3FPop1)
		if info.fpop2 {
			op3 = op3FPop2
		}
		var rd, rs1 uint32
		if !info.fpop2 {
			if !i.Rd.IsFloat() {
				return 0, fmt.Errorf("sparc: %s destination %s is not an fp register", i.Op.Name(), i.Rd)
			}
			rd = uint32(i.Rd.FNum())
		}
		if !i.fpSingleSrc() {
			if !i.Rs1.IsFloat() {
				return 0, fmt.Errorf("sparc: %s source %s is not an fp register", i.Op.Name(), i.Rs1)
			}
			rs1 = uint32(i.Rs1.FNum())
		}
		if !i.Rs2.IsFloat() {
			return 0, fmt.Errorf("sparc: %s source %s is not an fp register", i.Op.Name(), i.Rs2)
		}
		return uint32(2)<<30 | rd<<25 | op3<<19 | rs1<<14 |
			info.opf<<5 | uint32(i.Rs2.FNum()), nil
	}

	op := uint32(2)
	if info.mem {
		op = 3
	}
	var rd uint32
	switch {
	case i.Op == OpLdf || i.Op == OpLddf || i.Op == OpStf || i.Op == OpStdf:
		if !i.Rd.IsFloat() {
			return 0, fmt.Errorf("sparc: %s data register %s is not an fp register", i.Op.Name(), i.Rd)
		}
		rd = uint32(i.Rd.FNum())
	default:
		if !i.Rd.IsInt() {
			return 0, fmt.Errorf("sparc: %s destination %s is not an integer register", i.Op.Name(), i.Rd)
		}
		rd = uint32(i.Rd)
	}
	if !i.Rs1.IsInt() {
		return 0, fmt.Errorf("sparc: %s rs1 %s is not an integer register", i.Op.Name(), i.Rs1)
	}
	w := op<<30 | rd<<25 | info.op3<<19 | uint32(i.Rs1)<<14
	if i.UseImm {
		if i.Imm < -(1<<12) || i.Imm >= 1<<12 {
			return 0, fmt.Errorf("sparc: immediate %d exceeds simm13", i.Imm)
		}
		w |= 1<<13 | uint32(i.Imm)&0x1fff
	} else {
		if !i.Rs2.IsInt() {
			return 0, fmt.Errorf("sparc: %s rs2 %s is not an integer register", i.Op.Name(), i.Rs2)
		}
		w |= uint32(i.Rs2)
	}
	return w, nil
}

// MustEncode encodes or panics; for compile-time-constant sequences.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
