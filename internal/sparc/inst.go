package sparc

import "fmt"

// Inst is a decoded SPARC V8 instruction. The zero value is invalid.
//
// Operand conventions follow the hardware formats:
//   - ALU/shift:   rd = op(rs1, rs2|simm13)
//   - sethi:       rd = imm22 << 10
//   - load:        rd = mem[rs1 + (rs2|simm13)]
//   - store:       mem[rs1 + (rs2|simm13)] = rd
//   - Bicc/FBfcc:  pc-relative Disp (word displacement), Cond, Annul
//   - call:        pc-relative Disp (word displacement)
//   - jmpl:        rd = pc; pc = rs1 + (rs2|simm13)
//   - FPop:        rd = op(rs1, rs2) over the fp register file
type Inst struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int32 // simm13 for format 3, imm22 for sethi, sw trap number for ta
	UseImm bool
	Cond   Cond
	Annul  bool
	Disp   int32 // branch/call displacement in words (instructions)

	// Instrumented marks instructions inserted by an editing tool rather
	// than decoded from the original executable. The scheduler applies the
	// paper's relaxed memory-aliasing rule to instrumented loads and stores.
	Instrumented bool
}

// NewALU builds a three-register ALU/shift/fp-style instruction.
func NewALU(op Op, rd, rs1, rs2 Reg) Inst {
	return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}

// NewALUImm builds a register+immediate ALU instruction.
func NewALUImm(op Op, rd, rs1 Reg, imm int32) Inst {
	return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}
}

// NewSethi builds sethi imm22, rd. imm is the 22-bit value (not shifted).
func NewSethi(rd Reg, imm22 int32) Inst {
	return Inst{Op: OpSethi, Rd: rd, Imm: imm22, UseImm: true}
}

// NewNop builds the canonical nop (sethi 0, %g0).
func NewNop() Inst { return Inst{Op: OpNop, UseImm: true} }

// NewLoad builds rd = mem[rs1 + imm].
func NewLoad(op Op, rd, rs1 Reg, imm int32) Inst {
	return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}
}

// NewLoadIdx builds rd = mem[rs1 + rs2].
func NewLoadIdx(op Op, rd, rs1, rs2 Reg) Inst {
	return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}

// NewStore builds mem[rs1 + imm] = rd.
func NewStore(op Op, rd, rs1 Reg, imm int32) Inst {
	return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}
}

// NewBranch builds a Bicc with word displacement disp.
func NewBranch(cond Cond, disp int32) Inst {
	return Inst{Op: OpBicc, Cond: cond, Disp: disp}
}

// NewFBranch builds an FBfcc with word displacement disp.
func NewFBranch(cond Cond, disp int32) Inst {
	return Inst{Op: OpFBfcc, Cond: cond, Disp: disp}
}

// NewCall builds call with word displacement disp.
func NewCall(disp int32) Inst { return Inst{Op: OpCall, Disp: disp} }

// NewJmpl builds jmpl rs1+imm, rd. "retl" is jmpl %o7+8, %g0.
func NewJmpl(rd, rs1 Reg, imm int32) Inst {
	return Inst{Op: OpJmpl, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}
}

// NewTrap builds "ta imm" — trap always with a software trap number. The
// simulator's halt and I/O conventions are built on it.
func NewTrap(imm int32) Inst {
	return Inst{Op: OpTicc, Cond: CondA, Imm: imm, UseImm: true, Rs1: G0}
}

// IsCTI reports whether the instruction transfers control (and therefore
// has an architectural delay slot).
func (i Inst) IsCTI() bool { return i.Op.IsCTI() }

// IsUncond reports whether the instruction unconditionally transfers
// control (ba, call, jmpl, fba).
func (i Inst) IsUncond() bool {
	switch i.Op {
	case OpCall, OpJmpl:
		return true
	case OpBicc, OpFBfcc:
		return i.Cond == CondA
	}
	return false
}

// IsNop reports whether the instruction has no architectural effect.
func (i Inst) IsNop() bool {
	if i.Op == OpNop {
		return true
	}
	return i.Op == OpSethi && i.Rd == G0
}

// Uses appends the registers read by the instruction to dst and returns it.
// %g0 reads are included (they carry no dependence; consumers filter).
func (i Inst) Uses(dst []Reg) []Reg {
	switch i.Op {
	case OpSethi, OpNop, OpCall:
		return dst
	case OpBicc:
		if i.Cond != CondA && i.Cond != CondN {
			dst = append(dst, ICC)
		}
		return dst
	case OpFBfcc:
		if i.Cond != CondA && i.Cond != CondN {
			dst = append(dst, FCC)
		}
		return dst
	case OpRdy:
		return append(dst, YReg)
	case OpWry:
		dst = append(dst, i.Rs1)
		if !i.UseImm {
			dst = append(dst, i.Rs2)
		}
		return dst
	case OpTicc:
		return dst
	}
	cls := i.Op.Class()
	switch cls {
	case ClassStore:
		// Address operands plus the stored value.
		dst = append(dst, i.Rs1)
		if !i.UseImm {
			dst = append(dst, i.Rs2)
		}
		dst = append(dst, i.Rd)
		if i.Op.Doubleword() {
			dst = append(dst, i.Rd+1)
		}
		return dst
	case ClassLoad:
		dst = append(dst, i.Rs1)
		if !i.UseImm {
			dst = append(dst, i.Rs2)
		}
		return dst
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		// Single-source fp ops (fmov/fneg/fabs/fsqrt/conversions) read rs2 only.
		if !i.fpSingleSrc() {
			dst = append(dst, i.Rs1)
			if i.fpDouble() {
				dst = append(dst, i.Rs1+1)
			}
		}
		dst = append(dst, i.Rs2)
		if i.fpDouble() {
			dst = append(dst, i.Rs2+1)
		}
		return dst
	}
	// Integer ALU / shift / muldiv / jmpl / save / restore.
	dst = append(dst, i.Rs1)
	if !i.UseImm {
		dst = append(dst, i.Rs2)
	}
	if i.Op == OpUdiv || i.Op == OpSdiv {
		dst = append(dst, YReg)
	}
	return dst
}

// Defs appends the registers written by the instruction to dst.
func (i Inst) Defs(dst []Reg) []Reg {
	switch i.Op {
	case OpNop:
		return dst
	case OpBicc, OpFBfcc:
		return dst
	case OpCall:
		return append(dst, O7)
	case OpWry:
		return append(dst, YReg)
	case OpRdy:
		return append(dst, i.Rd)
	case OpTicc:
		return dst
	case OpFcmps, OpFcmpd:
		return append(dst, FCC)
	}
	cls := i.Op.Class()
	switch cls {
	case ClassStore:
		return dst
	case ClassLoad:
		dst = append(dst, i.Rd)
		if i.Op.Doubleword() {
			dst = append(dst, i.Rd+1)
		}
		return dst
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		dst = append(dst, i.Rd)
		if i.fpDouble() {
			dst = append(dst, i.Rd+1)
		}
		return dst
	}
	if i.Rd != G0 {
		dst = append(dst, i.Rd)
	}
	if i.Op.SetsICC() {
		dst = append(dst, ICC)
	}
	if i.Op == OpUmul || i.Op == OpSmul {
		dst = append(dst, YReg)
	}
	return dst
}

// fpSingleSrc reports whether the fp op reads only rs2.
func (i Inst) fpSingleSrc() bool {
	switch i.Op {
	case OpFmovs, OpFnegs, OpFabss, OpFsqrts, OpFsqrtd,
		OpFitos, OpFitod, OpFstoi, OpFdtoi, OpFstod, OpFdtos:
		return true
	}
	return false
}

// fpDouble reports whether the fp op operates on double-precision
// register pairs.
func (i Inst) fpDouble() bool {
	switch i.Op {
	case OpFaddd, OpFsubd, OpFmuld, OpFdivd, OpFsqrtd, OpFcmpd,
		OpFitod, OpFstod:
		return true
	}
	return false
}

// Mnemonic returns the full mnemonic including branch condition suffixes
// and the annul marker (e.g. "bne,a").
func (i Inst) Mnemonic() string {
	switch i.Op {
	case OpBicc:
		s := "b" + condNames[i.Cond]
		if i.Cond == CondN {
			s = "bn"
		}
		if i.Annul {
			s += ",a"
		}
		return s
	case OpFBfcc:
		s := "fb" + fcondNames[i.Cond]
		if i.Annul {
			s += ",a"
		}
		return s
	}
	return i.Op.Name()
}

// String disassembles the instruction into SPARC assembler syntax.
func (i Inst) String() string {
	switch i.Op {
	case OpNop:
		return "nop"
	case OpSethi:
		return fmt.Sprintf("sethi %%hi(0x%x), %s", uint32(i.Imm)<<10, i.Rd)
	case OpBicc, OpFBfcc:
		return fmt.Sprintf("%s .%+d", i.Mnemonic(), i.Disp)
	case OpCall:
		return fmt.Sprintf("call .%+d", i.Disp)
	case OpJmpl:
		return fmt.Sprintf("jmpl %s%s, %s", i.Rs1, immOrReg(i), i.Rd)
	case OpTicc:
		return fmt.Sprintf("ta %d", i.Imm)
	case OpRdy:
		return fmt.Sprintf("rd %%y, %s", i.Rd)
	case OpWry:
		return fmt.Sprintf("wr %s%s, %%y", i.Rs1, immOrReg(i))
	}
	cls := i.Op.Class()
	switch cls {
	case ClassLoad:
		return fmt.Sprintf("%s [%s%s], %s", i.Op.Name(), i.Rs1, immOrReg(i), i.Rd)
	case ClassStore:
		return fmt.Sprintf("%s %s, [%s%s]", i.Op.Name(), i.Rd, i.Rs1, immOrReg(i))
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		if i.fpSingleSrc() {
			return fmt.Sprintf("%s %s, %s", i.Op.Name(), i.Rs2, i.Rd)
		}
		if i.Op == OpFcmps || i.Op == OpFcmpd {
			return fmt.Sprintf("%s %s, %s", i.Op.Name(), i.Rs1, i.Rs2)
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), i.Rs1, i.Rs2, i.Rd)
	}
	if i.UseImm {
		return fmt.Sprintf("%s %s, %d, %s", i.Op.Name(), i.Rs1, i.Imm, i.Rd)
	}
	return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), i.Rs1, i.Rs2, i.Rd)
}

func immOrReg(i Inst) string {
	if i.UseImm {
		if i.Imm >= 0 {
			return fmt.Sprintf(" + %d", i.Imm)
		}
		return fmt.Sprintf(" - %d", -i.Imm)
	}
	// Print the register form explicitly, even %g0, so disassembly
	// round-trips through the assembler with the same i-bit.
	return " + " + i.Rs2.String()
}
