package sparc

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler translates SPARC assembler text into instructions. It supports
// the subset of syntax the examples and tests use:
//
//	label:                         ; labels end with a colon
//	add %g1, %g2, %g3              ; three-operand ALU
//	add %g1, 12, %g3               ; register + immediate
//	sethi %hi(0x12345400), %g1     ; or: sethi 0x48d15, %g1
//	ld [%g1 + 8], %g2              ; loads
//	st %g2, [%g1 + 8]              ; stores
//	bne loop                       ; branches to labels (delay slot explicit)
//	ba,a done                      ; annulled branch
//	call fn                        ; call to label
//	jmpl %o7 + 8, %g0              ; indirect jump ("retl")
//	ta 0                           ; software trap
//	nop
//	cmp %g1, %g2                   ; pseudo: subcc %g1, %g2, %g0
//	mov 5, %g1                     ; pseudo: or %g0, 5, %g1
//	set 0x12345678, %g1            ; pseudo: sethi+or pair (may emit 2 words)
//	! comment, or # comment
//
// Branch displacements are resolved in a second pass.
type Assembler struct {
	insts  []Inst
	labels map[string]int
	// fixups maps instruction index -> label for pc-relative operands.
	fixups map[int]string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int), fixups: make(map[int]string)}
}

// Assemble is a convenience wrapper: assemble full source text.
func Assemble(src string) ([]Inst, error) {
	a := NewAssembler()
	for ln, line := range strings.Split(src, "\n") {
		if err := a.Line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return a.Finish()
}

// Label defines a label at the current position.
func (a *Assembler) Label(name string) {
	a.labels[name] = len(a.insts)
}

// Emit appends an already-built instruction.
func (a *Assembler) Emit(i Inst) {
	a.insts = append(a.insts, i)
}

// EmitBranch appends a Bicc targeting a label (resolved by Finish).
func (a *Assembler) EmitBranch(cond Cond, label string) {
	a.fixups[len(a.insts)] = label
	a.Emit(Inst{Op: OpBicc, Cond: cond})
}

// EmitFBranch appends an FBfcc targeting a label.
func (a *Assembler) EmitFBranch(cond Cond, label string) {
	a.fixups[len(a.insts)] = label
	a.Emit(Inst{Op: OpFBfcc, Cond: cond})
}

// EmitCall appends a call targeting a label.
func (a *Assembler) EmitCall(label string) {
	a.fixups[len(a.insts)] = label
	a.Emit(Inst{Op: OpCall})
}

// Len returns the number of instructions emitted so far.
func (a *Assembler) Len() int { return len(a.insts) }

// Line assembles one line of text (possibly empty or comment-only).
func (a *Assembler) Line(line string) error {
	if idx := strings.IndexAny(line, "!#"); idx >= 0 {
		line = line[:idx]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	for {
		colon := strings.Index(line, ":")
		if colon < 0 {
			break
		}
		label := strings.TrimSpace(line[:colon])
		if strings.ContainsAny(label, " \t") {
			return fmt.Errorf("bad label %q", label)
		}
		a.Label(label)
		line = strings.TrimSpace(line[colon+1:])
	}
	if line == "" {
		return nil
	}
	return a.instruction(line)
}

func (a *Assembler) instruction(line string) error {
	mnem := line
	rest := ""
	if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		mnem, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	mnem = strings.ToLower(mnem)

	annul := false
	if strings.HasSuffix(mnem, ",a") {
		annul = true
		mnem = strings.TrimSuffix(mnem, ",a")
	}

	// Branches: b<cond> / fb<cond>.
	if cond, ok := parseBranchCond(mnem, "b", condNames[:]); ok {
		return a.branch(OpBicc, cond, annul, rest)
	}
	if cond, ok := parseBranchCond(mnem, "fb", fcondNames[:]); ok {
		return a.branch(OpFBfcc, cond, annul, rest)
	}

	args := splitArgs(rest)
	switch mnem {
	case "nop":
		a.Emit(NewNop())
		return nil
	case "call":
		if len(args) != 1 {
			return fmt.Errorf("call takes one operand")
		}
		if strings.HasPrefix(args[0], ".") {
			d, err := parseImm(args[0][1:])
			if err != nil {
				return fmt.Errorf("bad call displacement %q", args[0])
			}
			a.Emit(NewCall(d))
			return nil
		}
		a.fixups[len(a.insts)] = args[0]
		a.Emit(NewCall(0))
		return nil
	case "ta":
		n, err := parseImm(args[0])
		if err != nil {
			return err
		}
		a.Emit(NewTrap(n))
		return nil
	case "retl":
		a.Emit(NewJmpl(G0, O7, 8))
		return nil
	case "ret":
		a.Emit(NewJmpl(G0, I7, 8))
		return nil
	case "sethi":
		if len(args) != 2 {
			return fmt.Errorf("sethi takes two operands")
		}
		imm, err := parseHiImm(args[0])
		if err != nil {
			return err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return err
		}
		a.Emit(NewSethi(rd, imm))
		return nil
	case "set":
		if len(args) != 2 {
			return fmt.Errorf("set takes two operands")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return err
		}
		a.emitSet(uint32(v), rd)
		return nil
	case "mov":
		if len(args) != 2 {
			return fmt.Errorf("mov takes two operands")
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return err
		}
		if src, err := ParseReg(args[0]); err == nil {
			a.Emit(NewALU(OpOr, rd, G0, src))
			return nil
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		a.Emit(NewALUImm(OpOr, rd, G0, v))
		return nil
	case "cmp":
		if len(args) != 2 {
			return fmt.Errorf("cmp takes two operands")
		}
		rs1, err := ParseReg(args[0])
		if err != nil {
			return err
		}
		if rs2, err := ParseReg(args[1]); err == nil {
			a.Emit(NewALU(OpSubcc, G0, rs1, rs2))
			return nil
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.Emit(NewALUImm(OpSubcc, G0, rs1, v))
		return nil
	case "wr":
		// wr rs1, rs2|imm, %y
		if len(args) != 3 || args[2] != "%y" {
			return fmt.Errorf("wr takes rs1, reg_or_imm, %%y")
		}
		rs1, err := ParseReg(args[0])
		if err != nil {
			return err
		}
		if rs2, err := ParseReg(args[1]); err == nil {
			a.Emit(Inst{Op: OpWry, Rs1: rs1, Rs2: rs2})
			return nil
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.Emit(Inst{Op: OpWry, Rs1: rs1, Imm: v, UseImm: true})
		return nil
	case "rd":
		// rd %y, rd
		if len(args) != 2 || args[0] != "%y" {
			return fmt.Errorf("rd takes %%y, rd")
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return err
		}
		a.Emit(Inst{Op: OpRdy, Rd: rd})
		return nil
	case "jmpl":
		if len(args) != 2 {
			return fmt.Errorf("jmpl takes two operands")
		}
		// Accept both "jmpl %o7 + 8, %g0" and "jmpl [%o7 + 8], %g0".
		addr := args[0]
		if !strings.HasPrefix(addr, "[") {
			addr = "[" + addr + "]"
		}
		rs1, rs2, imm, useImm, err := parseAddr(addr)
		if err != nil {
			return err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return err
		}
		inst := Inst{Op: OpJmpl, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm}
		a.Emit(inst)
		return nil
	}

	op, ok := opByName[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	switch op.Class() {
	case ClassLoad:
		if len(args) != 2 {
			return fmt.Errorf("%s takes [addr], rd", mnem)
		}
		rs1, rs2, imm, useImm, err := parseAddr(args[0])
		if err != nil {
			return err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return err
		}
		op = fixFPMem(op, rd)
		a.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})
		return nil
	case ClassStore:
		if len(args) != 2 {
			return fmt.Errorf("%s takes rd, [addr]", mnem)
		}
		rd, err := ParseReg(args[0])
		if err != nil {
			return err
		}
		rs1, rs2, imm, useImm, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		op = fixFPMem(op, rd)
		a.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})
		return nil
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		return a.fpop(op, args)
	}
	// Integer ALU / shift / muldiv / save / restore.
	if len(args) != 3 {
		return fmt.Errorf("%s takes three operands", mnem)
	}
	rs1, err := ParseReg(args[0])
	if err != nil {
		return err
	}
	rd, err := ParseReg(args[2])
	if err != nil {
		return err
	}
	if rs2, err := ParseReg(args[1]); err == nil {
		a.Emit(NewALU(op, rd, rs1, rs2))
		return nil
	}
	v, err := parseImm(args[1])
	if err != nil {
		return err
	}
	a.Emit(NewALUImm(op, rd, rs1, v))
	return nil
}

func (a *Assembler) fpop(op Op, args []string) error {
	inst := Inst{Op: op}
	regs := make([]Reg, len(args))
	for i, s := range args {
		r, err := ParseReg(s)
		if err != nil {
			return err
		}
		regs[i] = r
	}
	switch {
	case op == OpFcmps || op == OpFcmpd:
		if len(regs) != 2 {
			return fmt.Errorf("%s takes two operands", op.Name())
		}
		inst.Rs1, inst.Rs2 = regs[0], regs[1]
	case inst.fpSingleSrc():
		if len(regs) != 2 {
			return fmt.Errorf("%s takes two operands", op.Name())
		}
		inst.Rs2, inst.Rd = regs[0], regs[1]
	default:
		if len(regs) != 3 {
			return fmt.Errorf("%s takes three operands", op.Name())
		}
		inst.Rs1, inst.Rs2, inst.Rd = regs[0], regs[1], regs[2]
	}
	a.Emit(inst)
	return nil
}

func (a *Assembler) branch(op Op, cond Cond, annul bool, rest string) error {
	target := strings.TrimSpace(rest)
	if target == "" {
		return fmt.Errorf("branch needs a target label")
	}
	// Numeric displacement form, as the disassembler prints: ".+8", ".-4".
	if strings.HasPrefix(target, ".") {
		d, err := parseImm(target[1:])
		if err != nil {
			return fmt.Errorf("bad branch displacement %q", target)
		}
		a.Emit(Inst{Op: op, Cond: cond, Annul: annul, Disp: d})
		return nil
	}
	a.fixups[len(a.insts)] = target
	a.Emit(Inst{Op: op, Cond: cond, Annul: annul})
	return nil
}

// emitSet expands the "set" pseudo-op into sethi/or as needed.
func (a *Assembler) emitSet(v uint32, rd Reg) {
	if int32(v) >= -(1<<12) && int32(v) < 1<<12 {
		a.Emit(NewALUImm(OpOr, rd, G0, int32(v)))
		return
	}
	a.Emit(NewSethi(rd, int32(v>>10)))
	if low := v & 0x3ff; low != 0 {
		a.Emit(NewALUImm(OpOr, rd, rd, int32(low)))
	}
}

// Finish resolves label fixups and returns the instruction list.
func (a *Assembler) Finish() ([]Inst, error) {
	for idx, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", label)
		}
		a.insts[idx].Disp = int32(target - idx)
	}
	return a.insts, nil
}

func parseBranchCond(mnem, prefix string, names []string) (Cond, bool) {
	if !strings.HasPrefix(mnem, prefix) {
		return 0, false
	}
	suffix := mnem[len(prefix):]
	if prefix == "b" && mnem == "b" {
		return CondA, true // "b" == "ba"
	}
	for i, n := range names {
		if suffix == n {
			return Cond(i), true
		}
	}
	return 0, false
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	// Commas inside [...] belong to the address expression; there are none
	// in our syntax, so a simple split suffices.
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseAddr parses "[%r1 + %r2]", "[%r1 + imm]", "[%r1 - imm]", "[%r1]".
func parseAddr(s string) (rs1, rs2 Reg, imm int32, useImm bool, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, fmt.Errorf("bad address %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	neg := false
	var lhs, rhs string
	if i := strings.IndexAny(body, "+-"); i >= 0 {
		neg = body[i] == '-'
		lhs, rhs = strings.TrimSpace(body[:i]), strings.TrimSpace(body[i+1:])
	} else {
		lhs = body
	}
	rs1, err = ParseReg(lhs)
	if err != nil {
		return 0, 0, 0, false, err
	}
	if rhs == "" {
		return rs1, G0, 0, true, nil
	}
	if r, rerr := ParseReg(rhs); rerr == nil {
		if neg {
			return 0, 0, 0, false, fmt.Errorf("cannot subtract a register in %q", s)
		}
		return rs1, r, 0, false, nil
	}
	imm, err = parseImm(rhs)
	if err != nil {
		return 0, 0, 0, false, err
	}
	if neg {
		imm = -imm
	}
	return rs1, G0, imm, true, nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, fmt.Errorf("immediate %q out of range", s)
	}
	return int32(uint32(v)), nil
}

// parseHiImm parses either "%hi(0x12345400)" (returning the high 22 bits)
// or a plain immediate already in imm22 form.
func parseHiImm(s string) (int32, error) {
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		v, err := parseImm(s[4 : len(s)-1])
		if err != nil {
			return 0, err
		}
		return int32(uint32(v) >> 10), nil
	}
	return parseImm(s)
}

// fixFPMem rewrites the integer ld/st/ldd/std mnemonics to their fp forms
// when the data register is a floating-point register, matching assembler
// convention where "ld [%o0], %f0" means ldf.
func fixFPMem(op Op, rd Reg) Op {
	if !rd.IsFloat() {
		return op
	}
	switch op {
	case OpLd:
		return OpLdf
	case OpLdd:
		return OpLddf
	case OpSt:
		return OpStf
	case OpStd:
		return OpStdf
	}
	return op
}
