// Package cfg discovers basic blocks and builds the control-flow graph of
// a SPARC text segment — the "Analyse" stage of the paper's Figure 3. It
// understands SPARC delay slots: a control-transfer instruction and its
// delay-slot instruction belong to the same block, and the block boundary
// falls after the delay slot.
package cfg

import (
	"fmt"

	"eel/internal/sparc"
)

// Block is a basic block: a maximal straight-line instruction sequence
// with one entry (the first instruction) and one exit (the last).
type Block struct {
	Index int
	// Start and End delimit the half-open instruction index range
	// [Start, End) in the decoded text.
	Start, End int
	// Insts aliases the decoded text segment for the block's range.
	Insts []sparc.Inst

	Succs []*Block
	Preds []*Block

	// HasCTI reports whether the block ends with a control-transfer
	// instruction (at End-2) and its delay slot (at End-1).
	HasCTI bool
	// FallsThrough reports whether control may continue into the next
	// block in layout order.
	FallsThrough bool
	// LoopDepth is the number of natural-loop back edges enclosing the
	// block (approximate, from DFS back-edge detection).
	LoopDepth int
}

// Body returns the schedulable portion of the block: everything except a
// terminating CTI and its delay slot.
func (b *Block) Body() []sparc.Inst {
	if b.HasCTI {
		return b.Insts[:len(b.Insts)-2]
	}
	return b.Insts
}

// CTI returns the terminating control-transfer instruction and its delay
// slot instruction; ok is false if the block has none.
func (b *Block) CTI() (cti, delay sparc.Inst, ok bool) {
	if !b.HasCTI {
		return sparc.Inst{}, sparc.Inst{}, false
	}
	return b.Insts[len(b.Insts)-2], b.Insts[len(b.Insts)-1], true
}

// Size returns the number of instructions in the block.
func (b *Block) Size() int { return len(b.Insts) }

// Graph is the control-flow graph of a text segment.
type Graph struct {
	Blocks []*Block
	// ByStart maps an instruction index to the block starting there.
	ByStart map[int]*Block
	Insts   []sparc.Inst
}

// Build constructs the CFG of a decoded text segment. Branch displacements
// are instruction-index relative (as decoded). It rejects malformed
// layouts: CTIs in delay slots, branches out of range, and a CTI without a
// delay slot at the end of text.
func Build(insts []sparc.Inst) (*Graph, error) {
	n := len(insts)
	if n == 0 {
		return &Graph{ByStart: map[int]*Block{}}, nil
	}

	// Validate delay slots and find branch targets.
	leader := make([]bool, n)
	leader[0] = true
	for i := 0; i < n; i++ {
		inst := insts[i]
		if !inst.IsCTI() {
			continue
		}
		if i+1 >= n {
			return nil, fmt.Errorf("cfg: CTI at instruction %d has no delay slot", i)
		}
		if insts[i+1].IsCTI() {
			return nil, fmt.Errorf("cfg: CTI in delay slot at instruction %d", i+1)
		}
		if i+2 < n {
			leader[i+2] = true
		}
		switch inst.Op {
		case sparc.OpBicc, sparc.OpFBfcc:
			t := i + int(inst.Disp)
			if t < 0 || t >= n {
				return nil, fmt.Errorf("cfg: branch at instruction %d targets %d, outside text", i, t)
			}
			leader[t] = true
		case sparc.OpCall:
			// A call target is a procedure entry: it starts a block (so
			// the editor can retarget the call after layout) but adds no
			// intra-procedural edge.
			t := i + int(inst.Disp)
			if t < 0 || t >= n {
				return nil, fmt.Errorf("cfg: call at instruction %d targets %d, outside text", i, t)
			}
			leader[t] = true
		}
		// jmpl transfers indirectly; it ends the block with no static
		// target.
	}

	// A branch may not target a delay slot: the slot belongs to its CTI's
	// block.
	for i := 0; i < n; i++ {
		if insts[i].IsCTI() && i+1 < n && leader[i+1] {
			return nil, fmt.Errorf("cfg: branch targets the delay slot at instruction %d", i+1)
		}
	}

	g := &Graph{ByStart: make(map[int]*Block), Insts: insts}
	start := 0
	flush := func(end int) {
		if end <= start {
			return
		}
		b := &Block{
			Index: len(g.Blocks),
			Start: start,
			End:   end,
			Insts: insts[start:end],
		}
		last := end - 2
		if last >= start && insts[last].IsCTI() {
			b.HasCTI = true
		}
		g.Blocks = append(g.Blocks, b)
		g.ByStart[start] = b
		start = end
	}
	for i := 0; i < n; i++ {
		if i > start && leader[i] {
			flush(i)
		}
		if insts[i].IsCTI() {
			flush(i + 2)
			i++ // skip the delay slot; it belongs to the flushed block
		} else if insts[i].Op == sparc.OpTicc {
			// A trap ends its block (no delay slot). An unconditional
			// trap never falls through.
			flush(i + 1)
		}
	}
	flush(n)

	// Wire edges.
	for bi, b := range g.Blocks {
		if !b.HasCTI {
			last := b.Insts[len(b.Insts)-1]
			if last.Op == sparc.OpTicc && last.Cond == sparc.CondA {
				// Unconditional trap: execution stops here.
				continue
			}
			// Fallthrough into the next block, if any.
			if bi+1 < len(g.Blocks) {
				b.FallsThrough = true
				link(b, g.Blocks[bi+1])
			}
			continue
		}
		cti, _, _ := b.CTI()
		switch cti.Op {
		case sparc.OpBicc, sparc.OpFBfcc:
			t := b.End - 2 + int(cti.Disp)
			target, ok := g.ByStart[t]
			if !ok {
				return nil, fmt.Errorf("cfg: branch target %d is not a block leader", t)
			}
			link(b, target)
			if !cti.IsUncond() && cti.Cond != sparc.CondN {
				if bi+1 < len(g.Blocks) {
					b.FallsThrough = true
					link(b, g.Blocks[bi+1])
				}
			}
		case sparc.OpCall:
			// The callee returns: control continues after the delay slot.
			if bi+1 < len(g.Blocks) {
				b.FallsThrough = true
				link(b, g.Blocks[bi+1])
			}
		case sparc.OpJmpl:
			// Indirect transfer (return or computed jump): no static
			// successors.
		}
	}

	g.computeLoopDepth()
	return g, nil
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// computeLoopDepth finds DFS back edges from the entry block and marks
// every block in each natural loop with its nesting count.
func (g *Graph) computeLoopDepth() {
	if len(g.Blocks) == 0 {
		return
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	type backEdge struct{ from, to *Block }
	var backs []backEdge

	var dfs func(b *Block)
	dfs = func(b *Block) {
		color[b.Index] = gray
		for _, s := range b.Succs {
			switch color[s.Index] {
			case white:
				dfs(s)
			case gray:
				backs = append(backs, backEdge{b, s})
			}
		}
		color[b.Index] = black
	}
	dfs(g.Blocks[0])

	// For each back edge from->to, the natural loop is to plus all blocks
	// that reach from without passing through to.
	for _, be := range backs {
		inLoop := map[int]bool{be.to.Index: true}
		stack := []*Block{be.from}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if inLoop[b.Index] {
				continue
			}
			inLoop[b.Index] = true
			for _, p := range b.Preds {
				stack = append(stack, p)
			}
		}
		for idx := range inLoop {
			g.Blocks[idx].LoopDepth++
		}
	}
}

// BlockAt returns the block containing instruction index i.
func (g *Graph) BlockAt(i int) (*Block, bool) {
	for _, b := range g.Blocks {
		if i >= b.Start && i < b.End {
			return b, true
		}
	}
	return nil, false
}

// StaticAvgBlockSize returns the mean block size in instructions.
func (g *Graph) StaticAvgBlockSize() float64 {
	if len(g.Blocks) == 0 {
		return 0
	}
	total := 0
	for _, b := range g.Blocks {
		total += b.Size()
	}
	return float64(total) / float64(len(g.Blocks))
}
