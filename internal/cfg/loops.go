package cfg

import "sort"

// Loop is a natural loop: a header block plus every block that can reach
// one of the loop's back edges without leaving through the header. Back
// edges sharing a header are merged into one loop, so headers are unique
// across the slice returned by Loops.
type Loop struct {
	// Header is the loop entry. It dominates every block in the loop —
	// that is the legality rule Loops enforces: a retreating edge whose
	// target does NOT dominate its source closes a multi-entry
	// (irreducible) region, which has a second way in besides the
	// header. Rewriting such a region as header-entered (prologue +
	// kernel) would miscompile the side entry, so those edges are
	// excluded and only counted.
	Header *Block
	// Latches are the sources of the loop's back edges, ascending by
	// block index. A well-formed counted loop has exactly one.
	Latches []*Block
	// Blocks is the loop membership including Header, ascending by
	// block index.
	Blocks []*Block
	// Depth is the loop nesting depth: the number of loops (including
	// this one) whose membership contains Header. Unlike Block.LoopDepth,
	// which counts enclosing back edges, Depth counts merged loops, so
	// two latches sharing a header contribute one level, not two.
	Depth int
	// Inner reports that no other loop's header lies inside this loop.
	Inner bool

	member map[int]bool
}

// SingleBlock reports whether the loop body is exactly the header block
// (the header's own CTI is the back edge).
func (l *Loop) SingleBlock() bool { return len(l.Blocks) == 1 }

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *Block) bool { return b != nil && l.member[b.Index] }

// Preheader returns the unique predecessor of the header from outside
// the loop, or nil if the header has no outside predecessor or more than
// one. Note that a block entered only by call or return has no CFG
// predecessors at all, so a procedure whose first block is a loop header
// yields nil here.
func (l *Loop) Preheader() *Block {
	var pre *Block
	for _, p := range l.Header.Preds {
		if l.Contains(p) {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}

// Loops finds the natural loops of the graph and the number of
// retreating edges excluded as irreducible.
//
// Because call and jmpl contribute no intra-procedural edges, procedure
// bodies are unreachable from block 0 in this CFG; dominators are
// therefore computed from a virtual root that fronts every block without
// predecessors, so loops inside call-entered procedures are found too.
// Blocks unreachable even from those roots (a cycle with no entry at
// all) take no part in loop detection.
//
// A retreating DFS edge u->v is accepted as a loop back edge only when v
// dominates u; the rest — back edges into a non-header, i.e. multi-entry
// or irreducible regions — are excluded from the result and counted in
// the second return value. See Loop.Header for why such regions are
// unsafe to transform.
func (g *Graph) Loops() ([]*Loop, int) {
	n := len(g.Blocks)
	if n == 0 {
		return nil, 0
	}

	// Reverse postorder over the multi-root DFS. The virtual root is
	// index n.
	const root = -1
	rpo := make([]int, 0, n)
	state := make([]int8, n) // 0 white, 1 gray, 2 black
	var dfs func(i int)
	dfs = func(i int) {
		state[i] = 1
		for _, s := range g.Blocks[i].Succs {
			if state[s.Index] == 0 {
				dfs(s.Index)
			}
		}
		state[i] = 2
		rpo = append(rpo, i)
	}
	dfs(0)
	for i := 1; i < n; i++ {
		if state[i] == 0 && len(g.Blocks[i].Preds) == 0 {
			dfs(i)
		}
	}
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	rpoPos := make([]int, n)
	for i := range rpoPos {
		rpoPos[i] = -1
	}
	for pos, b := range rpo {
		rpoPos[b] = pos
	}

	// Iterative dominators (Cooper/Harvey/Kennedy). DFS roots have the
	// virtual root as immediate dominator.
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -2 // unreached
	}
	idom[0] = root // block 0 is the entry even when it has predecessors
	for _, b := range rpo {
		if len(g.Blocks[b].Preds) == 0 {
			idom[b] = root
		}
	}
	pos := func(x int) int {
		if x == root {
			return -1
		}
		return rpoPos[x]
	}
	intersect := func(a, b int) int {
		for a != b {
			for pos(a) > pos(b) {
				a = idom[a]
			}
			for pos(b) > pos(a) {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if idom[b] == root {
				continue
			}
			newIdom := -2
			for _, p := range g.Blocks[b].Preds {
				if idom[p.Index] == -2 {
					continue // pred not yet processed / unreachable
				}
				if newIdom == -2 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -2 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	dominates := func(v, u int) bool {
		for u != -2 {
			if u == v {
				return true
			}
			if u == root {
				return false
			}
			u = idom[u]
		}
		return false
	}

	// Retreating edges, split into dominance-verified back edges (per
	// header) and irreducible leftovers.
	latches := make(map[int][]int) // header index -> latch indices
	irreducible := 0
	state = make([]int8, n)
	var classify func(i int)
	classify = func(i int) {
		state[i] = 1
		for _, s := range g.Blocks[i].Succs {
			switch state[s.Index] {
			case 0:
				classify(s.Index)
			case 1:
				if dominates(s.Index, i) {
					latches[s.Index] = append(latches[s.Index], i)
				} else {
					irreducible++
				}
			}
		}
		state[i] = 2
	}
	for _, b := range rpo {
		if state[b] == 0 {
			classify(b)
		}
	}

	// Natural loop per header: header plus everything reaching a latch
	// without passing through the header.
	headers := make([]int, 0, len(latches))
	for h := range latches {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		member := map[int]bool{h: true}
		stack := append([]int(nil), latches[h]...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if member[b] {
				continue
			}
			member[b] = true
			for _, p := range g.Blocks[b].Preds {
				stack = append(stack, p.Index)
			}
		}
		l := &Loop{Header: g.Blocks[h], member: member}
		for _, li := range latches[h] {
			l.Latches = append(l.Latches, g.Blocks[li])
		}
		sort.Slice(l.Latches, func(i, j int) bool { return l.Latches[i].Index < l.Latches[j].Index })
		idxs := make([]int, 0, len(member))
		for b := range member {
			idxs = append(idxs, b)
		}
		sort.Ints(idxs)
		for _, b := range idxs {
			l.Blocks = append(l.Blocks, g.Blocks[b])
		}
		loops = append(loops, l)
	}

	// Nesting depth and innermost flags over the merged loops.
	for _, l := range loops {
		for _, m := range loops {
			if m.Contains(l.Header) {
				l.Depth++
			}
		}
		l.Inner = true
		for _, m := range loops {
			if m != l && l.Contains(m.Header) {
				l.Inner = false
				break
			}
		}
	}
	return loops, irreducible
}
