package cfg

import (
	"testing"

	"eel/internal/sparc"
)

func assemble(t *testing.T, src string) []sparc.Inst {
	t.Helper()
	insts, err := sparc.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

const loopSrc = `
	mov 0, %g1
	set 10, %g2
loop:
	add %g1, 1, %g1
	cmp %g1, %g2
	bne loop
	nop
	ta 0
`

func TestBuildLoop(t *testing.T) {
	g, err := Build(assemble(t, loopSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(g.Blocks))
	}
	b0, b1, b2 := g.Blocks[0], g.Blocks[1], g.Blocks[2]
	if b0.Size() != 2 || b0.HasCTI || !b0.FallsThrough {
		t.Errorf("entry block wrong: %+v", b0)
	}
	if b1.Size() != 4 || !b1.HasCTI {
		t.Errorf("loop block wrong: size=%d hasCTI=%v", b1.Size(), b1.HasCTI)
	}
	cti, delay, ok := b1.CTI()
	if !ok || cti.Op != sparc.OpBicc || !delay.IsNop() {
		t.Errorf("loop terminator wrong: %v / %v", cti, delay)
	}
	if len(b1.Body()) != 2 {
		t.Errorf("loop body = %d instructions, want 2", len(b1.Body()))
	}
	// Edges: b0->b1; b1->b1 (taken), b1->b2 (fallthrough).
	if len(b0.Succs) != 1 || b0.Succs[0] != b1 {
		t.Errorf("b0 succs wrong")
	}
	if len(b1.Succs) != 2 {
		t.Fatalf("b1 has %d succs, want 2", len(b1.Succs))
	}
	if b1.Succs[0] != b1 || b1.Succs[1] != b2 {
		t.Errorf("b1 succs wrong: %v", b1.Succs)
	}
	if len(b1.Preds) != 2 {
		t.Errorf("b1 preds = %d, want 2", len(b1.Preds))
	}
	// Loop depth: b1 is in a loop, b0 and b2 are not.
	if b1.LoopDepth != 1 || b0.LoopDepth != 0 || b2.LoopDepth != 0 {
		t.Errorf("loop depths: %d %d %d", b0.LoopDepth, b1.LoopDepth, b2.LoopDepth)
	}
}

func TestBuildDiamond(t *testing.T) {
	src := `
	cmp %o0, 0
	ble else
	nop
	mov 1, %o1
	ba join
	nop
else:
	mov 2, %o1
join:
	retl
	nop
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(g.Blocks))
	}
	head, then, els, join := g.Blocks[0], g.Blocks[1], g.Blocks[2], g.Blocks[3]
	if len(head.Succs) != 2 {
		t.Fatalf("head succs = %d", len(head.Succs))
	}
	if head.Succs[0] != els || head.Succs[1] != then {
		t.Error("head edges wrong")
	}
	// then: ba join — unconditional, no fallthrough edge.
	if len(then.Succs) != 1 || then.Succs[0] != join || then.FallsThrough {
		t.Errorf("then edges wrong: %v fallsThrough=%v", then.Succs, then.FallsThrough)
	}
	if len(els.Succs) != 1 || els.Succs[0] != join {
		t.Error("else edges wrong")
	}
	// join ends with jmpl: no static successors.
	if len(join.Succs) != 0 {
		t.Errorf("join should have no successors: %v", join.Succs)
	}
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %d, want 2", len(join.Preds))
	}
}

func TestCallFallsThrough(t *testing.T) {
	src := `
	mov 1, %o0
	call fn
	nop
	mov 2, %o1
	ta 0
fn:
	retl
	nop
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	var callBlock *Block
	for _, b := range g.Blocks {
		if cti, _, ok := b.CTI(); ok && cti.Op == sparc.OpCall {
			callBlock = b
		}
	}
	if callBlock == nil {
		t.Fatal("no call block found")
	}
	if !callBlock.FallsThrough || len(callBlock.Succs) != 1 {
		t.Errorf("call block should fall through to the return point: %+v", callBlock)
	}
}

func TestBuildErrors(t *testing.T) {
	// CTI at end of text without delay slot.
	insts := []sparc.Inst{sparc.NewBranch(sparc.CondA, 0)}
	if _, err := Build(insts); err == nil {
		t.Error("CTI without delay slot accepted")
	}
	// CTI in delay slot.
	insts = []sparc.Inst{
		sparc.NewBranch(sparc.CondA, 2),
		sparc.NewBranch(sparc.CondA, 1),
		sparc.NewNop(),
	}
	if _, err := Build(insts); err == nil {
		t.Error("CTI in delay slot accepted")
	}
	// Branch out of range.
	insts = []sparc.Inst{sparc.NewBranch(sparc.CondA, 100), sparc.NewNop()}
	if _, err := Build(insts); err == nil {
		t.Error("out-of-range branch accepted")
	}
	// Branch into a delay slot.
	insts = []sparc.Inst{
		sparc.NewNop(),
		sparc.NewBranch(sparc.CondNE, 1), // targets the delay slot below
		sparc.NewNop(),                   // delay slot of the branch above
		sparc.NewTrap(0),
	}
	insts[1].Disp = 1 // targets index 2, the delay slot
	if _, err := Build(insts); err == nil {
		t.Error("branch into delay slot accepted")
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	g, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 0 {
		t.Error("empty text should have no blocks")
	}
	g, err = Build([]sparc.Inst{sparc.NewNop(), sparc.NewTrap(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 || g.Blocks[0].Size() != 2 {
		t.Errorf("trivial text: %d blocks", len(g.Blocks))
	}
}

func TestBlockAtAndAvgSize(t *testing.T) {
	g, err := Build(assemble(t, loopSrc))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := g.BlockAt(3)
	if !ok || b.Index != 1 {
		t.Errorf("BlockAt(3) = %v, %v", b, ok)
	}
	if _, ok := g.BlockAt(100); ok {
		t.Error("BlockAt(100) should fail")
	}
	if avg := g.StaticAvgBlockSize(); avg < 2 || avg > 4 {
		t.Errorf("StaticAvgBlockSize = %f", avg)
	}
	var empty Graph
	if empty.StaticAvgBlockSize() != 0 {
		t.Error("empty graph avg size should be 0")
	}
}

func TestNestedLoopDepth(t *testing.T) {
	src := `
outer:
	mov 0, %g2
inner:
	add %g2, 1, %g2
	cmp %g2, 10
	bne inner
	nop
	add %g1, 1, %g1
	cmp %g1, 10
	bne outer
	nop
	ta 0
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	var innerDepth, outerTailDepth int
	for _, b := range g.Blocks {
		if cti, _, ok := b.CTI(); ok && cti.Op == sparc.OpBicc {
			if cti.Disp < 0 {
				continue
			}
		}
		_ = b
	}
	// Block 1 is the inner loop body; block 2 the outer tail.
	innerDepth = g.Blocks[1].LoopDepth
	outerTailDepth = g.Blocks[2].LoopDepth
	if innerDepth != 2 {
		t.Errorf("inner loop depth = %d, want 2", innerDepth)
	}
	if outerTailDepth != 1 {
		t.Errorf("outer tail depth = %d, want 1", outerTailDepth)
	}
}
