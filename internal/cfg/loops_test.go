package cfg

import (
	"testing"

	"eel/internal/sparc"
)

func TestLoopsSimple(t *testing.T) {
	g, err := Build(assemble(t, loopSrc))
	if err != nil {
		t.Fatal(err)
	}
	loops, irr := g.Loops()
	if irr != 0 {
		t.Fatalf("irreducible = %d, want 0", irr)
	}
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != g.Blocks[1] || !l.SingleBlock() || len(l.Latches) != 1 || l.Latches[0] != l.Header {
		t.Errorf("loop shape wrong: header=%d latches=%d single=%v",
			l.Header.Index, len(l.Latches), l.SingleBlock())
	}
	if l.Depth != 1 || !l.Inner {
		t.Errorf("depth=%d inner=%v, want 1/true", l.Depth, l.Inner)
	}
	if pre := l.Preheader(); pre != g.Blocks[0] {
		t.Errorf("preheader = %v, want block 0", pre)
	}
	if !l.Contains(g.Blocks[1]) || l.Contains(g.Blocks[0]) || l.Contains(g.Blocks[2]) {
		t.Error("Contains wrong")
	}
}

// Two back edges into one header merge into a single loop: Loop.Depth
// counts merged loops (1), while Block.LoopDepth keeps counting back
// edges (2 for blocks inside both).
func TestLoopsNestedSharedHeader(t *testing.T) {
	src := `
head:
	add %g1, 1, %g1
	cmp %g1, 10
	bne head
	nop
	add %g2, 1, %g2
	cmp %g2, 20
	bne head
	nop
	ta 0
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	loops, irr := g.Loops()
	if irr != 0 || len(loops) != 1 {
		t.Fatalf("loops=%d irreducible=%d, want 1/0", len(loops), irr)
	}
	l := loops[0]
	if l.Header != g.Blocks[0] || len(l.Latches) != 2 || l.SingleBlock() {
		t.Errorf("merged loop shape wrong: latches=%d blocks=%d", len(l.Latches), len(l.Blocks))
	}
	if l.Depth != 1 || !l.Inner {
		t.Errorf("merged loop depth=%d inner=%v, want 1/true", l.Depth, l.Inner)
	}
	// The approximate per-back-edge counter sees two enclosing edges for
	// the inner latch, one for the outer tail.
	if g.Blocks[0].LoopDepth != 2 || g.Blocks[1].LoopDepth != 1 {
		t.Errorf("LoopDepth = %d/%d, want 2/1", g.Blocks[0].LoopDepth, g.Blocks[1].LoopDepth)
	}
}

// A back edge whose CTI annuls its delay slot is still a structural
// loop; rejecting annulled back edges is the pipeliner's job, not the
// CFG's.
func TestLoopsAnnulledBackEdge(t *testing.T) {
	src := `
	mov 0, %g1
loop:
	add %g1, 1, %g1
	cmp %g1, 10
	bne,a loop
	sub %g1, 2, %g2
	ta 0
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	loops, irr := g.Loops()
	if irr != 0 || len(loops) != 1 {
		t.Fatalf("loops=%d irreducible=%d, want 1/0", len(loops), irr)
	}
	l := loops[0]
	if !l.SingleBlock() || l.Header.LoopDepth != 1 {
		t.Errorf("annulled loop shape wrong: single=%v depth=%d", l.SingleBlock(), l.Header.LoopDepth)
	}
	cti, _, ok := l.Header.CTI()
	if !ok || !cti.Annul {
		t.Errorf("back edge should be an annulled CTI: %v", cti)
	}
}

// A zero-body loop (the block is just the CTI and its delay slot) is
// found and reports an empty schedulable body.
func TestLoopsZeroBody(t *testing.T) {
	src := `
	mov 0, %g1
loop:
	ba loop
	nop
	ta 0
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	loops, irr := g.Loops()
	if irr != 0 || len(loops) != 1 {
		t.Fatalf("loops=%d irreducible=%d, want 1/0", len(loops), irr)
	}
	l := loops[0]
	if !l.SingleBlock() || len(l.Header.Body()) != 0 {
		t.Errorf("zero-body loop: single=%v body=%d", l.SingleBlock(), len(l.Header.Body()))
	}
	if l.Header.LoopDepth != 1 || l.Depth != 1 {
		t.Errorf("zero-body loop depth: block=%d loop=%d", l.Header.LoopDepth, l.Depth)
	}
	// ba never falls through, so the trap block is unreachable; the loop
	// has a unique preheader regardless.
	if pre := l.Preheader(); pre != g.Blocks[0] {
		t.Errorf("preheader = %v", pre)
	}
}

// A branch into the middle of a loop makes the region multi-entry: the
// retreating edge's target no longer dominates its source, so Loops
// excludes it rather than miscompiling the side entry.
func TestLoopsIrreducibleExcluded(t *testing.T) {
	src := `
	cmp %g1, 0
	ble mid
	nop
head:
	add %g1, 1, %g1
mid:
	cmp %g1, 10
	bne head
	nop
	ta 0
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	loops, irr := g.Loops()
	if len(loops) != 0 {
		t.Fatalf("irreducible region produced %d loops, want 0", len(loops))
	}
	if irr != 1 {
		t.Errorf("irreducible = %d, want 1", irr)
	}
}

// Proper nesting: distinct headers, inner loop inside the outer one.
func TestLoopsProperNesting(t *testing.T) {
	g, err := Build(assemble(t, `
outer:
	mov 0, %g2
inner:
	add %g2, 1, %g2
	cmp %g2, 10
	bne inner
	nop
	add %g1, 1, %g1
	cmp %g1, 10
	bne outer
	nop
	ta 0
`))
	if err != nil {
		t.Fatal(err)
	}
	loops, irr := g.Loops()
	if irr != 0 || len(loops) != 2 {
		t.Fatalf("loops=%d irreducible=%d, want 2/0", len(loops), irr)
	}
	outer, inner := loops[0], loops[1]
	if outer.Header.Index > inner.Header.Index {
		outer, inner = inner, outer
	}
	if !inner.SingleBlock() || !inner.Inner || inner.Depth != 2 {
		t.Errorf("inner loop wrong: single=%v inner=%v depth=%d", inner.SingleBlock(), inner.Inner, inner.Depth)
	}
	if outer.Inner || outer.Depth != 1 || len(outer.Blocks) != 3 {
		t.Errorf("outer loop wrong: inner=%v depth=%d blocks=%d", outer.Inner, outer.Depth, len(outer.Blocks))
	}
	if !outer.Contains(inner.Header) || inner.Contains(outer.Header) {
		t.Error("nesting containment wrong")
	}
}

// Loops inside call-entered procedures are unreachable from block 0 in
// this CFG (call adds no edge); the virtual-root dominator computation
// must still find them.
func TestLoopsCallEnteredProcedure(t *testing.T) {
	src := `
	mov 3, %o0
	call k
	nop
	ta 0
k:
	set 8, %l7
kloop:
	add %g1, 1, %g1
	subcc %l7, 1, %l7
	bne kloop
	nop
	retl
	nop
`
	g, err := Build(assemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	loops, irr := g.Loops()
	if irr != 0 || len(loops) != 1 {
		t.Fatalf("loops=%d irreducible=%d, want 1/0", len(loops), irr)
	}
	l := loops[0]
	if !l.SingleBlock() {
		t.Fatalf("kernel loop should be single-block: %d blocks", len(l.Blocks))
	}
	if cti, _, _ := l.Header.CTI(); cti.Op != sparc.OpBicc || cti.Cond != sparc.CondNE {
		t.Errorf("back edge CTI wrong: %v", cti)
	}
	if pre := l.Preheader(); pre == nil || pre.Start != l.Header.Start-1 {
		t.Errorf("preheader should be the set block: %+v", pre)
	}
}

func TestLoopsEmptyGraph(t *testing.T) {
	g, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if loops, irr := g.Loops(); len(loops) != 0 || irr != 0 {
		t.Error("empty graph should have no loops")
	}
}
