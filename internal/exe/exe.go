// Package exe implements a compact ELF-like container for SPARC V8
// executables: a text segment of 32-bit instruction words, an initialized
// data segment, a BSS size, an entry point, and a symbol table.
//
// The paper's EEL reads and writes real SPARC ELF/a.out binaries through
// libbfd; this package substitutes a self-contained format with the same
// structural properties EEL relies on — fixed-width instruction words at
// known virtual addresses, separate text and data, and named symbols —
// so the editing layer performs genuine binary rewriting (decode words,
// splice instrumentation, relocate branch displacements, re-encode).
package exe

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Default segment layout, loosely mirroring SunOS/Solaris SPARC binaries.
const (
	DefaultTextBase = 0x00010000
	DefaultDataBase = 0x40000000

	// WordSize is the SPARC instruction width in bytes.
	WordSize = 4
)

// Magic identifies the container format ("EELX", version 1).
var Magic = [4]byte{'E', 'E', 'L', 'X'}

const formatVersion = 1

// Symbol names an address in the image. Func symbols mark procedure entry
// points; the analyzer uses them to seed control-flow discovery.
type Symbol struct {
	Name string
	Addr uint32
	Func bool
}

// Exe is an in-memory executable image.
type Exe struct {
	Entry    uint32
	TextBase uint32
	Text     []uint32 // instruction words
	DataBase uint32
	Data     []byte
	BSSSize  uint32
	Symbols  []Symbol
}

// New returns an empty executable with the default segment layout and the
// entry point at the start of text.
func New() *Exe {
	return &Exe{
		Entry:    DefaultTextBase,
		TextBase: DefaultTextBase,
		DataBase: DefaultDataBase,
	}
}

// TextEnd returns the first address past the text segment.
func (e *Exe) TextEnd() uint32 { return e.TextBase + uint32(len(e.Text))*WordSize }

// DataEnd returns the first address past the initialized data segment.
func (e *Exe) DataEnd() uint32 { return e.DataBase + uint32(len(e.Data)) }

// InText reports whether addr falls inside the text segment.
func (e *Exe) InText(addr uint32) bool {
	return addr >= e.TextBase && addr < e.TextEnd()
}

// WordAt returns the instruction word at a text address.
func (e *Exe) WordAt(addr uint32) (uint32, error) {
	if !e.InText(addr) {
		return 0, fmt.Errorf("exe: address %#x outside text [%#x,%#x)", addr, e.TextBase, e.TextEnd())
	}
	if addr%WordSize != 0 {
		return 0, fmt.Errorf("exe: misaligned text address %#x", addr)
	}
	return e.Text[(addr-e.TextBase)/WordSize], nil
}

// AddrOf returns the text address of instruction index i.
func (e *Exe) AddrOf(i int) uint32 { return e.TextBase + uint32(i)*WordSize }

// IndexOf returns the instruction index of a text address.
func (e *Exe) IndexOf(addr uint32) (int, error) {
	if !e.InText(addr) || addr%WordSize != 0 {
		return 0, fmt.Errorf("exe: bad text address %#x", addr)
	}
	return int((addr - e.TextBase) / WordSize), nil
}

// AddSymbol appends a symbol.
func (e *Exe) AddSymbol(name string, addr uint32, isFunc bool) {
	e.Symbols = append(e.Symbols, Symbol{Name: name, Addr: addr, Func: isFunc})
}

// Lookup returns the symbol with the given name.
func (e *Exe) Lookup(name string) (Symbol, bool) {
	for _, s := range e.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// SymbolAt returns the name of the function symbol covering addr, if any:
// the function symbol with the greatest address <= addr.
func (e *Exe) SymbolAt(addr uint32) (Symbol, bool) {
	var best Symbol
	found := false
	for _, s := range e.Symbols {
		if !s.Func || s.Addr > addr {
			continue
		}
		if !found || s.Addr > best.Addr {
			best, found = s, true
		}
	}
	return best, found
}

// FuncSymbols returns the function symbols sorted by address.
func (e *Exe) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range e.Symbols {
		if s.Func {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Validate checks internal consistency: alignment, non-overlapping
// segments, entry inside text, symbols inside a segment.
func (e *Exe) Validate() error {
	if e.TextBase%WordSize != 0 {
		return fmt.Errorf("exe: text base %#x misaligned", e.TextBase)
	}
	if len(e.Text) == 0 {
		return fmt.Errorf("exe: empty text segment")
	}
	if e.TextEnd() > e.DataBase && e.DataBase >= e.TextBase {
		return fmt.Errorf("exe: text [%#x,%#x) overlaps data base %#x",
			e.TextBase, e.TextEnd(), e.DataBase)
	}
	if !e.InText(e.Entry) {
		return fmt.Errorf("exe: entry %#x outside text", e.Entry)
	}
	for _, s := range e.Symbols {
		inData := s.Addr >= e.DataBase && s.Addr < e.DataEnd()+e.BSSSize
		if !e.InText(s.Addr) && !inData {
			return fmt.Errorf("exe: symbol %q at %#x outside segments", s.Name, s.Addr)
		}
	}
	return nil
}

// Marshal serializes the image.
//
// Layout (big-endian, like SPARC itself):
//
//	magic[4] version u32 entry u32
//	textBase u32 textLen u32 dataBase u32 dataLen u32 bssSize u32 nsyms u32
//	text words... data bytes... symbols (nameLen u16, name, addr u32, func u8)...
func (e *Exe) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	be := func(v uint32) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	be(formatVersion)
	be(e.Entry)
	be(e.TextBase)
	be(uint32(len(e.Text)))
	be(e.DataBase)
	be(uint32(len(e.Data)))
	be(e.BSSSize)
	be(uint32(len(e.Symbols)))
	for _, w := range e.Text {
		be(w)
	}
	buf.Write(e.Data)
	for _, s := range e.Symbols {
		var n [2]byte
		binary.BigEndian.PutUint16(n[:], uint16(len(s.Name)))
		buf.Write(n[:])
		buf.WriteString(s.Name)
		be(s.Addr)
		if s.Func {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	return buf.Bytes()
}

// Unmarshal parses a serialized image.
func Unmarshal(b []byte) (*Exe, error) {
	r := bytes.NewReader(b)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("exe: truncated header: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("exe: bad magic %q", magic)
	}
	var hdr [7]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("exe: truncated header: %w", err)
		}
	}
	version := hdr[0]
	if version != formatVersion {
		return nil, fmt.Errorf("exe: unsupported version %d", version)
	}
	e := &Exe{
		Entry:    hdr[1],
		TextBase: hdr[2],
		DataBase: hdr[4],
		BSSSize:  hdr[6],
	}
	textLen, dataLen := hdr[3], hdr[5]
	if uint64(textLen)*4+uint64(dataLen) > uint64(len(b)) {
		return nil, fmt.Errorf("exe: segment lengths exceed file size")
	}
	var nsyms uint32
	if err := binary.Read(r, binary.BigEndian, &nsyms); err != nil {
		return nil, fmt.Errorf("exe: truncated header: %w", err)
	}
	e.Text = make([]uint32, textLen)
	if err := binary.Read(r, binary.BigEndian, e.Text); err != nil {
		return nil, fmt.Errorf("exe: truncated text: %w", err)
	}
	e.Data = make([]byte, dataLen)
	if _, err := io.ReadFull(r, e.Data); err != nil {
		return nil, fmt.Errorf("exe: truncated data: %w", err)
	}
	for i := uint32(0); i < nsyms; i++ {
		var nlen uint16
		if err := binary.Read(r, binary.BigEndian, &nlen); err != nil {
			return nil, fmt.Errorf("exe: truncated symbol table: %w", err)
		}
		name := make([]byte, nlen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("exe: truncated symbol name: %w", err)
		}
		var addr uint32
		if err := binary.Read(r, binary.BigEndian, &addr); err != nil {
			return nil, fmt.Errorf("exe: truncated symbol addr: %w", err)
		}
		fb, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("exe: truncated symbol flags: %w", err)
		}
		e.Symbols = append(e.Symbols, Symbol{Name: string(name), Addr: addr, Func: fb != 0})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("exe: %d trailing bytes", r.Len())
	}
	return e, nil
}

// WriteFile writes the image to a file.
func (e *Exe) WriteFile(path string) error {
	return os.WriteFile(path, e.Marshal(), 0o644)
}

// ReadFile reads an image from a file.
func ReadFile(path string) (*Exe, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(b)
}
