package exe

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() *Exe {
	e := New()
	e.Text = []uint32{0x01000000, 0x82006001, 0x91d02000}
	e.Data = []byte{1, 2, 3, 4, 5}
	e.BSSSize = 64
	e.AddSymbol("main", e.TextBase, true)
	e.AddSymbol("helper", e.TextBase+8, true)
	e.AddSymbol("counter", e.DataBase, false)
	return e
}

func TestMarshalRoundTrip(t *testing.T) {
	e := sample()
	got, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		e := New()
		e.Text = make([]uint32, 1+r.Intn(64))
		for i := range e.Text {
			e.Text[i] = r.Uint32()
		}
		e.Data = make([]byte, r.Intn(128))
		r.Read(e.Data)
		e.BSSSize = uint32(r.Intn(1024))
		e.Entry = e.TextBase + uint32(r.Intn(len(e.Text)))*WordSize
		for i := 0; i < r.Intn(5); i++ {
			e.AddSymbol(string(rune('a'+i)), e.TextBase+uint32(4*i), i%2 == 0)
		}
		got, err := Unmarshal(e.Marshal())
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return reflect.DeepEqual(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	good := sample().Marshal()
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:10],
		"bad magic":    append([]byte("NOPE"), good[4:]...),
		"truncated":    good[:len(good)-3],
		"trailing":     append(bytes.Clone(good), 0),
	}
	// Bad version.
	bad := bytes.Clone(good)
	bad[7] = 99
	cases["bad version"] = bad
	// Absurd text length.
	huge := bytes.Clone(good)
	huge[16], huge[17], huge[18], huge[19] = 0xff, 0xff, 0xff, 0xff
	cases["huge text"] = huge
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: Unmarshal succeeded, want error", name)
		}
	}
}

func TestAddressing(t *testing.T) {
	e := sample()
	if e.TextEnd() != e.TextBase+12 {
		t.Errorf("TextEnd = %#x", e.TextEnd())
	}
	if !e.InText(e.TextBase) || !e.InText(e.TextBase+8) || e.InText(e.TextBase+12) {
		t.Error("InText boundaries wrong")
	}
	w, err := e.WordAt(e.TextBase + 4)
	if err != nil || w != 0x82006001 {
		t.Errorf("WordAt = %#x, %v", w, err)
	}
	if _, err := e.WordAt(e.TextBase + 2); err == nil {
		t.Error("misaligned WordAt succeeded")
	}
	if _, err := e.WordAt(e.TextBase - 4); err == nil {
		t.Error("out-of-range WordAt succeeded")
	}
	idx, err := e.IndexOf(e.TextBase + 8)
	if err != nil || idx != 2 {
		t.Errorf("IndexOf = %d, %v", idx, err)
	}
	if e.AddrOf(2) != e.TextBase+8 {
		t.Errorf("AddrOf(2) = %#x", e.AddrOf(2))
	}
}

func TestSymbols(t *testing.T) {
	e := sample()
	s, ok := e.Lookup("helper")
	if !ok || s.Addr != e.TextBase+8 {
		t.Errorf("Lookup(helper) = %+v, %v", s, ok)
	}
	if _, ok := e.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	s, ok = e.SymbolAt(e.TextBase + 4)
	if !ok || s.Name != "main" {
		t.Errorf("SymbolAt(+4) = %+v", s)
	}
	s, ok = e.SymbolAt(e.TextBase + 100)
	if !ok || s.Name != "helper" {
		t.Errorf("SymbolAt(+100) = %+v", s)
	}
	funcs := e.FuncSymbols()
	if len(funcs) != 2 || funcs[0].Name != "main" || funcs[1].Name != "helper" {
		t.Errorf("FuncSymbols = %+v", funcs)
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("valid image rejected: %v", err)
	}
	e := sample()
	e.Text = nil
	if err := e.Validate(); err == nil {
		t.Error("empty text accepted")
	}
	e = sample()
	e.Entry = 4
	if err := e.Validate(); err == nil {
		t.Error("entry outside text accepted")
	}
	e = sample()
	e.AddSymbol("way-out", 0xdeadbeef, false)
	if err := e.Validate(); err == nil {
		t.Error("out-of-segment symbol accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.out")
	e := sample()
	if err := e.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Error("file round trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("ReadFile(missing) succeeded")
	}
}
