package spawn

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"eel/internal/sparc"
)

func TestLoadAllMachines(t *testing.T) {
	for _, machine := range Machines() {
		m, err := Load(machine)
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		if m.Machine != machine {
			t.Errorf("%s: Machine field = %q", machine, m.Machine)
		}
		if len(m.Groups) == 0 {
			t.Fatalf("%s: no timing groups", machine)
		}
		// Every supported opcode must resolve in both variants.
		for op := sparc.Op(1); op < sparc.NumOps; op++ {
			for _, imm := range []bool{false, true} {
				g, err := m.GroupFor(op, imm)
				if err != nil {
					t.Errorf("%s: GroupFor(%s, imm=%v): %v", machine, op.Name(), imm, err)
					continue
				}
				if g.Cycles <= 0 {
					t.Errorf("%s: %s has non-positive cycle count %d", machine, op.Name(), g.Cycles)
				}
			}
		}
	}
}

func TestLoadCaches(t *testing.T) {
	a, err := Load(UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(UltraSPARC)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Load should cache models")
	}
	if _, err := Load(Machine("pdp11")); err == nil {
		t.Error("Load(pdp11) succeeded")
	}
}

func TestIssueWidths(t *testing.T) {
	widths := map[Machine]int{HyperSPARC: 2, SuperSPARC: 3, UltraSPARC: 4}
	for machine, want := range widths {
		m := MustLoad(machine)
		if m.IssueWidth != want {
			t.Errorf("%s: IssueWidth = %d, want %d", machine, m.IssueWidth, want)
		}
	}
}

func TestGroupSharingAndVariants(t *testing.T) {
	m := MustLoad(UltraSPARC)
	add, _ := m.GroupFor(sparc.OpAdd, false)
	sub, _ := m.GroupFor(sparc.OpSub, false)
	if add.ID != sub.ID {
		t.Error("add and sub should share a timing group")
	}
	addImm, _ := m.GroupFor(sparc.OpAdd, true)
	if addImm.ID == add.ID {
		t.Error("register and immediate add should differ (one fewer port read)")
	}
	ld, _ := m.GroupFor(sparc.OpLd, true)
	if ld.ID == add.ID {
		t.Error("ld and add should not share a group")
	}
	if !ld.HasMarker("isLoad") {
		t.Error("ld group should carry isLoad")
	}
	st, _ := m.GroupFor(sparc.OpSt, true)
	if !st.HasMarker("isStore") {
		t.Error("st group should carry isStore")
	}
	sll, _ := m.GroupFor(sparc.OpSll, true)
	if !sll.HasMarker("isShift") {
		t.Error("sll group should carry isShift")
	}
}

// TestModelTimings pins the latencies DESIGN.md calls out: ALU results
// available next cycle, loads with the documented use latency, sethi
// usable by an instruction issued in the same cycle.
func TestModelTimings(t *testing.T) {
	cases := []struct {
		machine   Machine
		op        sparc.Op
		wantAvail int
	}{
		{HyperSPARC, sparc.OpAdd, 2},
		{SuperSPARC, sparc.OpAdd, 2},
		{UltraSPARC, sparc.OpAdd, 2},
		{HyperSPARC, sparc.OpLd, 2}, // 1-cycle load latency (paper §4.1)
		{SuperSPARC, sparc.OpLd, 3}, // 2-cycle load latency
		{UltraSPARC, sparc.OpLd, 3}, // 2-cycle load latency
		{HyperSPARC, sparc.OpSethi, 1},
		{UltraSPARC, sparc.OpSethi, 1},
	}
	for _, c := range cases {
		m := MustLoad(c.machine)
		g, err := m.GroupFor(c.op, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, w := range g.Writes {
			if w.Field == "rd" {
				found = true
				if w.Cycle != c.wantAvail {
					t.Errorf("%s %s: rd available at %d, want %d",
						c.machine, c.op.Name(), w.Cycle, c.wantAvail)
				}
			}
		}
		if !found {
			t.Errorf("%s %s: no rd write recorded", c.machine, c.op.Name())
		}
	}
}

func TestFPDivLatencies(t *testing.T) {
	super := MustLoad(SuperSPARC)
	ultra := MustLoad(UltraSPARC)
	sg, _ := super.GroupFor(sparc.OpFdivd, false)
	ug, _ := ultra.GroupFor(sparc.OpFdivd, false)
	if sg.Cycles >= ug.Cycles {
		t.Errorf("SuperSPARC fdivd (%d cycles) should be shorter than UltraSPARC (%d)",
			sg.Cycles, ug.Cycles)
	}
	if !ug.HasMarker("isFPDiv") {
		t.Error("fdivd should carry isFPDiv")
	}
}

func TestUnitIndex(t *testing.T) {
	m := MustLoad(UltraSPARC)
	if m.UnitIndex("Group") != m.GroupUnit {
		t.Error("UnitIndex(Group) != GroupUnit")
	}
	if m.UnitIndex("NoSuchUnit") != -1 {
		t.Error("UnitIndex of unknown unit should be -1")
	}
	if m.Units[m.UnitIndex("ALU")].Count != 2 {
		t.Errorf("UltraSPARC ALU count = %d, want 2", m.Units[m.UnitIndex("ALU")].Count)
	}
}

func TestAnalyzeRejectsIncompleteDescriptions(t *testing.T) {
	// A description lacking most instruction semantics must be rejected
	// with a list of the missing mnemonics.
	src := `
unit Group 2
register untyped{32} R[32]
sem add is (AR Group, D 1)
`
	_, err := Analyze("partial", src)
	if err == nil {
		t.Fatal("Analyze accepted incomplete description")
	}
	if !strings.Contains(err.Error(), "sub") {
		t.Errorf("error should list missing mnemonics: %v", err)
	}
}

func TestAnalyzeRequiresGroupUnit(t *testing.T) {
	if _, err := Analyze("nogroup", "unit ALU 1\nsem add is (AR ALU, D 1)"); err == nil {
		t.Error("Analyze accepted description without issue unit")
	}
}

func TestGenerateParsesAndCovers(t *testing.T) {
	for _, machine := range Machines() {
		m := MustLoad(machine)
		src, err := Generate(m, string(machine))
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "gen.go", src, parser.AllErrors); err != nil {
			t.Fatalf("%s: generated source does not parse: %v", machine, err)
		}
		for _, want := range []string{
			"package " + string(machine),
			"DO NOT EDIT",
			"var GroupCycles",
			"var GroupAcquire",
			"var GroupRelease",
			"var GroupReads",
			"var GroupWrites",
			"var OpGroups",
			"func (s *State) Stalls",
			`"add/r":`,
			`"fdivd/r":`,
		} {
			if !strings.Contains(src, want) {
				t.Errorf("%s: generated source lacks %q", machine, want)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := MustLoad(SuperSPARC)
	a, err := Generate(m, "supersparc")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(m, "supersparc")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Generate is not deterministic")
	}
}

func TestDescribe(t *testing.T) {
	m := MustLoad(UltraSPARC)
	d := m.Describe()
	for _, want := range []string{
		"machine ultrasparc: 4-way issue",
		"Group×4",
		"ld/i",
		"isLoad",
		"avail@",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe lacks %q", want)
		}
	}
}

func TestLatencyTable(t *testing.T) {
	m := MustLoad(UltraSPARC)
	lt := m.LatencyTable()
	if lt["add"][1] != 2 {
		t.Errorf("add availability = %d, want 2", lt["add"][1])
	}
	if lt["ld"][1] != 3 {
		t.Errorf("ld availability = %d, want 3", lt["ld"][1])
	}
	if lt["fdivd"][0] < 20 {
		t.Errorf("fdivd cycles = %d, want long", lt["fdivd"][0])
	}
	names := SortedOpNames(lt)
	if len(names) != len(lt) || names[0] > names[len(names)-1] {
		t.Error("SortedOpNames wrong")
	}
}
