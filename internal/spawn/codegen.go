package spawn

import (
	"fmt"
	"go/format"
	"strings"

	"eel/internal/sparc"
)

// Generate expands the pipeline_stalls template for a machine model,
// producing a self-contained Go source file — the analogue of Spawn
// replacing {{...}} annotations in an annotated C++ file (Figure 1,
// Appendix A). The pkg argument names the generated package.
func Generate(m *Model, pkg string) (string, error) {
	tmpl, err := embedded.ReadFile("templates/pipeline_stalls.go.spawn")
	if err != nil {
		return "", fmt.Errorf("spawn: missing template: %w", err)
	}
	src := string(tmpl)
	repl := map[string]string{
		"{{MACHINE}}":      string(m.Machine),
		"{{PACKAGE}}":      pkg,
		"{{UNITS COUNT}}":  fmt.Sprint(len(m.Units)),
		"{{GROUPS COUNT}}": fmt.Sprint(len(m.Groups)),
		"{{ISSUE UNIT}}":   fmt.Sprint(m.GroupUnit),
		"{{ISSUE WIDTH}}":  fmt.Sprint(m.IssueWidth),
		"{{REGS COUNT}}":   fmt.Sprint(sparc.NumRegs),
		"{{UNIT TABLE}}":   unitTable(m),
		"{{GROUP TABLE}}":  groupTable(m),
		"{{OP TABLE}}":     opTable(m),
	}
	for k, v := range repl {
		src = strings.ReplaceAll(src, k, v)
	}
	// Annotations are spelled in capitals; table literals also contain
	// "{{" so only flag an upper-case letter right after the braces.
	for i := strings.Index(src, "{{"); i >= 0; i = strings.Index(src[i+2:], "{{") + i + 2 {
		if i+2 < len(src) && src[i+2] >= 'A' && src[i+2] <= 'Z' {
			end := i + 40
			if end > len(src) {
				end = len(src)
			}
			return "", fmt.Errorf("spawn: unexpanded annotation near %q", src[i:end])
		}
		if strings.Index(src[i+2:], "{{") < 0 {
			break
		}
	}
	formatted, err := format.Source([]byte(src))
	if err != nil {
		return "", fmt.Errorf("spawn: generated code does not parse: %w", err)
	}
	return string(formatted), nil
}

func unitTable(m *Model) string {
	var b strings.Builder
	b.WriteString("// UnitNames and UnitCounts index the declared pipeline resources.\n")
	b.WriteString("var UnitNames = [NumUnits]string{")
	for i, u := range m.Units {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", u.Name)
	}
	b.WriteString("}\n\n")
	b.WriteString("var UnitCounts = [NumUnits]int{")
	for i, u := range m.Units {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", u.Count)
	}
	b.WriteString("}\n")
	return b.String()
}

func groupTable(m *Model) string {
	var b strings.Builder
	b.WriteString("// GroupCycles[g] is the pipeline occupancy of timing group g.\n")
	b.WriteString("var GroupCycles = [NumGroups]int{")
	for i, g := range m.Groups {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", g.Cycles)
	}
	b.WriteString("}\n\n")

	writeEvents := func(name, doc string, sel func(*Group) [][]Event) {
		fmt.Fprintf(&b, "// %s\n", doc)
		fmt.Fprintf(&b, "var %s = [NumGroups][][]UnitUse{\n", name)
		for _, g := range m.Groups {
			b.WriteString("\t{")
			for c, evs := range sel(g) {
				if c > 0 {
					b.WriteString(", ")
				}
				b.WriteString("{")
				for j, e := range evs {
					if j > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "{%d, %d}", e.Unit, e.Num)
				}
				b.WriteString("}")
			}
			b.WriteString("},\n")
		}
		b.WriteString("}\n\n")
	}
	writeEvents("GroupAcquire", "GroupAcquire[g][c] lists unit acquisitions in relative cycle c.",
		func(g *Group) [][]Event { return g.Acquire })
	writeEvents("GroupRelease", "GroupRelease[g][c] lists unit releases in relative cycle c.",
		func(g *Group) [][]Event { return g.Release })

	writeAccesses := func(name, doc string, sel func(*Group) []FieldAccess) {
		fmt.Fprintf(&b, "// %s\n", doc)
		fmt.Fprintf(&b, "var %s = [NumGroups][]FieldTime{\n", name)
		for _, g := range m.Groups {
			b.WriteString("\t{")
			for j, a := range sel(g) {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "{%q, %q, %d, %d}", a.File, a.Field, a.Index, a.Cycle)
			}
			b.WriteString("},\n")
		}
		b.WriteString("}\n\n")
	}
	writeAccesses("GroupReads", "GroupReads[g] lists register reads with their cycle.",
		func(g *Group) []FieldAccess { return g.Reads })
	writeAccesses("GroupWrites", "GroupWrites[g] lists register writes with their first-available cycle.",
		func(g *Group) []FieldAccess { return g.Writes })

	b.WriteString("// GroupMarkers[g] carries the description's classification markers.\n")
	b.WriteString("var GroupMarkers = [NumGroups][]string{\n")
	for _, g := range m.Groups {
		b.WriteString("\t{")
		for j, mk := range g.Markers {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q", mk)
		}
		b.WriteString("},\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func opTable(m *Model) string {
	var b strings.Builder
	b.WriteString("// OpGroups maps \"mnemonic/variant\" (r = register, i = immediate)\n")
	b.WriteString("// to the instruction's timing group.\n")
	b.WriteString("var OpGroups = map[string]int{\n")
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		for v, suffix := range []string{"r", "i"} {
			if id := m.byOp[op][v]; id >= 0 {
				fmt.Fprintf(&b, "\t%q: %d,\n", op.Name()+"/"+suffix, id)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
