package spawn

import (
	"fmt"
	"go/format"
	"strings"

	"eel/internal/sparc"
)

// Generate expands the pipeline_stalls template for a machine model,
// producing a self-contained Go source file — the analogue of Spawn
// replacing {{...}} annotations in an annotated C++ file (Figure 1,
// Appendix A). The pkg argument names the generated package.
func Generate(m *Model, pkg string) (string, error) {
	tmpl, err := embedded.ReadFile("templates/pipeline_stalls.go.spawn")
	if err != nil {
		return "", fmt.Errorf("spawn: missing template: %w", err)
	}
	src := string(tmpl)
	repl := map[string]string{
		"{{MACHINE}}":      string(m.Machine),
		"{{PACKAGE}}":      pkg,
		"{{UNITS COUNT}}":  fmt.Sprint(len(m.Units)),
		"{{GROUPS COUNT}}": fmt.Sprint(len(m.Groups)),
		"{{ISSUE UNIT}}":   fmt.Sprint(m.GroupUnit),
		"{{ISSUE WIDTH}}":  fmt.Sprint(m.IssueWidth),
		"{{REGS COUNT}}":   fmt.Sprint(sparc.NumRegs),
		"{{UNIT TABLE}}":   unitTable(m),
		"{{GROUP TABLE}}":  groupTable(m),
		"{{FAST TABLE}}":   fastTable(m),
		"{{OP TABLE}}":     opTable(m),
	}
	for k, v := range repl {
		src = strings.ReplaceAll(src, k, v)
	}
	// Annotations are spelled in capitals; table literals also contain
	// "{{" so only flag an upper-case letter right after the braces.
	for i := strings.Index(src, "{{"); i >= 0; i = strings.Index(src[i+2:], "{{") + i + 2 {
		if i+2 < len(src) && src[i+2] >= 'A' && src[i+2] <= 'Z' {
			end := i + 40
			if end > len(src) {
				end = len(src)
			}
			return "", fmt.Errorf("spawn: unexpanded annotation near %q", src[i:end])
		}
		if strings.Index(src[i+2:], "{{") < 0 {
			break
		}
	}
	formatted, err := format.Source([]byte(src))
	if err != nil {
		return "", fmt.Errorf("spawn: generated code does not parse: %w", err)
	}
	return string(formatted), nil
}

func unitTable(m *Model) string {
	var b strings.Builder
	b.WriteString("// UnitNames and UnitCounts index the declared pipeline resources.\n")
	b.WriteString("var UnitNames = [NumUnits]string{")
	for i, u := range m.Units {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", u.Name)
	}
	b.WriteString("}\n\n")
	b.WriteString("var UnitCounts = [NumUnits]int{")
	for i, u := range m.Units {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", u.Count)
	}
	b.WriteString("}\n")
	return b.String()
}

func groupTable(m *Model) string {
	var b strings.Builder
	b.WriteString("// GroupCycles[g] is the pipeline occupancy of timing group g.\n")
	b.WriteString("var GroupCycles = [NumGroups]int{")
	for i, g := range m.Groups {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", g.Cycles)
	}
	b.WriteString("}\n\n")

	writeEvents := func(name, doc string, sel func(*Group) [][]Event) {
		fmt.Fprintf(&b, "// %s\n", doc)
		fmt.Fprintf(&b, "var %s = [NumGroups][][]UnitUse{\n", name)
		for _, g := range m.Groups {
			b.WriteString("\t{")
			for c, evs := range sel(g) {
				if c > 0 {
					b.WriteString(", ")
				}
				b.WriteString("{")
				for j, e := range evs {
					if j > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "{%d, %d}", e.Unit, e.Num)
				}
				b.WriteString("}")
			}
			b.WriteString("},\n")
		}
		b.WriteString("}\n\n")
	}
	writeEvents("GroupAcquire", "GroupAcquire[g][c] lists unit acquisitions in relative cycle c.",
		func(g *Group) [][]Event { return g.Acquire })
	writeEvents("GroupRelease", "GroupRelease[g][c] lists unit releases in relative cycle c.",
		func(g *Group) [][]Event { return g.Release })

	writeAccesses := func(name, doc string, sel func(*Group) []FieldAccess) {
		fmt.Fprintf(&b, "// %s\n", doc)
		fmt.Fprintf(&b, "var %s = [NumGroups][]FieldTime{\n", name)
		for _, g := range m.Groups {
			b.WriteString("\t{")
			for j, a := range sel(g) {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "{%q, %q, %d, %d}", a.File, a.Field, a.Index, a.Cycle)
			}
			b.WriteString("},\n")
		}
		b.WriteString("}\n\n")
	}
	writeAccesses("GroupReads", "GroupReads[g] lists register reads with their cycle.",
		func(g *Group) []FieldAccess { return g.Reads })
	writeAccesses("GroupWrites", "GroupWrites[g] lists register writes with their first-available cycle.",
		func(g *Group) []FieldAccess { return g.Writes })

	b.WriteString("// GroupMarkers[g] carries the description's classification markers.\n")
	b.WriteString("var GroupMarkers = [NumGroups][]string{\n")
	for _, g := range m.Groups {
		b.WriteString("\t{")
		for j, mk := range g.Markers {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q", mk)
		}
		b.WriteString("},\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// fastTable emits the compiled flat tables — the same data Model.Compiled
// builds at runtime, specialized into the generated package: per timing
// group a dense per-cycle unit-usage vector, the fallback register
// read/write cycle offsets, and the model-wide horizon.
func fastTable(m *Model) string {
	t := m.Compiled()
	var b strings.Builder
	b.WriteString("// Compiled pipeline_stalls tables (paper §3.2): GroupHeld[g] is the\n")
	b.WriteString("// dense per-cycle unit-usage vector of timing group g, row-major —\n")
	b.WriteString("// GroupHeld[g][c*NumUnits+u] copies of unit u are held during relative\n")
	b.WriteString("// cycle c (releases apply before acquisitions). GroupSpan[g] is the\n")
	b.WriteString("// number of rows; no group holds units at or beyond MaxHorizon.\n")
	fmt.Fprintf(&b, "const MaxHorizon = %d\n\n", t.MaxSpan)
	b.WriteString("var GroupSpan = [NumGroups]int{")
	for i, g := range t.Groups {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", g.Span)
	}
	b.WriteString("}\n\n")
	b.WriteString("var GroupHeld = [NumGroups][]int{\n")
	for _, g := range t.Groups {
		b.WriteString("\t{")
		for i, n := range g.Held {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", n)
		}
		b.WriteString("},\n")
	}
	b.WriteString("}\n\n")
	b.WriteString("// GroupDefaultRead[g] and GroupDefaultWrite[g] are the cycle offsets\n")
	b.WriteString("// used for register accesses the description does not name explicitly.\n")
	b.WriteString("var GroupDefaultRead = [NumGroups]int{")
	for i, g := range t.Groups {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", g.DefaultRead)
	}
	b.WriteString("}\n\n")
	b.WriteString("var GroupDefaultWrite = [NumGroups]int{")
	for i, g := range t.Groups {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", g.DefaultWrite)
	}
	b.WriteString("}\n")
	return b.String()
}

// GeneratedPath returns the repo-relative path of a shipped machine's
// committed generated tables.
func GeneratedPath(machine Machine) string {
	return "internal/spawn/gen/" + string(machine) + "/tables.go"
}

// VerifyGenerated regenerates every shipped machine's tables and compares
// them byte-for-byte against the committed gen/ sources (as embedded at
// build time). A mismatch means the SADL descriptions, the template or the
// code generator drifted from the committed tables; regenerate with
//
//	go generate ./internal/spawn
func VerifyGenerated() error {
	for _, machine := range Machines() {
		m, err := Load(machine)
		if err != nil {
			return err
		}
		want, err := Generate(m, string(machine))
		if err != nil {
			return err
		}
		got, err := embedded.ReadFile("gen/" + string(machine) + "/tables.go")
		if err != nil {
			return fmt.Errorf("spawn: missing committed tables for %s: %w", machine, err)
		}
		if string(got) != want {
			return fmt.Errorf("spawn: %s is stale: committed tables differ from the %s description at byte %d (regenerate with go generate ./internal/spawn)",
				GeneratedPath(machine), machine, firstDiff(string(got), want))
		}
	}
	return nil
}

// firstDiff returns the offset of the first differing byte.
func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func opTable(m *Model) string {
	var b strings.Builder
	b.WriteString("// OpGroups maps \"mnemonic/variant\" (r = register, i = immediate)\n")
	b.WriteString("// to the instruction's timing group.\n")
	b.WriteString("var OpGroups = map[string]int{\n")
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		for v, suffix := range []string{"r", "i"} {
			if id := m.byOp[op][v]; id >= 0 {
				fmt.Fprintf(&b, "\t%q: %d,\n", op.Name()+"/"+suffix, id)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
