// Package spawn plays the role of the paper's Spawn tool (Figure 1): it
// analyzes a SADL microarchitecture description, groups instructions with
// identical timing and resource-allocation patterns, and produces the
// tables that drive the pipeline_stalls computation — either as an
// in-memory Model consumed by package pipe, or as generated Go source
// (see Generate) mirroring Spawn's annotated-C++ expansion.
package spawn

import (
	"embed"
	"fmt"
	"sort"
	"sync"

	"eel/internal/sadl"
	"eel/internal/sparc"
)

//go:embed descriptions/*.sadl templates/*.spawn gen
var embedded embed.FS

// The committed gen/ tables must track the descriptions and the template;
// VerifyGenerated (and `spawn -check`, and CI) enforce it byte-for-byte.
//
//go:generate go run eel/cmd/spawn -machine hypersparc -package hypersparc -o gen/hypersparc/tables.go
//go:generate go run eel/cmd/spawn -machine supersparc -package supersparc -o gen/supersparc/tables.go
//go:generate go run eel/cmd/spawn -machine ultrasparc -package ultrasparc -o gen/ultrasparc/tables.go

// Machine names a shipped microarchitecture description.
type Machine string

const (
	HyperSPARC Machine = "hypersparc"
	SuperSPARC Machine = "supersparc"
	UltraSPARC Machine = "ultrasparc"
)

// Machines lists the shipped descriptions.
func Machines() []Machine { return []Machine{HyperSPARC, SuperSPARC, UltraSPARC} }

// Unit is a microarchitectural resource with its multiplicity.
type Unit struct {
	Name  string
	Count int
}

// Event is an acquisition or release of Num copies of unit index Unit.
type Event struct {
	Unit int
	Num  int
}

// FieldAccess describes a register access: which encoding field (or fixed
// Index when Field is empty) of which register file, and in which cycle
// (for reads) or from which cycle the value is available (for writes).
type FieldAccess struct {
	File  string
	Field string
	Index int
	Cycle int
}

// Group is a timing group: instructions with identical timing and resource
// allocation patterns share one (the paper's space optimization, which the
// generated pipeline_stalls indexes by group id).
type Group struct {
	ID     int
	Key    string
	Cycles int
	// Acquire[c] and Release[c] list unit events in relative cycle c.
	// The slices extend one past Cycles so trailing releases are applied.
	Acquire [][]Event
	Release [][]Event
	Reads   []FieldAccess
	Writes  []FieldAccess
	// MemReads/MemWrites are the relative cycles of memory accesses.
	MemReads  []int
	MemWrites []int
	Markers   []string
	// Ops lists the (opcode, immediate-variant) pairs in this group.
	Ops []OpVariant
}

// OpVariant identifies one instruction form.
type OpVariant struct {
	Op     sparc.Op
	UseImm bool
}

// HasMarker reports whether the group's description carried a marker.
func (g *Group) HasMarker(name string) bool {
	for _, m := range g.Markers {
		if m == name {
			return true
		}
	}
	return false
}

// Model is the analyzed machine description.
type Model struct {
	Machine    Machine
	IssueWidth int // copies of the Group unit
	GroupUnit  int // index of the issue-slot unit
	Units      []Unit
	Groups     []*Group

	unitIndex map[string]int
	byOp      [sparc.NumOps][2]int16 // group id per (op, reg/imm); -1 if none
}

// UnitIndex returns the index of a named unit, or -1.
func (m *Model) UnitIndex(name string) int {
	if i, ok := m.unitIndex[name]; ok {
		return i
	}
	return -1
}

// GroupFor returns the timing group of an instruction form.
func (m *Model) GroupFor(op sparc.Op, useImm bool) (*Group, error) {
	v := 0
	if useImm {
		v = 1
	}
	id := m.byOp[op][v]
	if id < 0 {
		return nil, fmt.Errorf("spawn: %s has no %s timing group for %s",
			m.Machine, variantName(useImm), op.Name())
	}
	return m.Groups[id], nil
}

// GroupOf is GroupFor for a decoded instruction.
func (m *Model) GroupOf(inst sparc.Inst) (*Group, error) {
	return m.GroupFor(inst.Op, inst.UseImm)
}

func variantName(useImm bool) string {
	if useImm {
		return "immediate"
	}
	return "register"
}

var modelCache sync.Map // Machine -> *Model

// Load parses and analyzes a shipped machine description. Models are
// cached; the returned Model must not be mutated.
func Load(machine Machine) (*Model, error) {
	if m, ok := modelCache.Load(machine); ok {
		return m.(*Model), nil
	}
	src, err := embedded.ReadFile("descriptions/" + string(machine) + ".sadl")
	if err != nil {
		return nil, fmt.Errorf("spawn: unknown machine %q: %w", machine, err)
	}
	m, err := Analyze(machine, string(src))
	if err != nil {
		return nil, err
	}
	modelCache.Store(machine, m)
	return m, nil
}

// MustLoad is Load or panic; for tests and examples.
func MustLoad(machine Machine) *Model {
	m, err := Load(machine)
	if err != nil {
		panic(err)
	}
	return m
}

// Analyze builds a Model from SADL source. Every sparc opcode whose
// mnemonic has a sem declaration gets a timing group per encoding variant
// (register and immediate forms of the same instruction usually differ:
// the immediate form reads one fewer port).
func Analyze(machine Machine, src string) (*Model, error) {
	file, err := sadl.Parse(src)
	if err != nil {
		return nil, err
	}
	ev, err := sadl.NewEvaluator(file)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Machine:   machine,
		unitIndex: make(map[string]int),
	}
	for _, u := range file.Units {
		m.unitIndex[u.Name] = len(m.Units)
		m.Units = append(m.Units, Unit{Name: u.Name, Count: u.Count})
	}
	gi, ok := m.unitIndex["Group"]
	if !ok {
		return nil, fmt.Errorf("spawn: %s: description must declare the issue unit %q", machine, "Group")
	}
	m.GroupUnit = gi
	m.IssueWidth = m.Units[gi].Count

	for op := range m.byOp {
		m.byOp[op][0], m.byOp[op][1] = -1, -1
	}
	byKey := make(map[string]*Group)
	missing := []string{}
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		name := op.Name()
		if !ev.HasSem(name) {
			missing = append(missing, name)
			continue
		}
		for v, iflag := range []int{0, 1} {
			rec, err := ev.Timing(name, map[string]int{"iflag": iflag})
			if err != nil {
				return nil, fmt.Errorf("spawn: %s: %w", machine, err)
			}
			key := rec.Key()
			g, ok := byKey[key]
			if !ok {
				g, err = newGroup(m, len(m.Groups), rec)
				if err != nil {
					return nil, fmt.Errorf("spawn: %s: instruction %s: %w", machine, name, err)
				}
				byKey[key] = g
				m.Groups = append(m.Groups, g)
			}
			g.Ops = append(g.Ops, OpVariant{Op: op, UseImm: v == 1})
			m.byOp[op][v] = int16(g.ID)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("spawn: %s: description lacks semantics for: %v", machine, missing)
	}
	return m, nil
}

// newGroup converts a sadl.Record into the dense table form pipeline_stalls
// indexes.
func newGroup(m *Model, id int, rec *sadl.Record) (*Group, error) {
	span := rec.Cycles + 1
	for c := range rec.Acquire {
		if c+1 > span {
			span = c + 1
		}
	}
	for c := range rec.Release {
		if c+1 > span {
			span = c + 1
		}
	}
	g := &Group{
		ID:      id,
		Key:     rec.Key(),
		Cycles:  rec.Cycles,
		Acquire: make([][]Event, span),
		Release: make([][]Event, span),
	}
	conv := func(dst [][]Event, src map[int][]sadl.UnitEvent) error {
		for c, evs := range src {
			for _, e := range evs {
				ui, ok := m.unitIndex[e.Unit]
				if !ok {
					return fmt.Errorf("undeclared unit %q", e.Unit)
				}
				dst[c] = append(dst[c], Event{Unit: ui, Num: e.Num})
			}
		}
		return nil
	}
	if err := conv(g.Acquire, rec.Acquire); err != nil {
		return nil, err
	}
	if err := conv(g.Release, rec.Release); err != nil {
		return nil, err
	}
	for _, r := range rec.Reads {
		g.Reads = append(g.Reads, FieldAccess{File: r.File, Field: r.Field, Index: r.Index, Cycle: r.Cycle})
	}
	for _, w := range rec.Writes {
		g.Writes = append(g.Writes, FieldAccess{File: w.File, Field: w.Field, Index: w.Index, Cycle: w.Avail})
	}
	g.MemReads = append(g.MemReads, rec.MemReads...)
	g.MemWrites = append(g.MemWrites, rec.MemWrites...)
	g.Markers = append(g.Markers, rec.Markers...)
	return g, nil
}
