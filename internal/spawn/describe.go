package spawn

import (
	"fmt"
	"sort"
	"strings"

	"eel/internal/sparc"
)

// Describe renders a human-readable summary of the analyzed model: units,
// timing groups and per-instruction timing — the report a microarchitect
// reviews when validating a new SADL description against the vendor
// manual.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s: %d-way issue, %d units, %d timing groups\n",
		m.Machine, m.IssueWidth, len(m.Units), len(m.Groups))
	b.WriteString("units:")
	for _, u := range m.Units {
		fmt.Fprintf(&b, " %s×%d", u.Name, u.Count)
	}
	b.WriteString("\n\ngroups:\n")
	for _, g := range m.Groups {
		fmt.Fprintf(&b, "  group %2d: %2d cycles", g.ID, g.Cycles)
		if len(g.Markers) > 0 {
			fmt.Fprintf(&b, " %v", g.Markers)
		}
		b.WriteString("\n    ops:")
		for _, ov := range g.Ops {
			variant := "r"
			if ov.UseImm {
				variant = "i"
			}
			fmt.Fprintf(&b, " %s/%s", ov.Op.Name(), variant)
		}
		b.WriteString("\n")
		for c := range g.Acquire {
			if len(g.Acquire[c]) == 0 && len(g.Release[c]) == 0 {
				continue
			}
			fmt.Fprintf(&b, "    cycle %d:", c)
			for _, e := range g.Acquire[c] {
				fmt.Fprintf(&b, " +%s×%d", m.Units[e.Unit].Name, e.Num)
			}
			for _, e := range g.Release[c] {
				fmt.Fprintf(&b, " -%s×%d", m.Units[e.Unit].Name, e.Num)
			}
			b.WriteString("\n")
		}
		for _, r := range g.Reads {
			fmt.Fprintf(&b, "    read  %s.%s%s @%d\n", r.File, r.Field, idx(r), r.Cycle)
		}
		for _, w := range g.Writes {
			fmt.Fprintf(&b, "    write %s.%s%s avail@%d\n", w.File, w.Field, idx(w), w.Cycle)
		}
	}
	return b.String()
}

func idx(a FieldAccess) string {
	if a.Field == "" {
		return fmt.Sprintf("[%d]", a.Index)
	}
	return ""
}

// LatencyTable returns, per opcode name, (cycles, result-availability) for
// the immediate variant — the summary a scheduling engineer compares with
// the processor manual's latency tables.
func (m *Model) LatencyTable() map[string][2]int {
	out := make(map[string][2]int)
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		g, err := m.GroupFor(op, true)
		if err != nil {
			continue
		}
		avail := g.Cycles
		for _, w := range g.Writes {
			if w.Field == "rd" {
				avail = w.Cycle
			}
		}
		out[op.Name()] = [2]int{g.Cycles, avail}
	}
	return out
}

// SortedOpNames returns the op names of a latency table in stable order.
func SortedOpNames(t map[string][2]int) []string {
	names := make([]string, 0, len(t))
	for n := range t {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
