package spawn_test

import (
	"testing"

	"eel/internal/spawn"
	hyper "eel/internal/spawn/gen/hypersparc"
	super "eel/internal/spawn/gen/supersparc"
	ultra "eel/internal/spawn/gen/ultrasparc"
)

// genTables is one generated package's fast tables, flattened into a
// shape the cross-check below can compare against Model.Compiled().
type genTables struct {
	maxHorizon   int
	unitCounts   []int
	span         []int
	held         [][]int
	defaultRead  []int
	defaultWrite []int
}

func genTablesFor(machine spawn.Machine) genTables {
	switch machine {
	case spawn.HyperSPARC:
		return genTables{hyper.MaxHorizon, hyper.UnitCounts[:], hyper.GroupSpan[:], hyper.GroupHeld[:], hyper.GroupDefaultRead[:], hyper.GroupDefaultWrite[:]}
	case spawn.SuperSPARC:
		return genTables{super.MaxHorizon, super.UnitCounts[:], super.GroupSpan[:], super.GroupHeld[:], super.GroupDefaultRead[:], super.GroupDefaultWrite[:]}
	case spawn.UltraSPARC:
		return genTables{ultra.MaxHorizon, ultra.UnitCounts[:], ultra.GroupSpan[:], ultra.GroupHeld[:], ultra.GroupDefaultRead[:], ultra.GroupDefaultWrite[:]}
	}
	panic("unknown machine " + machine)
}

// TestCompiledTablesMatchGenerated checks, for every shipped machine, that
// the in-process compiled tables (what pipe.FastState probes) agree
// exactly with the tables in the committed generated packages (what the
// emitted pipeline_stalls probes). Together with TestVerifyGenerated this
// pins both fast paths to the same flattening of the SADL description.
func TestCompiledTablesMatchGenerated(t *testing.T) {
	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		tab := model.Compiled()
		gen := genTablesFor(machine)

		if gen.maxHorizon != tab.MaxSpan {
			t.Errorf("%s: MaxHorizon %d, compiled MaxSpan %d", machine, gen.maxHorizon, tab.MaxSpan)
		}
		if len(gen.unitCounts) != len(tab.UnitCounts) || len(gen.span) != len(tab.Groups) {
			t.Fatalf("%s: table shapes differ: %d/%d units, %d/%d groups",
				machine, len(gen.unitCounts), len(tab.UnitCounts), len(gen.span), len(tab.Groups))
		}
		for u, n := range gen.unitCounts {
			if int32(n) != tab.UnitCounts[u] {
				t.Errorf("%s: unit %d count %d vs %d", machine, u, n, tab.UnitCounts[u])
			}
		}
		nu := len(tab.UnitCounts)
		for gid := range gen.span {
			cg := &tab.Groups[gid]
			if gen.span[gid] != cg.Span {
				t.Errorf("%s group %d: span %d vs %d", machine, gid, gen.span[gid], cg.Span)
			}
			if len(gen.held[gid]) != len(cg.Held) {
				t.Errorf("%s group %d: held length %d vs %d", machine, gid, len(gen.held[gid]), len(cg.Held))
				continue
			}
			for k, n := range gen.held[gid] {
				if int32(n) != cg.Held[k] {
					t.Errorf("%s group %d: held[%d] (cycle %d unit %d) %d vs %d",
						machine, gid, k, k/nu, k%nu, n, cg.Held[k])
				}
			}
			if gen.defaultRead[gid] != cg.DefaultRead || gen.defaultWrite[gid] != cg.DefaultWrite {
				t.Errorf("%s group %d: defaults (%d,%d) vs (%d,%d)", machine, gid,
					gen.defaultRead[gid], gen.defaultWrite[gid], cg.DefaultRead, cg.DefaultWrite)
			}
		}
	}
}

// TestCompiledTablesInternal checks the internal consistency of the
// compiled tables: the sparse NZ list must reconstruct the dense Held
// vector exactly, every span fits the horizon, and no shipped description
// produces an infeasible group.
func TestCompiledTablesInternal(t *testing.T) {
	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		tab := model.Compiled()
		nu := len(tab.UnitCounts)
		for gid := range tab.Groups {
			cg := &tab.Groups[gid]
			if cg.Span > tab.MaxSpan {
				t.Errorf("%s group %d: span %d exceeds horizon %d", machine, gid, cg.Span, tab.MaxSpan)
			}
			if cg.Infeasible {
				t.Errorf("%s group %d: marked infeasible", machine, gid)
			}
			dense := make([]int32, len(cg.Held))
			for _, e := range cg.NZ {
				if e.Num <= 0 || e.Cycle < 0 || e.Cycle >= cg.Span || e.Unit < 0 || e.Unit >= nu {
					t.Fatalf("%s group %d: NZ entry out of range: %+v", machine, gid, e)
				}
				dense[e.Cycle*nu+e.Unit] += int32(e.Num)
			}
			for k := range dense {
				want := cg.Held[k]
				if want < 0 {
					want = 0 // dense vector may go negative only if releases outpace acquires; NZ records held>0 only
				}
				if dense[k] != want {
					t.Errorf("%s group %d: NZ reconstructs held[%d]=%d, dense says %d",
						machine, gid, k, dense[k], cg.Held[k])
				}
			}
		}
	}
}

// TestVerifyGenerated is the golden-table test: regenerating each shipped
// machine's tables must reproduce the committed gen/ files byte for byte
// (cmd/spawn -check exposes the same check to CI).
func TestVerifyGenerated(t *testing.T) {
	if err := spawn.VerifyGenerated(); err != nil {
		t.Fatalf("committed generated tables are stale: %v\nregenerate with: go generate ./internal/spawn", err)
	}
}
