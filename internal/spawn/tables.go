package spawn

import "sync"

// This file is the analysis half of the paper's compiled pipeline_stalls:
// it flattens a Model's per-group event lists into the dense tables the
// fast oracle (pipe.FastState) probes, the same tables Generate emits into
// the per-machine gen/ packages. Precomputing them once per model moves
// all per-cycle event accumulation out of the scheduler's hottest loop.

// HeldUse is one nonzero entry of a group's held-units profile: the group
// holds Num copies of unit Unit during relative cycle Cycle.
type HeldUse struct {
	Cycle int
	Unit  int
	Num   int
}

// CompiledGroup is one timing group's flat tables.
type CompiledGroup struct {
	// Span is the number of relative cycles the group occupies units.
	Span int
	// Held is the dense per-cycle unit-usage vector, row-major:
	// Held[c*numUnits+u] copies of unit u are held during relative cycle c
	// (releases in a cycle apply before acquisitions, per the paper).
	Held []int32
	// NZ lists the nonzero entries of Held, for sparse probing.
	NZ []HeldUse
	// DefaultRead and DefaultWrite are the fallback cycle offsets for
	// register accesses the description does not name explicitly: the
	// earliest declared read cycle (or 1) and the latest declared write
	// availability (or the group's occupancy).
	DefaultRead  int
	DefaultWrite int
	// Infeasible marks a group that demands more copies of some unit in a
	// single cycle than the machine has; no instruction of this group can
	// ever issue (only malformed descriptions produce this).
	Infeasible bool
}

// CompiledTables is the flat, probe-ready form of a Model.
type CompiledTables struct {
	// MaxSpan is the model-wide horizon: no instruction holds any unit
	// MaxSpan or more cycles after its issue cycle.
	MaxSpan    int
	UnitCounts []int32
	Groups     []CompiledGroup
}

var compiledCache sync.Map // *Model -> *CompiledTables

// Compiled returns the model's flat compiled tables, building and caching
// them on first use. The result is shared and must not be mutated.
func (m *Model) Compiled() *CompiledTables {
	if t, ok := compiledCache.Load(m); ok {
		return t.(*CompiledTables)
	}
	t := compile(m)
	compiledCache.Store(m, t)
	return t
}

func compile(m *Model) *CompiledTables {
	t := &CompiledTables{
		UnitCounts: make([]int32, len(m.Units)),
		Groups:     make([]CompiledGroup, len(m.Groups)),
	}
	for i, u := range m.Units {
		t.UnitCounts[i] = int32(u.Count)
	}
	for _, g := range m.Groups {
		t.Groups[g.ID] = compileGroup(m, g)
		if s := t.Groups[g.ID].Span; s > t.MaxSpan {
			t.MaxSpan = s
		}
	}
	return t
}

// compileGroup accumulates the group's acquire/release events into the
// dense held-units profile — the computation (*pipe.State).heldProfile
// performs on every probe, done once here.
func compileGroup(m *Model, g *Group) CompiledGroup {
	nu := len(m.Units)
	span := len(g.Acquire)
	cg := CompiledGroup{
		Span: span,
		Held: make([]int32, span*nu),
	}
	cur := make([]int32, nu)
	for c := 0; c < span; c++ {
		for _, e := range g.Release[c] {
			cur[e.Unit] -= int32(e.Num)
		}
		for _, e := range g.Acquire[c] {
			cur[e.Unit] += int32(e.Num)
		}
		copy(cg.Held[c*nu:(c+1)*nu], cur)
		for u, n := range cur {
			if n > 0 {
				cg.NZ = append(cg.NZ, HeldUse{Cycle: c, Unit: u, Num: int(n)})
				if n > int32(m.Units[u].Count) {
					cg.Infeasible = true
				}
			}
		}
	}

	// Fallback access cycles, mirroring pipe.Resolver's defaults.
	cg.DefaultRead = 1
	if len(g.Reads) > 0 {
		cg.DefaultRead = g.Reads[0].Cycle
		for _, r := range g.Reads {
			if r.Cycle < cg.DefaultRead {
				cg.DefaultRead = r.Cycle
			}
		}
	}
	cg.DefaultWrite = g.Cycles
	if len(g.Writes) > 0 {
		cg.DefaultWrite = 0
		for _, w := range g.Writes {
			if w.Cycle > cg.DefaultWrite {
				cg.DefaultWrite = w.Cycle
			}
		}
	}
	return cg
}
