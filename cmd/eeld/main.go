// Command eeld serves executable editing as a long-running daemon: the
// scheduling and instrumentation pipeline of cmd/eelprof behind an HTTP
// API, with request admission, per-tenant quotas, cross-request block
// batching, one shared schedule cache, and a size-bounded on-disk spill
// so warm state survives restarts.
//
//	eeld -addr :8379                               # serve
//	eeld -spill /var/tmp/eeld.spill -spill-max 8388608
//	    spill the schedule cache on drain, restore it on boot
//	eeld -inflight 16 -queue 128 -tenant-quota 4   # admission policy
//
// Endpoints:
//
//	POST /v1/schedule   JSON {"machine": ..., "blocks": [[word...]...]}
//	                    -> {"machine": ..., "blocks": [[word...]...]}
//	POST /v1/edit       EELX image body; query op=reschedule|instrument,
//	                    machine=... -> edited EELX image
//	GET  /healthz       {"status":"ok"}, 503 while draining
//	GET  /metrics       Prometheus text (?format=json for the JSON export)
//	GET  /debug/flight  flight-recorder dump: one trace per JSONL line
//	                    (schemas/trace.schema.json); 404 unless -flight
//
// Errors are structured JSON ({"error": ...}) with matching status
// codes; every response is counted in eeld.requests_total{route,code}.
//
// Observability (-flight N retains the last N request traces plus up to
// 4N anomalous ones; -log path writes every trace as a JSON access-log
// line; either flag turns request tracing on):
//
//	eeld -flight 256 -flight-slow 250ms    # flight recorder, slow bar
//	eeld -log /var/log/eeld-access.jsonl   # structured access log
//
// On SIGTERM or SIGINT the daemon drains: health checks fail, new work
// is rejected, in-flight requests finish (bounded by -drain-timeout),
// and the schedule cache is spilled. The spill is keyed to the build's
// git revision — a daemon built from different sources starts cold
// rather than trusting stale schedules.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"eel/internal/daemon"
	"eel/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eeld:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8379", "listen address")
		workers      = flag.Int("workers", 0, "scheduling worker pool size (0 = GOMAXPROCS)")
		cacheCap     = flag.Int("cache", 0, "schedule cache capacity in blocks (0 = default)")
		inflight     = flag.Int("inflight", 8, "requests processed concurrently")
		queueDepth   = flag.Int("queue", 64, "admitted requests allowed to wait for a slot")
		tenantQuota  = flag.Int("tenant-quota", 0, "per-tenant concurrent request cap (0 = unlimited)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "cross-request batch gather window")
		batchMax     = flag.Int("batch-max", 512, "blocks per batch before an early flush")
		editorCap    = flag.Int("editors", 32, "analyzed executables kept resident")
		spillPath    = flag.String("spill", "", "schedule-cache spill file (restore on boot, write on drain)")
		spillMax     = flag.Int("spill-max", 0, "spill file size bound in bytes (0 = unbounded)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		testHooks    = flag.Bool("testhooks", false, "enable test-only request hooks (delay_ms); never in production")
		flightN      = flag.Int("flight", 0, "flight recorder: retain the last N request traces (+4N anomalous); 0 = tracing off")
		flightSlow   = flag.Duration("flight-slow", 0, "latency past which a request is recorded as a slow anomaly (0 = never)")
		logPath      = flag.String("log", "", "structured JSON access log: one trace line per request")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: eeld [flags]")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	reg.StampRunManifest()
	reg.SetManifest("tool", "eeld")
	reg.SetManifest("workers", strconv.Itoa(*workers))

	var access *obs.JSONL
	if *logPath != "" {
		var err error
		if access, err = obs.CreateJSONL(*logPath); err != nil {
			return fmt.Errorf("access log: %w", err)
		}
	}

	s := daemon.New(daemon.Config{
		CacheCapacity:  *cacheCap,
		MaxInflight:    *inflight,
		QueueDepth:     *queueDepth,
		TenantQuota:    *tenantQuota,
		BatchWindow:    *batchWindow,
		BatchMaxBlocks: *batchMax,
		Workers:        *workers,
		EditorCap:      *editorCap,
		SpillPath:      *spillPath,
		SpillMaxBytes:  *spillMax,
		Fingerprint:    obs.GitRev(),
		Registry:       reg,
		AllowTestDelay: *testHooks,
		Flight:         obs.NewFlight(*flightN),
		AccessLog:      access,
		SlowRequest:    *flightSlow,
	})

	hs := &http.Server{Addr: *addr, Handler: s}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "eeld: listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "eeld: %v: draining\n", sig)
	}

	// Drain: stop admitting, let in-flight requests finish, then spill.
	s.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "eeld: shutdown: %v (requests may have been cut off)\n", err)
	}
	n, err := s.Drain()
	if err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	if *spillPath != "" {
		fmt.Fprintf(os.Stderr, "eeld: spilled %d cache entries to %s\n", n, *spillPath)
	}
	// Close the access log only after Drain: every in-flight request has
	// finished and written its line, so the file ends on a whole line.
	if access != nil {
		if err := access.Close(); err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		fmt.Fprintf(os.Stderr, "eeld: access log closed at %s\n", *logPath)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "eeld: drained cleanly")
	return nil
}
