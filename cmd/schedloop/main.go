// Command schedloop measures software pipelining over the workload
// suite: every benchmark is block-scheduled (the production baseline),
// its hot innermost loops are modulo-scheduled and spliced through the
// executable editor under the whole-program never-worse guard, and both
// executables are simulated on the machine's timing model. The report
// shows, per benchmark x machine: loops found, candidates, accepted
// rewrites, the achieved II against its MII lower bound, steady-state
// cycles per iteration before and after, and whole-program simulated
// cycles.
//
//	schedloop                                  # all machines, full suite
//	schedloop -machines ultrasparc -json       # one machine, JSON report
//	schedloop -benchmarks 102.swim,101.tomcatv # subset of the suite
//	schedloop -check                           # fail on any regression
//	schedloop -dump out/                       # write pipelined images
//	schedloop -bench | benchdiff -update -series swp
//	                                           # record the cycle numbers
//
// The report is deterministic for a fixed flag set: program generation
// is seeded and the pipelining pass is worker-count-independent, so CI
// diffs the -json output of a small configuration against a committed
// golden (testdata/ci/schedloop_smoke.json) and byte-compares -dump
// output across worker counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/sim"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedloop:", err)
		os.Exit(1)
	}
}

// Row is one benchmark's pipelining measurement on one machine. TOTAL
// rows aggregate a machine's suite (cycles and counts summed,
// percentages recomputed).
type Row struct {
	Machine     string `json:"machine"`
	Benchmark   string `json:"benchmark"`
	Loops       int    `json:"loops"`
	Irreducible int    `json:"irreducible"`
	Candidates  int    `json:"candidates"`
	Accepted    int    `json:"accepted"`
	// II and MII of the hottest accepted loop (0 when none accepted).
	II  int `json:"ii"`
	MII int `json:"mii"`
	// Steady-state cycles per iteration aggregated over the accepted
	// loops' text ranges, before (block-scheduled) and after.
	IterCyclesBefore float64 `json:"iter_cycles_before"`
	IterCyclesAfter  float64 `json:"iter_cycles_after"`
	// Whole-program simulated cycles: the block-scheduled baseline and
	// the pipelined result (equal when nothing was accepted).
	BaseCycles int64   `json:"base_cycles"`
	SWPCycles  int64   `json:"swp_cycles"`
	SavedPct   float64 `json:"saved_pct"`
}

// Report is the full -json document, flag values embedded so a golden
// diff cannot silently compare runs of different configurations.
type Report struct {
	Insts  uint64 `json:"insts"`
	Seed   int64  `json:"seed"`
	Rows   []Row  `json:"rows"`
	Totals []Row  `json:"totals"`
}

func run() error {
	var (
		machinesFlag = flag.String("machines", "", "comma-separated machine models (default: all)")
		benchFlag    = flag.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
		insts        = flag.Uint64("insts", 200_000, "approximate dynamic instructions per generated benchmark")
		seed         = flag.Int64("seed", 1, "workload generation seed")
		workers      = flag.Int("workers", 0, "scheduling worker pool size (0 = GOMAXPROCS)")
		maxSteps     = flag.Uint64("maxsteps", 1<<30, "simulator step limit per run")
		check        = flag.Bool("check", false, "exit nonzero if any benchmark regressed (never-worse violation)")
		dumpDir      = flag.String("dump", "", "write each pipelined executable to this directory")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON")
		benchOut     = flag.Bool("bench", false, "emit go-bench lines (cycles) for benchdiff")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: schedloop [flags]")
		os.Exit(2)
	}

	machines := spawn.Machines()
	if *machinesFlag != "" {
		machines = nil
		for _, name := range strings.Split(*machinesFlag, ",") {
			machines = append(machines, spawn.Machine(strings.TrimSpace(name)))
		}
	}
	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			return err
		}
	}

	report := Report{Insts: *insts, Seed: *seed}
	for _, machine := range machines {
		model, err := spawn.Load(machine)
		if err != nil {
			return err
		}
		suite, err := selectBenchmarks(machine, *benchFlag)
		if err != nil {
			return err
		}
		var total Row
		total.Machine, total.Benchmark = string(machine), "TOTAL"
		for _, b := range suite {
			row, err := measure(machine, model, b, *insts, *seed, *workers, *maxSteps, *dumpDir)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", machine, b.Name, err)
			}
			report.Rows = append(report.Rows, row)
			total.Loops += row.Loops
			total.Irreducible += row.Irreducible
			total.Candidates += row.Candidates
			total.Accepted += row.Accepted
			total.BaseCycles += row.BaseCycles
			total.SWPCycles += row.SWPCycles
		}
		total.SavedPct = pct(total.BaseCycles-total.SWPCycles, total.BaseCycles)
		report.Totals = append(report.Totals, total)
	}

	if *check {
		for i := range report.Rows {
			r := &report.Rows[i]
			if r.SWPCycles > r.BaseCycles {
				return fmt.Errorf("never-worse violated: %s/%s pipelined to %d cycles from %d",
					r.Machine, r.Benchmark, r.SWPCycles, r.BaseCycles)
			}
		}
	}

	switch {
	case *benchOut:
		writeBench(os.Stdout, &report)
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&report)
	default:
		writeTable(os.Stdout, &report)
	}
	return nil
}

// selectBenchmarks resolves the -benchmarks filter against a machine's
// suite, preserving suite order; unknown names fail loudly.
func selectBenchmarks(machine spawn.Machine, filter string) ([]workload.Benchmark, error) {
	suite := workload.Suite(machine)
	if filter == "" {
		return suite, nil
	}
	valid := make(map[string]bool, len(suite))
	names := make([]string, len(suite))
	for i, b := range suite {
		valid[b.Name] = true
		names[i] = b.Name
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if !valid[name] {
			return nil, fmt.Errorf("unknown benchmark %q (have %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	var out []workload.Benchmark
	for _, b := range suite {
		if want[b.Name] {
			out = append(out, b)
		}
	}
	return out, nil
}

// measure generates one benchmark, block-schedules it, pipelines its hot
// loops under the never-worse guard, and attributes cycles to the
// rewritten loops on the timing model.
func measure(machine spawn.Machine, model *spawn.Model, b workload.Benchmark,
	insts uint64, seed int64, workers int, maxSteps uint64, dumpDir string) (Row, error) {
	row := Row{Machine: string(machine), Benchmark: b.Name}
	x, err := workload.Generate(b, workload.Config{
		Machine:         machine,
		DynamicInsts:    insts,
		Seed:            seed,
		SkipCalibration: true,
	})
	if err != nil {
		return row, err
	}

	ed, err := eel.Open(x)
	if err != nil {
		return row, err
	}
	scheduled, err := ed.Reschedule(model, core.Options{Workers: workers})
	if err != nil {
		return row, err
	}

	// The pipelining pass prices every candidate by whole-program
	// simulated cycles; the measurer recycles simulator state across
	// those runs.
	sed, err := eel.Open(scheduled)
	if err != nil {
		return row, err
	}
	meas := sim.NewMeasurer(model, sim.DefaultTiming(machine))
	price := func(y *exe.Exe) (int64, error) {
		in, tm, res, err := meas.Run(y, maxSteps)
		if err != nil {
			return 0, err
		}
		defer meas.Release(in, tm)
		if !res.Halted {
			return 0, fmt.Errorf("simulation did not halt within %d steps", maxSteps)
		}
		return tm.Cycles(), nil
	}
	res, err := sed.PipelineLoops(eel.PipelineOptions{
		Machine: model,
		Sched:   core.Options{Workers: workers},
		Price:   price,
	})
	if err != nil {
		return row, err
	}

	row.Loops = res.LoopsFound
	row.Irreducible = res.Irreducible
	row.Candidates = res.Candidates
	row.Accepted = res.Accepted
	row.BaseCycles = res.BaseCost
	row.SWPCycles = res.Cost
	row.SavedPct = pct(row.BaseCycles-row.SWPCycles, row.BaseCycles)

	// Hottest accepted loop's II vs MII, and cycle-per-iteration
	// attribution over every accepted loop's text range.
	var before, after [][2]int
	var trips []int64
	hot := -1
	for i := range res.Loops {
		l := &res.Loops[i]
		if !l.Accepted {
			continue
		}
		if hot < 0 || l.Depth > res.Loops[hot].Depth ||
			(l.Depth == res.Loops[hot].Depth && l.Body > res.Loops[hot].Body) {
			hot = i
		}
		before = append(before, [2]int{l.OldStart, l.OldStart + l.OldLen})
		after = append(after, [2]int{l.NewStart, l.NewStart + l.NewLen})
		trips = append(trips, int64(l.Trip))
	}
	if hot >= 0 {
		row.II, row.MII = res.Loops[hot].II, res.Loops[hot].MII
		row.IterCyclesBefore, err = iterCycles(scheduled, model, machine, maxSteps, before, trips)
		if err != nil {
			return row, err
		}
		row.IterCyclesAfter, err = iterCycles(res.Exe, model, machine, maxSteps, after, trips)
		if err != nil {
			return row, err
		}
	}

	if dumpDir != "" {
		name := fmt.Sprintf("%s_%s.exe", machine, strings.ReplaceAll(b.Name, "/", "_"))
		if err := res.Exe.WriteFile(filepath.Join(dumpDir, name)); err != nil {
			return row, err
		}
	}
	return row, nil
}

// iterCycles simulates x once and returns the aggregate steady-state
// cycles per iteration over the given loop ranges: total attributed
// cycles divided by total iterations (range entries x trip count).
func iterCycles(x *exe.Exe, model *spawn.Model, machine spawn.Machine,
	maxSteps uint64, ranges [][2]int, trips []int64) (float64, error) {
	in, err := sim.NewInterp(x)
	if err != nil {
		return 0, err
	}
	tm := sim.NewProgramTiming(model, sim.DefaultTiming(machine), x.TextBase, len(x.Text))
	m := sim.NewRangeMeter(tm, ranges)
	res, err := in.Run(maxSteps, m.Observe)
	if err != nil {
		return 0, err
	}
	if !res.Halted {
		return 0, fmt.Errorf("simulation did not halt within %d steps", maxSteps)
	}
	var cycles, iters int64
	for r := range ranges {
		cycles += m.Cycles(r)
		iters += m.Visits(r) * trips[r]
	}
	if iters == 0 {
		return 0, nil
	}
	return math.Round(1e4*float64(cycles)/float64(iters)) / 1e4, nil
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return math.Round(1e4*100*float64(num)/float64(den)) / 1e4
}

// writeTable renders the human report: one aligned row per benchmark,
// one TOTAL row per machine.
func writeTable(w *os.File, rep *Report) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "machine\tbenchmark\tloops\tcand\taccepted\tII\tMII\tcyc/iter-before\tcyc/iter-after\tbase-cycles\tswp-cycles\tsaved%")
	emit := func(r *Row) {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%d\t%d\t%.4f\n",
			r.Machine, r.Benchmark, r.Loops, r.Candidates, r.Accepted, r.II, r.MII,
			r.IterCyclesBefore, r.IterCyclesAfter, r.BaseCycles, r.SWPCycles, r.SavedPct)
	}
	for i := range rep.Rows {
		emit(&rep.Rows[i])
	}
	for i := range rep.Totals {
		emit(&rep.Totals[i])
	}
	tw.Flush()
}

// writeBench emits the cycle counts in go-bench syntax so benchdiff can
// record them as the swp series in BENCH_sched.json (the value is
// simulated cycles, not nanoseconds; the unit is required by the format).
func writeBench(w *os.File, rep *Report) {
	for i := range rep.Rows {
		r := &rep.Rows[i]
		fmt.Fprintf(w, "BenchmarkSWP/machine=%s/bench=%s/base 1 %d ns/op\n", r.Machine, r.Benchmark, r.BaseCycles)
		fmt.Fprintf(w, "BenchmarkSWP/machine=%s/bench=%s/swp 1 %d ns/op\n", r.Machine, r.Benchmark, r.SWPCycles)
	}
	for i := range rep.Totals {
		r := &rep.Totals[i]
		fmt.Fprintf(w, "BenchmarkSWP/machine=%s/total/base 1 %d ns/op\n", r.Machine, r.BaseCycles)
		fmt.Fprintf(w, "BenchmarkSWP/machine=%s/total/swp 1 %d ns/op\n", r.Machine, r.SWPCycles)
	}
}
