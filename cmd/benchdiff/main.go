// Command benchdiff compares `go test -bench` output against a committed
// baseline (BENCH_sched.json), or records a new series into one. The
// stock benchstat tool is deliberately not a dependency: the comparison
// CI needs is one ns/op delta table, and the repo builds with the
// standard library alone.
//
//	go test -bench ScheduleBlocks ./internal/core | benchdiff
//	    advisory comparison against the "current" series
//	benchdiff -series pr2-baseline bench.txt
//	    compare against another recorded series
//	go test -bench ScheduleBlocks -count 5 ./internal/core | benchdiff -update
//	    record the per-benchmark medians as the new "current" series
//	benchdiff -update -manifest runner=ci -manifest suite=smoke bench.txt
//	    same, attaching operator facts to the series' run manifest
//	benchdiff -fail-over 30 bench.txt
//	    exit nonzero if any benchmark regressed more than 30%
//
// -update stamps a run manifest (Go version, platform, git revision,
// GOMAXPROCS and core count, any `# manifest: k=v` lines in the bench
// input, plus any -manifest k=v pairs) alongside the recorded series;
// manifests of other series in the baseline file are carried forward
// untouched, so the committed file says where every number came from.
//
// Comparison is advisory by default (always exit 0): shared CI runners
// are noisy enough that a hard gate on ns/op would flake. -fail-over
// opts into a threshold for local use — and is itself downgraded back
// to advisory (with a warning) when the baseline's manifest records a
// different core count than the current run, because parallel
// benchmarks scale with cores and such a delta compares machines, not
// code.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"eel/internal/bench"
	"eel/internal/obs"
)

// manifestFlag collects repeated -manifest k=v pairs.
type manifestFlag map[string]string

func (m manifestFlag) String() string { return "" }

func (m manifestFlag) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", v)
	}
	m[k] = val
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		baseline = flag.String("baseline", "BENCH_sched.json", "committed baseline file")
		series   = flag.String("series", "current", "series name to compare against or record")
		update   = flag.Bool("update", false, "record the input as the named series instead of comparing")
		note     = flag.String("note", "", "with -update: replace the baseline's note")
		failOver = flag.Float64("fail-over", 0, "exit nonzero if any benchmark regresses more than this percent (0 = advisory)")
	)
	manifest := make(manifestFlag)
	flag.Var(manifest, "manifest", "with -update: attach key=value to the series' run manifest (repeatable)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		return fmt.Errorf("at most one input file (default stdin)")
	}

	results, cpu, inManifest, err := bench.ParseGoBenchManifest(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	results = bench.MedianByName(results)
	runManifest := seriesManifest(inManifest, manifest)

	if *update {
		pf, err := bench.ReadPerfFile(*baseline)
		if os.IsNotExist(err) {
			pf, err = &bench.PerfFile{}, nil
		}
		if err != nil {
			return err
		}
		if pf.Series == nil {
			pf.Series = make(map[string][]bench.PerfResult)
		}
		pf.Series[*series] = results
		pf.SetSeriesManifest(*series, runManifest)
		if cpu != "" {
			pf.CPU = cpu
		}
		if *note != "" {
			pf.Note = *note
		}
		f, err := os.Create(*baseline)
		if err != nil {
			return err
		}
		if err := pf.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchdiff: recorded %d benchmarks as series %q in %s\n",
			len(results), *series, *baseline)
		return nil
	}

	pf, err := bench.ReadPerfFile(*baseline)
	if err != nil {
		return err
	}
	base, ok := pf.Series[*series]
	if !ok {
		return fmt.Errorf("%s has no series %q", *baseline, *series)
	}
	if pf.CPU != "" && cpu != "" && pf.CPU != cpu {
		fmt.Printf("note: baseline recorded on %q, this run on %q — deltas compare machines, not code\n", pf.CPU, cpu)
	}
	deltas := bench.Compare(base, results)
	fmt.Print(bench.FormatDeltas(deltas))
	if *failOver > 0 {
		// A hard gate is only meaningful when both runs had the same
		// parallelism available: parallel benchmarks scale with core
		// count, so a 1-core runner "regresses" a 8-core baseline by
		// construction. Manifests without core stamps keep the gate.
		if key, bv, cv, mismatch := bench.CoreCountMismatch(pf.Manifests[*series], runManifest); mismatch {
			fmt.Fprintf(os.Stderr,
				"benchdiff: baseline series %q recorded with %s=%s but this run has %s=%s — core counts differ, downgrading -fail-over to advisory\n",
				*series, key, bv, key, cv)
			*failOver = 0
		}
	}
	if *failOver > 0 {
		for _, d := range deltas {
			if d.Pct > *failOver {
				return fmt.Errorf("%s regressed %.1f%% (> %.1f%%)", d.Name, d.Pct, *failOver)
			}
		}
	}
	return nil
}

// seriesManifest builds the run manifest recorded with -update: the
// environment facts first (including the runner's core count, which
// gates future hard comparisons), then `# manifest:` pairs from the
// bench input, then operator -manifest pairs. Later sources win on key
// collision — an explicit -manifest is a deliberate override.
func seriesManifest(input, extra map[string]string) map[string]string {
	m := map[string]string{
		"go":         runtime.Version(),
		"platform":   runtime.GOOS + "/" + runtime.GOARCH,
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"numcpu":     strconv.Itoa(runtime.NumCPU()),
	}
	if rev := obs.GitRev(); rev != "" {
		m["git_rev"] = rev
	}
	for k, v := range input {
		m[k] = v
	}
	for k, v := range extra {
		m[k] = v
	}
	return m
}
