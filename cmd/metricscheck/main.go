// Command metricscheck validates a telemetry export against a JSON
// schema — the CI metrics-smoke gate:
//
//	metricscheck -schema schemas/metrics.schema.json run.json
//	metricscheck -schema schemas/trace.schema.json -jsonl flight.jsonl
//	metricscheck -schema schemas/trace.schema.json -jsonl -trace-sums 5 flight.jsonl
//
// It prints every violation (not just the first) and exits non-zero if
// any were found. With -jsonl the input is JSON lines (the daemon's
// /debug/flight dump or access log) and every line is validated
// independently. -trace-sums PCT additionally checks latency
// attribution on each successful /v1/* request trace: its top-level
// spans must sum to the trace's wall time within PCT percent (plus a
// 200µs absolute slack so microsecond-scale requests don't flap) — the
// acceptance bar CI holds the daemon to.
//
// The validator is the deliberately small JSON-Schema subset in
// internal/obs; the point is catching shape regressions in the
// exporter, not full draft compliance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"eel/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

// traceSumSlackNs matches the daemon tests' absolute slack on the
// span-sum check (internal/daemon/trace_test.go).
const traceSumSlackNs = 200_000

func run() error {
	schemaPath := flag.String("schema", "schemas/metrics.schema.json", "schema to validate against")
	jsonl := flag.Bool("jsonl", false, "input is JSON lines; validate each line independently")
	traceSums := flag.Float64("trace-sums", 0, "with -jsonl: check each 200 /v1/* request trace's top-level spans sum to wall time within this percent")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-schema file] [-jsonl [-trace-sums pct]] input.json")
		os.Exit(2)
	}
	if *traceSums > 0 && !*jsonl {
		return fmt.Errorf("-trace-sums requires -jsonl (it reads trace lines)")
	}
	raw, err := os.ReadFile(*schemaPath)
	if err != nil {
		return err
	}
	schema, err := obs.ParseSchema(raw)
	if err != nil {
		return err
	}
	if !*jsonl {
		doc, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		errs := schema.Validate(doc)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "metricscheck:", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%s: %d schema violations", flag.Arg(0), len(errs))
		}
		fmt.Printf("%s: valid against %s\n", flag.Arg(0), *schemaPath)
		return nil
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var (
		lines, violations, sumsChecked int
	)
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		for _, e := range schema.Validate(line) {
			violations++
			fmt.Fprintf(os.Stderr, "metricscheck: line %d: %v\n", lines, e)
		}
		if *traceSums <= 0 {
			continue
		}
		var tr obs.TraceExport
		if err := json.Unmarshal(line, &tr); err != nil {
			violations++
			fmt.Fprintf(os.Stderr, "metricscheck: line %d: not a trace: %v\n", lines, err)
			continue
		}
		// Only successful API requests carry the full span taxonomy;
		// health checks and batch traces attribute differently.
		if tr.Kind != "request" || tr.Code != 200 || !strings.HasPrefix(tr.Route, "/v1/") {
			continue
		}
		sumsChecked++
		sum := tr.TopSpanNs()
		diff := tr.WallNs - sum
		if diff < 0 {
			diff = -diff
		}
		allow := int64(*traceSums/100*float64(tr.WallNs)) + traceSumSlackNs
		if diff > allow {
			violations++
			fmt.Fprintf(os.Stderr,
				"metricscheck: line %d: trace %s (%s): spans sum to %dns of %dns wall (diff %dns > allowed %dns)\n",
				lines, tr.TraceID, tr.Route, sum, tr.WallNs, diff, allow)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if violations > 0 {
		return fmt.Errorf("%s: %d violations across %d lines", flag.Arg(0), violations, lines)
	}
	if *traceSums > 0 {
		fmt.Printf("%s: %d lines valid against %s; %d request traces sum to wall within %g%%\n",
			flag.Arg(0), lines, *schemaPath, sumsChecked, *traceSums)
	} else {
		fmt.Printf("%s: %d lines valid against %s\n", flag.Arg(0), lines, *schemaPath)
	}
	return nil
}
