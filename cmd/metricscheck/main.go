// Command metricscheck validates a telemetry export against a JSON
// schema — the CI metrics-smoke gate:
//
//	metricscheck -schema schemas/metrics.schema.json run.json
//
// It prints every violation (not just the first) and exits non-zero if
// any were found. The validator is the deliberately small JSON-Schema
// subset in internal/obs; the point is catching shape regressions in the
// exporter, not full draft compliance.
package main

import (
	"flag"
	"fmt"
	"os"

	"eel/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	schemaPath := flag.String("schema", "schemas/metrics.schema.json", "schema to validate against")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-schema file] metrics.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*schemaPath)
	if err != nil {
		return err
	}
	schema, err := obs.ParseSchema(raw)
	if err != nil {
		return err
	}
	doc, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	errs := schema.Validate(doc)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "metricscheck:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s: %d schema violations", flag.Arg(0), len(errs))
	}
	fmt.Printf("%s: valid against %s\n", flag.Arg(0), *schemaPath)
	return nil
}
